(* Histograms, column statistics, ANALYZE, restriction selectivity. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Table = Qs_storage.Table
module Histogram = Qs_stats.Histogram
module Column_stats = Qs_stats.Column_stats
module Table_stats = Qs_stats.Table_stats
module Analyze = Qs_stats.Analyze
module Selectivity = Qs_stats.Selectivity
module Expr = Qs_query.Expr

let ints xs = Array.of_list (List.map (fun i -> Value.Int i) xs)

let test_histogram_empty () =
  Alcotest.(check bool) "no values -> None" true
    (Histogram.build [| Value.Null; Value.Null |] ~n_buckets:4 = None)

let test_histogram_fraction_bounds () =
  let h = Option.get (Histogram.build (ints (List.init 100 (fun i -> i))) ~n_buckets:10) in
  Alcotest.(check (float 1e-9)) "below min" 0.0 (Histogram.fraction_le h (Value.Int (-1)));
  Alcotest.(check (float 1e-9)) "above max" 1.0 (Histogram.fraction_le h (Value.Int 200));
  let mid = Histogram.fraction_le h (Value.Int 49) in
  Alcotest.(check bool) "median around 0.5" true (mid > 0.4 && mid < 0.6)

let test_histogram_monotone () =
  let h = Option.get (Histogram.build (ints (List.init 50 (fun i -> i * 3))) ~n_buckets:8) in
  let prev = ref 0.0 in
  for x = -5 to 160 do
    let f = Histogram.fraction_le h (Value.Int x) in
    Alcotest.(check bool) "monotone" true (f >= !prev -. 1e-12);
    prev := f
  done

let test_histogram_between () =
  let h = Option.get (Histogram.build (ints (List.init 100 (fun i -> i))) ~n_buckets:10) in
  Alcotest.(check (float 1e-9)) "empty range" 0.0
    (Histogram.fraction_between h ~lo:(Value.Int 50) ~hi:(Value.Int 40));
  let f = Histogram.fraction_between h ~lo:(Value.Int 20) ~hi:(Value.Int 39) in
  Alcotest.(check bool) "about 20%" true (f > 0.12 && f < 0.28)

let test_column_stats_basics () =
  let cs = Column_stats.of_values (ints [ 1; 1; 1; 2; 3; 4; 5 ]) in
  Alcotest.(check int) "5 distinct" 5 cs.Column_stats.n_distinct;
  Alcotest.(check (float 1e-9)) "no nulls" 0.0 cs.Column_stats.null_frac;
  Alcotest.(check bool) "min" true (cs.Column_stats.min_v = Some (Value.Int 1));
  Alcotest.(check bool) "max" true (cs.Column_stats.max_v = Some (Value.Int 5));
  Alcotest.(check bool) "1 is an MCV" true
    (Column_stats.mcv_freq cs (Value.Int 1) <> None)

let test_column_stats_nulls () =
  let cs = Column_stats.of_values [| Value.Null; Value.Int 1; Value.Null; Value.Int 2 |] in
  Alcotest.(check (float 1e-9)) "half null" 0.5 cs.Column_stats.null_frac;
  Alcotest.(check int) "2 distinct" 2 cs.Column_stats.n_distinct

let test_column_stats_all_null () =
  let cs = Column_stats.of_values [| Value.Null; Value.Null |] in
  Alcotest.(check int) "0 distinct" 0 cs.Column_stats.n_distinct;
  Alcotest.(check bool) "no hist" true (cs.Column_stats.hist = None);
  Alcotest.(check (float 1e-9)) "max_freq fallback" 1.0 (Column_stats.max_freq cs)

let test_uniform_column_no_mcvs () =
  let cs = Column_stats.of_values (ints (List.init 1000 (fun i -> i))) in
  Alcotest.(check (list (pair (of_pp Value.pp) (float 0.0)))) "no MCVs on unique column"
    [] cs.Column_stats.mcvs

let sample_table () =
  let rows =
    Array.init 1000 (fun i ->
        [| Value.Int i; Value.Str (if i mod 10 = 0 then "hot" else "cold" ^ string_of_int i) |])
  in
  Table.create ~name:"t"
    ~schema:(Schema.make "t" [ ("id", Value.TInt); ("tag", Value.TStr) ])
    rows

let test_analyze () =
  let stats = Analyze.of_table (sample_table ()) in
  Alcotest.(check int) "row count" 1000 (Table_stats.n_rows stats);
  Alcotest.(check bool) "has col stats" true (Table_stats.has_column_stats stats);
  let id = Option.get (Table_stats.find stats ~rel:"t" ~name:"id") in
  Alcotest.(check int) "id distinct = 1000" 1000 id.Column_stats.n_distinct

let test_analyze_sampling_extrapolates () =
  let rows = Array.init 60_000 (fun i -> [| Value.Int i |]) in
  let t = Table.create ~name:"big" ~schema:(Schema.make "big" [ ("id", Value.TInt) ]) rows in
  let stats = Analyze.of_table ~sample:4000 t in
  let id = Option.get (Table_stats.find stats ~rel:"big" ~name:"id") in
  (* the sample saturates (all distinct), so ndv must extrapolate to ~60k *)
  Alcotest.(check bool) "extrapolated" true (id.Column_stats.n_distinct > 50_000)

(* per-chunk sampling: the proportional quotas must sum to the requested
   sample, so a sharded table extrapolates like a flat one *)
let test_analyze_chunked () =
  let rows = Array.init 60_000 (fun i -> [| Value.Int i |]) in
  let schema = Schema.make "big" [ ("id", Value.TInt) ] in
  let chunked = Table.create ~chunk_rows:1000 ~name:"big" ~schema rows in
  Alcotest.(check int) "60 chunks" 60 (Table.n_chunks chunked);
  let stats = Analyze.of_table ~sample:4000 chunked in
  Alcotest.(check int) "row count" 60_000 (Table_stats.n_rows stats);
  let id = Option.get (Table_stats.find stats ~rel:"big" ~name:"id") in
  Alcotest.(check bool) "extrapolated" true (id.Column_stats.n_distinct > 50_000)

let test_rowcount_only () =
  let stats = Analyze.rowcount_of_table (sample_table ()) in
  Alcotest.(check int) "rows" 1000 (Table_stats.n_rows stats);
  Alcotest.(check bool) "no col stats" false (Table_stats.has_column_stats stats);
  Alcotest.(check bool) "find none" true (Table_stats.find stats ~rel:"t" ~name:"id" = None)

(* selectivity over a concrete, known distribution *)
let stats_of_sample () =
  let stats = Analyze.of_table (sample_table ()) in
  fun (c : Expr.colref) -> Table_stats.find stats ~rel:c.Expr.rel ~name:c.Expr.name

let test_eq_selectivity_mcv () =
  let stats_of = stats_of_sample () in
  let sel = Selectivity.pred ~stats_of (Expr.Cmp (Expr.Eq, Expr.col "t" "tag", Expr.vstr "hot")) in
  Alcotest.(check bool) "hot ~ 10%" true (sel > 0.05 && sel < 0.2)

let test_range_selectivity () =
  let stats_of = stats_of_sample () in
  let sel = Selectivity.pred ~stats_of (Expr.Cmp (Expr.Lt, Expr.col "t" "id", Expr.vint 250)) in
  Alcotest.(check bool) "quarter" true (sel > 0.15 && sel < 0.35)

let test_between_selectivity () =
  let stats_of = stats_of_sample () in
  let sel =
    Selectivity.pred ~stats_of (Expr.Between (Expr.col "t" "id", Value.Int 100, Value.Int 299))
  in
  Alcotest.(check bool) "about 20%" true (sel > 0.1 && sel < 0.3)

let test_like_selectivity_prefix () =
  let stats_of = stats_of_sample () in
  let sel = Selectivity.pred ~stats_of (Expr.Like (Expr.col "t" "tag", "hot%")) in
  Alcotest.(check bool) "prefix like small" true (sel > 0.0 && sel < 0.3)

let test_conj_independence () =
  let stats_of = stats_of_sample () in
  let p1 = Expr.Cmp (Expr.Lt, Expr.col "t" "id", Expr.vint 500) in
  let p2 = Expr.Cmp (Expr.Eq, Expr.col "t" "tag", Expr.vstr "hot") in
  let s1 = Selectivity.pred ~stats_of p1 in
  let s2 = Selectivity.pred ~stats_of p2 in
  let both = Selectivity.conj ~stats_of [ p1; p2 ] in
  Alcotest.(check (float 1e-9)) "product rule" (s1 *. s2) both

(* regression: when the MCV list covers every observed distinct value
   (rest_distinct = 0), eq_sel used to fall back to default_eq_sel
   (0.005) for any value outside the list — overestimating misses against
   small complete domains. It must return the clamped residual mass. *)
let test_eq_sel_full_mcv_coverage () =
  let values = Array.init 100 (fun i -> Value.Int (if i < 90 then 1 else 2)) in
  let cs = Column_stats.of_values values in
  Alcotest.(check int) "2 distinct" 2 cs.Column_stats.n_distinct;
  Alcotest.(check int) "MCVs cover the domain" 2 (List.length cs.Column_stats.mcvs);
  let sel = Selectivity.eq_sel cs (Value.Int 999) in
  Alcotest.(check bool) "below the no-stats default" true
    (sel < Selectivity.default_eq_sel);
  let rarest =
    List.fold_left (fun a (_, f) -> Float.min a f) 1.0 cs.Column_stats.mcvs
  in
  Alcotest.(check bool) "capped by rarest MCV" true (sel <= rarest)

let test_prefix_successor () =
  Alcotest.(check (option string)) "ab -> ac" (Some "ac")
    (Selectivity.prefix_successor "ab");
  Alcotest.(check (option string)) "trailing 0xff dropped" (Some "b")
    (Selectivity.prefix_successor "a\xff");
  Alcotest.(check (option string)) "all 0xff -> none" None
    (Selectivity.prefix_successor "\xff\xff");
  Alcotest.(check (option string)) "empty -> none" None
    (Selectivity.prefix_successor "")

(* regression: the prefix range upper bound used to be [p ^ "\xff"], which
   excludes strings like "ab\xffq" that do start with "ab". With half the
   column above that old bound, the old estimate was ~half the truth. *)
let test_like_sel_high_byte_prefix () =
  let values =
    Array.init 100 (fun i ->
        Value.Str
          (if i < 25 then Printf.sprintf "ab%02d" i
           else if i < 50 then Printf.sprintf "ab\xff%02d" i
           else Printf.sprintf "zz%02d" i))
  in
  let cs = Column_stats.of_values values in
  let sel = Selectivity.like_sel (Some cs) "ab%" in
  (* truth is 0.5; the pre-fix bound captured only ~0.25 *)
  Alcotest.(check bool) "covers high-byte suffixes" true (sel > 0.4 && sel < 0.6)

let test_no_stats_defaults () =
  let stats_of _ = None in
  Alcotest.(check (float 1e-9)) "default eq" Selectivity.default_eq_sel
    (Selectivity.pred ~stats_of (Expr.Cmp (Expr.Eq, Expr.col "x" "c", Expr.vint 1)));
  Alcotest.(check (float 1e-9)) "default range" Selectivity.default_range_sel
    (Selectivity.pred ~stats_of (Expr.Cmp (Expr.Lt, Expr.col "x" "c", Expr.vint 1)))

let arbitrary_pred_sel =
  (* all selectivities must live in (0, 1] *)
  QCheck.Test.make ~name:"selectivity in (0,1]" ~count:300
    QCheck.(pair (int_range (-2000) 2000) (int_range 0 5))
    (fun (v, kind) ->
      let stats_of = stats_of_sample () in
      let c = Expr.col "t" "id" in
      let p =
        match kind with
        | 0 -> Expr.Cmp (Expr.Eq, c, Expr.vint v)
        | 1 -> Expr.Cmp (Expr.Lt, c, Expr.vint v)
        | 2 -> Expr.Cmp (Expr.Ge, c, Expr.vint v)
        | 3 -> Expr.Between (c, Value.Int v, Value.Int (v + 100))
        | 4 -> Expr.In_list (c, [ Value.Int v; Value.Int (v + 1) ])
        | _ -> Expr.Or [ Expr.Cmp (Expr.Eq, c, Expr.vint v) ]
      in
      let s = Selectivity.pred ~stats_of p in
      s > 0.0 && s <= 1.0)

let suite =
  [
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram bounds" `Quick test_histogram_fraction_bounds;
    Alcotest.test_case "histogram monotone" `Quick test_histogram_monotone;
    Alcotest.test_case "histogram between" `Quick test_histogram_between;
    Alcotest.test_case "column stats basics" `Quick test_column_stats_basics;
    Alcotest.test_case "column stats nulls" `Quick test_column_stats_nulls;
    Alcotest.test_case "column stats all null" `Quick test_column_stats_all_null;
    Alcotest.test_case "uniform no mcvs" `Quick test_uniform_column_no_mcvs;
    Alcotest.test_case "analyze" `Quick test_analyze;
    Alcotest.test_case "analyze sampling" `Quick test_analyze_sampling_extrapolates;
    Alcotest.test_case "rowcount only" `Quick test_rowcount_only;
    Alcotest.test_case "eq sel via mcv" `Quick test_eq_selectivity_mcv;
    Alcotest.test_case "range sel" `Quick test_range_selectivity;
    Alcotest.test_case "between sel" `Quick test_between_selectivity;
    Alcotest.test_case "like prefix sel" `Quick test_like_selectivity_prefix;
    Alcotest.test_case "eq sel: full MCV coverage" `Quick test_eq_sel_full_mcv_coverage;
    Alcotest.test_case "prefix successor" `Quick test_prefix_successor;
    Alcotest.test_case "like sel: high-byte prefix" `Quick test_like_sel_high_byte_prefix;
    Alcotest.test_case "analyze chunked table" `Quick test_analyze_chunked;
    Alcotest.test_case "conjunction independence" `Quick test_conj_independence;
    Alcotest.test_case "no-stats defaults" `Quick test_no_stats_defaults;
    QCheck_alcotest.to_alcotest arbitrary_pred_sel;
  ]
