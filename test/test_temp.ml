(* Temp-table materialization (§5) and the §6.4 statistics switch. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Temp = Qs_exec.Temp
module Table_stats = Qs_stats.Table_stats
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr

let source () =
  Table.of_rows ~name:"join"
    ~schema:
      (Schema.concat
         (Schema.make "a" [ ("id", Value.TInt); ("x", Value.TStr) ])
         (Schema.make "b" [ ("id", Value.TInt); ("y", Value.TInt) ]))
    [
      [| Value.Int 1; Value.Str "p"; Value.Int 9; Value.Int 100 |];
      [| Value.Int 2; Value.Str "q"; Value.Int 8; Value.Int 200 |];
    ]

let test_namer_sequences () =
  let n1 = Temp.namer () in
  let n2 = Temp.namer () in
  Alcotest.(check string) "T1" "T1" (n1 ());
  Alcotest.(check string) "T2" "T2" (n1 ());
  Alcotest.(check string) "independent generator" "T1" (n2 ())

let test_materialize_projects_and_renames () =
  let t =
    Temp.materialize ~name:"T1"
      ~keep:[ { Expr.rel = "a"; name = "id" }; { Expr.rel = "b"; name = "y" } ]
      (source ())
  in
  Alcotest.(check string) "renamed" "T1" t.Table.name;
  Alcotest.(check int) "two columns" 2 (Schema.arity t.Table.schema);
  (* alias qualifiers survive, so pending predicates still resolve *)
  Alcotest.(check bool) "a.id kept" true (Schema.mem t.Table.schema ~rel:"a" ~name:"id");
  Alcotest.(check bool) "b.y kept" true (Schema.mem t.Table.schema ~rel:"b" ~name:"y");
  Alcotest.(check int) "rows preserved" 2 (Table.n_rows t)

let test_materialize_keep_everything () =
  let t = Temp.materialize ~name:"T1" ~keep:[] (source ()) in
  Alcotest.(check int) "all columns" 4 (Schema.arity t.Table.schema)

let test_stats_modes () =
  let t = source () in
  let full = Temp.stats_of ~collect:true t in
  let rc = Temp.stats_of ~collect:false t in
  Alcotest.(check bool) "analyzed" true (Table_stats.has_column_stats full);
  Alcotest.(check bool) "rowcount only" false (Table_stats.has_column_stats rc);
  Alcotest.(check int) "both know the row count" (Table_stats.n_rows full)
    (Table_stats.n_rows rc)

let test_to_input () =
  let t = Temp.materialize ~name:"T1" ~keep:[] (source ()) in
  let input =
    Temp.to_input ~name:"T1" ~provenance:"prov" ~provides:[ "a"; "b" ]
      ~collect_stats:true t
  in
  Alcotest.(check bool) "temp flag" true input.Fragment.is_temp;
  Alcotest.(check bool) "no base table" true (input.Fragment.base_table = None);
  Alcotest.(check (list string)) "provides" [ "a"; "b" ] input.Fragment.provides;
  Alcotest.(check string) "provenance" "prov" input.Fragment.provenance;
  Alcotest.(check int) "no pending filters" 0 (List.length input.Fragment.filters);
  Alcotest.(check bool) "stats attached" true
    (Table_stats.find input.Fragment.stats ~rel:"a" ~name:"id" <> None)

let suite =
  [
    Alcotest.test_case "namer" `Quick test_namer_sequences;
    Alcotest.test_case "materialize projects" `Quick test_materialize_projects_and_renames;
    Alcotest.test_case "materialize keep all" `Quick test_materialize_keep_everything;
    Alcotest.test_case "stats modes" `Quick test_stats_modes;
    Alcotest.test_case "to_input" `Quick test_to_input;
  ]
