(* Temp-table materialization (§5) and the §6.4 statistics switch. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Temp = Qs_exec.Temp
module Table_stats = Qs_stats.Table_stats
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr

let source () =
  Table.of_rows ~name:"join"
    ~schema:
      (Schema.concat
         (Schema.make "a" [ ("id", Value.TInt); ("x", Value.TStr) ])
         (Schema.make "b" [ ("id", Value.TInt); ("y", Value.TInt) ]))
    [
      [| Value.Int 1; Value.Str "p"; Value.Int 9; Value.Int 100 |];
      [| Value.Int 2; Value.Str "q"; Value.Int 8; Value.Int 200 |];
    ]

let test_namer_sequences () =
  let n1 = Temp.namer () in
  let n2 = Temp.namer () in
  Alcotest.(check string) "T1" "T1" (n1 ());
  Alcotest.(check string) "T2" "T2" (n1 ());
  Alcotest.(check string) "independent generator" "T1" (n2 ())

let test_materialize_projects_and_renames () =
  let t =
    Temp.materialize ~name:"T1"
      ~keep:[ { Expr.rel = "a"; name = "id" }; { Expr.rel = "b"; name = "y" } ]
      (source ())
  in
  Alcotest.(check string) "renamed" "T1" t.Table.name;
  Alcotest.(check int) "two columns" 2 (Schema.arity t.Table.schema);
  (* alias qualifiers survive, so pending predicates still resolve *)
  Alcotest.(check bool) "a.id kept" true (Schema.mem t.Table.schema ~rel:"a" ~name:"id");
  Alcotest.(check bool) "b.y kept" true (Schema.mem t.Table.schema ~rel:"b" ~name:"y");
  Alcotest.(check int) "rows preserved" 2 (Table.n_rows t)

let test_materialize_keep_everything () =
  let t = Temp.materialize ~name:"T1" ~keep:[] (source ()) in
  Alcotest.(check int) "all columns" 4 (Schema.arity t.Table.schema)

let test_stats_modes () =
  let t = source () in
  let full = Temp.stats_of ~collect:true t in
  let rc = Temp.stats_of ~collect:false t in
  Alcotest.(check bool) "analyzed" true (Table_stats.has_column_stats full);
  Alcotest.(check bool) "rowcount only" false (Table_stats.has_column_stats rc);
  Alcotest.(check int) "both know the row count" (Table_stats.n_rows full)
    (Table_stats.n_rows rc)

let test_to_input () =
  let t = Temp.materialize ~name:"T1" ~keep:[] (source ()) in
  let input =
    Temp.to_input ~name:"T1" ~provenance:"prov" ~provides:[ "a"; "b" ]
      ~collect_stats:true t
  in
  Alcotest.(check bool) "temp flag" true input.Fragment.is_temp;
  Alcotest.(check bool) "no base table" true (input.Fragment.base_table = None);
  Alcotest.(check (list string)) "provides" [ "a"; "b" ] input.Fragment.provides;
  Alcotest.(check string) "provenance" "prov" input.Fragment.provenance;
  Alcotest.(check int) "no pending filters" 0 (List.length input.Fragment.filters);
  Alcotest.(check bool) "stats attached" true
    (Table_stats.find input.Fragment.stats ~rel:"a" ~name:"id" <> None)

(* --- partition-aware temps --------------------------------------------- *)

module Executor = Qs_exec.Executor
module Physical = Qs_plan.Physical
module Pool = Qs_util.Pool

(* r0(id) is a hub: r1.fk and r2.fk both reference it *)
let hub_tables () =
  let r0 =
    Table.create ~name:"r0"
      ~schema:(Schema.make "r0" [ ("id", Value.TInt); ("a", Value.TStr) ])
      (Array.init 40 (fun i ->
           [| Value.Int (i + 1); Value.Str (string_of_int (i * 3)) |]))
  in
  let r1 =
    Table.create ~name:"r1"
      ~schema:(Schema.make "r1" [ ("fk", Value.TInt); ("w", Value.TInt) ])
      (Array.init 120 (fun i -> [| Value.Int (1 + (i * 7 mod 40)); Value.Int i |]))
  in
  let r2 =
    Table.create ~name:"r2"
      ~schema:(Schema.make "r2" [ ("fk", Value.TInt); ("u", Value.TInt) ])
      (* some fks miss the hub entirely *)
      (Array.init 60 (fun i -> [| Value.Int (1 + (i * 11 mod 50)); Value.Int (-i) |]))
  in
  (r0, r1, r2)

let input_of name t =
  Temp.to_input ~name ~provenance:"test" ~provides:[ name ] ~collect_stats:false t

let scan input = Physical.scan input ~est_rows:1.0 ~est_cost:1.0

(* Two QuerySplit-style steps by hand: join r1 with the hub, materialize
   the result as a temp (optionally stripping its partition layout),
   then join the temp with r2 on the hub key again. *)
let two_step_digest ~pool ~drop_layout () =
  let r0, r1, r2 = hub_tables () in
  let plan1 =
    Physical.join ~method_:Physical.Hash () ~left:(scan (input_of "r1" r1))
      ~right:(scan (input_of "r0" r0))
      ~preds:[ Expr.eq (Expr.col "r1" "fk") (Expr.col "r0" "id") ]
      ~est_rows:1.0 ~est_cost:1.0
  in
  let t1, _ = Executor.run ~mode:Executor.Pipeline ?pool plan1 in
  let temp = Temp.materialize ~name:"T1" ~keep:[] t1 in
  let temp = if drop_layout then Table.without_partitioning temp else temp in
  let plan2 =
    Physical.join ~method_:Physical.Hash () ~left:(scan (input_of "r2" r2))
      ~right:(scan (input_of "T1" temp))
      ~preds:[ Expr.eq (Expr.col "r2" "fk") (Expr.col "r0" "id") ]
      ~est_rows:1.0 ~est_cost:1.0
  in
  let out, _ = Executor.run ~mode:Executor.Pipeline ?pool plan2 in
  Table.digest out

(* The property behind partition-aware temps: whether or not the next
   step consumes the temp through its preserved layout, the result is
   byte-identical — across chunk sizes {1,7,64} and pool widths {1,4}. *)
let test_layout_invariance_property () =
  let saved = Table.default_chunk_rows () in
  Fun.protect
    ~finally:(fun () -> Table.set_default_chunk_rows saved)
    (fun () ->
      let expected = ref None in
      List.iter
        (fun chunk_rows ->
          Table.set_default_chunk_rows chunk_rows;
          List.iter
            (fun width ->
              Pool.with_pool ~domains:width (fun pool ->
                  List.iter
                    (fun drop_layout ->
                      Executor.reset_counters ();
                      let d =
                        two_step_digest ~pool:(Some pool) ~drop_layout ()
                      in
                      let label =
                        Printf.sprintf
                          "digest (chunk_rows=%d width=%d layout %s)" chunk_rows
                          width
                          (if drop_layout then "dropped" else "preserved")
                      in
                      (match !expected with
                      | None -> expected := Some d
                      | Some e -> Alcotest.(check string) label e d);
                      (* the layout really is what step 2 consumes: with
                         it, the partitioned join reuses; without it (or
                         without partitions), it re-hashes every row *)
                      let reused = Executor.partition_reuses () > 0 in
                      Alcotest.(check bool)
                        (label ^ ": reuse iff preserved and partitioned")
                        ((not drop_layout) && width > 1)
                        reused)
                    [ false; true ]))
            [ 1; 4 ])
        [ 1; 7; 64 ])

let suite =
  [
    Alcotest.test_case "namer" `Quick test_namer_sequences;
    Alcotest.test_case "materialize projects" `Quick test_materialize_projects_and_renames;
    Alcotest.test_case "materialize keep all" `Quick test_materialize_keep_everything;
    Alcotest.test_case "stats modes" `Quick test_stats_modes;
    Alcotest.test_case "to_input" `Quick test_to_input;
    Alcotest.test_case "partitioned temp layout invariance" `Quick
      test_layout_invariance_property;
  ]
