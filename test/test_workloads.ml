(* The workload generators: schema shapes, query counts, validity,
   non-emptiness of the witness-based Cinema queries. *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Logical = Qs_plan.Logical
module Strategy = Qs_core.Strategy
module Estimator = Qs_stats.Estimator
module Naive = Qs_exec.Naive

let test_cinema_schema () =
  let cat = Lazy.force Fixtures.cinema in
  Alcotest.(check int) "13 tables" 13 (List.length (Catalog.tables cat));
  Alcotest.(check int) "12 fks" 12 (List.length (Catalog.fks cat));
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exists") true (Catalog.mem_table cat name))
    [
      "title"; "movie_keyword"; "cast_info"; "movie_companies"; "movie_info";
      "keyword"; "name"; "company_name"; "char_name"; "kind_type"; "info_type";
      "role_type"; "company_type";
    ]

let test_cinema_determinism () =
  let a = Qs_workload.Cinema.build ~scale:0.05 ~seed:42 () in
  let b = Qs_workload.Cinema.build ~scale:0.05 ~seed:42 () in
  List.iter
    (fun (t : Table.t) ->
      let t' = Catalog.table b t.Table.name in
      Alcotest.(check bool) (t.Table.name ^ " identical") true
        (Fixtures.tables_equal t t'))
    (Catalog.tables a)

let test_cinema_queries_validate () =
  let cat = Lazy.force Fixtures.cinema in
  List.iter
    (fun q ->
      match Query.validate cat q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" q.Query.name e)
    (Lazy.force Fixtures.cinema_queries)

let test_cinema_queries_nonempty () =
  let cat = Lazy.force Fixtures.cinema in
  let registry = Qs_stats.Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Estimator.default in
  List.iter
    (fun q ->
      let n = Naive.count (Strategy.fragment_of_query ctx q) in
      if n = 0 then Alcotest.failf "%s is empty" q.Query.name)
    (Lazy.force Fixtures.cinema_queries)

let test_cinema_query_shapes () =
  let qs = Lazy.force Fixtures.cinema_queries in
  Alcotest.(check int) "requested count" 12 (List.length qs);
  List.iter
    (fun q ->
      let n = List.length q.Query.rels in
      Alcotest.(check bool) "2..11 relations" true (n >= 2 && n <= 11);
      Alcotest.(check bool) "has title" true
        (List.exists (fun (r : Query.rel) -> r.Query.alias = "t") q.Query.rels);
      Alcotest.(check bool) "has projection" true (q.Query.output <> []))
    qs

let test_cinema_91 () =
  let cat = Lazy.force Fixtures.cinema in
  let qs = Qs_workload.Cinema.queries cat ~seed:5 ~n:Qs_workload.Cinema.default_query_count in
  Alcotest.(check int) "91 queries" 91 (List.length qs);
  (* names unique *)
  let names = List.map (fun q -> q.Query.name) qs in
  Alcotest.(check int) "unique names" 91 (List.length (List.sort_uniq compare names))

let test_starbench_counts () =
  let cat = Qs_workload.Starbench.build ~scale:0.05 ~seed:1 () in
  Alcotest.(check int) "8 tables" 8 (List.length (Catalog.tables cat));
  let qs = Qs_workload.Starbench.queries cat ~seed:2 in
  Alcotest.(check int) "22 queries" 22 (List.length qs);
  (* all are non-SPJ trees *)
  List.iter
    (fun t -> Alcotest.(check bool) "non-SPJ" false (Logical.is_spj t))
    qs

let test_dsb_counts () =
  let cat = Qs_workload.Dsb.build ~scale:0.05 ~seed:1 () in
  Alcotest.(check int) "8 tables" 8 (List.length (Catalog.tables cat));
  Alcotest.(check int) "15 spj" 15 (List.length (Qs_workload.Dsb.spj_queries cat ~seed:2));
  Alcotest.(check int) "37 nonspj" 37
    (List.length (Qs_workload.Dsb.nonspj_queries cat ~seed:2))

let test_dsb_spj_validate () =
  let cat = Qs_workload.Dsb.build ~scale:0.05 ~seed:1 () in
  List.iter
    (fun q ->
      match Query.validate cat q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" q.Query.name e)
    (Qs_workload.Dsb.spj_queries cat ~seed:2)

let test_dsb_has_fact_fact_joins () =
  let cat = Qs_workload.Dsb.build ~scale:0.05 ~seed:1 () in
  let qs = Qs_workload.Dsb.spj_queries cat ~seed:2 in
  let cross_channel =
    List.filter
      (fun q ->
        let aliases = Query.aliases q in
        List.mem "ss" aliases && List.mem "ws" aliases)
      qs
  in
  Alcotest.(check bool) "some inverse-star queries" true (List.length cross_channel >= 1)

let test_skew_present () =
  (* the hottest movie must have far more cast rows than the median *)
  let cat = Lazy.force Fixtures.cinema in
  let ci = Catalog.table cat "cast_info" in
  let counts = Hashtbl.create 1024 in
  Table.iter
    (fun row ->
      let m = row.(1) in
      Hashtbl.replace counts m (1 + Option.value (Hashtbl.find_opt counts m) ~default:0))
    ci;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let sorted = List.sort (fun a b -> compare b a) all in
  let top = List.hd sorted in
  let median = List.nth sorted (List.length sorted / 2) in
  Alcotest.(check bool) "zipf head heavy" true (top > 10 * median)

let suite =
  [
    Alcotest.test_case "cinema schema" `Quick test_cinema_schema;
    Alcotest.test_case "cinema determinism" `Quick test_cinema_determinism;
    Alcotest.test_case "cinema queries validate" `Quick test_cinema_queries_validate;
    Alcotest.test_case "cinema queries non-empty" `Quick test_cinema_queries_nonempty;
    Alcotest.test_case "cinema query shapes" `Quick test_cinema_query_shapes;
    Alcotest.test_case "cinema 91" `Slow test_cinema_91;
    Alcotest.test_case "starbench counts" `Quick test_starbench_counts;
    Alcotest.test_case "dsb counts" `Quick test_dsb_counts;
    Alcotest.test_case "dsb spj validate" `Quick test_dsb_spj_validate;
    Alcotest.test_case "dsb fact-fact" `Quick test_dsb_has_fact_fact_joins;
    Alcotest.test_case "skew present" `Quick test_skew_present;
  ]
