(* Out-of-core storage: chunk-file round-trips, buffer-pool behavior
   (eviction, pinning, bypass, prefetch), degenerate chunk inputs, the
   200-query differential corpus run fully out-of-core at pool widths
   {1,4}, pin-leak checks under cancellation, eviction under concurrent
   scans, and the plan-cache raising-computation regression. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Table = Qs_storage.Table
module Chunk = Qs_storage.Chunk
module Chunk_file = Qs_storage.Chunk_file
module Buffer_pool = Qs_storage.Buffer_pool
module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Plan_cache = Qs_plan.Plan_cache
module Executor = Qs_exec.Executor
module Naive = Qs_exec.Naive
module Strategy = Qs_core.Strategy
module Fuzz = Qs_workload.Fuzz
module Pool = Qs_util.Pool
module Timer = Qs_util.Timer

(* --- spill-mode scaffolding ------------------------------------------- *)

let temp_dir () =
  let f = Filename.temp_file "qs_spill" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

(* Run [f bp] with spill mode on (fresh scratch dir, fresh pool) and the
   previous global config restored afterwards — tests must not leak
   spill mode into each other. *)
let with_spill ?(prefetch = 2) ?io_pool ~capacity f =
  let dir = temp_dir () in
  let bp = Buffer_pool.create ~prefetch ~capacity () in
  Buffer_pool.set_io_pool bp io_pool;
  let saved = Table.spill_config () in
  Table.set_spill (Some (dir, bp));
  Fun.protect
    ~finally:(fun () ->
      Table.set_spill saved;
      rm_rf dir)
    (fun () -> f bp)

let with_chunk_rows n f =
  let saved = Table.default_chunk_rows () in
  Table.set_default_chunk_rows n;
  Fun.protect ~finally:(fun () -> Table.set_default_chunk_rows saved) f

let with_layout layout f =
  let saved = Table.default_layout () in
  Table.set_default_layout layout;
  Fun.protect ~finally:(fun () -> Table.set_default_layout saved) f

let schema2 name = Schema.make name [ ("id", Value.TInt); ("v", Value.TStr) ]

let mk_rows n = Array.init n (fun i -> [| Value.Int i; Value.Str (string_of_int (i * 7)) |])

(* --- chunk-file format ------------------------------------------------- *)

let test_chunk_file_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let chunks =
    [|
      [|
        [| Value.Null; Value.Bool true; Value.Int min_int; Value.Float 0.1 |];
        [| Value.Str ""; Value.Bool false; Value.Int max_int; Value.Float (-0.0) |];
      |];
      [|
        [|
          Value.Str (String.make 300 'x');
          Value.Null;
          Value.Int (-42);
          Value.Float Float.nan;
        |];
      |];
      [|
        [| Value.Str "a\x00b"; Value.Bool true; Value.Int 0; Value.Float infinity |];
        [| Value.Str "snake"; Value.Bool false; Value.Int 7; Value.Float 1e-300 |];
        [| Value.Null; Value.Null; Value.Null; Value.Null |];
      |];
    |]
  in
  let file, logical =
    Chunk_file.write ~dir ~name:"round trip!" ~arity:4
      (Array.map Chunk.of_rows chunks)
  in
  Alcotest.(check int) "frames" 3 (Chunk_file.n_frames file);
  Array.iteri
    (fun i chunk ->
      let got = Chunk.rows (Chunk_file.read file i) in
      Alcotest.(check int) "rows" (Array.length chunk) (Array.length got);
      Array.iteri
        (fun r row ->
          Array.iteri
            (fun c v ->
              if Value.compare v got.(r).(c) <> 0 then
                Alcotest.failf "frame %d row %d col %d: %s <> %s" i r c
                  (Value.to_string v)
                  (Value.to_string got.(r).(c)))
            row)
        chunk;
      let expect_logical =
        Array.fold_left
          (fun a row -> Array.fold_left (fun a v -> a + Value.byte_size v) a row)
          0 chunk
      in
      Alcotest.(check int) "logical bytes" expect_logical logical.(i))
    chunks;
  (* reads are position-independent: frame 2 then frame 0 *)
  Alcotest.(check int)
    "re-read frame 0" 2
    (Chunk.n_rows (Chunk_file.read file 0));
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Chunk_file.read %s: frame 3 of 3" (Chunk_file.path file)))
    (fun () -> ignore (Chunk_file.read file 3))

let test_chunk_file_rejects_empty () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (try
     ignore
       (Chunk_file.write ~dir ~name:"bad" ~arity:1
          [| Chunk.of_rows [| [| Value.Int 1 |] |]; Chunk.of_rows [||] |]);
     Alcotest.fail "empty chunk accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Chunk_file.write ~dir ~name:"none" ~arity:1 [||]);
    Alcotest.fail "empty chunk array accepted"
  with Invalid_argument _ -> ()

(* --- spilled tables behave like resident ones -------------------------- *)

let test_spilled_table_equals_resident () =
  let rows = mk_rows 50 in
  let resident = Table.create ~chunk_rows:7 ~name:"t" ~schema:(schema2 "t") rows in
  with_spill ~capacity:2 (fun bp ->
      let spilled = Table.create ~chunk_rows:7 ~name:"t" ~schema:(schema2 "t") rows in
      Alcotest.(check bool) "is spilled" true (Table.spilled spilled);
      Alcotest.(check bool) "resident is not" false (Table.spilled resident);
      Alcotest.(check int) "chunks" (Table.n_chunks resident) (Table.n_chunks spilled);
      Alcotest.(check string) "digest" (Table.digest resident) (Table.digest spilled);
      (* random access faults the right chunks *)
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "row %d" i)
            true
            (Table.row resident i = Table.row spilled i))
        [ 0; 6; 7; 13; 49 ];
      Alcotest.(check bool) "to_rows" true (Table.to_rows resident = Table.to_rows spilled);
      Alcotest.(check bool)
        "column_values" true
        (Table.column_values resident 1 = Table.column_values spilled 1);
      Alcotest.(check int) "byte_size" (Table.byte_size resident) (Table.byte_size spilled);
      (* iteration faulted well more chunks than fit in the pool *)
      let s = Buffer_pool.stats bp in
      Alcotest.(check bool) "misses happened" true (s.Buffer_pool.misses > 0);
      Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions > 0);
      Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp))

(* --- degenerate chunk inputs (the of_chunks / binary-search sweep) ----- *)

let row1 i = [| Value.Int i; Value.Str (string_of_int i) |]

let check_degenerate () =
  (* empty chunks interleaved in ragged input are dropped; offsets stay
     strictly increasing and row access lands on the right rows *)
  let t =
    Table.of_chunks ~name:"d" ~schema:(schema2 "d")
      [ [||]; [| row1 0 |]; [||]; [||]; [| row1 1; row1 2 |]; [||]; [| row1 3 |]; [||] ]
  in
  Alcotest.(check int) "chunks" 3 (Table.n_chunks t);
  Alcotest.(check int) "rows" 4 (Table.n_rows t);
  for i = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "row %d" i) true (Table.row t i = row1 i)
  done;
  Alcotest.check_raises "row 4 out of range"
    (Invalid_argument "Table.row d: index 4 out of 4") (fun () ->
      ignore (Table.row t 4));
  (* an all-empty batch list is a zero-row, zero-chunk table *)
  let z = Table.of_chunks ~name:"z" ~schema:(schema2 "z") [ [||]; [||] ] in
  Alcotest.(check int) "zero chunks" 0 (Table.n_chunks z);
  Alcotest.(check int) "zero rows" 0 (Table.n_rows z);
  Alcotest.(check bool) "zero to_rows" true (Table.to_rows z = [||]);
  Alcotest.(check bool)
    "zero-row tables never spill" false (Table.spilled z);
  let e = Table.create ~name:"e" ~schema:(schema2 "e") [||] in
  Alcotest.(check int) "empty create" 0 (Table.n_rows e);
  Table.iter (fun _ -> Alcotest.fail "no rows to visit") z;
  ignore (Table.digest z)

let test_degenerate_resident () = check_degenerate ()

let test_degenerate_spilled () =
  (* the same sweep with spill mode on: dropping empties must happen
     before the chunk-file writer, which rejects zero-row frames *)
  with_spill ~capacity:2 (fun _bp -> check_degenerate ())

(* --- buffer-pool mechanics --------------------------------------------- *)

let test_hits_and_misses () =
  with_spill ~capacity:3 (fun bp ->
      let t = Table.create ~chunk_rows:5 ~name:"t" ~schema:(schema2 "t") (mk_rows 15) in
      Alcotest.(check int) "3 chunks" 3 (Table.n_chunks t);
      ignore (Table.chunk t 0);
      let s = Buffer_pool.stats bp in
      Alcotest.(check int) "one miss" 1 s.Buffer_pool.misses;
      ignore (Table.chunk t 0);
      ignore (Table.chunk t 0);
      let s = Buffer_pool.stats bp in
      Alcotest.(check int) "two hits" 2 s.Buffer_pool.hits;
      Alcotest.(check int) "still one miss" 1 s.Buffer_pool.misses;
      ignore (Table.chunk t 1);
      ignore (Table.chunk t 2);
      let s = Buffer_pool.stats bp in
      Alcotest.(check int) "all resident, no evictions" 0 s.Buffer_pool.evictions;
      Alcotest.(check int) "resident" 3 (Buffer_pool.resident bp))

let test_bypass_when_all_pinned () =
  with_spill ~capacity:1 (fun bp ->
      let t = Table.create ~chunk_rows:4 ~name:"t" ~schema:(schema2 "t") (mk_rows 12) in
      (* hold chunk 0 pinned (iter pins the chunk being consumed); chunk 1
         must still be readable — as an uncached bypass *)
      let seen = ref 0 in
      Table.iter
        (fun row ->
          incr seen;
          if !seen = 1 then begin
            Alcotest.(check int) "scan holds one pin" 1 (Buffer_pool.pinned bp);
            let c1 = Table.chunk t 1 in
            Alcotest.(check int) "bypass read is correct" 4 (Array.length c1);
            let s = Buffer_pool.stats bp in
            Alcotest.(check bool) "bypassed" true (s.Buffer_pool.bypasses >= 1)
          end;
          ignore row)
        t;
      Alcotest.(check int) "rows seen" 12 !seen;
      Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp))

exception Cancelled_mid_scan

let test_pin_released_on_cancellation () =
  with_spill ~capacity:2 (fun bp ->
      let t = Table.create ~chunk_rows:3 ~name:"t" ~schema:(schema2 "t") (mk_rows 30) in
      (* cancel mid-scan from inside the consumer (the executor's
         cooperative cancellation raises from exactly here) at several
         depths, including mid-chunk and on a chunk boundary *)
      List.iter
        (fun stop_at ->
          (try
             let n = ref 0 in
             Table.iter
               (fun _ ->
                 incr n;
                 if !n = stop_at then raise Cancelled_mid_scan)
               t;
             Alcotest.fail "scan was not cancelled"
           with Cancelled_mid_scan -> ());
          Alcotest.(check int)
            (Printf.sprintf "no pin leaked at row %d" stop_at)
            0 (Buffer_pool.pinned bp))
        [ 1; 3; 4; 29 ];
      (* fold unwinds the same way *)
      (try
         ignore
           (Table.fold (fun acc _ -> if acc = 7 then raise Cancelled_mid_scan else acc + 1) 0 t);
         Alcotest.fail "fold was not cancelled"
       with Cancelled_mid_scan -> ());
      Alcotest.(check int) "no pin leaked by fold" 0 (Buffer_pool.pinned bp))

let test_eviction_under_concurrent_scans () =
  Pool.with_pool ~domains:4 (fun cpu ->
      with_spill ~capacity:2 (fun bp ->
          let t =
            Table.create ~chunk_rows:8 ~name:"t" ~schema:(schema2 "t") (mk_rows 128)
          in
          Alcotest.(check int) "16 chunks" 16 (Table.n_chunks t);
          let expected = Table.digest t in
          (* 8 concurrent scans over a 2-frame pool: every access pattern
             races with eviction; each scan must still see every row *)
          let digests =
            Pool.map cpu
              (fun salt ->
                let sum = ref salt in
                Table.iteri (fun i r -> sum := !sum + (i * Array.length r)) t;
                ignore !sum;
                Table.digest t)
              (List.init 8 Fun.id)
          in
          List.iter (fun d -> Alcotest.(check string) "scan digest" expected d) digests;
          Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp);
          Alcotest.(check bool)
            "pool stayed bounded" true
            (Buffer_pool.resident bp <= 2)))

let test_prefetch_overlaps () =
  Pool.with_pool ~domains:2 (fun io ->
      with_spill ~prefetch:3 ~io_pool:io ~capacity:8 (fun bp ->
          let t =
            Table.create ~chunk_rows:8 ~name:"t" ~schema:(schema2 "t") (mk_rows 256)
          in
          (* a sequential scan with lookahead 3 on a wide-enough pool:
             prefetches are issued, and whatever the race outcome, the
             scan sees every row exactly once *)
          let n = ref 0 in
          Table.iter (fun _ -> incr n) t;
          Alcotest.(check int) "rows" 256 !n;
          let s = Buffer_pool.stats bp in
          Alcotest.(check bool) "prefetches issued" true (s.Buffer_pool.prefetch_issued > 0);
          (* every chunk was obtained exactly once per scan pass:
             misses + hits covers all 32 chunks of the pass *)
          Alcotest.(check bool)
            "fault accounting" true
            (s.Buffer_pool.hits + s.Buffer_pool.misses + s.Buffer_pool.coalesced >= 32);
          Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp)))

let test_prefetch_clamped_on_ragged () =
  (* a ragged table (of_chunks with uneven batches): lookahead from the
     tail chunks must be clamped to the file — an unclamped prefetch
     would either read past the last frame or inflate [prefetch_issued]
     beyond the n-1 chunks that can ever be prefetched (chunk 0 is the
     scan's own foreground fault). Capacity covers every chunk, so no
     frame is evicted and a wasted prefetch can only mean an issue
     against a chunk the scan never consumes. *)
  Pool.with_pool ~domains:2 (fun io ->
      with_spill ~prefetch:3 ~io_pool:io ~capacity:16 (fun bp ->
          let batches =
            List.map
              (fun n -> Array.init n (fun i -> row1 (100 * n + i)))
              [ 5; 1; 9; 3; 17; 2; 7; 1 ]
          in
          let ragged =
            [ [||] ] @ batches @ [ [||] ]
            |> List.concat_map (fun b -> [ b; [||] ])
          in
          let t = Table.of_chunks ~name:"rag" ~schema:(schema2 "rag") ragged in
          Alcotest.(check int) "8 ragged chunks" 8 (Table.n_chunks t);
          let rows = ref 0 in
          Table.iter_chunks (fun _ c -> rows := !rows + Array.length c) t;
          Alcotest.(check int) "all rows scanned" 45 !rows;
          let s = Buffer_pool.stats bp in
          Alcotest.(check bool)
            "prefetches issued" true
            (s.Buffer_pool.prefetch_issued > 0);
          Alcotest.(check bool)
            "issue count clamped to the file" true
            (s.Buffer_pool.prefetch_issued <= Table.n_chunks t - 1);
          Alcotest.(check int) "nothing evicted" 0 s.Buffer_pool.evictions;
          Alcotest.(check int) "no prefetch wasted" 0 s.Buffer_pool.prefetch_wasted;
          Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp)))

(* mid-pipeline unwinds: the pipelined engine polls deadline/cancel at
   every morsel boundary while the morsel's frame is pinned, and counts
   emitted rows against the row limit inside the probe fan-out — all
   three exits must release every pin on the way out *)
let pipelined_unwind_releases_pins layout =
  with_layout layout @@ fun () ->
  with_chunk_rows 16 (fun () ->
      with_spill ~capacity:2 (fun bp ->
          let cat = Fixtures.shop_catalog ~n_orders:300 () in
          let registry = Qs_stats.Stats_registry.create cat in
          let ctx = Strategy.make_ctx registry Estimator.default in
          let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
          let plan =
            (Optimizer.optimize cat Estimator.default frag).Optimizer.plan
          in
          (* a deadline already in the past fires at the first poll *)
          (try
             ignore
               (Executor.run ~mode:Executor.Pipeline
                  ~deadline:(Timer.now () -. 1.0)
                  plan);
             Alcotest.fail "expired deadline did not fire"
           with Executor.Timeout -> ());
          Alcotest.(check int) "no pins after timeout" 0 (Buffer_pool.pinned bp);
          (* a tiny row limit fires mid-probe, with build and probe frames live *)
          (try
             ignore (Executor.run ~mode:Executor.Pipeline ~row_limit:5 plan);
             Alcotest.fail "row limit did not fire"
           with Executor.Timeout -> ());
          Alcotest.(check int) "no pins after row limit" 0 (Buffer_pool.pinned bp);
          (* cooperative cancellation unwinds the same way *)
          let tok = Qs_util.Cancel.create () in
          Qs_util.Cancel.cancel tok;
          (try
             ignore (Executor.run ~mode:Executor.Pipeline ~cancel:tok plan);
             Alcotest.fail "cancellation did not fire"
           with Qs_util.Cancel.Cancelled -> ());
          Alcotest.(check int) "no pins after cancel" 0 (Buffer_pool.pinned bp);
          (* the pool is not poisoned: the same plan still completes *)
          let tbl, _ = Executor.run ~mode:Executor.Pipeline plan in
          Alcotest.(check bool) "rerun returns rows" true (Table.n_rows tbl > 0);
          Alcotest.(check int) "no pins after rerun" 0 (Buffer_pool.pinned bp)))

let test_pipelined_unwind_releases_pins () =
  pipelined_unwind_releases_pins Table.Row

(* the same unwinds with columnar morsels: selection-vector scans and
   batch key decodes must not change pin discipline *)
let test_pipelined_unwind_releases_pins_columnar () =
  pipelined_unwind_releases_pins Table.Columnar

(* spilled execution produces byte-identical results for every strategy,
   covering Temp materialization writing through the pool *)
let test_strategies_out_of_core () =
  with_chunk_rows 32 (fun () ->
      let expected =
        let _cat, ctx = Fixtures.shop_ctx ~n_orders:300 () in
        let q = Fixtures.shop_query () in
        List.map
          (fun (s : Strategy.t) ->
            (s.Strategy.name, Table.digest (s.Strategy.run ctx q).Strategy.result))
          Test_strategies.all_strategies
      in
      with_spill ~capacity:3 (fun bp ->
          let _cat, ctx = Fixtures.shop_ctx ~n_orders:300 () in
          let q = Fixtures.shop_query () in
          List.iter
            (fun (s : Strategy.t) ->
              let d = Table.digest (s.Strategy.run ctx q).Strategy.result in
              let expect = List.assoc s.Strategy.name expected in
              Alcotest.(check string) ("strategy " ^ s.Strategy.name) expect d)
            Test_strategies.all_strategies;
          let st = Buffer_pool.stats bp in
          Alcotest.(check bool) "execution faulted" true (st.Buffer_pool.misses > 0);
          Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp)))

(* --- the 200-query differential corpus, fully out-of-core -------------- *)

let max_result_rows = 60_000

(* In-memory reference digests for the corpus (explosive queries
   skipped), computed once per run of this file. *)
let reference = ref None

let corpus_digests ?mode () =
  let cat = Fixtures.shop_catalog ~n_orders:400 () in
  let registry = Qs_stats.Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Estimator.default in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  let keep =
    match !reference with
    | Some (names, _) -> fun (q : Query.t) -> List.mem q.Query.name names
    | None ->
        fun q -> Naive.count (Strategy.fragment_of_query ctx q) <= max_result_rows
  in
  List.filter_map
    (fun (q : Query.t) ->
      if not (keep q) then None
      else begin
        let frag = Strategy.fragment_of_query ctx q in
        let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
        let tbl, _ = Executor.run ?mode plan in
        let out = Executor.project ~name:q.Query.name tbl q.Query.output in
        Some (q.Query.name, Table.digest out)
      end)
    queries

let in_memory_reference () =
  match !reference with
  | Some r -> r
  | None ->
      let digests = with_chunk_rows 64 corpus_digests in
      let r = (List.map fst digests, digests) in
      reference := Some r;
      r

let compare_against_reference ~what got =
  let _, expected = in_memory_reference () in
  Alcotest.(check int) "query count" (List.length expected) (List.length got);
  List.iter2
    (fun (qa, da) (qb, db) ->
      Alcotest.(check string) "query order" qa qb;
      if da <> db then Alcotest.failf "%s: %s digest differs" qa what)
    expected got

let check_out_of_core_corpus ?mode ?(layout = Table.Row) ~capacity ?io_pool () =
  ignore (in_memory_reference ());
  let got =
    with_layout layout (fun () ->
        with_chunk_rows 64 (fun () ->
            with_spill ~capacity ?io_pool (fun bp ->
                let digests = corpus_digests ?mode () in
                let s = Buffer_pool.stats bp in
                Alcotest.(check bool) "corpus faulted" true (s.Buffer_pool.misses > 0);
                Alcotest.(check int) "no pins leaked" 0 (Buffer_pool.pinned bp);
                digests)))
  in
  compare_against_reference
    ~what:
      (Printf.sprintf "out-of-core (%s, capacity %d)" (Table.layout_name layout)
         capacity)
    got

let test_corpus_width_1 () = check_out_of_core_corpus ~capacity:1 ()

let test_corpus_width_4_prefetch () =
  Pool.with_pool ~domains:2 (fun io ->
      check_out_of_core_corpus ~capacity:4 ~io_pool:io ())

(* the cross-engine differential, fully out-of-core: the materializing
   engine at pool widths 1 and 4 must reproduce the pipelined in-memory
   reference digests query for query *)
let test_corpus_materialize_width_1 () =
  check_out_of_core_corpus ~mode:Executor.Materialize ~capacity:1 ()

let test_corpus_materialize_width_4 () =
  Pool.with_pool ~domains:2 (fun io ->
      check_out_of_core_corpus ~mode:Executor.Materialize ~capacity:4 ~io_pool:io ())

(* the cross-layout differential: the whole corpus under the columnar
   layout — vectorized scans, batch join key decodes, columnar
   aggregation — must reproduce the row-layout reference digests query
   for query, resident under both engines and fully out-of-core at pool
   widths 1 (pipelined) and 4 (materializing, with prefetch) *)
let test_corpus_columnar_resident () =
  ignore (in_memory_reference ());
  List.iter
    (fun (mode, mname) ->
      let got =
        with_layout Table.Columnar (fun () ->
            with_chunk_rows 64 (fun () -> corpus_digests ?mode ()))
      in
      compare_against_reference
        ~what:(Printf.sprintf "columnar resident (%s)" mname)
        got)
    [ (None, "pipelined"); (Some Executor.Materialize, "materializing") ]

let test_corpus_columnar_width_1 () =
  check_out_of_core_corpus ~layout:Table.Columnar ~capacity:1 ()

let test_corpus_columnar_materialize_width_4 () =
  Pool.with_pool ~domains:2 (fun io ->
      check_out_of_core_corpus ~mode:Executor.Materialize ~layout:Table.Columnar
        ~capacity:4 ~io_pool:io ())

(* --- Plan_cache: raising planner shared across two sessions ------------ *)

let test_plan_cache_raising_planner () =
  let cache : int Plan_cache.t = Plan_cache.create () in
  let attempts = Atomic.make 0 in
  let planner () =
    Atomic.incr attempts;
    (* linger so the second session coalesces onto this computation
       instead of racing past it *)
    let t0 = Timer.now () in
    while Timer.elapsed ~since:t0 < 0.02 do
      Domain.cpu_relax ()
    done;
    failwith "planner exploded"
  in
  let session () =
    match Plan_cache.find_or_compute cache ~key:"q" planner with
    | _ -> `Value
    | exception Failure _ -> `Raised
  in
  let d1 = Domain.spawn session in
  let d2 = Domain.spawn session in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  (* neither session may hang or observe a cached failure *)
  Alcotest.(check bool) "session 1 raised" true (r1 = `Raised);
  Alcotest.(check bool) "session 2 raised" true (r2 = `Raised);
  Alcotest.(check int) "failure not cached" 0 (Plan_cache.size cache);
  (* the cache is not wedged: a later good computation lands... *)
  let v, hit = Plan_cache.find_or_compute cache ~key:"q" (fun () -> 41) in
  Alcotest.(check int) "recomputed" 41 v;
  Alcotest.(check bool) "recompute is a miss" false hit;
  (* ...and is served from cache thereafter, planner never re-run *)
  let v2, hit2 = Plan_cache.find_or_compute cache ~key:"q" (fun () -> 0) in
  Alcotest.(check int) "cached value" 41 v2;
  Alcotest.(check bool) "second lookup hits" true hit2;
  Alcotest.(check int) "one entry" 1 (Plan_cache.size cache);
  Alcotest.(check bool) "planner ran" true (Atomic.get attempts >= 1)

let suite =
  [
    Alcotest.test_case "chunk_file roundtrip" `Quick test_chunk_file_roundtrip;
    Alcotest.test_case "chunk_file rejects empty frames" `Quick test_chunk_file_rejects_empty;
    Alcotest.test_case "spilled table equals resident" `Quick test_spilled_table_equals_resident;
    Alcotest.test_case "degenerate chunks (resident)" `Quick test_degenerate_resident;
    Alcotest.test_case "degenerate chunks (spilled)" `Quick test_degenerate_spilled;
    Alcotest.test_case "hits, misses, residency" `Quick test_hits_and_misses;
    Alcotest.test_case "bypass when all frames pinned" `Quick test_bypass_when_all_pinned;
    Alcotest.test_case "pins released on cancellation" `Quick test_pin_released_on_cancellation;
    Alcotest.test_case "eviction under concurrent scans" `Quick test_eviction_under_concurrent_scans;
    Alcotest.test_case "prefetch issues and accounts" `Quick test_prefetch_overlaps;
    Alcotest.test_case "prefetch clamped on ragged tables" `Quick
      test_prefetch_clamped_on_ragged;
    Alcotest.test_case "pipelined unwind releases pins" `Quick
      test_pipelined_unwind_releases_pins;
    Alcotest.test_case "pipelined unwind releases pins (columnar)" `Quick
      test_pipelined_unwind_releases_pins_columnar;
    Alcotest.test_case "strategies out-of-core" `Quick test_strategies_out_of_core;
    Alcotest.test_case "200-query corpus out-of-core, width 1" `Slow test_corpus_width_1;
    Alcotest.test_case "200-query corpus out-of-core, width 4 + prefetch" `Slow
      test_corpus_width_4_prefetch;
    Alcotest.test_case "200-query corpus cross-engine out-of-core, width 1" `Slow
      test_corpus_materialize_width_1;
    Alcotest.test_case "200-query corpus cross-engine out-of-core, width 4" `Slow
      test_corpus_materialize_width_4;
    Alcotest.test_case "200-query corpus columnar resident, both engines" `Slow
      test_corpus_columnar_resident;
    Alcotest.test_case "200-query corpus columnar out-of-core, width 1" `Slow
      test_corpus_columnar_width_1;
    Alcotest.test_case "200-query corpus columnar cross-engine, width 4" `Slow
      test_corpus_columnar_materialize_width_4;
    Alcotest.test_case "plan cache: raising planner, two sessions" `Quick
      test_plan_cache_raising_planner;
  ]
