(* Plan similarity (Table 1's metric). *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Fragment = Qs_stats.Fragment
module Physical = Qs_plan.Physical
module Similarity = Qs_plan.Similarity
module Expr = Qs_query.Expr

let input name =
  let tbl =
    Table.create ~name ~schema:(Schema.make name [ ("id", Value.TInt) ]) [||]
  in
  {
    Fragment.id = name;
    table = tbl;
    provides = [ name ];
    filters = [];
    stats = Qs_stats.Table_stats.rowcount_only 0;
    is_temp = false;
    base_table = Some name;
    provenance = name;
    stats_epoch = 0;
    memo = Hashtbl.create 1;
      scratch = Qs_util.Scratch.create ();
  }

let scan name = Physical.scan (input name) ~est_rows:1.0 ~est_cost:1.0

let join l r =
  Physical.join ~method_:Physical.Hash () ~left:l ~right:r
    ~preds:[ Expr.eq (Expr.col "x" "a") (Expr.col "y" "b") ]
    ~est_rows:1.0 ~est_cost:1.0

let test_identical_plans () =
  let mk () = join (join (scan "a") (scan "b")) (scan "c") in
  Alcotest.(check int) "full agreement" 3 (Similarity.score (mk ()) (mk ()))

let test_build_probe_swap_ignored () =
  let p1 = join (scan "a") (scan "b") in
  let p2 = join (scan "b") (scan "a") in
  Alcotest.(check int) "commutative" 2 (Similarity.score p1 p2)

let test_disjoint_first_joins () =
  (* ((a b) c d) vs ((c d) a b): first joins share nothing *)
  let p1 = join (join (join (scan "a") (scan "b")) (scan "c")) (scan "d") in
  let p2 = join (join (join (scan "c") (scan "d")) (scan "a")) (scan "b") in
  Alcotest.(check int) "score 0" 0 (Similarity.score p1 p2)

let test_one_shared_leaf () =
  (* (a b) vs (a c): the first joins share a *)
  let p1 = join (join (scan "a") (scan "b")) (scan "c") in
  let p2 = join (join (scan "a") (scan "c")) (scan "b") in
  Alcotest.(check int) "score 1" 1 (Similarity.score p1 p2)

let test_agree_on_first_join_only () =
  (* ((a b) c) d  vs  ((a b) d) c: common subtree = {a,b} *)
  let p1 = join (join (join (scan "a") (scan "b")) (scan "c")) (scan "d") in
  let p2 = join (join (join (scan "a") (scan "b")) (scan "d")) (scan "c") in
  Alcotest.(check int) "score 2" 2 (Similarity.score p1 p2)

let test_three_leaf_common () =
  (* ((a b) c) shared, then diverges *)
  let base () = join (join (scan "a") (scan "b")) (scan "c") in
  let p1 = join (join (base ()) (scan "d")) (scan "e") in
  let p2 = join (join (base ()) (scan "e")) (scan "d") in
  Alcotest.(check int) "score 3" 3 (Similarity.score p1 p2)

let test_bushy_vs_left_deep () =
  (* bushy (a b)(c d) vs left-deep (((a b) c) d: common = {a,b} *)
  let p1 = join (join (scan "a") (scan "b")) (join (scan "c") (scan "d")) in
  let p2 = join (join (join (scan "a") (scan "b")) (scan "c")) (scan "d") in
  Alcotest.(check int) "score 2" 2 (Similarity.score p1 p2)

let test_buckets () =
  Alcotest.(check string) "0" "0" (Similarity.bucket 0);
  Alcotest.(check string) "1" "1" (Similarity.bucket 1);
  Alcotest.(check string) "2" "2" (Similarity.bucket 2);
  Alcotest.(check string) ">2" ">2" (Similarity.bucket 3);
  Alcotest.(check string) ">2 big" ">2" (Similarity.bucket 9)

let suite =
  [
    Alcotest.test_case "identical" `Quick test_identical_plans;
    Alcotest.test_case "swap ignored" `Quick test_build_probe_swap_ignored;
    Alcotest.test_case "disjoint firsts" `Quick test_disjoint_first_joins;
    Alcotest.test_case "one shared leaf" `Quick test_one_shared_leaf;
    Alcotest.test_case "first join only" `Quick test_agree_on_first_join_only;
    Alcotest.test_case "three-leaf common" `Quick test_three_leaf_common;
    Alcotest.test_case "bushy vs left-deep" `Quick test_bushy_vs_left_deep;
    Alcotest.test_case "buckets" `Quick test_buckets;
  ]
