(* Query normal form, restriction, the cover relation of Definition 1. *)

module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr

let rel alias table = { Query.alias; table }

let three_way () =
  (* R1 ⋈ R2 ⋈ R3 as in the paper's Figure 6 *)
  Query.make ~name:"fig6"
    [ rel "r1" "t1"; rel "r2" "t2"; rel "r3" "t3" ]
    [
      Expr.eq (Expr.col "r1" "a") (Expr.col "r2" "b");
      Expr.eq (Expr.col "r2" "b") (Expr.col "r3" "c");
      Expr.Cmp (Expr.Gt, Expr.col "r1" "a", Expr.vint 0);
    ]

let test_make_duplicate_alias () =
  Alcotest.(check bool) "duplicate alias rejected" true
    (try
       ignore (Query.make [ rel "a" "t"; rel "a" "u" ] []);
       false
     with Invalid_argument _ -> true)

let test_make_unknown_alias_in_pred () =
  Alcotest.(check bool) "unknown alias rejected" true
    (try
       ignore
         (Query.make [ rel "a" "t" ] [ Expr.Cmp (Expr.Eq, Expr.col "zz" "x", Expr.vint 1) ]);
       false
     with Invalid_argument _ -> true)

let test_filters_vs_joins () =
  let q = three_way () in
  Alcotest.(check int) "one filter on r1" 1 (List.length (Query.filters q "r1"));
  Alcotest.(check int) "no filter on r2" 0 (List.length (Query.filters q "r2"));
  Alcotest.(check int) "two join preds" 2 (List.length (Query.join_preds q))

let test_restrict () =
  let q = three_way () in
  let sub = Query.restrict ~name:"s1" q [ "r1"; "r2" ] in
  Alcotest.(check int) "two rels" 2 (List.length sub.Query.rels);
  (* keeps the r1-r2 join and the r1 filter, drops the r2-r3 join *)
  Alcotest.(check int) "two preds" 2 (List.length sub.Query.preds);
  Alcotest.(check bool) "is subquery" true (Query.is_subquery sub ~of_:q)

let test_covers_positive () =
  let q = three_way () in
  let s1 = Query.restrict ~name:"s1" q [ "r1"; "r2" ] in
  let s2 = Query.restrict ~name:"s2" q [ "r2"; "r3" ] in
  Alcotest.(check bool) "S1,S2 cover q" true (Query.covers [ s1; s2 ] q)

let test_covers_missing_relation () =
  let q = three_way () in
  let s1 = Query.restrict ~name:"s1" q [ "r1"; "r2" ] in
  Alcotest.(check bool) "missing r3" false (Query.covers [ s1 ] q)

let test_covers_missing_pred () =
  let q = three_way () in
  (* subqueries covering all relations but omitting the r2-r3 join *)
  let s1 = Query.restrict ~name:"s1" q [ "r1"; "r2" ] in
  let s3 = Query.restrict ~name:"s3" q [ "r3" ] in
  Alcotest.(check bool) "r2-r3 pred uncovered" false (Query.covers [ s1; s3 ] q)

let test_covers_via_transitivity () =
  (* q has a.x=b.y and b.y=c.z and the *implied* a.x=c.z; a cover that
     carries only the two base equalities must still imply the third. *)
  let q =
    Query.make ~name:"tri"
      [ rel "a" "t"; rel "b" "u"; rel "c" "v" ]
      [
        Expr.eq (Expr.col "a" "x") (Expr.col "b" "y");
        Expr.eq (Expr.col "b" "y") (Expr.col "c" "z");
        Expr.eq (Expr.col "a" "x") (Expr.col "c" "z");
      ]
  in
  let s1 = Query.restrict ~name:"s1" q [ "a"; "b" ] in
  let s2 = Query.restrict ~name:"s2" q [ "b"; "c" ] in
  Alcotest.(check bool) "transitive implication" true (Query.covers [ s1; s2 ] q)

let test_implies () =
  let base =
    [
      Expr.eq (Expr.col "a" "x") (Expr.col "b" "y");
      Expr.eq (Expr.col "b" "y") (Expr.col "c" "z");
    ]
  in
  Alcotest.(check bool) "direct member" true
    (Query.implies base (Expr.eq (Expr.col "b" "y") (Expr.col "a" "x")));
  Alcotest.(check bool) "transitive" true
    (Query.implies base (Expr.eq (Expr.col "a" "x") (Expr.col "c" "z")));
  Alcotest.(check bool) "unrelated" false
    (Query.implies base (Expr.eq (Expr.col "a" "x") (Expr.col "d" "w")))

let test_equiv_classes () =
  let classes =
    Query.equiv_classes
      [
        Expr.eq (Expr.col "a" "x") (Expr.col "b" "y");
        Expr.eq (Expr.col "b" "y") (Expr.col "c" "z");
        Expr.eq (Expr.col "d" "p") (Expr.col "e" "q");
      ]
  in
  let sizes = List.sort compare (List.map List.length classes) in
  Alcotest.(check (list int)) "classes {3} {2}" [ 2; 3 ] sizes

let test_to_sql () =
  let q = three_way () in
  let sql = Query.to_sql q in
  Alcotest.(check bool) "mentions FROM" true
    (String.length sql > 0
    && Str_helpers.contains sql "FROM t1 AS r1"
    && Str_helpers.contains sql "WHERE")

let test_table_of_alias () =
  let q = three_way () in
  Alcotest.(check string) "lookup" "t2" (Query.table_of_alias q "r2");
  Alcotest.check_raises "unknown"
    (Invalid_argument "Query.table_of_alias: unknown alias zz") (fun () ->
      ignore (Query.table_of_alias q "zz"))

let suite =
  [
    Alcotest.test_case "duplicate alias" `Quick test_make_duplicate_alias;
    Alcotest.test_case "unknown alias in pred" `Quick test_make_unknown_alias_in_pred;
    Alcotest.test_case "filters vs joins" `Quick test_filters_vs_joins;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "covers positive" `Quick test_covers_positive;
    Alcotest.test_case "covers missing relation" `Quick test_covers_missing_relation;
    Alcotest.test_case "covers missing pred" `Quick test_covers_missing_pred;
    Alcotest.test_case "covers via transitivity" `Quick test_covers_via_transitivity;
    Alcotest.test_case "implies" `Quick test_implies;
    Alcotest.test_case "equiv classes" `Quick test_equiv_classes;
    Alcotest.test_case "to_sql" `Quick test_to_sql;
    Alcotest.test_case "table_of_alias" `Quick test_table_of_alias;
  ]
