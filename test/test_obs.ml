(* The observability layer: Q-error conventions, histogram quantiles
   against a sorted-array reference, trace capture, metrics JSON, and a
   golden EXPLAIN ANALYZE rendering. *)

module Qerror = Qs_obs.Qerror
module Histogram = Qs_obs.Histogram
module Metrics = Qs_obs.Metrics
module Trace = Qs_obs.Trace
module Explain = Qs_obs.Explain
module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Strategy = Qs_core.Strategy
module Rng = Qs_util.Rng

let feq ?(eps = 1e-9) what a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %f <> %f" what a b

(* --- Q-error conventions ---------------------------------------------- *)

let test_qerror_basics () =
  feq "perfect" 1.0 (Qerror.value ~est:50.0 ~actual:50);
  feq "over 4x" 4.0 (Qerror.value ~est:200.0 ~actual:50);
  feq "under 4x" 4.0 (Qerror.value ~est:50.0 ~actual:200);
  (* the zero conventions *)
  feq "0 vs 0" 1.0 (Qerror.value ~est:0.0 ~actual:0);
  feq "0 vs n" 10.0 (Qerror.value ~est:0.0 ~actual:10);
  feq "n vs 0" 10.0 (Qerror.value ~est:10.0 ~actual:0);
  feq "fraction vs 0" 1.0 (Qerror.value ~est:0.3 ~actual:0);
  feq "floats" 2.0 (Qerror.of_floats ~est:1.0 ~actual:2.0)

let test_qerror_direction () =
  Alcotest.(check bool) "under" true (Qerror.underestimated ~est:10.0 ~actual:100);
  Alcotest.(check bool) "over" false (Qerror.underestimated ~est:100.0 ~actual:10);
  Alcotest.(check bool) "tie" false (Qerror.underestimated ~est:10.0 ~actual:10);
  Alcotest.(check bool) "zero tie" false (Qerror.underestimated ~est:0.0 ~actual:0)

(* --- histogram vs sorted-array reference ------------------------------ *)

(* nearest-rank on the raw sorted sample: the same rank formula the
   histogram uses, so only bucket quantization separates the two *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) rank))

let check_against_reference ~what values =
  let h = Histogram.create () in
  Array.iter (Histogram.observe h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Alcotest.(check int) (what ^ " count") (Array.length values) (Histogram.count h);
  feq ~eps:1e-6 (what ^ " min") sorted.(0) (Histogram.min_value h);
  feq ~eps:1e-6 (what ^ " max")
    sorted.(Array.length sorted - 1)
    (Histogram.max_value h);
  List.iter
    (fun p ->
      let expected = exact_percentile sorted p in
      let got = Histogram.percentile h p in
      let tolerance = Histogram.max_relative_error *. Float.max expected 1e-9 in
      if Float.abs (got -. expected) > tolerance +. 1e-9 then
        Alcotest.failf "%s p%.0f: got %g, expected %g (tolerance %g)" what
          (100.0 *. p) got expected tolerance)
    [ 0.0; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]

let test_histogram_uniform () =
  let rng = Rng.create 11 in
  check_against_reference ~what:"uniform"
    (Array.init 5000 (fun _ -> Rng.float rng 1000.0))

let test_histogram_lognormal () =
  let rng = Rng.create 12 in
  check_against_reference ~what:"lognormal"
    (Array.init 5000 (fun _ -> Float.exp (Rng.gaussian rng ~mu:2.0 ~sigma:3.0)))

let test_histogram_qerror_like () =
  (* the actual use: q-errors are >= 1, heavy-tailed, many exact ones *)
  let rng = Rng.create 13 in
  check_against_reference ~what:"qerror"
    (Array.init 2000 (fun i ->
         if i mod 3 = 0 then 1.0
         else 1.0 +. Float.exp (Rng.gaussian rng ~mu:0.0 ~sigma:2.5)))

let test_histogram_edge_cases () =
  let h = Histogram.create () in
  Alcotest.(check bool) "empty mean NaN" true (Float.is_nan (Histogram.mean h));
  (* every percentile of an empty histogram is a well-defined 0.0, never
     NaN: telemetry thresholds compare against it *)
  feq "empty p0" 0.0 (Histogram.percentile h 0.0);
  feq "empty p50" 0.0 (Histogram.percentile h 0.5);
  feq "empty p100" 0.0 (Histogram.percentile h 1.0);
  Histogram.observe h 42.0;
  feq "single p0" 42.0 (Histogram.percentile h 0.0);
  feq "single p50" 42.0 (Histogram.percentile h 0.5);
  feq "single p100" 42.0 (Histogram.percentile h 1.0);
  (* the extreme ranks answer from the exact envelope, not a bucket
     representative: p100 of {1, 1000} is 1000, not the ~970 geometric
     midpoint of 1000's bucket *)
  let h2 = Histogram.create () in
  Histogram.observe h2 1.0;
  Histogram.observe h2 1000.0;
  feq "spread p0 exact min" 1.0 (Histogram.percentile h2 0.0);
  feq "spread p100 exact max" 1000.0 (Histogram.percentile h2 1.0);
  (* negatives and NaN clamp to zero instead of corrupting the counts *)
  Histogram.observe h (-5.0);
  Histogram.observe h Float.nan;
  Alcotest.(check int) "clamped still counted" 3 (Histogram.count h);
  feq "min is 0 after clamp" 0.0 (Histogram.min_value h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 1.0; 2.0; 3.0 ];
  List.iter (Histogram.observe b) [ 100.0; 200.0 ];
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  feq "merged sum" 306.0 (Histogram.sum a);
  feq "merged max" 200.0 (Histogram.max_value a)

(* --- metrics registry ------------------------------------------------- *)

let test_metrics_counters_and_json () =
  let m = Metrics.create () in
  Metrics.incr m "runs";
  Metrics.incr m ~by:4 "runs";
  Metrics.incr m ~by:0 "timeouts";
  Metrics.observe m "latency" 0.25;
  Metrics.observe m "latency" 0.75;
  Alcotest.(check int) "counter" 5 (Metrics.counter m "runs");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter m "nope");
  Alcotest.(check (list string)) "counter names" [ "runs"; "timeouts" ]
    (Metrics.counter_names m);
  let json = Metrics.to_json m in
  List.iter
    (fun needle ->
      if not (Str_helpers.contains json needle) then
        Alcotest.failf "JSON missing %s in %s" needle json)
    [ "\"runs\": 5"; "\"timeouts\": 0"; "\"latency\""; "\"count\": 2"; "\"p50\"" ];
  let many = Metrics.json_of_many [ ("a", m); ("b", Metrics.create ()) ] in
  Alcotest.(check bool) "labelled object" true
    (Str_helpers.contains many "\"a\": {" && Str_helpers.contains many "\"b\": {")

let test_metrics_merge () =
  (* merging per-domain registries must equal the registry a single
     domain would have accumulated *)
  let whole = Metrics.create () in
  let parts = [ Metrics.create (); Metrics.create (); Metrics.create () ] in
  List.iteri
    (fun d m ->
      Metrics.incr ~by:(d + 1) m "runs";
      Metrics.incr ~by:(d + 1) whole "runs";
      if d = 1 then (
        Metrics.incr m "timeouts";
        Metrics.incr whole "timeouts");
      List.iter
        (fun v ->
          Metrics.observe m "latency" v;
          Metrics.observe whole "latency" v)
        [ float_of_int d; float_of_int (10 * (d + 1)) ])
    parts;
  let merged = Metrics.create () in
  List.iter (Metrics.merge ~into:merged) parts;
  Alcotest.(check int) "counters add" (Metrics.counter whole "runs")
    (Metrics.counter merged "runs");
  Alcotest.(check int) "counter only in one part" (Metrics.counter whole "timeouts")
    (Metrics.counter merged "timeouts");
  Alcotest.(check (list string)) "counter names" (Metrics.counter_names whole)
    (Metrics.counter_names merged);
  (match (Metrics.histogram merged "latency", Metrics.histogram whole "latency") with
  | Some hm, Some hw ->
      Alcotest.(check int) "histogram count" (Histogram.count hw) (Histogram.count hm);
      feq "histogram sum" (Histogram.sum hw) (Histogram.sum hm);
      feq "histogram max" (Histogram.max_value hw) (Histogram.max_value hm)
  | _ -> Alcotest.fail "latency histogram missing after merge");
  (* src registries are untouched *)
  Alcotest.(check int) "src unchanged" 1 (Metrics.counter (List.hd parts) "runs")

(* --- trace + explain -------------------------------------------------- *)

let traced_shop_plan () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:600 () in
  let q = Fixtures.shop_query () in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  let trace = Trace.create () in
  let table, stats = Executor.run ~trace plan in
  (plan, trace, table, stats)

let test_trace_covers_all_nodes () =
  let plan, trace, _, stats = traced_shop_plan () in
  List.iter
    (fun (n : Physical.t) ->
      (match Trace.find trace n.Physical.id with
      | None -> Alcotest.failf "node %d missing from trace" n.Physical.id
      | Some tn ->
          Alcotest.(check int)
            (Printf.sprintf "trace/stats agree on node %d" n.Physical.id)
            (Hashtbl.find stats n.Physical.id)
            tn.Trace.actual_rows;
          feq
            (Printf.sprintf "estimate recorded for node %d" n.Physical.id)
            n.Physical.est_rows tn.Trace.est_rows);
      ())
    (Physical.nodes plan);
  Alcotest.(check int) "trace size = plan size"
    (List.length (Physical.nodes plan))
    (Trace.size trace)

let test_trace_volumes () =
  let plan, trace, table, _ = traced_shop_plan () in
  let root = Option.get (Trace.find trace plan.Physical.id) in
  Alcotest.(check int) "root actual = result rows" (Table.n_rows table)
    root.Trace.actual_rows;
  Alcotest.(check bool) "root produced bytes" true (root.Trace.output_bytes > 0);
  (* every leaf scanned at least as many rows as it output *)
  List.iter
    (fun (n : Physical.t) ->
      match (n.Physical.node, Trace.find trace n.Physical.id) with
      | Physical.Scan _, Some tn ->
          Alcotest.(check bool)
            (Printf.sprintf "scan %d: scanned >= actual" n.Physical.id)
            true
            (tn.Trace.rows_scanned >= tn.Trace.actual_rows)
      | _ -> ())
    (Physical.nodes plan);
  Alcotest.(check bool) "total bytes positive" true
    (Trace.total_output_bytes trace > 0)

(* The golden test pins the renderer's exact output for a hand-built plan
   executed on a hand-built table — timings suppressed, so the string is
   fully deterministic. *)
let test_explain_golden () =
  let module Value = Qs_storage.Value in
  let module Schema = Qs_storage.Schema in
  let cat = Catalog.create () in
  let t name cols rows =
    Table.of_rows ~name ~schema:(Schema.make name cols) (List.map Array.of_list rows)
  in
  let i x = Value.Int x in
  let dept =
    t "dept" [ ("id", Value.TInt) ] [ [ i 1 ]; [ i 2 ] ]
  in
  let emp =
    t "emp"
      [ ("id", Value.TInt); ("dept_id", Value.TInt) ]
      [ [ i 1; i 1 ]; [ i 2; i 1 ]; [ i 3; i 2 ]; [ i 4; i 9 ] ]
  in
  Catalog.add_table cat ~pk:"id" dept;
  Catalog.add_table cat ~pk:"id" emp;
  Catalog.add_fk cat ~from_table:"emp" ~from_column:"dept_id" ~to_table:"dept"
    ~to_column:"id";
  let registry = Qs_stats.Stats_registry.create cat in
  let module Fragment = Qs_stats.Fragment in
  let module Expr = Qs_query.Expr in
  let d = Fragment.base_input registry ~alias:"d" ~table:"dept" [] in
  let e = Fragment.base_input registry ~alias:"e" ~table:"emp" [] in
  let sd = Physical.scan d ~est_rows:2.0 ~est_cost:2.0 in
  let se = Physical.scan e ~est_rows:4.0 ~est_cost:4.0 in
  let join =
    Physical.join ~method_:Physical.Hash () ~left:sd ~right:se
      ~preds:[ Expr.eq (Expr.col "e" "dept_id") (Expr.col "d" "id") ]
      ~est_rows:8.0 ~est_cost:20.0
  in
  let trace = Trace.create () in
  let _ = Executor.run ~trace join in
  let golden =
    Printf.sprintf
      "HashJoin on e.dept_id = d.id  (est=8 actual=3 q=2.67)\n\
      \  Scan d  (est=2 actual=2 q=1.00)\n\
      \  Scan e  (est=4 actual=4 q=1.00)\n"
  in
  Alcotest.(check string) "explain analyze golden" golden
    (Explain.render ~trace ~timings:false join);
  Alcotest.(check string) "summary" "3 nodes, q-error max=2.67 mean=1.56, underest=0%"
    (Explain.summary ~trace join);
  (* force the join's estimate under its observation: 1 of 3 nodes is now
     underestimated per Qerror.underestimated *)
  (Option.get (Trace.find trace join.Physical.id)).Trace.est_rows <- 1.0;
  Alcotest.(check string) "summary with underestimates"
    "3 nodes, q-error max=3.00 mean=1.67, underest=33%"
    (Explain.summary ~trace join);
  (* without a trace: plain EXPLAIN, estimates only *)
  Alcotest.(check string) "explain golden"
    "HashJoin on e.dept_id = d.id  (est=8)\n\
    \  Scan d  (est=2)\n\
    \  Scan e  (est=4)\n"
    (Explain.render ~timings:false join)

(* self time = elapsed minus recorded children, clamped at 0 — checked on
   a hand-built 3-deep trace where every figure is exact *)
let test_trace_self_time () =
  let t = Trace.create () in
  let set id elapsed children =
    let n = Trace.node t id in
    n.Trace.elapsed <- elapsed;
    n.Trace.children <- children;
    n
  in
  let root = set 1 1.0 [ 2; 3 ] in
  let mid = set 2 0.3 [ 4 ] in
  let sib = set 3 0.2 [] in
  let leaf = set 4 0.25 [] in
  feq "root self" 0.5 (Trace.self_time t root);
  feq "mid self" 0.05 (Trace.self_time t mid);
  feq "sibling self (no children)" 0.2 (Trace.self_time t sib);
  feq "leaf self" 0.25 (Trace.self_time t leaf);
  (* a child that (through clock skew) out-measures its parent clamps *)
  leaf.Trace.elapsed <- 0.9;
  feq "clamped at 0" 0.0 (Trace.self_time t mid);
  (* unrecorded children are ignored, not counted as 0-cost *)
  sib.Trace.children <- [ 99 ];
  feq "missing child ignored" 0.2 (Trace.self_time t sib)

(* on a real executed plan: children lists mirror the plan shape and
   elapsed is inclusive, so self times are non-negative and bounded *)
let test_trace_self_time_executed () =
  let plan, trace, _, _ = traced_shop_plan () in
  Alcotest.(check bool) "plan is at least 3 deep" true
    (List.length (Physical.nodes plan) >= 3);
  List.iter
    (fun (p : Physical.t) ->
      let n = Option.get (Trace.find trace p.Physical.id) in
      let plan_children =
        match p.Physical.node with
        | Physical.Scan _ -> []
        | Physical.Join { left; right; _ } ->
            [ left.Physical.id; right.Physical.id ]
      in
      Alcotest.(check (list int))
        (Printf.sprintf "children of node %d" p.Physical.id)
        plan_children n.Trace.children;
      let self = Trace.self_time trace n in
      Alcotest.(check bool)
        (Printf.sprintf "0 <= self <= elapsed for node %d" p.Physical.id)
        true
        (self >= 0.0 && self <= n.Trace.elapsed +. 1e-12))
    (Physical.nodes plan)

(* satellite: Metrics.to_json must be byte-identical whatever order
   per-domain registries are merged in (values picked binary-exact so
   float addition is associative) *)
let test_metrics_json_merge_order () =
  let mk (c, vs) =
    let m = Metrics.create () in
    Metrics.incr m ~by:c "runs";
    List.iter (Metrics.observe m "latency") vs;
    m
  in
  let parts =
    [ mk (1, [ 1.5; 2.25 ]); mk (2, [ 7.75 ]); mk (4, [ 10.0; 3.5 ]) ]
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (permutations (List.filter (fun y -> y != x) l)))
          l
  in
  let json_of order =
    let m = Metrics.create () in
    List.iter (Metrics.merge ~into:m) order;
    Metrics.to_json m
  in
  let reference = json_of parts in
  List.iter
    (fun order ->
      Alcotest.(check string) "merge-order independent JSON" reference
        (json_of order))
    (permutations parts)

let test_explain_never_executed () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:200 () in
  let q = Fixtures.shop_query () in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  let empty = Trace.create () in
  let rendered = Explain.render ~trace:empty ~timings:false plan in
  Alcotest.(check bool) "marks unexecuted nodes" true
    (Str_helpers.contains rendered "never executed");
  Alcotest.(check string) "summary of empty trace" "0 nodes traced"
    (Explain.summary ~trace:empty plan)

let suite =
  [
    Alcotest.test_case "qerror basics + zero conventions" `Quick test_qerror_basics;
    Alcotest.test_case "qerror direction" `Quick test_qerror_direction;
    Alcotest.test_case "histogram vs reference: uniform" `Quick test_histogram_uniform;
    Alcotest.test_case "histogram vs reference: lognormal" `Quick
      test_histogram_lognormal;
    Alcotest.test_case "histogram vs reference: qerror-like" `Quick
      test_histogram_qerror_like;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edge_cases;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "metrics counters + json" `Quick test_metrics_counters_and_json;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "trace covers all nodes" `Quick test_trace_covers_all_nodes;
    Alcotest.test_case "trace volumes" `Quick test_trace_volumes;
    Alcotest.test_case "explain analyze golden" `Quick test_explain_golden;
    Alcotest.test_case "trace self time (hand-built)" `Quick test_trace_self_time;
    Alcotest.test_case "trace self time (executed plan)" `Quick
      test_trace_self_time_executed;
    Alcotest.test_case "metrics json merge-order determinism" `Quick
      test_metrics_json_merge_order;
    Alcotest.test_case "explain of unexecuted plan" `Quick test_explain_never_executed;
  ]
