(* The span-tracing subsystem: recorder semantics (nesting, disabled
   passthrough, per-domain tracks), the Chrome trace_event exporter
   (validated with the Metrics_diff JSON parser), the deterministic
   profile summary, span emission from the optimizer / pool / executor,
   and the bench_diff comparison logic. *)

module Span = Qs_util.Span
module Pool = Qs_util.Pool
module Timer = Qs_util.Timer
module Chrome_trace = Qs_obs.Chrome_trace
module Profile = Qs_obs.Profile
module Metrics_diff = Qs_obs.Metrics_diff
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit

let find_all cat spans = List.filter (fun (s : Span.span) -> s.Span.cat = cat) spans

(* --- recorder semantics ------------------------------------------------ *)

let test_span_nesting () =
  let t = Span.create () in
  let tr = Some t in
  let r =
    Span.span tr Span.Optimize "outer" (fun () ->
        Span.span tr Span.Estimate ~args:[ ("k", "v") ] "inner" (fun () -> 41)
        + 1)
  in
  Alcotest.(check int) "body result" 42 r;
  Alcotest.(check int) "two spans" 2 (Span.count t);
  match Span.spans t with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Span.name;
      Alcotest.(check string) "inner name" "inner" inner.Span.name;
      Alcotest.(check int) "outer has no parent" (-1) outer.Span.parent;
      Alcotest.(check int) "inner's parent is outer" outer.Span.id
        inner.Span.parent;
      Alcotest.(check int) "same track" outer.Span.track inner.Span.track;
      Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ]
        inner.Span.args;
      Alcotest.(check bool) "starts ordered" true
        (outer.Span.start <= inner.Span.start);
      Alcotest.(check bool) "inner within outer" true
        (inner.Span.start +. inner.Span.dur
        <= outer.Span.start +. outer.Span.dur +. 1e-9);
      Alcotest.(check bool) "non-negative" true
        (outer.Span.start >= 0.0 && outer.Span.dur >= 0.0)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_disabled_passthrough () =
  (* with [None] every emitter is inert and [span] is exactly [f ()] *)
  Alcotest.(check int) "span None runs f" 7
    (Span.span None Span.Execute "x" (fun () -> 7));
  Span.add None Span.Operator "x" ~start:(Timer.now ()) ~dur:1.0;
  Span.instant None Span.Analyze "x";
  (match Span.span None Span.Execute "x" (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "exception must propagate")

let test_span_records_on_exception () =
  let t = Span.create () in
  (try Span.span (Some t) Span.Execute "boom" (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Span.count t);
  let s = List.hd (Span.spans t) in
  Alcotest.(check string) "name" "boom" s.Span.name

let test_span_add_clamps () =
  let t = Span.create () in
  (* an absolute start long before the tracer existed clamps to 0 *)
  Span.add (Some t) Span.Estimate "early" ~start:0.0 ~dur:0.5;
  Span.add (Some t) Span.Estimate "now" ~start:(Timer.now ()) ~dur:0.25;
  (match Span.spans t with
  | [ early; now_ ] ->
      Alcotest.(check (float 0.0)) "clamped start" 0.0 early.Span.start;
      Alcotest.(check (float 0.0)) "dur kept" 0.5 early.Span.dur;
      Alcotest.(check bool) "recent start >= 0" true (now_.Span.start >= 0.0)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* spans come back sorted by (start, id) even when added out of order *)
  Span.add (Some t) Span.Estimate "also-early" ~start:0.0 ~dur:0.1;
  let names = List.map (fun (s : Span.span) -> s.Span.name) (Span.spans t) in
  Alcotest.(check (list string)) "sorted by start then id"
    [ "early"; "also-early"; "now" ] names

(* --- pool spans -------------------------------------------------------- *)

let test_pool_spans () =
  let t = Span.create () in
  let items = [ 1; 2; 3; 4; 5; 6 ] in
  let out =
    Pool.with_pool ~tracer:t ~domains:2 (fun p ->
        Pool.map p (fun x -> x * x) items)
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9; 16; 25; 36 ] out;
  let spans = Span.spans t in
  Alcotest.(check int) "one pool-task per item" (List.length items)
    (List.length (find_all Span.Pool_task spans));
  Alcotest.(check int) "one queue-wait per item" (List.length items)
    (List.length (find_all Span.Pool_wait spans));
  let tracks =
    List.sort_uniq Int.compare
      (List.map (fun (s : Span.span) -> s.Span.track) (find_all Span.Pool_task spans))
  in
  Alcotest.(check bool) "tasks attributed to >= 1 track" true
    (List.length tracks >= 1)

let test_pool_inline_paths_record_nothing () =
  let t = Span.create () in
  let a =
    Pool.with_pool ~tracer:t ~domains:1 (fun p -> Pool.map p succ [ 1; 2; 3 ])
  in
  let b = Pool.with_pool ~tracer:t ~domains:4 (fun p -> Pool.map p succ [ 9 ]) in
  Alcotest.(check (list int)) "inline pool maps" [ 2; 3; 4 ] a;
  Alcotest.(check (list int)) "single item maps" [ 10 ] b;
  Alcotest.(check int) "no spans on the fast paths" 0 (Span.count t)

(* --- optimizer spans --------------------------------------------------- *)

let test_optimizer_dp_level_spans () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:200 () in
  let q = Fixtures.shop_query () in
  let frag = Strategy.fragment_of_query ctx q in
  let n = List.length frag.Qs_stats.Fragment.inputs in
  Alcotest.(check int) "4-way join" 4 n;
  let t = Span.create () in
  let traced = Optimizer.optimize ~spans:t cat Estimator.default frag in
  let plain = Optimizer.optimize cat Estimator.default frag in
  Alcotest.(check string) "tracing does not change the plan"
    (Physical.to_string plain.Optimizer.plan)
    (Physical.to_string traced.Optimizer.plan);
  let spans = Span.spans t in
  (match find_all Span.Optimize spans with
  | [ o ] ->
      Alcotest.(check string) "optimize span names the DP size"
        (Printf.sprintf "dp n=%d" n) o.Span.name
  | l -> Alcotest.failf "expected 1 optimize span, got %d" (List.length l));
  let levels = find_all Span.Dp_level spans in
  (* levels 2..n of the subset enumeration, one span each *)
  Alcotest.(check int) "one span per DP level" (n - 1) (List.length levels);
  Alcotest.(check (list string)) "level names in order"
    (List.init (n - 1) (fun i -> Printf.sprintf "dp-level-%d" (i + 2)))
    (List.map (fun (s : Span.span) -> s.Span.name) levels);
  List.iter
    (fun (s : Span.span) ->
      match List.assoc_opt "subsets" s.Span.args with
      | Some v -> Alcotest.(check bool) "subsets arg positive" true (int_of_string v > 0)
      | None -> Alcotest.failf "%s missing subsets arg" s.Span.name)
    levels

(* --- executor operator spans ------------------------------------------- *)

let test_executor_operator_spans () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let q = Fixtures.shop_query () in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  let t = Span.create () in
  let _, stats = Executor.run ~spans:t plan in
  let ops = find_all Span.Operator (Span.spans t) in
  Alcotest.(check int) "one operator span per plan node"
    (List.length (Physical.nodes plan))
    (List.length ops);
  let span_of_node (p : Physical.t) =
    List.find_opt
      (fun (s : Span.span) ->
        List.assoc_opt "node" s.Span.args = Some (string_of_int p.Physical.id))
      ops
  in
  List.iter
    (fun (p : Physical.t) ->
      match span_of_node p with
      | None -> Alcotest.failf "node %d has no operator span" p.Physical.id
      | Some s ->
          Alcotest.(check string)
            (Printf.sprintf "label of node %d" p.Physical.id)
            (Executor.span_label p) s.Span.name;
          Alcotest.(check (option string))
            (Printf.sprintf "actual_rows of node %d" p.Physical.id)
            (Some (string_of_int (Hashtbl.find stats p.Physical.id)))
            (List.assoc_opt "actual_rows" s.Span.args))
    (Physical.nodes plan)

(* --- chrome trace export ----------------------------------------------- *)

let test_chrome_trace_valid () =
  let t = Span.create () in
  Span.span (Some t) Span.Execute "q" (fun () ->
      Span.span (Some t) Span.Optimize ~args:[ ("inputs", "3") ] "dp n=3"
        (fun () -> ()));
  ignore (Pool.with_pool ~tracer:t ~domains:2 (fun p -> Pool.map p succ [ 1; 2; 3 ]));
  let json = Chrome_trace.to_json t in
  let parsed =
    match Metrics_diff.parse json with
    | Ok j -> j
    | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
  in
  let events =
    match parsed with
    | Metrics_diff.List l -> l
    | _ -> Alcotest.fail "trace must be a JSON array"
  in
  let field name = function
    | Metrics_diff.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let xs =
    List.filter (fun e -> field "ph" e = Some (Metrics_diff.Str "X")) events
  in
  let metas =
    List.filter (fun e -> field "ph" e = Some (Metrics_diff.Str "M")) events
  in
  Alcotest.(check int) "one complete event per span" (Span.count t)
    (List.length xs);
  Alcotest.(check int) "nothing besides X and M events" (List.length events)
    (List.length xs + List.length metas);
  (* every track referenced by an event has a thread_name metadata event *)
  let num name e =
    match field name e with
    | Some (Metrics_diff.Num v) -> v
    | _ -> Alcotest.failf "event missing numeric %s" name
  in
  let meta_tids = List.map (num "tid") metas in
  List.iter
    (fun e ->
      if not (List.mem (num "tid" e) meta_tids) then
        Alcotest.fail "event tid without thread_name metadata")
    xs;
  (* microsecond timestamps: non-negative, monotone in file order *)
  let last = ref neg_infinity in
  List.iter
    (fun e ->
      let ts = num "ts" e and dur = num "dur" e in
      Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
      Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
      Alcotest.(check bool) "ts monotone" true (ts >= !last);
      last := ts)
    xs;
  (* span ids survive the round-trip and stay unique *)
  let ids =
    List.map
      (fun e ->
        match field "args" e with
        | Some (Metrics_diff.Obj args) -> (
            match List.assoc_opt "id" args with
            | Some (Metrics_diff.Str s) -> s
            | _ -> Alcotest.fail "args.id missing")
        | _ -> Alcotest.fail "args missing")
      xs
  in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* --- profile summary --------------------------------------------------- *)

(* golden: with [timings:false] the summary is a pure function of the
   recorded spans, so its exact text is locked *)
let test_profile_golden () =
  let t = Span.create () in
  let tr = Some t in
  Span.span tr Span.Optimize "dp n=3" (fun () ->
      Span.span tr Span.Dp_level "dp-level-2" (fun () -> ()));
  Span.add tr Span.Pool_wait "queue-wait" ~start:0.0 ~dur:0.001;
  Span.add tr Span.Pool_wait "queue-wait" ~start:0.0 ~dur:0.002;
  Span.add tr Span.Reopt_step "q1/q1_s1@x"
    ~args:
      [
        ("subquery", "q1_s1@x"); ("score", "12.5"); ("est_rows", "100");
        ("actual_rows", "80"); ("replanned", "yes"); ("remaining", "2");
      ]
    ~start:0.0 ~dur:0.01;
  (* one span from each serving/IO-era category, so a category dropped
     from the summary table breaks this golden *)
  Span.add tr Span.Serve "queue-wait" ~start:0.0 ~dur:0.001;
  Span.add tr Span.Io "fault" ~start:0.0 ~dur:0.0005;
  Span.add tr Span.Io "prefetch" ~start:0.0 ~dur:0.0005;
  Span.add tr Span.Pipeline "pipeline-0" ~start:0.0 ~dur:0.002;
  Span.add tr Span.Breaker "build@t1" ~start:0.0 ~dur:0.001;
  let golden =
    "spans by category:\n\
    \  optimize         1\n\
    \  dp-level         1\n\
    \  reopt-step       1\n\
    \  pool-wait        2\n\
    \  serve            1\n\
    \  io               2\n\
    \  pipeline         1\n\
    \  breaker          1\n\
     pool queue-wait: 2 tasks\n\
     reopt journal:\n\
    \   1. q1/q1_s1@x                   est=100 actual=80 score=12.5 \
     replanned=yes remaining=2\n"
  in
  Alcotest.(check string) "profile golden" golden
    (Profile.summary ~timings:false t);
  let empty = Span.create () in
  Alcotest.(check string) "empty tracer"
    "spans by category:\n  (none)\n"
    (Profile.summary ~timings:false empty)

(* end to end: QuerySplit on the shop query emits a journal with one line
   per re-optimization step, carrying est vs. actual cardinalities *)
let test_profile_querysplit_journal () =
  let t = Span.create () in
  let _, ctx = Fixtures.shop_ctx ~n_orders:400 ~spans:t () in
  let q = Fixtures.shop_query () in
  let outcome = (Querysplit.strategy Querysplit.default_config).Strategy.run ctx q in
  Alcotest.(check bool) "query produced rows" true
    (Qs_storage.Table.n_rows outcome.Strategy.result > 0);
  let steps = find_all Span.Reopt_step (Span.spans t) in
  Alcotest.(check bool) "at least one reopt step" true (List.length steps >= 1);
  List.iter
    (fun (s : Span.span) ->
      List.iter
        (fun k ->
          if List.assoc_opt k s.Span.args = None then
            Alcotest.failf "journal span %s missing %s" s.Span.name k)
        [ "subquery"; "score"; "est_rows"; "actual_rows"; "replanned"; "remaining" ])
    steps;
  let summary = Profile.summary ~timings:false t in
  Alcotest.(check bool) "journal rendered" true
    (Str_helpers.contains summary "reopt journal:");
  Alcotest.(check bool) "est vs actual rendered" true
    (Str_helpers.contains summary " est=" && Str_helpers.contains summary " actual=")

(* --- metrics-diff (bench_diff logic) ----------------------------------- *)

let dump entries =
  let strategy (label, counters, mean) =
    Printf.sprintf
      "%S: {\"counters\": {%s}, \"histograms\": {\"query_time_s\": {\"count\": 2, \
       \"sum\": %g, \"mean\": %g, \"min\": 0.0, \"max\": %g, \"p50\": %g, \
       \"p90\": %g, \"p95\": %g, \"p99\": %g}}}"
      label
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) counters))
      (2.0 *. mean) mean mean mean mean mean mean
  in
  "{" ^ String.concat ", " (List.map strategy entries) ^ "}"

let parse_exn text =
  match Metrics_diff.parse text with
  | Ok j -> j
  | Error m -> Alcotest.failf "parse: %s" m

let test_metrics_diff_regression () =
  let old_ = parse_exn (dump [ ("QS", [ ("queries", 6); ("timeouts", 0) ], 1.0) ]) in
  let new_ = parse_exn (dump [ ("QS", [ ("queries", 6); ("timeouts", 2) ], 1.5) ]) in
  let r = Metrics_diff.diff ~old_ ~new_ () in
  Alcotest.(check int) "two regressions" 2
    (List.length r.Metrics_diff.regressions);
  Alcotest.(check (list string)) "no missing" [] r.Metrics_diff.missing;
  Alcotest.(check int) "no improvements" 0
    (List.length r.Metrics_diff.improvements);
  let metrics =
    List.sort compare
      (List.map (fun c -> c.Metrics_diff.metric) r.Metrics_diff.regressions)
  in
  Alcotest.(check (list string)) "which metrics"
    [ "counter:timeouts"; "histogram:query_time_s mean" ]
    metrics;
  Alcotest.(check bool) "report renders regressions" true
    (Str_helpers.contains (Metrics_diff.render r) "regressions")

let test_metrics_diff_improvement_and_threshold () =
  let old_ = parse_exn (dump [ ("QS", [ ("queries", 6) ], 2.0) ]) in
  let better = parse_exn (dump [ ("QS", [ ("queries", 6) ], 1.0) ]) in
  let r = Metrics_diff.diff ~old_ ~new_:better () in
  Alcotest.(check int) "improvement, not regression" 0
    (List.length r.Metrics_diff.regressions);
  Alcotest.(check int) "one improvement" 1
    (List.length r.Metrics_diff.improvements);
  (* a 10% slowdown is inside the default 20% threshold, outside 5% *)
  let slower = parse_exn (dump [ ("QS", [ ("queries", 6) ], 2.2) ]) in
  let within = Metrics_diff.diff ~old_ ~new_:slower () in
  Alcotest.(check int) "within default threshold" 0
    (List.length within.Metrics_diff.regressions);
  let strict = Metrics_diff.diff ~threshold:0.05 ~old_ ~new_:slower () in
  Alcotest.(check int) "beyond strict threshold" 1
    (List.length strict.Metrics_diff.regressions)

let test_metrics_diff_missing_and_workload_size () =
  let old_ =
    parse_exn (dump [ ("A", [ ("queries", 6) ], 1.0); ("B", [ ("queries", 6) ], 1.0) ])
  in
  (* B vanished; A changed workload size — both must land in [missing] *)
  let new_ = parse_exn (dump [ ("A", [ ("queries", 9) ], 1.0) ]) in
  let r = Metrics_diff.diff ~old_ ~new_ () in
  Alcotest.(check bool) "workload size change flagged" true
    (List.exists (fun m -> Str_helpers.contains m "queries") r.Metrics_diff.missing);
  Alcotest.(check bool) "vanished strategy flagged" true
    (List.exists (fun m -> Str_helpers.contains m "B") r.Metrics_diff.missing);
  (* extra strategies/metrics in the new dump are not a regression *)
  let wider =
    parse_exn (dump [ ("A", [ ("queries", 6) ], 1.0); ("B", [ ("queries", 6) ], 1.0);
                      ("C", [ ("queries", 6) ], 9.0) ])
  in
  let ok = Metrics_diff.diff ~old_ ~new_:wider () in
  Alcotest.(check (list string)) "extra entries ignored" [] ok.Metrics_diff.missing;
  Alcotest.(check int) "no regressions from extras" 0
    (List.length ok.Metrics_diff.regressions)

let test_metrics_diff_parser () =
  (match Metrics_diff.parse "{\"a\": [1, true, null, \"x\\u00e9\"]}" with
  | Ok (Metrics_diff.Obj [ ("a", Metrics_diff.List l) ]) ->
      Alcotest.(check int) "list arity" 4 (List.length l)
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.failf "parse: %s" m);
  List.iter
    (fun bad ->
      match Metrics_diff.parse bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %s" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "nope"; "{} trailing"; "\"unterminated" ]

let suite =
  [
    Alcotest.test_case "span nesting + parents" `Quick test_span_nesting;
    Alcotest.test_case "disabled tracer is passthrough" `Quick
      test_span_disabled_passthrough;
    Alcotest.test_case "span recorded on exception" `Quick
      test_span_records_on_exception;
    Alcotest.test_case "add clamps + sorts" `Quick test_span_add_clamps;
    Alcotest.test_case "pool task + queue-wait spans" `Quick test_pool_spans;
    Alcotest.test_case "pool inline paths record nothing" `Quick
      test_pool_inline_paths_record_nothing;
    Alcotest.test_case "optimizer dp-level spans" `Quick
      test_optimizer_dp_level_spans;
    Alcotest.test_case "executor operator spans" `Quick
      test_executor_operator_spans;
    Alcotest.test_case "chrome trace is valid + monotone" `Quick
      test_chrome_trace_valid;
    Alcotest.test_case "profile summary golden" `Quick test_profile_golden;
    Alcotest.test_case "querysplit reopt journal" `Quick
      test_profile_querysplit_journal;
    Alcotest.test_case "metrics diff: regressions" `Quick
      test_metrics_diff_regression;
    Alcotest.test_case "metrics diff: improvements + threshold" `Quick
      test_metrics_diff_improvement_and_threshold;
    Alcotest.test_case "metrics diff: missing + workload size" `Quick
      test_metrics_diff_missing_and_workload_size;
    Alcotest.test_case "metrics diff: parser" `Quick test_metrics_diff_parser;
  ]
