(* Baseline strategies: every algorithm must compute the same relation;
   their traces must reflect their documented materialization and
   re-planning behaviour. *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Strategy = Qs_core.Strategy
module Static = Qs_core.Static
module Plan_driven = Qs_core.Plan_driven
module Fs = Qs_core.Fs
module Querysplit = Qs_core.Querysplit
module Naive = Qs_exec.Naive
module Rng = Qs_util.Rng

let all_strategies =
  [
    Static.default;
    Static.use_robust;
    Fs.strategy;
    Plan_driven.strategy Plan_driven.reopt;
    Plan_driven.strategy Plan_driven.pop;
    Plan_driven.strategy Plan_driven.ief;
    Plan_driven.strategy Plan_driven.perron;
    Plan_driven.strategy Plan_driven.optrange;
    Querysplit.strategy Querysplit.default_config;
  ]

let test_all_agree_on_shop () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:600 () in
  let q = Fixtures.shop_query () in
  let expected = Naive.rows (Strategy.fragment_of_query ctx q) in
  List.iter
    (fun (s : Strategy.t) ->
      let got = (s.Strategy.run ctx q).Strategy.result in
      if not (Fixtures.tables_equal expected got) then
        Alcotest.failf "strategy %s diverges" s.Strategy.name)
    all_strategies

let test_all_agree_with_oracle_estimator () =
  let _, ctx0 = Fixtures.shop_ctx ~n_orders:400 () in
  let ctx =
    { ctx0 with Strategy.estimator = Estimator.oracle ~exec:(fun f -> Naive.count f) }
  in
  let q = Fixtures.shop_query () in
  let expected = Naive.rows (Strategy.fragment_of_query ctx q) in
  List.iter
    (fun (s : Strategy.t) ->
      let got = (s.Strategy.run ctx q).Strategy.result in
      if not (Fixtures.tables_equal expected got) then
        Alcotest.failf "strategy %s diverges under oracle" s.Strategy.name)
    all_strategies

let qcheck_strategies_agree =
  QCheck.Test.make ~name:"all strategies compute the same relation" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let _, ctx = Fixtures.shop_ctx ~n_orders:300 () in
      let rng = Rng.create seed in
      let q = Fixtures.random_shop_query rng in
      let expected = Naive.rows (Strategy.fragment_of_query ctx q) in
      List.for_all
        (fun (s : Strategy.t) ->
          Fixtures.tables_equal expected ((s.Strategy.run ctx q).Strategy.result))
        all_strategies)

let run_pd policy q =
  let _, ctx = Fixtures.shop_ctx ~n_orders:600 () in
  (Plan_driven.strategy policy).Strategy.run ctx q

let test_perron_materializes_every_join () =
  let q = Fixtures.shop_query () in
  let o = run_pd Plan_driven.perron q in
  (* 4 relations -> 3 joins -> 3 checkpoint iterations + possibly a final *)
  let mats = List.filter (fun i -> i.Strategy.materialized) o.Strategy.iterations in
  Alcotest.(check int) "3 materializations" 3 (List.length mats)

let test_reopt_counts_only_triggered () =
  let q = Fixtures.shop_query () in
  let o = run_pd Plan_driven.reopt q in
  let mats = List.filter (fun i -> i.Strategy.materialized) o.Strategy.iterations in
  let pop_mats =
    List.filter
      (fun i -> i.Strategy.materialized)
      (run_pd Plan_driven.pop q).Strategy.iterations
  in
  Alcotest.(check bool) "reopt materializes at most as often as pop" true
    (List.length mats <= List.length pop_mats)

let test_ief_always_replans () =
  let q = Fixtures.shop_query () in
  let o = run_pd Plan_driven.ief q in
  List.iter
    (fun (it : Strategy.iteration) ->
      if it.Strategy.materialized then
        Alcotest.(check bool) "replanned" true it.Strategy.replanned)
    o.Strategy.iterations

let test_optrange_replans_at_most_pop () =
  let q = Fixtures.shop_query () in
  let count_replans o =
    List.length (List.filter (fun i -> i.Strategy.replanned) o.Strategy.iterations)
  in
  Alcotest.(check bool) "wider band, fewer replans" true
    (count_replans (run_pd Plan_driven.optrange q)
    <= count_replans (run_pd Plan_driven.pop q))

let test_phi_selector_override () =
  let q = Fixtures.shop_query () in
  let _, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let s =
    Plan_driven.strategy ~selector:(Plan_driven.Phi Qs_core.Ssa.Phi4) Plan_driven.pop
  in
  Alcotest.(check bool) "name notes selector" true
    (Str_helpers.contains s.Strategy.name "phi4");
  let expected = Naive.rows (Strategy.fragment_of_query ctx q) in
  Alcotest.(check bool) "still correct" true
    (Fixtures.tables_equal expected ((s.Strategy.run ctx q).Strategy.result))

let test_use_is_index_insensitive () =
  (* USE's plan must not change between index configurations (footnote 3) *)
  let cat = Fixtures.shop_catalog () in
  let registry = Qs_stats.Stats_registry.create cat in
  let q = Fixtures.shop_query () in
  Catalog.build_indexes cat Catalog.Pk_only;
  let a =
    (Static.use_robust.Strategy.run (Strategy.make_ctx registry Estimator.default) q)
      .Strategy.result
  in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let b =
    (Static.use_robust.Strategy.run (Strategy.make_ctx registry Estimator.default) q)
      .Strategy.result
  in
  Alcotest.(check bool) "same answer regardless" true (Fixtures.tables_equal a b)

let test_fs_scale_factors () =
  Alcotest.(check int) "three scenarios" 3 (List.length Fs.scale_factors);
  Alcotest.(check bool) "includes neutral" true (List.mem 1.0 Fs.scale_factors)

let suite =
  [
    Alcotest.test_case "all strategies agree" `Quick test_all_agree_on_shop;
    Alcotest.test_case "agree under oracle" `Quick test_all_agree_with_oracle_estimator;
    Alcotest.test_case "perron materializes all" `Quick test_perron_materializes_every_join;
    Alcotest.test_case "reopt conservative" `Quick test_reopt_counts_only_triggered;
    Alcotest.test_case "ief always replans" `Quick test_ief_always_replans;
    Alcotest.test_case "optrange wide band" `Quick test_optrange_replans_at_most_pop;
    Alcotest.test_case "phi selector override" `Quick test_phi_selector_override;
    Alcotest.test_case "use index-insensitive" `Quick test_use_is_index_insensitive;
    Alcotest.test_case "fs scenarios" `Quick test_fs_scale_factors;
    QCheck_alcotest.to_alcotest qcheck_strategies_agree;
  ]
