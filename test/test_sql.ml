(* The SQL front-end. *)

module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Sql = Qs_query.Sql

let parse = Sql.parse

let test_basic_select () =
  let q =
    parse
      "SELECT t.title, n.name FROM title AS t, cast_info ci, name AS n \
       WHERE ci.movie_id = t.id AND ci.person_id = n.id;"
  in
  Alcotest.(check int) "3 rels" 3 (List.length q.Query.rels);
  Alcotest.(check int) "2 preds" 2 (List.length q.Query.preds);
  Alcotest.(check int) "2 output cols" 2 (List.length q.Query.output);
  Alcotest.(check string) "implicit alias" "ci" (Query.table_of_alias q "ci" |> fun t -> if t = "cast_info" then "ci" else "?")

let test_star_and_no_where () =
  let q = parse "select * from movies as m" in
  Alcotest.(check int) "one rel" 1 (List.length q.Query.rels);
  Alcotest.(check (list string)) "select star" []
    (List.map (fun (c : Expr.colref) -> c.Expr.name) q.Query.output);
  Alcotest.(check int) "no preds" 0 (List.length q.Query.preds)

let test_alias_defaults_to_table () =
  let q = parse "SELECT movies.id FROM movies WHERE movies.id = 3" in
  Alcotest.(check string) "alias = table" "movies" (List.hd q.Query.rels).Query.alias

let test_literals () =
  let q =
    parse
      "SELECT m.id FROM movies AS m WHERE m.year >= 1995 AND m.rating = 7.5 \
       AND m.title = 'the ''thing'''"
  in
  match q.Query.preds with
  | [ Expr.Cmp (Expr.Ge, _, Expr.Const (Value.Int 1995));
      Expr.Cmp (Expr.Eq, _, Expr.Const (Value.Float 7.5));
      Expr.Cmp (Expr.Eq, _, Expr.Const (Value.Str "the 'thing'")) ] ->
      ()
  | _ -> Alcotest.fail "literal parse shapes"

let test_between_in_like_null () =
  let q =
    parse
      "SELECT m.id FROM movies AS m, kw AS k WHERE m.year BETWEEN 1990 AND 2000 \
       AND k.word IN ('hero', 'war') AND k.word LIKE 'h%' AND m.note IS NULL \
       AND k.tag IS NOT NULL"
  in
  Alcotest.(check int) "5 preds" 5 (List.length q.Query.preds);
  (match List.nth q.Query.preds 0 with
  | Expr.Between (_, Value.Int 1990, Value.Int 2000) -> ()
  | _ -> Alcotest.fail "between");
  (match List.nth q.Query.preds 1 with
  | Expr.In_list (_, [ Value.Str "hero"; Value.Str "war" ]) -> ()
  | _ -> Alcotest.fail "in list");
  match List.nth q.Query.preds 4 with
  | Expr.Not_null _ -> ()
  | _ -> Alcotest.fail "is not null"

let test_or_group () =
  let q =
    parse "SELECT m.id FROM movies AS m WHERE (m.kind = 1 OR m.kind = 2) AND m.year > 2000"
  in
  match q.Query.preds with
  | [ Expr.Or [ _; _ ]; Expr.Cmp (Expr.Gt, _, _) ] -> ()
  | _ -> Alcotest.fail "or group shape"

let test_operators () =
  let q =
    parse
      "SELECT a.x FROM t AS a, u AS b WHERE a.x <> b.y AND a.x != 3 AND a.x <= 4 \
       AND a.x < 5 AND a.x >= 6 AND a.x > 7"
  in
  Alcotest.(check int) "6 preds" 6 (List.length q.Query.preds)

let test_roundtrip_through_to_sql () =
  (* parse (to_sql q) must reproduce the same structure *)
  let q0 =
    Query.make ~name:"rt"
      ~output:[ { Expr.rel = "a"; name = "x" } ]
      [ { Query.alias = "a"; table = "t" }; { Query.alias = "b"; table = "u" } ]
      [
        Expr.eq (Expr.col "a" "x") (Expr.col "b" "y");
        Expr.Cmp (Expr.Lt, Expr.col "a" "x", Expr.vint 10);
        Expr.Like (Expr.col "b" "z", "w%");
      ]
  in
  let q1 = parse ~name:"rt" (Query.to_sql q0) in
  Alcotest.(check bool) "rels equal" true (q0.Query.rels = q1.Query.rels);
  Alcotest.(check int) "same pred count" (List.length q0.Query.preds)
    (List.length q1.Query.preds);
  List.iter2
    (fun a b -> Alcotest.(check bool) "pred equal" true (Expr.equal_pred a b))
    q0.Query.preds q1.Query.preds

let test_case_insensitive_keywords () =
  let q = parse "SeLeCt a.x FrOm t As a WhErE a.x Is NoT nUlL" in
  Alcotest.(check int) "parsed" 1 (List.length q.Query.preds)

let expect_error input fragment =
  match Sql.parse_result input with
  | Ok _ -> Alcotest.failf "expected parse error for %s" input
  | Error msg ->
      if not (Str_helpers.contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment

let test_errors () =
  expect_error "SELECT FROM t AS a" "identifier";
  expect_error "SELECT a.x FROM t AS a WHERE" "identifier";
  expect_error "SELECT a.x FROM t AS a WHERE a.x" "predicate operator";
  expect_error "SELECT a.x FROM t AS a WHERE a.x = 'oops" "unterminated";
  expect_error "SELECT a.x FROM t AS a WHERE b.y = 1" "unknown alias";
  expect_error "SELECT a.x FROM t AS a extra" "trailing"

let test_parse_executes () =
  (* end-to-end: parsed SQL runs through QuerySplit on the shop schema *)
  let _, ctx = Fixtures.shop_ctx ~n_orders:300 () in
  let q =
    parse
      "SELECT c.city, p.kind FROM customers AS c, orders AS o, products AS p \
       WHERE o.customer_id = c.id AND o.product_id = p.id AND c.city = 'oslo'"
  in
  let module Strategy = Qs_core.Strategy in
  let module Querysplit = Qs_core.Querysplit in
  let truth = Qs_exec.Naive.rows (Strategy.fragment_of_query ctx q) in
  let got =
    ((Querysplit.strategy Querysplit.default_config).Strategy.run ctx q).Strategy.result
  in
  Alcotest.(check bool) "sql query executes correctly" true
    (Fixtures.tables_equal truth got)

let suite =
  [
    Alcotest.test_case "basic select" `Quick test_basic_select;
    Alcotest.test_case "star / no where" `Quick test_star_and_no_where;
    Alcotest.test_case "alias defaults" `Quick test_alias_defaults_to_table;
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "between/in/like/null" `Quick test_between_in_like_null;
    Alcotest.test_case "or group" `Quick test_or_group;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "to_sql roundtrip" `Quick test_roundtrip_through_to_sql;
    Alcotest.test_case "case insensitivity" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "parse + execute" `Quick test_parse_executes;
  ]
