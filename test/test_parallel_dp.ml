(* Parallel DP enumeration and the cross-step DP memo: both are pure
   optimizations — every test here is a determinism proof, asserting that
   pooled enumeration and memo replay pick plans byte-identical to the
   sequential, memo-free optimizer. *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Estimator = Qs_stats.Estimator
module Fragment = Qs_stats.Fragment
module Stats_registry = Qs_stats.Stats_registry
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Dp_memo = Qs_plan.Dp_memo
module Strategy = Qs_core.Strategy
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Fuzz = Qs_workload.Fuzz
module Pool = Qs_util.Pool
module Span = Qs_util.Span

let plan_of ?pool ?memo cat frag =
  Physical.to_string (Optimizer.optimize ?pool ?memo cat Estimator.default frag).Optimizer.plan

(* A PK-FK chain r0 <- r1 <- ... <- r{n-1}: single connected component, so
   every DP level is fully populated — the widest levels comfortably clear
   the optimizer's parallel fan-out threshold. *)
let chain_catalog n_rels =
  let cat = Catalog.create () in
  for i = 0 to n_rels - 1 do
    let name = Printf.sprintf "r%d" i in
    let tbl =
      Table.create ~name
        ~schema:(Schema.make name [ ("id", Value.TInt); ("fk", Value.TInt) ])
        (Array.init 200 (fun j ->
             [| Value.Int (j + 1); Value.Int (1 + (j * 7 mod 200)) |]))
    in
    Catalog.add_table cat ~pk:"id" tbl;
    if i > 0 then
      Catalog.add_fk cat ~from_table:name ~from_column:"fk"
        ~to_table:(Printf.sprintf "r%d" (i - 1))
        ~to_column:"id"
  done;
  Catalog.build_indexes cat Catalog.Pk_fk;
  cat

let chain_query n_rels =
  let alias i = Printf.sprintf "r%d" i in
  Query.make
    ~name:(Printf.sprintf "chain%d" n_rels)
    (List.init n_rels (fun i -> { Query.alias = alias i; table = alias i }))
    (List.init (n_rels - 1) (fun i ->
         Expr.Cmp
           (Expr.Eq, Expr.col (alias (i + 1)) "fk", Expr.col (alias i) "id")))

let chain_frag n_rels =
  let cat = chain_catalog n_rels in
  let registry = Stats_registry.create cat in
  (cat, registry, Fragment.of_query registry (chain_query n_rels))

(* 200 seeded random queries: the parallel optimizer must pick the same
   plan as the sequential one at every pool width, including width 1 (the
   pool's inline path). *)
let test_parallel_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  let frags = List.map (Strategy.fragment_of_query ctx) queries in
  let expected = List.map (plan_of cat) frags in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          List.iter2
            (fun frag exp ->
              Alcotest.(check string)
                (Printf.sprintf "domains=%d" domains)
                exp (plan_of ~pool cat frag))
            frags expected))
    [ 1; 2; 4 ]

(* a 10-relation chain drives level widths up to C(10,5) = 252 subsets, so
   the pooled sweep genuinely fans out (threshold is 16 misses) *)
let test_parallel_chain () =
  let cat, _, frag = chain_frag 10 in
  let expected = plan_of cat frag in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "chain domains=%d" domains)
            expected (plan_of ~pool cat frag)))
    [ 2; 4 ]

(* memo property over the corpus: first call populates, second call
   replays — both must match the memo-free plan, and the replay must
   actually hit *)
let test_memo_property_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:7 ~n:60 () in
  let hits_total = ref 0 in
  List.iter
    (fun q ->
      let frag = Strategy.fragment_of_query ctx q in
      let expected = plan_of cat frag in
      let memo = Dp_memo.create () in
      Alcotest.(check string)
        (q.Query.name ^ " populate") expected (plan_of ~memo cat frag);
      let h0 = Dp_memo.hits memo in
      Alcotest.(check string)
        (q.Query.name ^ " replay") expected (plan_of ~memo cat frag);
      hits_total := !hits_total + (Dp_memo.hits memo - h0))
    queries;
  if !hits_total = 0 then Alcotest.fail "memo replay never hit"

(* registering a temp over some aliases must invalidate every memoized
   subset touching them — and only change which work is redone, never the
   chosen plan *)
let test_memo_bump_invalidates () =
  let cat, _, frag = chain_frag 6 in
  let expected = plan_of cat frag in
  let memo = Dp_memo.create () in
  Alcotest.(check string) "populate" expected (plan_of ~memo cat frag);
  let h0 = Dp_memo.hits memo in
  Alcotest.(check string) "replay" expected (plan_of ~memo cat frag);
  if Dp_memo.hits memo <= h0 then Alcotest.fail "replay should hit";
  Dp_memo.bump memo ~aliases:[ "r3" ];
  let m1 = Dp_memo.misses memo in
  Alcotest.(check string) "after bump" expected (plan_of ~memo cat frag);
  if Dp_memo.misses memo <= m1 then
    Alcotest.fail "bump must force subsets containing r3 to miss";
  Alcotest.(check int) "alias epoch advanced" 1 (Dp_memo.alias_epoch memo "r3")

(* re-ANALYZE (Stats_registry.invalidate) bumps the per-table epoch; base
   inputs built afterwards carry it, so memo keys derived from the old
   epoch are never looked up again *)
let test_memo_registry_invalidate () =
  let cat, registry, frag = chain_frag 6 in
  let epoch_of f alias =
    let i = List.find (fun i -> i.Fragment.id = alias) f.Fragment.inputs in
    i.Fragment.stats_epoch
  in
  Alcotest.(check int) "fresh epoch" 0 (epoch_of frag "r2");
  let memo = Dp_memo.create () in
  let expected = plan_of cat frag in
  Alcotest.(check string) "populate" expected (plan_of ~memo cat frag);
  Stats_registry.invalidate registry "r2";
  let frag' = Fragment.of_query registry (chain_query 6) in
  Alcotest.(check int) "bumped epoch" 1 (epoch_of frag' "r2");
  let m0 = Dp_memo.misses memo in
  Alcotest.(check string) "after invalidate" expected (plan_of ~memo cat frag');
  if Dp_memo.misses memo <= m0 then
    Alcotest.fail "re-ANALYZE must force subsets containing r2 to miss"

(* end-to-end: QuerySplit with a cross-step memo returns the same result
   tables as without, and the memo earns hits across re-opt steps *)
let test_memo_strategy_equivalence () =
  let cat, _ = Fixtures.shop_ctx ~n_orders:400 () in
  let registry = Stats_registry.create cat in
  let queries = Fuzz.queries cat ~seed:31 ~n:30 () in
  let hits_total = ref 0 in
  List.iter
    (fun q ->
      let ctx_off = Strategy.make_ctx registry Estimator.default in
      let plain = (Algos.querysplit.Runner.strategy.Strategy.run ctx_off q).Strategy.result in
      let memo = Dp_memo.create () in
      let ctx_on = Strategy.make_ctx ~dp_memo:memo registry Estimator.default in
      let memoed = (Algos.querysplit.Runner.strategy.Strategy.run ctx_on q).Strategy.result in
      if not (Fixtures.tables_equal plain memoed) then
        Alcotest.failf "%s: memo-on result diverges" q.Query.name;
      hits_total := !hits_total + Dp_memo.hits memo)
    queries;
  if !hits_total = 0 then
    Alcotest.fail "QuerySplit never hit the cross-step memo"

(* the DP input limit is runtime-configurable; above it the optimizer
   falls back to the greedy planner (visible in the optimize span name) *)
let test_dp_limit_greedy_fallback () =
  let cat, ctx = Fixtures.shop_ctx () in
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  let saved = Optimizer.dp_input_limit () in
  Fun.protect
    ~finally:(fun () -> Optimizer.set_dp_input_limit saved)
    (fun () ->
      Optimizer.set_dp_input_limit 3;
      Alcotest.(check int) "limit set" 3 (Optimizer.dp_input_limit ());
      let tr = Span.create () in
      let r = Optimizer.optimize ~spans:tr cat Estimator.default frag in
      if not (Physical.to_string r.Optimizer.plan <> "") then
        Alcotest.fail "greedy fallback produced no plan";
      let names =
        List.filter_map
          (fun (s : Span.span) ->
            if s.Span.cat = Span.Optimize then Some s.Span.name else None)
          (Span.spans tr)
      in
      Alcotest.(check (list string)) "greedy span" [ "greedy n=4" ] names)

(* straggler heuristic: a query whose estimated cost dominates the queue
   gets the cell pool as its join/DP pool — flagged on its execute span,
   with digests identical to the sequential run *)
let test_straggler_autoparallel () =
  let cat, _ = Fixtures.shop_ctx ~n_orders:400 () in
  let env = Runner.make_env cat in
  let small name table =
    Query.make ~name [ { Query.alias = "t"; table } ] []
  in
  let queries =
    [ Fixtures.shop_query (); small "just_cust" "customers"; small "just_prod" "products" ]
  in
  let seq = Runner.run_spj ~timeout:20.0 env Algos.default queries in
  let tr = Span.create () in
  let par =
    Runner.run_spj ~timeout:20.0 ~domains:2 ~tracer:tr env Algos.default queries
  in
  List.iter2
    (fun (a : Runner.qresult) (b : Runner.qresult) ->
      Alcotest.(check string) ("digest " ^ a.Runner.query) a.Runner.digest
        b.Runner.digest)
    seq par;
  let flagged =
    List.filter
      (fun (s : Span.span) ->
        s.Span.cat = Span.Execute
        && List.assoc_opt "parallel-join" s.Span.args = Some "auto")
      (Span.spans tr)
  in
  match flagged with
  | [ s ] ->
      Alcotest.(check string) "straggler is the join query" "query:shopq"
        s.Span.name
  | [] -> Alcotest.fail "no execute span carried parallel-join=auto"
  | _ -> Alcotest.fail "straggler flag should single out the dominant query"

let suite =
  [
    Alcotest.test_case "parallel corpus 200q domains {1,2,4}" `Slow
      test_parallel_corpus;
    Alcotest.test_case "parallel 10-relation chain" `Quick test_parallel_chain;
    Alcotest.test_case "memo property corpus" `Slow test_memo_property_corpus;
    Alcotest.test_case "memo bump invalidates aliases" `Quick
      test_memo_bump_invalidates;
    Alcotest.test_case "memo registry invalidate" `Quick
      test_memo_registry_invalidate;
    Alcotest.test_case "memo-on QuerySplit equivalence" `Slow
      test_memo_strategy_equivalence;
    Alcotest.test_case "dp limit greedy fallback" `Quick
      test_dp_limit_greedy_fallback;
    Alcotest.test_case "straggler auto-parallel" `Quick
      test_straggler_autoparallel;
  ]
