(* Shared test fixtures: a small deterministic schema with known contents,
   plus a tiny Cinema instance and a random-SPJ-query generator for the
   property tests. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Table = Qs_storage.Table
module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Stats_registry = Qs_stats.Stats_registry
module Strategy = Qs_core.Strategy
module Estimator = Qs_stats.Estimator
module Rng = Qs_util.Rng

(* --- a small shop schema with skew and correlation ------------------- *)
(* customers(id, city, vip) ; products(id, kind, price) ;
   orders(id, customer_id, product_id, qty) ; reviews(id, product_id, stars) *)

let shop_catalog ?(n_orders = 2000) () =
  let rng = Rng.create 77 in
  let cat = Catalog.create () in
  let n_cust = 120 and n_prod = 80 and n_rev = 600 in
  let cities = [| "oslo"; "lima"; "pune"; "kiel" |] in
  let customers =
    Table.create ~name:"customers"
      ~schema:
        (Schema.make "customers"
           [ ("id", Value.TInt); ("city", Value.TStr); ("vip", Value.TBool) ])
      (Array.init n_cust (fun i ->
           [|
             Value.Int (i + 1);
             Value.Str cities.(i * 4 / n_cust);
             Value.Bool (i mod 7 = 0);
           |]))
  in
  let kinds = [| "book"; "game"; "tool" |] in
  let products =
    Table.create ~name:"products"
      ~schema:
        (Schema.make "products"
           [ ("id", Value.TInt); ("kind", Value.TStr); ("price", Value.TInt) ])
      (Array.init n_prod (fun i ->
           [|
             Value.Int (i + 1);
             Value.Str kinds.(i * 3 / n_prod);
             Value.Int (5 + (i mod 50));
           |]))
  in
  let orders =
    Table.create ~name:"orders"
      ~schema:
        (Schema.make "orders"
           [
             ("id", Value.TInt); ("customer_id", Value.TInt);
             ("product_id", Value.TInt); ("qty", Value.TInt);
           ])
      (Array.init n_orders (fun i ->
           (* skewed: low customer/product ids are hot, and correlated *)
           let c = 1 + (Rng.int rng n_cust * Rng.int rng n_cust / n_cust) in
           let p = 1 + min (n_prod - 1) (c * n_prod / n_cust + Rng.int rng 10) in
           [| Value.Int (i + 1); Value.Int c; Value.Int p; Value.Int (1 + Rng.int rng 9) |]))
  in
  let reviews =
    Table.create ~name:"reviews"
      ~schema:
        (Schema.make "reviews"
           [ ("id", Value.TInt); ("product_id", Value.TInt); ("stars", Value.TInt) ])
      (Array.init n_rev (fun i ->
           let p = 1 + (Rng.int rng n_prod * Rng.int rng n_prod / n_prod) in
           [| Value.Int (i + 1); Value.Int p; Value.Int (1 + Rng.int rng 5) |]))
  in
  Catalog.add_table cat ~pk:"id" customers;
  Catalog.add_table cat ~pk:"id" products;
  Catalog.add_table cat ~pk:"id" orders;
  Catalog.add_table cat ~pk:"id" reviews;
  Catalog.add_fk cat ~from_table:"orders" ~from_column:"customer_id" ~to_table:"customers"
    ~to_column:"id";
  Catalog.add_fk cat ~from_table:"orders" ~from_column:"product_id" ~to_table:"products"
    ~to_column:"id";
  Catalog.add_fk cat ~from_table:"reviews" ~from_column:"product_id" ~to_table:"products"
    ~to_column:"id";
  Catalog.build_indexes cat Catalog.Pk_fk;
  cat

let shop_ctx ?n_orders ?spans () =
  let cat = shop_catalog ?n_orders () in
  let registry = Stats_registry.create cat in
  (cat, Strategy.make_ctx ?spans registry Estimator.default)

(* the 4-way shop join with some filters; known non-empty *)
let shop_query ?(name = "shopq") () =
  Query.make ~name
    ~output:
      [ { Expr.rel = "c"; name = "city" }; { Expr.rel = "p"; name = "kind" } ]
    [
      { Query.alias = "c"; table = "customers" };
      { Query.alias = "o"; table = "orders" };
      { Query.alias = "p"; table = "products" };
      { Query.alias = "r"; table = "reviews" };
    ]
    [
      Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id");
      Expr.eq (Expr.col "o" "product_id") (Expr.col "p" "id");
      Expr.eq (Expr.col "r" "product_id") (Expr.col "p" "id");
      Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "oslo");
      Expr.Cmp (Expr.Ge, Expr.col "r" "stars", Expr.vint 3);
    ]

(* --- random SPJ queries over the shop schema for property tests ------- *)

let random_shop_query rng =
  let with_reviews = Rng.bool rng in
  let rels =
    [
      { Query.alias = "c"; table = "customers" };
      { Query.alias = "o"; table = "orders" };
      { Query.alias = "p"; table = "products" };
    ]
    @ (if with_reviews then [ { Query.alias = "r"; table = "reviews" } ] else [])
  in
  let preds =
    [
      Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id");
      Expr.eq (Expr.col "o" "product_id") (Expr.col "p" "id");
    ]
    @ (if with_reviews then [ Expr.eq (Expr.col "r" "product_id") (Expr.col "p" "id") ]
       else [])
    @ (if Rng.bool rng then
         [ Expr.Cmp (Expr.Eq, Expr.col "c" "city",
                     Expr.vstr (Rng.choice rng [| "oslo"; "lima"; "pune"; "kiel" |])) ]
       else [])
    @ (if Rng.bool rng then
         [ Expr.Cmp (Expr.Eq, Expr.col "p" "kind",
                     Expr.vstr (Rng.choice rng [| "book"; "game"; "tool" |])) ]
       else [])
    @ (if Rng.bool rng then
         [ Expr.Cmp (Expr.Le, Expr.col "o" "qty", Expr.vint (Rng.in_range rng 2 9)) ]
       else [])
    @
    if with_reviews && Rng.bool rng then
      [ Expr.Cmp (Expr.Ge, Expr.col "r" "stars", Expr.vint (Rng.in_range rng 1 5)) ]
    else []
  in
  let output =
    if Rng.bool rng then []
    else [ { Expr.rel = "c"; name = "city" }; { Expr.rel = "p"; name = "id" } ]
  in
  Query.make ~name:(Printf.sprintf "rand_%d" (Rng.int rng 100000)) ~output rels preds

(* a tiny Cinema instance shared by the heavier integration tests *)
let cinema = lazy (
  let cat = Qs_workload.Cinema.build ~scale:0.08 ~seed:3 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  cat)

let cinema_queries = lazy (
  Qs_workload.Cinema.queries (Lazy.force cinema) ~seed:4 ~n:12)

(* sorted multiset of rows with columns ordered by qualified name, so two
   plans producing the same relation in different column orders compare
   equal *)
let canonical_rows (t : Table.t) =
  let order =
    Array.to_list t.Table.schema
    |> List.mapi (fun i c -> (Schema.column_id c, i))
    |> List.sort compare
  in
  Table.fold
    (fun acc row -> List.map (fun (_, i) -> Value.to_string row.(i)) order :: acc)
    [] t
  |> List.sort compare

let tables_equal a b = canonical_rows a = canonical_rows b
