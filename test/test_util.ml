(* Rng / Zipf / Timer. *)

module Rng = Qs_util.Rng
module Zipf = Qs_util.Zipf

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_in_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.in_range rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    Alcotest.(check bool) "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "p close to 0.3" true (p > 0.27 && p < 0.33)

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:1.5) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.1);
  Alcotest.(check bool) "var near 2.25" true (Float.abs (var -. 2.25) < 0.25)

let test_shuffle_is_permutation () =
  let rng = Rng.create 19 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 23 in
  let s = Rng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "10 samples" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 50)) s

let test_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* the split stream should not just replay the parent *)
  let pa = Rng.int64 a and pb = Rng.int64 b in
  Alcotest.(check bool) "independent" true (pa <> pb)

let test_zipf_frequencies_sum () =
  let z = Zipf.create ~n:50 ~theta:1.0 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.frequency z i
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  Alcotest.(check bool) "rank 0 most frequent" true
    (Zipf.frequency z 0 > Zipf.frequency z 1);
  Alcotest.(check bool) "rank 1 > rank 50" true (Zipf.frequency z 1 > Zipf.frequency z 50)

let test_zipf_uniform_when_theta_zero () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  Alcotest.(check bool) "uniform" true
    (Float.abs (Zipf.frequency z 0 -. Zipf.frequency z 9) < 1e-9)

let test_zipf_sample_matches_frequency () =
  let z = Zipf.create ~n:20 ~theta:0.9 in
  let rng = Rng.create 31 in
  let counts = Array.make 20 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let emp0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "rank-0 empirical close" true
    (Float.abs (emp0 -. Zipf.frequency z 0) < 0.02)

let qcheck_int_never_out_of_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "in_range" `Quick test_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "zipf sums to 1" `Quick test_zipf_frequencies_sum;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform theta=0" `Quick test_zipf_uniform_when_theta_zero;
    Alcotest.test_case "zipf empirical" `Slow test_zipf_sample_matches_frequency;
    QCheck_alcotest.to_alcotest qcheck_int_never_out_of_bounds;
  ]
