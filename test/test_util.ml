(* Rng / Zipf / Timer / Scratch / Pool. *)

module Rng = Qs_util.Rng
module Zipf = Qs_util.Zipf
module Timer = Qs_util.Timer
module Scratch = Qs_util.Scratch
module Pool = Qs_util.Pool

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_in_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.in_range rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    Alcotest.(check bool) "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "p close to 0.3" true (p > 0.27 && p < 0.33)

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:1.5) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.0) < 0.1);
  Alcotest.(check bool) "var near 2.25" true (Float.abs (var -. 2.25) < 0.25)

let test_shuffle_is_permutation () =
  let rng = Rng.create 19 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 23 in
  let s = Rng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "10 samples" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 50)) s

let test_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* the split stream should not just replay the parent *)
  let pa = Rng.int64 a and pb = Rng.int64 b in
  Alcotest.(check bool) "independent" true (pa <> pb)

let test_zipf_frequencies_sum () =
  let z = Zipf.create ~n:50 ~theta:1.0 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.frequency z i
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  Alcotest.(check bool) "rank 0 most frequent" true
    (Zipf.frequency z 0 > Zipf.frequency z 1);
  Alcotest.(check bool) "rank 1 > rank 50" true (Zipf.frequency z 1 > Zipf.frequency z 50)

let test_zipf_uniform_when_theta_zero () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  Alcotest.(check bool) "uniform" true
    (Float.abs (Zipf.frequency z 0 -. Zipf.frequency z 9) < 1e-9)

let test_zipf_sample_matches_frequency () =
  let z = Zipf.create ~n:20 ~theta:0.9 in
  let rng = Rng.create 31 in
  let counts = Array.make 20 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let emp0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "rank-0 empirical close" true
    (Float.abs (emp0 -. Zipf.frequency z 0) < 0.02)

let test_streams_deterministic () =
  let a = Rng.streams ~seed:5 4 and b = Rng.streams ~seed:5 4 in
  Array.iteri
    (fun i ra ->
      for _ = 1 to 20 do
        Alcotest.(check int64)
          (Printf.sprintf "stream %d replays" i)
          (Rng.int64 ra) (Rng.int64 b.(i))
      done)
    a;
  (* distinct streams of the same family disagree *)
  let c = Rng.streams ~seed:5 2 in
  Alcotest.(check bool) "streams 0 and 1 differ" true
    (Rng.int64 c.(0) <> Rng.int64 c.(1))

let test_streams_prefix_stable () =
  (* stream [i] depends only on (seed, i): asking for more streams must
     not change the earlier ones, or per-domain workloads would shift
     when the domain count changes *)
  let small = Rng.streams ~seed:2023 2 and big = Rng.streams ~seed:2023 8 in
  for i = 0 to 1 do
    for _ = 1 to 20 do
      Alcotest.(check int64) "prefix stable" (Rng.int64 small.(i)) (Rng.int64 big.(i))
    done
  done

let test_timer_monotone () =
  let t0 = Timer.now () in
  let acc = ref 0 in
  for i = 1 to 100_000 do
    acc := !acc + i
  done;
  ignore !acc;
  let t1 = Timer.now () in
  Alcotest.(check bool) "non-decreasing" true (t1 >= t0);
  (* process-relative: seconds since start, not an epoch timestamp *)
  Alcotest.(check bool) "process-relative base" true (t0 >= 0.0 && t0 < 1e6)

let test_timer_elapsed_clamped () =
  Alcotest.(check bool) "future deadline clamps to 0" true
    (Timer.elapsed ~since:(Timer.now () +. 60.0) = 0.0);
  Alcotest.(check bool) "past is positive" true (Timer.elapsed ~since:(-1.0) > 0.0)

let test_timer_time () =
  let v, dt = Timer.time (fun () -> 41 + 1) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "elapsed >= 0" true (dt >= 0.0)

let test_scratch_typed_slots () =
  let s = Scratch.create () in
  let ints : int Scratch.slot = Scratch.slot () in
  let strs : string Scratch.slot = Scratch.slot () in
  Scratch.set s ints "k" 7;
  Alcotest.(check (option int)) "read back" (Some 7) (Scratch.find s ints "k");
  (* the same key through a different slot is invisible, not a crash *)
  Alcotest.(check (option string)) "other slot sees nothing" None (Scratch.find s strs "k");
  Scratch.set s ints "k" 8;
  Alcotest.(check (option int)) "overwrite" (Some 8) (Scratch.find s ints "k");
  Alcotest.(check (option int)) "missing key" None (Scratch.find s ints "absent")

let test_scratch_find_or_add () =
  let s = Scratch.create () in
  let slot : int Scratch.slot = Scratch.slot () in
  let calls = ref 0 in
  let compute () = incr calls; !calls * 10 in
  Alcotest.(check int) "computed once" 10 (Scratch.find_or_add s slot "k" compute);
  Alcotest.(check int) "cached" 10 (Scratch.find_or_add s slot "k" compute);
  Alcotest.(check int) "one call" 1 !calls;
  (* exceptions propagate and nothing is cached *)
  let failing () = failwith "boom" in
  Alcotest.(check bool) "exception propagates" true
    (try ignore (Scratch.find_or_add s slot "bad" failing); false
     with Failure _ -> true);
  Alcotest.(check (option int)) "failure not cached" None (Scratch.find s slot "bad");
  Alcotest.(check int) "recomputed after failure" 20
    (Scratch.find_or_add s slot "bad" compute)

let test_pool_map_ordered () =
  Pool.with_pool ~domains:4 (fun pool ->
      let items = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "order preserved"
        (List.map (fun i -> i * i) items)
        (Pool.map pool (fun i -> i * i) items);
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun i -> i) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun i -> i * 9) [ 1 ]))

let test_pool_inline_when_one () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size 1" 1 (Pool.size pool);
      (* inline pools run on the calling domain: effects are immediate
         and ordered *)
      let trace = ref [] in
      let out = Pool.map pool (fun i -> trace := i :: !trace; i + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "results" [ 2; 3; 4 ] out;
      Alcotest.(check (list int)) "sequential order" [ 3; 2; 1 ] !trace)

exception Boom of int

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool
               (fun i -> if i >= 3 then raise (Boom i) else i)
               [ 0; 1; 2; 3; 4; 5 ]);
          None
        with Boom i -> Some i
      in
      (* the first failing item in ITEM order wins, not whichever domain
         happened to crash first *)
      Alcotest.(check (option int)) "first failure in item order" (Some 3) raised;
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "pool still usable" [ 2; 4 ]
        (Pool.map pool (fun i -> i * 2) [ 1; 2 ]))

let test_pool_nested_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let out =
        Pool.map pool
          (fun i ->
            (* jobs may re-enter the same pool: caller-helps scheduling
               makes this deadlock-free even with every domain busy *)
            List.fold_left ( + ) 0 (Pool.map pool (fun j -> i * j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Alcotest.(check (list int)) "nested results" [ 6; 12; 18; 24; 30; 36 ] out)

let test_pool_matches_sequential () =
  let f i = (i * 7919) mod 1009 in
  let items = List.init 500 (fun i -> i) in
  let seq = List.map f items in
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "parallel = sequential" seq (Pool.map pool f items))

let qcheck_int_never_out_of_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "in_range" `Quick test_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "zipf sums to 1" `Quick test_zipf_frequencies_sum;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf uniform theta=0" `Quick test_zipf_uniform_when_theta_zero;
    Alcotest.test_case "zipf empirical" `Slow test_zipf_sample_matches_frequency;
    Alcotest.test_case "rng streams deterministic" `Quick test_streams_deterministic;
    Alcotest.test_case "rng streams prefix stable" `Quick test_streams_prefix_stable;
    Alcotest.test_case "timer monotone" `Quick test_timer_monotone;
    Alcotest.test_case "timer elapsed clamped" `Quick test_timer_elapsed_clamped;
    Alcotest.test_case "timer time" `Quick test_timer_time;
    Alcotest.test_case "scratch typed slots" `Quick test_scratch_typed_slots;
    Alcotest.test_case "scratch find_or_add" `Quick test_scratch_find_or_add;
    Alcotest.test_case "pool map ordered" `Quick test_pool_map_ordered;
    Alcotest.test_case "pool inline when one" `Quick test_pool_inline_when_one;
    Alcotest.test_case "pool exception propagation" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    QCheck_alcotest.to_alcotest qcheck_int_never_out_of_bounds;
  ]
