(* Columnar chunk layout: exact of_rows/to_rows round-trips, columnar
   Chunk_file frames (NaN, -0.0, min_int, NUL-in-string), the
   frame-sizing regression for dictionary-heavy string columns,
   selection-vector kernel semantics and edge cases (empty, full,
   ragged last chunk), layout preservation through filter/project,
   vectorized vs row-fallback filter parity, columnar aggregation
   parity, and ANALYZE stats parity across layouts. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Table = Qs_storage.Table
module Chunk = Qs_storage.Chunk
module Columnar = Qs_storage.Columnar
module Chunk_file = Qs_storage.Chunk_file
module Expr = Qs_query.Expr
module Executor = Qs_exec.Executor
module Relop = Qs_exec.Relop
module Logical = Qs_plan.Logical
module Analyze = Qs_stats.Analyze
module Table_stats = Qs_stats.Table_stats
module Pool = Qs_util.Pool

let with_layout layout f =
  let saved = Table.default_layout () in
  Table.set_default_layout layout;
  Fun.protect ~finally:(fun () -> Table.set_default_layout saved) f

let temp_dir () =
  let f = Filename.temp_file "qs_columnar" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rm_rf dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Sys.rmdir dir with Sys_error _ -> ()

(* NaN-safe, -0.0-aware cell comparison: Value.compare equates NaN with
   itself and -0.0 with 0.0, which is exactly the engine's semantics *)
let check_cells what expect got =
  Alcotest.(check int) (what ^ " rows") (Array.length expect) (Array.length got);
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c v ->
          if Value.compare v got.(r).(c) <> 0 then
            Alcotest.failf "%s: row %d col %d: %s <> %s" what r c
              (Value.to_string v)
              (Value.to_string got.(r).(c)))
        row)
    expect

(* arity 4: ints with min_int/max_int and NULLs, floats with NaN, both
   zero signs and denormals, strings with NULs and repetitions, bools *)
let tricky_rows =
  [|
    [| Value.Int min_int; Value.Float Float.nan; Value.Str "a\x00b"; Value.Bool true |];
    [| Value.Int max_int; Value.Float (-0.0); Value.Str ""; Value.Bool false |];
    [| Value.Null; Value.Float 0.0; Value.Str "snake"; Value.Null |];
    [| Value.Int 0; Value.Null; Value.Str (String.make 300 'x'); Value.Bool true |];
    [| Value.Int (-7); Value.Float infinity; Value.Str "snake"; Value.Bool false |];
    [| Value.Int 42; Value.Float neg_infinity; Value.Null; Value.Bool true |];
    [| Value.Null; Value.Float 1e-300; Value.Str "a\x00b"; Value.Null |];
  |]

let test_of_rows_roundtrip () =
  let c = Columnar.of_rows tricky_rows in
  Alcotest.(check int) "n_rows" 7 (Columnar.n_rows c);
  Alcotest.(check int) "n_cols" 4 (Columnar.n_cols c);
  check_cells "to_rows" tricky_rows (Columnar.to_rows c);
  (* point access and batch decode agree with the rows *)
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun col v ->
          if Value.compare v (Columnar.get c ~row:r ~col) <> 0 then
            Alcotest.failf "get %d %d" r col)
        row;
      check_cells "row" [| row |] [| Columnar.row c r |])
    tricky_rows;
  for col = 0 to 3 do
    let vals = Columnar.column_values c col in
    Array.iteri
      (fun r v ->
        if Value.compare tricky_rows.(r).(col) v <> 0 then
          Alcotest.failf "column_values %d row %d" col r)
      vals
  done;
  (* logical size is layout-invariant *)
  Alcotest.(check int)
    "byte_size"
    (Chunk.byte_size (Chunk.of_rows tricky_rows))
    (Columnar.byte_size c);
  (* empty chunk *)
  let e = Columnar.of_rows [||] in
  Alcotest.(check int) "empty rows" 0 (Columnar.n_rows e);
  Alcotest.(check int) "empty decode" 0 (Array.length (Columnar.to_rows e))

let test_chunk_file_columnar_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* the same tricky chunk spilled in both layouts through one file *)
  let chunks =
    [| Chunk.of_columnar (Columnar.of_rows tricky_rows); Chunk.of_rows tricky_rows |]
  in
  let file, logical = Chunk_file.write ~dir ~name:"cols" ~arity:4 chunks in
  Alcotest.(check int) "frames" 2 (Chunk_file.n_frames file);
  let c0 = Chunk_file.read file 0 in
  let c1 = Chunk_file.read file 1 in
  (* frames come back in the layout they were written with *)
  Alcotest.(check bool) "frame 0 is columnar" true (Chunk.columnar c0 <> None);
  Alcotest.(check bool) "frame 1 is row-major" true (Chunk.columnar c1 = None);
  check_cells "columnar frame" tricky_rows (Chunk.rows c0);
  check_cells "row frame" tricky_rows (Chunk.rows c1);
  (* logical byte accounting is layout-invariant too *)
  Alcotest.(check int) "logical sizes equal" logical.(1) logical.(0)

(* the frame-sizing regression: a dictionary-heavy string column (every
   value distinct and long) serializes LARGER columnar than row-major —
   dict entries plus 4-byte codes exceed the inline strings — so frame
   size must come from the serialized size under each chunk's own
   layout, not from the row form *)
let test_frame_sizing_dict_heavy () =
  let rows = Array.init 64 (fun i -> [| Value.Str (String.make 48 'a' ^ string_of_int i) |]) in
  let row_chunk = Chunk.of_rows rows in
  let col_chunk = Chunk.of_columnar (Columnar.of_rows rows) in
  let ser_row = Chunk_file.ser_chunk_size row_chunk in
  let ser_col = Chunk_file.ser_chunk_size col_chunk in
  Alcotest.(check bool)
    (Printf.sprintf "columnar serializes larger (%d > %d)" ser_col ser_row)
    true (ser_col > ser_row);
  (* a file whose largest *serialized* chunk is the columnar one still
     round-trips exactly — sizing frames from the row form would write
     the columnar frame out of bounds *)
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let file, _ = Chunk_file.write ~dir ~name:"dict" ~arity:1 [| row_chunk; col_chunk |] in
  check_cells "row frame" rows (Chunk.rows (Chunk_file.read file 0));
  check_cells "dict frame" rows (Chunk.rows (Chunk_file.read file 1))

(* --- selection-vector kernels ------------------------------------------ *)

let sel_check what expect got =
  match got with
  | None -> Alcotest.failf "%s: kernel declined" what
  | Some sel ->
      Alcotest.(check (array int)) what (Array.of_list expect) sel

let test_selvec_kernels () =
  let ints = Columnar.of_rows (Array.init 10 (fun i -> [| Value.Int i |])) in
  (* empty input vector stays empty *)
  sel_check "empty sel" []
    (Columnar.eval_cmp ints ~col:0 Columnar.Lt (Value.Int 5) ~sel:(Some [||]));
  (* dense input, full survivors *)
  sel_check "full" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Columnar.eval_cmp ints ~col:0 Columnar.Lt (Value.Int 100) ~sel:None);
  (* dense input, nothing survives *)
  sel_check "none" []
    (Columnar.eval_cmp ints ~col:0 Columnar.Lt (Value.Int 0) ~sel:None);
  (* narrowing a sparse vector preserves order and subset-ness *)
  sel_check "narrow" [ 5; 7 ]
    (Columnar.eval_cmp ints ~col:0 Columnar.Ge (Value.Int 4)
       ~sel:(Some [| 1; 3; 5; 7 |]));
  (* int column vs float constant compares numerically *)
  sel_check "int vs float" [ 0; 1; 2 ]
    (Columnar.eval_cmp ints ~col:0 Columnar.Lt (Value.Float 2.5) ~sel:None);
  (* NULL constant never matches *)
  sel_check "null const" []
    (Columnar.eval_cmp ints ~col:0 Columnar.Eq Value.Null ~sel:None);
  (* a mixed-type (generic) column has no kernel *)
  let mixed = Columnar.of_rows [| [| Value.Int 1 |]; [| Value.Str "x" |] |] in
  Alcotest.(check bool)
    "generic column declines" true
    (Columnar.eval_cmp mixed ~col:0 Columnar.Eq (Value.Int 1) ~sel:None = None)

let test_selvec_float_semantics () =
  let fl =
    Columnar.of_rows
      [|
        [| Value.Float Float.nan |]; [| Value.Float (-0.0) |];
        [| Value.Float 0.0 |]; [| Value.Float 1.0 |];
      |]
  in
  let cmp op k = Columnar.eval_cmp fl ~col:0 op (Value.Float k) ~sel:None in
  (* Value.compare semantics: NaN sorts below every float and equals
     itself; -0.0 = 0.0 *)
  sel_check "lt 0" [ 0 ] (cmp Columnar.Lt 0.0);
  sel_check "le 0" [ 0; 1; 2 ] (cmp Columnar.Le 0.0);
  sel_check "ge 0" [ 1; 2; 3 ] (cmp Columnar.Ge 0.0);
  sel_check "eq 0 matches -0" [ 1; 2 ] (cmp Columnar.Eq 0.0);
  sel_check "ne 0" [ 0; 3 ] (cmp Columnar.Ne 0.0);
  sel_check "eq nan" [ 0 ] (cmp Columnar.Eq Float.nan);
  sel_check "ne nan" [ 1; 2; 3 ] (cmp Columnar.Ne Float.nan);
  sel_check "lt nan" [] (cmp Columnar.Lt Float.nan);
  sel_check "le nan" [ 0 ] (cmp Columnar.Le Float.nan);
  sel_check "gt nan" [ 1; 2; 3 ] (cmp Columnar.Gt Float.nan);
  sel_check "ge nan" [ 0; 1; 2; 3 ] (cmp Columnar.Ge Float.nan)

let test_selvec_nulls_and_take () =
  let c = Columnar.of_rows tricky_rows in
  (* IS NULL / IS NOT NULL on the int column (rows 2 and 6 are NULL) *)
  sel_check "is null" [ 2; 6 ]
    (Columnar.eval_null c ~col:0 ~want_null:true ~sel:None);
  sel_check "not null" [ 0; 1; 3; 4; 5 ]
    (Columnar.eval_null c ~col:0 ~want_null:false ~sel:None);
  (* NULLs never pass a comparison *)
  (match Columnar.eval_cmp c ~col:0 Columnar.Le (Value.Int max_int) ~sel:None with
  | None -> Alcotest.fail "int kernel declined"
  | Some sel ->
      Alcotest.(check (array int)) "nulls excluded" [| 0; 1; 3; 4; 5 |] sel);
  (* gather keeps exact values (dict shared) and drops collapsed nulls *)
  let taken = Columnar.take c [| 0; 2; 6 |] in
  check_cells "take"
    [| tricky_rows.(0); tricky_rows.(2); tricky_rows.(6) |]
    (Columnar.to_rows taken);
  let dense = Columnar.take c [| 0; 1; 3; 4; 5 |] in
  sel_check "taken rows all non-null" [ 0; 1; 2; 3; 4 ]
    (Columnar.eval_null dense ~col:0 ~want_null:false ~sel:None);
  (* column projection shares columns *)
  let p = Columnar.project c [ 2; 0 ] in
  Alcotest.(check int) "projected cols" 2 (Columnar.n_cols p);
  check_cells "project"
    (Array.map (fun r -> [| r.(2); r.(0) |]) tricky_rows)
    (Columnar.to_rows p)

(* --- executor parity across layouts ------------------------------------ *)

let wide_schema =
  Schema.make "t"
    [
      ("id", Value.TInt); ("amount", Value.TInt); ("price", Value.TFloat);
      ("cat", Value.TStr); ("flag", Value.TBool);
    ]

(* 30 rows, chunk_rows 8 => ragged last chunk of 6 *)
let wide_rows =
  Array.init 30 (fun i ->
      let h = (i * 2654435761) land 0x3fffffff in
      [|
        Value.Int i;
        (if i mod 7 = 3 then Value.Null else Value.Int (h mod 100));
        (if i mod 11 = 5 then Value.Float Float.nan
         else if i mod 11 = 6 then Value.Float (-0.0)
         else Value.Float (float_of_int (h mod 40) /. 4.0));
        Value.Str [| "a"; "b"; "a\x00b"; "long-tail-category" |].(h mod 4);
        Value.Bool (i mod 2 = 0);
      |])

let mk_table layout =
  with_layout layout (fun () ->
      Table.create ~chunk_rows:8 ~name:"t" ~schema:wide_schema wide_rows)

let filter_parity_cases =
  [
    ("selective int", [ Expr.Cmp (Expr.Lt, Expr.col "t" "amount", Expr.vint 50) ]);
    ("none survive", [ Expr.Cmp (Expr.Lt, Expr.col "t" "amount", Expr.vint (-1)) ]);
    ("all survive", [ Expr.Not_null (Expr.col "t" "id") ]);
    ("between", [ Expr.Between (Expr.col "t" "amount", Value.Int 10, Value.Int 60) ]);
    ("is null", [ Expr.Is_null (Expr.col "t" "amount") ]);
    ("float vs nan", [ Expr.Cmp (Expr.Eq, Expr.col "t" "price", Expr.vfloat Float.nan) ]);
    ("float le zero", [ Expr.Cmp (Expr.Le, Expr.col "t" "price", Expr.vfloat 0.0) ]);
    ("string eq", [ Expr.Cmp (Expr.Eq, Expr.col "t" "cat", Expr.vstr "a\x00b") ]);
    ("string ne", [ Expr.Cmp (Expr.Ne, Expr.col "t" "cat", Expr.vstr "a") ]);
    ( "kernel + residual",
      [
        Expr.Cmp (Expr.Gt, Expr.col "t" "amount", Expr.vint 5);
        (* Arith has no kernel: exercises partial application + row
           fallback over the kernel's survivors *)
        Expr.Cmp
          ( Expr.Lt,
            Expr.Arith (Expr.Add, Expr.col "t" "amount", Expr.vint 1),
            Expr.vint 80 );
      ] );
    ( "flipped const-col",
      [ Expr.Cmp (Expr.Gt, Expr.vint 50, Expr.col "t" "amount") ] );
  ]

let test_filter_parity_across_layouts () =
  let row_tbl = mk_table Table.Row in
  let col_tbl = mk_table Table.Columnar in
  List.iter
    (fun (what, preds) ->
      let a = Executor.filter_table row_tbl preds in
      let b = Executor.filter_table col_tbl preds in
      Alcotest.(check int) (what ^ " rows") (Table.n_rows a) (Table.n_rows b);
      Alcotest.(check string) (what ^ " digest") (Table.digest a) (Table.digest b))
    filter_parity_cases;
  (* the all-survivors filter returns the full table either way *)
  let keep_all = [ Expr.Not_null (Expr.col "t" "id") ] in
  Alcotest.(check string)
    "full filter = identity"
    (Table.digest col_tbl)
    (Table.digest (Executor.filter_table col_tbl keep_all));
  (* a columnar filter output stays columnar (layout preserved, not
     re-encoded through the global default) *)
  let filtered =
    Executor.filter_table col_tbl
      [ Expr.Cmp (Expr.Lt, Expr.col "t" "amount", Expr.vint 50) ]
  in
  Alcotest.(check bool)
    "filter preserves columnar" true
    (Table.n_chunks filtered = 0
    || Chunk.columnar (Table.chunk_data filtered 0) <> None);
  (* vectorized kernels actually ran on the columnar side *)
  let v0 = Executor.vectorized_chunks () in
  ignore
    (Executor.filter_table col_tbl
       [ Expr.Cmp (Expr.Lt, Expr.col "t" "amount", Expr.vint 50) ]);
  Alcotest.(check bool)
    "vectorized counter moved" true
    (Executor.vectorized_chunks () > v0)

let test_project_parity_across_layouts () =
  let row_tbl = mk_table Table.Row in
  let col_tbl = mk_table Table.Columnar in
  let cols = [ { Expr.rel = "t"; name = "cat" }; { Expr.rel = "t"; name = "id" } ] in
  let a = Executor.project row_tbl cols in
  let b = Executor.project col_tbl cols in
  Alcotest.(check string) "project digest" (Table.digest a) (Table.digest b);
  Alcotest.(check bool)
    "project preserves columnar" true
    (Chunk.columnar (Table.chunk_data b 0) <> None)

let test_aggregate_parity_across_layouts () =
  let group_by = [ { Expr.rel = "t"; name = "cat" } ] in
  let aggs =
    [
      { Logical.fn = Logical.Sum; arg = Some (Expr.col "t" "amount"); label = "total" };
      { Logical.fn = Logical.Count_star; arg = None; label = "n" };
      { Logical.fn = Logical.Min; arg = Some (Expr.col "t" "price"); label = "lo" };
      { Logical.fn = Logical.Max; arg = Some (Expr.col "t" "id"); label = "hi" };
    ]
  in
  let row_tbl = mk_table Table.Row in
  let col_tbl = mk_table Table.Columnar in
  let a = Relop.aggregate ~name:"g" ~group_by ~aggs row_tbl in
  let b = Relop.aggregate ~name:"g" ~group_by ~aggs col_tbl in
  Alcotest.(check string) "agg digest" (Table.digest a) (Table.digest b);
  (* group order is first-appearance under both layouts (NaN-safe) *)
  check_cells "row order identical" (Table.to_rows a) (Table.to_rows b);
  (* the pooled per-chunk merge path over columnar chunks *)
  Pool.with_pool ~domains:2 (fun pool ->
      let c = Relop.aggregate ~pool ~name:"g" ~group_by ~aggs col_tbl in
      Alcotest.(check string) "pooled agg digest" (Table.digest a) (Table.digest c));
  (* an arithmetic agg argument takes the row path under both layouts *)
  let arith_aggs =
    [
      {
        Logical.fn = Logical.Sum;
        arg = Some (Expr.Arith (Expr.Mul, Expr.col "t" "amount", Expr.vint 2));
        label = "twice";
      };
    ]
  in
  Alcotest.(check string)
    "arith agg digest"
    (Table.digest (Relop.aggregate ~name:"g" ~group_by ~aggs:arith_aggs row_tbl))
    (Table.digest (Relop.aggregate ~name:"g" ~group_by ~aggs:arith_aggs col_tbl))

let test_analyze_parity_across_layouts () =
  (* no NaNs here: stats records are compared structurally *)
  let n = 3000 in
  let schema =
    Schema.make "s" [ ("k", Value.TInt); ("v", Value.TFloat); ("s", Value.TStr) ]
  in
  let rows =
    Array.init n (fun i ->
        let h = (i * 48271) mod 65537 in
        [|
          (if h mod 13 = 0 then Value.Null else Value.Int (h mod 200));
          Value.Float (float_of_int (h mod 1000) /. 16.0);
          Value.Str ("s" ^ string_of_int (h mod 50));
        |])
  in
  let build layout =
    with_layout layout (fun () ->
        Table.create ~chunk_rows:256 ~name:"s" ~schema rows)
  in
  let check ~sample =
    let a = Analyze.of_table ~sample (build Table.Row) in
    let b = Analyze.of_table ~sample (build Table.Columnar) in
    Alcotest.(check int) "n_rows" (Table_stats.n_rows a) (Table_stats.n_rows b);
    List.iter2
      (fun ((ca : Schema.column), sa) ((_ : Schema.column), sb) ->
        if compare sa sb <> 0 then
          Alcotest.failf "column %s stats differ across layouts (sample %d)"
            ca.Schema.name sample)
      (Table_stats.columns a) (Table_stats.columns b)
  in
  (* full-table pass and the strided per-chunk sample *)
  check ~sample:(2 * n);
  check ~sample:500

let suite =
  [
    Alcotest.test_case "of_rows/to_rows exact round-trip" `Quick test_of_rows_roundtrip;
    Alcotest.test_case "chunk file round-trips columnar frames" `Quick
      test_chunk_file_columnar_roundtrip;
    Alcotest.test_case "frame size from serialized form (dict-heavy)" `Quick
      test_frame_sizing_dict_heavy;
    Alcotest.test_case "selection-vector kernels" `Quick test_selvec_kernels;
    Alcotest.test_case "float kernel semantics (NaN, -0.0)" `Quick
      test_selvec_float_semantics;
    Alcotest.test_case "null kernels, take, project" `Quick test_selvec_nulls_and_take;
    Alcotest.test_case "filter parity across layouts" `Quick
      test_filter_parity_across_layouts;
    Alcotest.test_case "project parity across layouts" `Quick
      test_project_parity_across_layouts;
    Alcotest.test_case "aggregate parity across layouts" `Quick
      test_aggregate_parity_across_layouts;
    Alcotest.test_case "ANALYZE parity across layouts" `Quick
      test_analyze_parity_across_layouts;
  ]
