(* The always-on serving flight recorder: lock-striped ring behaviour
   under concurrent writers, overwrite-oldest retention, tail-sampling
   policy, journal capture without an attached tracer, byte-stable
   snapshot rendering, and the Prometheus exposition. *)

module Telemetry = Qs_obs.Telemetry
module Flight = Qs_obs.Flight
module Metrics = Qs_obs.Metrics
module Span = Qs_util.Span
module Pool = Qs_util.Pool
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit
module Server = Qs_serve.Server
module Fuzz = Qs_workload.Fuzz

(* admit a flight on a telemetry instance and immediately complete it;
   ids encode the writer so torn records are detectable *)
let fly t ~id ~session ?(status = Flight.Completed) ?(queue_wait = 0.0)
    ?(exec_time = 0.0) () =
  let fl =
    Option.get
      (Telemetry.admit t ~id ~session
         ~statement:("q" ^ string_of_int id)
         ~strategy:"s" ~cache_hit:false ~est_cost:1.0 ())
  in
  Telemetry.dispatch t fl;
  Telemetry.complete t fl ~status ~row_count:id ~queue_wait ~exec_time
    ~faults:0 ~bypasses:0

(* --- concurrent writers vs. a snapshotting reader --------------------- *)

let check_snapshot_consistent (s : Telemetry.snapshot) ~capacity =
  if List.length s.Telemetry.s_recent > capacity then
    Alcotest.failf "ring holds %d records over capacity %d"
      (List.length s.Telemetry.s_recent)
      capacity;
  let last_seq = ref (-1) in
  List.iter
    (fun (r : Flight.record) ->
      if r.Flight.r_seq <= !last_seq then
        Alcotest.failf "ring out of order: seq %d after %d" r.Flight.r_seq
          !last_seq;
      last_seq := r.Flight.r_seq;
      (* a torn record would mix one flight's id with another's fields *)
      Alcotest.(check string)
        "statement matches id"
        ("q" ^ string_of_int r.Flight.r_id)
        r.Flight.r_statement;
      Alcotest.(check string)
        "session matches id"
        ("w" ^ string_of_int (r.Flight.r_id / 10_000))
        r.Flight.r_session;
      Alcotest.(check int) "row_count matches id" r.Flight.r_id
        r.Flight.r_row_count)
    s.Telemetry.s_recent

let test_ring_concurrent_writers () =
  let writers = 4 and per_writer = 200 in
  let config =
    { Telemetry.default_config with Telemetry.capacity = 64; stripes = 8 }
  in
  let t = Telemetry.create ~config () in
  let capacity = Telemetry.capacity t in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per_writer - 1 do
              ignore (fly t ~id:((w * 10_000) + i) ~session:("w" ^ string_of_int w) ())
            done))
  in
  (* read while they write: every snapshot must be internally consistent *)
  for _ = 1 to 50 do
    check_snapshot_consistent (Telemetry.snapshot t) ~capacity
  done;
  List.iter Domain.join domains;
  let s = Telemetry.snapshot t in
  check_snapshot_consistent s ~capacity;
  let total = writers * per_writer in
  Alcotest.(check int) "all completions counted" total s.Telemetry.s_completed;
  Alcotest.(check int) "flights counter" total
    (List.assoc "flights" s.Telemetry.s_counters);
  (* overwrite-oldest: exactly the globally most recent [capacity] seqs *)
  Alcotest.(check int) "ring full" capacity
    (List.length s.Telemetry.s_recent);
  let seqs =
    List.map (fun (r : Flight.record) -> r.Flight.r_seq) s.Telemetry.s_recent
  in
  Alcotest.(check (list int))
    "ring holds the most recent completions"
    (List.init capacity (fun i -> total - capacity + i))
    seqs

let test_overwrite_oldest_single_writer () =
  let config =
    { Telemetry.default_config with Telemetry.capacity = 8; stripes = 2 }
  in
  let t = Telemetry.create ~config () in
  for i = 0 to 19 do
    ignore (fly t ~id:i ~session:"w0" ())
  done;
  let s = Telemetry.snapshot t in
  Alcotest.(check int) "completed" 20 s.Telemetry.s_completed;
  Alcotest.(check (list int))
    "last 8 in completion order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (r : Flight.record) -> r.Flight.r_seq) s.Telemetry.s_recent)

let test_disabled_records_nothing () =
  let t = Telemetry.create ~config:Telemetry.disabled () in
  (match
     Telemetry.admit t ~id:0 ~session:"s" ~statement:"q" ~strategy:"s"
       ~cache_hit:false ~est_cost:1.0 ()
   with
  | None -> ()
  | Some _ -> Alcotest.fail "disabled telemetry admitted a flight");
  let s = Telemetry.snapshot t in
  Alcotest.(check int) "nothing admitted" 0 s.Telemetry.s_admitted;
  Alcotest.(check int) "nothing retained" 0
    (List.length s.Telemetry.s_recent)

(* --- tail sampling ----------------------------------------------------- *)

let test_tail_sampling () =
  (* errors are always sampled, whatever the histogram state *)
  let config =
    { Telemetry.default_config with Telemetry.min_samples = 1_000_000 }
  in
  let t = Telemetry.create ~config () in
  let r1 = fly t ~id:0 ~session:"w0" ~status:Flight.Deadline_exceeded () in
  let r2 = fly t ~id:1 ~session:"w0" ~status:(Flight.Failed "boom") () in
  let r3 = fly t ~id:2 ~session:"w0" ~exec_time:100.0 () in
  Alcotest.(check bool) "deadline sampled" true r1.Flight.r_sampled;
  Alcotest.(check bool) "failure sampled" true r2.Flight.r_sampled;
  Alcotest.(check bool)
    "success below min_samples never sampled" false r3.Flight.r_sampled;
  (* with the histogram primed, only slow successes keep their trees *)
  let config =
    {
      Telemetry.default_config with
      Telemetry.min_samples = 1;
      slow_quantile = 0.5;
    }
  in
  let t = Telemetry.create ~config () in
  let first = fly t ~id:0 ~session:"w0" ~exec_time:0.010 () in
  Alcotest.(check bool)
    "first success: empty histogram, not sampled" false first.Flight.r_sampled;
  let slow = fly t ~id:1 ~session:"w0" ~exec_time:5.0 () in
  Alcotest.(check bool) "slow success sampled" true slow.Flight.r_sampled;
  let fast = fly t ~id:2 ~session:"w0" ~exec_time:0.0001 () in
  Alcotest.(check bool) "fast success dropped" false fast.Flight.r_sampled;
  let s = Telemetry.snapshot t in
  Alcotest.(check int) "sampled counter" 1
    (List.assoc "sampled" s.Telemetry.s_counters)

(* a sampled flight retains the spans its own tracer recorded; an
   unsampled one keeps only the rollup *)
let test_sampled_flights_keep_span_trees () =
  let t = Telemetry.create () in
  let run ~status =
    let fl =
      Option.get
        (Telemetry.admit t ~id:0 ~session:"s" ~statement:"q" ~strategy:"s"
           ~cache_hit:false ~est_cost:1.0 ())
    in
    Telemetry.dispatch t fl;
    let t0 = Qs_util.Timer.now () in
    Span.add (Flight.spans fl) Span.Execute "probe" ~start:t0 ~dur:0.001;
    Telemetry.complete t fl ~status ~row_count:0 ~queue_wait:0.0
      ~exec_time:0.0 ~faults:0 ~bypasses:0
  in
  let err = run ~status:(Flight.Failed "x") in
  Alcotest.(check int) "error keeps full tree" 1
    (List.length err.Flight.r_spans);
  Alcotest.(check bool)
    "rollup survives either way" true
    (List.exists
       (fun (cat, n, _) -> cat = "execute" && n = 1)
       err.Flight.r_phases);
  let ok = run ~status:Flight.Completed in
  Alcotest.(check bool) "fresh-histogram success drops tree" true
    (ok.Flight.r_spans = [] && not ok.Flight.r_sampled);
  Alcotest.(check bool)
    "dropped tree still has the rollup" true
    (List.exists (fun (cat, n, _) -> cat = "execute" && n = 1) ok.Flight.r_phases)

(* --- journal capture without an attached tracer ------------------------ *)

let test_journal_without_tracer () =
  let cat = Fixtures.shop_catalog () in
  let registry = Stats_registry.create cat in
  let fl =
    Flight.create ~tracer:true ~id:7 ~session:"s" ~statement:"shopq"
      ~strategy:"querysplit" ~cache_hit:false ~est_cost:1.0
      ~submitted:(Qs_util.Timer.now ()) ()
  in
  let ctx =
    Strategy.make_ctx ?spans:(Flight.spans fl) ~flight:fl registry
      Estimator.default
  in
  let q = Fixtures.shop_query () in
  let outcome = (Querysplit.strategy Querysplit.default_config).Strategy.run ctx q in
  let steps = Flight.journal fl in
  Alcotest.(check int) "one journal entry per strategy iteration"
    (List.length outcome.Strategy.iterations)
    (List.length steps);
  Alcotest.(check bool) "querysplit iterates" true (steps <> []);
  List.iter
    (fun (s : Flight.step) ->
      Alcotest.(check bool) "journal entries carry a score" true
        (Option.is_some s.Flight.score);
      Alcotest.(check bool) "actual rows are observed" true
        (s.Flight.actual_rows >= 0))
    steps;
  (* the remaining-subquery count is non-increasing along the journal *)
  ignore
    (List.fold_left
       (fun prev (s : Flight.step) ->
         if s.Flight.remaining > prev then
           Alcotest.failf "remaining grew from %d to %d" prev
             s.Flight.remaining;
         s.Flight.remaining)
       max_int steps);
  (* the flight's own tracer saw the same steps as Reopt_step spans *)
  let reopt =
    List.filter
      (fun (sp : Span.span) -> sp.Span.cat = Span.Reopt_step)
      (Span.spans (Option.get (Flight.spans fl)))
  in
  Alcotest.(check int) "journal and span trace agree"
    (List.length steps) (List.length reopt)

(* --- deterministic rendering over the serving path --------------------- *)

let serve_batch () =
  let cat = Fixtures.shop_catalog ~n_orders:600 () in
  let registry = Stats_registry.create cat in
  let queries = Fuzz.queries cat ~seed:424 ~n:6 () in
  Pool.with_pool ~domains:1 (fun pool ->
      let config =
        { Server.default_config with Server.concurrency = 1 }
      in
      let server =
        Server.create ~config
          ~strategy:(Querysplit.strategy Querysplit.default_config)
          ~pool registry Estimator.default
      in
      let tickets =
        List.map (fun q -> Server.submit server ~session:"s" q) queries
      in
      List.iter (fun tk -> ignore (Server.await server tk)) tickets;
      Server.drain server;
      Server.telemetry_snapshot server)

let test_snapshot_render_deterministic () =
  let a = serve_batch () and b = serve_batch () in
  let ra = Telemetry.render ~timings:false a
  and rb = Telemetry.render ~timings:false b in
  Alcotest.(check string) "timing-free dashboards are byte-identical" ra rb;
  (* the deterministic view still carries the interesting payload *)
  Alcotest.(check int) "all six flights retained" 6
    (List.length a.Telemetry.s_recent);
  Alcotest.(check bool) "some flight journaled a re-opt step" true
    (List.exists
       (fun (r : Flight.record) -> r.Flight.r_journal <> [])
       a.Telemetry.s_recent);
  Alcotest.(check bool) "journal lines render" true
    (Str_helpers.contains ra "est=")

(* --- prometheus exposition --------------------------------------------- *)

let test_prometheus_exposition () =
  let t = Telemetry.create () in
  ignore (fly t ~id:0 ~session:"w0" ());
  ignore (fly t ~id:1 ~session:"w0" ~status:(Flight.Failed "x") ());
  let text = Telemetry.to_prometheus t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true
        (Str_helpers.contains text needle))
    [
      "qs_flights_admitted_total 2";
      "qs_flights_total{status=\"completed\"} 1";
      "qs_flights_total{status=\"failed\"} 1";
      "qs_latency_seconds_count{status=\"completed\"} 1";
      "qs_in_flight 0";
    ]

let test_metrics_bridge () =
  let t = Telemetry.create () in
  for i = 0 to 4 do
    ignore (fly t ~id:i ~session:"w0" ())
  done;
  let m = Telemetry.metrics t in
  Alcotest.(check int) "admitted" 5 (Metrics.counter m "admitted");
  Alcotest.(check int) "completed" 5 (Metrics.counter m "completed")

let suite =
  [
    Alcotest.test_case "ring survives 4 concurrent writer domains" `Quick
      test_ring_concurrent_writers;
    Alcotest.test_case "ring overwrites oldest in completion order" `Quick
      test_overwrite_oldest_single_writer;
    Alcotest.test_case "disabled telemetry records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "tail sampling: errors always, successes by quantile"
      `Quick test_tail_sampling;
    Alcotest.test_case "sampled flights keep span trees" `Quick
      test_sampled_flights_keep_span_trees;
    Alcotest.test_case "journal captured without a tracer" `Quick
      test_journal_without_tracer;
    Alcotest.test_case "snapshot render is deterministic" `Quick
      test_snapshot_render_deterministic;
    Alcotest.test_case "prometheus exposition" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "metrics bridge" `Quick test_metrics_bridge;
  ]
