(* Differential executor testing: seeded random SPJ queries (Fuzz) run
   through the naive reference executor, the optimized executor and every
   re-optimization strategy must produce identical result multisets.

   The query corpus is deterministic (fixed seeds), so a failure here is
   reproducible by name (fuzz_<i>). *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Executor = Qs_exec.Executor
module Naive = Qs_exec.Naive
module Strategy = Qs_core.Strategy
module Fuzz = Qs_workload.Fuzz

(* result sets above this are skipped: an explosive cross-FK join tells us
   nothing new about plan equivalence and only burns test time *)
let max_result_rows = 60_000

let check_query ctx (q : Query.t) =
  let frag = Strategy.fragment_of_query ctx q in
  (* the weighted count is cheap: skip explosive queries before anything
     materializes their result *)
  if Naive.count frag <= max_result_rows then begin
    let expected = Naive.rows frag in
    (* the optimized executor on the DP plan... *)
    let cat = Strategy.catalog ctx in
    let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
    let table, stats = Executor.run plan in
    let got = Executor.project ~name:q.Query.name table q.Query.output in
    if not (Fixtures.tables_equal expected got) then
      Alcotest.failf "%s: optimized executor diverges from naive (%d vs %d rows)"
        q.Query.name (Table.n_rows expected) (Table.n_rows got);
    (* ... with complete per-node stats ... *)
    List.iter
      (fun (n : Qs_plan.Physical.t) ->
        if not (Hashtbl.mem stats n.Qs_plan.Physical.id) then
          Alcotest.failf "%s: node %d missing from executor stats" q.Query.name
            n.Qs_plan.Physical.id)
      (Qs_plan.Physical.nodes plan);
    (* ... and every strategy agrees *)
    List.iter
      (fun (s : Strategy.t) ->
        let r = (s.Strategy.run ctx q).Strategy.result in
        if not (Fixtures.tables_equal expected r) then
          Alcotest.failf "%s: strategy %s diverges from naive" q.Query.name
            s.Strategy.name)
      Test_strategies.all_strategies
  end

let test_shop_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:180 () in
  List.iter (check_query ctx) queries

let test_cinema_corpus () =
  let cat = Lazy.force Fixtures.cinema in
  let registry = Qs_stats.Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Estimator.default in
  let queries = Fuzz.queries cat ~seed:42 ~max_rels:3 ~n:20 () in
  List.iter (check_query ctx) queries

(* generator sanity: the corpus is deterministic and structurally valid *)
let test_fuzz_deterministic () =
  let cat = Fixtures.shop_catalog ~n_orders:100 () in
  let a = Fuzz.queries cat ~seed:9 ~n:25 () in
  let b = Fuzz.queries cat ~seed:9 ~n:25 () in
  List.iter2
    (fun qa qb ->
      Alcotest.(check string) "same SQL" (Query.to_sql qa) (Query.to_sql qb))
    a b;
  List.iter
    (fun q ->
      match Query.validate cat q with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" q.Query.name m)
    a

let test_fuzz_varies () =
  let cat = Fixtures.shop_catalog ~n_orders:100 () in
  let qs = Fuzz.queries cat ~seed:5 ~n:40 () in
  let distinct =
    List.sort_uniq compare (List.map Query.to_sql qs) |> List.length
  in
  Alcotest.(check bool) "corpus is not degenerate" true (distinct > 20)

let suite =
  [
    Alcotest.test_case "fuzz corpus deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "fuzz corpus varies" `Quick test_fuzz_varies;
    Alcotest.test_case "shop corpus: naive = executor = strategies" `Slow
      test_shop_corpus;
    Alcotest.test_case "cinema corpus: naive = executor = strategies" `Slow
      test_cinema_corpus;
  ]
