(* Differential executor testing: seeded random SPJ queries (Fuzz) run
   through the naive reference executor, the optimized executor and every
   re-optimization strategy must produce identical result multisets.

   The query corpus is deterministic (fixed seeds), so a failure here is
   reproducible by name (fuzz_<i>). *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Executor = Qs_exec.Executor
module Naive = Qs_exec.Naive
module Strategy = Qs_core.Strategy
module Fuzz = Qs_workload.Fuzz

(* result sets above this are skipped: an explosive cross-FK join tells us
   nothing new about plan equivalence and only burns test time *)
let max_result_rows = 60_000

let check_query ctx (q : Query.t) =
  let frag = Strategy.fragment_of_query ctx q in
  (* the weighted count is cheap: skip explosive queries before anything
     materializes their result *)
  if Naive.count frag <= max_result_rows then begin
    let expected = Naive.rows frag in
    (* the optimized executor on the DP plan... *)
    let cat = Strategy.catalog ctx in
    let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
    let table, stats = Executor.run plan in
    let got = Executor.project ~name:q.Query.name table q.Query.output in
    if not (Fixtures.tables_equal expected got) then
      Alcotest.failf "%s: optimized executor diverges from naive (%d vs %d rows)"
        q.Query.name (Table.n_rows expected) (Table.n_rows got);
    (* ... with complete per-node stats ... *)
    List.iter
      (fun (n : Qs_plan.Physical.t) ->
        if not (Hashtbl.mem stats n.Qs_plan.Physical.id) then
          Alcotest.failf "%s: node %d missing from executor stats" q.Query.name
            n.Qs_plan.Physical.id)
      (Qs_plan.Physical.nodes plan);
    (* ... and every strategy agrees *)
    List.iter
      (fun (s : Strategy.t) ->
        let r = (s.Strategy.run ctx q).Strategy.result in
        if not (Fixtures.tables_equal expected r) then
          Alcotest.failf "%s: strategy %s diverges from naive" q.Query.name
            s.Strategy.name)
      Test_strategies.all_strategies
  end

let test_shop_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:180 () in
  List.iter (check_query ctx) queries

let test_cinema_corpus () =
  let cat = Lazy.force Fixtures.cinema in
  let registry = Qs_stats.Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Estimator.default in
  let queries = Fuzz.queries cat ~seed:42 ~max_rels:3 ~n:20 () in
  List.iter (check_query ctx) queries

(* generator sanity: the corpus is deterministic and structurally valid *)
let test_fuzz_deterministic () =
  let cat = Fixtures.shop_catalog ~n_orders:100 () in
  let a = Fuzz.queries cat ~seed:9 ~n:25 () in
  let b = Fuzz.queries cat ~seed:9 ~n:25 () in
  List.iter2
    (fun qa qb ->
      Alcotest.(check string) "same SQL" (Query.to_sql qa) (Query.to_sql qb))
    a b;
  List.iter
    (fun q ->
      match Query.validate cat q with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" q.Query.name m)
    a

let test_fuzz_varies () =
  let cat = Fixtures.shop_catalog ~n_orders:100 () in
  let qs = Fuzz.queries cat ~seed:5 ~n:40 () in
  let distinct =
    List.sort_uniq compare (List.map Query.to_sql qs) |> List.length
  in
  Alcotest.(check bool) "corpus is not degenerate" true (distinct > 20)

(* --- parallel execution paths ----------------------------------------- *)

module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Metrics = Qs_obs.Metrics
module Pool = Qs_util.Pool

let counters_equal label a b =
  Alcotest.(check (list string)) (label ^ ": counter names") (Metrics.counter_names a)
    (Metrics.counter_names b);
  List.iter
    (fun name ->
      Alcotest.(check int) (label ^ ": counter " ^ name) (Metrics.counter a name)
        (Metrics.counter b name))
    (Metrics.counter_names a)

(* 200 seeded queries through the harness at increasing domain counts:
   result digests and all metric counters must be independent of the
   fan-out (a fresh env per run keeps stats/oracle caches comparable). *)
let test_parallel_harness_corpus () =
  let cat = Fixtures.shop_catalog ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  let run domains =
    Runner.run_spj ~timeout:60.0 ~domains (Runner.make_env ~seed:7 cat) Algos.default
      queries
  in
  let seq = run 1 in
  let seq_metrics = Runner.metrics_of_results seq in
  List.iter
    (fun domains ->
      let par = run domains in
      Alcotest.(check int) "one result per query" (List.length seq) (List.length par);
      List.iter2
        (fun (a : Runner.qresult) (b : Runner.qresult) ->
          Alcotest.(check string) "query order" a.Runner.query b.Runner.query;
          if a.Runner.digest <> b.Runner.digest then
            Alcotest.failf "%s: digest differs at domains=%d" a.Runner.query domains;
          Alcotest.(check bool) "timeout status" a.Runner.timed_out b.Runner.timed_out;
          Alcotest.(check int) "materializations" a.Runner.mats b.Runner.mats)
        seq par;
      (* aggregate counters match the sequential run... *)
      counters_equal
        (Printf.sprintf "domains=%d" domains)
        seq_metrics
        (Runner.metrics_of_results par);
      (* ...and merging per-chunk registries (as the harness does with
         per-domain registries) reproduces the whole *)
      let n_chunks = 4 in
      let chunks = Array.make n_chunks [] in
      List.iteri (fun i r -> chunks.(i mod n_chunks) <- r :: chunks.(i mod n_chunks)) par;
      let merged = Metrics.create () in
      Array.iter
        (fun chunk -> Metrics.merge ~into:merged (Runner.metrics_of_results chunk))
        chunks;
      counters_equal (Printf.sprintf "domains=%d merged chunks" domains) seq_metrics merged;
      match
        (Metrics.histogram seq_metrics "qerror", Metrics.histogram merged "qerror")
      with
      | Some hs, Some hm ->
          Alcotest.(check int) "merged qerror count" (Qs_obs.Histogram.count hs)
            (Qs_obs.Histogram.count hm)
      | None, None -> ()
      | _ -> Alcotest.fail "qerror histogram present in only one run")
    [ 2; 4 ]

(* the partitioned parallel hash join must be plan-for-plan identical to
   the sequential hash join across the whole fuzz corpus *)
let test_parallel_join_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (q : Query.t) ->
          let frag = Strategy.fragment_of_query ctx q in
          if Naive.count frag <= max_result_rows then begin
            let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
            let seq, _ = Executor.run plan in
            let par, _ = Executor.run ~pool plan in
            if not (Fixtures.tables_equal seq par) then
              Alcotest.failf "%s: partitioned join diverges (%d vs %d rows)"
                q.Query.name (Table.n_rows seq) (Table.n_rows par)
          end)
        queries)

(* --- the two execution engines ----------------------------------------- *)

(* The morsel-driven pipelined engine against the materializing
   reference over the whole corpus: identical result multisets and
   identical per-node cardinalities, sequential and with a
   partitioned-parallel pool. *)
let test_engine_parity_corpus () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (q : Query.t) ->
          let frag = Strategy.fragment_of_query ctx q in
          if Naive.count frag <= max_result_rows then begin
            let plan =
              (Optimizer.optimize cat Estimator.default frag).Optimizer.plan
            in
            let mat, mstats = Executor.run ~mode:Executor.Materialize plan in
            let pipe, pstats = Executor.run ~mode:Executor.Pipeline plan in
            if not (Fixtures.tables_equal mat pipe) then
              Alcotest.failf "%s: pipelined engine diverges (%d vs %d rows)"
                q.Query.name (Table.n_rows mat) (Table.n_rows pipe);
            let par, _ = Executor.run ~mode:Executor.Pipeline ~pool plan in
            if not (Fixtures.tables_equal mat par) then
              Alcotest.failf "%s: parallel pipelined engine diverges (%d vs %d rows)"
                q.Query.name (Table.n_rows mat) (Table.n_rows par);
            Hashtbl.iter
              (fun id rows ->
                Alcotest.(check int)
                  (Printf.sprintf "%s: node %d cardinality" q.Query.name id)
                  rows
                  (Option.value (Hashtbl.find_opt pstats id) ~default:(-1)))
              mstats
          end)
        queries)

(* ?row_limit semantics on the pipelined path, with limit AND a parallel
   partitioned join AND spilled tables at once: any join producing more
   than [limit] rows must trip {!Executor.Timeout} in both engines, a
   limit no operator reaches must trip in neither, and the surviving
   runs must agree — with every pin released on the Timeout unwinds. *)
let test_limit_parallel_spill () =
  let saved = Table.default_chunk_rows () in
  Table.set_default_chunk_rows 32;
  Fun.protect
    ~finally:(fun () -> Table.set_default_chunk_rows saved)
    (fun () ->
      let dir = Filename.temp_file "qs_limit" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o700;
      let bp = Qs_storage.Buffer_pool.create ~capacity:4 () in
      let saved_spill = Table.spill_config () in
      Table.set_spill (Some (dir, bp));
      Fun.protect
        ~finally:(fun () ->
          Table.set_spill saved_spill;
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            (Sys.readdir dir);
          (try Sys.rmdir dir with Sys_error _ -> ()))
        (fun () ->
          let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
          let queries = Fuzz.queries cat ~seed:7 ~n:40 () in
          let tripped = ref 0 in
          Pool.with_pool ~domains:4 (fun pool ->
              List.iter
                (fun (q : Query.t) ->
                  let frag = Strategy.fragment_of_query ctx q in
                  if Naive.count frag <= max_result_rows then begin
                    let plan =
                      (Optimizer.optimize cat Estimator.default frag).Optimizer.plan
                    in
                    let mat, stats =
                      Executor.run ~mode:Executor.Materialize plan
                    in
                    (* an explicit limit far above any operator output:
                       the pipelined parallel run over spilled tables
                       must not trip it *)
                    let relaxed, _ =
                      Executor.run ~mode:Executor.Pipeline ~pool
                        ~row_limit:Executor.default_row_limit plan
                    in
                    if not (Fixtures.tables_equal mat relaxed) then
                      Alcotest.failf "%s: pipelined diverges under a slack limit"
                        q.Query.name;
                    (* a limit strictly below some join's output: more
                       than [limit] rows survive that join in any
                       evaluation order, so both engines must raise *)
                    let join_max =
                      List.fold_left
                        (fun m (n : Qs_plan.Physical.t) ->
                          match n.Qs_plan.Physical.node with
                          | Qs_plan.Physical.Join _ ->
                              max m (Hashtbl.find stats n.Qs_plan.Physical.id)
                          | Qs_plan.Physical.Scan _ -> m)
                        0
                        (Qs_plan.Physical.nodes plan)
                    in
                    if join_max > 1 then begin
                      incr tripped;
                      let expect_timeout label mode =
                        match
                          Executor.run ~mode ~pool ~row_limit:(join_max - 1) plan
                        with
                        | _ -> Alcotest.failf "%s: %s ignored the limit" q.Query.name label
                        | exception Executor.Timeout -> ()
                      in
                      expect_timeout "materializing" Executor.Materialize;
                      expect_timeout "pipelined" Executor.Pipeline;
                      Alcotest.(check int)
                        (q.Query.name ^ ": no pins leaked by limit unwind")
                        0
                        (Qs_storage.Buffer_pool.pinned bp)
                    end
                  end)
                queries);
          Alcotest.(check bool) "some queries exercised the tight limit" true
            (!tripped > 5)))

(* Tracing must be observation-only: running the corpus with a span
   tracer (and an execution trace) attached yields result digests
   byte-identical to the untraced run, for both the plain executor and
   the full QuerySplit loop. *)
let test_traced_corpus_observation_only () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let tracer = Qs_util.Span.create () in
  let _, ctx_traced = Fixtures.shop_ctx ~n_orders:400 ~spans:tracer () in
  let qs = Qs_core.Querysplit.strategy Qs_core.Querysplit.default_config in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  List.iter
    (fun (q : Query.t) ->
      let frag = Strategy.fragment_of_query ctx q in
      if Naive.count frag <= max_result_rows then begin
        let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
        let plain, _ = Executor.run plan in
        let trace = Qs_obs.Trace.create () in
        let traced, _ = Executor.run ~trace ~spans:tracer plan in
        if Runner.result_digest plain <> Runner.result_digest traced then
          Alcotest.failf "%s: executor digest changes under tracing" q.Query.name;
        let a = (qs.Strategy.run ctx q).Strategy.result in
        let b = (qs.Strategy.run ctx_traced q).Strategy.result in
        if Runner.result_digest a <> Runner.result_digest b then
          Alcotest.failf "%s: querysplit digest changes under tracing" q.Query.name
      end)
    queries;
  Alcotest.(check bool) "the tracer actually observed the runs" true
    (Qs_util.Span.count tracer > 0)

(* --- sharded storage --------------------------------------------------- *)

module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Expr = Qs_query.Expr
module Relop = Qs_exec.Relop
module Logical = Qs_plan.Logical

(* Chunked parallel scan/filter/aggregate must be *row-for-row* identical
   to the flat sequential path, for every chunk size x domain count.
   Aggregation columns are integers, so per-chunk partial sums are exact
   and even the merged aggregates must match bit-for-bit. *)
let test_chunked_scan_property () =
  let n = 200 in
  let schema =
    Schema.make "f" [ ("id", Value.TInt); ("grp", Value.TInt); ("amount", Value.TInt) ]
  in
  let rows =
    Array.init n (fun i ->
        let h = i * 131 mod 1009 in
        [| Value.Int i; Value.Int (h mod 7); Value.Int (h mod 100) |])
  in
  let filters = [ Expr.Cmp (Expr.Lt, Expr.col "f" "amount", Expr.vint 50) ] in
  let group_by = [ { Expr.rel = "f"; name = "grp" } ] in
  let aggs =
    [
      { Logical.fn = Logical.Sum; arg = Some (Expr.col "f" "amount"); label = "total" };
      { Logical.fn = Logical.Count_star; arg = None; label = "n" };
      { Logical.fn = Logical.Max; arg = Some (Expr.col "f" "id"); label = "top" };
    ]
  in
  let flat = Table.create ~chunk_rows:n ~name:"f" ~schema rows in
  let base_filtered = Executor.filter_table flat filters in
  let base_agg = Relop.aggregate ~name:"g" ~group_by ~aggs flat in
  List.iter
    (fun chunk_rows ->
      let tbl = Table.create ~chunk_rows ~name:"f" ~schema rows in
      List.iter
        (fun domains ->
          let label what =
            Printf.sprintf "%s (chunk_rows=%d domains=%d)" what chunk_rows domains
          in
          Pool.with_pool ~domains (fun pool ->
              let filtered = Executor.filter_table ~pool tbl filters in
              Alcotest.(check bool) (label "filter row-identical") true
                (Table.to_rows base_filtered = Table.to_rows filtered);
              let agged = Relop.aggregate ~pool ~name:"g" ~group_by ~aggs tbl in
              Alcotest.(check bool) (label "aggregate row-identical") true
                (Table.to_rows base_agg = Table.to_rows agged)))
        [ 1; 2; 4 ])
    [ 1; 7; 64; n ]

(* the full differential corpus with the catalog sharded into small chunks:
   optimized plans over chunked tables (with a pool) must equal the flat
   sequential results *)
let test_chunked_corpus () =
  let saved = Table.default_chunk_rows () in
  Fun.protect
    ~finally:(fun () -> Table.set_default_chunk_rows saved)
    (fun () ->
      let cat_flat, ctx_flat = Fixtures.shop_ctx ~n_orders:400 () in
      Table.set_default_chunk_rows 64;
      let _, ctx_chunked = Fixtures.shop_ctx ~n_orders:400 () in
      let queries = Fuzz.queries cat_flat ~seed:20230617 ~n:200 () in
      Pool.with_pool ~domains:4 (fun pool ->
          List.iter
            (fun (q : Query.t) ->
              let frag = Strategy.fragment_of_query ctx_flat q in
              if Naive.count frag <= max_result_rows then begin
                let plan =
                  (Optimizer.optimize cat_flat Estimator.default frag).Optimizer.plan
                in
                let seq, _ = Executor.run plan in
                let frag_c = Strategy.fragment_of_query ctx_chunked q in
                let plan_c =
                  (Optimizer.optimize (Strategy.catalog ctx_chunked) Estimator.default
                     frag_c)
                    .Optimizer.plan
                in
                let par, _ = Executor.run ~pool plan_c in
                if not (Fixtures.tables_equal seq par) then
                  Alcotest.failf "%s: chunked parallel scan diverges (%d vs %d rows)"
                    q.Query.name (Table.n_rows seq) (Table.n_rows par)
              end)
            queries))

let suite =
  [
    Alcotest.test_case "fuzz corpus deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "fuzz corpus varies" `Quick test_fuzz_varies;
    Alcotest.test_case "shop corpus: naive = executor = strategies" `Slow
      test_shop_corpus;
    Alcotest.test_case "cinema corpus: naive = executor = strategies" `Slow
      test_cinema_corpus;
    Alcotest.test_case "parallel harness: digests + counters invariant" `Slow
      test_parallel_harness_corpus;
    Alcotest.test_case "parallel hash join over fuzz corpus" `Slow
      test_parallel_join_corpus;
    Alcotest.test_case "engine parity: pipelined = materializing" `Slow
      test_engine_parity_corpus;
    Alcotest.test_case "row limit: limit x parallel join x spill" `Slow
      test_limit_parallel_spill;
    Alcotest.test_case "traced corpus digests = untraced" `Slow
      test_traced_corpus_observation_only;
    Alcotest.test_case "chunked scan row-identical across chunk sizes x domains"
      `Quick test_chunked_scan_property;
    Alcotest.test_case "chunked parallel corpus = flat sequential" `Slow
      test_chunked_corpus;
  ]
