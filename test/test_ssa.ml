(* The Φ rankings (§4.2, Table 2). *)

module Ssa = Qs_core.Ssa

let test_phi1_ignores_size () =
  Alcotest.(check (float 1e-9)) "phi1 = C" 7.0 (Ssa.phi Ssa.Phi1 ~cost:7.0 ~size:1e9)

let test_phi5_ignores_cost () =
  Alcotest.(check (float 1e-9)) "phi5 = S" 42.0 (Ssa.phi Ssa.Phi5 ~cost:1e9 ~size:42.0)

let test_phi4_product () =
  Alcotest.(check (float 1e-9)) "phi4 = C*S" 50.0 (Ssa.phi Ssa.Phi4 ~cost:5.0 ~size:10.0)

let test_ascending_size_weight () =
  (* Table 2: Φ1..Φ4 weight S increasingly heavily. Doubling S must
     increase Φk strictly more (relatively) for larger k (Φ1 not at all). *)
  let cost = 10.0 in
  let ratio p = Ssa.phi p ~cost ~size:1000.0 /. Ssa.phi p ~cost ~size:10.0 in
  Alcotest.(check (float 1e-9)) "phi1 flat" 1.0 (ratio Ssa.Phi1);
  Alcotest.(check bool) "phi2 grows" true (ratio Ssa.Phi2 > 1.0);
  Alcotest.(check bool) "phi3 > phi2" true (ratio Ssa.Phi3 > ratio Ssa.Phi2);
  Alcotest.(check bool) "phi4 > phi3" true (ratio Ssa.Phi4 > ratio Ssa.Phi3)

let test_monotone_in_cost () =
  List.iter
    (fun p ->
      if p <> Ssa.Phi5 then
        Alcotest.(check bool)
          (Ssa.policy_name p ^ " monotone in cost")
          true
          (Ssa.phi p ~cost:20.0 ~size:100.0 > Ssa.phi p ~cost:10.0 ~size:100.0))
    Ssa.all_phi

let test_log_clamp () =
  (* size < 2 is clamped so log never turns the ranking negative *)
  Alcotest.(check bool) "positive at size 0" true
    (Ssa.phi Ssa.Phi2 ~cost:5.0 ~size:0.0 > 0.0);
  Alcotest.(check bool) "positive at size 1" true
    (Ssa.phi Ssa.Phi2 ~cost:5.0 ~size:1.0 > 0.0)

let test_global_deep_rejected () =
  Alcotest.(check bool) "not pointwise" true
    (try
       ignore (Ssa.phi Ssa.Global_deep ~cost:1.0 ~size:1.0);
       false
     with Invalid_argument _ -> true)

let test_names_unique () =
  let names = List.map Ssa.policy_name (Ssa.all_phi @ [ Ssa.Global_deep ]) in
  Alcotest.(check int) "6 distinct names" 6 (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "phi1 ignores size" `Quick test_phi1_ignores_size;
    Alcotest.test_case "phi5 ignores cost" `Quick test_phi5_ignores_cost;
    Alcotest.test_case "phi4 product" `Quick test_phi4_product;
    Alcotest.test_case "ascending size weight" `Quick test_ascending_size_weight;
    Alcotest.test_case "monotone in cost" `Quick test_monotone_in_cost;
    Alcotest.test_case "log clamp" `Quick test_log_clamp;
    Alcotest.test_case "global_deep rejected" `Quick test_global_deep_rejected;
    Alcotest.test_case "names unique" `Quick test_names_unique;
  ]
