(* Expression evaluation, LIKE matching, predicate utilities. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Expr = Qs_query.Expr

let schema =
  Schema.make "r" [ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ]

let row a b c = [| Value.Int a; Value.Str b; Value.Float c |]

let ev p r = Expr.eval schema r p

let test_cmp () =
  let r = row 5 "x" 1.5 in
  Alcotest.(check bool) "a = 5" true (ev (Expr.Cmp (Expr.Eq, Expr.col "r" "a", Expr.vint 5)) r);
  Alcotest.(check bool) "a < 3 false" false (ev (Expr.Cmp (Expr.Lt, Expr.col "r" "a", Expr.vint 3)) r);
  Alcotest.(check bool) "a >= 5" true (ev (Expr.Cmp (Expr.Ge, Expr.col "r" "a", Expr.vint 5)) r);
  Alcotest.(check bool) "a <> 4" true (ev (Expr.Cmp (Expr.Ne, Expr.col "r" "a", Expr.vint 4)) r)

let test_null_comparisons_false () =
  let r = [| Value.Null; Value.Str "x"; Value.Float 1.0 |] in
  List.iter
    (fun op ->
      Alcotest.(check bool) "null cmp never true" false
        (ev (Expr.Cmp (op, Expr.col "r" "a", Expr.vint 0)) r))
    [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

let test_between_in () =
  let r = row 5 "x" 1.5 in
  Alcotest.(check bool) "between inclusive lo" true
    (ev (Expr.Between (Expr.col "r" "a", Value.Int 5, Value.Int 9)) r);
  Alcotest.(check bool) "between inclusive hi" true
    (ev (Expr.Between (Expr.col "r" "a", Value.Int 1, Value.Int 5)) r);
  Alcotest.(check bool) "not between" false
    (ev (Expr.Between (Expr.col "r" "a", Value.Int 6, Value.Int 9)) r);
  Alcotest.(check bool) "in list" true
    (ev (Expr.In_list (Expr.col "r" "a", [ Value.Int 1; Value.Int 5 ])) r);
  Alcotest.(check bool) "not in list" false
    (ev (Expr.In_list (Expr.col "r" "a", [ Value.Int 1; Value.Int 2 ])) r)

let test_null_handling () =
  let r = [| Value.Null; Value.Str "x"; Value.Float 1.0 |] in
  Alcotest.(check bool) "is null" true (ev (Expr.Is_null (Expr.col "r" "a")) r);
  Alcotest.(check bool) "not null false" false (ev (Expr.Not_null (Expr.col "r" "a")) r);
  Alcotest.(check bool) "in list with null lhs" false
    (ev (Expr.In_list (Expr.col "r" "a", [ Value.Null; Value.Int 1 ])) r)

let test_or () =
  let r = row 5 "x" 1.5 in
  Alcotest.(check bool) "or short true" true
    (ev
       (Expr.Or
          [
            Expr.Cmp (Expr.Eq, Expr.col "r" "a", Expr.vint 9);
            Expr.Cmp (Expr.Eq, Expr.col "r" "b", Expr.vstr "x");
          ])
       r);
  Alcotest.(check bool) "or all false" false
    (ev (Expr.Or [ Expr.Cmp (Expr.Eq, Expr.col "r" "a", Expr.vint 9) ]) r)

let test_arith () =
  let r = row 6 "x" 1.5 in
  let a_plus_1 = Expr.Arith (Expr.Add, Expr.col "r" "a", Expr.vint 1) in
  Alcotest.(check bool) "a+1 = 7" true (ev (Expr.Cmp (Expr.Eq, a_plus_1, Expr.vint 7)) r);
  let mixed = Expr.Arith (Expr.Mul, Expr.col "r" "c", Expr.vint 2) in
  Alcotest.(check bool) "1.5*2 = 3.0" true
    (ev (Expr.Cmp (Expr.Eq, mixed, Expr.vfloat 3.0)) r);
  (* null propagation *)
  let rnull = [| Value.Null; Value.Str "x"; Value.Float 1.0 |] in
  Alcotest.(check bool) "null + 1 = null" true
    (Value.is_null (Expr.eval_scalar schema rnull a_plus_1));
  (* integer division by zero -> NULL *)
  let div0 = Expr.Arith (Expr.Div, Expr.col "r" "a", Expr.vint 0) in
  Alcotest.(check bool) "div by zero null" true
    (Value.is_null (Expr.eval_scalar schema r div0))

let test_like_cases () =
  let cases =
    [
      ("abc", "abc", true);
      ("a%", "abc", true);
      ("%c", "abc", true);
      ("%b%", "abc", true);
      ("a_c", "abc", true);
      ("a_c", "abbc", false);
      ("%", "", true);
      ("", "", true);
      ("", "a", false);
      ("a%", "b", false);
      ("%%", "anything", true);
      ("a%c%e", "abcde", true);
      ("a%c%e", "ace", true);
      ("a%c%e", "aec", false);
      ("_", "", false);
      ("_", "x", true);
    ]
  in
  List.iter
    (fun (pat, s, expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "'%s' LIKE '%s'" s pat)
        expect
        (Expr.like_match ~pattern:pat s))
    cases

(* reference LIKE matcher: brute force over possible %-expansions *)
let rec ref_like pat s =
  match pat with
  | [] -> s = []
  | '%' :: rest ->
      let rec try_suffix t = ref_like rest t || match t with [] -> false | _ :: tl -> try_suffix tl in
      try_suffix s
  | '_' :: rest -> ( match s with [] -> false | _ :: tl -> ref_like rest tl)
  | c :: rest -> ( match s with x :: tl when x = c -> ref_like rest tl | _ -> false)

let explode str = List.init (String.length str) (String.get str)

let qcheck_like_vs_reference =
  let pat_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_range 0 6))
  in
  let str_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 8)) in
  QCheck.Test.make ~name:"LIKE matches reference" ~count:1000
    QCheck.(pair (make pat_gen) (make str_gen))
    (fun (pat, s) -> Expr.like_match ~pattern:pat s = ref_like (explode pat) (explode s))

let test_join_sides () =
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  Alcotest.(check bool) "join pred detected" true (Expr.join_sides p <> None);
  let same_rel = Expr.eq (Expr.col "a" "x") (Expr.col "a" "y") in
  Alcotest.(check bool) "same-rel not join" true (Expr.join_sides same_rel = None);
  let filt = Expr.Cmp (Expr.Eq, Expr.col "a" "x", Expr.vint 1) in
  Alcotest.(check bool) "filter not join" true (Expr.join_sides filt = None)

let test_rels_and_cols () =
  let p =
    Expr.Cmp
      ( Expr.Lt,
        Expr.Arith (Expr.Add, Expr.col "a" "x", Expr.col "b" "y"),
        Expr.col "a" "z" )
  in
  Alcotest.(check (list string)) "rels in order" [ "a"; "b" ] (Expr.rels_of_pred p);
  Alcotest.(check int) "3 cols" 3 (List.length (Expr.cols_of_pred p));
  Alcotest.(check bool) "not single rel" false (Expr.is_single_rel p)

let test_rename_rels () =
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let p' = Expr.rename_rels (fun r -> if r = "a" then "T1" else r) p in
  Alcotest.(check (list string)) "renamed" [ "T1"; "b" ] (Expr.rels_of_pred p')

let test_symmetric_equality () =
  let p1 = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let p2 = Expr.eq (Expr.col "b" "y") (Expr.col "a" "x") in
  Alcotest.(check bool) "symmetric equal" true (Expr.equal_pred p1 p2);
  let p3 = Expr.Cmp (Expr.Lt, Expr.col "a" "x", Expr.col "b" "y") in
  Alcotest.(check bool) "lt not symmetric-eq" false (Expr.equal_pred p1 p3)

let test_to_string () =
  Alcotest.(check string) "cmp" "a.x = 5"
    (Expr.to_string (Expr.Cmp (Expr.Eq, Expr.col "a" "x", Expr.vint 5)));
  Alcotest.(check string) "like" "a.x LIKE 'h%'"
    (Expr.to_string (Expr.Like (Expr.col "a" "x", "h%")))

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_cmp;
    Alcotest.test_case "null comparisons" `Quick test_null_comparisons_false;
    Alcotest.test_case "between/in" `Quick test_between_in;
    Alcotest.test_case "null handling" `Quick test_null_handling;
    Alcotest.test_case "or" `Quick test_or;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "like cases" `Quick test_like_cases;
    Alcotest.test_case "join sides" `Quick test_join_sides;
    Alcotest.test_case "rels/cols extraction" `Quick test_rels_and_cols;
    Alcotest.test_case "rename rels" `Quick test_rename_rels;
    Alcotest.test_case "symmetric equality" `Quick test_symmetric_equality;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest qcheck_like_vs_reference;
  ]
