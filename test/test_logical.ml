(* Logical trees (§3.3 structure). *)

module Logical = Qs_plan.Logical
module Query = Qs_query.Query
module Expr = Qs_query.Expr

let spj name = Logical.Spj (Query.make ~name [ { Query.alias = "a"; table = "t" } ] [])

let agg name input =
  Logical.Agg
    {
      name;
      group_by = [];
      aggs = [ { Logical.fn = Logical.Count_star; arg = None; label = "n" } ];
      input;
    }

let test_names () =
  Alcotest.(check string) "spj name" "q1" (Logical.name (spj "q1"));
  Alcotest.(check string) "agg name" "a1" (Logical.name (agg "a1" (spj "q1")));
  Alcotest.(check string) "let name = body name" "a1"
    (Logical.name (Logical.Let { bindings = [ spj "b" ]; body = agg "a1" (spj "q1") }))

let test_is_spj () =
  Alcotest.(check bool) "spj" true (Logical.is_spj (spj "q"));
  Alcotest.(check bool) "agg not" false (Logical.is_spj (agg "a" (spj "q")))

let test_children () =
  let u = Logical.Union_all { name = "u"; inputs = [ spj "x"; spj "y" ] } in
  Alcotest.(check int) "union children" 2 (List.length (Logical.children u));
  let l = Logical.Let { bindings = [ spj "b1"; spj "b2" ]; body = spj "body" } in
  Alcotest.(check int) "let children incl body" 3 (List.length (Logical.children l));
  let s =
    Logical.Semi { name = "s"; left = spj "l"; right = spj "r"; on = [] }
  in
  Alcotest.(check int) "semi children" 2 (List.length (Logical.children s))

let test_spj_count () =
  let tree =
    Logical.Let
      {
        bindings = [ agg "a" (spj "s1"); spj "s2" ];
        body = Logical.Union_all { name = "u"; inputs = [ spj "s3"; agg "b" (spj "s4") ] };
      }
  in
  Alcotest.(check int) "four segments" 4 (Logical.spj_count tree)

let test_group_label () =
  Alcotest.(check string) "rel_name" "t_year"
    (Logical.group_label { Expr.rel = "t"; name = "year" })

let test_pp_smoke () =
  let tree =
    Logical.Anti
      { name = "aj"; left = agg "a" (spj "s1"); right = spj "s2"; on = [] }
  in
  let s = Format.asprintf "%a" Logical.pp tree in
  Alcotest.(check bool) "mentions anti" true (Str_helpers.contains s "Anti");
  Alcotest.(check bool) "mentions agg" true (Str_helpers.contains s "Agg")

let suite =
  [
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "is_spj" `Quick test_is_spj;
    Alcotest.test_case "children" `Quick test_children;
    Alcotest.test_case "spj_count" `Quick test_spj_count;
    Alcotest.test_case "group label" `Quick test_group_label;
    Alcotest.test_case "pp" `Quick test_pp_smoke;
  ]
