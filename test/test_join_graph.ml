(* The directed join graph of §4.1, including the paper's Query 6d
   example: the mk–ci bidirectional edge of the {t, mk, ci} cycle must be
   the one removed. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Join_graph = Qs_query.Join_graph

(* the JOB 6d shape over the Cinema schema *)
let q6d () =
  Query.make ~name:"q6d"
    [
      { Query.alias = "ci"; table = "cast_info" };
      { Query.alias = "k"; table = "keyword" };
      { Query.alias = "mk"; table = "movie_keyword" };
      { Query.alias = "n"; table = "name" };
      { Query.alias = "t"; table = "title" };
    ]
    [
      Expr.eq (Expr.col "k" "id") (Expr.col "mk" "keyword_id");
      Expr.eq (Expr.col "t" "id") (Expr.col "mk" "movie_id");
      Expr.eq (Expr.col "t" "id") (Expr.col "ci" "movie_id");
      Expr.eq (Expr.col "ci" "movie_id") (Expr.col "mk" "movie_id");
      Expr.eq (Expr.col "n" "id") (Expr.col "ci" "person_id");
    ]

let graph () = Join_graph.build (Lazy.force Fixtures.cinema) (q6d ())

let test_orientation () =
  let g = graph () in
  (* mk -> k, mk -> t, ci -> t, ci -> n must all be directed *)
  let directed =
    List.filter_map
      (fun (e : Join_graph.edge) ->
        if e.Join_graph.kind = Join_graph.Directed then
          Some (e.Join_graph.src, e.Join_graph.dst)
        else None)
      g.Join_graph.edges
  in
  List.iter
    (fun pair ->
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s" (fst pair) (snd pair))
        true (List.mem pair directed))
    [ ("mk", "k"); ("mk", "t"); ("ci", "t"); ("ci", "n") ]

let test_redundant_cycle_edge_dropped () =
  let g = graph () in
  (* exactly the mk-ci FK-FK predicate is dropped *)
  Alcotest.(check int) "one dropped" 1 (List.length g.Join_graph.dropped);
  let dropped_rels = Expr.rels_of_pred (List.hd g.Join_graph.dropped) in
  Alcotest.(check (list string)) "mk-ci" [ "ci"; "mk" ] (List.sort compare dropped_rels);
  Alcotest.(check int) "four retained" 4 (List.length g.Join_graph.edges)

let test_out_neighbors () =
  let g = graph () in
  Alcotest.(check (list string)) "mk points to k,t" [ "k"; "t" ]
    (List.sort compare (Join_graph.out_neighbors g "mk"));
  Alcotest.(check (list string)) "ci points to n,t" [ "n"; "t" ]
    (List.sort compare (Join_graph.out_neighbors g "ci"));
  Alcotest.(check (list string)) "k is a sink" [] (Join_graph.out_neighbors g "k");
  Alcotest.(check bool) "t has no outgoing" false (Join_graph.has_outgoing g "t")

let test_reverse () =
  let g = Join_graph.reverse (graph ()) in
  Alcotest.(check bool) "t now points out" true (Join_graph.has_outgoing g "t");
  Alcotest.(check (list string)) "t -> ci,mk" [ "ci"; "mk" ]
    (List.sort compare (Join_graph.out_neighbors g "t"));
  Alcotest.(check bool) "mk now a sink" false (Join_graph.has_outgoing g "mk")

let test_connectivity () =
  let g = graph () in
  Alcotest.(check bool) "connected" true (Join_graph.is_connected g)

let test_bidirectional_same_kind () =
  (* an FK-FK equality between two relationship tables is bidirectional *)
  let q =
    Query.make ~name:"fkfk"
      [
        { Query.alias = "mk"; table = "movie_keyword" };
        { Query.alias = "ci"; table = "cast_info" };
      ]
      [ Expr.eq (Expr.col "mk" "movie_id") (Expr.col "ci" "movie_id") ]
  in
  let g = Join_graph.build (Lazy.force Fixtures.cinema) q in
  Alcotest.(check int) "one edge" 1 (List.length g.Join_graph.edges);
  Alcotest.(check bool) "bidirectional" true
    ((List.hd g.Join_graph.edges).Join_graph.kind = Join_graph.Bidirectional);
  (* bidirectional edges are outgoing from both ends *)
  Alcotest.(check bool) "mk sees ci" true (Join_graph.has_outgoing g "mk");
  Alcotest.(check bool) "ci sees mk" true (Join_graph.has_outgoing g "ci")

let test_isolated_vertex () =
  let q =
    Query.make ~name:"iso"
      [
        { Query.alias = "t"; table = "title" };
        { Query.alias = "k"; table = "keyword" };
      ]
      [ Expr.Cmp (Expr.Ge, Expr.col "t" "production_year", Expr.vint 2000) ]
  in
  let g = Join_graph.build (Lazy.force Fixtures.cinema) q in
  Alcotest.(check int) "no edges" 0 (List.length g.Join_graph.edges);
  Alcotest.(check bool) "disconnected" false (Join_graph.is_connected g)

let suite =
  [
    Alcotest.test_case "orientation" `Quick test_orientation;
    Alcotest.test_case "redundant cycle edge" `Quick test_redundant_cycle_edge_dropped;
    Alcotest.test_case "out neighbors" `Quick test_out_neighbors;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "bidirectional fk-fk" `Quick test_bidirectional_same_kind;
    Alcotest.test_case "isolated vertex" `Quick test_isolated_vertex;
  ]
