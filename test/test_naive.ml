(* The reference executor and the weighted counter behind the oracle. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Catalog = Qs_storage.Catalog
module Fragment = Qs_stats.Fragment
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Strategy = Qs_core.Strategy
module Naive = Qs_exec.Naive
module Rng = Qs_util.Rng

let frag_of ctx q = Strategy.fragment_of_query ctx q

let test_count_empty_result () =
  let _, ctx = Fixtures.shop_ctx () in
  let q =
    Query.make ~name:"none"
      [ { Query.alias = "c"; table = "customers" } ]
      [ Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "nowhere") ]
  in
  Alcotest.(check int) "zero" 0 (Naive.count (frag_of ctx q))

let test_count_single_table () =
  let _, ctx = Fixtures.shop_ctx () in
  let q = Query.make ~name:"all" [ { Query.alias = "c"; table = "customers" } ] [] in
  Alcotest.(check int) "120 customers" 120 (Naive.count (frag_of ctx q))

let test_count_cartesian_product () =
  let _, ctx = Fixtures.shop_ctx () in
  let q =
    Query.make ~name:"cross"
      [
        { Query.alias = "c"; table = "customers" };
        { Query.alias = "p"; table = "products" };
      ]
      []
  in
  Alcotest.(check int) "120 * 80" (120 * 80) (Naive.count (frag_of ctx q))

let test_count_weighted_equals_materialized () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:700 () in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let q = Fixtures.random_shop_query rng in
    let frag = frag_of ctx q in
    let full = { frag with Fragment.output = [] } in
    let expected = Table.n_rows (Naive.rows full) in
    Alcotest.(check int) ("count for " ^ q.Query.name) expected (Naive.count full)
  done

let test_count_with_cache_consistent () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  let cache = Naive.make_cache () in
  let rng = Rng.create 9 in
  for _ = 1 to 15 do
    let q = Fixtures.random_shop_query rng in
    let frag = frag_of ctx q in
    let cold = Naive.count frag in
    let warm1 = Naive.count ~cache frag in
    let warm2 = Naive.count ~cache frag in
    Alcotest.(check int) "cache = no cache" cold warm1;
    Alcotest.(check int) "cache stable" cold warm2
  done

let test_cache_shared_across_subsets () =
  (* counting a larger fragment after its sub-fragment must still be
     exact (the cache stores intermediates keyed by logical identity) *)
  let _, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  let cache = Naive.make_cache () in
  let q = Fixtures.shop_query () in
  let frag = frag_of ctx q in
  let sub =
    Fragment.restrict frag
      [ Fragment.find_input frag "o"; Fragment.find_input frag "p" ]
  in
  let c_sub = Naive.count ~cache sub in
  let c_full = Naive.count ~cache frag in
  Alcotest.(check int) "sub unchanged on recount" c_sub (Naive.count ~cache sub);
  Alcotest.(check int) "full exact" (Naive.count frag) c_full

let weighted_join_fixture () =
  (* two tiny tables with null keys and duplicates to stress weighting *)
  let a =
    Table.of_rows ~name:"wa"
      ~schema:(Schema.make "wa" [ ("k", Value.TInt); ("pad", Value.TStr) ])
      [
        [| Value.Int 1; Value.Str "x" |];
        [| Value.Int 1; Value.Str "y" |];
        [| Value.Int 2; Value.Str "z" |];
        [| Value.Null; Value.Str "n" |];
      ]
  in
  let b =
    Table.of_rows ~name:"wb"
      ~schema:(Schema.make "wb" [ ("k", Value.TInt) ])
      [ [| Value.Int 1 |]; [| Value.Int 1 |]; [| Value.Int 1 |]; [| Value.Null |] ]
  in
  let cat = Catalog.create () in
  Catalog.add_table cat a;
  Catalog.add_table cat b;
  let registry = Qs_stats.Stats_registry.create cat in
  let q =
    Query.make ~name:"w"
      [ { Query.alias = "a"; table = "wa" }; { Query.alias = "b"; table = "wb" } ]
      [ Expr.eq (Expr.col "a" "k") (Expr.col "b" "k") ]
  in
  Fragment.of_query registry q

let test_weighted_multiplicities_and_nulls () =
  (* k=1: 2 rows on the left x 3 on the right = 6; nulls never join *)
  Alcotest.(check int) "6 rows" 6 (Naive.count (weighted_join_fixture ()))

let test_count_matches_executor_on_cinema () =
  let cat = Lazy.force Fixtures.cinema in
  let registry = Qs_stats.Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Qs_stats.Estimator.default in
  List.iteri
    (fun i q ->
      if i < 5 then begin
        let frag = frag_of ctx q in
        let full = { frag with Fragment.output = [] } in
        Alcotest.(check int) q.Query.name
          (Table.n_rows (Naive.rows full))
          (Naive.count full)
      end)
    (Lazy.force Fixtures.cinema_queries)

let test_deadline_respected () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:5000 () in
  let q = Fixtures.shop_query () in
  let frag = frag_of ctx q in
  (* fresh inputs so the filter cache cannot satisfy it instantly *)
  Alcotest.(check bool) "times out" true
    (try
       ignore (Naive.count ~deadline:(Qs_util.Timer.now () -. 1.0) frag);
       false
     with Qs_exec.Executor.Timeout -> true)

let suite =
  [
    Alcotest.test_case "count empty" `Quick test_count_empty_result;
    Alcotest.test_case "count single table" `Quick test_count_single_table;
    Alcotest.test_case "count cartesian" `Quick test_count_cartesian_product;
    Alcotest.test_case "weighted = materialized" `Quick test_count_weighted_equals_materialized;
    Alcotest.test_case "cache consistent" `Quick test_count_with_cache_consistent;
    Alcotest.test_case "cache across subsets" `Quick test_cache_shared_across_subsets;
    Alcotest.test_case "multiplicities & nulls" `Quick test_weighted_multiplicities_and_nulls;
    Alcotest.test_case "cinema counts" `Quick test_count_matches_executor_on_cinema;
    Alcotest.test_case "deadline" `Quick test_deadline_respected;
  ]
