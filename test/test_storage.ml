(* Schema / Table / Index / Catalog. *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Table = Qs_storage.Table
module Index = Qs_storage.Index
module Catalog = Qs_storage.Catalog

let sample_table () =
  Table.of_rows ~name:"emp"
    ~schema:(Schema.make "emp" [ ("id", Value.TInt); ("dept", Value.TStr) ])
    [
      [| Value.Int 1; Value.Str "eng" |];
      [| Value.Int 2; Value.Str "ops" |];
      [| Value.Int 3; Value.Str "eng" |];
    ]

let test_schema_find () =
  let s = Schema.make "emp" [ ("id", Value.TInt); ("dept", Value.TStr) ] in
  Alcotest.(check (option int)) "id at 0" (Some 0) (Schema.find s ~rel:"emp" ~name:"id");
  Alcotest.(check (option int)) "missing rel" None (Schema.find s ~rel:"x" ~name:"id");
  Alcotest.(check (option int)) "by name" (Some 1) (Schema.find_by_name s "dept")

let test_schema_find_by_name_ambiguous () =
  let s =
    Schema.concat
      (Schema.make "a" [ ("id", Value.TInt) ])
      (Schema.make "b" [ ("id", Value.TInt) ])
  in
  Alcotest.(check (option int)) "ambiguous -> None" None (Schema.find_by_name s "id");
  Alcotest.(check (option int)) "qualified works" (Some 1) (Schema.find s ~rel:"b" ~name:"id")

let test_schema_requalify () =
  let s = Schema.make "emp" [ ("id", Value.TInt) ] in
  let s2 = Schema.requalify "e" s in
  Alcotest.(check bool) "requalified" true (Schema.mem s2 ~rel:"e" ~name:"id");
  Alcotest.(check bool) "old gone" false (Schema.mem s2 ~rel:"emp" ~name:"id")

let test_table_arity_check () =
  let schema = Schema.make "t" [ ("a", Value.TInt); ("b", Value.TInt) ] in
  Alcotest.(check bool) "bad arity rejected" true
    (try
       ignore (Table.of_rows ~name:"t" ~schema [ [| Value.Int 1 |] ]);
       false
     with Invalid_argument _ -> true)

let test_table_rename_shares_rows () =
  let t = sample_table () in
  let r = Table.rename t "e" in
  Alcotest.(check bool) "chunks shared" true (Table.chunk r 0 == Table.chunk t 0);
  Alcotest.(check string) "renamed" "e" r.Table.name;
  Alcotest.(check bool) "schema requalified" true (Schema.mem r.Table.schema ~rel:"e" ~name:"id")

let test_table_column_values () =
  let t = sample_table () in
  Alcotest.(check int) "3 values" 3 (Array.length (Table.column_values t 0));
  Alcotest.(check bool) "first id" true (Table.get t ~row:0 ~col:0 = Value.Int 1)

let test_table_byte_size () =
  let t = sample_table () in
  (* 3 ints (8 each) + "eng","ops","eng" (24+3 each) *)
  Alcotest.(check int) "byte size" ((3 * 8) + (3 * 27)) (Table.byte_size t)

let int_rows n = Array.init n (fun i -> [| Value.Int i |])
let int_schema = Schema.make "t" [ ("a", Value.TInt) ]

let test_table_chunking () =
  let t = Table.create ~chunk_rows:2 ~name:"t" ~schema:int_schema (int_rows 5) in
  Alcotest.(check int) "5 rows" 5 (Table.n_rows t);
  Alcotest.(check int) "3 chunks" 3 (Table.n_chunks t);
  Alcotest.(check int) "last chunk short" 1 (Array.length (Table.chunk t 2));
  Alcotest.(check int) "offset of chunk 2" 4 (Table.chunk_offset t 2);
  (* iteration visits the original row order with global row ids *)
  let seen = ref [] in
  Table.iteri (fun i row -> seen := (i, Value.as_int row.(0)) :: !seen) t;
  Alcotest.(check (list (pair int int))) "iteri order"
    (List.init 5 (fun i -> (i, i)))
    (List.rev !seen);
  (* random access crosses chunk boundaries (binary search) *)
  for i = 0 to 4 do
    Alcotest.(check bool) ("row " ^ string_of_int i) true
      (Table.get t ~row:i ~col:0 = Value.Int i)
  done;
  Alcotest.(check int) "to_rows flattens" 5 (Array.length (Table.to_rows t))

let test_table_of_chunks_ragged () =
  let c1 = int_rows 3 in
  let c2 = [||] in
  let c3 = Array.init 2 (fun i -> [| Value.Int (10 + i) |]) in
  let t = Table.of_chunks ~name:"t" ~schema:int_schema [ c1; c2; c3 ] in
  Alcotest.(check int) "empty chunk dropped" 2 (Table.n_chunks t);
  Alcotest.(check int) "5 rows" 5 (Table.n_rows t);
  Alcotest.(check bool) "chunk arrays shared" true (Table.chunk t 0 == c1);
  Alcotest.(check bool) "order preserved" true (Table.get t ~row:3 ~col:0 = Value.Int 10)

let test_table_byte_size_memo () =
  let t = sample_table () in
  let flat = Table.byte_size t in
  (* chunked layout accounts identically, and the memoized second call
     agrees with the first *)
  let chunked =
    Table.create ~chunk_rows:2 ~name:"emp" ~schema:t.Table.schema (Table.to_rows t)
  in
  Alcotest.(check int) "chunked = flat" flat (Table.byte_size chunked);
  Alcotest.(check int) "memoized call stable" flat (Table.byte_size chunked);
  Alcotest.(check int) "per-chunk sizes sum" flat
    (List.init (Table.n_chunks chunked) (Table.chunk_byte_size chunked)
    |> List.fold_left ( + ) 0);
  (* rename shares the memo with the original *)
  Alcotest.(check int) "rename shares size" flat (Table.byte_size (Table.rename chunked "e"))

let test_default_chunk_rows () =
  let saved = Table.default_chunk_rows () in
  Fun.protect
    ~finally:(fun () -> Table.set_default_chunk_rows saved)
    (fun () ->
      Table.set_default_chunk_rows 2;
      let t = Table.create ~name:"t" ~schema:int_schema (int_rows 5) in
      Alcotest.(check int) "default applies" 3 (Table.n_chunks t);
      let u = Table.create ~chunk_rows:10 ~name:"t" ~schema:int_schema (int_rows 5) in
      Alcotest.(check int) "explicit overrides" 1 (Table.n_chunks u))

let test_index_lookup () =
  let t = sample_table () in
  let ix = Index.build t ~column:"dept" ~unique:false in
  Alcotest.(check (list int)) "eng rows" [ 0; 2 ]
    (List.sort compare (Index.lookup ix (Value.Str "eng")));
  Alcotest.(check string) "name" "emp.dept" (Index.name ix)

let test_index_missing_column () =
  Alcotest.(check bool) "missing col rejected" true
    (try
       ignore (Index.build (sample_table ()) ~column:"nope" ~unique:false);
       false
     with Invalid_argument _ -> true)

let catalog_with_fk () =
  let cat = Catalog.create () in
  let dept =
    Table.of_rows ~name:"dept"
      ~schema:(Schema.make "dept" [ ("id", Value.TInt); ("name", Value.TStr) ])
      [ [| Value.Int 1; Value.Str "eng" |]; [| Value.Int 2; Value.Str "ops" |] ]
  in
  let emp =
    Table.of_rows ~name:"emp"
      ~schema:(Schema.make "emp" [ ("id", Value.TInt); ("dept_id", Value.TInt) ])
      [ [| Value.Int 1; Value.Int 1 |]; [| Value.Int 2; Value.Int 1 |] ]
  in
  Catalog.add_table cat ~pk:"id" dept;
  Catalog.add_table cat ~pk:"id" emp;
  Catalog.add_fk cat ~from_table:"emp" ~from_column:"dept_id" ~to_table:"dept" ~to_column:"id";
  cat

let test_catalog_basics () =
  let cat = catalog_with_fk () in
  Alcotest.(check bool) "emp exists" true (Catalog.mem_table cat "emp");
  Alcotest.(check (option string)) "pk" (Some "id") (Catalog.pk cat "emp");
  Alcotest.(check int) "one fk" 1 (List.length (Catalog.fks cat));
  Alcotest.(check int) "references" 1 (List.length (Catalog.references cat "emp"));
  Alcotest.(check int) "referenced_by" 1 (List.length (Catalog.referenced_by cat "dept"));
  Alcotest.(check bool) "fk_between" true
    (Catalog.fk_between cat ~from_table:"emp" ~to_table:"dept" <> None)

let test_catalog_duplicate_table () =
  let cat = catalog_with_fk () in
  Alcotest.(check bool) "dup rejected" true
    (try
       Catalog.add_table cat (sample_table ());
       Catalog.add_table cat (sample_table ());
       false
     with Invalid_argument _ -> true)

let test_index_configs () =
  let cat = catalog_with_fk () in
  Catalog.build_indexes cat Catalog.Pk_only;
  Alcotest.(check bool) "pk index" true (Catalog.find_index cat ~table:"emp" ~column:"id" <> None);
  Alcotest.(check bool) "no fk index" true
    (Catalog.find_index cat ~table:"emp" ~column:"dept_id" = None);
  Catalog.build_indexes cat Catalog.Pk_fk;
  Alcotest.(check bool) "fk index now" true
    (Catalog.find_index cat ~table:"emp" ~column:"dept_id" <> None);
  Alcotest.(check bool) "config recorded" true (Catalog.index_config cat = Some Catalog.Pk_fk)

let suite =
  [
    Alcotest.test_case "schema find" `Quick test_schema_find;
    Alcotest.test_case "ambiguous name" `Quick test_schema_find_by_name_ambiguous;
    Alcotest.test_case "requalify" `Quick test_schema_requalify;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "rename shares rows" `Quick test_table_rename_shares_rows;
    Alcotest.test_case "column values" `Quick test_table_column_values;
    Alcotest.test_case "byte size" `Quick test_table_byte_size;
    Alcotest.test_case "chunking" `Quick test_table_chunking;
    Alcotest.test_case "of_chunks ragged" `Quick test_table_of_chunks_ragged;
    Alcotest.test_case "byte size memoized" `Quick test_table_byte_size_memo;
    Alcotest.test_case "default chunk rows" `Quick test_default_chunk_rows;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "index missing column" `Quick test_index_missing_column;
    Alcotest.test_case "catalog basics" `Quick test_catalog_basics;
    Alcotest.test_case "duplicate table" `Quick test_catalog_duplicate_table;
    Alcotest.test_case "index configurations" `Quick test_index_configs;
  ]
