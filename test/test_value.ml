(* Value semantics: ordering, equality/hash coherence, sizes. *)

module Value = Qs_storage.Value

let v = Alcotest.testable Value.pp Value.equal

let test_null_sorts_first () =
  List.iter
    (fun x -> Alcotest.(check bool) "null < x" true (Value.compare Value.Null x < 0))
    [ Value.Bool false; Value.Int (-100); Value.Float (-1e30); Value.Str "" ]

let test_numeric_cross_type () =
  Alcotest.(check int) "3 = 3.0" 0 (Value.compare (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "2 < 2.5" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "2.5 < 3" true (Value.compare (Value.Float 2.5) (Value.Int 3) < 0)

let test_string_order () =
  Alcotest.(check bool) "abc < abd" true
    (Value.compare (Value.Str "abc") (Value.Str "abd") < 0)

let test_hash_consistent_with_equal () =
  let pairs =
    [
      (Value.Int 42, Value.Int 42);
      (Value.Int 5, Value.Float 5.0);
      (Value.Str "x", Value.Str "x");
      (Value.Bool true, Value.Bool true);
    ]
  in
  List.iter
    (fun (a, b) ->
      if Value.equal a b then
        Alcotest.(check int) "equal values hash equal" (Value.hash a) (Value.hash b))
    pairs

let test_byte_size () =
  Alcotest.(check int) "int" 8 (Value.byte_size (Value.Int 1));
  Alcotest.(check int) "null" 8 (Value.byte_size Value.Null);
  Alcotest.(check int) "str" (24 + 5) (Value.byte_size (Value.Str "hello"))

let test_accessors () =
  Alcotest.(check int) "as_int" 7 (Value.as_int (Value.Int 7));
  Alcotest.(check (float 1e-9)) "as_float widens" 7.0 (Value.as_float (Value.Int 7));
  Alcotest.(check string) "as_string" "s" (Value.as_string (Value.Str "s"));
  Alcotest.check_raises "as_int on str" (Invalid_argument "Value.as_int: x") (fun () ->
      ignore (Value.as_int (Value.Str "x")))

let test_type_of () =
  Alcotest.(check bool) "null has no type" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "int type" true (Value.type_of (Value.Int 1) = Some Value.TInt)

let test_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5))

let arbitrary_value =
  QCheck.(
    oneof
      [
        always Qs_storage.Value.Null;
        map (fun b -> Qs_storage.Value.Bool b) bool;
        map (fun i -> Qs_storage.Value.Int i) small_signed_int;
        map (fun f -> Qs_storage.Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Qs_storage.Value.Str s) (string_of_size (Gen.int_range 0 8));
      ])

let qcheck_compare_reflexive =
  QCheck.Test.make ~name:"compare reflexive" ~count:300 arbitrary_value (fun x ->
      Value.compare x x = 0)

let qcheck_compare_antisymmetric =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    QCheck.(pair arbitrary_value arbitrary_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let qcheck_compare_transitive =
  QCheck.Test.make ~name:"compare transitive" ~count:300
    QCheck.(triple arbitrary_value arbitrary_value arbitrary_value)
    (fun (a, b, c) ->
      let ab = Value.compare a b and bc = Value.compare b c in
      if ab <= 0 && bc <= 0 then Value.compare a c <= 0 else true)

let qcheck_hash_equal =
  QCheck.Test.make ~name:"equal implies equal hash" ~count:300
    QCheck.(pair arbitrary_value arbitrary_value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suite =
  [
    Alcotest.test_case "null sorts first" `Quick test_null_sorts_first;
    Alcotest.test_case "numeric cross-type" `Quick test_numeric_cross_type;
    Alcotest.test_case "string order" `Quick test_string_order;
    Alcotest.test_case "hash/equal coherence" `Quick test_hash_consistent_with_equal;
    Alcotest.test_case "byte sizes" `Quick test_byte_size;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest qcheck_compare_reflexive;
    QCheck_alcotest.to_alcotest qcheck_compare_antisymmetric;
    QCheck_alcotest.to_alcotest qcheck_compare_transitive;
    QCheck_alcotest.to_alcotest qcheck_hash_equal;
  ]

let _ = v
