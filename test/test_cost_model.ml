(* The cost model: the qualitative trade-offs the paper's plans turn on
   must hold (hash beats index-NL for large outers, index-NL wins for tiny
   outers, NL is only attractive when both sides look tiny). *)

module Cost_model = Qs_plan.Cost_model

let test_scan_monotone_in_rows () =
  Alcotest.(check bool) "more rows cost more" true
    (Cost_model.scan ~rows:10_000.0 ~n_filters:1
    > Cost_model.scan ~rows:1_000.0 ~n_filters:1)

let test_scan_filters_add_cost () =
  Alcotest.(check bool) "filters cost" true
    (Cost_model.scan ~rows:1000.0 ~n_filters:3 > Cost_model.scan ~rows:1000.0 ~n_filters:0)

let test_hash_join_prefers_small_build () =
  let small_build =
    Cost_model.hash_join ~build_rows:100.0 ~probe_rows:100_000.0 ~out_rows:1000.0
  in
  let big_build =
    Cost_model.hash_join ~build_rows:100_000.0 ~probe_rows:100.0 ~out_rows:1000.0
  in
  Alcotest.(check bool) "build on the small side" true (small_build < big_build)

let test_index_nl_beats_hash_for_tiny_outer () =
  (* 10 probes into a 100k-row indexed table vs building a 100k hash *)
  let inl =
    Cost_model.index_nl_join ~outer_rows:10.0 ~inner_rows:100_000.0 ~matches:30.0
      ~out_rows:30.0
  in
  let hash =
    Cost_model.hash_join ~build_rows:100_000.0 ~probe_rows:10.0 ~out_rows:30.0
  in
  Alcotest.(check bool) "index NL wins" true (inl < hash)

let test_hash_beats_index_nl_for_large_outer () =
  (* 200k probes vs one 100k build: hashing must win — this asymmetry is
     exactly why a temp without an index (Figure 2) is so painful *)
  let inl =
    Cost_model.index_nl_join ~outer_rows:200_000.0 ~inner_rows:100_000.0
      ~matches:200_000.0 ~out_rows:200_000.0
  in
  let hash =
    Cost_model.hash_join ~build_rows:100_000.0 ~probe_rows:200_000.0
      ~out_rows:200_000.0
  in
  Alcotest.(check bool) "hash wins" true (hash < inl)

let test_nl_quadratic () =
  let small = Cost_model.nl_join ~outer_rows:10.0 ~inner_rows:10.0 ~out_rows:5.0 in
  let big = Cost_model.nl_join ~outer_rows:1000.0 ~inner_rows:1000.0 ~out_rows:5.0 in
  Alcotest.(check bool) "quadratic growth" true (big > 100.0 *. small)

let test_nl_attractive_only_when_tiny () =
  (* on believed-tiny inputs NL undercuts hash — the trap underestimates
     set for the default optimizer *)
  let nl = Cost_model.nl_join ~outer_rows:5.0 ~inner_rows:5.0 ~out_rows:5.0 in
  let hash = Cost_model.hash_join ~build_rows:5.0 ~probe_rows:5.0 ~out_rows:5.0 in
  Alcotest.(check bool) "nl can look cheap" true (nl < hash *. 2.0);
  let nl_big = Cost_model.nl_join ~outer_rows:5000.0 ~inner_rows:5000.0 ~out_rows:5.0 in
  let hash_big = Cost_model.hash_join ~build_rows:5000.0 ~probe_rows:5000.0 ~out_rows:5.0 in
  Alcotest.(check bool) "but never at size" true (hash_big < nl_big)

let test_materialize_and_analyze_scale () =
  Alcotest.(check bool) "materialize grows with rows" true
    (Cost_model.materialize ~rows:10_000.0 ~width:4
    > Cost_model.materialize ~rows:100.0 ~width:4);
  Alcotest.(check bool) "analyze grows with width" true
    (Cost_model.analyze ~rows:1000.0 ~width:10 > Cost_model.analyze ~rows:1000.0 ~width:2)

let test_all_costs_positive () =
  List.iter
    (fun c -> Alcotest.(check bool) "positive" true (c > 0.0))
    [
      Cost_model.scan ~rows:1.0 ~n_filters:0;
      Cost_model.hash_join ~build_rows:1.0 ~probe_rows:1.0 ~out_rows:1.0;
      Cost_model.index_nl_join ~outer_rows:1.0 ~inner_rows:1.0 ~matches:1.0 ~out_rows:1.0;
      Cost_model.nl_join ~outer_rows:1.0 ~inner_rows:1.0 ~out_rows:1.0;
      Cost_model.materialize ~rows:1.0 ~width:1;
      Cost_model.analyze ~rows:1.0 ~width:1;
    ]

let suite =
  [
    Alcotest.test_case "scan monotone" `Quick test_scan_monotone_in_rows;
    Alcotest.test_case "scan filters" `Quick test_scan_filters_add_cost;
    Alcotest.test_case "hash small build" `Quick test_hash_join_prefers_small_build;
    Alcotest.test_case "index NL tiny outer" `Quick test_index_nl_beats_hash_for_tiny_outer;
    Alcotest.test_case "hash large outer" `Quick test_hash_beats_index_nl_for_large_outer;
    Alcotest.test_case "nl quadratic" `Quick test_nl_quadratic;
    Alcotest.test_case "nl trap" `Quick test_nl_attractive_only_when_tiny;
    Alcotest.test_case "materialize/analyze" `Quick test_materialize_and_analyze_scale;
    Alcotest.test_case "positive costs" `Quick test_all_costs_positive;
  ]
