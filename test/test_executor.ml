(* The executor: operator semantics against the naive reference, actual-
   cardinality stats, deadline behaviour, projection, cartesian. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Naive = Qs_exec.Naive
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Strategy = Qs_core.Strategy

let mini_tables () =
  let a =
    Table.of_rows ~name:"a"
      ~schema:(Schema.make "a" [ ("x", Value.TInt); ("tag", Value.TStr) ])
      [
        [| Value.Int 1; Value.Str "p" |];
        [| Value.Int 2; Value.Str "q" |];
        [| Value.Int 2; Value.Str "r" |];
        [| Value.Null; Value.Str "s" |];
      ]
  in
  let b =
    Table.of_rows ~name:"b"
      ~schema:(Schema.make "b" [ ("y", Value.TInt); ("v", Value.TInt) ])
      [
        [| Value.Int 2; Value.Int 10 |];
        [| Value.Int 2; Value.Int 20 |];
        [| Value.Int 3; Value.Int 30 |];
        [| Value.Null; Value.Int 40 |];
      ]
  in
  (a, b)

let test_hash_join_basics () =
  let a, b = mini_tables () in
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let out = Executor.hash_join ~build:a ~probe:b [ p ] in
  (* x=2 matches twice on each side: 2*2 = 4 rows; nulls never join *)
  Alcotest.(check int) "4 rows" 4 (Table.n_rows out)

let test_hash_join_count_matches () =
  let a, b = mini_tables () in
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  Alcotest.(check int) "count = materialized" 4
    (Executor.hash_join_count ~build:a ~probe:b [ p ])

let test_hash_join_residual () =
  let a, b = mini_tables () in
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let res = Expr.Cmp (Expr.Gt, Expr.col "b" "v", Expr.vint 10) in
  let out = Executor.hash_join ~build:a ~probe:b [ p; res ] in
  Alcotest.(check int) "residual filters" 2 (Table.n_rows out);
  Alcotest.(check int) "count agrees" 2
    (Executor.hash_join_count ~build:a ~probe:b [ p; res ])

let test_nulls_never_join () =
  let a, b = mini_tables () in
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let out = Executor.hash_join ~build:a ~probe:b [ p ] in
  Table.iter
    (fun row -> Array.iter (fun v -> Alcotest.(check bool) "no null keys" false
      (Value.is_null v && false)) row)
    out;
  (* the null x row and null y row must not appear *)
  Alcotest.(check int) "4 rows only" 4 (Table.n_rows out)

let test_filter_input () =
  let a, _ = mini_tables () in
  let input =
    {
      Fragment.id = "a";
      table = a;
      provides = [ "a" ];
      filters = [ Expr.Cmp (Expr.Eq, Expr.col "a" "x", Expr.vint 2) ];
      stats = Qs_stats.Table_stats.rowcount_only 4;
      is_temp = false;
      base_table = Some "a";
      provenance = "a";
      stats_epoch = 0;
      memo = Hashtbl.create 1;
      scratch = Qs_util.Scratch.create ();
    }
  in
  Alcotest.(check int) "2 rows" 2 (Table.n_rows (Executor.filter_input input))

let test_project () =
  let a, _ = mini_tables () in
  let out = Executor.project a [ { Expr.rel = "a"; name = "tag" } ] in
  Alcotest.(check int) "1 col" 1 (Schema.arity out.Table.schema);
  Alcotest.(check int) "rows preserved" 4 (Table.n_rows out);
  (* duplicate columns collapse *)
  let dup =
    Executor.project a [ { Expr.rel = "a"; name = "tag" }; { Expr.rel = "a"; name = "tag" } ]
  in
  Alcotest.(check int) "dedup" 1 (Schema.arity dup.Table.schema);
  (* empty projection keeps everything *)
  Alcotest.(check int) "empty keeps all" 2 (Schema.arity (Executor.project a []).Table.schema)

let test_cartesian () =
  let a, b = mini_tables () in
  let out = Executor.cartesian ~name:"x" [ a; b ] in
  Alcotest.(check int) "16 rows" 16 (Table.n_rows out);
  Alcotest.(check int) "4 cols" 4 (Schema.arity out.Table.schema)

let test_deadline_timeout () =
  (* a deliberately huge NL join must hit the deadline *)
  let big =
    Table.create ~name:"big"
      ~schema:(Schema.make "big" [ ("x", Value.TInt) ])
      (Array.init 30000 (fun i -> [| Value.Int i |]))
  in
  let big2 = Table.rename big "big2" in
  let input t base =
    {
      Fragment.id = t.Table.name;
      table = t;
      provides = [ t.Table.name ];
      filters = [];
      stats = Qs_stats.Analyze.rowcount_of_table t;
      is_temp = false;
      base_table = Some base;
      provenance = t.Table.name;
      stats_epoch = 0;
      memo = Hashtbl.create 1;
      scratch = Qs_util.Scratch.create ();
    }
  in
  let l = Physical.scan (input big "big") ~est_rows:30000.0 ~est_cost:1.0 in
  let r = Physical.scan (input big2 "big") ~est_rows:30000.0 ~est_cost:1.0 in
  let join =
    Physical.join ~method_:Physical.Nl () ~left:l ~right:r
      ~preds:[ Expr.Cmp (Expr.Lt, Expr.col "big" "x", Expr.col "big2" "x") ]
      ~est_rows:1.0 ~est_cost:1.0
  in
  Alcotest.(check bool) "timeout raised" true
    (try
       ignore (Executor.run ~deadline:(Qs_util.Timer.now () +. 0.05) join);
       false
     with Executor.Timeout -> true)

let test_node_stats_actuals () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:300 () in
  ignore cat;
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  let res = Optimizer.optimize (Strategy.catalog ctx) Estimator.default frag in
  let tbl, stats = Executor.run res.Optimizer.plan in
  (* the root's recorded actual equals the output size *)
  Alcotest.(check (option int)) "root actual" (Some (Table.n_rows tbl))
    (Hashtbl.find_opt stats res.Optimizer.plan.Physical.id);
  (* every node recorded something sane *)
  List.iter
    (fun (n : Physical.t) ->
      match Hashtbl.find_opt stats n.Physical.id with
      | Some c -> Alcotest.(check bool) "non-negative" true (c >= 0)
      | None -> Alcotest.fail "join node missing stats")
    (Physical.joins_post_order res.Optimizer.plan)

let test_index_nl_equals_hash () =
  (* force an index-NL-only plan and compare with hash-only on the same
     fragment *)
  let cat, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  let hash_res = Optimizer.optimize ~allowed:[ Physical.Hash ] cat Estimator.default frag in
  let inl_res =
    Optimizer.optimize ~allowed:[ Physical.Index_nl; Physical.Hash ] cat Estimator.default
      frag
  in
  let t1, _ = Executor.run hash_res.Optimizer.plan in
  let t2, _ = Executor.run inl_res.Optimizer.plan in
  Alcotest.(check bool) "same relation" true (Fixtures.tables_equal t1 t2)

(* --- stats completeness ------------------------------------------------ *)
(* Regression: the index-NL inner scan is consumed through the index, not
   executed as an operator, and its node id used to be silently absent
   from the stats table. Every node id of the plan must always be present,
   zero-row producers included. *)

let fragment_input ?(filters = []) (t : Table.t) =
  {
    Fragment.id = t.Table.name;
    table = t;
    provides = [ t.Table.name ];
    filters;
    stats = Qs_stats.Analyze.rowcount_of_table t;
    is_temp = false;
    base_table = Some t.Table.name;
    provenance = t.Table.name;
    stats_epoch = 0;
    memo = Hashtbl.create 1;
    scratch = Qs_util.Scratch.create ();
  }

let index_nl_plan ?outer_filters ?inner_filters () =
  let a, b = mini_tables () in
  let ix = Qs_storage.Index.build b ~column:"y" ~unique:false in
  let outer = Physical.scan (fragment_input ?filters:outer_filters a) ~est_rows:4.0 ~est_cost:4.0 in
  let inner = Physical.scan (fragment_input ?filters:inner_filters b) ~est_rows:4.0 ~est_cost:4.0 in
  let okey = { Expr.rel = "a"; name = "x" } in
  let ikey = { Expr.rel = "b"; name = "y" } in
  Physical.join ~method_:Physical.Index_nl ~index:(ix, okey, ikey) () ~left:outer
    ~right:inner
    ~preds:[ Expr.eq (Expr.Col okey) (Expr.Col ikey) ]
    ~est_rows:4.0 ~est_cost:20.0

let check_stats_complete plan stats =
  List.iter
    (fun (n : Physical.t) ->
      if not (Hashtbl.mem stats n.Physical.id) then
        Alcotest.failf "node %d missing from stats" n.Physical.id)
    (Physical.nodes plan)

let test_stats_complete_index_nl () =
  let plan = index_nl_plan () in
  let out, stats = Executor.run plan in
  check_stats_complete plan stats;
  (* x=2 rows (2) each match the two y=2 inner rows *)
  Alcotest.(check int) "join output" 4 (Table.n_rows out);
  let inner =
    match plan.Physical.node with
    | Physical.Join j -> j.Physical.right
    | _ -> assert false
  in
  Alcotest.(check (option int)) "inner scan records matched rows" (Some 4)
    (Hashtbl.find_opt stats inner.Physical.id)

let test_stats_complete_zero_rows () =
  (* inner filter matches nothing: the inner scan must still be recorded,
     at zero *)
  let plan =
    index_nl_plan
      ~inner_filters:[ Expr.Cmp (Expr.Gt, Expr.col "b" "v", Expr.vint 1000) ] ()
  in
  let out, stats = Executor.run plan in
  Alcotest.(check int) "empty join" 0 (Table.n_rows out);
  check_stats_complete plan stats;
  (* and with an outer filter that kills everything before the lookups *)
  let plan2 =
    index_nl_plan
      ~outer_filters:[ Expr.Cmp (Expr.Eq, Expr.col "a" "x", Expr.vint 999) ] ()
  in
  let out2, stats2 = Executor.run plan2 in
  Alcotest.(check int) "empty join 2" 0 (Table.n_rows out2);
  check_stats_complete plan2 stats2;
  List.iter
    (fun (n : Physical.t) ->
      Alcotest.(check (option int))
        (Printf.sprintf "node %d at zero" n.Physical.id)
        (Some 0)
        (Hashtbl.find_opt stats2 n.Physical.id))
    (match plan2.Physical.node with
    | Physical.Join j -> [ plan2; j.Physical.left; j.Physical.right ]
    | _ -> assert false)

let test_stats_complete_optimized_plans () =
  (* whatever join methods the optimizer picks, the stats id set must
     cover the whole plan *)
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  List.iter
    (fun allowed ->
      let res = Optimizer.optimize ~allowed cat Estimator.default frag in
      let _, stats = Executor.run res.Optimizer.plan in
      check_stats_complete res.Optimizer.plan stats)
    [
      [ Physical.Hash ];
      [ Physical.Index_nl; Physical.Hash ];
      [ Physical.Index_nl; Physical.Hash; Physical.Nl ];
    ]

(* --- filter-cache keying ----------------------------------------------- *)
(* Regression: the filtered-rows cache used the fixed key "filtered" (via
   Obj.repr), so re-filtering the same input record under a different
   pushed-down predicate set silently returned the stale rows of the
   first filter. The cache is now typed and keyed by the predicates. *)

let test_filter_cache_keyed_by_predicates () =
  let a, _ = mini_tables () in
  let eq v = [ Expr.Cmp (Expr.Eq, Expr.col "a" "x", Expr.vint v) ] in
  let input = fragment_input ~filters:(eq 2) a in
  Alcotest.(check int) "first filter" 2 (Table.n_rows (Executor.filter_input input));
  (* same input record — and thus the same scratch cache — re-planned
     with a different predicate set *)
  let input' = { input with Fragment.filters = eq 1 } in
  Alcotest.(check int) "re-filter is not stale" 1
    (Table.n_rows (Executor.filter_input input'));
  (* the first filter's entry is still served, still correct *)
  Alcotest.(check int) "original entry intact" 2
    (Table.n_rows (Executor.filter_input input))

(* --- partitioned parallel hash join ------------------------------------ *)

let test_parallel_hash_join_matches () =
  let a, b = mini_tables () in
  let p = Expr.eq (Expr.col "a" "x") (Expr.col "b" "y") in
  let res = Expr.Cmp (Expr.Gt, Expr.col "b" "v", Expr.vint 10) in
  Qs_util.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun preds ->
          let seq = Executor.hash_join ~build:a ~probe:b preds in
          let par = Executor.hash_join ~pool ~build:a ~probe:b preds in
          Alcotest.(check bool) "same multiset" true (Fixtures.tables_equal seq par))
        [ [ p ]; [ p; res ] ])

let test_parallel_hash_join_limit () =
  (* the row limit must still convert explosive joins into Timeout, even
     when the counting is spread across domains *)
  let big =
    Table.create ~name:"c"
      ~schema:(Schema.make "c" [ ("k", Value.TInt) ])
      (Array.init 2000 (fun _ -> [| Value.Int 1 |]))
  in
  let big2 = Table.rename big "d" in
  let p = Expr.eq (Expr.col "c" "k") (Expr.col "d" "k") in
  Qs_util.Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check bool) "timeout raised" true
        (try
           ignore (Executor.hash_join ~limit:10_000 ~pool ~build:big ~probe:big2 [ p ]);
           false
         with Executor.Timeout -> true))

let test_run_with_pool_matches () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  let res = Optimizer.optimize ~allowed:[ Physical.Hash ] cat Estimator.default frag in
  let seq, _ = Executor.run res.Optimizer.plan in
  Qs_util.Pool.with_pool ~domains:3 (fun pool ->
      let par, stats = Executor.run ~pool res.Optimizer.plan in
      Alcotest.(check bool) "same multiset" true (Fixtures.tables_equal seq par);
      check_stats_complete res.Optimizer.plan stats)

(* --- morsel-driven engine: intermediates and partition reuse ----------- *)

let test_pipelined_intermediates_counter () =
  (* the 4-way shop join, executed as one plan: the materializing engine
     builds a table per operator output, the pipelined engine only its
     sink *)
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let frag = Strategy.fragment_of_query ctx (Fixtures.shop_query ()) in
  let res = Optimizer.optimize ~allowed:[ Physical.Hash ] cat Estimator.default frag in
  let count mode =
    Executor.reset_counters ();
    let tbl, _ = Executor.run ~mode res.Optimizer.plan in
    (Executor.intermediate_tables (), tbl)
  in
  let mats, mat_tbl = count Executor.Materialize in
  let pipes, pipe_tbl = count Executor.Pipeline in
  Alcotest.(check bool) "same multiset" true (Fixtures.tables_equal mat_tbl pipe_tbl);
  Alcotest.(check int) "pipelined materializes only the sink" 1 pipes;
  Alcotest.(check bool)
    (Printf.sprintf "materializing builds more (%d)" mats)
    true (mats > pipes)

let test_partition_reuse_across_steps () =
  (* products.id is a hub: orders and reviews both join it. QuerySplit
     runs the shop query in single-join steps over a pool, so at some
     step a temp produced by a parallel partitioned join is joined again
     on a key it is already partitioned by — the join must consume it
     by tag instead of re-hashing, and the result must not change *)
  let cat = Fixtures.shop_catalog ~n_orders:400 () in
  let registry = Qs_stats.Stats_registry.create cat in
  let qs = Qs_core.Querysplit.strategy Qs_core.Querysplit.default_config in
  let q = Fixtures.shop_query () in
  let seq =
    let ctx = Strategy.make_ctx registry Estimator.default in
    Table.digest (qs.Strategy.run ctx q).Strategy.result
  in
  Qs_util.Pool.with_pool ~domains:2 (fun pool ->
      let ctx = Strategy.make_ctx ~pool registry Estimator.default in
      Executor.reset_counters ();
      let out = (qs.Strategy.run ctx q).Strategy.result in
      Alcotest.(check bool) "a temp layout was reused" true
        (Executor.partition_reuses () > 0);
      Alcotest.(check string) "pooled digest unchanged" seq (Table.digest out))

let test_naive_count_matches_rows () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  let rng = Qs_util.Rng.create 1 in
  for _ = 1 to 10 do
    let q = Fixtures.random_shop_query rng in
    let frag = Strategy.fragment_of_query ctx q in
    let full = { frag with Fragment.output = [] } in
    Alcotest.(check int) "count = |rows|" (Table.n_rows (Naive.rows full))
      (Naive.count full)
  done

let suite =
  [
    Alcotest.test_case "hash join basics" `Quick test_hash_join_basics;
    Alcotest.test_case "hash join count" `Quick test_hash_join_count_matches;
    Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
    Alcotest.test_case "nulls never join" `Quick test_nulls_never_join;
    Alcotest.test_case "filter input" `Quick test_filter_input;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "cartesian" `Quick test_cartesian;
    Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
    Alcotest.test_case "node stats" `Quick test_node_stats_actuals;
    Alcotest.test_case "index NL = hash result" `Quick test_index_nl_equals_hash;
    Alcotest.test_case "stats cover all nodes (index NL)" `Quick
      test_stats_complete_index_nl;
    Alcotest.test_case "stats cover all nodes (zero rows)" `Quick
      test_stats_complete_zero_rows;
    Alcotest.test_case "stats cover all nodes (optimized plans)" `Quick
      test_stats_complete_optimized_plans;
    Alcotest.test_case "naive count = rows" `Quick test_naive_count_matches_rows;
    Alcotest.test_case "filter cache keyed by predicates" `Quick
      test_filter_cache_keyed_by_predicates;
    Alcotest.test_case "parallel hash join = sequential" `Quick
      test_parallel_hash_join_matches;
    Alcotest.test_case "parallel hash join row limit" `Quick
      test_parallel_hash_join_limit;
    Alcotest.test_case "run with pool = sequential" `Quick test_run_with_pool_matches;
    Alcotest.test_case "pipelined intermediates counter" `Quick
      test_pipelined_intermediates_counter;
    Alcotest.test_case "partition reuse across QuerySplit steps" `Quick
      test_partition_reuse_across_steps;
  ]
