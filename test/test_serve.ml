(* The serving front end: stress under concurrent mixed-cost load,
   scheduler starvation/ordering properties, deadline and cancellation
   paths, and the shared epoch-stamped plan cache. The recurring
   assertion is the differential one: whatever the admission order,
   policy, pool width or cache state, every Completed digest must be
   byte-identical to plain single-session execution. *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Optimizer = Qs_plan.Optimizer
module Plan_cache = Qs_plan.Plan_cache
module Executor = Qs_exec.Executor
module Strategy = Qs_core.Strategy
module Scheduler = Qs_serve.Scheduler
module Server = Qs_serve.Server
module Metrics = Qs_obs.Metrics
module Fuzz = Qs_workload.Fuzz
module Pool = Qs_util.Pool
module Cancel = Qs_util.Cancel
module Rng = Qs_util.Rng

let shop_env ?n_orders () =
  let cat = Fixtures.shop_catalog ?n_orders () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  (cat, Stats_registry.create cat)

(* single-session reference: the exact path the server's fast path takes,
   minus every serving concern *)
let expected_digest registry q =
  let ctx = Strategy.make_ctx registry Estimator.default in
  let frag = Strategy.fragment_of_query ctx q in
  let r =
    Optimizer.optimize (Stats_registry.catalog registry) Estimator.default frag
  in
  let tbl, _ = Executor.run r.Optimizer.plan in
  Table.digest (Executor.project ~name:q.Query.name tbl q.Query.output)

let check_status ?(msg = "status") expected (r : Server.result) =
  let show = function
    | Server.Completed -> "completed"
    | Server.Deadline_exceeded -> "deadline_exceeded"
    | Server.Cancelled -> "cancelled"
    | Server.Failed e -> "failed: " ^ e
  in
  Alcotest.(check string) msg (show expected) (show r.Server.status)

(* --- stress: 500+ concurrent mixed-cost queries ----------------------- *)

let test_stress_concurrent () =
  let cat, registry = shop_env () in
  let distinct = Fuzz.queries cat ~seed:20230807 ~n:60 () in
  let expect =
    List.map (fun (q : Query.t) -> (q.Query.name, expected_digest registry q))
      distinct
  in
  let arr = Array.of_list distinct in
  let stream = List.init 520 (fun i -> arr.(i mod Array.length arr)) in
  Pool.with_pool ~domains:2 (fun pool ->
      let server = Server.create ~pool registry Estimator.default in
      let tickets =
        List.mapi
          (fun i q ->
            Server.submit server
              ~session:("s" ^ string_of_int (i mod 4))
              q)
          stream
      in
      let rs = List.map (Server.await server) tickets in
      Server.drain server;
      Alcotest.(check int) "all queries completed" 520 (List.length rs);
      List.iter
        (fun (r : Server.result) ->
          check_status Server.Completed r;
          match r.Server.digest with
          | None -> Alcotest.fail "completed without digest"
          | Some d ->
              Alcotest.(check string)
                ("digest of " ^ r.Server.query)
                (List.assoc r.Server.query expect)
                d)
        rs;
      (* the pool drained back to idle *)
      Alcotest.(check int) "no queued pool jobs" 0 (Pool.pending pool);
      let m = Server.metrics server in
      Alcotest.(check int) "metrics completed" 520 (Metrics.counter m "completed");
      Alcotest.(check int) "metrics submitted" 520 (Metrics.counter m "submitted");
      (* 4 sessions, round-robin admission *)
      Alcotest.(check int) "session s0 share" 130 (Metrics.counter m "queries:s0"))

(* --- scheduler properties (pure, fixed seed) -------------------------- *)

(* Adversarial arrival pattern: one expensive entry, then a steady stream
   of cheaper arrivals every round. Aging must still dispatch the
   expensive entry within [aging_rounds + 2] rounds — the provable bound
   when it is the only aged entry. *)
let test_starvation_freedom () =
  let rng = Rng.create 42 in
  let aging_rounds = 6 in
  for _trial = 0 to 49 do
    let next_id = ref 0 in
    let fresh cost =
      let e = Scheduler.entry ~id:!next_id ~cost () in
      incr next_id;
      e
    in
    let heavy_cost = 1000.0 +. float_of_int (Rng.int rng 1000) in
    let queue = ref [ fresh heavy_cost ] in
    let heavy_id = 0 in
    let dispatched_at = ref None in
    let round = ref 0 in
    while Option.is_none !dispatched_at && !round < 100 do
      (* two cheap arrivals per round: the queue only ever grows *)
      queue :=
        !queue
        @ [
            fresh (float_of_int (Rng.int rng 900));
            fresh (float_of_int (Rng.int rng 900));
          ];
      incr round;
      match Scheduler.pick Scheduler.Cost_aware ~aging_rounds !queue with
      | None -> Alcotest.fail "pick returned None on non-empty queue"
      | Some e ->
          queue :=
            List.filter
              (fun (x : unit Scheduler.entry) -> x.Scheduler.id <> e.Scheduler.id)
              !queue;
          if e.Scheduler.id = heavy_id then dispatched_at := Some !round
    done;
    match !dispatched_at with
    | None -> Alcotest.fail "heavy entry starved"
    | Some r ->
        if r > aging_rounds + 2 then
          Alcotest.failf "heavy dispatched only at round %d (aging %d)" r
            aging_rounds
  done

(* Within one aging window, cost-aware picks exactly by (cost, id). *)
let test_pick_order_deterministic () =
  let rng = Rng.create 7 in
  for _trial = 0 to 19 do
    let entries =
      List.init 12 (fun id ->
          Scheduler.entry ~id ~cost:(float_of_int (Rng.int rng 5)) ())
    in
    let by_cost =
      List.sort
        (fun (a : unit Scheduler.entry) b ->
          compare (a.Scheduler.cost, a.Scheduler.id)
            (b.Scheduler.cost, b.Scheduler.id))
        entries
      |> List.map (fun (e : unit Scheduler.entry) -> e.Scheduler.id)
    in
    let queue = ref entries in
    let picked = ref [] in
    while !queue <> [] do
      match
        Scheduler.pick Scheduler.Cost_aware ~aging_rounds:1000 !queue
      with
      | None -> Alcotest.fail "pick returned None"
      | Some e ->
          picked := e.Scheduler.id :: !picked;
          queue :=
            List.filter
              (fun (x : unit Scheduler.entry) ->
                x.Scheduler.id <> e.Scheduler.id)
              !queue
    done;
    Alcotest.(check (list int)) "picked by (cost,id)" by_cost (List.rev !picked)
  done

(* FIFO and cost-aware must produce identical result digests while
   releasing the queue in different orders. Admission is done on a paused
   server so both policies see the same fully-built queue. *)
let test_policy_digest_equivalence () =
  let cat, registry = shop_env ~n_orders:600 () in
  let queries = Fuzz.queries cat ~seed:11 ~n:10 () in
  let run policy =
    Pool.with_pool ~domains:1 (fun pool ->
        let config =
          {
            Server.default_config with
            Server.concurrency = 1;
            policy;
            aging_rounds = 1000;
            autostart = false;
          }
        in
        let server = Server.create ~config ~pool registry Estimator.default in
        let tickets =
          List.map (fun q -> Server.submit server ~session:"s" q) queries
        in
        Server.start server;
        let rs = List.map (Server.await server) tickets in
        Server.drain server;
        List.iter (check_status Server.Completed) rs;
        ( List.map
            (fun (r : Server.result) -> (r.Server.query, r.Server.digest))
            rs,
          Server.dispatch_order server ))
  in
  let fifo_digests, fifo_order = run Scheduler.Fifo in
  let ca_digests, ca_order = run Scheduler.Cost_aware in
  Alcotest.(check (list (pair string (option string))))
    "identical digests under both policies" fifo_digests ca_digests;
  Alcotest.(check (list int))
    "fifo releases in admission order"
    (List.init (List.length queries) Fun.id)
    fifo_order;
  if fifo_order = ca_order then
    Alcotest.fail
      "cost-aware released the queue in FIFO order — corpus has no cost \
       spread to schedule on"

(* --- deadlines and cancellation --------------------------------------- *)

let test_deadline_zero () =
  let _cat, registry = shop_env ~n_orders:400 () in
  let q = Fixtures.shop_query () in
  Pool.with_pool ~domains:1 (fun pool ->
      let server = Server.create ~pool registry Estimator.default in
      let t = Server.submit server ~session:"s" ~deadline:0.0 q in
      let r = Server.await server t in
      check_status Server.Deadline_exceeded r;
      Alcotest.(check (option string)) "no digest" None r.Server.digest;
      Alcotest.(check int) "no rows" 0 r.Server.row_count;
      (* dead-on-arrival: never executed *)
      if r.Server.exec_time > 0.05 then
        Alcotest.failf "expired query still ran for %.3fs" r.Server.exec_time;
      (* the server is not poisoned: the same statement completes next *)
      let r2 = Server.await server (Server.submit server ~session:"s" q) in
      check_status Server.Completed r2;
      Alcotest.(check (option string))
        "digest after expiry" (Some (expected_digest registry q))
        r2.Server.digest;
      Server.drain server)

let test_generous_deadline_completes () =
  let _cat, registry = shop_env ~n_orders:400 () in
  let q = Fixtures.shop_query () in
  Pool.with_pool ~domains:1 (fun pool ->
      let server = Server.create ~pool registry Estimator.default in
      let r =
        Server.await server (Server.submit server ~session:"s" ~deadline:60.0 q)
      in
      check_status Server.Completed r;
      Server.drain server)

let test_cancel_before_start () =
  let _cat, registry = shop_env ~n_orders:400 () in
  let q = Fixtures.shop_query () in
  Pool.with_pool ~domains:1 (fun pool ->
      let config = { Server.default_config with Server.autostart = false } in
      let server = Server.create ~config ~pool registry Estimator.default in
      let token = Cancel.create () in
      let t = Server.submit server ~session:"s" ~cancel:token q in
      Cancel.cancel token;
      Server.start server;
      let r = Server.await server t in
      check_status Server.Cancelled r;
      Alcotest.(check (option string)) "no digest" None r.Server.digest;
      (* registry / plan cache / pool all stay consistent for the next query *)
      let r2 = Server.await server (Server.submit server ~session:"s" q) in
      check_status Server.Completed r2;
      Alcotest.(check (option string))
        "digest after cancellation" (Some (expected_digest registry q))
        r2.Server.digest;
      Alcotest.(check bool) "plan served from cache" true r2.Server.cache_hit;
      Server.drain server;
      Alcotest.(check int) "pool idle" 0 (Pool.pending pool))

(* Mid-join cancellation at the executor level: two 20k-row relations so
   the scan crosses the 16384-row batch boundary where the token is
   polled. The cancelled run must unwind with [Cancel.Cancelled], and an
   immediate re-run of the same plan must produce the pre-cancellation
   digest — no scratch/stats state leaks out of the unwound join. *)
let test_cancel_mid_join () =
  let n = 20_000 in
  let cat = Catalog.create () in
  let mk name =
    Table.create ~name
      ~schema:(Schema.make name [ ("id", Value.TInt); ("fk", Value.TInt) ])
      (Array.init n (fun j ->
           [| Value.Int (j + 1); Value.Int (1 + (j * 13 mod n)) |]))
  in
  Catalog.add_table cat ~pk:"id" (mk "big_a");
  Catalog.add_table cat ~pk:"id" (mk "big_b");
  Catalog.add_fk cat ~from_table:"big_b" ~from_column:"fk" ~to_table:"big_a"
    ~to_column:"id";
  Catalog.build_indexes cat Catalog.Pk_fk;
  let registry = Stats_registry.create cat in
  let q =
    Query.make ~name:"big_join"
      [
        { Query.alias = "a"; table = "big_a" };
        { Query.alias = "b"; table = "big_b" };
      ]
      [ Expr.eq (Expr.col "b" "fk") (Expr.col "a" "id") ]
  in
  let ctx = Strategy.make_ctx registry Estimator.default in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  let clean () = Table.digest (fst (Executor.run plan)) in
  let before = clean () in
  let token = Cancel.create () in
  Cancel.cancel token;
  (match Executor.run ~cancel:token plan with
  | _ -> Alcotest.fail "cancelled run returned a result"
  | exception Cancel.Cancelled -> ());
  Alcotest.(check string) "digest unchanged after unwound join" before (clean ())

(* --- the shared plan cache -------------------------------------------- *)

let test_cache_cross_session_and_invalidate () =
  let _cat, registry = shop_env ~n_orders:400 () in
  let q = Fixtures.shop_query () in
  Pool.with_pool ~domains:1 (fun pool ->
      let server = Server.create ~pool registry Estimator.default in
      let r1 = Server.await server (Server.submit server ~session:"a" q) in
      let r2 = Server.await server (Server.submit server ~session:"b" q) in
      Alcotest.(check bool) "first resolve misses" false r1.Server.cache_hit;
      Alcotest.(check bool) "cross-session hit" true r2.Server.cache_hit;
      Alcotest.(check (option string))
        "served digests agree" r1.Server.digest r2.Server.digest;
      let cache = Server.plan_cache server in
      Alcotest.(check int) "one miss" 1 (Plan_cache.misses cache);
      Alcotest.(check int) "one hit" 1 (Plan_cache.hits cache);
      (* an epoch bump re-keys the statement: forced miss, fresh plan *)
      Stats_registry.invalidate registry "orders";
      let r3 = Server.await server (Server.submit server ~session:"a" q) in
      Alcotest.(check bool) "miss after invalidate" false r3.Server.cache_hit;
      Alcotest.(check int) "second miss" 2 (Plan_cache.misses cache);
      Alcotest.(check (option string))
        "digest stable across re-plan" r1.Server.digest r3.Server.digest;
      Server.drain server)

(* Cached-vs-cold differential over a 200-query corpus: every statement
   is served twice — the second submission must hit the cache and both
   must match cold single-session execution. *)
let test_cache_differential_corpus () =
  let cat, registry = shop_env ~n_orders:400 () in
  let queries = Fuzz.queries cat ~seed:20230617 ~n:200 () in
  Pool.with_pool ~domains:2 (fun pool ->
      let server = Server.create ~pool registry Estimator.default in
      List.iter
        (fun (q : Query.t) ->
          let cold = expected_digest registry q in
          let r1 = Server.await server (Server.submit server ~session:"x" q) in
          let r2 = Server.await server (Server.submit server ~session:"y" q) in
          check_status ~msg:("cold-serve " ^ q.Query.name) Server.Completed r1;
          check_status ~msg:("cached-serve " ^ q.Query.name) Server.Completed r2;
          Alcotest.(check bool)
            ("second serve of " ^ q.Query.name ^ " hits cache")
            true r2.Server.cache_hit;
          Alcotest.(check (option string))
            ("cold digest of " ^ q.Query.name)
            (Some cold) r1.Server.digest;
          Alcotest.(check (option string))
            ("cached digest of " ^ q.Query.name)
            (Some cold) r2.Server.digest)
        queries;
      Server.drain server;
      let cache = Server.plan_cache server in
      (* the cache keys on SQL text: queries with identical rendered
         statements share one entry even under different display names *)
      let distinct_sql =
        List.length (List.sort_uniq compare (List.map Query.to_sql queries))
      in
      Alcotest.(check int)
        "misses = distinct statements" distinct_sql
        (Plan_cache.misses cache))

(* --- pool substrate additions ----------------------------------------- *)

let test_pool_submit_help_until () =
  Pool.with_pool ~domains:2 (fun pool ->
      let done_ = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.submit pool (fun () -> ignore (Atomic.fetch_and_add done_ 1))
      done;
      Pool.help_until pool (fun () -> Atomic.get done_ = 50);
      Alcotest.(check int) "all jobs ran" 50 (Atomic.get done_);
      Alcotest.(check int) "queue drained" 0 (Pool.pending pool))

let test_pool_submit_contains_exceptions () =
  Pool.with_pool ~domains:1 (fun pool ->
      let after = Atomic.make false in
      Pool.submit pool (fun () -> failwith "contained");
      Pool.submit pool (fun () -> Atomic.set after true);
      Pool.help_until pool (fun () -> Atomic.get after);
      Alcotest.(check bool) "pool survives a raising job" true
        (Atomic.get after))

let suite =
  [
    Alcotest.test_case "stress 520 concurrent mixed queries" `Slow
      test_stress_concurrent;
    Alcotest.test_case "scheduler starvation freedom" `Quick
      test_starvation_freedom;
    Alcotest.test_case "scheduler picks by (cost,id)" `Quick
      test_pick_order_deterministic;
    Alcotest.test_case "fifo vs cost-aware digest equivalence" `Quick
      test_policy_digest_equivalence;
    Alcotest.test_case "zero deadline exceeds without executing" `Quick
      test_deadline_zero;
    Alcotest.test_case "generous deadline completes" `Quick
      test_generous_deadline_completes;
    Alcotest.test_case "cancel before start" `Quick test_cancel_before_start;
    Alcotest.test_case "cancel mid-join leaves state consistent" `Quick
      test_cancel_mid_join;
    Alcotest.test_case "plan cache cross-session + invalidate" `Quick
      test_cache_cross_session_and_invalidate;
    Alcotest.test_case "plan cache differential 200q corpus" `Slow
      test_cache_differential_corpus;
    Alcotest.test_case "pool submit/help_until" `Quick
      test_pool_submit_help_until;
    Alcotest.test_case "pool submit contains exceptions" `Quick
      test_pool_submit_contains_exceptions;
  ]
