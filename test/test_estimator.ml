(* Cardinality estimators: default formulas, oracle, noise, bounds,
   learned-simulator fallback. *)

module Value = Qs_storage.Value
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Strategy = Qs_core.Strategy
module Naive = Qs_exec.Naive
module Rng = Qs_util.Rng

let ctx_and_frag () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  (ctx, Strategy.fragment_of_query ctx (Fixtures.shop_query ()))

let test_single_input_filtered_rows () =
  let ctx, frag = ctx_and_frag () in
  ignore ctx;
  let c = Fragment.find_input frag "c" in
  let est = Estimator.default.Estimator.card (Fragment.restrict frag [ c ]) in
  (* 120 customers over 4 cities; city filter should land near 30 *)
  Alcotest.(check bool) "around 30" true (est > 10.0 && est < 70.0)

let test_unfiltered_input_exact () =
  let _, frag = ctx_and_frag () in
  let o = Fragment.find_input frag "o" in
  let est = Estimator.default.Estimator.card (Fragment.restrict frag [ o ]) in
  Alcotest.(check (float 1.0)) "exact row count" 500.0 est

let test_pk_fk_join_card () =
  let _, frag = ctx_and_frag () in
  let o = Fragment.find_input frag "o" in
  let p = Fragment.find_input frag "p" in
  let est = Estimator.default.Estimator.card (Fragment.restrict frag [ o; p ]) in
  (* PK–FK join keeps the FK side cardinality: ~500 *)
  Alcotest.(check bool) "non-expanding" true (est > 250.0 && est < 800.0)

let test_empty_input_zero () =
  let _, ctx = Fixtures.shop_ctx () in
  let q =
    Query.make ~name:"none"
      [ { Query.alias = "c"; table = "customers" } ]
      [ Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "atlantis") ]
  in
  let frag = Strategy.fragment_of_query ctx q in
  let est = Estimator.default.Estimator.card frag in
  (* unknown constant: tiny but positive estimate *)
  Alcotest.(check bool) "small" true (est >= 0.0 && est < 10.0)

let test_oracle_matches_naive () =
  let _, frag = ctx_and_frag () in
  let oracle = Estimator.oracle ~exec:(fun f -> Naive.count f) in
  let est = oracle.Estimator.card frag in
  let truth = Naive.count frag in
  Alcotest.(check (float 0.0)) "oracle exact" (float_of_int truth) est

let test_oracle_memoizes () =
  let _, frag = ctx_and_frag () in
  let calls = ref 0 in
  let exec f =
    incr calls;
    Naive.count f
  in
  let oracle = Estimator.oracle ~exec in
  ignore (oracle.Estimator.card frag);
  ignore (oracle.Estimator.card frag);
  Alcotest.(check int) "one exec" 1 !calls

let test_noisy_deterministic_and_spread () =
  let _, frag = ctx_and_frag () in
  let exec f = Naive.count f in
  let n1 = Estimator.noisy ~seed:5 ~mu:0.0 ~sigma:2.0 ~exec in
  let n2 = Estimator.noisy ~seed:5 ~mu:0.0 ~sigma:2.0 ~exec in
  Alcotest.(check (float 1e-9)) "deterministic per seed"
    (n1.Estimator.card frag) (n2.Estimator.card frag);
  let n3 = Estimator.noisy ~seed:6 ~mu:0.0 ~sigma:2.0 ~exec in
  Alcotest.(check bool) "different seed differs" true
    (n1.Estimator.card frag <> n3.Estimator.card frag)

let test_noisy_mu_shifts () =
  let _, frag = ctx_and_frag () in
  let exec f = Naive.count f in
  (* with sigma ~ 0 the estimate must be ~ 2^mu * true *)
  let truth = float_of_int (Naive.count frag) in
  let up = Estimator.noisy ~seed:5 ~mu:2.0 ~sigma:0.0001 ~exec in
  let v = up.Estimator.card frag in
  Alcotest.(check bool) "2^2x" true (v /. truth > 3.5 && v /. truth < 4.5)

let test_pessimistic_upper_bound () =
  (* the pessimistic estimate must upper-bound the true cardinality on a
     batch of random queries *)
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  ignore cat;
  let rng = Rng.create 123 in
  for _ = 1 to 25 do
    let q = Fixtures.random_shop_query rng in
    let frag = Strategy.fragment_of_query ctx q in
    let bound = Estimator.pessimistic.Estimator.card frag in
    let truth = float_of_int (Naive.count frag) in
    if bound < truth then
      Alcotest.failf "pessimistic %.0f below truth %.0f for %s" bound truth
        (Query.to_sql q)
  done

let test_learned_supports () =
  let _, frag = ctx_and_frag () in
  (* shop_query has a string filter (city = oslo) -> unsupported *)
  Alcotest.(check bool) "string filter unsupported" false
    (Estimator.supports_learned Estimator.Neurocard frag);
  let no_string =
    { frag with
      Fragment.inputs =
        List.map (fun i -> { i with Fragment.filters = [] }) frag.Fragment.inputs }
  in
  Alcotest.(check bool) "numeric-only supported" true
    (Estimator.supports_learned Estimator.Neurocard no_string);
  Alcotest.(check bool) "mscn join-width limit" true
    (Estimator.supports_learned Estimator.Mscn no_string);
  let widened =
    { no_string with
      Fragment.inputs = no_string.Fragment.inputs @ no_string.Fragment.inputs } in
  Alcotest.(check bool) "mscn rejects 8 rels" false
    (Estimator.supports_learned Estimator.Mscn widened)

let test_learned_fallback_equals_default () =
  let _, frag = ctx_and_frag () in
  let learned = Estimator.learned Estimator.Deepdb ~seed:1 ~exec:(fun f -> Naive.count f) in
  (* unsupported fragment (string filter) must fall back to the default *)
  Alcotest.(check (float 1e-6)) "fallback"
    (Estimator.default.Estimator.card frag)
    (learned.Estimator.card frag)

let test_learned_close_to_truth_when_supported () =
  let _, frag = ctx_and_frag () in
  let no_string =
    { frag with
      Fragment.inputs =
        List.map (fun i -> { i with Fragment.filters = [] }) frag.Fragment.inputs }
  in
  let learned = Estimator.learned Estimator.Neurocard ~seed:1 ~exec:(fun f -> Naive.count f) in
  let est = learned.Estimator.card no_string in
  let truth = float_of_int (Naive.count no_string) in
  let q_err = Float.max (est /. truth) (truth /. est) in
  Alcotest.(check bool) "within 4x" true (q_err < 4.0)

let test_join_pred_selectivity_range () =
  let _, frag = ctx_and_frag () in
  List.iter
    (fun p ->
      let s = Estimator.join_pred_selectivity frag p in
      Alcotest.(check bool) "in (0,1]" true (s > 0.0 && s <= 1.0))
    frag.Fragment.preds

let suite =
  [
    Alcotest.test_case "filtered rows" `Quick test_single_input_filtered_rows;
    Alcotest.test_case "unfiltered exact" `Quick test_unfiltered_input_exact;
    Alcotest.test_case "pk-fk join card" `Quick test_pk_fk_join_card;
    Alcotest.test_case "unknown constant" `Quick test_empty_input_zero;
    Alcotest.test_case "oracle = naive" `Quick test_oracle_matches_naive;
    Alcotest.test_case "oracle memoizes" `Quick test_oracle_memoizes;
    Alcotest.test_case "noisy deterministic" `Quick test_noisy_deterministic_and_spread;
    Alcotest.test_case "noisy mu shift" `Quick test_noisy_mu_shifts;
    Alcotest.test_case "pessimistic upper bound" `Quick test_pessimistic_upper_bound;
    Alcotest.test_case "learned support detection" `Quick test_learned_supports;
    Alcotest.test_case "learned fallback" `Quick test_learned_fallback_equals_default;
    Alcotest.test_case "learned near truth" `Quick test_learned_close_to_truth_when_supported;
    Alcotest.test_case "join sel range" `Quick test_join_pred_selectivity_range;
  ]
