(* QuerySplit end-to-end: Theorem 1 (result equivalence with direct
   execution) as a property, across all QSA × SSA policies; the loop's
   bookkeeping; the §6.4 statistics toggle; timeout behaviour. *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit
module Qsa = Qs_core.Qsa
module Ssa = Qs_core.Ssa
module Naive = Qs_exec.Naive
module Rng = Qs_util.Rng

let truth ctx q =
  let frag = Strategy.fragment_of_query ctx q in
  Naive.rows frag

let run_qs ?(config = Querysplit.default_config) ctx q =
  ((Querysplit.strategy config).Strategy.run ctx q).Strategy.result

let test_matches_truth_on_shop () =
  let _, ctx = Fixtures.shop_ctx () in
  let q = Fixtures.shop_query () in
  Alcotest.(check bool) "same relation" true
    (Fixtures.tables_equal (truth ctx q) (run_qs ctx q))

let test_all_policy_combinations () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  let q = Fixtures.shop_query () in
  let expected = truth ctx q in
  List.iter
    (fun qsa ->
      List.iter
        (fun ssa ->
          let got = run_qs ~config:{ Querysplit.default_config with Querysplit.qsa; ssa } ctx q in
          if not (Fixtures.tables_equal expected got) then
            Alcotest.failf "mismatch under %s/%s" (Qsa.policy_name qsa)
              (Ssa.policy_name ssa))
        (Ssa.all_phi @ [ Ssa.Global_deep ]))
    Qsa.all_policies

let test_single_relation_query () =
  let _, ctx = Fixtures.shop_ctx () in
  let q =
    Query.make ~name:"one"
      ~output:[ { Expr.rel = "c"; name = "city" } ]
      [ { Query.alias = "c"; table = "customers" } ]
      [ Expr.Cmp (Expr.Eq, Expr.col "c" "vip", Expr.Const (Qs_storage.Value.Bool true)) ]
  in
  Alcotest.(check bool) "singleton works" true
    (Fixtures.tables_equal (truth ctx q) (run_qs ctx q))

let test_cartesian_isolated_results () =
  let _, ctx = Fixtures.shop_ctx () in
  let q =
    Query.make ~name:"cart"
      [
        { Query.alias = "c"; table = "customers" };
        { Query.alias = "p"; table = "products" };
      ]
      [
        Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "kiel");
        Expr.Cmp (Expr.Eq, Expr.col "p" "kind", Expr.vstr "tool");
      ]
  in
  Alcotest.(check bool) "cartesian merge" true
    (Fixtures.tables_equal (truth ctx q) (run_qs ctx q))

let test_iteration_count_matches_subqueries () =
  let _, ctx = Fixtures.shop_ctx () in
  let q = Fixtures.shop_query () in
  let subs = Qsa.split (Strategy.catalog ctx) q Qsa.RCenter in
  let outcome = (Querysplit.strategy Querysplit.default_config).Strategy.run ctx q in
  (* one iteration per subquery unless subqueries get absorbed *)
  Alcotest.(check bool) "iterations <= subqueries" true
    (List.length outcome.Strategy.iterations <= List.length subs);
  Alcotest.(check bool) "at least one iteration" true
    (List.length outcome.Strategy.iterations >= 1);
  (* all but the final iteration materialize *)
  let mats = List.filter (fun i -> i.Strategy.materialized) outcome.Strategy.iterations in
  Alcotest.(check int) "mats = iters - 1"
    (List.length outcome.Strategy.iterations - 1)
    (List.length mats)

let test_stats_toggle_same_result () =
  let cat = Fixtures.shop_catalog () in
  let registry = Qs_stats.Stats_registry.create cat in
  let q = Fixtures.shop_query () in
  let with_stats =
    run_qs (Strategy.make_ctx ~collect_stats:true registry Estimator.default) q
  in
  let without =
    run_qs (Strategy.make_ctx ~collect_stats:false registry Estimator.default) q
  in
  Alcotest.(check bool) "same result either way" true
    (Fixtures.tables_equal with_stats without)

let test_timeout_reported () =
  let _, ctx0 = Fixtures.shop_ctx ~n_orders:4000 () in
  let ctx = { ctx0 with Strategy.deadline = ref (Some (Qs_util.Timer.now ())) } in
  let outcome =
    (Querysplit.strategy Querysplit.default_config).Strategy.run ctx (Fixtures.shop_query ())
  in
  Alcotest.(check bool) "timed out" true outcome.Strategy.timed_out

let test_subquery_plans_hook () =
  let _, ctx = Fixtures.shop_ctx () in
  let plans = Querysplit.subquery_plans ctx (Fixtures.shop_query ()) Querysplit.default_config in
  Alcotest.(check bool) "at least one subquery" true (List.length plans >= 1);
  List.iter
    (fun (_, cost, rows) ->
      Alcotest.(check bool) "positive estimates" true (cost > 0.0 && rows >= 0.0))
    plans

let test_trace_estimates_recorded () =
  let _, ctx = Fixtures.shop_ctx () in
  let outcome =
    (Querysplit.strategy Querysplit.default_config).Strategy.run ctx (Fixtures.shop_query ())
  in
  List.iter
    (fun (it : Strategy.iteration) ->
      Alcotest.(check bool) "actual >= 0" true (it.Strategy.actual_rows >= 0);
      Alcotest.(check bool) "est >= 0" true (it.Strategy.est_rows >= 0.0))
    outcome.Strategy.iterations

(* Theorem 1 as a property: on random queries, QuerySplit under a random
   policy pair produces exactly the direct execution's result. *)
let qcheck_theorem1 =
  QCheck.Test.make ~name:"Theorem 1: QuerySplit = direct execution" ~count:30
    QCheck.(triple (int_range 0 100_000) (int_range 0 2) (int_range 0 5))
    (fun (seed, qsa_i, ssa_i) ->
      let _, ctx = Fixtures.shop_ctx ~n_orders:400 () in
      let rng = Rng.create seed in
      let q = Fixtures.random_shop_query rng in
      let qsa = List.nth Qsa.all_policies qsa_i in
      let ssa = List.nth (Ssa.all_phi @ [ Ssa.Global_deep ]) ssa_i in
      let got = run_qs ~config:{ Querysplit.default_config with Querysplit.qsa; ssa } ctx q in
      Fixtures.tables_equal (truth ctx q) got)

(* Theorem 1 on the JOB-like workload against the Cinema data *)
let qcheck_theorem1_cinema =
  QCheck.Test.make ~name:"Theorem 1 on Cinema queries" ~count:1 QCheck.unit
    (fun () ->
      let cat = Lazy.force Fixtures.cinema in
      let registry = Qs_stats.Stats_registry.create cat in
      let ctx = Strategy.make_ctx registry Estimator.default in
      List.for_all
        (fun q ->
          let expected = truth ctx q in
          Fixtures.tables_equal expected (run_qs ctx q))
        (Lazy.force Fixtures.cinema_queries))

let suite =
  [
    Alcotest.test_case "matches truth" `Quick test_matches_truth_on_shop;
    Alcotest.test_case "all policy combos" `Quick test_all_policy_combinations;
    Alcotest.test_case "single relation" `Quick test_single_relation_query;
    Alcotest.test_case "cartesian isolated" `Quick test_cartesian_isolated_results;
    Alcotest.test_case "iteration bookkeeping" `Quick test_iteration_count_matches_subqueries;
    Alcotest.test_case "stats toggle" `Quick test_stats_toggle_same_result;
    Alcotest.test_case "timeout" `Quick test_timeout_reported;
    Alcotest.test_case "subquery_plans hook" `Quick test_subquery_plans_hook;
    Alcotest.test_case "trace estimates" `Quick test_trace_estimates_recorded;
    QCheck_alcotest.to_alcotest qcheck_theorem1;
    QCheck_alcotest.to_alcotest qcheck_theorem1_cinema;
  ]
