(* Non-SPJ operators: aggregation, union all, semi/anti join, flatten. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Relop = Qs_exec.Relop
module Logical = Qs_plan.Logical
module Expr = Qs_query.Expr

let sales () =
  Table.of_rows ~name:"s"
    ~schema:
      (Schema.make "s" [ ("region", Value.TStr); ("amount", Value.TInt); ("disc", Value.TFloat) ])
    [
      [| Value.Str "n"; Value.Int 10; Value.Float 0.1 |];
      [| Value.Str "n"; Value.Int 20; Value.Float 0.2 |];
      [| Value.Str "s"; Value.Int 5; Value.Float 0.0 |];
      [| Value.Str "s"; Value.Null; Value.Float 0.3 |];
    ]

let agg fn arg label = { Logical.fn; arg; label }

let find_row (t : Table.t) key =
  Array.to_list (Table.to_rows t)
  |> List.find (fun row -> Value.to_string row.(0) = key)

let test_group_by_sum_count () =
  let out =
    Relop.aggregate ~name:"g"
      ~group_by:[ { Expr.rel = "s"; name = "region" } ]
      ~aggs:
        [
          agg Logical.Sum (Some (Expr.col "s" "amount")) "total";
          agg Logical.Count_star None "rows";
          agg Logical.Count (Some (Expr.col "s" "amount")) "non_null";
        ]
      (sales ())
  in
  Alcotest.(check int) "2 groups" 2 (Table.n_rows out);
  let n = find_row out "n" in
  Alcotest.(check bool) "sum n = 30" true (n.(1) = Value.Int 30);
  Alcotest.(check bool) "count n = 2" true (n.(2) = Value.Int 2);
  let s = find_row out "s" in
  Alcotest.(check bool) "sum s = 5" true (s.(1) = Value.Int 5);
  Alcotest.(check bool) "count* counts null row" true (s.(2) = Value.Int 2);
  Alcotest.(check bool) "count(amount) skips null" true (s.(3) = Value.Int 1)

let test_min_max_avg () =
  let out =
    Relop.aggregate ~name:"g" ~group_by:[]
      ~aggs:
        [
          agg Logical.Min (Some (Expr.col "s" "amount")) "mn";
          agg Logical.Max (Some (Expr.col "s" "amount")) "mx";
          agg Logical.Avg (Some (Expr.col "s" "amount")) "avg";
        ]
      (sales ())
  in
  Alcotest.(check int) "one row" 1 (Table.n_rows out);
  let row = Table.row out 0 in
  Alcotest.(check bool) "min 5" true (row.(0) = Value.Int 5);
  Alcotest.(check bool) "max 20" true (row.(1) = Value.Int 20);
  (match row.(2) with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "avg over non-null" (35.0 /. 3.0) f
  | _ -> Alcotest.fail "avg should be float")

let test_global_agg_on_empty_input () =
  let empty =
    Table.create ~name:"s" ~schema:(Schema.make "s" [ ("amount", Value.TInt) ]) [||]
  in
  let out =
    Relop.aggregate ~name:"g" ~group_by:[]
      ~aggs:
        [
          agg Logical.Count_star None "rows";
          agg Logical.Sum (Some (Expr.col "s" "amount")) "total";
        ]
      empty
  in
  Alcotest.(check int) "one row even when empty" 1 (Table.n_rows out);
  Alcotest.(check bool) "count 0" true (Table.get out ~row:0 ~col:0 = Value.Int 0);
  Alcotest.(check bool) "sum null" true (Value.is_null (Table.get out ~row:0 ~col:1))

let test_group_by_empty_input_no_rows () =
  let empty =
    Table.create ~name:"s"
      ~schema:(Schema.make "s" [ ("region", Value.TStr); ("amount", Value.TInt) ])
      [||]
  in
  let out =
    Relop.aggregate ~name:"g"
      ~group_by:[ { Expr.rel = "s"; name = "region" } ]
      ~aggs:[ agg Logical.Count_star None "rows" ]
      empty
  in
  Alcotest.(check int) "no groups" 0 (Table.n_rows out)

let test_agg_with_arith_expression () =
  let revenue =
    Expr.Arith
      (Expr.Mul, Expr.col "s" "amount",
       Expr.Arith (Expr.Sub, Expr.vfloat 1.0, Expr.col "s" "disc"))
  in
  let out =
    Relop.aggregate ~name:"g" ~group_by:[]
      ~aggs:[ agg Logical.Sum (Some revenue) "rev" ]
      (sales ())
  in
  match Table.get out ~row:0 ~col:0 with
  | Value.Float f -> Alcotest.(check (float 1e-6)) "10*.9+20*.8+5*1" 30.0 f
  | v -> Alcotest.failf "expected float, got %s" (Value.to_string v)

let test_union_all () =
  let out = Relop.union_all ~name:"u" [ sales (); sales () ] in
  Alcotest.(check int) "8 rows" 8 (Table.n_rows out);
  Alcotest.(check bool) "flat qualified" true
    (Schema.mem out.Table.schema ~rel:"u" ~name:"s_region")

let test_union_arity_mismatch () =
  let narrow =
    Table.create ~name:"n" ~schema:(Schema.make "n" [ ("a", Value.TInt) ]) [||]
  in
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Relop.union_all ~name:"u" [ sales (); narrow ]);
       false
     with Invalid_argument _ -> true)

let people_orders () =
  let people =
    Table.of_rows ~name:"p"
      ~schema:(Schema.make "p" [ ("id", Value.TInt); ("name", Value.TStr) ])
      [
        [| Value.Int 1; Value.Str "ann" |];
        [| Value.Int 2; Value.Str "bob" |];
        [| Value.Int 3; Value.Str "eve" |];
      ]
  in
  let orders =
    Table.of_rows ~name:"o"
      ~schema:(Schema.make "o" [ ("pid", Value.TInt); ("amt", Value.TInt) ])
      [
        [| Value.Int 1; Value.Int 100 |];
        [| Value.Int 1; Value.Int 5 |];
        [| Value.Int 3; Value.Int 7 |];
      ]
  in
  (people, orders)

let test_semi_join () =
  let people, orders = people_orders () in
  let on = [ Expr.eq (Expr.col "o" "pid") (Expr.col "p" "id") ] in
  let out = Relop.semi_join ~name:"sj" ~anti:false ~left:people ~right:orders ~on in
  Alcotest.(check int) "ann and eve" 2 (Table.n_rows out)

let test_semi_join_no_duplicates () =
  (* ann has two orders but appears once *)
  let people, orders = people_orders () in
  let on = [ Expr.eq (Expr.col "o" "pid") (Expr.col "p" "id") ] in
  let out = Relop.semi_join ~name:"sj" ~anti:false ~left:people ~right:orders ~on in
  let names =
    Table.fold (fun acc r -> Value.to_string r.(1) :: acc) [] out
  in
  Alcotest.(check (list string)) "each person once" [ "ann"; "eve" ]
    (List.sort compare names)

let test_anti_join () =
  let people, orders = people_orders () in
  let on = [ Expr.eq (Expr.col "o" "pid") (Expr.col "p" "id") ] in
  let out = Relop.semi_join ~name:"aj" ~anti:true ~left:people ~right:orders ~on in
  Alcotest.(check int) "only bob" 1 (Table.n_rows out);
  Alcotest.(check string) "bob" "bob" (Value.to_string (Table.get out ~row:0 ~col:1))

let test_semi_join_residual_pred () =
  let people, orders = people_orders () in
  let on =
    [
      Expr.eq (Expr.col "o" "pid") (Expr.col "p" "id");
      Expr.Cmp (Expr.Gt, Expr.col "o" "amt", Expr.vint 50);
    ]
  in
  let out = Relop.semi_join ~name:"sj" ~anti:false ~left:people ~right:orders ~on in
  Alcotest.(check int) "only ann (amt 100)" 1 (Table.n_rows out)

let test_flatten_unique_names () =
  let joined =
    Table.create ~name:"j"
      ~schema:
        (Schema.concat
           (Schema.make "a" [ ("id", Value.TInt) ])
           (Schema.make "b" [ ("id", Value.TInt) ]))
      [| [| Value.Int 1; Value.Int 2 |] |]
  in
  let out = Relop.flatten ~name:"f" joined in
  Alcotest.(check bool) "a_id present" true (Schema.mem out.Table.schema ~rel:"f" ~name:"a_id");
  Alcotest.(check bool) "b_id present" true (Schema.mem out.Table.schema ~rel:"f" ~name:"b_id")

let suite =
  [
    Alcotest.test_case "group by sum/count" `Quick test_group_by_sum_count;
    Alcotest.test_case "min/max/avg" `Quick test_min_max_avg;
    Alcotest.test_case "global agg empty input" `Quick test_global_agg_on_empty_input;
    Alcotest.test_case "group-by empty input" `Quick test_group_by_empty_input_no_rows;
    Alcotest.test_case "agg over expression" `Quick test_agg_with_arith_expression;
    Alcotest.test_case "union all" `Quick test_union_all;
    Alcotest.test_case "union arity mismatch" `Quick test_union_arity_mismatch;
    Alcotest.test_case "semi join" `Quick test_semi_join;
    Alcotest.test_case "semi join dedup" `Quick test_semi_join_no_duplicates;
    Alcotest.test_case "anti join" `Quick test_anti_join;
    Alcotest.test_case "semi residual pred" `Quick test_semi_join_residual_pred;
    Alcotest.test_case "flatten names" `Quick test_flatten_unique_names;
  ]
