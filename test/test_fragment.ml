(* Fragments: construction, restriction, substitution, logical identity. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment
module Table_stats = Qs_stats.Table_stats
module Analyze = Qs_stats.Analyze
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Strategy = Qs_core.Strategy
module Naive = Qs_exec.Naive

let frag () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:300 () in
  Strategy.fragment_of_query ctx (Fixtures.shop_query ())

let test_of_query_shape () =
  let f = frag () in
  Alcotest.(check int) "4 inputs" 4 (List.length f.Fragment.inputs);
  Alcotest.(check int) "3 cross preds" 3 (List.length f.Fragment.preds);
  let c = Fragment.find_input f "c" in
  Alcotest.(check int) "city filter attached" 1 (List.length c.Fragment.filters);
  Alcotest.(check bool) "base" false c.Fragment.is_temp

let test_restrict_keeps_internal_preds () =
  let f = frag () in
  let sub = Fragment.restrict f [ Fragment.find_input f "o"; Fragment.find_input f "p" ] in
  Alcotest.(check int) "one pred" 1 (List.length sub.Fragment.preds);
  Alcotest.(check (list string)) "provides" [ "o"; "p" ] (List.sort compare (Fragment.provides sub))

let make_temp f aliases =
  let inputs = List.map (Fragment.input_of_alias f) aliases in
  let sub = Fragment.restrict f inputs in
  let tbl = Naive.rows { sub with Fragment.output = [] } in
  let tbl = Table.with_name tbl "T1" in
  Fragment.temp_input ~id:"T1" ~provenance:(Fragment.key sub) tbl ~provides:aliases
    ~stats:(Analyze.of_table tbl)

let test_substitute () =
  let f = frag () in
  let temp = make_temp f [ "o"; "p" ] in
  let f' = Fragment.substitute f ~temp in
  Alcotest.(check int) "3 inputs now" 3 (List.length f'.Fragment.inputs);
  (* o-p pred applied; c-o and r-p preds survive *)
  Alcotest.(check int) "2 preds left" 2 (List.length f'.Fragment.preds);
  Alcotest.(check bool) "temp present" true
    (List.exists (fun i -> i.Fragment.is_temp) f'.Fragment.inputs);
  (* provides preserved *)
  Alcotest.(check (list string)) "all aliases" [ "c"; "o"; "p"; "r" ]
    (List.sort compare (Fragment.provides f'))

let test_substitute_no_overlap_identity () =
  let f = frag () in
  let lone =
    Fragment.temp_input ~id:"TX" ~provenance:"x"
      (Table.create ~name:"TX" ~schema:[||] [||])
      ~provides:[ "zz" ] ~stats:(Table_stats.rowcount_only 0)
  in
  Alcotest.(check bool) "unchanged" true (Fragment.substitute f ~temp:lone == f)

let test_substitute_partial_overlap_rejected () =
  let f = frag () in
  let temp = make_temp f [ "o"; "p" ] in
  let f' = Fragment.substitute f ~temp in
  (* a second temp covering p and r only partially covers T1 (o,p) *)
  let bad = make_temp f [ "p"; "r" ] in
  Alcotest.(check bool) "partial coverage rejected" true
    (try
       ignore (Fragment.substitute f' ~temp:bad);
       false
     with Invalid_argument _ -> true)

let test_key_is_logical_identity () =
  let f = frag () in
  let key_before = Fragment.key f in
  let temp = make_temp f [ "o"; "p" ] in
  let f' = Fragment.substitute f ~temp in
  (* substituting a temp whose provenance is the restricted fragment's key
     must keep the overall logical identity distinct but deterministic *)
  Alcotest.(check bool) "key changed" true (Fragment.key f' <> key_before);
  let temp2 = make_temp f [ "o"; "p" ] in
  let f'' = Fragment.substitute f ~temp:temp2 in
  Alcotest.(check string) "same logical content, same key" (Fragment.key f') (Fragment.key f'')

let test_key_ignores_order () =
  let f = frag () in
  let flipped = { f with Fragment.inputs = List.rev f.Fragment.inputs } in
  Alcotest.(check string) "order-insensitive" (Fragment.key f) (Fragment.key flipped)

let test_connected_components () =
  let f = frag () in
  Alcotest.(check int) "one component" 1 (List.length (Fragment.connected_components f));
  let no_preds = { f with Fragment.preds = [] } in
  Alcotest.(check int) "four singletons" 4
    (List.length (Fragment.connected_components no_preds))

let test_stats_lookup () =
  let f = frag () in
  Alcotest.(check bool) "c.city stats" true
    (Fragment.stats_of f { Expr.rel = "c"; name = "city" } <> None);
  Alcotest.(check bool) "unknown col" true
    (Fragment.stats_of f { Expr.rel = "c"; name = "nope" } = None);
  Alcotest.(check (option int)) "rows of customers" (Some 120)
    (Fragment.rows_of f { Expr.rel = "c"; name = "id" })

let test_requalify_stats () =
  let cat = Fixtures.shop_catalog () in
  let stats = Analyze.of_table (Qs_storage.Catalog.table cat "customers") in
  let re = Fragment.requalify_stats "cc" stats in
  Alcotest.(check bool) "new qualifier" true (Table_stats.find re ~rel:"cc" ~name:"city" <> None);
  Alcotest.(check bool) "old qualifier gone" true
    (Table_stats.find re ~rel:"customers" ~name:"city" = None)

let suite =
  [
    Alcotest.test_case "of_query shape" `Quick test_of_query_shape;
    Alcotest.test_case "restrict" `Quick test_restrict_keeps_internal_preds;
    Alcotest.test_case "substitute" `Quick test_substitute;
    Alcotest.test_case "substitute no-overlap" `Quick test_substitute_no_overlap_identity;
    Alcotest.test_case "substitute partial overlap" `Quick test_substitute_partial_overlap_rejected;
    Alcotest.test_case "key logical identity" `Quick test_key_is_logical_identity;
    Alcotest.test_case "key order-insensitive" `Quick test_key_ignores_order;
    Alcotest.test_case "connected components" `Quick test_connected_components;
    Alcotest.test_case "stats lookup" `Quick test_stats_lookup;
    Alcotest.test_case "requalify stats" `Quick test_requalify_stats;
  ]
