let () =
  Alcotest.run "querysplit"
    [
      ("util", Test_util.suite);
      ("value", Test_value.suite);
      ("btree", Test_btree.suite);
      ("storage", Test_storage.suite);
      ("bufpool", Test_bufpool.suite);
      ("expr", Test_expr.suite);
      ("query", Test_query.suite);
      ("join_graph", Test_join_graph.suite);
      ("sql", Test_sql.suite);
      ("stats", Test_stats.suite);
      ("fragment", Test_fragment.suite);
      ("estimator", Test_estimator.suite);
      ("optimizer", Test_optimizer.suite);
      ("executor", Test_executor.suite);
      ("naive", Test_naive.suite);
      ("cost_model", Test_cost_model.suite);
      ("relop", Test_relop.suite);
      ("temp", Test_temp.suite);
      ("logical", Test_logical.suite);
      ("physical", Test_physical.suite);
      ("ssa", Test_ssa.suite);
      ("qsa", Test_qsa.suite);
      ("querysplit", Test_querysplit.suite);
      ("strategies", Test_strategies.suite);
      ("obs", Test_obs.suite);
      ("span", Test_span.suite);
      ("differential", Test_differential.suite);
      ("parallel_dp", Test_parallel_dp.suite);
      ("serve", Test_serve.suite);
      ("telemetry", Test_telemetry.suite);
      ("driver", Test_driver.suite);
      ("similarity", Test_similarity.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
    ]
