(* The §3.3 driver: non-SPJ segmentation, pseudo relations, and agreement
   between strategies on logical trees. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Logical = Qs_plan.Logical
module Estimator = Qs_stats.Estimator
module Strategy = Qs_core.Strategy
module Driver = Qs_core.Driver
module Static = Qs_core.Static
module Querysplit = Qs_core.Querysplit

let qs = Querysplit.strategy Querysplit.default_config

let rel alias table = { Query.alias; table }
let cref r n = { Expr.rel = r; Expr.name = n }

let spj_core () =
  Query.make ~name:"core"
    [ rel "o" "orders"; rel "c" "customers"; rel "p" "products" ]
    [
      Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id");
      Expr.eq (Expr.col "o" "product_id") (Expr.col "p" "id");
      Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "oslo");
    ]

let test_agg_over_spj () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:800 () in
  let tree =
    Logical.Agg
      {
        name = "by_kind";
        group_by = [ cref "p" "kind" ];
        aggs = [ { Logical.fn = Logical.Count_star; arg = None; label = "orders" } ];
        input = Logical.Spj (spj_core ());
      }
  in
  let a = Driver.run Static.default ctx tree in
  let b = Driver.run qs ctx tree in
  Alcotest.(check bool) "agg agrees" true
    (Fixtures.tables_equal a.Strategy.result b.Strategy.result);
  Alcotest.(check bool) "some groups" true (Table.n_rows a.Strategy.result > 0)

let test_agg_sum_value_correct () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:500 () in
  (* COUNT over all orders must equal the table size *)
  let tree =
    Logical.Agg
      {
        name = "cnt";
        group_by = [];
        aggs = [ { Logical.fn = Logical.Count_star; arg = None; label = "n" } ];
        input =
          Logical.Spj (Query.make ~name:"all_orders" [ rel "o" "orders" ] []);
      }
  in
  let out = Driver.run Static.default ctx tree in
  Alcotest.(check bool) "count = 500" true
    (Table.get out.Strategy.result ~row:0 ~col:0 = Value.Int 500)

let test_union_of_aggs () =
  let _, ctx = Fixtures.shop_ctx () in
  let mk_branch name city =
    Logical.Agg
      {
        name;
        group_by = [ cref "c" "city" ];
        aggs = [ { Logical.fn = Logical.Count_star; arg = None; label = "n" } ];
        input =
          Logical.Spj
            (Query.make ~name:(name ^ "_spj")
               [ rel "o" "orders"; rel "c" "customers" ]
               [
                 Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id");
                 Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr city);
               ]);
      }
  in
  let tree =
    Logical.Union_all { name = "u"; inputs = [ mk_branch "b1" "oslo"; mk_branch "b2" "lima" ] }
  in
  let a = Driver.run Static.default ctx tree in
  let b = Driver.run qs ctx tree in
  Alcotest.(check int) "two rows" 2 (Table.n_rows a.Strategy.result);
  Alcotest.(check bool) "agree" true (Fixtures.tables_equal a.Strategy.result b.Strategy.result)

let test_semi_tree () =
  let _, ctx = Fixtures.shop_ctx () in
  let tree =
    Logical.Semi
      {
        name = "buyers";
        left = Logical.Spj (Query.make ~name:"cust" [ rel "c" "customers" ] []);
        right =
          Logical.Spj
            (Query.make ~name:"big_orders" [ rel "o" "orders" ]
               [ Expr.Cmp (Expr.Ge, Expr.col "o" "qty", Expr.vint 8) ]);
        on = [ Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id") ];
      }
  in
  let a = Driver.run Static.default ctx tree in
  let b = Driver.run qs ctx tree in
  Alcotest.(check bool) "agree" true (Fixtures.tables_equal a.Strategy.result b.Strategy.result);
  Alcotest.(check bool) "some buyers" true (Table.n_rows a.Strategy.result > 0);
  Alcotest.(check bool) "fewer than all" true (Table.n_rows a.Strategy.result < 120)

let test_let_binding_pseudo_relation () =
  let _, ctx = Fixtures.shop_ctx ~n_orders:600 () in
  (* bind per-product order counts, then query them like a base table *)
  let binding =
    Logical.Agg
      {
        name = "prod_stats";
        group_by = [ cref "p" "id" ];
        aggs = [ { Logical.fn = Logical.Count_star; arg = None; label = "n_orders" } ];
        input =
          Logical.Spj
            (Query.make ~name:"op" [ rel "o" "orders"; rel "p" "products" ]
               [ Expr.eq (Expr.col "o" "product_id") (Expr.col "p" "id") ]);
      }
  in
  let body =
    Logical.Spj
      (Query.make ~name:"hot"
         [ { Query.alias = "ps"; table = "prod_stats" } ]
         [ Expr.Cmp (Expr.Ge, Expr.col "ps" "n_orders", Expr.vint 10) ])
  in
  let tree = Logical.Let { bindings = [ binding ]; body } in
  let a = Driver.run Static.default ctx tree in
  let b = Driver.run qs ctx tree in
  Alcotest.(check bool) "agree" true (Fixtures.tables_equal a.Strategy.result b.Strategy.result)

let test_iterations_concatenated () =
  let _, ctx = Fixtures.shop_ctx () in
  let tree =
    Logical.Union_all
      {
        name = "u";
        (* both branches project the same two columns, so the union is
           well-typed; what we check is that the traces concatenate *)
        inputs =
          [
            Logical.Spj (Fixtures.shop_query ~name:"s1" ());
            Logical.Spj (Fixtures.shop_query ~name:"s2" ());
          ];
      }
  in
  let o = Driver.run qs ctx tree in
  (* both segments' iterations are visible in the trace *)
  Alcotest.(check bool) "traces from both segments" true
    (List.length o.Strategy.iterations >= 2)

let test_starbench_nonspj_agree () =
  let cat = Qs_workload.Starbench.build ~scale:0.1 ~seed:9 () in
  Qs_storage.Catalog.build_indexes cat Qs_storage.Catalog.Pk_fk;
  let registry = Qs_stats.Stats_registry.create cat in
  let trees = Qs_workload.Starbench.queries cat ~seed:10 in
  List.iter
    (fun tree ->
      let ctx () = Strategy.make_ctx registry Estimator.default in
      let a = Driver.run Static.default (ctx ()) tree in
      let b = Driver.run qs (ctx ()) tree in
      if not (Fixtures.tables_equal a.Strategy.result b.Strategy.result) then
        Alcotest.failf "mismatch on %s" (Logical.name tree))
    trees

let suite =
  [
    Alcotest.test_case "agg over spj" `Quick test_agg_over_spj;
    Alcotest.test_case "count value" `Quick test_agg_sum_value_correct;
    Alcotest.test_case "union of aggs" `Quick test_union_of_aggs;
    Alcotest.test_case "semi tree" `Quick test_semi_tree;
    Alcotest.test_case "let pseudo relation" `Quick test_let_binding_pseudo_relation;
    Alcotest.test_case "iterations concatenated" `Quick test_iterations_concatenated;
    Alcotest.test_case "starbench agreement" `Slow test_starbench_nonspj_agree;
  ]
