(* The DP optimizer: plan well-formedness, method restrictions, index
   usage, and agreement of the plan's actual execution with the naive
   reference. *)

module Value = Qs_storage.Value
module Catalog = Qs_storage.Catalog
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Strategy = Qs_core.Strategy
module Executor = Qs_exec.Executor
module Naive = Qs_exec.Naive
module Rng = Qs_util.Rng

let setup () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:600 () in
  (cat, ctx, Strategy.fragment_of_query ctx (Fixtures.shop_query ()))

let test_plan_covers_inputs () =
  let cat, _, frag = setup () in
  let res = Optimizer.optimize cat Estimator.default frag in
  let leaf_ids =
    List.sort compare (List.map (fun i -> i.Fragment.id) (Physical.leaves res.Optimizer.plan))
  in
  Alcotest.(check (list string)) "all inputs" [ "c"; "o"; "p"; "r" ] leaf_ids;
  Alcotest.(check int) "3 joins for 4 rels" 3 (Physical.n_joins res.Optimizer.plan)

let test_single_input_is_scan () =
  let cat, _, frag = setup () in
  let sub = Fragment.restrict frag [ Fragment.find_input frag "c" ] in
  let res = Optimizer.optimize cat Estimator.default sub in
  match res.Optimizer.plan.Physical.node with
  | Physical.Scan i -> Alcotest.(check string) "scan of c" "c" i.Fragment.id
  | _ -> Alcotest.fail "expected scan"

let test_empty_fragment_rejected () =
  let cat, _, frag = setup () in
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Optimizer.optimize cat Estimator.default { frag with Fragment.inputs = [] });
       false
     with Invalid_argument _ -> true)

let methods_used plan =
  List.filter_map
    (fun (n : Physical.t) ->
      match n.Physical.node with
      | Physical.Join j -> Some j.Physical.method_
      | _ -> None)
    (Physical.joins_post_order plan)

let test_hash_only_restriction () =
  let cat, _, frag = setup () in
  let res = Optimizer.optimize ~allowed:[ Physical.Hash ] cat Estimator.default frag in
  List.iter
    (fun m -> Alcotest.(check bool) "hash only" true (m = Physical.Hash))
    (methods_used res.Optimizer.plan)

let test_index_nl_needs_index () =
  let cat, _, frag = setup () in
  (* with Pk+Fk indexes an index NL join is at least available; after
     downgrading to Pk-only, FK-column index joins must disappear *)
  Catalog.build_indexes cat Catalog.Pk_only;
  let res = Optimizer.optimize cat Estimator.default frag in
  List.iter
    (fun (n : Physical.t) ->
      match n.Physical.node with
      | Physical.Join { method_ = Physical.Index_nl; index = Some (ix, _, _); right; _ } ->
          (* the inner is a base scan and the index must exist in Pk_only *)
          (match right.Physical.node with
          | Physical.Scan i ->
              Alcotest.(check bool) "inner is base" false i.Fragment.is_temp
          | _ -> Alcotest.fail "index NL inner must be a scan");
          Alcotest.(check bool) "pk index only" true
            (Qs_storage.Index.name ix = "customers.id"
            || Qs_storage.Index.name ix = "products.id"
            || Qs_storage.Index.name ix = "orders.id"
            || Qs_storage.Index.name ix = "reviews.id")
      | _ -> ())
    (Physical.joins_post_order res.Optimizer.plan);
  Catalog.build_indexes cat Catalog.Pk_fk

let test_no_index_nl_on_temp () =
  let cat, _, frag = setup () in
  (* replace products with a temp covering products: index joins into it
     must not be generated *)
  let p = Fragment.find_input frag "p" in
  let tbl = Executor.filter_input p in
  let temp =
    Fragment.temp_input ~id:"T1" ~provenance:"t1" tbl ~provides:[ "p" ]
      ~stats:(Qs_stats.Analyze.of_table tbl)
  in
  let frag' = Fragment.substitute frag ~temp in
  let res = Optimizer.optimize cat Estimator.default frag' in
  List.iter
    (fun (n : Physical.t) ->
      match n.Physical.node with
      | Physical.Join { method_ = Physical.Index_nl; right; _ } -> (
          match right.Physical.node with
          | Physical.Scan i ->
              Alcotest.(check bool) "never into a temp" false i.Fragment.is_temp
          | _ -> ())
      | _ -> ())
    (Physical.joins_post_order res.Optimizer.plan)

let test_disconnected_gets_cartesian () =
  let cat, ctx = Fixtures.shop_ctx () in
  ignore cat;
  let q =
    Query.make ~name:"cross"
      [ { Query.alias = "c"; table = "customers" }; { Query.alias = "p"; table = "products" } ]
      [
        Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "kiel");
        Expr.Cmp (Expr.Eq, Expr.col "p" "kind", Expr.vstr "tool");
      ]
  in
  let frag = Strategy.fragment_of_query ctx q in
  let res = Optimizer.optimize (Strategy.catalog ctx) Estimator.default frag in
  Alcotest.(check int) "one cartesian join" 1 (Physical.n_joins res.Optimizer.plan);
  let tbl, _ = Executor.run res.Optimizer.plan in
  Alcotest.(check bool) "result equals naive" true
    (Fixtures.tables_equal tbl (Naive.rows { frag with Fragment.output = [] }))

let test_optimal_cost_not_above_default_cost () =
  (* under the SAME estimator the DP result is a min: re-costing the
     returned plan must reproduce its own estimate *)
  let cat, _, frag = setup () in
  let res = Optimizer.optimize cat Estimator.default frag in
  let recost = Optimizer.cost_plan cat Estimator.default frag res.Optimizer.plan in
  Alcotest.(check bool) "recost close to est" true
    (Float.abs (recost -. res.Optimizer.est_cost) /. Float.max 1.0 res.Optimizer.est_cost
     < 0.05)

let test_plan_execution_matches_naive () =
  let cat, ctx = Fixtures.shop_ctx ~n_orders:400 () in
  ignore cat;
  let rng = Rng.create 99 in
  for _ = 1 to 15 do
    let q = Fixtures.random_shop_query rng in
    let frag = Strategy.fragment_of_query ctx q in
    let res = Optimizer.optimize (Strategy.catalog ctx) Estimator.default frag in
    let tbl, _ = Executor.run res.Optimizer.plan in
    let expected = Naive.rows { frag with Fragment.output = [] } in
    if not (Fixtures.tables_equal tbl expected) then
      Alcotest.failf "plan result diverges from naive on %s" (Query.to_sql q)
  done

let test_replace_node () =
  let cat, _, frag = setup () in
  let res = Optimizer.optimize cat Estimator.default frag in
  match Physical.deepest_join res.Optimizer.plan with
  | None -> Alcotest.fail "expected a join"
  | Some node ->
      let sub_tbl, _ = Executor.run node in
      let temp =
        Fragment.temp_input ~id:"TT" ~provenance:"tt" sub_tbl
          ~provides:node.Physical.rels
          ~stats:(Qs_stats.Analyze.of_table sub_tbl)
      in
      let scan =
        Physical.scan temp ~est_rows:(float_of_int (Qs_storage.Table.n_rows sub_tbl))
          ~est_cost:1.0
      in
      let replaced = Physical.replace res.Optimizer.plan ~id:node.Physical.id ~by:scan in
      Alcotest.(check int) "one less join"
        (Physical.n_joins res.Optimizer.plan - 1)
        (Physical.n_joins replaced);
      let tbl, _ = Executor.run replaced in
      let expected, _ = Executor.run res.Optimizer.plan in
      Alcotest.(check bool) "same result" true (Fixtures.tables_equal tbl expected)

let test_index_nl_only_falls_back_to_nl () =
  (* Regression: an equi-join on columns with no index (qty/stars are
     neither pks nor fks) used to make [dp_plan] raise "no plan found"
     when the method list was [Index_nl] — [join_candidates] always had
     the plain-NL fallback, the DP path lacked it. *)
  let cat, ctx = Fixtures.shop_ctx ~n_orders:300 () in
  let q =
    Query.make ~name:"no_usable_index"
      [ { Query.alias = "o"; table = "orders" }; { Query.alias = "r"; table = "reviews" } ]
      [
        Expr.Cmp (Expr.Eq, Expr.col "o" "qty", Expr.col "r" "stars");
        Expr.Cmp (Expr.Ge, Expr.col "r" "stars", Expr.vint 4);
      ]
  in
  let frag = Strategy.fragment_of_query ctx q in
  let res =
    Optimizer.optimize ~allowed:[ Physical.Index_nl ] cat Estimator.default frag
  in
  List.iter
    (fun m -> Alcotest.(check bool) "degraded to plain NL" true (m = Physical.Nl))
    (methods_used res.Optimizer.plan);
  Alcotest.(check int) "one join" 1 (Physical.n_joins res.Optimizer.plan);
  let tbl, _ = Executor.run res.Optimizer.plan in
  Alcotest.(check bool) "result equals naive" true
    (Fixtures.tables_equal tbl (Naive.rows { frag with Fragment.output = [] }))

let test_usable_index_orientation () =
  (* Regression: [usable_index] used a physical-equality (a, a) sentinel
     to mark "no side of this pred touches the inner"; a pred whose
     sides both live elsewhere must simply yield None, and a matching
     pred must orient (outer_key, inner_key) correctly whichever side
     the inner column appears on. *)
  let cat, _, frag = setup () in
  let c = Fragment.find_input frag "c" in
  let unrelated = Expr.Cmp (Expr.Eq, Expr.col "o" "product_id", Expr.col "p" "id") in
  Alcotest.(check bool) "pred not touching inner -> None" true
    (Optimizer.usable_index cat c [ unrelated ] = None);
  let check_oriented pred =
    match Optimizer.usable_index cat c [ unrelated; pred ] with
    | None -> Alcotest.fail "expected a usable index on c.id"
    | Some (ix, outer_key, inner_key, p) ->
        Alcotest.(check string) "index" "customers.id" (Qs_storage.Index.name ix);
        Alcotest.(check string) "inner side is c" "c" inner_key.Expr.rel;
        Alcotest.(check string) "inner column" "id" inner_key.Expr.name;
        Alcotest.(check string) "outer side is o" "o" outer_key.Expr.rel;
        Alcotest.(check bool) "returns the matching pred" true (p = pred)
  in
  (* inner column on the right of the equality... *)
  check_oriented (Expr.Cmp (Expr.Eq, Expr.col "o" "customer_id", Expr.col "c" "id"));
  (* ...and flipped to the left *)
  check_oriented (Expr.Cmp (Expr.Eq, Expr.col "c" "id", Expr.col "o" "customer_id"));
  (* a non-equality on the right columns is never usable *)
  Alcotest.(check bool) "non-equality -> None" true
    (Optimizer.usable_index cat c
       [ Expr.Cmp (Expr.Ge, Expr.col "o" "customer_id", Expr.col "c" "id") ]
    = None)

let suite =
  [
    Alcotest.test_case "plan covers inputs" `Quick test_plan_covers_inputs;
    Alcotest.test_case "single input scan" `Quick test_single_input_is_scan;
    Alcotest.test_case "empty fragment" `Quick test_empty_fragment_rejected;
    Alcotest.test_case "hash-only restriction" `Quick test_hash_only_restriction;
    Alcotest.test_case "index NL respects config" `Quick test_index_nl_needs_index;
    Alcotest.test_case "no index NL on temps" `Quick test_no_index_nl_on_temp;
    Alcotest.test_case "disconnected cartesian" `Quick test_disconnected_gets_cartesian;
    Alcotest.test_case "recost consistency" `Quick test_optimal_cost_not_above_default_cost;
    Alcotest.test_case "plan matches naive" `Quick test_plan_execution_matches_naive;
    Alcotest.test_case "replace node" `Quick test_replace_node;
    Alcotest.test_case "index-NL-only falls back to NL" `Quick
      test_index_nl_only_falls_back_to_nl;
    Alcotest.test_case "usable_index orientation" `Quick test_usable_index_orientation;
  ]
