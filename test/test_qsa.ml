(* The Query Splitting Algorithm: the paper's 6d example, the cover
   guarantee (Definition 1) as a property over generated queries, and the
   degenerate star case. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Qsa = Qs_core.Qsa
module Rng = Qs_util.Rng

let q6d () =
  Query.make ~name:"q6d"
    [
      { Query.alias = "ci"; table = "cast_info" };
      { Query.alias = "k"; table = "keyword" };
      { Query.alias = "mk"; table = "movie_keyword" };
      { Query.alias = "n"; table = "name" };
      { Query.alias = "t"; table = "title" };
    ]
    [
      Expr.eq (Expr.col "k" "id") (Expr.col "mk" "keyword_id");
      Expr.eq (Expr.col "t" "id") (Expr.col "mk" "movie_id");
      Expr.eq (Expr.col "t" "id") (Expr.col "ci" "movie_id");
      Expr.eq (Expr.col "ci" "movie_id") (Expr.col "mk" "movie_id");
      Expr.eq (Expr.col "n" "id") (Expr.col "ci" "person_id");
    ]

let alias_sets subs =
  List.map (fun s -> List.sort compare (Query.aliases s)) subs |> List.sort compare

let test_rcenter_on_6d () =
  (* the paper's Figure 8: S1 = k ⋈ mk ⋈ t around mk, S2 = t ⋈ ci ⋈ n
     around ci *)
  let subs = Qsa.split (Lazy.force Fixtures.cinema) (q6d ()) Qsa.RCenter in
  Alcotest.(check (list (list string))) "two centered subqueries"
    [ [ "ci"; "n"; "t" ]; [ "k"; "mk"; "t" ] ]
    (alias_sets subs)

let test_ecenter_on_6d () =
  (* reversed edges: centers are the entities k (→mk), t (→mk,ci), n (→ci) *)
  let subs = Qsa.split (Lazy.force Fixtures.cinema) (q6d ()) Qsa.ECenter in
  let sets = alias_sets subs in
  Alcotest.(check bool) "k center" true (List.mem [ "k"; "mk" ] sets);
  Alcotest.(check bool) "n center" true (List.mem [ "ci"; "n" ] sets);
  Alcotest.(check bool) "t center" true (List.mem [ "ci"; "mk"; "t" ] sets)

let test_minsubquery_on_6d () =
  let subs = Qsa.split (Lazy.force Fixtures.cinema) (q6d ()) Qsa.MinSubquery in
  (* one two-relation subquery per join predicate (5 preds, one of them
     duplicating an alias pair? — all distinct here) *)
  Alcotest.(check int) "five subqueries" 5 (List.length subs);
  List.iter
    (fun s -> Alcotest.(check int) "two rels each" 2 (List.length s.Query.rels))
    subs

let test_all_policies_cover () =
  let q = q6d () in
  List.iter
    (fun policy ->
      let subs = Qsa.split (Lazy.force Fixtures.cinema) q policy in
      Alcotest.(check bool) (Qsa.policy_name policy ^ " covers") true
        (Query.covers subs q))
    Qsa.all_policies

let test_star_schema_degenerates () =
  (* a strict star: one fact with FKs to two dims — RCenter must produce a
     single subquery = the whole query (no re-optimization, §4.1) *)
  let q =
    Query.make ~name:"star"
      [
        { Query.alias = "o"; table = "orders" };
        { Query.alias = "c"; table = "customers" };
        { Query.alias = "p"; table = "products" };
      ]
      [
        Expr.eq (Expr.col "o" "customer_id") (Expr.col "c" "id");
        Expr.eq (Expr.col "o" "product_id") (Expr.col "p" "id");
      ]
  in
  let cat = Fixtures.shop_catalog () in
  let subs = Qsa.split cat q Qsa.RCenter in
  Alcotest.(check int) "single subquery" 1 (List.length subs);
  Alcotest.(check int) "whole query" 3 (List.length (List.hd subs).Query.rels)

let test_single_relation_query () =
  let q =
    Query.make ~name:"single"
      [ { Query.alias = "c"; table = "customers" } ]
      [ Expr.Cmp (Expr.Eq, Expr.col "c" "city", Expr.vstr "oslo") ]
  in
  let cat = Fixtures.shop_catalog () in
  List.iter
    (fun policy ->
      let subs = Qsa.split cat q policy in
      Alcotest.(check int) "one singleton" 1 (List.length subs))
    Qsa.all_policies

let test_cartesian_query_isolated_singletons () =
  let q =
    Query.make ~name:"cart"
      [
        { Query.alias = "c"; table = "customers" };
        { Query.alias = "p"; table = "products" };
      ]
      []
  in
  let cat = Fixtures.shop_catalog () in
  let subs = Qsa.split cat q Qsa.RCenter in
  Alcotest.(check int) "two singletons" 2 (List.length subs);
  Alcotest.(check bool) "covers" true (Query.covers subs q)

let test_filters_travel_with_subqueries () =
  let cat = Fixtures.shop_catalog () in
  let q = Fixtures.shop_query () in
  List.iter
    (fun policy ->
      let subs = Qsa.split cat q policy in
      (* every subquery containing c must carry the city filter *)
      List.iter
        (fun s ->
          if List.mem "c" (Query.aliases s) then
            Alcotest.(check int) "city filter present" 1
              (List.length (Query.filters s "c")))
        subs)
    Qsa.all_policies

let qcheck_cover_property =
  QCheck.Test.make ~name:"QSA always covers (random queries)" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cat = Fixtures.shop_catalog () in
      let rng = Rng.create seed in
      let q = Fixtures.random_shop_query rng in
      List.for_all (fun policy -> Query.covers (Qsa.split cat q policy) q) Qsa.all_policies)

let qcheck_cover_on_cinema =
  QCheck.Test.make ~name:"QSA covers the generated JOB-like queries" ~count:1
    QCheck.unit
    (fun () ->
      let cat = Lazy.force Fixtures.cinema in
      List.for_all
        (fun q ->
          List.for_all
            (fun policy -> Query.covers (Qsa.split cat q policy) q)
            Qsa.all_policies)
        (Lazy.force Fixtures.cinema_queries))

let suite =
  [
    Alcotest.test_case "RCenter on 6d" `Quick test_rcenter_on_6d;
    Alcotest.test_case "ECenter on 6d" `Quick test_ecenter_on_6d;
    Alcotest.test_case "MinSubquery on 6d" `Quick test_minsubquery_on_6d;
    Alcotest.test_case "policies cover 6d" `Quick test_all_policies_cover;
    Alcotest.test_case "star degenerates" `Quick test_star_schema_degenerates;
    Alcotest.test_case "single relation" `Quick test_single_relation_query;
    Alcotest.test_case "cartesian singletons" `Quick test_cartesian_query_isolated_singletons;
    Alcotest.test_case "filters travel" `Quick test_filters_travel_with_subqueries;
    QCheck_alcotest.to_alcotest qcheck_cover_property;
    QCheck_alcotest.to_alcotest qcheck_cover_on_cinema;
  ]
