(* B+Tree: reference-model equivalence, structural invariants, ranges. *)

module Value = Qs_storage.Value
module Btree = Qs_storage.Btree
module Rng = Qs_util.Rng

let check_ok t =
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let test_empty () =
  let t = Btree.create () in
  Alcotest.(check int) "no keys" 0 (Btree.n_keys t);
  Alcotest.(check (list int)) "find nothing" [] (Btree.find t (Value.Int 5));
  Alcotest.(check bool) "mem false" false (Btree.mem t (Value.Int 5));
  check_ok t

let test_single () =
  let t = Btree.create () in
  Btree.insert t (Value.Int 10) 0;
  Alcotest.(check (list int)) "found" [ 0 ] (Btree.find t (Value.Int 10));
  Alcotest.(check int) "one key" 1 (Btree.n_keys t);
  check_ok t

let test_duplicates_accumulate () =
  let t = Btree.create () in
  Btree.insert t (Value.Int 1) 10;
  Btree.insert t (Value.Int 1) 20;
  Btree.insert t (Value.Int 1) 30;
  Alcotest.(check int) "one key" 1 (Btree.n_keys t);
  Alcotest.(check int) "three entries" 3 (Btree.n_entries t);
  Alcotest.(check (list int)) "all rows" [ 30; 20; 10 ] (Btree.find t (Value.Int 1))

let test_null_ignored () =
  let t = Btree.create () in
  Btree.insert t Value.Null 1;
  Alcotest.(check int) "no keys" 0 (Btree.n_keys t);
  Alcotest.(check (list int)) "null finds nothing" [] (Btree.find t Value.Null)

let test_sequential_inserts () =
  let t = Btree.create () in
  for i = 0 to 9999 do
    Btree.insert t (Value.Int i) i
  done;
  check_ok t;
  Alcotest.(check int) "10000 keys" 10_000 (Btree.n_keys t);
  Alcotest.(check bool) "height logarithmic" true (Btree.height t <= 5);
  for i = 0 to 9999 do
    assert (Btree.find t (Value.Int i) = [ i ])
  done

let test_reverse_inserts () =
  let t = Btree.create () in
  for i = 9999 downto 0 do
    Btree.insert t (Value.Int i) i
  done;
  check_ok t;
  Alcotest.(check int) "10000 keys" 10_000 (Btree.n_keys t)

let test_string_keys () =
  let t = Btree.create () in
  List.iteri (fun i k -> Btree.insert t (Value.Str k) i) [ "pear"; "apple"; "fig" ];
  Alcotest.(check (list int)) "apple" [ 1 ] (Btree.find t (Value.Str "apple"));
  check_ok t;
  Alcotest.(check bool) "keys sorted" true
    (Btree.keys t = [ Value.Str "apple"; Value.Str "fig"; Value.Str "pear" ])

let range_to_list t ~lo ~hi =
  let acc = ref [] in
  Btree.range t ~lo ~hi (fun k rows -> acc := (k, List.sort compare rows) :: !acc);
  List.rev !acc

let test_range_basic () =
  let t = Btree.create () in
  for i = 0 to 99 do
    Btree.insert t (Value.Int i) i
  done;
  let r = range_to_list t ~lo:(Some (Value.Int 10, true)) ~hi:(Some (Value.Int 13, true)) in
  Alcotest.(check int) "4 keys" 4 (List.length r);
  Alcotest.(check bool) "starts at 10" true (fst (List.hd r) = Value.Int 10)

let test_range_exclusive () =
  let t = Btree.create () in
  for i = 0 to 20 do
    Btree.insert t (Value.Int i) i
  done;
  let r =
    range_to_list t ~lo:(Some (Value.Int 5, false)) ~hi:(Some (Value.Int 8, false))
  in
  Alcotest.(check int) "2 keys (6,7)" 2 (List.length r)

let test_range_unbounded () =
  let t = Btree.create () in
  for i = 0 to 50 do
    Btree.insert t (Value.Int i) i
  done;
  Alcotest.(check int) "all keys" 51 (List.length (range_to_list t ~lo:None ~hi:None));
  Alcotest.(check int) "upper half" 25
    (List.length (range_to_list t ~lo:(Some (Value.Int 26, true)) ~hi:None))

let test_unique_index_detection () =
  let module Table = Qs_storage.Table in
  let module Schema = Qs_storage.Schema in
  let schema = Schema.make "t" [ ("id", Value.TInt) ] in
  let dup = Table.of_rows ~name:"t" ~schema [ [| Value.Int 1 |]; [| Value.Int 1 |] ] in
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Qs_storage.Index.build dup ~column:"id" ~unique:true);
       false
     with Invalid_argument _ -> true)

(* Reference model: the tree must agree with a Hashtbl on arbitrary
   insert sequences, and the invariants must hold at the end. *)
let qcheck_model =
  QCheck.Test.make ~name:"btree agrees with hashtable model" ~count:60
    QCheck.(list (pair (int_range 0 500) (int_range 0 100_000)))
    (fun ops ->
      let t = Btree.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, row) ->
          let key = Value.Int k in
          Btree.insert t key row;
          Hashtbl.replace model k (row :: Option.value (Hashtbl.find_opt model k) ~default:[]))
        ops;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      Hashtbl.fold
        (fun k rows acc ->
          acc && List.sort compare (Btree.find t (Value.Int k)) = List.sort compare rows)
        model true
      && Btree.n_keys t = Hashtbl.length model)

let qcheck_range_matches_filter =
  QCheck.Test.make ~name:"range scan = sorted filter" ~count:60
    QCheck.(triple (list (int_range 0 300)) (int_range 0 300) (int_range 0 300))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Btree.create () in
      List.iteri (fun i k -> Btree.insert t (Value.Int k) i) keys;
      let got =
        let acc = ref [] in
        Btree.range t
          ~lo:(Some (Value.Int lo, true))
          ~hi:(Some (Value.Int hi, true))
          (fun k _ -> acc := k :: !acc);
        List.rev !acc
      in
      let expected =
        List.sort_uniq compare (List.filter (fun k -> k >= lo && k <= hi) keys)
        |> List.map (fun k -> Value.Int k)
      in
      got = expected)

(* --- deletion ------------------------------------------------------- *)

let test_delete_basic () =
  let t = Btree.create () in
  Btree.insert t (Value.Int 1) 10;
  Btree.insert t (Value.Int 1) 20;
  Alcotest.(check bool) "removed" true (Btree.delete t (Value.Int 1) 10);
  Alcotest.(check (list int)) "one left" [ 20 ] (Btree.find t (Value.Int 1));
  Alcotest.(check int) "key survives" 1 (Btree.n_keys t);
  Alcotest.(check bool) "removed last" true (Btree.delete t (Value.Int 1) 20);
  Alcotest.(check (list int)) "gone" [] (Btree.find t (Value.Int 1));
  Alcotest.(check int) "no keys" 0 (Btree.n_keys t);
  Alcotest.(check bool) "absent returns false" false (Btree.delete t (Value.Int 1) 20);
  check_ok t

let test_delete_null () =
  let t = Btree.create () in
  Alcotest.(check bool) "null no-op" false (Btree.delete t Value.Null 1)

let test_delete_everything_big () =
  let t = Btree.create () in
  for i = 0 to 4999 do
    Btree.insert t (Value.Int i) i
  done;
  (* delete in an order that exercises merges on both flanks *)
  for i = 0 to 4999 do
    let k = if i mod 2 = 0 then i / 2 else 4999 - (i / 2) in
    Alcotest.(check bool) "deleted" true (Btree.delete t (Value.Int k) k)
  done;
  Alcotest.(check int) "empty" 0 (Btree.n_keys t);
  Alcotest.(check int) "no entries" 0 (Btree.n_entries t);
  check_ok t

let test_delete_partial_keeps_invariants () =
  let t = Btree.create () in
  let rng = Rng.create 4 in
  for i = 0 to 9999 do
    Btree.insert t (Value.Int (Rng.int rng 1000)) i
  done;
  for i = 0 to 9999 do
    if i mod 3 <> 0 then ignore (Btree.delete t (Value.Int (i mod 1000)) i)
  done;
  check_ok t

let qcheck_insert_delete_model =
  QCheck.Test.make ~name:"btree insert/delete agrees with model" ~count:40
    QCheck.(list (triple bool (int_range 0 120) (int_range 0 40)))
    (fun ops ->
      let t = Btree.create () in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (is_insert, k, row) ->
          let cur = Option.value (Hashtbl.find_opt model k) ~default:[] in
          if is_insert then begin
            Btree.insert t (Value.Int k) row;
            Hashtbl.replace model k (row :: cur)
          end
          else begin
            let removed = Btree.delete t (Value.Int k) row in
            if removed <> List.mem row cur then QCheck.Test.fail_report "removed flag";
            if removed then begin
              let dropped = ref false in
              let rest =
                List.filter
                  (fun r ->
                    if (not !dropped) && r = row then (dropped := true; false) else true)
                  cur
              in
              if rest = [] then Hashtbl.remove model k else Hashtbl.replace model k rest
            end
          end)
        ops;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      Hashtbl.fold
        (fun k rows acc ->
          acc
          && List.sort compare (Btree.find t (Value.Int k)) = List.sort compare rows)
        model true
      && Btree.n_keys t = Hashtbl.length model)

(* --- sorted-assoc-list model ------------------------------------------ *)
(* A second, order-aware reference: the tree's full traversal (keys and
   per-key posting lists) must equal a sorted association list. Unlike the
   hashtable model this also checks *iteration order*. *)

let assoc_model_of ops =
  let add model (k, row) =
    match List.assoc_opt k model with
    | Some rows -> (k, row :: rows) :: List.remove_assoc k model
    | None -> (k, [ row ]) :: model
  in
  List.fold_left add [] ops |> List.sort compare
  |> List.map (fun (k, rows) -> (k, List.sort compare rows))

let full_scan t =
  range_to_list t ~lo:None ~hi:None
  |> List.map (fun (k, rows) -> ((match k with Value.Int i -> i | _ -> -1), rows))

let test_reverse_bulk_vs_assoc_model () =
  (* reverse-order bulk insert with duplicate keys: every key appears
     three times, inserted from high to low *)
  let ops = ref [] in
  for i = 999 downto 0 do
    for r = 0 to 2 do
      ops := (i mod 250, (i * 3) + r) :: !ops
    done
  done;
  let ops = List.rev !ops in
  let t = Btree.create () in
  List.iter (fun (k, row) -> Btree.insert t (Value.Int k) row) ops;
  check_ok t;
  Alcotest.(check int) "250 distinct keys" 250 (Btree.n_keys t);
  Alcotest.(check int) "3000 entries" 3000 (Btree.n_entries t);
  Alcotest.(check bool) "traversal = sorted assoc model" true
    (full_scan t = assoc_model_of ops)

let test_range_straddling_splits () =
  (* enough keys for several levels of splits; windows are chosen to cross
     leaf boundaries wherever they landed *)
  let t = Btree.create () in
  let ops = ref [] in
  for i = 0 to 2999 do
    Btree.insert t (Value.Int i) i;
    ops := (i, i) :: !ops;
    (* every fifth key gets a duplicate entry *)
    if i mod 5 = 0 then begin
      Btree.insert t (Value.Int i) (i + 100_000);
      ops := (i, i + 100_000) :: !ops
    end
  done;
  check_ok t;
  let model = assoc_model_of !ops in
  List.iter
    (fun (lo, hi) ->
      let got =
        range_to_list t
          ~lo:(Some (Value.Int lo, true))
          ~hi:(Some (Value.Int hi, true))
        |> List.map (fun (k, rows) ->
               ((match k with Value.Int i -> i | _ -> -1), rows))
      in
      let expected = List.filter (fun (k, _) -> k >= lo && k <= hi) model in
      if got <> expected then
        Alcotest.failf "range [%d,%d] diverges from model (%d vs %d keys)" lo hi
          (List.length got) (List.length expected))
    [ (0, 2999); (1, 2998); (747, 1253); (2500, 2600); (2999, 2999); (3000, 4000) ]

let full_scan_window t lo hi =
  range_to_list t ~lo:(Some (Value.Int lo, true)) ~hi:(Some (Value.Int hi, true))
  |> List.map (fun (k, rows) -> ((match k with Value.Int i -> i | _ -> -1), rows))

let test_range_straddling_merges () =
  (* delete two of every three keys so leaves underflow and merge, then
     re-check window scans against the surviving model *)
  let t = Btree.create () in
  for i = 0 to 2999 do
    Btree.insert t (Value.Int i) i
  done;
  for i = 0 to 2999 do
    if i mod 3 <> 0 then
      Alcotest.(check bool) "deleted" true (Btree.delete t (Value.Int i) i)
  done;
  check_ok t;
  let model = List.init 1000 (fun i -> (i * 3, [ i * 3 ])) in
  List.iter
    (fun (lo, hi) ->
      let got = full_scan_window t lo hi in
      let expected = List.filter (fun (k, _) -> k >= lo && k <= hi) model in
      if got <> expected then
        Alcotest.failf "post-merge range [%d,%d] diverges" lo hi)
    [ (0, 2999); (100, 200); (1499, 1501); (2997, 2999) ]

let test_delete_to_empty_then_reuse () =
  (* drain to empty, then reuse the same tree: merges must leave a
     perfectly usable root behind *)
  let t = Btree.create () in
  for round = 1 to 3 do
    for i = 0 to 499 do
      Btree.insert t (Value.Int i) (i * round)
    done;
    check_ok t;
    for i = 499 downto 0 do
      Alcotest.(check bool) "drained" true (Btree.delete t (Value.Int i) (i * round))
    done;
    Alcotest.(check int) "empty again" 0 (Btree.n_keys t);
    Alcotest.(check int) "no entries" 0 (Btree.n_entries t);
    check_ok t
  done

let qcheck_traversal_matches_assoc_model =
  QCheck.Test.make ~name:"btree traversal = sorted assoc-list model" ~count:60
    QCheck.(list (pair (int_range 0 80) (int_range 0 1000)))
    (fun ops ->
      let t = Btree.create () in
      List.iter (fun (k, row) -> Btree.insert t (Value.Int k) row) ops;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      full_scan t = assoc_model_of ops)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single" `Quick test_single;
    Alcotest.test_case "duplicates" `Quick test_duplicates_accumulate;
    Alcotest.test_case "null ignored" `Quick test_null_ignored;
    Alcotest.test_case "sequential 10k" `Quick test_sequential_inserts;
    Alcotest.test_case "reverse 10k" `Quick test_reverse_inserts;
    Alcotest.test_case "string keys" `Quick test_string_keys;
    Alcotest.test_case "range basic" `Quick test_range_basic;
    Alcotest.test_case "range exclusive" `Quick test_range_exclusive;
    Alcotest.test_case "range unbounded" `Quick test_range_unbounded;
    Alcotest.test_case "unique index" `Quick test_unique_index_detection;
    Alcotest.test_case "delete basic" `Quick test_delete_basic;
    Alcotest.test_case "delete null" `Quick test_delete_null;
    Alcotest.test_case "delete everything" `Quick test_delete_everything_big;
    Alcotest.test_case "delete partial invariants" `Quick test_delete_partial_keeps_invariants;
    Alcotest.test_case "reverse bulk vs assoc model" `Quick
      test_reverse_bulk_vs_assoc_model;
    Alcotest.test_case "range straddling splits" `Quick test_range_straddling_splits;
    Alcotest.test_case "range straddling merges" `Quick test_range_straddling_merges;
    Alcotest.test_case "delete to empty and reuse" `Quick
      test_delete_to_empty_then_reuse;
    QCheck_alcotest.to_alcotest qcheck_model;
    QCheck_alcotest.to_alcotest qcheck_traversal_matches_assoc_model;
    QCheck_alcotest.to_alcotest qcheck_range_matches_filter;
    QCheck_alcotest.to_alcotest qcheck_insert_delete_model;
  ]
