(* Physical plan trees: construction rules, traversal order, node
   replacement, rendering. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Fragment = Qs_stats.Fragment
module Physical = Qs_plan.Physical
module Expr = Qs_query.Expr

let input name =
  let tbl = Table.create ~name ~schema:(Schema.make name [ ("id", Value.TInt) ]) [||] in
  {
    Fragment.id = name;
    table = tbl;
    provides = [ name ];
    filters = [];
    stats = Qs_stats.Table_stats.rowcount_only 0;
    is_temp = false;
    base_table = Some name;
    provenance = name;
    stats_epoch = 0;
    memo = Hashtbl.create 1;
    scratch = Qs_util.Scratch.create ();
  }

let scan name = Physical.scan (input name) ~est_rows:5.0 ~est_cost:1.0

let hj l r =
  Physical.join ~method_:Physical.Hash () ~left:l ~right:r
    ~preds:[ Expr.eq (Expr.col "x" "a") (Expr.col "y" "b") ]
    ~est_rows:3.0 ~est_cost:2.0

let test_leaves_in_order () =
  let plan = hj (hj (scan "a") (scan "b")) (scan "c") in
  Alcotest.(check (list string)) "left-to-right" [ "a"; "b"; "c" ]
    (List.map (fun i -> i.Fragment.id) (Physical.leaves plan))

let test_joins_post_order () =
  let inner = hj (scan "a") (scan "b") in
  let plan = hj inner (scan "c") in
  let order = Physical.joins_post_order plan in
  Alcotest.(check int) "two joins" 2 (List.length order);
  Alcotest.(check int) "child first" inner.Physical.id (List.hd order).Physical.id;
  Alcotest.(check int) "root last" plan.Physical.id (List.nth order 1).Physical.id

let test_deepest_join () =
  let inner = hj (scan "a") (scan "b") in
  let plan = hj inner (scan "c") in
  match Physical.deepest_join plan with
  | Some n -> Alcotest.(check int) "the scan-scan join" inner.Physical.id n.Physical.id
  | None -> Alcotest.fail "expected a deepest join"

let test_find_and_replace () =
  let inner = hj (scan "a") (scan "b") in
  let plan = hj inner (scan "c") in
  Alcotest.(check bool) "find hits" true (Physical.find plan inner.Physical.id <> None);
  let replacement = scan "t1" in
  let swapped = Physical.replace plan ~id:inner.Physical.id ~by:replacement in
  Alcotest.(check int) "one join left" 1 (Physical.n_joins swapped);
  Alcotest.(check (list string)) "rels recomputed" [ "t1"; "c" ]
    (List.map (fun i -> i.Fragment.id) (Physical.leaves swapped));
  (* replacing a missing id is the identity *)
  Alcotest.(check bool) "missing id identity" true
    (Physical.replace plan ~id:(-1) ~by:replacement == plan)

let test_index_nl_requires_index () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Physical.join ~method_:Physical.Index_nl () ~left:(scan "a") ~right:(scan "b")
            ~preds:[] ~est_rows:1.0 ~est_cost:1.0);
       false
     with Invalid_argument _ -> true)

let test_hash_rejects_index () =
  let tbl =
    Table.of_rows ~name:"ix"
      ~schema:(Schema.make "ix" [ ("id", Value.TInt) ])
      [ [| Value.Int 1 |] ]
  in
  let ix = Qs_storage.Index.build tbl ~column:"id" ~unique:true in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Physical.join ~method_:Physical.Hash
            ~index:(ix, { Expr.rel = "a"; name = "id" }, { Expr.rel = "b"; name = "id" })
            () ~left:(scan "a") ~right:(scan "b") ~preds:[] ~est_rows:1.0 ~est_cost:1.0);
       false
     with Invalid_argument _ -> true)

let test_join_leaf_sets () =
  let plan = hj (hj (scan "a") (scan "b")) (scan "c") in
  Alcotest.(check (list (list string))) "sorted alias sets"
    [ [ "a"; "b" ]; [ "a"; "b"; "c" ] ]
    (Physical.join_leaf_sets plan)

let test_rendering () =
  let plan = hj (scan "a") (scan "b") in
  let s = Physical.to_string plan in
  Alcotest.(check bool) "mentions method" true (Str_helpers.contains s "HashJoin");
  Alcotest.(check bool) "mentions scans" true
    (Str_helpers.contains s "Scan a" && Str_helpers.contains s "Scan b")

let test_fresh_ids () =
  let a = scan "a" and b = scan "b" in
  Alcotest.(check bool) "distinct ids" true (a.Physical.id <> b.Physical.id)

let suite =
  [
    Alcotest.test_case "leaves order" `Quick test_leaves_in_order;
    Alcotest.test_case "post order" `Quick test_joins_post_order;
    Alcotest.test_case "deepest join" `Quick test_deepest_join;
    Alcotest.test_case "find/replace" `Quick test_find_and_replace;
    Alcotest.test_case "index NL needs index" `Quick test_index_nl_requires_index;
    Alcotest.test_case "hash rejects index" `Quick test_hash_rejects_index;
    Alcotest.test_case "join leaf sets" `Quick test_join_leaf_sets;
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "fresh ids" `Quick test_fresh_ids;
  ]
