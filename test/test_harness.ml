(* The benchmark harness: runner metrics, estimator-time exclusion,
   timeout accounting, report rendering. *)

module Catalog = Qs_storage.Catalog
module Estimator = Qs_stats.Estimator
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Report = Qs_harness.Report
module Strategy = Qs_core.Strategy

let small_env () =
  let cat = Lazy.force Fixtures.cinema in
  Catalog.build_indexes cat Catalog.Pk_fk;
  Runner.make_env ~seed:11 cat

let queries () =
  let all = Lazy.force Fixtures.cinema_queries in
  List.filteri (fun i _ -> i < 4) all

let test_run_spj_metrics () =
  let env = small_env () in
  let rs = Runner.run_spj ~timeout:20.0 env Algos.querysplit (queries ()) in
  Alcotest.(check int) "one result per query" 4 (List.length rs);
  List.iter
    (fun (r : Runner.qresult) ->
      Alcotest.(check bool) "time >= 0" true (r.Runner.time >= 0.0);
      Alcotest.(check bool) "not timed out" false r.Runner.timed_out;
      Alcotest.(check bool) "bytes consistent" true
        (r.Runner.mat_bytes >= 0 && (r.Runner.mats = 0 || r.Runner.mat_bytes > 0)))
    rs

let test_total_time () =
  let env = small_env () in
  let rs = Runner.run_spj ~timeout:20.0 env Algos.default (queries ()) in
  let total = Runner.total_time rs in
  let manual = List.fold_left (fun a (r : Runner.qresult) -> a +. r.Runner.time) 0.0 rs in
  Alcotest.(check (float 1e-9)) "sum" manual total

let test_estimation_time_excluded () =
  (* the oracle's first pass executes fragments; reported engine time must
     stay within the same magnitude as the default's *)
  let env = small_env () in
  let d = Runner.total_time (Runner.run_spj ~timeout:20.0 env Algos.default (queries ())) in
  let o = Runner.total_time (Runner.run_spj ~timeout:20.0 env Algos.optimal (queries ())) in
  Alcotest.(check bool)
    (Printf.sprintf "optimal %.4f not absurdly above default %.4f" o d)
    true
    (o < Float.max (10.0 *. d) 1.0)

let test_timeout_counts_full () =
  let env = small_env () in
  let rs = Runner.run_spj ~timeout:0.000001 env Algos.default (queries ()) in
  List.iter
    (fun (r : Runner.qresult) ->
      Alcotest.(check bool) "timed out" true r.Runner.timed_out;
      Alcotest.(check (float 1e-9)) "full timeout charged" 0.000001 r.Runner.time)
    rs

let test_run_logical () =
  let cat = Qs_workload.Starbench.build ~scale:0.05 ~seed:1 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Runner.make_env cat in
  let trees =
    List.filteri (fun i _ -> i < 3) (Qs_workload.Starbench.queries cat ~seed:2)
  in
  let rs = Runner.run_logical ~timeout:20.0 env Algos.querysplit trees in
  Alcotest.(check int) "3 results" 3 (List.length rs);
  List.iter
    (fun (r : Runner.qresult) -> Alcotest.(check bool) "ok" false r.Runner.timed_out)
    rs

let test_report_rendering () =
  (* must not raise on ragged content *)
  Report.table ~title:"t" ~headers:[ "a"; "b" ] [ [ "1"; "2" ]; [ "longer"; "x" ] ];
  Report.series ~title:"s" ~x_label:"x" [ ("line", [ ("0", 1.0); ("1", 2.0) ]) ];
  Alcotest.(check string) "seconds" "1.500s" (Report.seconds 1.5);
  Alcotest.(check string) "mb" "1.00MB" (Report.bytes_mb (1024 * 1024))

let test_fig11_roster_complete () =
  let labels = List.map (fun a -> a.Runner.label) Algos.fig11_roster in
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " present") true (List.mem l labels))
    [
      "Default"; "Optimal"; "Reopt"; "Pop"; "IEF"; "Perron19"; "USE"; "Pessi."; "FS";
      "OptRange"; "NeuroCard"; "DeepDB"; "MSCN"; "QuerySplit";
    ];
  Alcotest.(check int) "14 algorithms" 14 (List.length labels)

let test_warm_flags () =
  List.iter
    (fun (a : Runner.algo) ->
      let expected =
        List.mem a.Runner.label [ "Optimal"; "NeuroCard"; "DeepDB"; "MSCN" ]
      in
      Alcotest.(check bool) (a.Runner.label ^ " warm flag") expected a.Runner.warm)
    Algos.fig11_roster

let test_parallel_run_matches_sequential () =
  (* same env, same queries: fanning cells across domains must not change
     results (digests) or merged metric counters — only wall-clock *)
  let qs = queries () in
  let seq = Runner.run_spj ~timeout:20.0 (small_env ()) Algos.querysplit qs in
  let par = Runner.run_spj ~timeout:20.0 ~domains:2 (small_env ()) Algos.querysplit qs in
  Alcotest.(check int) "same cardinality" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Runner.qresult) (b : Runner.qresult) ->
      Alcotest.(check string) "query order preserved" a.Runner.query b.Runner.query;
      Alcotest.(check string) ("digest of " ^ a.Runner.query) a.Runner.digest
        b.Runner.digest;
      Alcotest.(check int) "materializations" a.Runner.mats b.Runner.mats)
    seq par;
  let ms = Runner.metrics_of_results seq and mp = Runner.metrics_of_results par in
  let module Metrics = Qs_obs.Metrics in
  Alcotest.(check (list string)) "counter names" (Metrics.counter_names ms)
    (Metrics.counter_names mp);
  List.iter
    (fun name ->
      Alcotest.(check int) ("counter " ^ name) (Metrics.counter ms name)
        (Metrics.counter mp name))
    (Metrics.counter_names ms)

let test_join_parallelism_matches () =
  let qs = queries () in
  let seq = Runner.run_spj ~timeout:20.0 (small_env ()) Algos.default qs in
  let par =
    Runner.run_spj ~timeout:20.0 ~join_parallelism:4 (small_env ()) Algos.default qs
  in
  List.iter2
    (fun (a : Runner.qresult) (b : Runner.qresult) ->
      Alcotest.(check string) ("digest of " ^ a.Runner.query) a.Runner.digest
        b.Runner.digest)
    seq par

let suite =
  [
    Alcotest.test_case "run_spj metrics" `Quick test_run_spj_metrics;
    Alcotest.test_case "total time" `Quick test_total_time;
    Alcotest.test_case "estimation excluded" `Slow test_estimation_time_excluded;
    Alcotest.test_case "timeout accounting" `Quick test_timeout_counts_full;
    Alcotest.test_case "run_logical" `Quick test_run_logical;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "fig11 roster" `Quick test_fig11_roster_complete;
    Alcotest.test_case "warm flags" `Quick test_warm_flags;
    Alcotest.test_case "parallel run matches sequential" `Quick
      test_parallel_run_matches_sequential;
    Alcotest.test_case "join parallelism matches" `Quick test_join_parallelism_matches;
  ]
