(* Quickstart: build a three-table database by hand, declare its keys, and
   watch QuerySplit divide and execute a join query.

   Run with: dune exec examples/quickstart.exe *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Join_graph = Qs_query.Join_graph
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit
module Qsa = Qs_core.Qsa

let table name cols rows =
  Table.of_rows ~name ~schema:(Schema.make name cols)
    (List.map Array.of_list rows)

let () =
  (* 1. a mini movie database: two "relationship" tables around entities *)
  let i x = Value.Int x and s x = Value.Str x in
  let movies =
    table "movies"
      [ ("id", Value.TInt); ("title", Value.TStr); ("year", Value.TInt) ]
      [
        [ i 1; s "heat"; i 1995 ]; [ i 2; s "ronin"; i 1998 ];
        [ i 3; s "casino"; i 1995 ]; [ i 4; s "sphere"; i 1998 ];
      ]
  in
  let people =
    table "people"
      [ ("id", Value.TInt); ("name", Value.TStr) ]
      [ [ i 1; s "de niro" ]; [ i 2; s "pacino" ]; [ i 3; s "stone" ] ]
  in
  let casting =
    table "casting"
      [ ("id", Value.TInt); ("movie_id", Value.TInt); ("person_id", Value.TInt) ]
      [
        [ i 1; i 1; i 1 ]; [ i 2; i 1; i 2 ]; [ i 3; i 2; i 1 ];
        [ i 4; i 3; i 1 ]; [ i 5; i 3; i 3 ]; [ i 6; i 4; i 3 ];
      ]
  in
  let cat = Catalog.create () in
  Catalog.add_table cat ~pk:"id" movies;
  Catalog.add_table cat ~pk:"id" people;
  Catalog.add_table cat ~pk:"id" casting;
  Catalog.add_fk cat ~from_table:"casting" ~from_column:"movie_id" ~to_table:"movies"
    ~to_column:"id";
  Catalog.add_fk cat ~from_table:"casting" ~from_column:"person_id" ~to_table:"people"
    ~to_column:"id";
  Catalog.build_indexes cat Catalog.Pk_fk;

  (* 2. an SPJ query: who played in 1995 movies? *)
  let q =
    Query.make ~name:"q95"
      ~output:[ { Expr.rel = "m"; name = "title" }; { Expr.rel = "p"; name = "name" } ]
      [
        { Query.alias = "m"; table = "movies" };
        { Query.alias = "c"; table = "casting" };
        { Query.alias = "p"; table = "people" };
      ]
      [
        Expr.eq (Expr.col "c" "movie_id") (Expr.col "m" "id");
        Expr.eq (Expr.col "c" "person_id") (Expr.col "p" "id");
        Expr.Cmp (Expr.Eq, Expr.col "m" "year", Expr.vint 1995);
      ]
  in
  print_endline (Query.to_sql q);

  (* 3. the directed join graph QuerySplit builds (§4.1 of the paper) *)
  Format.printf "@.%a" Join_graph.pp (Join_graph.build cat q);

  (* 4. the subquery set chosen by the RCenter policy *)
  let registry = Stats_registry.create cat in
  let ctx = Strategy.make_ctx registry Estimator.default in
  Format.printf "@.RCenter subqueries:@.";
  List.iter
    (fun (sq, cost, rows) ->
      Format.printf "  %s  (est cost %.2f, est rows %.0f)@.    %s@." sq.Query.name cost
        rows
        (String.concat " " (String.split_on_char '\n' (Query.to_sql sq))))
    (Querysplit.subquery_plans ctx q
       Querysplit.default_config);

  (* 4b. the same query can come straight from SQL text *)
  let parsed =
    Qs_query.Sql.parse ~name:"q95_sql"
      "SELECT m.title, p.name FROM movies AS m, casting AS c, people AS p \
       WHERE c.movie_id = m.id AND c.person_id = p.id AND m.year = 1995"
  in
  assert (Query.aliases parsed = Query.aliases q);

  (* 5. run it *)
  let outcome = (Querysplit.strategy Querysplit.default_config).Strategy.run ctx q in
  Format.printf "@.result (%d rows, %.4fs, %d re-optimization iterations):@."
    (Table.n_rows outcome.Strategy.result)
    outcome.Strategy.elapsed
    (List.length outcome.Strategy.iterations);
  Format.printf "%a" (Table.pp_sample ~limit:10) outcome.Strategy.result
