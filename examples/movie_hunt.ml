(* A JOB-style workout: generate the Cinema (IMDB-shaped) database, pick a
   complex inverse-star query, and compare how Default / re-optimizers /
   QuerySplit / Optimal execute it — including the per-iteration trace that
   the paper's Figures 16–19 plot.

   Run with: dune exec examples/movie_hunt.exe *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Strategy = Qs_core.Strategy
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos

let () =
  print_endline "building the Cinema database (IMDB-shaped, skewed, correlated)...";
  let cat = Qs_workload.Cinema.build ~scale:0.5 ~seed:7 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Runner.make_env ~seed:7 cat in
  List.iter
    (fun (tbl : Table.t) ->
      Printf.printf "  %-16s %7d rows\n" tbl.Table.name (Table.n_rows tbl))
    (List.sort (fun (a : Table.t) b -> compare a.Table.name b.Table.name)
       (Catalog.tables cat));

  (* pick the widest generated query *)
  let queries = Qs_workload.Cinema.queries cat ~seed:11 ~n:25 in
  let q =
    List.fold_left
      (fun best cand ->
        if List.length cand.Query.rels > List.length best.Query.rels then cand else best)
      (List.hd queries) queries
  in
  Printf.printf "\nchosen query (%d relations):\n%s\n" (List.length q.Query.rels)
    (Query.to_sql q);

  let show label algo =
    let r = List.hd (Runner.run_spj ~timeout:30.0 env algo [ q ]) in
    Printf.printf "\n%-12s %.4fs engine time, %d materializations\n" label r.Runner.time
      r.Runner.mats;
    List.iter
      (fun (it : Strategy.iteration) ->
        Printf.printf "  iter %d: %-28s est=%-9.0f actual=%-8d %.4fs%s\n"
          it.Strategy.index it.Strategy.description it.Strategy.est_rows
          it.Strategy.actual_rows it.Strategy.elapsed
          (if it.Strategy.replanned then "  [re-planned]" else ""))
      r.Runner.iterations
  in
  show "Default" Algos.default;
  show "Pop" Algos.pop;
  show "Perron19" Algos.perron;
  show "QuerySplit" Algos.querysplit;
  show "Optimal" Algos.optimal
