(* Non-SPJ execution (§3.3): run TPC-H-like aggregate queries through the
   driver, which segments each logical tree at its non-SPJ operators and
   runs QuerySplit on every SPJ segment.

   Star schemas are QuerySplit's worst case — all joins are non-expanding
   PK–FK joins, so re-optimization rarely helps (the paper's §6.3.2); this
   example shows it also rarely *hurts*, because the split degenerates.

   Run with: dune exec examples/star_schema.exe *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Logical = Qs_plan.Logical
module Estimator = Qs_stats.Estimator
module Strategy = Qs_core.Strategy
module Driver = Qs_core.Driver
module Querysplit = Qs_core.Querysplit
module Static = Qs_core.Static
module Stats_registry = Qs_stats.Stats_registry

let () =
  let cat = Qs_workload.Starbench.build ~scale:0.5 ~seed:5 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let registry = Stats_registry.create cat in
  let trees = Qs_workload.Starbench.queries cat ~seed:6 in
  let qs = Querysplit.strategy Querysplit.default_config in
  Printf.printf "%-10s | %-8s | %-10s | %-10s | rows\n" "query" "segments" "default"
    "querysplit";
  print_endline (String.make 60 '-');
  List.iter
    (fun tree ->
      let ctx () = Strategy.make_ctx registry Estimator.default in
      let d = Driver.run Static.default (ctx ()) tree in
      let o = Driver.run qs (ctx ()) tree in
      assert (Table.n_rows d.Strategy.result = Table.n_rows o.Strategy.result);
      Printf.printf "%-10s | %8d | %9.4fs | %9.4fs | %d\n" (Logical.name tree)
        (Logical.spj_count tree) d.Strategy.elapsed o.Strategy.elapsed
        (Table.n_rows o.Strategy.result))
    trees;
  (* show one aggregation result in full *)
  let tree = List.nth trees 4 (* star_q5: revenue by nation *) in
  let out = Driver.run qs (Strategy.make_ctx registry Estimator.default) tree in
  Printf.printf "\n%s output:\n" (Logical.name tree);
  Format.printf "%a" (Table.pp_sample ~limit:25) out.Strategy.result
