(* The robustness experiment of the paper's Figure 10, in miniature: inject
   controlled noise into the cardinality estimates QuerySplit's SSA ranking
   sees — err_card = 2^N(mu, sigma^2) * true_card — and watch how execution
   time degrades as sigma grows.

   Run with: dune exec examples/robust_reopt.exe *)

module Catalog = Qs_storage.Catalog
module Estimator = Qs_stats.Estimator
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Querysplit = Qs_core.Querysplit
module Qsa = Qs_core.Qsa
module Ssa = Qs_core.Ssa

let () =
  let cat = Qs_workload.Cinema.build ~scale:0.3 ~seed:21 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Runner.make_env ~seed:21 cat in
  let queries = Qs_workload.Cinema.queries cat ~seed:22 ~n:20 in
  Printf.printf "20 JOB-like queries, err_card = 2^N(0, sigma^2) * true_card\n\n";
  Printf.printf "%-12s" "sigma";
  List.iter (fun qsa -> Printf.printf " %14s" (Qsa.policy_name qsa)) Qsa.all_policies;
  print_newline ();
  List.iter
    (fun sigma ->
      Printf.printf "%-12g" sigma;
      List.iter
        (fun qsa ->
          let algo =
            {
              (Algos.querysplit_with { Querysplit.default_config with Querysplit.qsa; ssa = Ssa.Phi4 }) with
              Runner.warm = sigma > 0.0;
              estimator =
                (fun env ->
                  if sigma = 0.0 then Estimator.default
                  else
                    Estimator.noisy ~seed:21 ~mu:0.0 ~sigma
                      ~exec:env.Runner.oracle_exec);
            }
          in
          let rs = Runner.run_spj ~timeout:20.0 env algo queries in
          Printf.printf " %13.4fs" (Runner.total_time rs))
        Qsa.all_policies;
      print_newline ())
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ]
