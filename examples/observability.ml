(* Observability: trace a plan's execution, render EXPLAIN ANALYZE, and
   aggregate a workload run into a metrics report.

   Run with: dune exec examples/observability.exe *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Executor = Qs_exec.Executor
module Strategy = Qs_core.Strategy
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Trace = Qs_obs.Trace
module Explain = Qs_obs.Explain
module Metrics = Qs_obs.Metrics
module Histogram = Qs_obs.Histogram

let () =
  (* 1. a small JOB-like database and one of its curated queries *)
  let cat = Qs_workload.Cinema.build ~scale:0.1 ~seed:7 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Runner.make_env ~seed:7 cat in
  let queries = Qs_workload.Cinema.queries cat ~seed:8 ~n:6 in
  let q = List.hd queries in

  (* 2. EXPLAIN: the optimizer's plan, estimates only *)
  let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  print_endline "=== EXPLAIN (estimates only) ===";
  print_string (Explain.render plan);

  (* 3. EXPLAIN ANALYZE: execute with a trace; every node now carries its
     actual cardinality, Q-error, wall-clock and data volume *)
  let trace = Trace.create () in
  let table, _stats = Executor.run ~trace plan in
  print_endline "\n=== EXPLAIN ANALYZE ===";
  print_string (Explain.render ~trace plan);
  Printf.printf "-- %s; %d result rows\n" (Explain.summary ~trace plan)
    (Table.n_rows table);

  (* 4. a workload run aggregated into per-strategy metrics *)
  let labelled =
    List.map
      (fun algo ->
        (algo.Runner.label, Runner.run_spj ~timeout:10.0 env algo queries))
      [ Algos.default; Algos.querysplit ]
  in
  print_endline "\n=== per-strategy Q-error distribution ===";
  List.iter
    (fun (label, rs) ->
      let m = Runner.metrics_of_results rs in
      match Metrics.histogram m "qerror" with
      | None -> Printf.printf "%-12s (no iterations)\n" label
      | Some h ->
          Printf.printf "%-12s p50=%.2f p95=%.2f max=%.2f over %d iterations\n"
            label
            (Histogram.percentile h 0.5)
            (Histogram.percentile h 0.95)
            (Histogram.max_value h) (Histogram.count h))
    labelled;
  print_endline "\n=== machine-readable report ===";
  print_endline (Runner.metrics_report labelled)
