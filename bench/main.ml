(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the per-experiment index), plus Bechamel
   micro-benchmarks of the engine substrate.

   Usage:
     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- table3 fig11 # selected experiments
     dune exec bench/main.exe -- micro        # substrate micro-benchmarks
     dune exec bench/main.exe -- --scale 0.2 --queries 40 --timeout 5 all
     dune exec bench/main.exe -- --domains 4 par_sweep   # parallel harness
     dune exec bench/main.exe -- --domains 4 --chunk-rows 16384 scan_sweep
     dune exec bench/main.exe -- --domains 4 --dp-limit 14 dp_sweep
     dune exec bench/main.exe -- --trace-out trace.json fig11  # Chrome trace
     dune exec bench/main.exe -- --metrics-out BENCH.json      # bench_diff dump
     dune exec bench/main.exe -- serve_sweep --metrics-out BENCH.json
     dune exec bench/main.exe -- --spill-dir /tmp/qs --buffer-chunks 8 io_sweep
     dune exec bench/main.exe -- --layout columnar scan_sweep
     # committed-baseline regeneration (see tools/check.sh): ONE run
     # writing every flavour — roster-only, roster+serve,
     # roster+serve+io, roster+serve+io+pipeline, additionally
     # +telemetry, and additionally +columnar — so their shared entries
     # are byte-identical (BENCH_pr4.json is a copy of the regenerated
     # BENCH_pr5.json)
     dune exec bench/main.exe -- --queries 12 \
       --baseline-out BENCH_pr5.json --serve-out BENCH_pr6.json \
       --io-out BENCH_pr7.json --pipeline-out BENCH_pr8.json \
       --telemetry-out BENCH_pr9.json --metrics-out BENCH_pr10.json
     cp BENCH_pr5.json BENCH_pr4.json *)

module Experiments = Qs_harness.Experiments

let experiments : (string * (Experiments.setup -> unit)) list =
  [
    ("table1", Experiments.table1);
    ("table3", Experiments.table3);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("table4", Experiments.table4);
    ("fig12", Experiments.fig12);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("table5", Experiments.table5);
    ("table6", Experiments.table6);
    ("fig16_19", Experiments.fig16_19);
    ("ablation", Experiments.ablation);
    ("metrics", Experiments.metrics);
    ("par_sweep", Experiments.par_sweep);
    ("scan_sweep", Experiments.scan_sweep);
    ("io_sweep", Experiments.io_sweep);
    ("dp_sweep", Experiments.dp_sweep);
    ("pipeline_sweep", Experiments.pipeline_sweep);
    ("serve_sweep", Experiments.serve_sweep);
    ("telemetry_sweep", Experiments.telemetry_sweep);
  ]

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the substrate                              *)
(* ---------------------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let module Value = Qs_storage.Value in
  let module Btree = Qs_storage.Btree in
  let module Catalog = Qs_storage.Catalog in
  let module Estimator = Qs_stats.Estimator in
  let module Optimizer = Qs_plan.Optimizer in
  let module Executor = Qs_exec.Executor in
  let module Strategy = Qs_core.Strategy in
  let rng = Qs_util.Rng.create 99 in
  let keys = Array.init 50_000 (fun _ -> Value.Int (Qs_util.Rng.int rng 1_000_000)) in
  let tree =
    let t = Btree.create () in
    Array.iteri (fun i k -> Btree.insert t k i) keys;
    t
  in
  let cat = Qs_workload.Cinema.build ~scale:0.1 ~seed:3 () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Qs_harness.Runner.make_env cat in
  let queries = Qs_workload.Cinema.queries cat ~seed:4 ~n:5 in
  let ctx = Strategy.make_ctx env.Qs_harness.Runner.registry Estimator.default in
  let frags = List.map (Strategy.fragment_of_query ctx) queries in
  let tests =
    [
      Test.make ~name:"btree_insert_50k"
        (Staged.stage (fun () ->
             let t = Btree.create () in
             Array.iteri (fun i k -> Btree.insert t k i) keys));
      Test.make ~name:"btree_lookup"
        (Staged.stage (fun () -> ignore (Btree.find tree keys.(17))));
      Test.make ~name:"analyze_title"
        (Staged.stage (fun () ->
             ignore (Qs_stats.Analyze.of_table (Catalog.table cat "title"))));
      Test.make ~name:"optimizer_dp_5_queries"
        (Staged.stage (fun () ->
             List.iter
               (fun f -> ignore (Optimizer.optimize cat Estimator.default f))
               frags));
      Test.make ~name:"executor_5_queries"
        (Staged.stage (fun () ->
             List.iter
               (fun f ->
                 let plan = (Optimizer.optimize cat Estimator.default f).Optimizer.plan in
                 ignore (Executor.run plan))
               frags));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~kde:(Some 10) () in
  let instance = Instance.monotonic_clock in
  Printf.printf "\nSubstrate micro-benchmarks (Bechamel, monotonic clock)\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Bechamel.Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        stats)
    tests

(* ---------------------------------------------------------------------- *)

let () =
  let setup = ref Experiments.default_setup in
  let chosen = ref [] in
  let want_micro = ref false in
  let trace_out = ref None in
  let metrics_out = ref None in
  let baseline_out = ref None in
  let serve_out = ref None in
  let io_out = ref None in
  let pipeline_out = ref None in
  let telemetry_out = ref None in
  let spill_dir = ref None in
  let buffer_chunks = ref 64 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        setup := { !setup with Experiments.scale = float_of_string v };
        parse rest
    | "--queries" :: v :: rest ->
        setup := { !setup with Experiments.n_queries = int_of_string v };
        parse rest
    | "--timeout" :: v :: rest ->
        setup := { !setup with Experiments.timeout = float_of_string v };
        parse rest
    | "--seed" :: v :: rest ->
        setup := { !setup with Experiments.seed = int_of_string v };
        parse rest
    | "--domains" :: v :: rest ->
        setup := { !setup with Experiments.domains = int_of_string v };
        parse rest
    | "--chunk-rows" :: v :: rest ->
        Qs_storage.Table.set_default_chunk_rows (int_of_string v);
        parse rest
    | "--layout" :: v :: rest ->
        (match Qs_storage.Table.layout_of_string v with
        | Some l -> Qs_storage.Table.set_default_layout l
        | None ->
            Printf.eprintf "unknown --layout %s (row|columnar)\n" v;
            exit 1);
        parse rest
    | "--dp-limit" :: v :: rest ->
        Qs_plan.Optimizer.set_dp_input_limit (int_of_string v);
        parse rest
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--metrics-out" :: v :: rest ->
        metrics_out := Some v;
        parse rest
    | "--baseline-out" :: v :: rest ->
        baseline_out := Some v;
        parse rest
    | "--serve-out" :: v :: rest ->
        serve_out := Some v;
        parse rest
    | "--io-out" :: v :: rest ->
        io_out := Some v;
        parse rest
    | "--pipeline-out" :: v :: rest ->
        pipeline_out := Some v;
        parse rest
    | "--telemetry-out" :: v :: rest ->
        telemetry_out := Some v;
        parse rest
    | "--spill-dir" :: v :: rest ->
        spill_dir := Some v;
        parse rest
    | "--buffer-chunks" :: v :: rest ->
        buffer_chunks := int_of_string v;
        parse rest
    | "micro" :: rest ->
        want_micro := true;
        parse rest
    | "all" :: rest ->
        chosen := List.map fst experiments;
        parse rest
    | name :: rest when List.mem_assoc name experiments ->
        chosen := !chosen @ [ name ];
        parse rest
    | name :: _ ->
        Printf.eprintf "unknown experiment %s; available: %s micro all\n" name
          (String.concat " " (List.map fst experiments));
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !trace_out <> None then
    setup := { !setup with Experiments.tracer = Some (Qs_util.Span.create ()) };
  (* --spill-dir: run the whole harness out-of-core — every table built
     from here on (base data included) spills its chunks under the
     given directory and reads them back through one shared buffer pool
     of --buffer-chunks frames, with a 2-domain I/O pool prefetching *)
  let io_pool =
    match !spill_dir with
    | None -> None
    | Some dir ->
        (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
        let bp = Qs_storage.Buffer_pool.create ~capacity:!buffer_chunks () in
        let io = Qs_util.Pool.create ~domains:2 () in
        Qs_storage.Buffer_pool.set_io_pool bp (Some io);
        Qs_storage.Buffer_pool.set_tracer bp !setup.Experiments.tracer;
        Qs_storage.Table.set_spill (Some (dir, bp));
        Printf.printf
          "spill mode: chunks under %s, buffer pool of %d frames\n" dir
          (Qs_storage.Buffer_pool.capacity bp);
        Some io
  in
  (* no arguments: run everything, micro-benchmarks included — unless the
     invocation is a pure --metrics-out / --baseline-out dump *)
  let default_run =
    !chosen = [] && (not !want_micro) && !metrics_out = None
    && !baseline_out = None && !serve_out = None && !io_out = None
    && !pipeline_out = None && !telemetry_out = None
  in
  if default_run then want_micro := true;
  let names = if default_run then List.map fst experiments else !chosen in
  let s = !setup in
  Printf.printf
    "QuerySplit benchmark harness — scale=%.2f, %d JOB-like queries, timeout=%.1fs, \
     seed=%d, domains=%d\n"
    s.Experiments.scale s.Experiments.n_queries s.Experiments.timeout
    s.Experiments.seed s.Experiments.domains;
  List.iter
    (fun name ->
      let f = List.assoc name experiments in
      let t0 = Qs_util.Timer.now () in
      f s;
      Printf.printf "\n[%s finished in %.1fs]\n%!" name
        (Qs_util.Timer.elapsed ~since:t0))
    names;
  if !want_micro then micro ();
  let write path json =
    Out_channel.with_open_text path (fun oc ->
        output_string oc json;
        output_char oc '\n');
    Printf.printf "wrote metrics JSON to %s\n%!" path
  in
  (match
     ( !metrics_out, !baseline_out, !serve_out, !io_out, !pipeline_out,
       !telemetry_out )
   with
  | None, None, None, None, None, None -> ()
  | Some path, None, None, None, None, None ->
      write path (Experiments.metrics_json s)
  | metrics, baseline, serve, io, pipeline, telemetry ->
      (* every requested flavour from one harness run, so full
         bench_diffs between the written files are meaningful *)
      let base_json, serve_json, io_json, pipeline_json, telemetry_json,
          full_json =
        Experiments.metrics_json_flavors s
      in
      Option.iter (fun path -> write path base_json) baseline;
      Option.iter (fun path -> write path serve_json) serve;
      Option.iter (fun path -> write path io_json) io;
      Option.iter (fun path -> write path pipeline_json) pipeline;
      Option.iter (fun path -> write path telemetry_json) telemetry;
      Option.iter (fun path -> write path full_json) metrics);
  Option.iter Qs_util.Pool.shutdown io_pool;
  match (!trace_out, s.Experiments.tracer) with
  | Some path, Some tr ->
      Qs_obs.Chrome_trace.write path tr;
      Printf.printf "wrote Chrome trace (%d spans) to %s\n%!"
        (Qs_util.Span.count tr) path
  | _ -> ()
