(* qsdemo: run any workload under any re-optimization strategy, or inspect
   how a query is planned and split.

     dune exec bin/qsdemo.exe -- run --workload cinema --algo querysplit
     dune exec bin/qsdemo.exe -- run --workload dsb --algo pop --index pk
     dune exec bin/qsdemo.exe -- run --explain -n 3        # EXPLAIN ANALYZE
     dune exec bin/qsdemo.exe -- run --profile -n 4        # span profile + journal
     dune exec bin/qsdemo.exe -- run --serve -n 20 --domains 2  # serving front end
     dune exec bin/qsdemo.exe -- run --serve --policy fifo -n 20
     dune exec bin/qsdemo.exe -- run --serve --stats-out /tmp/qs.stats -n 50
     dune exec bin/qsdemo.exe -- top --file /tmp/qs.stats       # live dashboard
     dune exec bin/qsdemo.exe -- run --spill-dir /tmp/qs --buffer-chunks 8
     dune exec bin/qsdemo.exe -- run --layout columnar -n 10   # vectorized scans
     dune exec bin/qsdemo.exe -- plan --workload cinema --query 3 *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Buffer_pool = Qs_storage.Buffer_pool
module Query = Qs_query.Query
module Join_graph = Qs_query.Join_graph
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit
module Runner = Qs_harness.Runner
module Algos = Qs_harness.Algos
module Executor = Qs_exec.Executor
module Trace = Qs_obs.Trace
module Explain = Qs_obs.Explain
module Profile = Qs_obs.Profile
module Span = Qs_util.Span
module Server = Qs_serve.Server
module Scheduler = Qs_serve.Scheduler
module Telemetry = Qs_obs.Telemetry

open Cmdliner

let algos =
  [
    ("querysplit", Algos.querysplit); ("default", Algos.default);
    ("optimal", Algos.optimal); ("reopt", Algos.reopt); ("pop", Algos.pop);
    ("ief", Algos.ief); ("perron19", Algos.perron); ("use", Algos.use);
    ("pessimistic", Algos.pessimistic); ("fs", Algos.fs);
    ("optrange", Algos.optrange); ("neurocard", Algos.neurocard);
    ("deepdb", Algos.deepdb); ("mscn", Algos.mscn);
  ]

let workload_arg =
  let doc = "Workload: cinema (JOB-like), starbench (TPC-H-like) or dsb." in
  Arg.(value & opt (enum [ ("cinema", `Cinema); ("starbench", `Star); ("dsb", `Dsb) ]) `Cinema
       & info [ "workload"; "w" ] ~doc)

let scale_arg =
  Arg.(value & opt float 0.3 & info [ "scale" ] ~doc:"Data scale factor.")

let seed_arg = Arg.(value & opt int 2023 & info [ "seed" ] ~doc:"Generator seed.")

let queries_arg =
  Arg.(value & opt int 20 & info [ "queries"; "n" ] ~doc:"Number of JOB-like queries.")

let timeout_arg =
  Arg.(value & opt float 30.0 & info [ "timeout" ] ~doc:"Per-query timeout (s).")

let index_arg =
  let doc = "Index configuration: pk or pkfk." in
  Arg.(value & opt (enum [ ("pk", Catalog.Pk_only); ("pkfk", Catalog.Pk_fk) ]) Catalog.Pk_fk
       & info [ "index" ] ~doc)

let algo_arg =
  let doc = "Algorithm: " ^ String.concat ", " (List.map fst algos) ^ "." in
  Arg.(value & opt (enum algos) Algos.querysplit & info [ "algo"; "a" ] ~doc)

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ]
           ~doc:"Fan queries across this many domains (1 = sequential).")

let join_par_arg =
  Arg.(value & opt int 1
       & info [ "parallel-join" ]
           ~doc:
             "Partition executor hash joins across this many domains \
              (1 = off; results are identical either way).")

let chunk_rows_arg =
  Arg.(value & opt int 0
       & info [ "chunk-rows" ]
           ~doc:
             "Rows per storage chunk (0 = keep the default, 64k). Applied \
              before the catalog is built; smaller chunks expose more scan \
              parallelism.")

(* applied before any table is built, so every table of the run is chunked
   at the requested size *)
let apply_chunk_rows n = if n > 0 then Table.set_default_chunk_rows n

let layout_arg =
  Arg.(value & opt string "row"
       & info [ "layout" ]
           ~doc:
             "Chunk layout for every table built during the run: 'row' \
              (boxed row arrays, the default) or 'columnar' (column-major \
              chunks with unboxed arrays, dictionary-encoded strings and \
              vectorized filter kernels). Results are identical either \
              way.")

(* applied before any table is built, so base tables and intermediates
   share the requested layout *)
let apply_layout name =
  match Table.layout_of_string name with
  | Some l -> Table.set_default_layout l
  | None ->
      Printf.eprintf "unknown --layout %s (row|columnar)\n" name;
      exit 1

let spill_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "spill-dir" ]
           ~doc:
             "Run fully out-of-core: every table built during the run \
              (base data and intermediates alike) spills its chunks to \
              files under this directory and reads them back through a \
              shared buffer pool (see --buffer-chunks). Results are \
              identical to in-memory execution.")

let buffer_chunks_arg =
  Arg.(value & opt int 64
       & info [ "buffer-chunks" ]
           ~doc:
             "Buffer-pool capacity in chunk frames (with --spill-dir). \
              Pools smaller than the working set evict under CLOCK \
              second-chance; a pool of 1 still executes every query, \
              just with more I/O.")

(* applied before any table is built, so the whole run — catalog
   included — goes through the chunk files; the 2-domain I/O pool
   prefetches ahead of sequential scans and is shut down at exit *)
let apply_spill tracer spill_dir buffer_chunks =
  match spill_dir with
  | None -> ()
  | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      let bp = Buffer_pool.create ~capacity:buffer_chunks () in
      let io = Qs_util.Pool.create ~domains:2 () in
      at_exit (fun () -> Qs_util.Pool.shutdown io);
      Buffer_pool.set_io_pool bp (Some io);
      Buffer_pool.set_tracer bp tracer;
      Table.set_spill (Some (dir, bp))

let dp_limit_arg =
  Arg.(value & opt int 0
       & info [ "dp-limit" ]
           ~doc:
             "Maximum optimizer inputs enumerated by dynamic programming \
              (0 = keep the default, 13). Fragments with more inputs fall \
              back to the greedy planner.")

let apply_dp_limit n = if n > 0 then Qs_plan.Optimizer.set_dp_input_limit n

let stats_arg =
  Arg.(value & opt bool true
       & info [ "collect-stats" ] ~doc:"ANALYZE materialized temps (the §6.4 switch).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:
             "Record spans during the run and print the text profile: \
              per-phase time breakdown, per-domain utilization, pool \
              queue-wait percentiles and the re-optimization journal \
              (one line per reopt step: selected subquery, score, \
              estimated vs. observed cardinality, replan decision).")

let serve_arg =
  Arg.(value & flag
       & info [ "serve" ]
           ~doc:
             "Route the queries through the concurrent serving front end \
              (bounded admission queue, cost-aware scheduling with aging, \
              shared epoch-stamped plan cache) instead of the plain runner. \
              Pool width and concurrency follow --domains. Cinema workload \
              only.")

let policy_arg =
  let policy_conv =
    let parse s =
      match Scheduler.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg ("unknown policy " ^ s ^ " (fifo | cost-aware)"))
    in
    let print ppf p = Format.pp_print_string ppf (Scheduler.policy_name p) in
    Arg.conv (parse, print)
  in
  Arg.(value & opt policy_conv Scheduler.Cost_aware
       & info [ "policy" ]
           ~doc:"Serving scheduler policy (--serve only): fifo or cost-aware.")

let stats_out_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-out" ]
           ~doc:
             "With --serve: publish the flight recorder's live text \
              dashboard to this file as queries complete (atomic \
              write-then-rename, throttled to ~2 Hz, plus a final frame), \
              so `qsdemo top --file ...` in another terminal renders the \
              run while it is in flight.")

let prom_out_arg =
  Arg.(value & opt (some string) None
       & info [ "prom-out" ]
           ~doc:
             "With --serve: write the telemetry counters and latency \
              quantiles in Prometheus text exposition format to this file \
              when the run finishes.")

let explain_arg =
  Arg.(value & flag
       & info [ "explain" ]
           ~doc:
             "EXPLAIN ANALYZE: execute the optimizer's plan with tracing and \
              print the tree annotated with per-node estimated vs. actual \
              cardinality, Q-error, time and volume.")

(* EXPLAIN ANALYZE one SPJ query: optimize it whole (the strategies execute
   many plans; the annotated tree belongs to a single one), run with a
   trace, render. *)
let explain_query cat registry (q : Query.t) =
  let ctx = Strategy.make_ctx registry Estimator.default in
  let frag = Strategy.fragment_of_query ctx q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  let trace = Trace.create () in
  let table, _ = Executor.run ~trace plan in
  Printf.printf "%s\n%s-- %s; %d result rows\n" (Query.to_sql q)
    (Explain.render ~trace plan)
    (Explain.summary ~trace plan) (Table.n_rows table)

let build_cinema ~scale ~seed ~index =
  let cat = Qs_workload.Cinema.build ~scale ~seed () in
  Catalog.build_indexes cat index;
  cat

(* Atomically publish a dashboard frame: write beside the target and
   rename over it, so a concurrent `qsdemo top` never reads a torn
   frame. *)
let publish_file path text =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc -> output_string oc text);
  Sys.rename tmp path

(* Serve the cinema queries through the concurrent front end: two
   interleaved sessions over one shared pool, per-query turnaround
   reported alongside the server's own counters. With --stats-out the
   flight recorder's dashboard is republished as results arrive. *)
let serve_demo ~scale ~seed ~n ~index ~domains ~policy ~stats_out ~prom_out
    tracer =
  let cat = build_cinema ~scale ~seed ~index in
  let env = Runner.make_env ~seed cat in
  let queries = Qs_workload.Cinema.queries cat ~seed:(seed + 1) ~n in
  Qs_util.Pool.with_pool ?tracer ~domains:(max 1 domains) (fun pool ->
      let config =
        { Server.default_config with
          Server.policy;
          concurrency = max 1 domains;
        }
      in
      let server =
        Server.create ~config ?spans:tracer ~pool env.Runner.registry
          Estimator.default
      in
      Printf.printf
        "serving %d cinema queries over 2 sessions (%s scheduling, pool width \
         %d)\n"
        (List.length queries)
        (Scheduler.policy_name policy)
        (Qs_util.Pool.size pool);
      let last_frame = ref neg_infinity in
      let publish_stats ~force () =
        match stats_out with
        | None -> ()
        | Some path ->
            let now = Qs_util.Timer.now () in
            if force || now -. !last_frame >= 0.5 then (
              last_frame := now;
              publish_file path
                (Telemetry.render (Server.telemetry_snapshot server)))
      in
      let tickets =
        List.mapi
          (fun i q ->
            Server.submit server ~session:(Printf.sprintf "s%d" (i mod 2)) q)
          queries
      in
      publish_stats ~force:false ();
      let rs =
        List.map
          (fun tk ->
            let r = Server.await server tk in
            publish_stats ~force:false ();
            r)
          tickets
      in
      Server.drain server;
      publish_stats ~force:true ();
      (match prom_out with
      | None -> ()
      | Some path ->
          publish_file path (Telemetry.to_prometheus (Server.telemetry server)));
      List.iter
        (fun (r : Server.result) ->
          let status =
            match r.Server.status with
            | Server.Completed -> ""
            | Server.Deadline_exceeded -> " DEADLINE"
            | Server.Cancelled -> " CANCELLED"
            | Server.Failed msg -> " FAILED: " ^ msg
          in
          Printf.printf
            "  %-14s %s  wait %8.4fs  exec %8.4fs  rows=%-6d%s%s\n"
            r.Server.query r.Server.session r.Server.queue_wait
            r.Server.exec_time r.Server.row_count
            (if r.Server.cache_hit then "  cached-plan" else "")
            status)
        rs;
      let m = Server.metrics server in
      Printf.printf
        "completed %d/%d; plan cache %d hits / %d misses; %d scheduling \
         rounds; peak queue %d\n"
        (Qs_obs.Metrics.counter m "completed")
        (Qs_obs.Metrics.counter m "submitted")
        (Qs_obs.Metrics.counter m "plan_cache_hits")
        (Qs_obs.Metrics.counter m "plan_cache_misses")
        (Qs_obs.Metrics.counter m "rounds")
        (Server.peak_queue server))

let run_cmd workload scale seed n timeout index algo collect_stats domains
    join_parallelism explain profile serve policy stats_out prom_out chunk_rows
    layout dp_limit spill_dir buffer_chunks =
  apply_chunk_rows chunk_rows;
  apply_layout layout;
  apply_dp_limit dp_limit;
  let tracer = if profile then Some (Span.create ()) else None in
  apply_spill tracer spill_dir buffer_chunks;
  let print_profile () =
    match tracer with
    | None -> ()
    | Some tr ->
        print_newline ();
        print_string (Profile.summary tr)
  in
  match workload with
  | `Cinema when serve ->
      serve_demo ~scale ~seed ~n ~index ~domains ~policy ~stats_out ~prom_out
        tracer;
      print_profile ()
  | (`Star | `Dsb) when serve ->
      prerr_endline "--serve is only supported for the cinema (SPJ) workload";
      exit 1
  | `Cinema when explain ->
      let cat = build_cinema ~scale ~seed ~index in
      let env = Runner.make_env ~seed cat in
      let queries = Qs_workload.Cinema.queries cat ~seed:(seed + 1) ~n in
      List.iteri
        (fun i q ->
          if i > 0 then print_newline ();
          explain_query cat env.Runner.registry q)
        queries
  | `Cinema ->
      let cat = build_cinema ~scale ~seed ~index in
      let env = Runner.make_env ~seed cat in
      let queries = Qs_workload.Cinema.queries cat ~seed:(seed + 1) ~n in
      Printf.printf "%s on %d cinema queries (scale %.2f)\n" algo.Runner.label
        (List.length queries) scale;
      let rs =
        Runner.run_spj ~collect_stats ~timeout ~domains ~join_parallelism ?tracer
          env algo queries
      in
      List.iter
        (fun (r : Runner.qresult) ->
          Printf.printf "  %-14s %8.4fs%s  mats=%d (%s)\n" r.Runner.query r.Runner.time
            (if r.Runner.timed_out then " TIMEOUT" else "")
            r.Runner.mats
            (Qs_harness.Report.bytes_mb r.Runner.mat_bytes))
        rs;
      Printf.printf "total: %s\n" (Qs_harness.Report.seconds (Runner.total_time rs));
      print_profile ()
  | (`Star | `Dsb) when explain ->
      prerr_endline "--explain is only supported for the cinema (SPJ) workload";
      exit 1
  | `Star | `Dsb ->
      let cat, trees =
        match workload with
        | `Star ->
            let cat = Qs_workload.Starbench.build ~scale ~seed () in
            (cat, Qs_workload.Starbench.queries cat ~seed:(seed + 1))
        | _ ->
            let cat = Qs_workload.Dsb.build ~scale ~seed () in
            (cat, Qs_workload.Dsb.nonspj_queries cat ~seed:(seed + 1))
      in
      Catalog.build_indexes cat index;
      let env = Runner.make_env ~seed cat in
      Printf.printf "%s on %d non-SPJ queries\n" algo.Runner.label (List.length trees);
      let rs =
        Runner.run_logical ~collect_stats ~timeout ~domains ~join_parallelism
          ?tracer env algo trees
      in
      List.iter
        (fun (r : Runner.qresult) ->
          Printf.printf "  %-14s %8.4fs%s\n" r.Runner.query r.Runner.time
            (if r.Runner.timed_out then " TIMEOUT" else ""))
        rs;
      Printf.printf "total: %s\n" (Qs_harness.Report.seconds (Runner.total_time rs));
      print_profile ()

let plan_cmd scale seed qidx chunk_rows layout dp_limit =
  apply_chunk_rows chunk_rows;
  apply_layout layout;
  apply_dp_limit dp_limit;
  let cat = build_cinema ~scale ~seed ~index:Catalog.Pk_fk in
  let env = Runner.make_env ~seed cat in
  let queries = Qs_workload.Cinema.queries cat ~seed:(seed + 1) ~n:(qidx + 1) in
  let q = List.nth queries qidx in
  print_endline (Query.to_sql q);
  Format.printf "@.%a@." Join_graph.pp (Join_graph.build cat q);
  let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
  let frag = Strategy.fragment_of_query ctx q in
  Printf.printf "--- default plan ---\n";
  print_string (Physical.to_string (Optimizer.optimize cat Estimator.default frag).Optimizer.plan);
  Printf.printf "\n--- optimal plan (true cardinalities) ---\n";
  let oracle = Estimator.oracle ~exec:env.Runner.oracle_exec in
  print_string (Physical.to_string (Optimizer.optimize cat oracle frag).Optimizer.plan);
  Printf.printf "\n--- QuerySplit subqueries (RCenter) ---\n";
  List.iter
    (fun (sq, cost, rows) ->
      Printf.printf "%s (est cost %.1f, est rows %.0f)\n%s\n\n" sq.Query.name cost rows
        (Query.to_sql sq))
    (Querysplit.subquery_plans ctx q Querysplit.default_config)

let sql_cmd workload scale seed index explain chunk_rows layout sql_text =
  apply_chunk_rows chunk_rows;
  apply_layout layout;
  let cat =
    match workload with
    | `Cinema -> build_cinema ~scale ~seed ~index
    | `Star ->
        let c = Qs_workload.Starbench.build ~scale ~seed () in
        Catalog.build_indexes c index;
        c
    | `Dsb ->
        let c = Qs_workload.Dsb.build ~scale ~seed () in
        Catalog.build_indexes c index;
        c
  in
  match Qs_query.Sql.parse_result sql_text with
  | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  | Ok q -> (
      match Query.validate cat q with
      | Error msg ->
          Printf.eprintf "invalid query: %s\n" msg;
          exit 1
      | Ok () when explain ->
          let env = Runner.make_env ~seed cat in
          explain_query cat env.Runner.registry q
      | Ok () ->
          let env = Runner.make_env ~seed cat in
          let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
          let outcome =
            (Querysplit.strategy Querysplit.default_config).Strategy.run ctx q
          in
          List.iter
            (fun (it : Strategy.iteration) ->
              Printf.printf "iter %d: %-24s est=%-10.0f actual=%-8d %.4fs\n"
                it.Strategy.index it.Strategy.description it.Strategy.est_rows
                it.Strategy.actual_rows it.Strategy.elapsed)
            outcome.Strategy.iterations;
          Printf.printf "\n%d rows in %.4fs\n"
            (Table.n_rows outcome.Strategy.result)
            outcome.Strategy.elapsed;
          Format.printf "%a" (Table.pp_sample ~limit:20) outcome.Strategy.result)

(* `qsdemo top`: live dashboard over a stats file published by
   `run --serve --stats-out`. Rereads the file every --interval seconds
   and reprints it, clearing the screen between frames when stdout is a
   terminal; the publisher's write-then-rename keeps every frame whole. *)
let top_cmd file interval iterations =
  let clear = Unix.isatty Unix.stdout in
  let frame i =
    let text =
      try Some (In_channel.with_open_text file In_channel.input_all)
      with Sys_error _ -> None
    in
    if clear then print_string "\027[H\027[2J";
    (match text with
    | Some s ->
        if (not clear) && i > 0 then print_endline "---";
        print_string s
    | None -> Printf.printf "qsdemo top: waiting for %s ...\n" file);
    flush stdout
  in
  let rec loop i =
    if iterations = 0 || i < iterations then (
      frame i;
      if iterations = 0 || i + 1 < iterations then Unix.sleepf interval;
      loop (i + 1))
  in
  loop 0

let run_term =
  Term.(
    const run_cmd $ workload_arg $ scale_arg $ seed_arg $ queries_arg $ timeout_arg
    $ index_arg $ algo_arg $ stats_arg $ domains_arg $ join_par_arg $ explain_arg
    $ profile_arg $ serve_arg $ policy_arg $ stats_out_arg $ prom_out_arg
    $ chunk_rows_arg $ layout_arg $ dp_limit_arg $ spill_dir_arg
    $ buffer_chunks_arg)

let query_arg =
  Arg.(value & opt int 0 & info [ "query"; "q" ] ~doc:"Query index to inspect.")

let plan_term =
  Term.(
    const plan_cmd $ scale_arg $ seed_arg $ query_arg $ chunk_rows_arg
    $ layout_arg $ dp_limit_arg)

let sql_text_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The SQL text.")

let sql_term =
  Term.(
    const sql_cmd $ workload_arg $ scale_arg $ seed_arg $ index_arg $ explain_arg
    $ chunk_rows_arg $ layout_arg $ sql_text_arg)

let top_file_arg =
  Arg.(required & opt (some string) None
       & info [ "file"; "f" ] ~docv:"FILE"
           ~doc:"Stats file published by `run --serve --stats-out`.")

let top_interval_arg =
  Arg.(value & opt float 1.0
       & info [ "interval"; "i" ] ~doc:"Seconds between dashboard refreshes.")

let top_iterations_arg =
  Arg.(value & opt int 0
       & info [ "iterations" ]
           ~doc:"Stop after this many frames (0 = refresh until interrupted).")

let top_term =
  Term.(const top_cmd $ top_file_arg $ top_interval_arg $ top_iterations_arg)

let () =
  let run =
    Cmd.v (Cmd.info "run" ~doc:"Run a workload under an algorithm") run_term
  in
  let plan =
    Cmd.v (Cmd.info "plan" ~doc:"Inspect planning and query splitting") plan_term
  in
  let sql =
    Cmd.v
      (Cmd.info "sql" ~doc:"Run an SPJ SQL query through QuerySplit")
      sql_term
  in
  let top =
    Cmd.v
      (Cmd.info "top"
         ~doc:"Render a --stats-out file as a live serving dashboard")
      top_term
  in
  let group =
    Cmd.group
      (Cmd.info "qsdemo" ~doc:"QuerySplit demonstration CLI" ~version:"1.0")
      [ run; plan; sql; top ]
  in
  exit (Cmd.eval group)
