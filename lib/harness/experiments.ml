module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Similarity = Qs_plan.Similarity
module Strategy = Qs_core.Strategy
module Querysplit = Qs_core.Querysplit
module Qsa = Qs_core.Qsa
module Ssa = Qs_core.Ssa
module Plan_driven = Qs_core.Plan_driven
module Cinema = Qs_workload.Cinema
module Starbench = Qs_workload.Starbench
module Dsb = Qs_workload.Dsb

type setup = {
  scale : float;
  seed : int;
  n_queries : int;
  timeout : float;
  domains : int;
  tracer : Qs_util.Span.t option;
}

let default_setup =
  {
    scale = 0.5;
    seed = 2023;
    n_queries = 91;
    timeout = 5.0;
    domains = 1;
    tracer = None;
  }

(* --- workload environments -------------------------------------------- *)

(* Environments are expensive (data generation, query curation, and the
   oracle's true-cardinality memo); share them across experiments. *)
let env_cache : (float * int * int, Runner.env * Query.t list) Hashtbl.t =
  Hashtbl.create 4

let cinema_env ?(index = Catalog.Pk_fk) s =
  let key = (s.scale, s.seed, s.n_queries) in
  let env, queries =
    match Hashtbl.find_opt env_cache key with
    | Some v -> v
    | None ->
        let cat = Cinema.build ~scale:s.scale ~seed:s.seed () in
        let env = Runner.make_env ~seed:s.seed cat in
        let queries = Cinema.queries cat ~seed:(s.seed + 1) ~n:s.n_queries in
        Hashtbl.replace env_cache key (env, queries);
        (env, queries)
  in
  (* the index configuration is the only per-experiment difference; data,
     statistics and the oracle memo are index-independent *)
  Catalog.build_indexes env.Runner.catalog index;
  (env, queries)

let pct n d = Printf.sprintf "%.0f%%" (100.0 *. float_of_int n /. float_of_int d)

(* ---------------------------------------------------------------------- *)
(* Table 1: initial-vs-optimal plan similarity                             *)
(* ---------------------------------------------------------------------- *)

let table1 s =
  Report.section "Table 1: plan divergence of the default optimizer";
  let env, queries = cinema_env s in
  let oracle = Estimator.oracle ~exec:env.Runner.oracle_exec in
  let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
  let buckets = Hashtbl.create 4 in
  List.iter
    (fun q ->
      let frag = Strategy.fragment_of_query ctx q in
      let p_def = (Optimizer.optimize env.Runner.catalog Estimator.default frag).Optimizer.plan in
      let p_opt = (Optimizer.optimize env.Runner.catalog oracle frag).Optimizer.plan in
      let b = Similarity.bucket (Similarity.score p_def p_opt) in
      Hashtbl.replace buckets b (1 + Option.value (Hashtbl.find_opt buckets b) ~default:0))
    queries;
  let n = List.length queries in
  let get b = Option.value (Hashtbl.find_opt buckets b) ~default:0 in
  Report.table ~title:"similarity of initial vs. optimal plan"
    ~headers:[ "Similarity"; "0"; "1"; "2"; ">2" ]
    [ [ "Ratio"; pct (get "0") n; pct (get "1") n; pct (get "2") n; pct (get ">2") n ] ]

(* ---------------------------------------------------------------------- *)
(* Table 3: QSA x SSA policy grid                                          *)
(* ---------------------------------------------------------------------- *)

let ssa_grid = Ssa.all_phi @ [ Ssa.Global_deep ]

let table3 s =
  Report.section "Table 3: JOB-like total time per QSA x SSA policy";
  let env, queries = cinema_env s in
  let rows =
    List.map
      (fun ssa ->
        Ssa.policy_name ssa
        :: List.map
             (fun qsa ->
               let algo = Algos.querysplit_with { Querysplit.default_config with Querysplit.qsa; ssa } in
               let rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries in
               Report.seconds (Runner.total_time rs))
             Qsa.all_policies)
      ssa_grid
  in
  Report.table ~title:"total execution time"
    ~headers:("SSA \\ QSA" :: List.map Qsa.policy_name Qsa.all_policies)
    rows

(* ---------------------------------------------------------------------- *)
(* Figure 10: robustness to injected CE noise                              *)
(* ---------------------------------------------------------------------- *)

let noisy_algo s config ~mu ~sigma =
  let base = Algos.querysplit_with config in
  {
    base with
    Runner.label = Printf.sprintf "%s sigma=%g" base.Runner.label sigma;
    warm = (sigma <> 0.0 || mu <> 0.0);
    estimator =
      (fun env ->
        if sigma = 0.0 && mu = 0.0 then Estimator.default
        else Estimator.noisy ~seed:s.seed ~mu ~sigma ~exec:env.Runner.oracle_exec);
  }

let fig10 s =
  Report.section "Figure 10: QuerySplit under erroneous cardinality estimation";
  let env, queries = cinema_env s in
  (* the noise sweep runs 40+ configurations; every second query keeps the
     grid affordable without changing the curves' shape *)
  let queries = List.filteri (fun i _ -> i mod 2 = 0) queries in
  Printf.printf "(noise sweep over %d of the queries)\n" (List.length queries);
  let run config ~mu ~sigma =
    Runner.total_time
      (Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env (noisy_algo s config ~mu ~sigma) queries)
  in
  let sigmas = [ 0.0; 0.5; 1.0; 2.0; 4.0 ] in
  let qsa_series =
    List.map
      (fun qsa ->
        ( Qsa.policy_name qsa ^ " + phi4",
          List.map
            (fun sigma ->
              (Printf.sprintf "%g" sigma, run { Querysplit.default_config with Querysplit.qsa; ssa = Ssa.Phi4 } ~mu:0.0 ~sigma))
            sigmas ))
      Qsa.all_policies
  in
  Report.series ~title:"total time vs sigma (mu = 0)" ~x_label:"sigma" qsa_series;
  let phi_series =
    List.map
      (fun ssa ->
        ( "RCenter + " ^ Ssa.policy_name ssa,
          List.map
            (fun sigma ->
              ( Printf.sprintf "%g" sigma,
                run { Querysplit.default_config with Querysplit.qsa = Qsa.RCenter; ssa } ~mu:0.0 ~sigma ))
            sigmas ))
      Ssa.all_phi
  in
  Report.series ~title:"total time vs sigma per cost function (mu = 0)" ~x_label:"sigma"
    phi_series;
  let mus = [ -1.0; 0.0; 1.0 ] in
  let mu_series =
    [
      ( "RCenter + phi4 (sigma = 1)",
        List.map
          (fun mu ->
            ( Printf.sprintf "%g" mu,
              run Querysplit.default_config ~mu ~sigma:1.0 ))
          mus );
    ]
  in
  Report.series ~title:"total time vs mu (sigma = 1)" ~x_label:"mu" mu_series

(* ---------------------------------------------------------------------- *)
(* Figure 11 + Table 4                                                     *)
(* ---------------------------------------------------------------------- *)

let fig11 s =
  Report.section "Figure 11: JOB-like end-to-end comparison";
  List.iter
    (fun (cfg, cfg_name) ->
      let env, queries = cinema_env ~index:cfg s in
      let rows =
        List.map
          (fun algo ->
            let rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries in
            let tos = List.length (List.filter (fun r -> r.Runner.timed_out) rs) in
            [
              algo.Runner.label;
              Report.seconds (Runner.total_time rs);
              (if tos > 0 then Printf.sprintf "%d TO" tos else "");
            ])
          Algos.fig11_roster
      in
      Report.table
        ~title:(Printf.sprintf "total time, %s indexes" cfg_name)
        ~headers:[ "algorithm"; "total time"; "timeouts" ]
        rows)
    [ (Catalog.Pk_only, "Pk-only"); (Catalog.Pk_fk, "Pk+Fk") ]

let table4 s =
  Report.section "Table 4: materialization frequency and memory";
  let env, queries = cinema_env s in
  let rows =
    List.map
      (fun algo ->
        let rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries in
        let n_q = List.length rs in
        let total_mats = List.fold_left (fun a r -> a + r.Runner.mats) 0 rs in
        let total_bytes = List.fold_left (fun a r -> a + r.Runner.mat_bytes) 0 rs in
        let per_sub =
          if total_mats = 0 then 0.0
          else float_of_int total_bytes /. float_of_int total_mats /. 1048576.0
        in
        [
          algo.Runner.label;
          Printf.sprintf "%.2f" per_sub;
          Printf.sprintf "%.2f" (float_of_int total_mats /. float_of_int n_q);
          Printf.sprintf "%.2f" (float_of_int total_bytes /. float_of_int n_q /. 1048576.0);
        ])
      (Algos.reopt_roster @ [ Algos.optimal ])
  in
  Report.table ~title:"per-query materialization"
    ~headers:
      [ "algorithm"; "avg MB per subquery"; "avg mat. freq per query"; "total MB per query" ]
    rows

(* ---------------------------------------------------------------------- *)
(* Figures 12-14: Starbench (TPC-H-like) and DSB                           *)
(* ---------------------------------------------------------------------- *)

let logical_comparison ?tracer ~title ~timeout ~domains env trees roster =
  let rows =
    List.map
      (fun algo ->
        let rs = Runner.run_logical ?tracer ~domains ~timeout env algo trees in
        let tos = List.length (List.filter (fun r -> r.Runner.timed_out) rs) in
        [
          algo.Runner.label;
          Report.seconds (Runner.total_time rs);
          (if tos > 0 then Printf.sprintf "%d TO" tos else "");
        ])
      roster
  in
  Report.table ~title ~headers:[ "algorithm"; "total time"; "timeouts" ] rows

let fig12 s =
  Report.section "Figure 12: TPC-H-like (Starbench) execution time";
  let cat = Starbench.build ~scale:s.scale ~seed:s.seed () in
  List.iter
    (fun (cfg, cfg_name) ->
      Catalog.build_indexes cat cfg;
      let env = Runner.make_env ~seed:s.seed cat in
      let trees = Starbench.queries cat ~seed:(s.seed + 1) in
      logical_comparison ?tracer:s.tracer
        ~title:(Printf.sprintf "Starbench, %s indexes" cfg_name)
        ~timeout:s.timeout ~domains:s.domains env trees Algos.nonspj_roster)
    [ (Catalog.Pk_only, "Pk-only"); (Catalog.Pk_fk, "Pk+Fk") ]

let fig13 s =
  Report.section "Figure 13: DSB SPJ queries";
  let cat = Dsb.build ~scale:s.scale ~seed:s.seed () in
  List.iter
    (fun (cfg, cfg_name) ->
      Catalog.build_indexes cat cfg;
      let env = Runner.make_env ~seed:s.seed cat in
      let queries = Dsb.spj_queries cat ~seed:(s.seed + 1) in
      let rows =
        List.map
          (fun algo ->
            let rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries in
            [ algo.Runner.label; Report.seconds (Runner.total_time rs) ])
          Algos.fig11_roster
      in
      Report.table
        ~title:(Printf.sprintf "DSB SPJ, %s indexes" cfg_name)
        ~headers:[ "algorithm"; "total time" ] rows)
    [ (Catalog.Pk_only, "Pk-only"); (Catalog.Pk_fk, "Pk+Fk") ]

let fig14 s =
  Report.section "Figure 14: DSB non-SPJ queries";
  let cat = Dsb.build ~scale:s.scale ~seed:s.seed () in
  Catalog.build_indexes cat Catalog.Pk_fk;
  let env = Runner.make_env ~seed:s.seed cat in
  let trees = Dsb.nonspj_queries cat ~seed:(s.seed + 1) in
  logical_comparison ?tracer:s.tracer ~title:"DSB non-SPJ, Pk+Fk indexes"
    ~timeout:s.timeout ~domains:s.domains env trees Algos.nonspj_roster

(* ---------------------------------------------------------------------- *)
(* Figure 15: statistics collection on/off                                 *)
(* ---------------------------------------------------------------------- *)

let fig15 s =
  Report.section "Figure 15: runtime statistics collection on temps";
  let env, queries = cinema_env s in
  let rows =
    List.map
      (fun algo ->
        let on =
          Runner.total_time
            (Runner.run_spj ?tracer:s.tracer ~collect_stats:true ~domains:s.domains ~timeout:s.timeout env algo queries)
        in
        let off =
          Runner.total_time
            (Runner.run_spj ?tracer:s.tracer ~collect_stats:false ~domains:s.domains ~timeout:s.timeout env algo queries)
        in
        [ algo.Runner.label; Report.seconds on; Report.seconds off ])
      Algos.reopt_roster
  in
  Report.table ~title:"total time with and without ANALYZE on temps"
    ~headers:[ "algorithm"; "stats on"; "stats off (row count only)" ]
    rows

(* ---------------------------------------------------------------------- *)
(* Table 5: existing re-optimizers with the phi cost functions             *)
(* ---------------------------------------------------------------------- *)

let table5 s =
  Report.section "Table 5: plan-driven re-optimizers driven by phi rankings";
  let env, queries = cinema_env s in
  let base_policies =
    [
      ("Reopt", Plan_driven.reopt);
      ("Pop", Plan_driven.pop);
      ("IEF", Plan_driven.ief);
      ("Perron19", Plan_driven.perron);
    ]
  in
  let run_with label policy selector =
    let strategy =
      match selector with
      | None -> Plan_driven.strategy policy
      | Some sel -> Plan_driven.strategy ~selector:sel policy
    in
    let algo =
      { Runner.label; strategy; estimator = (fun _ -> Estimator.default); warm = false }
    in
    Runner.total_time (Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries)
  in
  let rows =
    List.map
      (fun ssa ->
        Ssa.policy_name ssa
        :: List.map
             (fun (label, policy) ->
               Report.seconds (run_with label policy (Some (Plan_driven.Phi ssa))))
             base_policies)
      Ssa.all_phi
    @ [
        "original"
        :: List.map
             (fun (label, policy) -> Report.seconds (run_with label policy None))
             base_policies;
      ]
  in
  Report.table ~title:"total JOB-like time"
    ~headers:("selector \\ algo" :: List.map fst base_policies)
    rows

(* ---------------------------------------------------------------------- *)
(* Table 6 + Figures 16-19: categorisation and timelines                   *)
(* ---------------------------------------------------------------------- *)

type categorized = {
  cat_name : string;
  query : string;
  qs_time : float;
  best_other : float;
  effect : float;
}

let max_intermediate (r : Runner.qresult) =
  List.fold_left (fun a i -> max a i.Strategy.actual_rows) 0 r.Runner.iterations

let categorize s =
  let env, queries = cinema_env s in
  let others = [ Algos.pop; Algos.ief; Algos.perron ] in
  let qs_rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env Algos.querysplit queries in
  let other_rs =
    List.map (fun a -> Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env a queries) others
  in
  let results =
    List.mapi
      (fun i (qs : Runner.qresult) ->
        let alt = List.map (fun rs -> List.nth rs i) other_rs in
        let best_other =
          List.fold_left (fun a (r : Runner.qresult) -> Float.min a r.Runner.time)
            Float.infinity alt
        in
        let min_other_peak =
          List.fold_left (fun a r -> min a (max_intermediate r)) max_int alt
        in
        let qs_peak = max_intermediate qs in
        let effect = (best_other -. qs.Runner.time) /. Float.max 1e-9 best_other in
        let cat_name =
          if Float.abs effect < 0.15 then "No difference"
          else if effect < 0.0 then "Worse"
          else if float_of_int qs_peak < 0.3 *. float_of_int min_other_peak then
            "Avoided Large Join"
          else "Delayed Large Join"
        in
        { cat_name; query = qs.Runner.query; qs_time = qs.Runner.time; best_other; effect })
      qs_rs
  in
  (env, queries, results, qs_rs, other_rs, others)

let table6 s =
  Report.section "Table 6: query categories vs the best alternative re-optimizer";
  let _, queries, results, _, _, _ = categorize s in
  let n = List.length queries in
  let rows =
    List.map
      (fun cat ->
        let in_cat = List.filter (fun r -> r.cat_name = cat) results in
        let freq = List.length in_cat in
        let avg_effect =
          if freq = 0 then 0.0
          else
            List.fold_left (fun a r -> a +. r.effect) 0.0 in_cat /. float_of_int freq
        in
        [ cat; Printf.sprintf "%d / %d" freq n; Printf.sprintf "%.1f%%" (100.0 *. avg_effect) ])
      [ "Avoided Large Join"; "Delayed Large Join"; "No difference"; "Worse" ]
  in
  Report.table ~title:"category frequency and average performance effect"
    ~headers:[ "Category"; "Frequency"; "Average Perf. Effect" ]
    rows

let fig16_19 s =
  Report.section "Figures 16-19: re-optimization timelines per category";
  let _, queries, results, qs_rs, other_rs, others = categorize s in
  ignore queries;
  List.iter
    (fun cat ->
      match List.find_opt (fun r -> r.cat_name = cat) results with
      | None -> Printf.printf "\n[%s] no query in this category\n" cat
      | Some rep ->
          Printf.printf "\n[%s] representative query: %s\n" cat rep.query;
          let idx =
            let rec find i = function
              | [] -> 0
              | r :: _ when r.query = rep.query -> i
              | _ :: rest -> find (i + 1) rest
            in
            find 0 results
          in
          let print_timeline label (r : Runner.qresult) =
            Printf.printf "  %-12s sizes:" label;
            List.iter (fun it -> Printf.printf " %d" it.Strategy.actual_rows) r.Runner.iterations;
            Printf.printf "\n  %-12s times:" label;
            List.iter
              (fun (it : Strategy.iteration) -> Printf.printf " %.4f" it.Strategy.elapsed)
              r.Runner.iterations;
            print_newline ()
          in
          print_timeline "QuerySplit" (List.nth qs_rs idx);
          List.iteri
            (fun ai rs -> print_timeline (List.nth others ai).Runner.label (List.nth rs idx))
            other_rs)
    [ "Avoided Large Join"; "Delayed Large Join"; "No difference"; "Worse" ]

(* ---------------------------------------------------------------------- *)
(* Ablation (beyond the paper): QuerySplit implementation choices          *)
(* ---------------------------------------------------------------------- *)

let ablation s =
  Report.section "Ablation: QuerySplit implementation choices";
  let env, queries = cinema_env s in
  let variants =
    [
      ("full", Querysplit.default_config);
      ("no plan cache", { Querysplit.default_config with Querysplit.plan_cache = false });
      ("no column pruning",
       { Querysplit.default_config with Querysplit.prune_columns = false });
      ("neither",
       {
         Querysplit.default_config with
         Querysplit.plan_cache = false;
         prune_columns = false;
       });
    ]
  in
  let rows =
    List.map
      (fun (label, config) ->
        let algo = Algos.querysplit_with config in
        let rs = Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout env algo queries in
        let bytes = List.fold_left (fun a r -> a + r.Runner.mat_bytes) 0 rs in
        [
          label;
          Report.seconds (Runner.total_time rs);
          Printf.sprintf "%.1f" (float_of_int bytes /. 1048576.0);
        ])
      variants
  in
  Report.table ~title:"QuerySplit variants"
    ~headers:[ "variant"; "total time"; "materialized MB (all queries)" ]
    rows

(* ---------------------------------------------------------------------- *)
(* Observability: per-strategy metrics report                              *)
(* ---------------------------------------------------------------------- *)

(* One registry per fig11-roster strategy over the JOB-like workload —
   the shared substrate of the [metrics] experiment and of the bench
   tool's [--metrics-out] dump (which bench_diff then compares). *)
let metrics_results s =
  let env, queries = cinema_env s in
  List.map
    (fun algo ->
      ( algo.Runner.label,
        Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout
          env algo queries ))
    Algos.fig11_roster

let json_of_labelled ?(extra = []) s labelled =
  let regs =
    List.map (fun (l, rs) -> (l, Runner.metrics_of_results rs)) labelled
  in
  let regs = regs @ extra in
  (* with a tracer attached, per-phase span times ride along as one more
     pseudo-strategy entry so they land in the same machine-readable dump *)
  let regs =
    match s.tracer with
    | None -> regs
    | Some tr ->
        let m = Qs_obs.Metrics.create () in
        Runner.fold_span_times tr m;
        regs @ [ ("phases", m) ]
  in
  Qs_obs.Metrics.json_of_many regs

let metrics s =
  Report.section "Metrics: per-strategy execution metrics over the JOB-like workload";
  let labelled = metrics_results s in
  (* the JSON blob is the machine-readable artifact; the table is the
     human summary of the same registries *)
  let rows =
    List.map
      (fun (label, rs) ->
        let m = Runner.metrics_of_results rs in
        let q p =
          match Qs_obs.Metrics.histogram m "qerror" with
          | Some h -> Printf.sprintf "%.2f" (Qs_obs.Histogram.percentile h p)
          | None -> "-"
        in
        [
          label;
          string_of_int (Qs_obs.Metrics.counter m "queries");
          string_of_int (Qs_obs.Metrics.counter m "timeouts");
          string_of_int (Qs_obs.Metrics.counter m "replans");
          string_of_int (Qs_obs.Metrics.counter m "materializations");
          q 0.5;
          q 0.95;
        ])
      labelled
  in
  Report.table ~title:"execution metrics"
    ~headers:
      [ "algorithm"; "queries"; "TO"; "replans"; "mats"; "qerror p50"; "qerror p95" ]
    rows;
  print_endline "metrics report (JSON):";
  print_endline (json_of_labelled s labelled)

(* ---------------------------------------------------------------------- *)
(* Parallel harness: wall-clock sweep over domain counts                   *)
(* ---------------------------------------------------------------------- *)

let counters_equal a b =
  Qs_obs.Metrics.counter_names a = Qs_obs.Metrics.counter_names b
  && List.for_all
       (fun n -> Qs_obs.Metrics.counter a n = Qs_obs.Metrics.counter b n)
       (Qs_obs.Metrics.counter_names a)

let par_sweep s =
  Report.section "Parallel harness: strategy sweep wall-clock vs domains";
  let env, queries = cinema_env s in
  let roster = Algos.reopt_roster in
  let sweep domains =
    let t0 = Qs_util.Timer.now () in
    let rs =
      List.map
        (fun algo ->
          ( algo.Runner.label,
            Runner.run_spj ?tracer:s.tracer ~domains ~timeout:s.timeout env algo
              queries ))
        roster
    in
    (Qs_util.Timer.elapsed ~since:t0, rs)
  in
  (* warm once so environment caches (oracle memo, base-table stats) do
     not favour whichever sweep runs second *)
  ignore (sweep 1);
  let seq_wall, seq = sweep 1 in
  let par_domains = max 2 s.domains in
  let par_wall, par = sweep par_domains in
  let digests rs = List.concat_map (fun (_, l) -> List.map (fun r -> r.Runner.digest) l) rs in
  let identical = digests seq = digests par in
  let metrics_ok =
    List.for_all2
      (fun (_, a) (_, b) ->
        counters_equal (Runner.metrics_of_results a) (Runner.metrics_of_results b))
      seq par
  in
  Report.table
    ~title:
      (Printf.sprintf "wall-clock for %d strategies x %d queries"
         (List.length roster) (List.length queries))
    ~headers:[ "domains"; "wall-clock"; "speedup" ]
    [
      [ "1"; Report.seconds seq_wall; "1.00x" ];
      [
        string_of_int par_domains;
        Report.seconds par_wall;
        Printf.sprintf "%.2fx" (seq_wall /. Float.max 1e-9 par_wall);
      ];
    ];
  Printf.printf "result digests byte-identical: %s\n"
    (if identical then "yes" else "NO (per-query timeouts differ under load?)");
  Printf.printf "merged metric counters equal:  %s\n"
    (if metrics_ok then "yes" else "NO")

(* ---------------------------------------------------------------------- *)
(* Sharded storage: chunked scan/filter/aggregate wall-clock vs domains    *)
(* ---------------------------------------------------------------------- *)

(* Scoped layout override: [f] runs with the global default chunk layout
   set to [layout]; the previous default is restored on the way out. *)
let with_layout layout f =
  let module Table = Qs_storage.Table in
  let saved = Table.default_layout () in
  Table.set_default_layout layout;
  Fun.protect ~finally:(fun () -> Table.set_default_layout saved) f

let scan_sweep s =
  Report.section "Columnar storage: per-layout scan throughput";
  let module Table = Qs_storage.Table in
  let module Schema = Qs_storage.Schema in
  let module Value = Qs_storage.Value in
  let module Expr = Qs_query.Expr in
  let module Executor = Qs_exec.Executor in
  let module Relop = Qs_exec.Relop in
  let module Logical = Qs_plan.Logical in
  let n = int_of_float (2_000_000.0 *. s.scale) in
  (* wide fact table: the selective filter touches one column out of
     thirteen, so the row layout hauls whole boxed rows through the scan
     while the columnar kernel reads one unboxed int array and gathers
     only the survivors *)
  let n_pad = 8 in
  let cats = [| "alpha"; "beta"; "gamma"; "delta" |] in
  let schema =
    Schema.make "f"
      ([
         ("id", Value.TInt); ("grp", Value.TInt); ("amount", Value.TInt);
         ("price", Value.TFloat); ("cat", Value.TStr);
       ]
      @ List.init n_pad (fun k -> (Printf.sprintf "pad%d" k, Value.TInt)))
  in
  (* deterministic synthetic fact table: LCG-ish values, no Rng needed *)
  let rows =
    Array.init n (fun i ->
        let h = (i * 2654435761) land 0x3fffffff in
        Array.append
          [|
            Value.Int i; Value.Int (h mod 97); Value.Int (h mod 1000);
            Value.Float (float_of_int (h mod 500) /. 8.0);
            Value.Str cats.(h mod 4);
          |]
          (Array.init n_pad (fun k -> Value.Int (h lxor k))))
  in
  (* ~2% selectivity: the vectorized path's best case *)
  let filters = [ Expr.Cmp (Expr.Lt, Expr.col "f" "amount", Expr.vint 20) ] in
  let group_by = [ { Expr.rel = "f"; name = "grp" } ] in
  let aggs =
    [
      { Logical.fn = Logical.Sum; arg = Some (Expr.col "f" "amount"); label = "total" };
      { Logical.fn = Logical.Count_star; arg = None; label = "n" };
    ]
  in
  let best_of_3 f =
    let best = ref Float.infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Qs_util.Timer.now () in
      let r = f () in
      let dt = Qs_util.Timer.elapsed ~since:t0 in
      if dt < !best then best := dt;
      out := Some r
    done;
    (!best, Option.get !out)
  in
  let par_domains = max 2 s.domains in
  let mrows wall = float_of_int n /. Float.max 1e-9 wall /. 1e6 in
  let all_identical = ref true in
  let rates = Hashtbl.create 4 in
  let rows_out =
    List.map
      (fun layout ->
        with_layout layout (fun () ->
            let tbl = Table.create ~chunk_rows:65_536 ~name:"f" ~schema rows in
            let v0 = Executor.vectorized_chunks () in
            let seq_wall, filtered =
              best_of_3 (fun () -> Executor.filter_table tbl filters)
            in
            let vec = (Executor.vectorized_chunks () - v0) / 3 in
            let par_wall, par_filtered =
              Qs_util.Pool.with_pool ~domains:par_domains (fun p ->
                  best_of_3 (fun () -> Executor.filter_table ~pool:p tbl filters))
            in
            let agg_wall, agged =
              best_of_3 (fun () -> Relop.aggregate ~name:"g" ~group_by ~aggs tbl)
            in
            let digest =
              Runner.result_digest filtered ^ Runner.result_digest agged
            in
            if Runner.result_digest par_filtered <> Runner.result_digest filtered
            then all_identical := false;
            Hashtbl.replace rates (Table.layout_name layout)
              (digest, mrows seq_wall);
            [
              Table.layout_name layout;
              Report.seconds seq_wall;
              Printf.sprintf "%.1f" (mrows seq_wall);
              Report.seconds par_wall;
              Printf.sprintf "%.1f" (mrows par_wall);
              Report.seconds agg_wall;
              string_of_int vec;
            ]))
      [ Table.Row; Table.Columnar ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "selective filter over %d rows x %d cols (seq and %d domains), \
          group-by aggregate"
         n (5 + n_pad) par_domains)
    ~headers:
      [ "layout"; "filter seq"; "Mrows/s"; Printf.sprintf "par(%d)" par_domains;
        "Mrows/s"; "aggregate"; "vec chunks" ]
    rows_out;
  let d_row, r_row = Hashtbl.find rates "row" in
  let d_col, r_col = Hashtbl.find rates "columnar" in
  if d_row <> d_col then all_identical := false;
  Printf.printf "columnar vs row filter throughput: %.2fx (sequential)\n"
    (r_col /. Float.max 1e-9 r_row);
  Printf.printf "filter+aggregate digests byte-identical across layouts: %s\n"
    (if !all_identical then "yes" else "NO")

(* ---------------------------------------------------------------------- *)
(* Out-of-core: buffer-pool execution under memory pressure                *)
(* ---------------------------------------------------------------------- *)

module Buffer_pool = Qs_storage.Buffer_pool

(* Scoped spill mode: a scratch directory and a fresh buffer pool around
   [f]; the previous global spill config is restored (and the directory
   removed) on the way out, even on exception. *)
let with_spill ?io_pool ?tracer ?(prefetch = 2) ~capacity f =
  let dir = Filename.temp_file "qs_bench_spill" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let bp = Buffer_pool.create ~prefetch ~capacity () in
  Buffer_pool.set_io_pool bp io_pool;
  Buffer_pool.set_tracer bp tracer;
  let saved = Qs_storage.Table.spill_config () in
  Qs_storage.Table.set_spill (Some (dir, bp));
  Fun.protect
    ~finally:(fun () ->
      Qs_storage.Table.set_spill saved;
      (try
         Array.iter
           (fun f ->
             try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f bp)

(* The deterministic out-of-core entry of the metrics dump: a fixed
   synthetic table is scanned twice and randomly probed, sequentially,
   through a 4-frame pool with no I/O workers attached — the fault
   sequence, and with it every counter and the hit rate, is exact for a
   fixed corpus. The prefetch counters are pinned at 0 by construction
   (no pool, so reads never race a background worker). *)
let io_metrics_entry _s =
  let module Table = Qs_storage.Table in
  let module Schema = Qs_storage.Schema in
  let module Value = Qs_storage.Value in
  with_spill ~capacity:4 (fun bp ->
      let schema = Schema.make "io" [ ("id", Value.TInt); ("pay", Value.TStr) ] in
      let tbl =
        Table.create ~chunk_rows:1024 ~name:"io" ~schema
          (Array.init 16_384 (fun i ->
               [| Value.Int i; Value.Str (string_of_int (i * 31)) |]))
      in
      let sink = ref 0 in
      for _ = 1 to 2 do
        Table.iter (fun r -> sink := !sink + Array.length r) tbl
      done;
      for i = 0 to 255 do
        sink := !sink + Array.length (Table.row tbl (i * 64))
      done;
      ignore !sink;
      let st = Buffer_pool.stats bp in
      let m = Qs_obs.Metrics.create () in
      let c name v = Qs_obs.Metrics.incr ~by:v m name in
      c "buffer_hits" st.Buffer_pool.hits;
      c "buffer_misses" st.Buffer_pool.misses;
      c "buffer_coalesced" st.Buffer_pool.coalesced;
      c "buffer_bypasses" st.Buffer_pool.bypasses;
      c "buffer_evictions" st.Buffer_pool.evictions;
      c "prefetch_issued" st.Buffer_pool.prefetch_issued;
      c "prefetch_used" st.Buffer_pool.prefetch_used;
      c "prefetch_wasted" st.Buffer_pool.prefetch_wasted;
      c "spilled_chunks" (Table.n_chunks tbl);
      Qs_obs.Metrics.observe m "hit_rate"
        (float_of_int st.Buffer_pool.hits
        /. float_of_int (max 1 (st.Buffer_pool.hits + st.Buffer_pool.misses)));
      m)

let io_sweep s =
  Report.section "Out-of-core: buffer pool under memory pressure, prefetch overlap";
  let module Table = Qs_storage.Table in
  let module Schema = Qs_storage.Schema in
  let module Value = Qs_storage.Value in
  let module Expr = Qs_query.Expr in
  let module Executor = Qs_exec.Executor in
  let module Relop = Qs_exec.Relop in
  let module Logical = Qs_plan.Logical in
  let n = max 100_000 (int_of_float (1_000_000.0 *. s.scale)) in
  let schema =
    Schema.make "f"
      [ ("id", Value.TInt); ("grp", Value.TInt); ("amount", Value.TInt) ]
  in
  let rows =
    Array.init n (fun i ->
        let h = (i * 2654435761) land 0x3fffffff in
        [| Value.Int i; Value.Int (h mod 97); Value.Int (h mod 1000) |])
  in
  let filters = [ Expr.Cmp (Expr.Lt, Expr.col "f" "amount", Expr.vint 500) ] in
  let group_by = [ { Expr.rel = "f"; name = "grp" } ] in
  let aggs =
    [
      { Logical.fn = Logical.Sum; arg = Some (Expr.col "f" "amount"); label = "total" };
      { Logical.fn = Logical.Count_star; arg = None; label = "n" };
    ]
  in
  (* sequential consumer: the only asynchrony is the pool's prefetch,
     so any io-span time on other tracks inside the Execute interval is
     disk I/O genuinely overlapped with the scan's CPU work *)
  let run_once tbl =
    let t0 = Qs_util.Timer.now () in
    let filtered = Executor.filter_table tbl filters in
    let agged = Relop.aggregate ~name:"g" ~group_by ~aggs tbl in
    let wall = Qs_util.Timer.elapsed ~since:t0 in
    (wall, Runner.result_digest filtered ^ Runner.result_digest agged)
  in
  let chunk_rows = 16_384 in
  let resident_tbl = Table.create ~chunk_rows ~name:"f" ~schema rows in
  let n_chunks = Table.n_chunks resident_tbl in
  ignore (run_once resident_tbl) (* warm *);
  let res_wall, res_digest = run_once resident_tbl in
  let tr = match s.tracer with Some t -> t | None -> Qs_util.Span.create () in
  let all_identical = ref true in
  let max_overlap = ref 0.0 in
  let caps =
    List.sort_uniq compare [ 1; 4; max 2 (n_chunks / 4); n_chunks + 2 ]
    |> List.rev
  in
  let rows_out =
    List.map
      (fun capacity ->
        Qs_util.Pool.with_pool ~domains:2 (fun io ->
            with_spill ~io_pool:io ~tracer:tr ~prefetch:3 ~capacity (fun bp ->
                let tbl = Table.create ~chunk_rows ~name:"f" ~schema rows in
                let label = Printf.sprintf "io_sweep cap=%d" capacity in
                let wall, digest =
                  Qs_util.Span.span (Some tr) Qs_util.Span.Execute label
                    (fun () -> run_once tbl)
                in
                if digest <> res_digest then all_identical := false;
                let st = Buffer_pool.stats bp in
                (* overlap: io spans on *other* domains' tracks
                   intersected with this run's Execute interval *)
                let spans = Qs_util.Span.spans tr in
                let exec =
                  List.find
                    (fun (sp : Qs_util.Span.span) -> sp.name = label)
                    spans
                in
                let ends (sp : Qs_util.Span.span) = sp.start +. sp.dur in
                let overlap =
                  List.fold_left
                    (fun acc (sp : Qs_util.Span.span) ->
                      if sp.cat = Qs_util.Span.Io && sp.track <> exec.track
                      then
                        acc
                        +. Float.max 0.0
                             (Float.min (ends sp) (ends exec)
                             -. Float.max sp.start exec.start)
                      else acc)
                    0.0 spans
                in
                max_overlap := Float.max !max_overlap overlap;
                [
                  string_of_int capacity;
                  Printf.sprintf "%d/%d" (min capacity n_chunks) n_chunks;
                  Report.seconds wall;
                  Printf.sprintf "%.2fx" (wall /. Float.max 1e-9 res_wall);
                  string_of_int st.Buffer_pool.hits;
                  string_of_int st.Buffer_pool.misses;
                  string_of_int st.Buffer_pool.evictions;
                  Printf.sprintf "%d/%d" st.Buffer_pool.prefetch_used
                    st.Buffer_pool.prefetch_issued;
                  Printf.sprintf "%.1fms" (1000.0 *. overlap);
                  (if digest = res_digest then "ok" else "MISMATCH");
                ])))
      caps
  in
  Report.table
    ~title:
      (Printf.sprintf
         "filter + group-by over %d rows out-of-core (resident: %s)" n
         (Report.seconds res_wall))
    ~headers:
      [
        "frames"; "of chunks"; "wall"; "vs resident"; "hits"; "misses";
        "evicted"; "pf used/issued"; "async io overlap"; "digest";
      ]
    rows_out;
  Printf.printf "out-of-core digests byte-identical to in-memory: %s\n"
    (if !all_identical then "yes" else "NO");
  Printf.printf "prefetch I/O overlapped with execution: %s\n"
    (if !max_overlap > 0.0 then "yes" else "NO")

(* ---------------------------------------------------------------------- *)
(* Parallel optimizer: DP wall-clock vs join count vs domains, plus memo   *)
(* ---------------------------------------------------------------------- *)

(* A PK-FK chain of [n_rels] relations: r0 <- r1 <- ... — the worst case
   for the DP (one connected component, every level populated) with a
   data size small enough that optimize time dominates. *)
let chain_catalog s n_rels =
  let module Value = Qs_storage.Value in
  let module Schema = Qs_storage.Schema in
  let module Table = Qs_storage.Table in
  let cat = Catalog.create () in
  let rows = max 100 (int_of_float (400.0 *. s.scale)) in
  for i = 0 to n_rels - 1 do
    let name = Printf.sprintf "r%d" i in
    let tbl =
      Table.create ~name
        ~schema:(Schema.make name [ ("id", Value.TInt); ("fk", Value.TInt) ])
        (Array.init rows (fun j ->
             [| Value.Int (j + 1); Value.Int (1 + (j * 7 mod rows)) |]))
    in
    Catalog.add_table cat ~pk:"id" tbl;
    if i > 0 then
      Catalog.add_fk cat ~from_table:name ~from_column:"fk"
        ~to_table:(Printf.sprintf "r%d" (i - 1))
        ~to_column:"id"
  done;
  Catalog.build_indexes cat Catalog.Pk_fk;
  cat

let chain_query n_rels =
  let module Expr = Qs_query.Expr in
  let alias i = Printf.sprintf "r%d" i in
  Query.make
    ~name:(Printf.sprintf "chain%d" n_rels)
    (List.init n_rels (fun i -> { Query.alias = alias i; table = alias i }))
    (List.init (n_rels - 1) (fun i ->
         Expr.Cmp
           (Expr.Eq, Expr.col (alias (i + 1)) "fk", Expr.col (alias i) "id")))

(* A hub join: every relation joins the same hub key (r0.id), so every
   step of a multi-step run re-joins on one column — the shape where a
   materialized temp's partition layout is reusable step after step. *)
let hub_catalog s n_rels =
  let module Value = Qs_storage.Value in
  let module Schema = Qs_storage.Schema in
  let module Table = Qs_storage.Table in
  let cat = Catalog.create () in
  let rows = max 100 (int_of_float (400.0 *. s.scale)) in
  for i = 0 to n_rels - 1 do
    let name = Printf.sprintf "r%d" i in
    let tbl =
      Table.create ~name
        ~schema:(Schema.make name [ ("id", Value.TInt); ("fk", Value.TInt) ])
        (Array.init rows (fun j ->
             [| Value.Int (j + 1); Value.Int (1 + (j * 7 mod rows)) |]))
    in
    Catalog.add_table cat ~pk:"id" tbl;
    if i > 0 then
      Catalog.add_fk cat ~from_table:name ~from_column:"fk" ~to_table:"r0"
        ~to_column:"id"
  done;
  Catalog.build_indexes cat Catalog.Pk_fk;
  cat

let hub_query n_rels =
  let module Expr = Qs_query.Expr in
  let alias i = Printf.sprintf "r%d" i in
  Query.make
    ~name:(Printf.sprintf "hub%d" n_rels)
    (List.init n_rels (fun i -> { Query.alias = alias i; table = alias i }))
    (List.init (n_rels - 1) (fun i ->
         Expr.Cmp (Expr.Eq, Expr.col (alias (i + 1)) "fk", Expr.col "r0" "id")))

let dp_sweep s =
  Report.section
    "Parallel optimizer: DP wall-clock vs join count vs domains, plus memo";
  let par_domains = max 2 s.domains in
  let identical = ref true in
  let time_best ?pool ?memo cat frag =
    (* best of 3 absorbs first-call warmup (estimator scratch fills) *)
    let best = ref Float.infinity and plan = ref "" in
    for _ = 1 to 3 do
      let t0 = Qs_util.Timer.now () in
      let r = Optimizer.optimize ?pool ?memo cat Estimator.default frag in
      let dt = Qs_util.Timer.elapsed ~since:t0 in
      if dt < !best then best := dt;
      plan := Qs_plan.Physical.to_string r.Optimizer.plan
    done;
    (!best, !plan)
  in
  let rows =
    List.map
      (fun n_rels ->
        let cat = chain_catalog s n_rels in
        let registry = Qs_stats.Stats_registry.create cat in
        let frag = Qs_stats.Fragment.of_query registry (chain_query n_rels) in
        let seq_t, seq_p = time_best cat frag in
        let par_t, par_p =
          Qs_util.Pool.with_pool ~domains:par_domains (fun p ->
              time_best ~pool:p cat frag)
        in
        (* memo replay: populate once, then time the all-hits call *)
        let memo = Qs_plan.Dp_memo.create () in
        ignore (Optimizer.optimize ~memo cat Estimator.default frag);
        let memo_t, memo_p = time_best ~memo cat frag in
        if seq_p <> par_p || seq_p <> memo_p then identical := false;
        [
          string_of_int n_rels;
          Report.seconds seq_t;
          Report.seconds par_t;
          Printf.sprintf "%.2fx" (seq_t /. Float.max 1e-9 par_t);
          Report.seconds memo_t;
          string_of_int (Qs_plan.Dp_memo.hits memo);
        ])
      [ 6; 9; 12 ]
  in
  Report.table
    ~title:
      (Printf.sprintf "chain-join optimize time, %d domains" par_domains)
    ~headers:
      [ "joins"; "seq"; Printf.sprintf "par(%d)" par_domains; "speedup";
        "memo replay"; "memo hits" ]
    rows;
  Printf.printf "plans byte-identical across domains and memo: %s\n"
    (if !identical then "yes" else "NO");
  (* memo hit-rates of the re-optimizing strategies over the JOB-like
     workload: every query gets a fresh memo, so hits come purely from
     re-optimization steps inside a query *)
  let env, queries = cinema_env s in
  let queries = List.filteri (fun i _ -> i mod 3 = 0) queries in
  let rate_rows =
    List.map
      (fun algo ->
        let rs =
          Runner.run_spj ?tracer:s.tracer ~domains:s.domains ~timeout:s.timeout
            env algo queries
        in
        let hits = List.fold_left (fun a r -> a + r.Runner.dp_memo_hits) 0 rs in
        let misses =
          List.fold_left (fun a r -> a + r.Runner.dp_memo_misses) 0 rs
        in
        [
          algo.Runner.label;
          string_of_int hits;
          string_of_int misses;
          (if hits + misses = 0 then "-"
           else pct hits (hits + misses));
        ])
      Algos.reopt_roster
  in
  Report.table
    ~title:
      (Printf.sprintf "cross-step DP-memo hit rate over %d JOB-like queries"
         (List.length queries))
    ~headers:[ "algorithm"; "hits"; "misses"; "hit rate" ]
    rate_rows

(* ---------------------------------------------------------------------- *)
(* Pipelined execution: morsel-driven executor vs. full materialization    *)
(* ---------------------------------------------------------------------- *)

(* One strategy run of [q] under the given executor engine, restoring
   the process-wide default on the way out. Returns the result digest,
   wall-clock, and the executor's intermediate-table / partition-reuse
   counter deltas for exactly this run. *)
let engine_run ?pool ?spans ?strat ~mode registry q =
  let module Executor = Qs_exec.Executor in
  let strat =
    match strat with
    | Some st -> st
    | None -> Querysplit.strategy Querysplit.default_config
  in
  let saved = Executor.execution_mode () in
  Executor.set_default_mode mode;
  Executor.reset_counters ();
  Fun.protect
    ~finally:(fun () -> Executor.set_default_mode saved)
    (fun () ->
      let ctx = Strategy.make_ctx ?pool ?spans registry Estimator.default in
      let t0 = Qs_util.Timer.now () in
      let o = strat.Strategy.run ctx q in
      let wall = Qs_util.Timer.elapsed ~since:t0 in
      ( Qs_storage.Table.digest o.Strategy.result,
        wall,
        Executor.intermediate_tables (),
        Executor.partition_reuses () ))

let span_category_time spans cat =
  List.fold_left
    (fun a (sp : Qs_util.Span.span) ->
      if sp.Qs_util.Span.cat = cat then a +. sp.Qs_util.Span.dur else a)
    0.0
    (Qs_util.Span.spans spans)

let pipeline_sweep s =
  Report.section
    "Pipelined execution: morsel-driven executor vs. full materialization";
  let module Executor = Qs_exec.Executor in
  let module Table = Qs_storage.Table in
  let module Span = Qs_util.Span in
  let par_domains = max 2 s.domains in
  let identical = ref true in
  let cross_layout = Hashtbl.create 16 in
  let shapes =
    [ ("chain", chain_catalog, chain_query); ("hub", hub_catalog, hub_query) ]
  in
  let strategies =
    [
      ("querysplit", Querysplit.strategy Querysplit.default_config);
      ("one-shot", Qs_core.Static.default);
    ]
  in
  let rows_out =
    List.concat_map
      (fun layout ->
        List.concat_map
          (fun n_rels ->
            List.concat_map
              (fun (shape, catalog_of, query_of) ->
                let q = query_of n_rels in
                (* (layout, storage, strategy, mode) grid; the spilled
                   cases rebuild the catalog inside the spill scope so
                   base tables and temps alike live behind the buffer
                   pool, and the layout scope wraps everything so base
                   tables and temps share the chunk layout under test *)
                let case ~spilled ~strat mode =
                  let body () =
                    let cat = catalog_of s n_rels in
                    let registry = Qs_stats.Stats_registry.create cat in
                    Qs_util.Pool.with_pool ~domains:par_domains (fun pool ->
                        let spans = Span.create () in
                        let digest, wall, inter, reuses =
                          engine_run ~pool ~spans ~strat ~mode registry q
                        in
                        ( digest,
                          wall,
                          inter,
                          reuses,
                          span_category_time spans Span.Pipeline,
                          span_category_time spans Span.Breaker ))
                  in
                  with_layout layout (fun () ->
                      if spilled then with_spill ~capacity:64 (fun _bp -> body ())
                      else body ())
                in
                List.concat_map
                  (fun spilled ->
                    List.map
                      (fun (sname, strat) ->
                        let d_mat, w_mat, i_mat, _, _, _ =
                          case ~spilled ~strat Executor.Materialize
                        in
                        let d_pipe, w_pipe, i_pipe, reuses, pipe_t, brk_t =
                          case ~spilled ~strat Executor.Pipeline
                        in
                        if d_mat <> d_pipe then identical := false;
                        (* the same (query, storage, strategy) case must
                           digest identically under both layouts *)
                        let key = (n_rels, shape, spilled, sname) in
                        (match Hashtbl.find_opt cross_layout key with
                        | None -> Hashtbl.replace cross_layout key d_pipe
                        | Some d -> if d <> d_pipe then identical := false);
                        [
                          Printf.sprintf "%d %s" n_rels shape;
                          Table.layout_name layout;
                          (if spilled then "spilled" else "memory");
                          sname;
                          Report.seconds w_mat;
                          Report.seconds w_pipe;
                          Printf.sprintf "%.2fx" (w_mat /. Float.max 1e-9 w_pipe);
                          Printf.sprintf "%d/%d" i_mat i_pipe;
                          string_of_int reuses;
                          Report.seconds pipe_t;
                          Report.seconds brk_t;
                        ])
                      strategies)
                  [ false; true ])
              shapes)
          [ 10; 12 ])
      [ Table.Row; Table.Columnar ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "PK-FK chains and hubs, %d domains (intermediates: \
          materializing/pipelined)"
         par_domains)
    ~headers:
      [ "query"; "layout"; "storage"; "strategy"; "mat"; "pipe"; "speedup";
        "intermediates"; "part reuse"; "pipe t"; "brk t" ]
    rows_out;
  Printf.printf
    "digests byte-identical across engines and layouts (resident and \
     spilled): %s\n"
    (if !identical then "yes" else "NO")

(* The deterministic pipelined-execution entry of the metrics dump: one
   QuerySplit run of a fixed PK-FK chain per engine. Counters only —
   plans, operator shapes and therefore every intermediate-table and
   partition-reuse count are exact for a fixed corpus; no wall-clock
   leaks into the entry. *)
let pipeline_metrics_entry s =
  let module Executor = Qs_exec.Executor in
  let module Metrics = Qs_obs.Metrics in
  let n_rels = 8 in
  let cat = chain_catalog s n_rels in
  let registry = Qs_stats.Stats_registry.create cat in
  let q = chain_query n_rels in
  let frag = Qs_stats.Fragment.of_query registry q in
  let plan = (Optimizer.optimize cat Estimator.default frag).Optimizer.plan in
  (* full-plan execution: one sink instead of one table per join *)
  let one_shot = Qs_core.Static.default in
  let d_mat, _, i_mat, _ =
    engine_run ~strat:one_shot ~mode:Executor.Materialize registry q
  in
  let d_pipe, _, i_pipe, _ =
    engine_run ~strat:one_shot ~mode:Executor.Pipeline registry q
  in
  (* multi-step QuerySplit over a hub, on a width-2 pool: every step
     re-joins the hub key, so materialized temps keep a reusable
     partition layout *)
  let hub = hub_catalog s n_rels in
  let hub_registry = Qs_stats.Stats_registry.create hub in
  let d_qs_mat, _, i_qs_mat, _ =
    engine_run ~mode:Executor.Materialize hub_registry (hub_query n_rels)
  in
  let d_qs, _, i_qs, reuses =
    Qs_util.Pool.with_pool ~domains:2 (fun pool ->
        engine_run ~pool ~mode:Executor.Pipeline hub_registry
          (hub_query n_rels))
  in
  let m = Metrics.create () in
  Metrics.incr ~by:i_mat m "intermediates_materializing";
  Metrics.incr ~by:i_pipe m "intermediates_pipelined";
  Metrics.incr ~by:i_qs_mat m "querysplit_intermediates_materializing";
  Metrics.incr ~by:i_qs m "querysplit_intermediates_pipelined";
  Metrics.incr ~by:reuses m "partition_reuses";
  Metrics.incr ~by:(Qs_plan.Physical.n_pipelines plan) m "plan_pipelines";
  Metrics.incr
    ~by:(if d_mat = d_pipe && d_qs_mat = d_qs then 1 else 0)
    m "digests_identical";
  m

(* ---------------------------------------------------------------------- *)
(* Serving front end: throughput and tail latency under concurrent load    *)
(* ---------------------------------------------------------------------- *)

module Server = Qs_serve.Server
module Scheduler = Qs_serve.Scheduler

(* Cost-ranked JOB-like corpus (cheapest first). The bottom 60% is the
   "light" interactive class of the mixed-cost serving workload, the top
   decile the "heavy" analytical class. *)
let costed_corpus env queries =
  let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
  List.map
    (fun q ->
      let frag = Strategy.fragment_of_query ctx q in
      let r = Optimizer.optimize env.Runner.catalog Estimator.default frag in
      (q, r.Optimizer.est_cost))
    queries
  |> List.sort (fun (_, a) (_, b) -> Float.compare a b)

(* The two serving classes. Lights: the bottom 60% of the corpus by
   estimated cost — the short interactive tail. Heavies: the top-decile
   statements widened by dropping the selections on their first
   relation (joins and the other relations' filters kept), so the
   analytical class is 1-2 orders of magnitude more expensive in actual
   execution time — not just in the estimate — while remaining plain
   digest-checkable SPJ statements. The straggler threshold sits at the
   cheapest heavy: exactly the heavy class gets the pooled join/DP
   paths. *)
type serve_classes = {
  lights : Query.t array;
  heavies : (Query.t * float) array;  (** statement, estimated cost *)
  straggler : float;
}

let serve_classes env costed =
  let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
  let arr = Array.of_list costed in
  let n = Array.length arr in
  let heavy0 = n - max 1 (n / 10) in
  let heavies =
    Array.init (n - heavy0) (fun i ->
        let q = fst arr.(heavy0 + i) in
        let kept_filters =
          match Query.aliases q with
          | [] | [ _ ] -> []
          | _ :: rest -> List.concat_map (Query.filters q) rest
        in
        let full =
          Query.make
            ~name:(q.Query.name ^ "_full")
            ~output:q.Query.output q.Query.rels
            (Query.join_preds q @ kept_filters)
        in
        let frag = Strategy.fragment_of_query ctx full in
        let r = Optimizer.optimize env.Runner.catalog Estimator.default frag in
        (full, r.Optimizer.est_cost))
  in
  {
    lights = Array.init (max 1 (n * 3 / 5)) (fun i -> fst arr.(i));
    heavies;
    straggler = Array.fold_left (fun acc (_, c) -> min acc c) infinity heavies;
  }

(* Arrival order adversarial for FIFO: a burst of heavy queries is
   admitted first (one per ~125 submissions of load), the short
   interactive tail behind it. Cost-aware scheduling lets the tail
   bypass the burst; FIFO makes the tail queue behind it, so every
   percentile carries the burst's makespan. The burst is capped at 16
   so the soak load measures sustained light throughput rather than
   hours of heavies. *)
let serve_workload ~load classes =
  let n_heavy = max 1 (min (load / 125) 16) in
  List.init load (fun i ->
      if i < n_heavy then fst classes.heavies.(i mod Array.length classes.heavies)
      else classes.lights.(i mod Array.length classes.lights))

(* Reference digests from plain single-session execution of each
   distinct statement: serving-mode results must be byte-identical. *)
let expected_digests env costed =
  let module Executor = Qs_exec.Executor in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((q : Query.t), _) ->
      if not (Hashtbl.mem tbl q.Query.name) then begin
        let ctx = Strategy.make_ctx env.Runner.registry Estimator.default in
        let frag = Strategy.fragment_of_query ctx q in
        let r = Optimizer.optimize env.Runner.catalog Estimator.default frag in
        let t, _ = Executor.run r.Optimizer.plan in
        let t = Executor.project ~name:q.Query.name t q.Query.output in
        Hashtbl.replace tbl q.Query.name (Qs_storage.Table.digest t)
      end)
    costed;
  tbl

let serve_run s ?(telemetry = Qs_obs.Telemetry.default_config) ~domains
    ~policy ~load env classes =
  let stream = serve_workload ~load classes in
  let straggler_cost = classes.straggler in
  Qs_util.Pool.with_pool ?tracer:s.tracer ~domains (fun pool ->
      (* The queue holds the whole stream when feasible so measured
         latency reflects the scheduling policy, not admission
         backpressure (which delays both policies identically); the
         soak load still saturates the 2048 bound and exercises
         backpressure. Aging is set past the run length: the sweep
         contrasts pure shortest-first against FIFO, while the small
         aging windows (and their starvation bound) are covered by
         [serve_metrics_entry] and the scheduler tests. *)
      let config =
        {
          Server.default_config with
          Server.concurrency = max 1 domains;
          queue_limit = min load 2048;
          policy;
          aging_rounds = 2 * load;
          straggler_cost;
          telemetry;
        }
      in
      let server =
        Server.create ~config ?spans:s.tracer ~pool env.Runner.registry
          Estimator.default
      in
      let t0 = Qs_util.Timer.now () in
      List.iteri
        (fun i q ->
          ignore
            (Server.submit server ~session:("s" ^ string_of_int (i mod 4)) q))
        stream;
      Server.drain server;
      let wall = Qs_util.Timer.elapsed ~since:t0 in
      (Server.results server, wall))

let latency_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

let serve_digests_ok expect results =
  List.for_all
    (fun (r : Server.result) ->
      match (r.Server.status, r.Server.digest) with
      | Server.Completed, Some d -> (
          match Hashtbl.find_opt expect r.Server.query with
          | Some d' -> d = d'
          | None -> false)
      | _ -> false)
    results

let serve_sweep s =
  Report.section
    "Serving: concurrent front end, throughput and tail latency per policy";
  let env, queries = cinema_env s in
  let costed = costed_corpus env queries in
  let classes = serve_classes env costed in
  let expect =
    expected_digests env (costed @ Array.to_list classes.heavies)
  in
  let ms v = Printf.sprintf "%.2f" (1000.0 *. v) in
  let p99s = Hashtbl.create 8 in
  let row ~load ~domains ~policy =
    let results, wall = serve_run s ~domains ~policy ~load env classes in
    let lats =
      List.map (fun (r : Server.result) -> r.Server.queue_wait +. r.Server.exec_time) results
      |> Array.of_list
    in
    Array.sort Float.compare lats;
    (if Sys.getenv_opt "QS_SERVE_DEBUG" <> None then
       let worst =
         List.sort
           (fun (a : Server.result) b ->
             Float.compare
               (b.Server.queue_wait +. b.Server.exec_time)
               (a.Server.queue_wait +. a.Server.exec_time))
           results
       in
       List.iteri
         (fun i (r : Server.result) ->
           if i < 15 then
             Printf.printf "    worst#%d %s cost=%.0f wait=%.3f exec=%.4f\n" i
               r.Server.query r.Server.est_cost r.Server.queue_wait
               r.Server.exec_time)
         worst);
    let p99 = latency_percentile lats 0.99 in
    Hashtbl.replace p99s (load, domains, Scheduler.policy_name policy) p99;
    [
      string_of_int load;
      string_of_int domains;
      Scheduler.policy_name policy;
      Report.seconds wall;
      Printf.sprintf "%.0f" (float_of_int load /. wall);
      ms (latency_percentile lats 0.5);
      ms (latency_percentile lats 0.95);
      ms p99;
      (if List.length results = load && serve_digests_ok expect results then
         "ok"
       else "MISMATCH");
    ]
  in
  let widths = [ 1; max 2 s.domains ] in
  let rows =
    List.concat_map
      (fun load ->
        List.concat_map
          (fun domains ->
            List.map
              (fun policy -> row ~load ~domains ~policy)
              [ Scheduler.Fifo; Scheduler.Cost_aware ])
          widths)
      [ 100; 1000 ]
  in
  (* a deeper soak at the widest point, cost-aware only *)
  let soak = row ~load:10_000 ~domains:(max 2 s.domains) ~policy:Scheduler.Cost_aware in
  Report.table
    ~title:
      "mixed-cost serving (heavy burst first; digests vs single-session runs)"
    ~headers:
      [ "load"; "width"; "policy"; "wall"; "qps"; "p50 ms"; "p95 ms"; "p99 ms"; "digests" ]
    (rows @ [ soak ]);
  let w = max 2 s.domains in
  match
    ( Hashtbl.find_opt p99s (1000, w, "fifo"),
      Hashtbl.find_opt p99s (1000, w, "cost-aware") )
  with
  | Some f, Some c ->
      Printf.printf
        "p99 at load 1000, width %d: fifo %sms vs cost-aware %sms — %s\n" w
        (ms f) (ms c)
        (if c < f then "cost-aware wins" else "FIFO wins (unexpected)")
  | _ -> ()

(* The deterministic serving entry of the metrics dump: every statement
   of the corpus twice across two sessions on a width-2 pool, so the
   second round is all plan-cache hits. Counters (submitted, completed,
   cache hits/misses, per-session query counts) are exact for a fixed
   corpus; only the histograms carry wall-clock. *)
let serve_metrics_entry s =
  let env, queries = cinema_env s in
  let costed = costed_corpus env queries in
  Qs_util.Pool.with_pool ~domains:2 (fun pool ->
      let config =
        {
          Server.default_config with
          Server.concurrency = 2;
          policy = Scheduler.Cost_aware;
          aging_rounds = 32;
        }
      in
      let server =
        Server.create ~config ~pool env.Runner.registry Estimator.default
      in
      List.iteri
        (fun i (q, _) ->
          ignore
            (Server.submit server ~session:("s" ^ string_of_int (i mod 2)) q))
        (costed @ costed);
      Server.drain server;
      Server.metrics server)

(* ---------------------------------------------------------------------- *)
(* Telemetry: always-on flight recorder overhead and tail sampling         *)
(* ---------------------------------------------------------------------- *)

module Telemetry = Qs_obs.Telemetry
module Flight = Qs_obs.Flight

let telemetry_sweep s =
  Report.section
    "Telemetry: always-on flight recorder — overhead and tail sampling";
  let env, queries = cinema_env s in
  let costed = costed_corpus env queries in
  let classes = serve_classes env costed in
  let expect =
    expected_digests env (costed @ Array.to_list classes.heavies)
  in
  let domains = max 2 s.domains in
  let load = 1000 in
  (* overhead: identical mixed-cost serving runs with the recorder off
     and on; best of 3 per mode so scheduler noise doesn't masquerade
     as recorder cost *)
  let best telemetry =
    let rec go n (best_wall, best_results) =
      if n = 0 then (best_wall, best_results)
      else
        let results, wall =
          serve_run s ~telemetry ~domains ~policy:Scheduler.Cost_aware ~load
            env classes
        in
        go (n - 1)
          (if wall < best_wall then (wall, results)
           else (best_wall, best_results))
    in
    go 3 (infinity, [])
  in
  let wall_off, res_off = best Telemetry.disabled in
  let wall_on, res_on = best Telemetry.default_config in
  let row label wall results =
    [
      label;
      string_of_int load;
      string_of_int domains;
      Report.seconds wall;
      Printf.sprintf "%.0f" (float_of_int load /. wall);
      (if List.length results = load && serve_digests_ok expect results then
         "ok"
       else "MISMATCH");
    ]
  in
  Report.table
    ~title:"serving wall-clock, flight recorder off vs on (best of 3)"
    ~headers:[ "telemetry"; "load"; "width"; "wall"; "qps"; "digests" ]
    [ row "off" wall_off res_off; row "on" wall_on res_on ];
  Printf.printf "recorder overhead: %+.2f%% (acceptance: < 2%%)\n"
    (100.0 *. (wall_on -. wall_off) /. wall_off);
  (* tail sampling: a light stream with a sprinkling of dead-on-arrival
     deadlines; every error flight must keep its full span tree, while
     successes keep theirs only above the slow quantile *)
  Qs_util.Pool.with_pool ~domains (fun pool ->
      let config =
        {
          Server.default_config with
          Server.concurrency = domains;
          queue_limit = 512;
          telemetry =
            {
              Telemetry.default_config with
              Telemetry.capacity = 512;
              min_samples = 16;
            };
        }
      in
      let server =
        Server.create ~config ~pool env.Runner.registry Estimator.default
      in
      List.iteri
        (fun i q ->
          let deadline = if i mod 25 = 0 then Some 0.0 else None in
          ignore
            (Server.submit server
               ~session:("s" ^ string_of_int (i mod 4))
               ?deadline q))
        (List.init 400 (fun i ->
             classes.lights.(i mod Array.length classes.lights)));
      Server.drain server;
      let snap = Server.telemetry_snapshot server in
      let recent = snap.Telemetry.s_recent in
      let part p = List.partition p recent in
      let errors, successes =
        part (fun (r : Flight.record) -> r.Flight.r_status <> Flight.Completed)
      in
      let sampled = List.filter (fun (r : Flight.record) -> r.Flight.r_sampled) in
      Printf.printf
        "tail sampling over %d retained flights: %d/%d error flights kept \
         full span trees (must be all), %d/%d successes (slow quantile %.2f)\n"
        (List.length recent)
        (List.length (sampled errors))
        (List.length errors)
        (List.length (sampled successes))
        (List.length successes)
        config.Server.telemetry.Telemetry.slow_quantile;
      let counter name =
        Option.value (List.assoc_opt name snap.Telemetry.s_counters) ~default:0
      in
      Printf.printf
        "flight counters: journal steps=%d intermediates=%d \
         partition-reuses=%d bufpool faults=%d bypasses=%d\n"
        (counter "journal_steps")
        (counter "intermediate_tables")
        (counter "partition_reuses") (counter "faults") (counter "bypasses"))

(* The deterministic telemetry entry of the metrics dump: a fixed
   QuerySplit-served workload through a telemetry-enabled server on a
   width-2 pool. Success tail-sampling is pinned off ([min_samples]
   above the workload) so every counter — admitted, flights by status,
   journal steps, executor counters, sampled (= errors = 0) — is exact
   for a fixed corpus; only the turnaround histograms carry
   wall-clock. *)
let telemetry_metrics_entry s =
  let env, queries = cinema_env s in
  let costed = costed_corpus env queries in
  let subset = List.filteri (fun i _ -> i < 12) costed in
  Qs_util.Pool.with_pool ~domains:2 (fun pool ->
      let config =
        {
          Server.default_config with
          Server.concurrency = 2;
          aging_rounds = 32;
          telemetry =
            { Telemetry.default_config with Telemetry.min_samples = max_int };
        }
      in
      let strategy =
        Qs_core.Querysplit.strategy Qs_core.Querysplit.default_config
      in
      let server =
        Server.create ~config ~strategy ~pool env.Runner.registry
          Estimator.default
      in
      List.iteri
        (fun i (q, _) ->
          ignore
            (Server.submit server ~session:("s" ^ string_of_int (i mod 2)) q))
        (subset @ subset);
      Server.drain server;
      Telemetry.metrics (Server.telemetry server))

(* The deterministic columnar-layout entry of the metrics dump: a fixed
   synthetic table (ints with NULLs, floats, dictionary-friendly
   strings) is built, filtered and aggregated sequentially under both
   layouts. Chunk counts, vectorized-kernel invocations, survivor
   counts, exact serialized chunk sizes (Chunk_file.ser_chunk_size)
   and digest equality are integer-exact for a fixed
   corpus; no wall-clock leaks into the entry. *)
let columnar_metrics_entry _s =
  let module Table = Qs_storage.Table in
  let module Schema = Qs_storage.Schema in
  let module Value = Qs_storage.Value in
  let module Chunk_file = Qs_storage.Chunk_file in
  let module Expr = Qs_query.Expr in
  let module Executor = Qs_exec.Executor in
  let module Relop = Qs_exec.Relop in
  let module Logical = Qs_plan.Logical in
  let schema =
    Schema.make "c"
      [
        ("id", Value.TInt); ("grp", Value.TInt); ("amount", Value.TInt);
        ("price", Value.TFloat); ("note", Value.TStr);
      ]
  in
  let rows =
    Array.init 16_384 (fun i ->
        let h = (i * 2654435761) land 0x3fffffff in
        [|
          Value.Int i; Value.Int (h mod 31);
          (if h mod 11 = 0 then Value.Null else Value.Int (h mod 1000));
          Value.Float (float_of_int (h mod 256) /. 4.0);
          Value.Str ("n" ^ string_of_int (h mod 7));
        |])
  in
  let filters = [ Expr.Cmp (Expr.Lt, Expr.col "c" "amount", Expr.vint 500) ] in
  let group_by = [ { Expr.rel = "c"; name = "grp" } ] in
  let aggs =
    [
      { Logical.fn = Logical.Sum; arg = Some (Expr.col "c" "amount"); label = "total" };
      { Logical.fn = Logical.Count_star; arg = None; label = "n" };
    ]
  in
  let run layout =
    with_layout layout (fun () ->
        let tbl = Table.create ~chunk_rows:1024 ~name:"c" ~schema rows in
        let v0 = Executor.vectorized_chunks () in
        let filtered = Executor.filter_table tbl filters in
        let agged = Relop.aggregate ~name:"g" ~group_by ~aggs tbl in
        let vec = Executor.vectorized_chunks () - v0 in
        let ser = ref 0 in
        Table.iter_chunk_data
          (fun _ c -> ser := !ser + Chunk_file.ser_chunk_size c)
          tbl;
        ( Runner.result_digest filtered ^ Runner.result_digest agged,
          Table.n_rows filtered,
          vec,
          !ser,
          Table.n_chunks tbl ))
  in
  let d_row, kept_row, _, ser_row, chunks = run Table.Row in
  let d_col, kept_col, vec, ser_col, _ = run Table.Columnar in
  let m = Qs_obs.Metrics.create () in
  let c name v = Qs_obs.Metrics.incr ~by:v m name in
  c "columnar_chunks" chunks;
  c "vectorized_chunks" vec;
  c "filter_survivors" kept_col;
  c "ser_bytes_row" ser_row;
  c "ser_bytes_columnar" ser_col;
  c "digests_identical" (if d_row = d_col && kept_row = kept_col then 1 else 0);
  m

(* All committed-baseline flavours from ONE harness run: the
   fig11-roster-only dump (the PR-5-era content, [--baseline-out]), the
   same plus the ["serve"] entry (PR 6, [--serve-out]), additionally the
   ["io"] buffer-pool entry (PR 7, [--io-out]), additionally the
   ["pipeline"] executor-engine entry (PR 8, [--pipeline-out]),
   additionally the ["telemetry"] serving-recorder entry (PR 9,
   [--telemetry-out]) and additionally the ["columnar"] layout entry
   (PR 10, [--metrics-out]). Shared entries are byte-identical across
   the six, so full — histograms included — bench_diffs between the
   committed files are meaningful. *)
let metrics_json_flavors s =
  let labelled = metrics_results s in
  let serve = ("serve", serve_metrics_entry s) in
  let io = ("io", io_metrics_entry s) in
  let pipeline = ("pipeline", pipeline_metrics_entry s) in
  let telemetry = ("telemetry", telemetry_metrics_entry s) in
  let columnar = ("columnar", columnar_metrics_entry s) in
  ( json_of_labelled s labelled,
    json_of_labelled ~extra:[ serve ] s labelled,
    json_of_labelled ~extra:[ serve; io ] s labelled,
    json_of_labelled ~extra:[ serve; io; pipeline ] s labelled,
    json_of_labelled ~extra:[ serve; io; pipeline; telemetry ] s labelled,
    json_of_labelled
      ~extra:[ serve; io; pipeline; telemetry; columnar ]
      s labelled )

let metrics_json s =
  json_of_labelled
    ~extra:
      [
        ("serve", serve_metrics_entry s);
        ("io", io_metrics_entry s);
        ("pipeline", pipeline_metrics_entry s);
        ("telemetry", telemetry_metrics_entry s);
        ("columnar", columnar_metrics_entry s);
      ]
    s (metrics_results s)

let all s =
  table1 s;
  table3 s;
  fig10 s;
  fig11 s;
  table4 s;
  fig12 s;
  fig13 s;
  fig14 s;
  fig15 s;
  table5 s;
  table6 s;
  fig16_19 s;
  ablation s;
  metrics s;
  par_sweep s;
  scan_sweep s;
  io_sweep s;
  dp_sweep s;
  pipeline_sweep s;
  serve_sweep s;
  telemetry_sweep s
