(** Running workloads under algorithms and collecting the paper's metrics.

    Timing discipline: estimators that consult true cardinalities (oracle,
    noisy, learned simulators) *execute* fragments internally — work a
    real deployment would not do at query time (the paper's "Optimal" is
    handed true cardinalities; the noise injection of Fig. 10 perturbs
    numbers the optimizer already has). The runner therefore wraps the
    estimator and subtracts the time spent inside cardinality estimation
    from each query's elapsed time, reporting pure engine time. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Logical = Qs_plan.Logical
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Strategy = Qs_core.Strategy

type env = {
  catalog : Catalog.t;
  registry : Stats_registry.t;
  oracle_exec : Estimator.exec_fn;  (** memoized true-cardinality counter *)
  seed : int;
}

val make_env : ?seed:int -> Catalog.t -> env
(** The oracle executes fragments through {!Qs_exec.Naive}. *)

type algo = {
  label : string;
  strategy : Strategy.t;
  estimator : env -> Estimator.t;
  warm : bool;
      (** run each query once, untimed, before the timed run — used for
          oracle-backed estimators whose first pass executes fragments to
          learn true cardinalities (that acquisition is free in the
          paper's setting) *)
}

type qresult = {
  query : string;
  time : float;  (** engine seconds, estimation time excluded *)
  timed_out : bool;
  mats : int;  (** materializations counted for Table 4 *)
  mat_bytes : int;
  iterations : Strategy.iteration list;
  digest : string;
      (** canonical multiset digest of the result table — row- and
          column-order independent, so sequential and parallel runs can
          be compared byte-for-byte *)
  dp_memo_hits : int;
      (** cross-step DP-memo subset hits over the timed pass (every
          query gets a fresh memo; re-optimizing strategies score hits
          from their second optimize call on) *)
  dp_memo_misses : int;
}

val result_digest : Qs_storage.Table.t -> string
(** The canonical multiset digest used for [qresult.digest] (exposed for
    the chunked-scan sweep and differential tests). *)

val run_spj : ?collect_stats:bool -> ?timeout:float -> ?domains:int ->
  ?join_parallelism:int -> ?tracer:Qs_util.Span.t -> env -> algo ->
  Query.t list -> qresult list
(** [timeout] (default 30 s) is the per-query monotonic-clock cap; a
    timed-out query contributes the full timeout to aggregate times, as
    in the paper.

    [domains] (default 1) fans the per-query cells across that many
    domains; results come back in query order with identical digests and
    counters — only per-query wall-clock (and thus time histograms)
    varies. [join_parallelism] (default 1) additionally runs each hash
    join partitioned across its own pool; keep it at 1 when measuring
    per-query latency comparatively.

    Straggler heuristic: with [domains > 1] and [join_parallelism <= 1],
    a query whose estimated plan cost (default estimator, untimed)
    dominates the remaining queue combined — [cost * (domains - 1) >
    total - cost] — automatically gets the cell pool as its join/DP
    pool, and its [execute] span carries [parallel-join=auto]. Results
    and plans are unchanged.

    [tracer] records time-ordered spans for the timed pass (never the
    warm pass): one [execute] span per query, one aggregate [estimate]
    span per query, plus whatever the strategy, optimizer, executor and
    pools emit. Results are unchanged — tracing is observation-only. *)

val run_logical : ?collect_stats:bool -> ?timeout:float -> ?domains:int ->
  ?join_parallelism:int -> ?tracer:Qs_util.Span.t -> env -> algo ->
  Logical.t list -> qresult list

val total_time : qresult list -> float

val qresult_row : qresult -> string list

val metrics_of_results : qresult list -> Qs_obs.Metrics.t
(** Aggregate one strategy's results into a metrics registry: counters
    [queries], [timeouts], [iterations], [replans], [materializations],
    [dp_memo_hits], [dp_memo_misses]; histograms [qerror]
    (per-iteration, est vs. actual), [query_time_s] and [mat_bytes]
    (only queries that materialized contribute). *)

val fold_span_times : Qs_util.Span.t -> Qs_obs.Metrics.t -> unit
(** Fold a tracer's spans into a registry: per category, a [spans_<cat>]
    counter and a [span_<cat>_s] duration histogram. *)

val metrics_report : (string * qresult list) list -> string
(** Machine-readable per-strategy report:
    [{"<label>": {"counters": ..., "histograms": ...}, ...}]. *)
