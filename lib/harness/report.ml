let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table ~title ~headers rows =
  Printf.printf "\n-- %s --\n" title;
  let all = headers :: rows in
  let n_cols = List.length headers in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init n_cols width in
  let print_row row =
    let cells =
      List.map2 (fun cell w -> Printf.sprintf "%-*s" w cell) row widths
    in
    print_endline ("| " ^ String.concat " | " cells ^ " |")
  in
  print_row headers;
  print_endline
    ("|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|");
  List.iter print_row rows

let series ~title ~x_label named =
  Printf.printf "\n-- %s --\n" title;
  List.iter
    (fun (name, points) ->
      Printf.printf "%s:\n" name;
      List.iter
        (fun (x, y) -> Printf.printf "  %s=%s  %.4f\n" x_label x y)
        points)
    named

let seconds s = Printf.sprintf "%.3fs" s

let bytes_mb b = Printf.sprintf "%.2fMB" (float_of_int b /. 1024.0 /. 1024.0)
