module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Logical = Qs_plan.Logical
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Strategy = Qs_core.Strategy
module Driver = Qs_core.Driver
module Naive = Qs_exec.Naive
module Timer = Qs_util.Timer
module Pool = Qs_util.Pool
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Metrics = Qs_obs.Metrics
module Qerror = Qs_obs.Qerror
module Span = Qs_util.Span

type env = {
  catalog : Catalog.t;
  registry : Stats_registry.t;
  oracle_exec : Estimator.exec_fn;
  seed : int;
}

let make_env ?(seed = 1234) catalog =
  (* one memo per environment: every oracle-backed estimator built from
     this env shares the true cardinalities already computed. The memo
     (and the weighted-table cache behind it) is also shared by parallel
     harness cells, so lookups and fills are serialized by a lock — the
     warm pass amortizes the counting, so contention on the timed pass is
     all hits *)
  let mutex = Mutex.create () in
  let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let wcache = Naive.make_cache () in
  let oracle_exec frag =
    let k = Qs_stats.Fragment.key frag in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        match Hashtbl.find_opt memo k with
        | Some c -> c
        | None ->
            let c = Naive.count ~cache:wcache frag in
            Hashtbl.replace memo k c;
            c)
  in
  { catalog; registry = Stats_registry.create catalog; oracle_exec; seed }

type algo = {
  label : string;
  strategy : Strategy.t;
  estimator : env -> Estimator.t;
  warm : bool;
}

type qresult = {
  query : string;
  time : float;
  timed_out : bool;
  mats : int;
  mat_bytes : int;
  iterations : Strategy.iteration list;
  digest : string;
  dp_memo_hits : int;
  dp_memo_misses : int;
}

(* Canonical multiset digest of a result table; the implementation lives
   in [Table.digest] so the serving layer (which cannot depend on the
   harness) shares the exact same bytes. *)
let result_digest = Table.digest

(* Wrap an estimator so the time spent estimating is accounted separately
   from engine time; the deadline is pushed forward by the same amount so
   oracle-backed estimators cannot eat the query's execution budget. *)
let instrumented (est : Estimator.t) ~deadline =
  let spent = ref 0.0 in
  let wrapped =
    {
      Estimator.name = est.Estimator.name;
      card =
        (fun frag ->
          let t0 = Timer.now () in
          let r = est.Estimator.card frag in
          let dt = Timer.now () -. t0 in
          spent := !spent +. dt;
          (match !deadline with Some d -> deadline := Some (d +. dt) | None -> ());
          r);
    }
  in
  (wrapped, spent)

let run_one ~collect_stats ~timeout ?pool ?(span_args = []) ?tracer env algo
    runner name =
  if algo.warm then begin
    (* populate the oracle memo so the timed pass measures engine work;
       the warm pass is untimed and deliberately untraced. Its DP memo is
       separate from the timed pass's so every timed optimize call does
       real work on its first step. *)
    let wctx =
      Strategy.make_ctx ~collect_stats
        ~deadline:(Some (Timer.now () +. (4.0 *. timeout)))
        ~seed:env.seed ?pool ~dp_memo:(Qs_plan.Dp_memo.create ()) env.registry
        (algo.estimator env)
    in
    (try ignore (runner wctx) with _ -> ());
    Gc.major ()
  end;
  let deadline = Some (Timer.now () +. timeout) in
  (* one cross-step DP memo per query: re-optimization steps inside the
     query share it, distinct queries never do *)
  let dp_memo = Qs_plan.Dp_memo.create () in
  let ctx0 =
    Strategy.make_ctx ~collect_stats ~deadline ~seed:env.seed ?spans:tracer ?pool
      ~dp_memo env.registry Estimator.default
  in
  let est, est_time = instrumented (algo.estimator env) ~deadline:ctx0.Strategy.deadline in
  let ctx = { ctx0 with Strategy.estimator = est } in
  let qstart = match tracer with Some _ -> Timer.now () | None -> 0.0 in
  let outcome =
    Span.span tracer Span.Execute
      ~args:(("algo", algo.label) :: span_args)
      ("query:" ^ name)
      (fun () -> runner ctx)
  in
  (* estimation time accrues call-by-call inside the optimizer; one
     aggregate span per query keeps the trace readable *)
  if tracer <> None && !est_time > 0.0 then
    Span.add tracer Span.Estimate ("estimate:" ^ name) ~start:qstart
      ~dur:!est_time;
  let mats =
    List.length (List.filter (fun i -> i.Strategy.materialized) outcome.Strategy.iterations)
  in
  let mat_bytes =
    List.fold_left (fun a i -> a + i.Strategy.mat_bytes) 0 outcome.Strategy.iterations
  in
  let time =
    if outcome.Strategy.timed_out then timeout
    else Float.max 0.0 (outcome.Strategy.elapsed -. !est_time)
  in
  {
    query = name;
    time;
    timed_out = outcome.Strategy.timed_out;
    mats;
    mat_bytes;
    iterations = outcome.Strategy.iterations;
    digest = result_digest outcome.Strategy.result;
    dp_memo_hits = Qs_plan.Dp_memo.hits dp_memo;
    dp_memo_misses = Qs_plan.Dp_memo.misses dp_memo;
  }

(* Fan the per-query cells across a fresh pool. Each cell builds its own
   ctx (and thus its own fragments, scratch caches and temp-table
   namespace) exactly as in the sequential path; the only state shared
   across domains is the registry, the oracle memo and the optional join
   pool, all lock-guarded. Pool.map keeps results in query order, so the
   output is indistinguishable from the sequential List.map. *)
let run_cells ?tracer ~domains cells =
  if domains <= 1 then List.map (fun cell -> cell None) cells
  else
    Pool.with_pool ?tracer ~domains (fun pool ->
        Pool.map pool (fun cell -> cell (Some pool)) cells)

let with_join_pool ?tracer ~join_parallelism f =
  if join_parallelism <= 1 then f None
  else Pool.with_pool ?tracer ~domains:join_parallelism (fun p -> f (Some p))

(* Optimizer's cost of the query's global plan under the default
   estimator — the straggler heuristic's ranking signal. Untimed (runs
   before any cell starts) and deliberately cheap: no oracle, no spans. *)
let estimated_cost env (q : Query.t) =
  try
    let ctx = Strategy.make_ctx env.registry Estimator.default in
    let frag = Strategy.fragment_of_query ctx q in
    (Qs_plan.Optimizer.optimize env.catalog Estimator.default frag)
      .Qs_plan.Optimizer.est_cost
  with _ -> 0.0

(* A cell is a straggler when its estimated cost dominates everything
   else in the queue combined, normalized by the parallelism left for
   the rest: with [d] domains, the other cells can overlap on [d - 1]
   domains while the straggler runs, so it bounds the makespan as soon
   as [cost * (d - 1) > total - cost]. *)
let straggler_flags ~domains costs =
  let total = List.fold_left ( +. ) 0.0 costs in
  List.map
    (fun c -> c > 0.0 && c *. float_of_int (domains - 1) > total -. c)
    costs

let run_spj ?(collect_stats = true) ?(timeout = 30.0) ?(domains = 1)
    ?(join_parallelism = 1) ?tracer env algo queries =
  (* Straggler heuristic: under --domains (and no explicit join pool), a
     cell whose estimated cost dominates the remaining queue gets the
     cell pool as its join/DP pool — the other domains have nothing left
     to do but help it. Digests and plans are unchanged. *)
  let stragglers =
    if domains > 1 && join_parallelism <= 1 && List.length queries > 1 then
      straggler_flags ~domains (List.map (estimated_cost env) queries)
    else List.map (fun _ -> false) queries
  in
  with_join_pool ?tracer ~join_parallelism (fun pool ->
      run_cells ?tracer ~domains
        (List.map2
           (fun (q : Query.t) straggler cell_pool ->
             let pool, span_args =
               match (pool, cell_pool) with
               | None, Some _ when straggler ->
                   (cell_pool, [ ("parallel-join", "auto") ])
               | _ -> (pool, [])
             in
             run_one ~collect_stats ~timeout ?pool ~span_args ?tracer env algo
               (fun ctx -> algo.strategy.Strategy.run ctx q)
               q.Query.name)
           queries stragglers))

let run_logical ?(collect_stats = true) ?(timeout = 30.0) ?(domains = 1)
    ?(join_parallelism = 1) ?tracer env algo trees =
  with_join_pool ?tracer ~join_parallelism (fun pool ->
      run_cells ?tracer ~domains
        (List.map
           (fun tree _cell_pool ->
             run_one ~collect_stats ~timeout ?pool ?tracer env algo
               (fun ctx -> Driver.run algo.strategy ctx tree)
               (Logical.name tree))
           trees))

let total_time results = List.fold_left (fun a r -> a +. r.time) 0.0 results

let metrics_of_results results =
  let m = Metrics.create () in
  List.iter
    (fun r ->
      Metrics.incr m "queries";
      Metrics.incr m ~by:(if r.timed_out then 1 else 0) "timeouts";
      Metrics.incr m ~by:r.mats "materializations";
      Metrics.incr m ~by:(List.length r.iterations) "iterations";
      Metrics.incr m
        ~by:(List.length (List.filter (fun i -> i.Strategy.replanned) r.iterations))
        "replans";
      Metrics.incr m ~by:r.dp_memo_hits "dp_memo_hits";
      Metrics.incr m ~by:r.dp_memo_misses "dp_memo_misses";
      Metrics.observe m "query_time_s" r.time;
      if r.mat_bytes > 0 then
        Metrics.observe m "mat_bytes" (float_of_int r.mat_bytes);
      List.iter
        (fun (i : Strategy.iteration) ->
          Metrics.observe m "qerror"
            (Qerror.value ~est:i.Strategy.est_rows ~actual:i.Strategy.actual_rows))
        r.iterations)
    results;
  m

(* Fold the tracer's per-phase times into a metrics registry: one
   counter (span count) and one duration histogram per category that
   actually recorded spans. *)
let fold_span_times tracer m =
  List.iter
    (fun (s : Span.span) ->
      let cat = Span.category_name s.Span.cat in
      Metrics.incr m ("spans_" ^ cat);
      Metrics.observe m ("span_" ^ cat ^ "_s") s.Span.dur)
    (Span.spans tracer)

let metrics_report labelled =
  Metrics.json_of_many
    (List.map (fun (label, rs) -> (label, metrics_of_results rs)) labelled)

let qresult_row r =
  [
    r.query;
    Report.seconds r.time;
    (if r.timed_out then "TO" else "");
    string_of_int r.mats;
    Report.bytes_mb r.mat_bytes;
  ]
