(** One entry point per table / figure of the paper's evaluation (§6).

    Each function builds the workload it needs, runs the relevant
    algorithms and prints the table rows / data series the paper reports.
    Absolute numbers differ from the paper (different machine, synthetic
    data, an in-memory engine); the *shape* — rankings, rough factors,
    crossovers — is what reproduces. See EXPERIMENTS.md for the recorded
    comparison. *)

type setup = {
  scale : float;  (** workload scale factor *)
  seed : int;
  n_queries : int;  (** JOB-like query count (paper: 91) *)
  timeout : float;  (** per-query cap in seconds (paper: 1000 s) *)
  domains : int;
      (** harness parallelism: queries of a run fan out across this many
          domains (1 = sequential) *)
  tracer : Qs_util.Span.t option;
      (** span tracer threaded through every runner invocation; [None]
          (the default) keeps all experiments trace-free *)
}

val default_setup : setup

val table1 : setup -> unit
(** Similarity of the default optimizer's plan vs. the optimal plan. *)

val table3 : setup -> unit
(** QSA × SSA policy grid, total JOB-like time. *)

val fig10 : setup -> unit
(** Robustness under injected CE noise (σ and µ sweeps). *)

val fig11 : setup -> unit
(** End-to-end JOB-like comparison, Pk-only and Pk+Fk indexes. *)

val table4 : setup -> unit
(** Materialization frequency and memory of the re-optimizers. *)

val fig12 : setup -> unit
(** TPC-H-like (Starbench) end-to-end, non-SPJ strategies. *)

val fig13 : setup -> unit
(** DSB SPJ queries end-to-end. *)

val fig14 : setup -> unit
(** DSB non-SPJ queries end-to-end. *)

val fig15 : setup -> unit
(** Collecting statistics on materialized temps: on vs. off. *)

val table5 : setup -> unit
(** Existing re-optimizers driven by the Φ cost functions. *)

val table6 : setup -> unit
(** Query categorisation (Avoided / Delayed / NoDiff / Worse) with the
    average performance effect per category. *)

val fig16_19 : setup -> unit
(** Per-iteration re-optimization timelines for one representative query
    of each category. *)

val ablation : setup -> unit
(** Beyond the paper: ablates QuerySplit's implementation choices —
    subquery plan caching and column pruning at materialization. *)

val metrics_json : setup -> string
(** Machine-readable per-strategy metrics over the JOB-like workload
    (fig. 11 roster) plus one ["serve"] entry with the serving front
    end's deterministic counters (see {!serve_sweep}), one ["io"]
    entry with the buffer pool's deterministic fault counters and hit
    rate (see {!io_sweep}), one ["pipeline"] entry with the
    executor engines' deterministic intermediate-table and
    partition-reuse counters (see {!pipeline_sweep}), and one
    ["telemetry"] entry with the serving flight recorder's
    deterministic counters (see {!telemetry_sweep}), and one
    ["columnar"] entry with the chunk-layout comparison's deterministic
    counters (vectorized-kernel invocations, exact serialized sizes and
    digest equality across layouts; see {!scan_sweep}): the
    [Metrics.json_of_many] dump the bench tool writes with
    [--metrics-out] and [tools/bench_diff] compares. When
    [setup.tracer] is set, a synthetic ["phases"] entry carries the
    per-category span counts and time histograms. *)

val metrics_json_flavors :
  setup -> string * string * string * string * string * string
(** All committed-baseline flavours from ONE harness run: the
    fig11-roster-only dump (the PR-5-era content, written by
    [bench --baseline-out]), the same plus the ["serve"] entry (PR 6,
    [--serve-out]), additionally the ["io"] entry (PR 7, [--io-out]),
    additionally the ["pipeline"] entry (PR 8, [--pipeline-out]),
    additionally the ["telemetry"] entry (PR 9, [--telemetry-out]) and
    additionally the ["columnar"] entry (PR 10, [--metrics-out]).
    Generating them together keeps shared entries byte-identical, so
    full — histograms included — [bench_diff]s between the committed
    files are meaningful. *)

val metrics : setup -> unit
(** Beyond the paper: the observability layer's per-strategy metrics
    report over the JOB-like workload — Q-error percentiles,
    re-optimization counts, materialization volume, timeout hits — as a
    human-readable table plus the machine-readable JSON blob (see
    EXPERIMENTS.md for the schema). *)

val par_sweep : setup -> unit
(** Beyond the paper: runs the re-optimizer roster sequentially and at
    [max 2 domains] domains, reporting wall-clock, speedup, and whether
    result digests and merged metric counters match the sequential
    run (they must). *)

val scan_sweep : setup -> unit
(** Beyond the paper: per-layout scan throughput. A selective filter
    and a group-by aggregation run over a wide synthetic fact table
    under the [Row] and [Columnar] chunk layouts, sequentially and on
    a domain pool, reporting rows/sec side by side plus the
    vectorized-kernel chunk count — the columnar layout is expected to
    beat the row layout by ≥2× on the sequential selective scan.
    Verifies all results are digest-identical across layouts and
    pool widths. *)

val io_sweep : setup -> unit
(** Beyond the paper: out-of-core execution through the buffer pool. A
    synthetic fact table is spilled to disk and a sequential filter +
    group-by runs at several pool capacities — from comfortably above
    the working set down to a single frame — with a 2-domain I/O pool
    prefetching ahead of the scan. Reports wall-clock vs the resident
    run, fault/eviction counters, and the async-I/O overlap (io-span
    time on I/O-worker tracks inside the run's Execute interval), and
    checks every out-of-core digest against the in-memory run. *)

val dp_sweep : setup -> unit
(** Beyond the paper: optimizer-focused sweep. A PK-FK chain join at 6,
    9 and 12 relations is optimized sequentially, with a [max 2 domains]
    pool, and replayed through a warm cross-step DP memo — reporting
    best-of-3 wall-clock, parallel speedup and memo hits, and asserting
    all three plans are byte-identical. A second table reports the
    cross-step memo hit rate of every re-optimizing strategy over a
    slice of the JOB-like workload. *)

val pipeline_sweep : setup -> unit
(** Beyond the paper: the morsel-driven pipelined executor vs. the
    fully-materializing one, end to end. QuerySplit runs PK-FK chain
    joins at 10 and 12 relations under both engines, in memory and
    fully out-of-core (a 64-frame buffer pool), under both chunk
    layouts, on a [max 2 domains] pool — reporting wall-clock, the
    intermediate-table construction counts of each engine,
    partition-layout reuses across steps, and where the pipelined time
    went ([pipeline] vs [breaker] spans). Asserts the result digests
    are byte-identical across engines × layouts × resident/spilled. *)

val serve_sweep : setup -> unit
(** Beyond the paper: the concurrent serving front end under load.
    Submits mixed-cost streams (a heavy analytical burst admitted ahead
    of a short interactive tail) of 10^2–10^4 queries at two pool
    widths under FIFO and cost-aware scheduling, reporting throughput
    and p50/p95/p99 turnaround latency per configuration, and checking
    every served result digest against plain single-session execution.
    Cost-aware scheduling is expected to beat FIFO on p99 for this
    workload. *)

val telemetry_sweep : setup -> unit
(** Beyond the paper: the always-on serving flight recorder. Repeats
    the mixed-cost serving run with telemetry off and on (best of 3)
    to bound the recorder's overhead — digests must stay identical and
    the acceptance target is < 2% — then drives a light stream with a
    sprinkling of dead-on-arrival deadlines through a telemetry-enabled
    server and reports the tail-sampling split: every error flight
    keeps its full span tree, successes only above the configured
    latency quantile. *)

val all : setup -> unit
