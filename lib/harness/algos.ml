module Estimator = Qs_stats.Estimator
module Querysplit = Qs_core.Querysplit
module Static = Qs_core.Static
module Plan_driven = Qs_core.Plan_driven
module Fs = Qs_core.Fs

let default_est (_ : Runner.env) = Estimator.default

let querysplit_with config =
  {
    Runner.label = "QuerySplit";
    strategy = Querysplit.strategy config;
    estimator = default_est;
    warm = false;
  }

let querysplit = querysplit_with Querysplit.default_config

let default =
  { Runner.label = "Default"; strategy = Static.default; estimator = default_est; warm = false }

let optimal =
  {
    Runner.label = "Optimal";
    strategy = Static.default;
    estimator = (fun env -> Estimator.oracle ~exec:env.Runner.oracle_exec);
    warm = true;
  }

let plan_driven label policy =
  { Runner.label; strategy = Plan_driven.strategy policy; estimator = default_est; warm = false }

let reopt = plan_driven "Reopt" Plan_driven.reopt
let pop = plan_driven "Pop" Plan_driven.pop
let ief = plan_driven "IEF" Plan_driven.ief
let perron = plan_driven "Perron19" Plan_driven.perron
let optrange = plan_driven "OptRange" Plan_driven.optrange

let use =
  { Runner.label = "USE"; strategy = Static.use_robust; estimator = default_est; warm = false }

let pessimistic =
  {
    Runner.label = "Pessi.";
    strategy = Static.default;
    estimator = (fun _ -> Estimator.pessimistic);
    warm = false;
  }

let fs = { Runner.label = "FS"; strategy = Fs.strategy; estimator = default_est; warm = false }

let learned label kind =
  {
    Runner.label = label;
    strategy = Static.default;
    estimator =
      (fun env ->
        Estimator.learned kind ~seed:env.Runner.seed ~exec:env.Runner.oracle_exec);
    warm = true;
  }

let neurocard = learned "NeuroCard" Estimator.Neurocard
let deepdb = learned "DeepDB" Estimator.Deepdb
let mscn = learned "MSCN" Estimator.Mscn

let fig11_roster =
  [
    default; optimal; reopt; pop; ief; perron; use; pessimistic; fs; optrange;
    neurocard; deepdb; mscn; querysplit;
  ]

let nonspj_roster = [ default; optimal; reopt; pop; ief; perron; fs; optrange; querysplit ]

let reopt_roster = [ reopt; pop; ief; perron; querysplit ]
