(** The algorithm roster of the paper's evaluation (§6.3). *)

val querysplit : Runner.algo
(** RCenter + Φ4, the paper's default configuration. *)

val querysplit_with : Qs_core.Querysplit.config -> Runner.algo

val default : Runner.algo
val optimal : Runner.algo
val reopt : Runner.algo
val pop : Runner.algo
val ief : Runner.algo
val perron : Runner.algo
val use : Runner.algo
val pessimistic : Runner.algo
val fs : Runner.algo
val optrange : Runner.algo
val neurocard : Runner.algo
val deepdb : Runner.algo
val mscn : Runner.algo

val fig11_roster : Runner.algo list
(** Every bar of Figure 11, QuerySplit last. *)

val nonspj_roster : Runner.algo list
(** The subset shown for TPC-H / DSB non-SPJ (Figs. 12 and 14). *)

val reopt_roster : Runner.algo list
(** The four plan-driven re-optimizers plus QuerySplit (Table 4,
    Fig. 15). *)
