(** Plain-text rendering of experiment tables and series, in the shape the
    paper reports them. *)

val table : title:string -> headers:string list -> string list list -> unit
(** Print an aligned table to stdout. *)

val series : title:string -> x_label:string -> (string * (string * float) list) list -> unit
(** Print named series of (x, y) points — the textual stand-in for the
    paper's figures. *)

val seconds : float -> string
(** "12.34s" with sensible precision. *)

val bytes_mb : int -> string

val section : string -> unit
(** Banner for an experiment. *)
