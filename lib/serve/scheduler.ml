type policy = Fifo | Cost_aware

let policy_name = function Fifo -> "fifo" | Cost_aware -> "cost-aware"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "cost-aware" | "cost_aware" -> Some Cost_aware
  | _ -> None

type 'a entry = {
  id : int;
  cost : float;
  mutable bypassed : int;
  payload : 'a;
}

let entry ~id ~cost payload = { id; cost; bypassed = 0; payload }

let min_by better = function
  | [] -> None
  | e :: rest ->
      Some (List.fold_left (fun a b -> if better b a then b else a) e rest)

let pick policy ~aging_rounds queue =
  let chosen =
    match policy with
    | Fifo -> min_by (fun a b -> a.id < b.id) queue
    | Cost_aware -> (
        let aged = List.filter (fun e -> e.bypassed >= aging_rounds) queue in
        match min_by (fun a b -> a.id < b.id) aged with
        | Some _ as oldest -> oldest
        | None ->
            min_by
              (fun a b -> a.cost < b.cost || (a.cost = b.cost && a.id < b.id))
              queue)
  in
  (match chosen with
  | None -> ()
  | Some c ->
      List.iter (fun e -> if e.id <> c.id then e.bypassed <- e.bypassed + 1) queue);
  chosen
