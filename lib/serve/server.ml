module Pool = Qs_util.Pool
module Cancel = Qs_util.Cancel
module Span = Qs_util.Span
module Timer = Qs_util.Timer
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Optimizer = Qs_plan.Optimizer
module Plan_cache = Qs_plan.Plan_cache
module Dp_memo = Qs_plan.Dp_memo
module Executor = Qs_exec.Executor
module Strategy = Qs_core.Strategy
module Metrics = Qs_obs.Metrics
module Telemetry = Qs_obs.Telemetry
module Flight = Qs_obs.Flight
module Buffer_pool = Qs_storage.Buffer_pool

type config = {
  concurrency : int;
  queue_limit : int;
  policy : Scheduler.policy;
  aging_rounds : int;
  straggler_cost : float;
  autostart : bool;
  telemetry : Telemetry.config;
}

let default_config =
  {
    concurrency = 2;
    queue_limit = 64;
    policy = Scheduler.Cost_aware;
    aging_rounds = 4;
    straggler_cost = infinity;
    autostart = true;
    telemetry = Telemetry.default_config;
  }

type status =
  | Completed
  | Deadline_exceeded
  | Cancelled
  | Failed of string

type result = {
  id : int;
  session : string;
  query : string;
  status : status;
  digest : string option;
  row_count : int;
  est_cost : float;
  queue_wait : float;
  exec_time : float;
  rounds_waited : int;
  cache_hit : bool;
}

(* One admitted-but-unfinished query. The plan is resolved at admission
   (through the shared cache) so the scheduler has its cost signal and
   the fast path its executable plan; [cell] is the rendezvous with
   [await] — written exactly once, before the pool broadcast that wakes
   the waiter. *)
type pending = {
  p_id : int;
  p_session : string;
  p_query : Query.t;
  p_plan : Optimizer.result;
  p_cache_hit : bool;
  p_deadline : float option; (* absolute Timer.now value *)
  p_cancel : Cancel.t option;
  p_submitted : float;
  p_cell : result option Atomic.t;
  p_flight : Flight.t option; (* telemetry collector, when enabled *)
}

type ticket = result option Atomic.t

type t = {
  pool : Pool.t;
  registry : Stats_registry.t;
  estimator : Estimator.t;
  strategy : Strategy.t option;
  cache : Optimizer.result Plan_cache.t;
  config : config;
  spans : Span.t option;
  telem : Telemetry.t;
  mutex : Mutex.t; (* guards queue/started/round/orders/results/peak *)
  mutable queue : pending Scheduler.entry list;
  mutable started : bool;
  mutable round : int;
  mutable dispatch_rev : int list;
  mutable results_rev : result list;
  mutable peak : int;
  mutable next_id : int;
  (* atomics, not plain fields: read by [Pool.help_until] predicates,
     which may not take [mutex] (they run under the pool's own lock) *)
  queued : int Atomic.t;
  in_flight : int Atomic.t;
  outstanding : int Atomic.t;
}

let create ?(config = default_config) ?spans ?plan_cache ?strategy ~pool
    registry estimator =
  if config.concurrency < 1 then invalid_arg "Server.create: concurrency < 1";
  if config.queue_limit < 1 then invalid_arg "Server.create: queue_limit < 1";
  {
    pool;
    registry;
    estimator;
    strategy;
    cache = (match plan_cache with Some c -> c | None -> Plan_cache.create ());
    config;
    spans;
    telem = Telemetry.create ~config:config.telemetry ();
    mutex = Mutex.create ();
    queue = [];
    started = config.autostart;
    round = 0;
    dispatch_rev = [];
    results_rev = [];
    peak = 0;
    next_id = 0;
    queued = Atomic.make 0;
    in_flight = Atomic.make 0;
    outstanding = Atomic.make 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let expired deadline = match deadline with Some d -> Timer.now () > d | None -> false

let pool_for t (p : pending) =
  if Pool.size t.pool > 1 && p.p_plan.Optimizer.est_cost >= t.config.straggler_cost
  then Some t.pool
  else None

(* An explicitly attached server tracer wins; otherwise the flight's
   own always-on tracer records phase spans for rollups/tail samples. *)
let spans_for t (p : pending) =
  match t.spans with
  | Some _ -> t.spans
  | None -> Option.bind p.p_flight Flight.spans

(* Execute one query on the current domain (a pool worker, or a caller
   helping via [help_until]). Either the cached physical plan directly,
   or a full re-optimization strategy with a fresh per-query ctx — the
   only cross-query state is the registry, the plan cache and the
   optional pool, all lock-guarded. The flight rides along as this
   domain's ambient collector so executor counters attribute to it. *)
let execute t (p : pending) =
  let q = p.p_query in
  Flight.with_current p.p_flight (fun () ->
      match t.strategy with
      | None ->
          let tbl, _ =
            Executor.run ?deadline:p.p_deadline ?cancel:p.p_cancel
              ?pool:(pool_for t p) ?spans:(spans_for t p)
              p.p_plan.Optimizer.plan
          in
          `Done (Executor.project ~name:q.Query.name tbl q.Query.output)
      | Some strat ->
          let dp_memo = Dp_memo.create () in
          let ctx =
            Strategy.make_ctx ~deadline:p.p_deadline ?cancel:p.p_cancel
              ?pool:(pool_for t p) ?spans:(spans_for t p) ~dp_memo
              ?flight:p.p_flight t.registry t.estimator
          in
          let outcome = strat.Strategy.run ctx q in
          if outcome.Strategy.timed_out then `Timed_out
          else `Done outcome.Strategy.result)

let flight_status = function
  | Completed -> Flight.Completed
  | Deadline_exceeded -> Flight.Deadline_exceeded
  | Cancelled -> Flight.Cancelled
  | Failed msg -> Flight.Failed msg

(* Buffer-pool activity attributed to one flight: the stats delta over
   its execution window. Exact when the query ran alone; with
   concurrent out-of-core queries the deltas interleave (acceptable for
   telemetry — the cumulative totals stay exact). *)
let bufpool_stats () =
  match Qs_storage.Table.spill_config () with
  | Some (_, pool) -> Buffer_pool.stats pool
  | None ->
      {
        Buffer_pool.hits = 0; misses = 0; coalesced = 0; bypasses = 0;
        evictions = 0; prefetch_issued = 0; prefetch_used = 0;
        prefetch_wasted = 0;
      }

let finish t (p : pending) (entry : pending Scheduler.entry) ~started
    ~bp_before ~status ~digest ~row_count =
  let now = Timer.now () in
  (match p.p_deadline with
  | Some d ->
      Span.instant t.spans Span.Serve "deadline-margin"
        ~args:
          [
            ("query", string_of_int p.p_id);
            ("session", p.p_session);
            ("margin_s", Printf.sprintf "%.6f" (d -. now));
          ]
  | None -> ());
  let result =
    {
      id = p.p_id;
      session = p.p_session;
      query = p.p_query.Query.name;
      status;
      digest;
      row_count;
      est_cost = p.p_plan.Optimizer.est_cost;
      queue_wait = Float.max 0.0 (started -. p.p_submitted);
      exec_time = Float.max 0.0 (now -. started);
      rounds_waited = entry.Scheduler.bypassed;
      cache_hit = p.p_cache_hit;
    }
  in
  (match p.p_flight with
  | Some fl ->
      let bp_after = bufpool_stats () in
      ignore
        (Telemetry.complete t.telem fl ~status:(flight_status status)
           ~row_count ~queue_wait:result.queue_wait
           ~exec_time:result.exec_time
           ~faults:
             (max 0
                (bp_after.Buffer_pool.misses - bp_before.Buffer_pool.misses))
           ~bypasses:
             (max 0
                (bp_after.Buffer_pool.bypasses
                - bp_before.Buffer_pool.bypasses)))
  | None -> ());
  with_lock t (fun () -> t.results_rev <- result :: t.results_rev);
  Atomic.set p.p_cell (Some result);
  ignore (Atomic.fetch_and_add t.in_flight (-1));
  ignore (Atomic.fetch_and_add t.outstanding (-1))

(* Dispatch loop: while a slot is free and the queue is non-empty, let
   the scheduler pick, then hand the query to the pool. Called after
   every admission and every completion; recursion fills all free
   slots. The pick itself happens under [t.mutex]; the pool is only
   touched after it is released (no lock ordering between the two). *)
let rec dispatch t =
  let next =
    with_lock t (fun () ->
        if (not t.started) || Atomic.get t.in_flight >= t.config.concurrency
        then None
        else
          match
            Scheduler.pick t.config.policy ~aging_rounds:t.config.aging_rounds
              t.queue
          with
          | None -> None
          | Some entry ->
              t.queue <-
                List.filter
                  (fun (e : pending Scheduler.entry) ->
                    e.Scheduler.id <> entry.Scheduler.id)
                  t.queue;
              t.round <- t.round + 1;
              t.dispatch_rev <- entry.Scheduler.id :: t.dispatch_rev;
              ignore (Atomic.fetch_and_add t.queued (-1));
              ignore (Atomic.fetch_and_add t.in_flight 1);
              Some entry)
  in
  match next with
  | None -> ()
  | Some entry ->
      let p = entry.Scheduler.payload in
      Span.instant t.spans Span.Serve "dispatch"
        ~args:
          [
            ("query", string_of_int p.p_id);
            ("session", p.p_session);
            ("policy", Scheduler.policy_name t.config.policy);
            ("est_cost", Printf.sprintf "%.1f" entry.Scheduler.cost);
            ("bypassed", string_of_int entry.Scheduler.bypassed);
          ];
      Pool.submit t.pool (fun () -> run_entry t entry);
      dispatch t

and run_entry t (entry : pending Scheduler.entry) =
  let p = entry.Scheduler.payload in
  let started = Timer.now () in
  (match p.p_flight with
  | Some fl -> Telemetry.dispatch t.telem fl
  | None -> ());
  let bp_before = bufpool_stats () in
  Span.add t.spans Span.Serve "queue-wait" ~start:p.p_submitted
    ~dur:(started -. p.p_submitted)
    ~args:[ ("query", string_of_int p.p_id); ("session", p.p_session) ];
  (* a dead-on-arrival query (expired deadline, pre-cancelled token)
     completes without executing anything *)
  (if expired p.p_deadline then
     finish t p entry ~started ~bp_before ~status:Deadline_exceeded
       ~digest:None ~row_count:0
   else if
     match p.p_cancel with Some c -> Cancel.cancelled c | None -> false
   then
     finish t p entry ~started ~bp_before ~status:Cancelled ~digest:None
       ~row_count:0
   else
     match execute t p with
     | `Done tbl ->
         finish t p entry ~started ~bp_before ~status:Completed
           ~digest:(Some (Table.digest tbl))
           ~row_count:(Table.n_rows tbl)
     | `Timed_out ->
         finish t p entry ~started ~bp_before ~status:Deadline_exceeded
           ~digest:None ~row_count:0
     | exception Cancel.Cancelled ->
         finish t p entry ~started ~bp_before ~status:Cancelled ~digest:None
           ~row_count:0
     | exception Executor.Timeout ->
         finish t p entry ~started ~bp_before ~status:Deadline_exceeded
           ~digest:None ~row_count:0
     | exception e ->
         finish t p entry ~started ~bp_before
           ~status:(Failed (Printexc.to_string e))
           ~digest:None ~row_count:0);
  (* the freed slot may unblock the next queued query *)
  dispatch t

let submit t ~session ?deadline ?cancel q =
  (* backpressure: help the pool until the bounded queue has room *)
  Pool.help_until t.pool (fun () ->
      Atomic.get t.queued < t.config.queue_limit);
  let submitted = Timer.now () in
  (* admission-time plan resolution through the shared statement cache;
     the key carries the statement, the estimator and every referenced
     table's stats epoch, so an ANALYZE/invalidate bump simply makes
     the next lookup miss *)
  let key =
    Plan_cache.stamp ~registry:t.registry
      ~tables:
        (List.map (fun (r : Query.rel) -> r.Query.table) q.Query.rels)
      (t.estimator.Estimator.name ^ ":" ^ Query.to_sql q)
  in
  let plan, cache_hit =
    Plan_cache.find_or_compute t.cache ~key (fun () ->
        let ctx = Strategy.make_ctx t.registry t.estimator in
        let frag = Strategy.fragment_of_query ctx q in
        Optimizer.optimize ?spans:t.spans
          (Stats_registry.catalog t.registry)
          t.estimator frag)
  in
  let cell = Atomic.make None in
  let strategy_name =
    match t.strategy with
    | Some s -> s.Strategy.name
    | None -> "direct-plan"
  in
  let p_id =
    with_lock t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let flight =
          Telemetry.admit t.telem
            ~external_tracer:(Option.is_some t.spans)
            ~id ~session ~statement:q.Query.name ~strategy:strategy_name
            ~cache_hit ~est_cost:plan.Optimizer.est_cost ()
        in
        let p =
          {
            p_id = id;
            p_session = session;
            p_query = q;
            p_plan = plan;
            p_cache_hit = cache_hit;
            p_deadline = Option.map (fun s -> submitted +. s) deadline;
            p_cancel = cancel;
            p_submitted = submitted;
            p_cell = cell;
            p_flight = flight;
          }
        in
        t.queue <-
          Scheduler.entry ~id ~cost:plan.Optimizer.est_cost p :: t.queue;
        ignore (Atomic.fetch_and_add t.queued 1);
        ignore (Atomic.fetch_and_add t.outstanding 1);
        t.peak <- max t.peak (Atomic.get t.queued);
        id)
  in
  Span.instant t.spans Span.Serve "admit"
    ~args:
      [
        ("query", string_of_int p_id);
        ("session", session);
        ("cache", (if cache_hit then "hit" else "miss"));
      ];
  dispatch t;
  cell

let start t =
  with_lock t (fun () -> t.started <- true);
  dispatch t

let await t ticket =
  Pool.help_until t.pool (fun () -> Option.is_some (Atomic.get ticket));
  Option.get (Atomic.get ticket)

let drain t = Pool.help_until t.pool (fun () -> Atomic.get t.outstanding = 0)

let results t = with_lock t (fun () -> List.rev t.results_rev)
let dispatch_order t = with_lock t (fun () -> List.rev t.dispatch_rev)
let peak_queue t = with_lock t (fun () -> t.peak)
let plan_cache t = t.cache
let telemetry t = t.telem
let telemetry_snapshot t = Telemetry.snapshot t.telem

let metrics t =
  let m = Metrics.create () in
  let rs = results t in
  Metrics.incr ~by:(with_lock t (fun () -> t.next_id)) m "submitted";
  Metrics.incr ~by:(with_lock t (fun () -> t.round)) m "rounds";
  Metrics.incr ~by:(Plan_cache.hits t.cache) m "plan_cache_hits";
  Metrics.incr ~by:(Plan_cache.misses t.cache) m "plan_cache_misses";
  List.iter
    (fun r ->
      (match r.status with
      | Completed -> Metrics.incr m "completed"
      | Deadline_exceeded -> Metrics.incr m "deadline_exceeded"
      | Cancelled -> Metrics.incr m "cancelled"
      | Failed _ -> Metrics.incr m "failed");
      Metrics.incr m ("queries:" ^ r.session);
      Metrics.observe m "queue_wait_s" r.queue_wait;
      Metrics.observe m "exec_time_s" r.exec_time;
      Metrics.observe m "rounds_waited" (float_of_int r.rounds_waited))
    rs;
  Metrics.observe m "queue_depth_peak" (float_of_int (peak_queue t));
  m
