(** Admission-queue scheduling policies for the serving front end.

    The scheduler is deliberately pure bookkeeping over a small queue —
    every concurrency concern (locks, dispatch, backpressure) lives in
    {!Server}. That makes the policy itself unit-testable: feed it a
    queue, observe the pick order.

    A {e scheduling round} is one dispatch decision. Every entry still
    queued after a round was {e bypassed} once. Under [Cost_aware], an
    entry bypassed [aging_rounds] times is promoted to the aged class,
    which is served FIFO ahead of everything else — so an entry can be
    bypassed at most [aging_rounds] times by cheaper work plus once for
    each entry that aged before it: starvation-free with a provable
    bound (tested in [test_serve.ml]). *)

type policy = Fifo | Cost_aware

val policy_name : policy -> string
(** ["fifo"] / ["cost-aware"]. *)

val policy_of_string : string -> policy option

type 'a entry = {
  id : int;  (** admission order: smaller = older *)
  cost : float;  (** optimizer's estimated plan cost *)
  mutable bypassed : int;  (** rounds this entry was passed over *)
  payload : 'a;
}

val entry : id:int -> cost:float -> 'a -> 'a entry

val pick : policy -> aging_rounds:int -> 'a entry list -> 'a entry option
(** Choose the next entry to dispatch, and charge one bypass to every
    entry not chosen.

    [Fifo]: smallest [id].

    [Cost_aware]: smallest [id] among entries with
    [bypassed >= aging_rounds] (the aged class) if any, else smallest
    [(cost, id)]. Deterministic: ties break on [id]. *)
