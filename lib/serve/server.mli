(** Concurrent query-serving front end.

    A server admits a stream of queries from named sessions onto one
    shared {!Qs_util.Pool}:

    - {b bounded admission queue with backpressure}: {!submit} blocks —
      helping the pool drain, so a size-1 pool still makes progress —
      while [queue_limit] queries are already waiting;
    - {b cost-aware scheduling}: up to [concurrency] queries run at
      once; the next one is chosen by {!Scheduler.pick} using the
      optimizer's estimated cost from the shared plan cache, with aging
      so long queries are never starved;
    - {b deadlines and cooperative cancellation}: a per-query deadline
      (seconds of wall-clock from admission) and a {!Qs_util.Cancel}
      token are threaded through the executor and strategy loops; both
      are polled at every morsel boundary of the pipelined executor (a
      cancellation unwinds before the next buffer-pool frame is pinned,
      so no pinned frames leak) and surface as a clean
      [Deadline_exceeded] / [Cancelled] status — never a poisoned pool.
      An already-expired deadline (or pre-cancelled token) completes
      without executing at all;
    - {b shared plan cache}: one {!Qs_plan.Plan_cache} per server (or
      shared wider via [?plan_cache]) resolves each statement once;
      keys are stamped with [Stats_registry] epochs, so
      [Stats_registry.invalidate] forces a re-plan, mirroring
      [Dp_memo]'s epoch discipline;
    - {b observability}: queue-wait, dispatch decisions and deadline
      margins are recorded as [serve] spans, and {!metrics} exports
      counters + latency histograms in the [Qs_obs.Metrics] format;
    - {b always-on telemetry}: every admitted query gets a
      {!Qs_obs.Flight} record — statement, strategy, plan-cache hit,
      re-optimization journal, phase rollups, executor / buffer-pool
      counters, final status — pushed into the server's bounded
      {!Qs_obs.Telemetry} ring at completion, with tail-sampled full
      span trees for errors and latency outliers. Read it live with
      {!telemetry_snapshot} / [Telemetry.render], or scrape
      [Telemetry.to_prometheus]. When the server has no explicit
      [?spans] tracer, each flight carries its own, so phase rollups
      exist by default; an explicit tracer takes precedence and rollups
      come from the shared recording instead.

    Execution mode: with [?strategy] every query runs that
    re-optimization strategy (fresh per-query ctx and [Dp_memo], shared
    registry); without it the cached physical plan is executed directly
    — the statement-cache fast path. Queries whose estimated cost is at
    least [straggler_cost] additionally get the pooled join/DP paths
    ([ctx.pool]); results are unchanged either way, and completed
    digests are byte-identical to single-session execution. *)

module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Optimizer = Qs_plan.Optimizer
module Plan_cache = Qs_plan.Plan_cache
module Strategy = Qs_core.Strategy

type config = {
  concurrency : int;  (** max queries executing at once, >= 1 *)
  queue_limit : int;  (** admission-queue bound; {!submit} blocks at it *)
  policy : Scheduler.policy;
  aging_rounds : int;  (** bypasses before promotion to the aged class *)
  straggler_cost : float;
      (** estimated plan cost at/above which a query gets the shared
          pool for partitioned joins / parallel DP ([infinity] = never) *)
  autostart : bool;
      (** dispatch on submit (default). [false] queues everything until
          {!start} — used by the scheduler tests to fix the decision
          order. *)
  telemetry : Qs_obs.Telemetry.config;
      (** the always-on flight recorder; [Telemetry.disabled] turns the
          serving path's telemetry off entirely *)
}

val default_config : config
(** concurrency 2, queue limit 64, cost-aware, aging 4, no stragglers,
    autostart, default telemetry. *)

type status =
  | Completed
  | Deadline_exceeded  (** deadline hit before or during execution *)
  | Cancelled  (** the query's {!Qs_util.Cancel} token fired *)
  | Failed of string  (** unexpected exception (never poisons the pool) *)

type result = {
  id : int;  (** admission order *)
  session : string;
  query : string;  (** query display name *)
  status : status;
  digest : string option;  (** canonical result digest iff [Completed] *)
  row_count : int;
  est_cost : float;  (** scheduling cost signal used for this query *)
  queue_wait : float;  (** seconds from admission to dispatch *)
  exec_time : float;  (** seconds from dispatch to completion *)
  rounds_waited : int;  (** scheduling rounds this query was bypassed *)
  cache_hit : bool;  (** plan served from the shared statement cache *)
}

type ticket
(** Handle for one submitted query. *)

type t

val create :
  ?config:config ->
  ?spans:Qs_util.Span.t ->
  ?plan_cache:Optimizer.result Plan_cache.t ->
  ?strategy:Strategy.t ->
  pool:Qs_util.Pool.t ->
  Stats_registry.t ->
  Estimator.t ->
  t

val submit :
  t ->
  session:string ->
  ?deadline:float ->
  ?cancel:Qs_util.Cancel.t ->
  Query.t ->
  ticket
(** Admit one query: blocks (helping the pool) while the queue is full,
    resolves the plan through the shared cache, then queues the query
    for dispatch. [deadline] is seconds from admission. *)

val start : t -> unit
(** Begin dispatching (no-op when [autostart], the default). *)

val await : t -> ticket -> result
(** Block (helping the pool) until the query completes. The server must
    be started. *)

val drain : t -> unit
(** Block (helping the pool) until no query is queued or in flight. *)

val results : t -> result list
(** Completed results, in completion order. *)

val dispatch_order : t -> int list
(** Query ids in the order the scheduler released them. *)

val peak_queue : t -> int
(** High-water mark of the admission queue. *)

val plan_cache : t -> Optimizer.result Plan_cache.t

val telemetry : t -> Qs_obs.Telemetry.t
(** The server's flight recorder — for [Telemetry.render],
    [Telemetry.to_prometheus], [Telemetry.metrics]. *)

val telemetry_snapshot : t -> Qs_obs.Telemetry.snapshot
(** Live structured view of the recorder: in-flight queries, the ring
    of recent flight records, latency quantiles by status. After
    {!drain} on a fixed single-threaded workload the snapshot is
    deterministic (and [Telemetry.render ~timings:false] byte-stable). *)

val metrics : t -> Qs_obs.Metrics.t
(** Counters: [submitted], [completed], [cancelled],
    [deadline_exceeded], [failed], [plan_cache_hits],
    [plan_cache_misses], [rounds], and per-session [queries:<session>] —
    all deterministic for a deterministic workload without deadlines.
    Histograms: [queue_wait_s], [exec_time_s], [rounds_waited],
    [queue_depth_peak]. *)
