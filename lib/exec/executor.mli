(** Physical-plan execution.

    Two engines share one entry point. The default morsel-driven
    {!Pipeline} engine fuses filters and join probes into streams of
    chunk-sized morsels — a morsel over a spilled table is exactly one
    pinned buffer-pool frame — and buffers rows only at pipeline
    breakers (hash builds, partition barriers, NL inners; see
    {!Qs_plan.Physical.breaker_children}). The {!Materialize} engine is
    the original fully-materialized model re-optimization converts
    execution into (§2.2); it remains the reference implementation and
    the only engine that can fill a per-operator trace. Both report
    per-node actual cardinalities so the re-optimization strategies can
    compare them with the optimizer's estimates, and both produce the
    same result multiset.

    Execution checks an optional deadline and cancellation token and
    raises {!Timeout} / [Cancel.Cancelled]; the paper's 1000-second
    per-query timeout is modelled this way. The pipelined engine polls
    at every morsel boundary (so a cancellation unwinds before the next
    frame is pinned) and additionally every {i batch} rows inside
    wide fan-outs, where one morsel can produce many output rows. *)

module Physical = Qs_plan.Physical
module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr

exception Timeout

val default_row_limit : int
(** Per-operator output cap for plan execution (default 5 M rows): a plan
    materializing more than this is hopeless in this in-memory engine and
    is treated like a timeout — the analogue of the paper's 1000-second
    query cap, which the PostgreSQL "Default" configuration also hits on
    several JOB queries. *)

type stats = (int, int) Hashtbl.t
(** Physical node id → actual output rows. *)

type mode = Materialize | Pipeline
(** Execution model: whole-operator materialization vs. morsel-driven
    pipelining. Identical result multisets; the pipelined engine builds
    far fewer intermediate tables ({!intermediate_tables}). *)

val set_default_mode : mode -> unit
(** Set the engine used when {!run} gets no explicit [?mode]. The
    process-wide default is {!Pipeline}. *)

val execution_mode : unit -> mode
(** The current default engine. *)

val intermediate_tables : unit -> int
(** Cumulative count of intermediate tables the engines materialized
    (operator outputs; pipelined runs count only their sink and
    breaker materializations). For experiment accounting — reset with
    {!reset_counters} around a measured region. *)

val partition_reuses : unit -> int
(** How many times a partitioned join consumed a side through its
    preserved partition layout (a temp carrying its {!Qs_storage.Table.
    partitioning}) instead of re-hashing every row. *)

val vectorized_chunks : unit -> int
(** Cumulative count of columnar chunks whose filter conjunction ran (at
    least partially) through the vectorized selection-vector kernels
    ({!Qs_storage.Columnar.eval_cmp}) instead of row-at-a-time
    [Expr.eval]. Always 0 under the [Row] layout. *)

val reset_counters : unit -> unit

val span_label : Physical.t -> string
(** The name of the [operator] span bridged for a plan node ([scan:<id>],
    [hash-join], [index-nl-join], [nl-join]). One arm per [Physical]
    operator constructor — tools/check.sh lints for completeness. *)

val run : ?deadline:float -> ?cancel:Qs_util.Cancel.t -> ?row_limit:int ->
  ?pool:Qs_util.Pool.t -> ?trace:Qs_obs.Trace.t -> ?spans:Qs_util.Span.t ->
  ?mode:mode -> Physical.t -> Table.t * stats
(** Evaluate the plan. The output schema is the concatenation of the
    leaf schemas (alias-qualified); apply {!project} for the query's
    final projection.

    [mode] (default: {!execution_mode}) picks the engine. Join plans run
    pipelined under {!Pipeline}; a bare scan, or any run with [trace],
    always uses the materializing engine (tracing needs materialized
    outputs for byte accounting, and a lone scan only loses the scratch
    filter cache by streaming into a copy). A pipelined result whose
    root was a partitioned parallel join carries its partition layout
    ({!Qs_storage.Table.partitioning}), which {!project} and temp
    materialization preserve — the next step's join over the same key
    and modulus skips re-partitioning.

    Every node id of the plan — including the inner scan of an index
    nested-loop join, which is consumed through the index rather than
    scanned — is present in the returned stats. With [trace], each node
    additionally records estimates, wall-clock (inclusive of children —
    see {!Qs_obs.Trace.self_time}), output bytes and operator volume
    counters; without it the timing/byte probes are skipped entirely.
    With [spans], each node is additionally bridged into one [operator]
    span (est/actual rows in the args); pipelined runs emit these as
    zero-duration markers and report wall-clock through [pipeline] and
    [breaker] spans instead, since fused operators have no exclusive
    time of their own.

    With [pool] (of size > 1), hash joins run partitioned across the
    pool's domains and leaf scans filter their table chunks in parallel;
    plans, costs and the result multiset are unchanged — only wall-clock
    is affected. Off by default. *)

val project : ?name:string -> Table.t -> Expr.colref list -> Table.t
(** Keep only the named columns (in the given order, duplicates removed);
    an empty list keeps everything. *)

val filter_table : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  ?pool:Qs_util.Pool.t -> Table.t -> Expr.pred list -> Table.t
(** Chunked scan+filter of one table. With [pool] (size > 1) chunks are
    scanned in parallel; per-chunk outputs are merged in chunk order, so
    the result is row-for-row identical to the sequential scan. *)

val filter_input : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  ?pool:Qs_util.Pool.t -> Fragment.input -> Table.t
(** Scan one input applying its filters (the executor's leaf operator,
    exposed for the naive counter and tests). The result is cached on the
    input's scratch, keyed by the filter predicates. *)

val hash_join : ?deadline:float -> ?cancel:Qs_util.Cancel.t -> ?limit:int ->
  ?pool:Qs_util.Pool.t -> build:Table.t -> probe:Table.t -> Expr.pred list ->
  Table.t
(** One hash join over materialized inputs: equality conjuncts become the
    hash key, the rest are residual filters (exposed for the naive
    counter and tests). With [pool], build and probe are hash-partitioned
    into one bucket per pool slot and the buckets join in parallel; the
    output multiset is identical to the sequential join. *)

val hash_join_count : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  build:Table.t -> probe:Table.t -> Expr.pred list -> int
(** Cardinality of [hash_join] without materializing its output — the
    oracle's way of counting explosive final joins in O(1) memory. *)

val cartesian : name:string -> Table.t list -> Table.t
(** Cross product of independent result tables — the final merge step of
    QuerySplit when isolated subquery results remain (§3.1). *)
