(** Physical-plan execution.

    Every operator materializes its output (the fully-materialized model
    re-optimization converts execution into — §2.2); per-node actual
    cardinalities are reported so the re-optimization strategies can
    compare them with the optimizer's estimates.

    Execution checks an optional deadline between row batches and raises
    {!Timeout}; the paper's 1000-second per-query timeout is modelled this
    way. An optional {!Qs_util.Cancel} token is polled at the same batch
    boundaries and raises [Cancel.Cancelled] — the serving front end's
    cooperative cancellation. *)

module Physical = Qs_plan.Physical
module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr

exception Timeout

val default_row_limit : int
(** Per-operator output cap for plan execution (default 5 M rows): a plan
    materializing more than this is hopeless in this in-memory engine and
    is treated like a timeout — the analogue of the paper's 1000-second
    query cap, which the PostgreSQL "Default" configuration also hits on
    several JOB queries. *)

type stats = (int, int) Hashtbl.t
(** Physical node id → actual output rows. *)

val span_label : Physical.t -> string
(** The name of the [operator] span bridged for a plan node ([scan:<id>],
    [hash-join], [index-nl-join], [nl-join]). One arm per [Physical]
    operator constructor — tools/check.sh lints for completeness. *)

val run : ?deadline:float -> ?cancel:Qs_util.Cancel.t -> ?row_limit:int ->
  ?pool:Qs_util.Pool.t -> ?trace:Qs_obs.Trace.t -> ?spans:Qs_util.Span.t ->
  Physical.t -> Table.t * stats
(** Evaluate the plan bottom-up. The output schema is the concatenation of
    the leaf schemas (alias-qualified); apply {!project} for the query's
    final projection.

    Every node id of the plan — including the inner scan of an index
    nested-loop join, which is consumed through the index rather than
    scanned — is present in the returned stats. With [trace], each node
    additionally records estimates, wall-clock (inclusive of children —
    see {!Qs_obs.Trace.self_time}), output bytes and operator volume
    counters; without it the timing/byte probes are skipped entirely.
    With [spans], each node is additionally bridged into one [operator]
    span (est/actual rows in the args; the index-NL inner scan gets a
    zero-duration marker since its work happens inside the lookups).

    With [pool] (of size > 1), hash joins run partitioned across the
    pool's domains and leaf scans filter their table chunks in parallel;
    plans, costs and the result multiset are unchanged — only wall-clock
    is affected. Off by default. *)

val project : ?name:string -> Table.t -> Expr.colref list -> Table.t
(** Keep only the named columns (in the given order, duplicates removed);
    an empty list keeps everything. *)

val filter_table : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  ?pool:Qs_util.Pool.t -> Table.t -> Expr.pred list -> Table.t
(** Chunked scan+filter of one table. With [pool] (size > 1) chunks are
    scanned in parallel; per-chunk outputs are merged in chunk order, so
    the result is row-for-row identical to the sequential scan. *)

val filter_input : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  ?pool:Qs_util.Pool.t -> Fragment.input -> Table.t
(** Scan one input applying its filters (the executor's leaf operator,
    exposed for the naive counter and tests). The result is cached on the
    input's scratch, keyed by the filter predicates. *)

val hash_join : ?deadline:float -> ?cancel:Qs_util.Cancel.t -> ?limit:int ->
  ?pool:Qs_util.Pool.t -> build:Table.t -> probe:Table.t -> Expr.pred list ->
  Table.t
(** One hash join over materialized inputs: equality conjuncts become the
    hash key, the rest are residual filters (exposed for the naive
    counter and tests). With [pool], build and probe are hash-partitioned
    into one bucket per pool slot and the buckets join in parallel; the
    output multiset is identical to the sequential join. *)

val hash_join_count : ?deadline:float -> ?cancel:Qs_util.Cancel.t ->
  build:Table.t -> probe:Table.t -> Expr.pred list -> int
(** Cardinality of [hash_join] without materializing its output — the
    oracle's way of counting explosive final joins in O(1) memory. *)

val cartesian : name:string -> Table.t list -> Table.t
(** Cross product of independent result tables — the final merge step of
    QuerySplit when isolated subquery results remain (§3.1). *)
