(** Materialized temporary tables (§5): intermediate results become
    PostgreSQL-style temp tables, optionally ANALYZEd before the next
    re-optimization step (§6.4 studies exactly this choice). *)

module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment
module Table_stats = Qs_stats.Table_stats
module Expr = Qs_query.Expr

val namer : unit -> unit -> string
(** [namer ()] returns a generator of fresh temp names: "T1", "T2", … —
    one generator per query execution. *)

val materialize : name:string -> keep:Expr.colref list -> Table.t -> Table.t
(** Copy (and project to [keep]; empty keeps everything) the result into a
    temp table. The schema keeps its original alias qualifiers so pending
    predicates still resolve — and so a partition layout carried by the
    result ({!Qs_storage.Table.partitioning}) survives the projection
    when [keep] retains the key columns: the next step's partitioned
    join over this temp skips re-hashing its rows. *)

val stats_of : collect:bool -> Table.t -> Table_stats.t
(** ANALYZE when [collect], row count only otherwise. *)

val to_input : ?stats_epoch:int -> name:string -> provenance:string ->
  provides:string list -> collect_stats:bool -> Table.t -> Fragment.input
(** Wrap a materialized table as a fragment input (no indexes — temp
    tables have none, the Figure 2 effect). [stats_epoch] (default 0)
    distinguishes re-materializations sharing a provenance in DP-memo
    keys. *)
