module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Chunk = Qs_storage.Chunk
module Columnar = Qs_storage.Columnar
module Expr = Qs_query.Expr
module Logical = Qs_plan.Logical
module Pool = Qs_util.Pool

let flatten ~name (tbl : Table.t) =
  let seen = Hashtbl.create 8 in
  let schema =
    Array.map
      (fun (c : Schema.column) ->
        let flat = c.Schema.rel ^ "_" ^ c.Schema.name in
        let flat =
          if Hashtbl.mem seen flat then (
            let k = Hashtbl.find seen flat + 1 in
            Hashtbl.replace seen flat k;
            Printf.sprintf "%s_%d" flat k)
          else (
            Hashtbl.replace seen flat 0;
            flat)
        in
        { Schema.rel = name; name = flat; ty = c.Schema.ty })
      tbl.Table.schema
  in
  Table.reschema ~name ~schema tbl

type acc = {
  mutable count : int;
  mutable sum : float;
  mutable sum_is_int : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
  mutable non_null : int;
}

let fresh_acc () =
  { count = 0; sum = 0.0; sum_is_int = true; min_v = Value.Null; max_v = Value.Null; non_null = 0 }

let feed acc v =
  acc.count <- acc.count + 1;
  if not (Value.is_null v) then begin
    acc.non_null <- acc.non_null + 1;
    (match v with
    | Value.Int i -> acc.sum <- acc.sum +. float_of_int i
    | Value.Float f ->
        acc.sum <- acc.sum +. f;
        acc.sum_is_int <- false
    | _ -> ());
    if Value.is_null acc.min_v || Value.compare v acc.min_v < 0 then acc.min_v <- v;
    if Value.is_null acc.max_v || Value.compare v acc.max_v > 0 then acc.max_v <- v
  end

let finish (fn : Logical.agg_fn) acc =
  match fn with
  | Logical.Count_star -> Value.Int acc.count
  | Logical.Count -> Value.Int acc.non_null
  | Logical.Sum ->
      if acc.non_null = 0 then Value.Null
      else if acc.sum_is_int then Value.Int (int_of_float acc.sum)
      else Value.Float acc.sum
  | Logical.Min -> acc.min_v
  | Logical.Max -> acc.max_v
  | Logical.Avg ->
      if acc.non_null = 0 then Value.Null
      else Value.Float (acc.sum /. float_of_int acc.non_null)

let agg_out_ty (fn : Logical.agg_fn) v =
  match fn with
  | Logical.Count_star | Logical.Count -> Value.TInt
  | Logical.Avg -> Value.TFloat
  | _ -> ( match Value.type_of v with Some ty -> ty | None -> Value.TInt)

let merge_acc ~into:a b =
  a.count <- a.count + b.count;
  a.sum <- a.sum +. b.sum;
  a.sum_is_int <- a.sum_is_int && b.sum_is_int;
  a.non_null <- a.non_null + b.non_null;
  if
    (not (Value.is_null b.min_v))
    && (Value.is_null a.min_v || Value.compare b.min_v a.min_v < 0)
  then a.min_v <- b.min_v;
  if
    (not (Value.is_null b.max_v))
    && (Value.is_null a.max_v || Value.compare b.max_v a.max_v > 0)
  then a.max_v <- b.max_v

let aggregate ?pool ~name ~group_by ~aggs (tbl : Table.t) =
  let schema = tbl.Table.schema in
  let gpos =
    List.map
      (fun (c : Expr.colref) -> Schema.find_exn schema ~rel:c.Expr.rel ~name:c.Expr.name)
      group_by
  in
  (* the hash key is the group values themselves, which are also the
     output's group columns — no sample row is retained *)
  let entry groups order key =
    match Hashtbl.find_opt groups key with
    | Some accs -> accs
    | None ->
        let accs = Array.init (List.length aggs) (fun _ -> fresh_acc ()) in
        Hashtbl.replace groups key accs;
        order := key :: !order;
        accs
  in
  let feed_row groups order row =
    let key = List.map (fun p -> row.(p)) gpos in
    let accs = entry groups order key in
    List.iteri
      (fun i (a : Logical.agg) ->
        let v =
          match a.Logical.arg with
          | None -> Value.Int 1 (* COUNT of rows *)
          | Some s -> Expr.eval_scalar schema row s
        in
        feed accs.(i) v)
      aggs
  in
  (* Columnar hash aggregation: when every aggregate argument is absent
     or a plain column reference, a columnar chunk feeds the hash table
     from batch-decoded group-key and argument columns — one decode
     sweep per column per chunk instead of per-row schema lookups. Any
     arithmetic argument (or a row chunk) takes the row path. *)
  let arg_cols =
    List.map
      (fun (a : Logical.agg) ->
        match a.Logical.arg with
        | None -> `Count
        | Some (Expr.Col c) ->
            `Col (Schema.find_exn schema ~rel:c.Expr.rel ~name:c.Expr.name)
        | Some _ -> `Eval)
      aggs
  in
  let batchable = List.for_all (fun c -> c <> `Eval) arg_cols in
  let feed_chunk_data groups order (chunk : Chunk.t) =
    match Chunk.columnar chunk with
    | Some col when batchable ->
        let n = Columnar.n_rows col in
        let kcols = List.map (Columnar.column_values col) gpos in
        let acols =
          List.map
            (function
              | `Col p -> Some (Columnar.column_values col p)
              | `Count | `Eval -> None)
            arg_cols
        in
        for i = 0 to n - 1 do
          let key = List.map (fun a -> a.(i)) kcols in
          let accs = entry groups order key in
          List.iteri
            (fun ai av ->
              feed accs.(ai)
                (match av with Some a -> a.(i) | None -> Value.Int 1))
            acols
        done
    | _ -> Array.iter (feed_row groups order) (Chunk.rows chunk)
  in
  let groups, order =
    match pool with
    | Some pool when Pool.size pool > 1 && Table.n_chunks tbl > 1 ->
        (* per-chunk partial aggregation, then an ordered merge: a group's
           first appearance globally is in the earliest chunk where it
           appears, so walking partials in chunk order reproduces the
           sequential group order (and exact sums on integer columns;
           float sums may differ from sequential in the last ulp, but the
           merge order is fixed, so the result is deterministic) *)
        let feed_chunk ci =
          let groups = Hashtbl.create 64 in
          let order = ref [] in
          feed_chunk_data groups order (Table.chunk_data tbl ci);
          (groups, List.rev !order)
        in
        let parts =
          Pool.map pool feed_chunk (List.init (Table.n_chunks tbl) Fun.id)
        in
        let groups : (Value.t list, acc array) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        List.iter
          (fun (part, part_order) ->
            List.iter
              (fun key ->
                let accs = Hashtbl.find part key in
                match Hashtbl.find_opt groups key with
                | None ->
                    Hashtbl.replace groups key accs;
                    order := key :: !order
                | Some into ->
                    Array.iteri (fun i b -> merge_acc ~into:into.(i) b) accs)
              part_order)
          parts;
        (groups, order)
    | _ ->
        let groups : (Value.t list, acc array) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        Table.iter_chunk_data (fun _ c -> feed_chunk_data groups order c) tbl;
        (groups, order)
  in
  (* a global aggregate over an empty input still yields one row *)
  if Hashtbl.length groups = 0 && group_by = [] then begin
    Hashtbl.replace groups []
      (Array.init (List.length aggs) (fun _ -> fresh_acc ()));
    order := [ [] ]
  end;
  let rows =
    List.rev_map
      (fun key ->
        let accs = Hashtbl.find groups key in
        Array.of_list
          (key @ List.mapi (fun i (a : Logical.agg) -> finish a.Logical.fn accs.(i)) aggs))
      !order
  in
  let rows = Array.of_list rows in
  let sample_agg_vals =
    if Array.length rows > 0 then
      Array.to_list (Array.sub rows.(0) (List.length group_by) (List.length aggs))
    else List.map (fun _ -> Value.Null) aggs
  in
  let out_schema =
    Array.of_list
      (List.map2
         (fun (c : Expr.colref) p ->
           { Schema.rel = name; name = Logical.group_label c; ty = schema.(p).Schema.ty })
         group_by gpos
      @ List.map2
          (fun (a : Logical.agg) v ->
            { Schema.rel = name; name = a.Logical.label; ty = agg_out_ty a.Logical.fn v })
          aggs sample_agg_vals)
  in
  Table.create ~name ~schema:out_schema rows

let union_all ~name tables =
  match tables with
  | [] -> invalid_arg "Relop.union_all: no inputs"
  | first :: _ ->
      let template = flatten ~name first in
      let arity = Schema.arity template.Table.schema in
      List.iter
        (fun (t : Table.t) ->
          if Schema.arity t.Table.schema <> arity then
            invalid_arg "Relop.union_all: arity mismatch")
        tables;
      (* When every input carries the same partition layout over the same
         schema, concatenation is still partition-pure chunk by chunk: keep
         the layout, with the key columns translated through the flattening
         so they resolve in the requalified output schema. Same-schema
         matters — equal arity alone doesn't put the key values at the
         same positions. *)
      let shared_layout =
        match Table.partitioning first with
        | Some p
          when List.for_all
                 (fun (t : Table.t) ->
                   t.Table.schema = first.Table.schema
                   &&
                   match Table.partitioning t with
                   | Some q ->
                       q.Table.part_keys = p.Table.part_keys
                       && q.Table.parts = p.Table.parts
                   | None -> false)
                 tables ->
            Some p
        | _ -> None
      in
      match shared_layout with
      | None ->
          let chunks = List.concat_map Table.chunk_list tables in
          Table.of_chunks ~name ~schema:template.Table.schema chunks
      | Some p ->
          let part_keys =
            List.map
              (List.map (fun (rel, col) ->
                   let pos =
                     Schema.find_exn first.Table.schema ~rel ~name:col
                   in
                   let c = template.Table.schema.(pos) in
                   (c.Schema.rel, c.Schema.name)))
              p.Table.part_keys
          in
          let tagged =
            List.concat_map
              (fun (t : Table.t) ->
                match Table.partitioning t with
                | Some q ->
                    List.mapi
                      (fun i c -> (q.Table.tags.(i), c))
                      (Table.chunk_list t)
                | None -> assert false)
              tables
          in
          Table.of_tagged_chunks ~name ~schema:template.Table.schema
            ~part_keys ~parts:p.Table.parts tagged

let semi_join ~name ~anti ~(left : Table.t) ~(right : Table.t) ~on =
  let lschema = left.Table.schema in
  let rschema = right.Table.schema in
  let is_left (c : Expr.colref) = Schema.mem lschema ~rel:c.Expr.rel ~name:c.Expr.name in
  let equi, residual =
    List.partition_map
      (fun p ->
        match Expr.join_sides p with
        | Some (a, b) when is_left a -> Either.Left (a, b)
        | Some (a, b) when is_left b -> Either.Left (b, a)
        | _ -> Either.Right p)
      on
  in
  let lpos =
    List.map (fun ((c : Expr.colref), _) -> Schema.find_exn lschema ~rel:c.Expr.rel ~name:c.Expr.name) equi
  in
  let rpos =
    List.map (fun (_, (c : Expr.colref)) -> Schema.find_exn rschema ~rel:c.Expr.rel ~name:c.Expr.name) equi
  in
  let buckets : (Value.t list, Value.t array list) Hashtbl.t = Hashtbl.create 64 in
  Table.iter
    (fun row ->
      let k = List.map (fun p -> row.(p)) rpos in
      if not (List.exists Value.is_null k) then
        Hashtbl.replace buckets k (row :: Option.value (Hashtbl.find_opt buckets k) ~default:[]))
    right;
  let combined_schema = Schema.concat lschema rschema in
  let matches lrow =
    let k = List.map (fun p -> lrow.(p)) lpos in
    if List.exists Value.is_null k then false
    else
      match Hashtbl.find_opt buckets k with
      | None -> false
      | Some rrows ->
          List.exists
            (fun rrow ->
              let row = Array.append lrow rrow in
              List.for_all (Expr.eval combined_schema row) residual)
            rrows
  in
  let chunks =
    List.init (Table.n_chunks left) (fun ci ->
        Table.chunk left ci
        |> Array.to_list
        |> List.filter (fun lrow -> if anti then not (matches lrow) else matches lrow)
        |> Array.of_list)
  in
  let out = Table.of_chunks ~name:left.Table.name ~schema:lschema chunks in
  flatten ~name out
