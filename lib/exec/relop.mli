(** Non-SPJ relational operators (§3.3): aggregation, UNION ALL,
    semi/anti join. These execute over fully materialized inputs; their
    outputs get flat column names (["rel_col"]) qualified by the operator's
    node name so a parent query can treat them as base relations. *)

module Table = Qs_storage.Table
module Expr = Qs_query.Expr
module Logical = Qs_plan.Logical

val aggregate : ?pool:Qs_util.Pool.t -> name:string -> group_by:Expr.colref list ->
  aggs:Logical.agg list -> Table.t -> Table.t
(** Hash aggregation. With an empty [group_by] a single row is produced
    even for empty input (COUNT = 0, other aggregates NULL). With [pool]
    (size > 1), chunks aggregate in parallel and the partials merge in
    chunk order: group order and integer aggregates are identical to the
    sequential path; float sums merge per-chunk, deterministically, but
    may differ from the sequential rounding in the last ulp. *)

val union_all : name:string -> Table.t list -> Table.t
(** Inputs must have equal arity; the first input's column names (flattened)
    define the output schema. If every input carries the same partition
    layout ({!Qs_storage.Table.partitioning}) over the same schema, the
    output keeps it (key columns renamed through the flattening). *)

val semi_join : name:string -> anti:bool -> left:Table.t -> right:Table.t ->
  on:Expr.pred list -> Table.t
(** EXISTS / NOT EXISTS over the equality predicates in [on] (hash-based),
    with any non-equality predicates checked per candidate pair. *)

val flatten : name:string -> Table.t -> Table.t
(** Requalify every column to [name], renaming to ["origrel_origcol"] to
    keep names unique (exposed for the driver's non-SPJ registration). *)
