(** Reference execution of fragments, independent of the optimizer.

    [count] backs the oracle estimator (true cardinalities); [rows] is the
    ground truth the correctness property tests compare QuerySplit
    against. Joins are executed as hash joins in a greedy
    smallest-intermediate-first order with aggressive column pruning, so
    no plan choice is involved. *)

module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment

type cache
(** Memo for intermediate weighted relations, shared across the many
    overlapping sub-fragments a DP optimizer asks to count. One cache must
    only ever see one database instance (fragment keys do not encode data
    identity). *)

val make_cache : unit -> cache

val count : ?deadline:float -> ?cache:cache -> Fragment.t -> int
(** True output cardinality, computed on *weighted* (group-count)
    relations so explosive joins cost distinct-keys, not output-rows.
    Disconnected fragments multiply component counts without
    materializing the cross product. *)

val rows : ?deadline:float -> Fragment.t -> Table.t
(** Full materialized result (projected to [fragment.output] when that is
    non-empty). Cross products between components *are* materialized
    here. *)
