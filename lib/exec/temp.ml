module Table = Qs_storage.Table
module Fragment = Qs_stats.Fragment
module Table_stats = Qs_stats.Table_stats
module Analyze = Qs_stats.Analyze
module Expr = Qs_query.Expr

let namer () =
  let n = ref 0 in
  fun () ->
    incr n;
    "T" ^ string_of_int !n

let materialize ~name ~keep tbl =
  let projected = Executor.project ~name tbl keep in
  Table.with_name projected name

let stats_of ~collect tbl =
  if collect then Analyze.of_table tbl else Analyze.rowcount_of_table tbl

let to_input ?stats_epoch ~name ~provenance ~provides ~collect_stats tbl =
  Fragment.temp_input ?stats_epoch ~id:name ~provenance tbl ~provides
    ~stats:(stats_of ~collect:collect_stats tbl)
