module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Scratch = Qs_util.Scratch

(* Columns of [tbl] still needed: those referenced by predicates not yet
   applied, plus the requested output columns. *)
let prune tbl preds keep =
  let needed (c : Schema.column) =
    List.exists
      (fun p ->
        List.exists
          (fun (r : Expr.colref) -> r.Expr.rel = c.Schema.rel && r.Expr.name = c.Schema.name)
          (Expr.cols_of_pred p))
      preds
    || List.exists
         (fun (r : Expr.colref) -> r.Expr.rel = c.Schema.rel && r.Expr.name = c.Schema.name)
         keep
  in
  let cols =
    Array.to_list tbl.Table.schema
    |> List.filter needed
    |> List.map (fun (c : Schema.column) -> { Expr.rel = c.Schema.rel; name = c.Schema.name })
  in
  if List.length cols = Array.length tbl.Table.schema then tbl
  else if cols = [] then
    (* keep an empty-schema table with the right row count *)
    Table.create ~name:tbl.Table.name ~schema:[||]
      (Array.make (Table.n_rows tbl) [||])
  else Executor.project tbl cols

(* saturating arithmetic: true cardinalities of cartesian products and
   explosive joins can exceed 63-bit range *)
let mul_sat a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let add_sat a b = if a > max_int - b then max_int else a + b

(* ------------------------------------------------------------------ *)
(* Materializing execution (reference semantics)                       *)
(* ------------------------------------------------------------------ *)

(* Join all inputs of one connected component; returns the result table
   (pruned to [keep] ∪ pending-predicate columns). *)
let join_component ?deadline (frag : Fragment.t) (inputs : Fragment.input list) keep =
  let sub = Fragment.restrict frag inputs in
  let tables =
    List.map
      (fun i ->
        ( i.Fragment.provides,
          Executor.filter_input ?deadline i |> fun t -> prune t sub.Fragment.preds keep ))
      inputs
  in
  let preds = ref sub.Fragment.preds in
  let tabs = ref tables in
  let applicable aliases =
    List.partition
      (fun p -> List.for_all (fun r -> List.mem r aliases) (Expr.rels_of_pred p))
      !preds
  in
  while List.length !tabs > 1 do
    (* choose the connected pair with the smallest size product *)
    let best = ref None in
    List.iteri
      (fun ai (aal, (at : Table.t)) ->
        List.iteri
          (fun bi (bal, (bt : Table.t)) ->
            if ai < bi then begin
              let connected =
                List.exists
                  (fun p ->
                    let rels = Expr.rels_of_pred p in
                    List.exists (fun r -> List.mem r aal) rels
                    && List.exists (fun r -> List.mem r bal) rels)
                  !preds
              in
              if connected then begin
                let sz =
                  float_of_int (Table.n_rows at) *. float_of_int (Table.n_rows bt)
                in
                match !best with
                | Some (_, _, s) when s <= sz -> ()
                | _ -> best := Some (ai, bi, sz)
              end
            end)
          !tabs)
      !tabs;
    match !best with
    | None ->
        (* should not happen inside a connected component *)
        invalid_arg "Naive.join_component: disconnected component"
    | Some (ai, bi, _) ->
        let aal, at = List.nth !tabs ai in
        let bal, bt = List.nth !tabs bi in
        let merged_aliases = aal @ bal in
        let here, later = applicable merged_aliases in
        let joined = Executor.hash_join ?deadline ~build:at ~probe:bt here in
        preds := later;
        let pruned = prune joined later keep in
        tabs :=
          (merged_aliases, pruned) :: List.filteri (fun i _ -> i <> ai && i <> bi) !tabs
  done;
  snd (List.hd !tabs)

let rows ?deadline (frag : Fragment.t) =
  let keep =
    match frag.Fragment.output with
    | [] ->
        (* keep everything: every column of every input *)
        List.concat_map
          (fun (i : Fragment.input) ->
            Array.to_list i.Fragment.table.Table.schema
            |> List.map (fun (c : Schema.column) ->
                   { Expr.rel = c.Schema.rel; name = c.Schema.name }))
          frag.Fragment.inputs
    | out -> out
  in
  let components =
    Fragment.connected_components frag
    |> List.map (fun comp -> join_component ?deadline frag comp keep)
  in
  let merged = Executor.cartesian ~name:"naive" components in
  match frag.Fragment.output with
  | [] -> merged
  | out -> Executor.project ~name:"naive" merged out

(* ------------------------------------------------------------------ *)
(* Weighted counting (the oracle's backend)                            *)
(* ------------------------------------------------------------------ *)

(* A weighted relation: rows grouped by their join-relevant columns, each
   group carrying the number of underlying rows it stands for. Joins
   multiply weights; after every join the result is re-grouped on the
   columns still needed. Intermediate sizes are bounded by the number of
   distinct key combinations — never by row multiplicity — so counting an
   explosive join costs O(distinct keys), not O(output rows). *)
type weighted = {
  aliases : string list;
  wschema : Schema.t;
  wrows : (Value.t array * int) array;
}

let weighted_slot : weighted Scratch.slot = Scratch.slot ()

let cols_needed preds (schema : Schema.t) =
  Array.to_list schema
  |> List.filter (fun (c : Schema.column) ->
         List.exists
           (fun p ->
             List.exists
               (fun (r : Expr.colref) ->
                 r.Expr.rel = c.Schema.rel && r.Expr.name = c.Schema.name)
               (Expr.cols_of_pred p))
           preds)

let group_by_needed preds (schema : Schema.t) rows =
  let kept = cols_needed preds schema in
  let positions =
    List.map
      (fun (c : Schema.column) ->
        Schema.find_exn schema ~rel:c.Schema.rel ~name:c.Schema.name)
      kept
  in
  let out_schema = Array.of_list kept in
  let groups : (Value.t list, int) Hashtbl.t = Hashtbl.create 1024 in
  Seq.iter
    (fun (row, w) ->
      let key = List.map (fun p -> row.(p)) positions in
      Hashtbl.replace groups key
        (add_sat w (Option.value (Hashtbl.find_opt groups key) ~default:0)))
    rows;
  let grouped =
    Hashtbl.fold (fun key w acc -> (Array.of_list key, w) :: acc) groups []
  in
  (out_schema, Array.of_list grouped)

let weighted_of_input ?deadline preds (i : Fragment.input) =
  let filtered = Executor.filter_input ?deadline i in
  (* the grouping depends only on which of the input's columns the subset's
     predicates touch: cache per column-set signature *)
  let kept_sig =
    cols_needed preds filtered.Table.schema
    |> List.map Schema.column_id |> String.concat ","
  in
  Scratch.find_or_add i.Fragment.scratch weighted_slot ("w:" ^ kept_sig)
    (fun () ->
      let wschema, wrows =
        group_by_needed preds filtered.Table.schema
          (Seq.map (fun r -> (r, 1)) (Table.to_seq filtered))
      in
      { aliases = i.Fragment.provides; wschema; wrows })

let weighted_join preds_here preds_later (a : weighted) (b : weighted) =
  let out_schema_full = Schema.concat a.wschema b.wschema in
  let is_left (c : Expr.colref) = Schema.mem a.wschema ~rel:c.Expr.rel ~name:c.Expr.name in
  let equi, residual =
    List.partition_map
      (fun p ->
        match Expr.join_sides p with
        | Some (x, y) when is_left x -> Either.Left (x, y)
        | Some (x, y) when is_left y -> Either.Left (y, x)
        | _ -> Either.Right p)
      preds_here
  in
  let apos =
    List.map
      (fun ((c : Expr.colref), _) ->
        Schema.find_exn a.wschema ~rel:c.Expr.rel ~name:c.Expr.name)
      equi
  in
  let bpos =
    List.map
      (fun (_, (c : Expr.colref)) ->
        Schema.find_exn b.wschema ~rel:c.Expr.rel ~name:c.Expr.name)
      equi
  in
  let index : (Value.t list, (Value.t array * int) list) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun ((row, _) as entry) ->
      let k = List.map (fun p -> row.(p)) apos in
      if not (List.exists Value.is_null k) then
        Hashtbl.replace index k (entry :: Option.value (Hashtbl.find_opt index k) ~default:[]))
    a.wrows;
  let joined =
    Array.to_seq b.wrows
    |> Seq.concat_map (fun (brow, bw) ->
           let k = List.map (fun p -> brow.(p)) bpos in
           if List.exists Value.is_null k then Seq.empty
           else
             match Hashtbl.find_opt index k with
             | None -> Seq.empty
             | Some entries ->
                 List.to_seq entries
                 |> Seq.filter_map (fun (arow, aw) ->
                        let row = Array.append arow brow in
                        if List.for_all (Expr.eval out_schema_full row) residual then
                          Some (row, mul_sat aw bw)
                        else None))
  in
  let wschema, wrows = group_by_needed preds_later out_schema_full joined in
  { aliases = a.aliases @ b.aliases; wschema; wrows }

type cache = (string, weighted) Hashtbl.t

let make_cache () : cache = Hashtbl.create 4096

(* logical identity of an intermediate weighted relation: the restricted
   fragment it joins plus the grouping signature it was collapsed to *)
let weighted_key (frag : Fragment.t) (inputs : Fragment.input list) aliases later =
  let members =
    List.filter
      (fun i -> List.exists (fun a -> List.mem a aliases) i.Fragment.provides)
      inputs
  in
  let sub = Fragment.restrict frag members in
  Fragment.key sub
  ^ " @@ "
  ^ (List.sort compare (List.concat_map Expr.cols_of_pred later |> List.map (fun (c : Expr.colref) -> c.Expr.rel ^ "." ^ c.Expr.name))
     |> String.concat ",")

let count_component ?deadline ?cache (frag : Fragment.t) (inputs : Fragment.input list) =
  let sub = Fragment.restrict frag inputs in
  let all_preds = sub.Fragment.preds in
  let tabs = ref (List.map (fun i -> weighted_of_input ?deadline all_preds i) inputs) in
  let preds = ref all_preds in
  let applicable aliases =
    List.partition
      (fun p -> List.for_all (fun r -> List.mem r aliases) (Expr.rels_of_pred p))
      !preds
  in
  while List.length !tabs > 1 do
    (match deadline with
    | Some d when Qs_util.Timer.now () > d -> raise Executor.Timeout
    | _ -> ());
    let best = ref None in
    List.iteri
      (fun ai a ->
        List.iteri
          (fun bi b ->
            if ai < bi then begin
              let connected =
                List.exists
                  (fun p ->
                    let rels = Expr.rels_of_pred p in
                    List.exists (fun r -> List.mem r a.aliases) rels
                    && List.exists (fun r -> List.mem r b.aliases) rels)
                  !preds
              in
              if connected then begin
                let sz = mul_sat (Array.length a.wrows) (Array.length b.wrows) in
                match !best with
                | Some (_, _, s) when s <= sz -> ()
                | _ -> best := Some (ai, bi, sz)
              end
            end)
          !tabs)
      !tabs;
    match !best with
    | None -> invalid_arg "Naive.count_component: disconnected component"
    | Some (ai, bi, _) ->
        let a = List.nth !tabs ai and b = List.nth !tabs bi in
        let merged = a.aliases @ b.aliases in
        let here, later = applicable merged in
        let joined =
          match cache with
          | None -> weighted_join here later a b
          | Some c -> (
              let key = weighted_key frag inputs merged later in
              match Hashtbl.find_opt c key with
              | Some w -> w
              | None ->
                  let w = weighted_join here later a b in
                  Hashtbl.replace c key w;
                  w)
        in
        preds := later;
        tabs := joined :: List.filteri (fun i _ -> i <> ai && i <> bi) !tabs
  done;
  Array.fold_left (fun acc (_, w) -> add_sat acc w) 0 (List.hd !tabs).wrows

let count ?deadline ?cache (frag : Fragment.t) =
  Fragment.connected_components frag
  |> List.fold_left
       (fun acc comp -> mul_sat acc (count_component ?deadline ?cache frag comp))
       1
