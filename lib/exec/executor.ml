module Physical = Qs_plan.Physical
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Chunk = Qs_storage.Chunk
module Columnar = Qs_storage.Columnar
module Index = Qs_storage.Index
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr
module Trace = Qs_obs.Trace
module Scratch = Qs_util.Scratch
module Cancel = Qs_util.Cancel
module Timer = Qs_util.Timer
module Pool = Qs_util.Pool
module Span = Qs_util.Span

exception Timeout

let default_row_limit = 2_000_000

type stats = (int, int) Hashtbl.t

(* Execution model: [Materialize] is the original executor — every
   operator builds its whole output table before the parent starts.
   [Pipeline] is the morsel-driven engine below — filters and probes
   fuse into chunk-sized morsel streams and only pipeline breakers
   (hash builds, partition barriers, NL inners) buffer rows. Results
   are multiset-identical; the global default is overridable per call. *)
type mode = Materialize | Pipeline

let default_mode = ref Pipeline
let set_default_mode m = default_mode := m
let execution_mode () = !default_mode

(* Observability counters (cumulative, reset around experiments): how
   many intermediate tables the engine materialized, how often a
   partitioned join consumed a side through its preserved partition
   layout instead of re-hashing every row, and how many chunks were
   filtered through the vectorized columnar kernels rather than
   row-at-a-time predicate evaluation. *)
let intermediates = Atomic.make 0
let partition_reuse_count = Atomic.make 0
let vectorized_chunk_count = Atomic.make 0

let reset_counters () =
  Atomic.set intermediates 0;
  Atomic.set partition_reuse_count 0;
  Atomic.set vectorized_chunk_count 0

let intermediate_tables () = Atomic.get intermediates
let partition_reuses () = Atomic.get partition_reuse_count
let vectorized_chunks () = Atomic.get vectorized_chunk_count

(* Both global counters also feed the ambient per-query flight record
   (serving telemetry), when one is installed on this domain. *)
let built_intermediate () =
  Atomic.incr intermediates;
  Qs_obs.Flight.on_intermediate_table ()

let note_partition_reuse () =
  Atomic.incr partition_reuse_count;
  Qs_obs.Flight.on_partition_reuse ()

let check_deadline = function
  | Some d when Timer.now () > d -> raise Timeout
  | _ -> ()

(* Deadline and cancellation share the same polling points: [tick]
   raises [Cancel.Cancelled] or [Timeout] at batch boundaries, so a
   served query unwinds within one batch of either signal. *)
let tick deadline cancel () =
  Cancel.check cancel;
  check_deadline deadline

(* Deadline checks are amortized over batches of rows. *)
let batch = 16384

let table_slot : Table.t Scratch.slot = Scratch.slot ()

let filters_key filters =
  String.concat " & " (List.sort compare (List.map Expr.to_string filters))

(* --- vectorized predicate evaluation ----------------------------------- *)

(* Selection vectors: a filter over a chunk produces the strictly
   increasing array of surviving row ordinals instead of a materialized
   row copy. [None] stands for the dense vector (every row live) — the
   contract downstream kernels rely on: a [None] selvec means ordinals
   [0 .. n_rows-1] exactly, never "unknown". *)

let filter_ordinals n sel keep =
  match sel with
  | None ->
      let out = Array.make n 0 in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if keep i then begin
          out.(!k) <- i;
          incr k
        end
      done;
      Array.sub out 0 !k
  | Some sel ->
      let out = Array.make (Array.length sel) 0 in
      let k = ref 0 in
      Array.iter
        (fun i ->
          if keep i then begin
            out.(!k) <- i;
            incr k
          end)
        sel;
      Array.sub out 0 !k

(* Compilation of a predicate to columnar kernel invocations: a
   [col <op> const] comparison (either orientation), its Between
   expansion, or IS [NOT] NULL on a plain column. Everything else —
   arithmetic scalars, LIKE, IN, OR — stays on the row fallback. *)
type vec_pred =
  | VCmp of int * Columnar.op * Value.t
  | VNull of int * bool

let vec_op = function
  | Expr.Lt -> Columnar.Lt
  | Expr.Le -> Columnar.Le
  | Expr.Gt -> Columnar.Gt
  | Expr.Ge -> Columnar.Ge
  | Expr.Eq -> Columnar.Eq
  | Expr.Ne -> Columnar.Ne

(* [const <op> col] reads as [col <flipped op> const] *)
let flip_op = function
  | Columnar.Lt -> Columnar.Gt
  | Columnar.Le -> Columnar.Ge
  | Columnar.Gt -> Columnar.Lt
  | Columnar.Ge -> Columnar.Le
  | (Columnar.Eq | Columnar.Ne) as o -> o

let compile_vec schema (p : Expr.pred) =
  let pos (c : Expr.colref) =
    Schema.find_exn schema ~rel:c.Expr.rel ~name:c.Expr.name
  in
  match p with
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) -> Some [ VCmp (pos c, vec_op op, v) ]
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
      Some [ VCmp (pos c, flip_op (vec_op op), v) ]
  | Expr.Between (Expr.Col c, lo, hi) ->
      let j = pos c in
      Some [ VCmp (j, Columnar.Ge, lo); VCmp (j, Columnar.Le, hi) ]
  | Expr.Is_null (Expr.Col c) -> Some [ VNull (pos c, true) ]
  | Expr.Not_null (Expr.Col c) -> Some [ VNull (pos c, false) ]
  | _ -> None

(* Selection vector of one chunk under a non-empty conjunction.
   Columnar chunks run every compilable predicate through the batch
   kernels (each narrowing the vector); predicates with no kernel — or
   whose kernel declines the column's representation — fall back to
   row-at-a-time [Expr.eval] over the survivors. A partially applied
   kernel chain (e.g. the Ge half of a Between on a generic column) is
   sound: kernels only remove rows the full predicate also rejects.
   Row chunks evaluate row-at-a-time directly. Either way the result is
   ordinals, not copied rows. *)
let chunk_selvec ?deadline ?cancel schema filters (chunk : Chunk.t) =
  let tick = tick deadline cancel in
  let n = Chunk.n_rows chunk in
  let row_fallback rows_of sel preds =
    let keep i =
      if i mod batch = 0 then tick ();
      let row = (Lazy.force rows_of).(i) in
      List.for_all (Expr.eval schema row) preds
    in
    filter_ordinals n sel keep
  in
  match Chunk.columnar chunk with
  | Some col ->
      let sel = ref None in
      let residual = ref [] in
      let vectorized = ref false in
      List.iter
        (fun p ->
          let applied =
            match compile_vec schema p with
            | None -> false
            | Some vps ->
                List.for_all
                  (fun vp ->
                    let r =
                      match vp with
                      | VCmp (j, op, v) ->
                          Columnar.eval_cmp col ~col:j op v ~sel:!sel
                      | VNull (j, w) ->
                          Columnar.eval_null col ~col:j ~want_null:w ~sel:!sel
                    in
                    match r with
                    | Some s ->
                        sel := Some s;
                        true
                    | None -> false)
                  vps
          in
          if applied then vectorized := true else residual := p :: !residual)
        filters;
      if !vectorized then Atomic.incr vectorized_chunk_count;
      let sel =
        match List.rev !residual with
        | [] -> Option.value !sel ~default:(Array.init n Fun.id)
        | preds ->
            let rows_of = lazy (Chunk.rows chunk) in
            row_fallback rows_of !sel preds
      in
      tick ();
      sel
  | None ->
      let rows = Chunk.rows chunk in
      row_fallback (lazy rows) None filters

(* Materializing per-chunk filter: gather the survivors into a dense
   chunk of the input's own layout (columnar in, columnar out). *)
let filter_chunk_data ?deadline ?cancel schema filters (chunk : Chunk.t) =
  let sel = chunk_selvec ?deadline ?cancel schema filters chunk in
  if Array.length sel = Chunk.n_rows chunk then chunk
  else
    match Chunk.columnar chunk with
    | Some col -> Chunk.of_columnar (Columnar.take col sel)
    | None ->
        let rows = Chunk.rows chunk in
        Chunk.of_rows (Array.map (fun i -> rows.(i)) sel)

(* Chunked scan+filter. With [pool], chunks are filtered in parallel;
   Pool.map returns per-chunk outputs in chunk order, so the surviving
   rows come back in exactly the sequential scan's row order. The
   output preserves each input chunk's layout. *)
let filter_table ?deadline ?cancel ?pool (tbl : Table.t) filters =
  match filters with
  | [] -> tbl
  | filters ->
      let schema = tbl.Table.schema in
      let nc = Table.n_chunks tbl in
      let job chunk = filter_chunk_data ?deadline ?cancel schema filters chunk in
      let chunks =
        match pool with
        | Some pool when Pool.size pool > 1 && nc > 1 ->
            Pool.map pool
              (fun ci -> job (Table.chunk_data tbl ci))
              (List.init nc Fun.id)
        | _ ->
            (* sequential scan through the chunk walker, so spilled
               inputs prefetch upcoming chunks while this one filters *)
            let out = ref [] in
            Table.iter_chunk_data (fun _ chunk -> out := job chunk :: !out) tbl;
            List.rev !out
      in
      built_intermediate ();
      Table.of_chunk_data ~name:tbl.Table.name ~schema chunks

let filter_input ?deadline ?cancel ?pool (input : Fragment.input) =
  let tbl = input.Fragment.table in
  match input.Fragment.filters with
  | [] -> tbl
  | filters ->
      (* tables are immutable, so the filtered result is cached on the
         input record — re-optimization re-scans the same inputs many
         times. The cache key carries the predicate list: an input
         re-planned with different pushed-down filters must not reuse
         rows filtered under the old ones. A cancelled scan unwinds out
         of [find_or_add] before publishing, leaving the slot empty —
         the next query refilters from scratch. *)
      Scratch.find_or_add input.Fragment.scratch table_slot
        ("filtered:" ^ filters_key filters)
        (fun () -> filter_table ?deadline ?cancel ?pool tbl filters)

(* Join-key extraction: positions of the equi-join columns on each side,
   plus the residual predicates evaluated on the concatenated row. *)
let split_join_preds (lschema : Schema.t) preds =
  let is_left (c : Expr.colref) = Schema.mem lschema ~rel:c.Expr.rel ~name:c.Expr.name in
  List.partition_map
    (fun p ->
      match Expr.join_sides p with
      | Some (a, b) when is_left a -> Either.Left (a, b)
      | Some (a, b) when is_left b -> Either.Left (b, a)
      | _ -> Either.Right p)
    preds

let key_positions schema cols =
  List.map (fun (c : Expr.colref) -> Schema.find_exn schema ~rel:c.Expr.rel ~name:c.Expr.name) cols

let key_of_row row positions = List.map (fun p -> row.(p)) positions

let has_null = List.exists Value.is_null

(* Partitioned parallel hash join: both sides are split by key hash into
   one bucket per pool slot; every bucket is then an independent
   build+probe pair. Rows of one key land in one partition, so the union
   of the partition outputs is exactly the sequential join's multiset
   (null keys never join and are dropped during partitioning, as in the
   sequential path). Table order is restored within each partition so
   per-key match order — and thus the output multiset — is deterministic
   regardless of which domain runs which bucket. *)
let partitioned_hash_join ?deadline ?cancel ~limit ~pool ~(build : Table.t)
    ~(probe : Table.t) preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let k = Pool.size pool in
  let partition tbl pos =
    let parts = Array.make k [] in
    Table.iteri
      (fun i row ->
        if i mod batch = 0 then tick ();
        let key = key_of_row row pos in
        if not (has_null key) then begin
          let p = Hashtbl.hash key mod k in
          parts.(p) <- row :: parts.(p)
        end)
      tbl;
    Array.map List.rev parts
  in
  let bparts = partition build bpos in
  let pparts = partition probe ppos in
  let emitted = Atomic.make 0 in
  let run_part pi =
    let index : (Value.t list, Value.t array list) Hashtbl.t =
      Hashtbl.create (max 16 (List.length bparts.(pi)))
    in
    List.iteri
      (fun i row ->
        if i mod batch = 0 then tick ();
        let key = key_of_row row bpos in
        Hashtbl.replace index key
          (row :: Option.value (Hashtbl.find_opt index key) ~default:[]))
      bparts.(pi);
    let out = ref [] in
    List.iteri
      (fun i prow ->
        if i mod batch = 0 then tick ();
        let key = key_of_row prow ppos in
        match Hashtbl.find_opt index key with
        | None -> ()
        | Some matches ->
            List.iter
              (fun brow ->
                let n = 1 + Atomic.fetch_and_add emitted 1 in
                if n mod batch = 0 then tick ();
                let row = Array.append prow brow in
                if List.for_all (Expr.eval out_schema row) residual then begin
                  out := row :: !out;
                  if n > limit then raise Timeout
                end)
              matches)
      pparts.(pi);
    List.rev !out
  in
  let parts = Pool.map pool run_part (List.init k Fun.id) in
  built_intermediate ();
  Table.create ~name:"join" ~schema:out_schema
    (Array.concat (List.map Array.of_list parts))

let hash_join ?deadline ?cancel ?(limit = max_int) ?pool ~(build : Table.t)
    ~(probe : Table.t) preds =
  match pool with
  | Some pool when Pool.size pool > 1 ->
      partitioned_hash_join ?deadline ?cancel ~limit ~pool ~build ~probe preds
  | _ ->
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  (* orient keys wrt the build side *)
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let index : (Value.t list, Value.t array list) Hashtbl.t =
    Hashtbl.create (max 16 (Table.n_rows build))
  in
  Table.iteri
    (fun i row ->
      if i mod batch = 0 then tick ();
      let k = key_of_row row bpos in
      if not (has_null k) then
        Hashtbl.replace index k (row :: Option.value (Hashtbl.find_opt index k) ~default:[]))
    build;
  let out = ref [] in
  let emitted = ref 0 in
  Table.iteri
    (fun i prow ->
      if i mod batch = 0 then tick ();
      let k = key_of_row prow ppos in
      if not (has_null k) then
        match Hashtbl.find_opt index k with
        | None -> ()
        | Some matches ->
            List.iter
              (fun brow ->
                incr emitted;
                if !emitted mod batch = 0 then tick ();
                let row = Array.append prow brow in
                if List.for_all (Expr.eval out_schema row) residual then begin
                  out := row :: !out;
                  if !emitted > limit then raise Timeout
                end)
              matches)
    probe;
  built_intermediate ();
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

let hash_join_count ?deadline ?cancel ~(build : Table.t) ~(probe : Table.t)
    preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let index : (Value.t list, Value.t array list) Hashtbl.t =
    Hashtbl.create (max 16 (Table.n_rows build))
  in
  Table.iteri
    (fun i row ->
      if i mod batch = 0 then tick ();
      let k = key_of_row row bpos in
      if not (has_null k) then
        Hashtbl.replace index k (row :: Option.value (Hashtbl.find_opt index k) ~default:[]))
    build;
  (* pre-count build groups so the residual-free case never walks pairs *)
  let counts : (Value.t list, int) Hashtbl.t = Hashtbl.create (Hashtbl.length index) in
  Hashtbl.iter (fun k rows -> Hashtbl.replace counts k (List.length rows)) index;
  let total = ref 0 in
  let steps = ref 0 in
  Table.iteri
    (fun i prow ->
      if i mod batch = 0 then tick ();
      let k = key_of_row prow ppos in
      if not (has_null k) then
        if residual = [] then
          total := !total + Option.value (Hashtbl.find_opt counts k) ~default:0
        else
          match Hashtbl.find_opt index k with
          | None -> ()
          | Some matches ->
              List.iter
                (fun brow ->
                  incr steps;
                  if !steps mod batch = 0 then tick ();
                  let row = Array.append prow brow in
                  if List.for_all (Expr.eval out_schema row) residual then incr total)
                matches)
    probe;
  !total

let index_nl_join ?deadline ?cancel ?(limit = max_int) ?matched_rows
    ~(outer : Table.t) ~(inner_input : Fragment.input) ~(index : Index.t)
    ~(outer_key : Expr.colref) preds =
  let tick = tick deadline cancel in
  let inner_tbl = inner_input.Fragment.table in
  let out_schema = Schema.concat outer.Table.schema inner_tbl.Table.schema in
  let okpos =
    Schema.find_exn outer.Table.schema ~rel:outer_key.Expr.rel ~name:outer_key.Expr.name
  in
  (* Residual predicates: everything except the indexed equality is checked
     after the lookup, as are the inner input's filters. *)
  let inner_schema = inner_tbl.Table.schema in
  let out = ref [] in
  let probes = ref 0 in
  let matched = ref 0 in
  Table.iter
    (fun orow ->
      incr probes;
      if !probes mod 1024 = 0 then tick ();
      let key = orow.(okpos) in
      if not (Value.is_null key) then
        List.iter
          (fun rid ->
            let irow = Table.row inner_tbl rid in
            if List.for_all (Expr.eval inner_schema irow) inner_input.Fragment.filters
            then begin
              incr matched;
              let row = Array.append orow irow in
              if List.for_all (Expr.eval out_schema row) preds then begin
                out := row :: !out;
                if !matched > limit then raise Timeout
              end
            end)
          (Index.lookup index key))
    outer;
  Option.iter (fun r -> r := !matched) matched_rows;
  built_intermediate ();
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

let nl_join ?deadline ?cancel ?(limit = max_int) ~(outer : Table.t)
    ~(inner : Table.t) preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat outer.Table.schema inner.Table.schema in
  let out = ref [] in
  let steps = ref 0 in
  let kept = ref 0 in
  Table.iter
    (fun orow ->
      Table.iter
        (fun irow ->
          incr steps;
          if !steps mod batch = 0 then tick ();
          let row = Array.append orow irow in
          if List.for_all (Expr.eval out_schema row) preds then begin
            out := row :: !out;
            incr kept;
            if !kept > limit then raise Timeout
          end)
        inner)
    outer;
  built_intermediate ();
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

(* Span bridging: the label of the operator span emitted per executed
   plan node. Exactly one arm per [Physical] operator constructor —
   tools/check.sh lints that none is missing (stats-completeness,
   extended to spans). *)
let span_label (p : Physical.t) =
  match p.Physical.node with
  | Physical.Scan i -> "scan:" ^ i.Fragment.id
  | Physical.Join { method_ = Physical.Hash; _ } -> "hash-join"
  | Physical.Join { method_ = Physical.Index_nl; _ } -> "index-nl-join"
  | Physical.Join { method_ = Physical.Nl; _ } -> "nl-join"

(* The original fully-materializing engine: every operator output is a
   whole table. Kept as the reference implementation (the pipelined
   engine below must produce the same multiset — test_differential) and
   as the only engine able to fill a per-operator [trace], which needs
   materialized outputs for byte accounting. *)
let run_materializing ?deadline ?cancel ~row_limit ?pool ?trace ?spans plan =
  let stats : stats = Hashtbl.create 16 in
  (* Tracing is the only consumer of wall-clock / byte figures; keep the
     untraced path free of clock reads and byte-size walks. *)
  let timed = trace <> None || spans <> None in
  let now () = if timed then Timer.now () else 0.0 in
  let children (p : Physical.t) =
    match p.Physical.node with
    | Physical.Scan _ -> []
    | Physical.Join j -> [ j.Physical.left.Physical.id; j.Physical.right.Physical.id ]
  in
  let operator_span (p : Physical.t) ~t0 ~dur ~rows =
    Span.add spans Span.Operator (span_label p) ~start:t0 ~dur
      ~args:
        [
          ("node", string_of_int p.Physical.id);
          ("est_rows", Printf.sprintf "%.0f" p.Physical.est_rows);
          ("actual_rows", string_of_int rows);
        ]
  in
  let record ?(scanned = 0) ?(built = 0) ?(probed = 0) (p : Physical.t) ~t0 result =
    let rows = Table.n_rows result in
    Hashtbl.replace stats p.Physical.id rows;
    let elapsed = if timed then Timer.elapsed ~since:t0 else 0.0 in
    (match trace with
    | None -> ()
    | Some tr ->
        let n = Trace.node tr p.Physical.id in
        n.Trace.est_rows <- p.Physical.est_rows;
        n.Trace.actual_rows <- rows;
        n.Trace.elapsed <- elapsed;
        n.Trace.output_bytes <- Table.byte_size result;
        n.Trace.rows_scanned <- scanned;
        n.Trace.rows_built <- built;
        n.Trace.rows_probed <- probed;
        n.Trace.children <- children p);
    if spans <> None then operator_span p ~t0 ~dur:elapsed ~rows
  in
  let rec go (p : Physical.t) =
    let t0 = now () in
    match p.Physical.node with
    | Physical.Scan input ->
        let result = filter_input ?deadline ?cancel ?pool input in
        record p ~t0 ~scanned:(Table.n_rows input.Fragment.table) result;
        result
    | Physical.Join j -> (
        match j.Physical.method_ with
        | Physical.Hash ->
            let build = go j.Physical.left in
            let probe = go j.Physical.right in
            let result =
              hash_join ?deadline ?cancel ~limit:row_limit ?pool ~build ~probe
                j.Physical.preds
            in
            record p ~t0 ~built:(Table.n_rows build) ~probed:(Table.n_rows probe)
              result;
            result
        | Physical.Index_nl ->
            let outer = go j.Physical.left in
            let inner_input =
              match j.Physical.right.Physical.node with
              | Physical.Scan i -> i
              | _ -> invalid_arg "Executor.run: index NL inner must be a scan"
            in
            let index, outer_key, inner_key =
              match j.Physical.index with
              | Some x -> x
              | None -> invalid_arg "Executor.run: index NL without index"
            in
            (* The indexed equality is enforced by the lookup itself;
               everything else is checked per matched row. *)
            let indexed = Expr.eq (Expr.Col outer_key) (Expr.Col inner_key) in
            let residual =
              List.filter (fun pr -> not (Expr.equal_pred pr indexed)) j.Physical.preds
            in
            let matched = ref 0 in
            let result =
              index_nl_join ?deadline ?cancel ~limit:row_limit
                ~matched_rows:matched ~outer ~inner_input ~index ~outer_key
                residual
            in
            (* The inner scan is consumed through the index, never via [go];
               record it explicitly so every node id of the plan is present
               in the stats — its "output" is the rows surviving the index
               lookups plus the input's own filters. *)
            let inner = j.Physical.right in
            Hashtbl.replace stats inner.Physical.id !matched;
            (match trace with
            | None -> ()
            | Some tr ->
                let n = Trace.node tr inner.Physical.id in
                n.Trace.est_rows <- inner.Physical.est_rows;
                n.Trace.actual_rows <- !matched;
                n.Trace.rows_scanned <-
                  Table.n_rows inner_input.Fragment.table);
            if spans <> None then
              (* zero duration: the inner side's work happens inside the
                 index lookups and is part of the join span *)
              operator_span inner ~t0:(now ()) ~dur:0.0 ~rows:!matched;
            record p ~t0 ~probed:(Table.n_rows outer) result;
            result
        | Physical.Nl ->
            let outer = go j.Physical.left in
            let inner = go j.Physical.right in
            let result =
              nl_join ?deadline ?cancel ~limit:row_limit ~outer ~inner
                j.Physical.preds
            in
            record p ~t0 ~probed:(Table.n_rows outer) result;
            result)
  in
  let out = go plan in
  (out, stats)

(* ---------------------------------------------------------------------- *)
(* Morsel-driven pipelined engine                                          *)
(* ---------------------------------------------------------------------- *)

(* A morsel: one chunk (in whichever layout its table stores) plus a
   selection vector of the ordinals that survived the fused filters.
   [m_sel = None] is the dense vector — ordinals [0 .. n_rows-1]
   exactly; a full selvec is normalized to [None] at the morsel
   boundary, so kernels may assume a [Some] vector is a strict subset.
   Empty morsels are never emitted. Passing (chunk, selvec) pairs
   instead of copied row arrays is what lets scan→filter→probe run
   without materializing anything between fused operators. *)
type morsel = { m_chunk : Chunk.t; m_sel : int array option }

let morsel_of ~chunk ~sel =
  match sel with
  | Some s when Array.length s = Chunk.n_rows chunk ->
      { m_chunk = chunk; m_sel = None }
  | _ -> { m_chunk = chunk; m_sel = sel }

let morsel_count m =
  match m.m_sel with
  | Some s -> Array.length s
  | None -> Chunk.n_rows m.m_chunk

(* visit the surviving ordinals in order *)
let morsel_ordinals m f =
  match m.m_sel with
  | None ->
      for i = 0 to Chunk.n_rows m.m_chunk - 1 do
        f i
      done
  | Some s -> Array.iter f s

(* Ordinal-indexed row fetch. Columnar chunks decode lazily and only
   once per morsel — consumers that never touch a row (e.g. a probe
   with no matches) never pay the decode. *)
let morsel_fetch m =
  match Chunk.columnar m.m_chunk with
  | None ->
      let rows = Chunk.rows m.m_chunk in
      fun i -> rows.(i)
  | Some col ->
      let rows = lazy (Columnar.to_rows col) in
      fun i -> (Lazy.force rows).(i)

(* Ordinal-indexed single-column accessor — the batch path for join
   keys: a columnar chunk decodes the whole key column at once (one
   sweep over the unboxed array) when the selvec is dense enough to
   amortize it, and falls back to point gets on highly selective
   morsels. *)
let morsel_col m p =
  match Chunk.columnar m.m_chunk with
  | None ->
      let rows = Chunk.rows m.m_chunk in
      fun i -> rows.(i).(p)
  | Some col ->
      let dense_enough =
        match m.m_sel with
        | None -> true
        | Some s -> 4 * Array.length s >= Columnar.n_rows col
      in
      if dense_enough then begin
        let vs = Columnar.column_values col p in
        fun i -> vs.(i)
      end
      else fun i -> Columnar.get col ~row:i ~col:p

(* dense array of the surviving rows (shared with the chunk when the
   morsel is dense and row-major) *)
let morsel_rows m =
  match m.m_sel with
  | None -> Chunk.rows m.m_chunk
  | Some s ->
      let rows = Chunk.rows m.m_chunk in
      Array.map (fun i -> rows.(i)) s

(* A stream of chunk-sized morsels. [ps_iter] drives the whole operator
   subtree synchronously: each morsel handed to the consumer is
   non-empty and, when [ps_parts] is set, tagged with the partition its
   rows hash into (tag [-1] = untagged). A morsel sourced from a
   spilled table is exactly one pinned buffer-pool frame, released
   before the next is pinned, so a pipeline touches O(1) frames no
   matter how large its inputs are. *)
type pstream = {
  ps_schema : Schema.t;
  ps_parts : ((string * string) list list * int) option;
      (* value-equivalent partition keys (ordered (rel, name) pairs)
         and modulus when every emitted morsel is tagged *)
  ps_iter : (int -> morsel -> unit) -> unit;
}

let colref_pair (c : Expr.colref) = (c.Expr.rel, c.Expr.name)

(* split one partition's row buffer into default-sized chunks so
   downstream morsels stay bounded *)
let chunk_up rows =
  let cr = Table.default_chunk_rows () in
  let n = Array.length rows in
  if n = 0 then []
  else if n <= cr then [ rows ]
  else
    List.init
      ((n + cr - 1) / cr)
      (fun ci -> Array.sub rows (ci * cr) (min cr (n - ci * cr)))

let run_pipelined ?deadline ?cancel ~row_limit ?pool ?spans plan =
  let stats : stats = Hashtbl.create 16 in
  (* every node id present even when nothing streams through it *)
  List.iter
    (fun (n : Physical.t) -> Hashtbl.replace stats n.Physical.id 0)
    (Physical.nodes plan);
  let tick = tick deadline cancel in
  let limit = row_limit in
  let bump (p : Physical.t) n =
    Hashtbl.replace stats p.Physical.id
      (n + Option.value (Hashtbl.find_opt stats p.Physical.id) ~default:0)
  in
  let bid (p : Physical.t) = string_of_int p.Physical.id in
  let emit_chunks p emit tag out =
    match out with
    | [] -> ()
    | l ->
        let rows = Array.of_list (List.rev l) in
        bump p (Array.length rows);
        (* operator outputs are freshly assembled rows: a dense
           row-major morsel *)
        emit tag { m_chunk = Chunk.of_rows rows; m_sel = None }
  in
  let rec stream (p : Physical.t) : pstream =
    match p.Physical.node with
    | Physical.Scan input ->
        (* fused scan+filter: the selection runs inside the pinned chunk
           walk and produces a selection vector over the chunk — no row
           copy, no intermediate table; columnar chunks go through the
           vectorized kernels. The deadline / cancel poll sits at the
           morsel boundary, so a cancellation unwinds before the next
           frame is pinned. *)
        let tbl = input.Fragment.table in
        let schema = tbl.Table.schema in
        let filters = input.Fragment.filters in
        let pt = Table.partitioning tbl in
        {
          ps_schema = schema;
          ps_parts =
            Option.map
              (fun (q : Table.partitioning) -> (q.Table.part_keys, q.Table.parts))
              pt;
          ps_iter =
            (fun emit ->
              Table.iter_chunk_data
                (fun ci chunk ->
                  tick ();
                  let sel =
                    if filters = [] then None
                    else
                      Some (chunk_selvec ?deadline ?cancel schema filters chunk)
                  in
                  match sel with
                  | Some [||] -> ()
                  | _ ->
                      let m = morsel_of ~chunk ~sel in
                      bump p (morsel_count m);
                      let tag =
                        match pt with Some q -> q.Table.tags.(ci) | None -> -1
                      in
                      emit tag m)
                tbl);
        }
    | Physical.Join j -> (
        match j.Physical.method_ with
        | Physical.Hash -> (
            let bstream = stream j.Physical.left in
            let prstream = stream j.Physical.right in
            let out_schema = Schema.concat prstream.ps_schema bstream.ps_schema in
            let build_cols, residual =
              split_join_preds bstream.ps_schema j.Physical.preds
            in
            let bpos = key_positions bstream.ps_schema (List.map fst build_cols) in
            let ppos = key_positions prstream.ps_schema (List.map snd build_cols) in
            match pool with
            | Some pl when Pool.size pl > 1 ->
                (* Partitioned parallel join. Both sides are barriers
                   here (the probe work is distributed by partition),
                   but the output streams per-partition chunk batches,
                   tagged so a downstream join — possibly in a later
                   QuerySplit step, via a preserved temp layout — can
                   group them by tag instead of re-hashing. *)
                let k = Pool.size pl in
                let bkey = List.map (fun (c, _) -> colref_pair c) build_cols in
                let pkey = List.map (fun (_, c) -> colref_pair c) build_cols in
                (* a producer's layout is reusable when it was hashed by
                   this join's key (any of the producer's equivalent
                   keys) with the same modulus; decided up front so the
                   output can advertise the inherited keys too *)
                let reusable (s : pstream) key =
                  match s.ps_parts with
                  | Some (keys, kk) when kk = k && List.mem key keys ->
                      Some keys
                  | _ -> None
                in
                let breuse = reusable bstream bkey
                and preuse = reusable prstream pkey in
                let collect (s : pstream) pos reuse =
                  let parts = Array.make k [] in
                  (match reuse with
                  | Some _ ->
                      (* the producer already partitioned by this exact
                         key and modulus: group chunks by tag. Tagged
                         rows joined on this key upstream, so none has
                         a null key — dropping nulls is a no-op. *)
                      note_partition_reuse ();
                      s.ps_iter (fun tag m ->
                          parts.(tag) <-
                            Array.fold_left
                              (fun acc r -> r :: acc)
                              parts.(tag) (morsel_rows m))
                  | None ->
                      s.ps_iter (fun _ m ->
                          (* batch key extraction: the key columns are
                             decoded column-at-a-time off a columnar
                             morsel, then hashed per surviving ordinal *)
                          let kcols = List.map (morsel_col m) pos in
                          let fetch = morsel_fetch m in
                          morsel_ordinals m (fun i ->
                              let key = List.map (fun g -> g i) kcols in
                              if not (has_null key) then begin
                                let pi = Hashtbl.hash key mod k in
                                parts.(pi) <- fetch i :: parts.(pi)
                              end)));
                  Array.map List.rev parts
                in
                (* output rows hold equal values on the probe and build
                   key columns, so both keys describe the layout; a
                   reused producer's other equivalent keys still hash to
                   the same tags and survive into the concatenated rows *)
                let out_keys =
                  List.sort_uniq compare
                    ([ pkey; bkey ]
                    @ Option.value preuse ~default:[]
                    @ Option.value breuse ~default:[])
                in
                {
                  ps_schema = out_schema;
                  ps_parts = Some (out_keys, k);
                  ps_iter =
                    (fun emit ->
                      let bparts =
                        Span.span spans Span.Breaker ("partition-build:" ^ bid p)
                          (fun () -> collect bstream bpos breuse)
                      in
                      let pparts =
                        Span.span spans Span.Breaker ("partition-probe:" ^ bid p)
                          (fun () -> collect prstream ppos preuse)
                      in
                      let emitted = Atomic.make 0 in
                      let run_part pi =
                        let index : (Value.t list, Value.t array list) Hashtbl.t =
                          Hashtbl.create (max 16 (List.length bparts.(pi)))
                        in
                        List.iteri
                          (fun i row ->
                            if i mod batch = 0 then tick ();
                            let key = key_of_row row bpos in
                            Hashtbl.replace index key
                              (row
                              :: Option.value (Hashtbl.find_opt index key)
                                   ~default:[]))
                          bparts.(pi);
                        let out = ref [] in
                        List.iteri
                          (fun i prow ->
                            if i mod batch = 0 then tick ();
                            let key = key_of_row prow ppos in
                            match Hashtbl.find_opt index key with
                            | None -> ()
                            | Some matches ->
                                List.iter
                                  (fun brow ->
                                    let n = 1 + Atomic.fetch_and_add emitted 1 in
                                    if n mod batch = 0 then tick ();
                                    let row = Array.append prow brow in
                                    if List.for_all (Expr.eval out_schema row) residual
                                    then begin
                                      out := row :: !out;
                                      if n > limit then raise Timeout
                                    end)
                                  matches)
                          pparts.(pi);
                        List.rev !out
                      in
                      let parts_out = Pool.map pl run_part (List.init k Fun.id) in
                      List.iteri
                        (fun pi rows ->
                          List.iter
                            (fun chunk ->
                              tick ();
                              bump p (Array.length chunk);
                              emit pi { m_chunk = Chunk.of_rows chunk; m_sel = None })
                            (chunk_up (Array.of_list rows)))
                        parts_out);
                }
            | _ ->
                (* sequential: the build side is the pipeline breaker,
                   the probe side streams morsel by morsel *)
                {
                  ps_schema = out_schema;
                  ps_parts = None;
                  ps_iter =
                    (fun emit ->
                      let index : (Value.t list, Value.t array list) Hashtbl.t =
                        Hashtbl.create 1024
                      in
                      Span.span spans Span.Breaker ("hash-build:" ^ bid p)
                        (fun () ->
                          bstream.ps_iter (fun _ m ->
                              (* batch build: key columns decoded
                                 column-at-a-time per morsel, rows
                                 fetched lazily only for live keys *)
                              let kcols = List.map (morsel_col m) bpos in
                              let fetch = morsel_fetch m in
                              morsel_ordinals m (fun i ->
                                  let k = List.map (fun g -> g i) kcols in
                                  if not (has_null k) then
                                    Hashtbl.replace index k
                                      (fetch i
                                      :: Option.value (Hashtbl.find_opt index k)
                                           ~default:[]))));
                      (* [emitted] counts matched pairs before the
                         residual check, exactly like the materializing
                         join, so ?limit trips at the same row *)
                      let emitted = ref 0 in
                      prstream.ps_iter (fun _ m ->
                          let kcols = List.map (morsel_col m) ppos in
                          let fetch = morsel_fetch m in
                          let out = ref [] in
                          morsel_ordinals m (fun i ->
                              let k = List.map (fun g -> g i) kcols in
                              if not (has_null k) then
                                match Hashtbl.find_opt index k with
                                | None -> ()
                                | Some matches ->
                                    let prow = fetch i in
                                    List.iter
                                      (fun brow ->
                                        incr emitted;
                                        if !emitted mod batch = 0 then tick ();
                                        let row = Array.append prow brow in
                                        if
                                          List.for_all
                                            (Expr.eval out_schema row)
                                            residual
                                        then begin
                                          out := row :: !out;
                                          if !emitted > limit then raise Timeout
                                        end)
                                      matches);
                          emit_chunks p emit (-1) !out));
                })
        | Physical.Index_nl ->
            let ostream = stream j.Physical.left in
            let inner_node = j.Physical.right in
            let inner_input =
              match inner_node.Physical.node with
              | Physical.Scan i -> i
              | _ -> invalid_arg "Executor.run: index NL inner must be a scan"
            in
            let index, outer_key, inner_key =
              match j.Physical.index with
              | Some x -> x
              | None -> invalid_arg "Executor.run: index NL without index"
            in
            let indexed = Expr.eq (Expr.Col outer_key) (Expr.Col inner_key) in
            let residual =
              List.filter
                (fun pr -> not (Expr.equal_pred pr indexed))
                j.Physical.preds
            in
            let inner_tbl = inner_input.Fragment.table in
            let inner_schema = inner_tbl.Table.schema in
            let out_schema = Schema.concat ostream.ps_schema inner_schema in
            let okpos =
              Schema.find_exn ostream.ps_schema ~rel:outer_key.Expr.rel
                ~name:outer_key.Expr.name
            in
            {
              ps_schema = out_schema;
              ps_parts = None;
              ps_iter =
                (fun emit ->
                  let probes = ref 0 and matched = ref 0 in
                  ostream.ps_iter (fun _ m ->
                      let okey = morsel_col m okpos in
                      let fetch = morsel_fetch m in
                      let out = ref [] in
                      morsel_ordinals m (fun i ->
                          incr probes;
                          if !probes mod 1024 = 0 then tick ();
                          let key = okey i in
                          if not (Value.is_null key) then
                            List.iter
                              (fun rid ->
                                let irow = Table.row inner_tbl rid in
                                if
                                  List.for_all
                                    (Expr.eval inner_schema irow)
                                    inner_input.Fragment.filters
                                then begin
                                  incr matched;
                                  let row = Array.append (fetch i) irow in
                                  if
                                    List.for_all (Expr.eval out_schema row) residual
                                  then begin
                                    out := row :: !out;
                                    if !matched > limit then raise Timeout
                                  end
                                end)
                              (Index.lookup index key));
                      (* the inner side is consumed through the index;
                         its stats entry is the rows surviving the
                         lookups plus the input's own filters *)
                      Hashtbl.replace stats inner_node.Physical.id !matched;
                      emit_chunks p emit (-1) !out));
            }
        | Physical.Nl ->
            let ostream = stream j.Physical.left in
            let istream = stream j.Physical.right in
            let out_schema = Schema.concat ostream.ps_schema istream.ps_schema in
            {
              ps_schema = out_schema;
              ps_parts = None;
              ps_iter =
                (fun emit ->
                  (* the inner side is rescanned per outer row: buffer
                     it once (breaker), then stream the outer side *)
                  let buf = ref [] in
                  Span.span spans Span.Breaker ("nl-inner:" ^ bid p) (fun () ->
                      istream.ps_iter (fun _ m -> buf := morsel_rows m :: !buf));
                  let inner = Array.concat (List.rev !buf) in
                  let steps = ref 0 and kept = ref 0 in
                  ostream.ps_iter (fun _ m ->
                      let fetch = morsel_fetch m in
                      let out = ref [] in
                      morsel_ordinals m (fun oi ->
                          let orow = fetch oi in
                          Array.iter
                            (fun irow ->
                              incr steps;
                              if !steps mod batch = 0 then tick ();
                              let row = Array.append orow irow in
                              if
                                List.for_all
                                  (Expr.eval out_schema row)
                                  j.Physical.preds
                              then begin
                                out := row :: !out;
                                incr kept;
                                if !kept > limit then raise Timeout
                              end)
                            inner);
                      emit_chunks p emit (-1) !out));
            })
  in
  let root = stream plan in
  let t0 = if spans <> None then Timer.now () else 0.0 in
  let rev_tagged = ref [] in
  Span.span spans Span.Pipeline ("pipeline:" ^ span_label plan) (fun () ->
      root.ps_iter (fun tag m -> rev_tagged := (tag, morsel_rows m) :: !rev_tagged));
  let tagged = List.rev !rev_tagged in
  let name =
    match plan.Physical.node with
    | Physical.Scan i -> i.Fragment.table.Table.name
    | Physical.Join _ -> "join"
  in
  built_intermediate ();
  let out =
    match root.ps_parts with
    | Some (keys, k) when tagged <> [] && List.for_all (fun (t, _) -> t >= 0) tagged
      ->
        (* the sink keeps the per-partition layout, so a temp built
           from this result carries it into the next QuerySplit step *)
        Table.of_tagged_chunks ~name ~schema:root.ps_schema ~part_keys:keys
          ~parts:k tagged
    | _ -> Table.of_chunks ~name ~schema:root.ps_schema (List.map snd tagged)
  in
  if spans <> None then
    List.iter
      (fun (n : Physical.t) ->
        (* zero-duration markers: wall-clock lives in the pipeline /
           breaker spans, since fused operators have no time of their
           own *)
        Span.add spans Span.Operator (span_label n) ~start:t0 ~dur:0.0
          ~args:
            [
              ("node", string_of_int n.Physical.id);
              ("est_rows", Printf.sprintf "%.0f" n.Physical.est_rows);
              ("actual_rows", string_of_int (Hashtbl.find stats n.Physical.id));
            ])
      (Physical.nodes plan);
  (out, stats)

let run ?deadline ?cancel ?(row_limit = default_row_limit) ?pool ?trace ?spans
    ?mode plan =
  let mode = Option.value mode ~default:!default_mode in
  match (mode, trace, plan.Physical.node) with
  | Pipeline, None, Physical.Join _ ->
      run_pipelined ?deadline ?cancel ~row_limit ?pool ?spans plan
  | _ ->
      (* per-operator tracing needs materialized outputs for its byte /
         volume accounting, and a bare scan gains nothing from
         pipelining while losing the scratch filter cache — both run on
         the materializing engine *)
      run_materializing ?deadline ?cancel ~row_limit ?pool ?trace ?spans plan

let project ?name (tbl : Table.t) cols =
  match cols with
  | [] -> tbl
  | _ ->
      let seen = Hashtbl.create 8 in
      let cols =
        List.filter
          (fun (c : Expr.colref) ->
            if Hashtbl.mem seen (c.Expr.rel, c.Expr.name) then false
            else (
              Hashtbl.replace seen (c.Expr.rel, c.Expr.name) ();
              true))
          cols
      in
      let positions =
        List.map
          (fun (c : Expr.colref) ->
            Schema.find_exn tbl.Table.schema ~rel:c.Expr.rel ~name:c.Expr.name)
          cols
      in
      let schema = Array.of_list (List.map (fun p -> tbl.Table.schema.(p)) positions) in
      let chunks =
        List.init (Table.n_chunks tbl) (fun ci ->
            match Chunk.columnar (Table.chunk_data tbl ci) with
            | Some col ->
                (* columnar projection shares the retained columns —
                   no per-row work at all *)
                Chunk.of_columnar (Columnar.project col positions)
            | None ->
                Chunk.of_rows
                  (Array.map
                     (fun row ->
                       Array.of_list (List.map (fun p -> row.(p)) positions))
                     (Table.chunk tbl ci)))
      in
      (* chunk-for-chunk rewrite: the source's partition layout still
         holds if every key column survived the projection *)
      Table.copy_partitioning ~from:tbl
        (Table.of_chunk_data ~name:(Option.value name ~default:tbl.Table.name)
           ~schema chunks)

let cartesian ~name tables =
  match tables with
  | [] -> invalid_arg "Executor.cartesian: no tables"
  | [ t ] -> Table.with_name t name
  | first :: rest ->
      List.fold_left
        (fun acc t ->
          let schema = Schema.concat acc.Table.schema t.Table.schema in
          let rows = ref [] in
          Table.iter
            (fun a -> Table.iter (fun b -> rows := Array.append a b :: !rows) t)
            acc;
          Table.create ~name ~schema (Array.of_list (List.rev !rows)))
        first rest
