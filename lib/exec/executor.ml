module Physical = Qs_plan.Physical
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Index = Qs_storage.Index
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr
module Trace = Qs_obs.Trace
module Scratch = Qs_util.Scratch
module Cancel = Qs_util.Cancel
module Timer = Qs_util.Timer
module Pool = Qs_util.Pool
module Span = Qs_util.Span

exception Timeout

let default_row_limit = 2_000_000

type stats = (int, int) Hashtbl.t

let check_deadline = function
  | Some d when Timer.now () > d -> raise Timeout
  | _ -> ()

(* Deadline and cancellation share the same polling points: [tick]
   raises [Cancel.Cancelled] or [Timeout] at batch boundaries, so a
   served query unwinds within one batch of either signal. *)
let tick deadline cancel () =
  Cancel.check cancel;
  check_deadline deadline

(* Deadline checks are amortized over batches of rows. *)
let batch = 16384

let table_slot : Table.t Scratch.slot = Scratch.slot ()

let filters_key filters =
  String.concat " & " (List.sort compare (List.map Expr.to_string filters))

let filter_chunk ?deadline ?cancel schema filters rows =
  let tick = tick deadline cancel in
  let out = ref [] in
  Array.iteri
    (fun i row ->
      if i mod batch = 0 then tick ();
      if List.for_all (Expr.eval schema row) filters then out := row :: !out)
    rows;
  Array.of_list (List.rev !out)

(* Chunked scan+filter. With [pool], chunks are filtered in parallel;
   Pool.map returns per-chunk outputs in chunk order, so the surviving
   rows come back in exactly the sequential scan's row order. *)
let filter_table ?deadline ?cancel ?pool (tbl : Table.t) filters =
  match filters with
  | [] -> tbl
  | filters ->
      let schema = tbl.Table.schema in
      let nc = Table.n_chunks tbl in
      let job ci =
        filter_chunk ?deadline ?cancel schema filters (Table.chunk tbl ci)
      in
      let chunks =
        match pool with
        | Some pool when Pool.size pool > 1 && nc > 1 ->
            Pool.map pool job (List.init nc Fun.id)
        | _ ->
            (* sequential scan through the chunk walker, so spilled
               inputs prefetch upcoming chunks while this one filters *)
            let out = ref [] in
            Table.iter_chunks
              (fun _ rows ->
                out := filter_chunk ?deadline ?cancel schema filters rows :: !out)
              tbl;
            List.rev !out
      in
      Table.of_chunks ~name:tbl.Table.name ~schema chunks

let filter_input ?deadline ?cancel ?pool (input : Fragment.input) =
  let tbl = input.Fragment.table in
  match input.Fragment.filters with
  | [] -> tbl
  | filters ->
      (* tables are immutable, so the filtered result is cached on the
         input record — re-optimization re-scans the same inputs many
         times. The cache key carries the predicate list: an input
         re-planned with different pushed-down filters must not reuse
         rows filtered under the old ones. A cancelled scan unwinds out
         of [find_or_add] before publishing, leaving the slot empty —
         the next query refilters from scratch. *)
      Scratch.find_or_add input.Fragment.scratch table_slot
        ("filtered:" ^ filters_key filters)
        (fun () -> filter_table ?deadline ?cancel ?pool tbl filters)

(* Join-key extraction: positions of the equi-join columns on each side,
   plus the residual predicates evaluated on the concatenated row. *)
let split_join_preds (lschema : Schema.t) preds =
  let is_left (c : Expr.colref) = Schema.mem lschema ~rel:c.Expr.rel ~name:c.Expr.name in
  List.partition_map
    (fun p ->
      match Expr.join_sides p with
      | Some (a, b) when is_left a -> Either.Left (a, b)
      | Some (a, b) when is_left b -> Either.Left (b, a)
      | _ -> Either.Right p)
    preds

let key_positions schema cols =
  List.map (fun (c : Expr.colref) -> Schema.find_exn schema ~rel:c.Expr.rel ~name:c.Expr.name) cols

let key_of_row row positions = List.map (fun p -> row.(p)) positions

let has_null = List.exists Value.is_null

(* Partitioned parallel hash join: both sides are split by key hash into
   one bucket per pool slot; every bucket is then an independent
   build+probe pair. Rows of one key land in one partition, so the union
   of the partition outputs is exactly the sequential join's multiset
   (null keys never join and are dropped during partitioning, as in the
   sequential path). Table order is restored within each partition so
   per-key match order — and thus the output multiset — is deterministic
   regardless of which domain runs which bucket. *)
let partitioned_hash_join ?deadline ?cancel ~limit ~pool ~(build : Table.t)
    ~(probe : Table.t) preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let k = Pool.size pool in
  let partition tbl pos =
    let parts = Array.make k [] in
    Table.iteri
      (fun i row ->
        if i mod batch = 0 then tick ();
        let key = key_of_row row pos in
        if not (has_null key) then begin
          let p = Hashtbl.hash key mod k in
          parts.(p) <- row :: parts.(p)
        end)
      tbl;
    Array.map List.rev parts
  in
  let bparts = partition build bpos in
  let pparts = partition probe ppos in
  let emitted = Atomic.make 0 in
  let run_part pi =
    let index : (Value.t list, Value.t array list) Hashtbl.t =
      Hashtbl.create (max 16 (List.length bparts.(pi)))
    in
    List.iteri
      (fun i row ->
        if i mod batch = 0 then tick ();
        let key = key_of_row row bpos in
        Hashtbl.replace index key
          (row :: Option.value (Hashtbl.find_opt index key) ~default:[]))
      bparts.(pi);
    let out = ref [] in
    List.iteri
      (fun i prow ->
        if i mod batch = 0 then tick ();
        let key = key_of_row prow ppos in
        match Hashtbl.find_opt index key with
        | None -> ()
        | Some matches ->
            List.iter
              (fun brow ->
                let n = 1 + Atomic.fetch_and_add emitted 1 in
                if n mod batch = 0 then tick ();
                let row = Array.append prow brow in
                if List.for_all (Expr.eval out_schema row) residual then begin
                  out := row :: !out;
                  if n > limit then raise Timeout
                end)
              matches)
      pparts.(pi);
    List.rev !out
  in
  let parts = Pool.map pool run_part (List.init k Fun.id) in
  Table.create ~name:"join" ~schema:out_schema
    (Array.concat (List.map Array.of_list parts))

let hash_join ?deadline ?cancel ?(limit = max_int) ?pool ~(build : Table.t)
    ~(probe : Table.t) preds =
  match pool with
  | Some pool when Pool.size pool > 1 ->
      partitioned_hash_join ?deadline ?cancel ~limit ~pool ~build ~probe preds
  | _ ->
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  (* orient keys wrt the build side *)
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let index : (Value.t list, Value.t array list) Hashtbl.t =
    Hashtbl.create (max 16 (Table.n_rows build))
  in
  Table.iteri
    (fun i row ->
      if i mod batch = 0 then tick ();
      let k = key_of_row row bpos in
      if not (has_null k) then
        Hashtbl.replace index k (row :: Option.value (Hashtbl.find_opt index k) ~default:[]))
    build;
  let out = ref [] in
  let emitted = ref 0 in
  Table.iteri
    (fun i prow ->
      if i mod batch = 0 then tick ();
      let k = key_of_row prow ppos in
      if not (has_null k) then
        match Hashtbl.find_opt index k with
        | None -> ()
        | Some matches ->
            List.iter
              (fun brow ->
                incr emitted;
                if !emitted mod batch = 0 then tick ();
                let row = Array.append prow brow in
                if List.for_all (Expr.eval out_schema row) residual then begin
                  out := row :: !out;
                  if !emitted > limit then raise Timeout
                end)
              matches)
    probe;
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

let hash_join_count ?deadline ?cancel ~(build : Table.t) ~(probe : Table.t)
    preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat probe.Table.schema build.Table.schema in
  let build_cols, residual = split_join_preds build.Table.schema preds in
  let bpos = key_positions build.Table.schema (List.map fst build_cols) in
  let ppos = key_positions probe.Table.schema (List.map snd build_cols) in
  let index : (Value.t list, Value.t array list) Hashtbl.t =
    Hashtbl.create (max 16 (Table.n_rows build))
  in
  Table.iteri
    (fun i row ->
      if i mod batch = 0 then tick ();
      let k = key_of_row row bpos in
      if not (has_null k) then
        Hashtbl.replace index k (row :: Option.value (Hashtbl.find_opt index k) ~default:[]))
    build;
  (* pre-count build groups so the residual-free case never walks pairs *)
  let counts : (Value.t list, int) Hashtbl.t = Hashtbl.create (Hashtbl.length index) in
  Hashtbl.iter (fun k rows -> Hashtbl.replace counts k (List.length rows)) index;
  let total = ref 0 in
  let steps = ref 0 in
  Table.iteri
    (fun i prow ->
      if i mod batch = 0 then tick ();
      let k = key_of_row prow ppos in
      if not (has_null k) then
        if residual = [] then
          total := !total + Option.value (Hashtbl.find_opt counts k) ~default:0
        else
          match Hashtbl.find_opt index k with
          | None -> ()
          | Some matches ->
              List.iter
                (fun brow ->
                  incr steps;
                  if !steps mod batch = 0 then tick ();
                  let row = Array.append prow brow in
                  if List.for_all (Expr.eval out_schema row) residual then incr total)
                matches)
    probe;
  !total

let index_nl_join ?deadline ?cancel ?(limit = max_int) ?matched_rows
    ~(outer : Table.t) ~(inner_input : Fragment.input) ~(index : Index.t)
    ~(outer_key : Expr.colref) preds =
  let tick = tick deadline cancel in
  let inner_tbl = inner_input.Fragment.table in
  let out_schema = Schema.concat outer.Table.schema inner_tbl.Table.schema in
  let okpos =
    Schema.find_exn outer.Table.schema ~rel:outer_key.Expr.rel ~name:outer_key.Expr.name
  in
  (* Residual predicates: everything except the indexed equality is checked
     after the lookup, as are the inner input's filters. *)
  let inner_schema = inner_tbl.Table.schema in
  let out = ref [] in
  let probes = ref 0 in
  let matched = ref 0 in
  Table.iter
    (fun orow ->
      incr probes;
      if !probes mod 1024 = 0 then tick ();
      let key = orow.(okpos) in
      if not (Value.is_null key) then
        List.iter
          (fun rid ->
            let irow = Table.row inner_tbl rid in
            if List.for_all (Expr.eval inner_schema irow) inner_input.Fragment.filters
            then begin
              incr matched;
              let row = Array.append orow irow in
              if List.for_all (Expr.eval out_schema row) preds then begin
                out := row :: !out;
                if !matched > limit then raise Timeout
              end
            end)
          (Index.lookup index key))
    outer;
  Option.iter (fun r -> r := !matched) matched_rows;
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

let nl_join ?deadline ?cancel ?(limit = max_int) ~(outer : Table.t)
    ~(inner : Table.t) preds =
  let tick = tick deadline cancel in
  let out_schema = Schema.concat outer.Table.schema inner.Table.schema in
  let out = ref [] in
  let steps = ref 0 in
  let kept = ref 0 in
  Table.iter
    (fun orow ->
      Table.iter
        (fun irow ->
          incr steps;
          if !steps mod batch = 0 then tick ();
          let row = Array.append orow irow in
          if List.for_all (Expr.eval out_schema row) preds then begin
            out := row :: !out;
            incr kept;
            if !kept > limit then raise Timeout
          end)
        inner)
    outer;
  Table.create ~name:"join" ~schema:out_schema (Array.of_list (List.rev !out))

(* Span bridging: the label of the operator span emitted per executed
   plan node. Exactly one arm per [Physical] operator constructor —
   tools/check.sh lints that none is missing (stats-completeness,
   extended to spans). *)
let span_label (p : Physical.t) =
  match p.Physical.node with
  | Physical.Scan i -> "scan:" ^ i.Fragment.id
  | Physical.Join { method_ = Physical.Hash; _ } -> "hash-join"
  | Physical.Join { method_ = Physical.Index_nl; _ } -> "index-nl-join"
  | Physical.Join { method_ = Physical.Nl; _ } -> "nl-join"

let run ?deadline ?cancel ?(row_limit = default_row_limit) ?pool ?trace ?spans
    plan =
  let stats : stats = Hashtbl.create 16 in
  (* Tracing is the only consumer of wall-clock / byte figures; keep the
     untraced path free of clock reads and byte-size walks. *)
  let timed = trace <> None || spans <> None in
  let now () = if timed then Timer.now () else 0.0 in
  let children (p : Physical.t) =
    match p.Physical.node with
    | Physical.Scan _ -> []
    | Physical.Join j -> [ j.Physical.left.Physical.id; j.Physical.right.Physical.id ]
  in
  let operator_span (p : Physical.t) ~t0 ~dur ~rows =
    Span.add spans Span.Operator (span_label p) ~start:t0 ~dur
      ~args:
        [
          ("node", string_of_int p.Physical.id);
          ("est_rows", Printf.sprintf "%.0f" p.Physical.est_rows);
          ("actual_rows", string_of_int rows);
        ]
  in
  let record ?(scanned = 0) ?(built = 0) ?(probed = 0) (p : Physical.t) ~t0 result =
    let rows = Table.n_rows result in
    Hashtbl.replace stats p.Physical.id rows;
    let elapsed = if timed then Timer.elapsed ~since:t0 else 0.0 in
    (match trace with
    | None -> ()
    | Some tr ->
        let n = Trace.node tr p.Physical.id in
        n.Trace.est_rows <- p.Physical.est_rows;
        n.Trace.actual_rows <- rows;
        n.Trace.elapsed <- elapsed;
        n.Trace.output_bytes <- Table.byte_size result;
        n.Trace.rows_scanned <- scanned;
        n.Trace.rows_built <- built;
        n.Trace.rows_probed <- probed;
        n.Trace.children <- children p);
    if spans <> None then operator_span p ~t0 ~dur:elapsed ~rows
  in
  let rec go (p : Physical.t) =
    let t0 = now () in
    match p.Physical.node with
    | Physical.Scan input ->
        let result = filter_input ?deadline ?cancel ?pool input in
        record p ~t0 ~scanned:(Table.n_rows input.Fragment.table) result;
        result
    | Physical.Join j -> (
        match j.Physical.method_ with
        | Physical.Hash ->
            let build = go j.Physical.left in
            let probe = go j.Physical.right in
            let result =
              hash_join ?deadline ?cancel ~limit:row_limit ?pool ~build ~probe
                j.Physical.preds
            in
            record p ~t0 ~built:(Table.n_rows build) ~probed:(Table.n_rows probe)
              result;
            result
        | Physical.Index_nl ->
            let outer = go j.Physical.left in
            let inner_input =
              match j.Physical.right.Physical.node with
              | Physical.Scan i -> i
              | _ -> invalid_arg "Executor.run: index NL inner must be a scan"
            in
            let index, outer_key, inner_key =
              match j.Physical.index with
              | Some x -> x
              | None -> invalid_arg "Executor.run: index NL without index"
            in
            (* The indexed equality is enforced by the lookup itself;
               everything else is checked per matched row. *)
            let indexed = Expr.eq (Expr.Col outer_key) (Expr.Col inner_key) in
            let residual =
              List.filter (fun pr -> not (Expr.equal_pred pr indexed)) j.Physical.preds
            in
            let matched = ref 0 in
            let result =
              index_nl_join ?deadline ?cancel ~limit:row_limit
                ~matched_rows:matched ~outer ~inner_input ~index ~outer_key
                residual
            in
            (* The inner scan is consumed through the index, never via [go];
               record it explicitly so every node id of the plan is present
               in the stats — its "output" is the rows surviving the index
               lookups plus the input's own filters. *)
            let inner = j.Physical.right in
            Hashtbl.replace stats inner.Physical.id !matched;
            (match trace with
            | None -> ()
            | Some tr ->
                let n = Trace.node tr inner.Physical.id in
                n.Trace.est_rows <- inner.Physical.est_rows;
                n.Trace.actual_rows <- !matched;
                n.Trace.rows_scanned <-
                  Table.n_rows inner_input.Fragment.table);
            if spans <> None then
              (* zero duration: the inner side's work happens inside the
                 index lookups and is part of the join span *)
              operator_span inner ~t0:(now ()) ~dur:0.0 ~rows:!matched;
            record p ~t0 ~probed:(Table.n_rows outer) result;
            result
        | Physical.Nl ->
            let outer = go j.Physical.left in
            let inner = go j.Physical.right in
            let result =
              nl_join ?deadline ?cancel ~limit:row_limit ~outer ~inner
                j.Physical.preds
            in
            record p ~t0 ~probed:(Table.n_rows outer) result;
            result)
  in
  let out = go plan in
  (out, stats)

let project ?name (tbl : Table.t) cols =
  match cols with
  | [] -> tbl
  | _ ->
      let seen = Hashtbl.create 8 in
      let cols =
        List.filter
          (fun (c : Expr.colref) ->
            if Hashtbl.mem seen (c.Expr.rel, c.Expr.name) then false
            else (
              Hashtbl.replace seen (c.Expr.rel, c.Expr.name) ();
              true))
          cols
      in
      let positions =
        List.map
          (fun (c : Expr.colref) ->
            Schema.find_exn tbl.Table.schema ~rel:c.Expr.rel ~name:c.Expr.name)
          cols
      in
      let schema = Array.of_list (List.map (fun p -> tbl.Table.schema.(p)) positions) in
      let chunks =
        List.init (Table.n_chunks tbl) (fun ci ->
            Array.map
              (fun row -> Array.of_list (List.map (fun p -> row.(p)) positions))
              (Table.chunk tbl ci))
      in
      Table.of_chunks ~name:(Option.value name ~default:tbl.Table.name) ~schema chunks

let cartesian ~name tables =
  match tables with
  | [] -> invalid_arg "Executor.cartesian: no tables"
  | [ t ] -> Table.with_name t name
  | first :: rest ->
      List.fold_left
        (fun acc t ->
          let schema = Schema.concat acc.Table.schema t.Table.schema in
          let rows = ref [] in
          Table.iter
            (fun a -> Table.iter (fun b -> rows := Array.append a b :: !rows) t)
            acc;
          Table.create ~name ~schema (Array.of_list (List.rev !rows)))
        first rest
