module Catalog = Qs_storage.Catalog
module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Logical = Qs_plan.Logical
module Rng = Qs_util.Rng
module D = Datagen

let sz scale base = max 5 (int_of_float (float_of_int base *. scale))

let build ?(scale = 1.0) ~seed () =
  let rng = Rng.create seed in
  let cat = Catalog.create () in
  let n_supp = sz scale 200 in
  let n_cust = sz scale 1500 in
  let n_part = sz scale 2000 in
  let n_ps = sz scale 8000 in
  let n_ord = sz scale 15000 in
  let n_li = sz scale 60000 in

  let regions = [| "africa"; "america"; "asia"; "europe"; "middle east" |] in
  let region =
    D.table ~name:"region"
      [
        ("r_regionkey", Value.TInt, D.serial 5);
        ("r_name", Value.TStr, Array.map (fun s -> Value.Str s) regions);
      ]
  in
  let nation =
    D.table ~name:"nation"
      [
        ("n_nationkey", Value.TInt, D.serial 25);
        ("n_name", Value.TStr, Array.init 25 (fun i -> Value.Str (Printf.sprintf "nation%02d" i)));
        ("n_regionkey", Value.TInt, Array.init 25 (fun i -> Value.Int (1 + (i mod 5))));
      ]
  in
  let supplier =
    D.table ~name:"supplier"
      [
        ("s_suppkey", Value.TInt, D.serial n_supp);
        ("s_name", Value.TStr, Array.init n_supp (fun i -> Value.Str (Printf.sprintf "supplier%04d" i)));
        ("s_nationkey", Value.TInt, D.uniform_fk rng ~n:n_supp ~domain:25);
        ("s_acctbal", Value.TFloat, Array.init n_supp (fun _ -> Value.Float (Rng.float rng 10000.0)));
      ]
  in
  let segments = [| "building"; "automobile"; "machinery"; "household"; "furniture" |] in
  let customer =
    D.table ~name:"customer"
      [
        ("c_custkey", Value.TInt, D.serial n_cust);
        ("c_nationkey", Value.TInt, D.uniform_fk rng ~n:n_cust ~domain:25);
        ( "c_mktsegment",
          Value.TStr,
          Array.init n_cust (fun _ -> Value.Str (Rng.choice rng segments)) );
        ("c_acctbal", Value.TFloat, Array.init n_cust (fun _ -> Value.Float (Rng.float rng 10000.0)));
      ]
  in
  let brands = Array.init 25 (fun i -> Printf.sprintf "brand%02d" i) in
  let types = [| "economy"; "standard"; "promo"; "small"; "large"; "medium" |] in
  let part =
    D.table ~name:"part"
      [
        ("p_partkey", Value.TInt, D.serial n_part);
        ("p_brand", Value.TStr, Array.init n_part (fun _ -> Value.Str (Rng.choice rng brands)));
        ("p_type", Value.TStr, Array.init n_part (fun _ -> Value.Str (Rng.choice rng types)));
        ("p_size", Value.TInt, Array.init n_part (fun _ -> Value.Int (1 + Rng.int rng 50)));
        ("p_retailprice", Value.TFloat, Array.init n_part (fun _ -> Value.Float (900.0 +. Rng.float rng 1100.0)));
      ]
  in
  let partsupp =
    D.table ~name:"partsupp"
      [
        ("ps_id", Value.TInt, D.serial n_ps);
        ("ps_partkey", Value.TInt, D.uniform_fk rng ~n:n_ps ~domain:n_part);
        ("ps_suppkey", Value.TInt, D.uniform_fk rng ~n:n_ps ~domain:n_supp);
        ("ps_supplycost", Value.TFloat, Array.init n_ps (fun _ -> Value.Float (Rng.float rng 1000.0)));
        ("ps_availqty", Value.TInt, Array.init n_ps (fun _ -> Value.Int (Rng.int rng 10000)));
      ]
  in
  let priorities = [| "1-urgent"; "2-high"; "3-medium"; "4-low"; "5-none" |] in
  let orders =
    D.table ~name:"orders"
      [
        ("o_orderkey", Value.TInt, D.serial n_ord);
        ("o_custkey", Value.TInt, D.uniform_fk rng ~n:n_ord ~domain:n_cust);
        ("o_orderdate", Value.TInt, Array.init n_ord (fun _ -> Value.Int (1 + Rng.int rng 2400)));
        ( "o_orderpriority",
          Value.TStr,
          Array.init n_ord (fun _ -> Value.Str (Rng.choice rng priorities)) );
        ("o_totalprice", Value.TFloat, Array.init n_ord (fun _ -> Value.Float (1000.0 +. Rng.float rng 400000.0)));
      ]
  in
  let modes = [| "air"; "ship"; "rail"; "truck"; "mail" |] in
  let flags = [| "a"; "n"; "r" |] in
  let l_order = D.uniform_fk rng ~n:n_li ~domain:n_ord in
  let lineitem =
    D.table ~name:"lineitem"
      [
        ("l_id", Value.TInt, D.serial n_li);
        ("l_orderkey", Value.TInt, l_order);
        ("l_partkey", Value.TInt, D.uniform_fk rng ~n:n_li ~domain:n_part);
        ("l_suppkey", Value.TInt, D.uniform_fk rng ~n:n_li ~domain:n_supp);
        ("l_quantity", Value.TInt, Array.init n_li (fun _ -> Value.Int (1 + Rng.int rng 50)));
        ("l_extendedprice", Value.TFloat, Array.init n_li (fun _ -> Value.Float (Rng.float rng 100000.0)));
        ("l_discount", Value.TFloat, Array.init n_li (fun _ -> Value.Float (0.1 *. Rng.float rng 1.0)));
        ("l_shipdate", Value.TInt, Array.init n_li (fun _ -> Value.Int (1 + Rng.int rng 2500)));
        ("l_commitdate", Value.TInt, Array.init n_li (fun _ -> Value.Int (1 + Rng.int rng 2500)));
        ("l_receiptdate", Value.TInt, Array.init n_li (fun _ -> Value.Int (1 + Rng.int rng 2500)));
        ("l_returnflag", Value.TStr, Array.init n_li (fun _ -> Value.Str (Rng.choice rng flags)));
        ("l_shipmode", Value.TStr, Array.init n_li (fun _ -> Value.Str (Rng.choice rng modes)));
      ]
  in
  List.iter
    (fun (tbl, pk) -> Catalog.add_table cat ~pk tbl)
    [
      (region, "r_regionkey"); (nation, "n_nationkey"); (supplier, "s_suppkey");
      (customer, "c_custkey"); (part, "p_partkey"); (partsupp, "ps_id");
      (orders, "o_orderkey"); (lineitem, "l_id");
    ];
  List.iter
    (fun (ft, fc, tt, tc) ->
      Catalog.add_fk cat ~from_table:ft ~from_column:fc ~to_table:tt ~to_column:tc)
    [
      ("nation", "n_regionkey", "region", "r_regionkey");
      ("supplier", "s_nationkey", "nation", "n_nationkey");
      ("customer", "c_nationkey", "nation", "n_nationkey");
      ("partsupp", "ps_partkey", "part", "p_partkey");
      ("partsupp", "ps_suppkey", "supplier", "s_suppkey");
      ("orders", "o_custkey", "customer", "c_custkey");
      ("lineitem", "l_orderkey", "orders", "o_orderkey");
      ("lineitem", "l_partkey", "part", "p_partkey");
      ("lineitem", "l_suppkey", "supplier", "s_suppkey");
    ];
  cat

(* ------------------------------------------------------------------ *)
(* The 22 queries                                                      *)
(* ------------------------------------------------------------------ *)

let c = Expr.col
let rel alias table = { Query.alias; table }
let cref r n = { Expr.rel = r; Expr.name = n }

let agg ?(group = []) name aggs input = Logical.Agg { name; group_by = group; aggs; input }

let sum label s = { Logical.fn = Logical.Sum; arg = Some s; label }
let avg label s = { Logical.fn = Logical.Avg; arg = Some s; label }
let cnt label = { Logical.fn = Logical.Count_star; arg = None; label }
let mn label s = { Logical.fn = Logical.Min; arg = Some s; label }
let _mx label s = { Logical.fn = Logical.Max; arg = Some s; label }

let revenue =
  Expr.Arith
    ( Expr.Mul,
      c "l" "l_extendedprice",
      Expr.Arith (Expr.Sub, Expr.vfloat 1.0, c "l" "l_discount") )

let queries _cat ~seed =
  let rng = Rng.create seed in
  let date d = Expr.vint d in
  let rand_seg () =
    Rng.choice rng [| "building"; "automobile"; "machinery"; "household"; "furniture" |]
  in
  let rand_mode () = Rng.choice rng [| "air"; "ship"; "rail"; "truck"; "mail" |] in
  let rand_brand () = Printf.sprintf "brand%02d" (Rng.int rng 25) in
  let spj name rels preds = Logical.Spj (Query.make ~name rels preds) in
  [
    (* q1: pricing summary over lineitem *)
    agg "star_q1"
      ~group:[ cref "l" "l_returnflag" ]
      [ sum "sum_qty" (c "l" "l_quantity"); avg "avg_price" (c "l" "l_extendedprice"); cnt "count_order" ]
      (spj "star_q1_spj" [ rel "l" "lineitem" ]
         [ Expr.Cmp (Expr.Le, c "l" "l_shipdate", date 2300) ]);
    (* q2: min supplycost per brand across part/partsupp/supplier/nation *)
    agg "star_q2"
      ~group:[ cref "p" "p_brand" ]
      [ mn "min_cost" (c "ps" "ps_supplycost") ]
      (spj "star_q2_spj"
         [ rel "p" "part"; rel "ps" "partsupp"; rel "s" "supplier"; rel "n" "nation" ]
         [
           Expr.eq (c "ps" "ps_partkey") (c "p" "p_partkey");
           Expr.eq (c "ps" "ps_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
           Expr.Cmp (Expr.Lt, c "p" "p_size", Expr.vint 20);
         ]);
    (* q3: revenue of a market segment *)
    agg "star_q3"
      ~group:[ cref "o" "o_orderpriority" ]
      [ sum "revenue" revenue ]
      (spj "star_q3_spj"
         [ rel "cu" "customer"; rel "o" "orders"; rel "l" "lineitem" ]
         [
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.Cmp (Expr.Eq, c "cu" "c_mktsegment", Expr.vstr (rand_seg ()));
           Expr.Cmp (Expr.Lt, c "o" "o_orderdate", date 1600);
           Expr.Cmp (Expr.Gt, c "l" "l_shipdate", date 1600);
         ]);
    (* q4: order priority checking — EXISTS *)
    agg "star_q4"
      ~group:[ cref "q4s" "o_o_orderpriority" ]
      [ cnt "order_count" ]
      (Logical.Semi
         {
           name = "q4s";
           left =
             spj "star_q4_o" [ rel "o" "orders" ]
               [
                 Expr.Between (c "o" "o_orderdate", Value.Int 1200, Value.Int 1500);
               ];
           right =
             spj "star_q4_l" [ rel "l" "lineitem" ]
               [ Expr.Cmp (Expr.Lt, c "l" "l_commitdate", c "l" "l_receiptdate") ];
           on = [ Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey") ];
         });
    (* q5: local supplier volume *)
    agg "star_q5"
      ~group:[ cref "n" "n_name" ]
      [ sum "revenue" revenue ]
      (spj "star_q5_spj"
         [
           rel "cu" "customer"; rel "o" "orders"; rel "l" "lineitem";
           rel "s" "supplier"; rel "n" "nation"; rel "r" "region";
         ]
         [
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.eq (c "l" "l_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
           Expr.eq (c "n" "n_regionkey") (c "r" "r_regionkey");
           Expr.Cmp (Expr.Eq, c "r" "r_name", Expr.vstr "asia");
           Expr.Between (c "o" "o_orderdate", Value.Int 800, Value.Int 1400);
         ]);
    (* q6: forecast revenue change (single table) *)
    agg "star_q6"
      [ sum "revenue" (Expr.Arith (Expr.Mul, c "l" "l_extendedprice", c "l" "l_discount")) ]
      (spj "star_q6_spj" [ rel "l" "lineitem" ]
         [
           Expr.Between (c "l" "l_shipdate", Value.Int 1000, Value.Int 1365);
           Expr.Between (c "l" "l_discount", Value.Float 0.05, Value.Float 0.07);
           Expr.Cmp (Expr.Lt, c "l" "l_quantity", Expr.vint 24);
         ]);
    (* q7: volume shipping between two nations *)
    agg "star_q7"
      ~group:[ cref "n1" "n_name" ]
      [ sum "revenue" revenue ]
      (spj "star_q7_spj"
         [
           rel "s" "supplier"; rel "l" "lineitem"; rel "o" "orders";
           rel "cu" "customer"; rel "n1" "nation"; rel "n2" "nation";
         ]
         [
           Expr.eq (c "l" "l_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "s" "s_nationkey") (c "n1" "n_nationkey");
           Expr.eq (c "cu" "c_nationkey") (c "n2" "n_nationkey");
           Expr.In_list (c "n2" "n_name", [ Value.Str "nation03"; Value.Str "nation11" ]);
         ]);
    (* q8: market share style *)
    agg "star_q8"
      ~group:[ cref "r" "r_name" ]
      [ sum "volume" revenue ]
      (spj "star_q8_spj"
         [
           rel "p" "part"; rel "l" "lineitem"; rel "o" "orders"; rel "cu" "customer";
           rel "n" "nation"; rel "r" "region";
         ]
         [
           Expr.eq (c "l" "l_partkey") (c "p" "p_partkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "cu" "c_nationkey") (c "n" "n_nationkey");
           Expr.eq (c "n" "n_regionkey") (c "r" "r_regionkey");
           Expr.Cmp (Expr.Eq, c "p" "p_type", Expr.vstr "economy");
         ]);
    (* q9: product type profit *)
    agg "star_q9"
      ~group:[ cref "n" "n_name" ]
      [ sum "profit" revenue ]
      (spj "star_q9_spj"
         [
           rel "p" "part"; rel "s" "supplier"; rel "l" "lineitem";
           rel "ps" "partsupp"; rel "n" "nation";
         ]
         [
           Expr.eq (c "l" "l_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "ps" "ps_suppkey") (c "l" "l_suppkey");
           Expr.eq (c "ps" "ps_partkey") (c "l" "l_partkey");
           Expr.eq (c "l" "l_partkey") (c "p" "p_partkey");
           Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
           Expr.Like (c "p" "p_brand", "brand0%");
         ]);
    (* q10: returned item reporting *)
    agg "star_q10"
      ~group:[ cref "n" "n_name" ]
      [ sum "revenue" revenue; cnt "customers" ]
      (spj "star_q10_spj"
         [ rel "cu" "customer"; rel "o" "orders"; rel "l" "lineitem"; rel "n" "nation" ]
         [
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.eq (c "cu" "c_nationkey") (c "n" "n_nationkey");
           Expr.Cmp (Expr.Eq, c "l" "l_returnflag", Expr.vstr "r");
           Expr.Between (c "o" "o_orderdate", Value.Int 600, Value.Int 900);
         ]);
    (* q11: important stock (partsupp by nation) *)
    agg "star_q11"
      ~group:[ cref "ps" "ps_partkey" ]
      [ sum "value" (Expr.Arith (Expr.Mul, c "ps" "ps_supplycost", c "ps" "ps_availqty")) ]
      (spj "star_q11_spj"
         [ rel "ps" "partsupp"; rel "s" "supplier"; rel "n" "nation" ]
         [
           Expr.eq (c "ps" "ps_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
           Expr.Cmp (Expr.Eq, c "n" "n_name", Expr.vstr "nation07");
         ]);
    (* q12: shipping modes *)
    agg "star_q12"
      ~group:[ cref "l" "l_shipmode" ]
      [ cnt "order_count" ]
      (spj "star_q12_spj" [ rel "o" "orders"; rel "l" "lineitem" ]
         [
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.In_list (c "l" "l_shipmode", [ Value.Str (rand_mode ()); Value.Str (rand_mode ()) ]);
           Expr.Cmp (Expr.Lt, c "l" "l_commitdate", c "l" "l_receiptdate");
         ]);
    (* q13: customer order counts via UNION of two segments *)
    Logical.Union_all
      {
        name = "star_q13";
        inputs =
          [
            agg "q13a" ~group:[ cref "cu" "c_mktsegment" ] [ cnt "orders" ]
              (spj "star_q13a" [ rel "cu" "customer"; rel "o" "orders" ]
                 [
                   Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
                   Expr.Cmp (Expr.Eq, c "cu" "c_mktsegment", Expr.vstr "building");
                 ]);
            agg "q13b" ~group:[ cref "cu" "c_mktsegment" ] [ cnt "orders" ]
              (spj "star_q13b" [ rel "cu" "customer"; rel "o" "orders" ]
                 [
                   Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
                   Expr.Cmp (Expr.Eq, c "cu" "c_mktsegment", Expr.vstr "machinery");
                 ]);
          ];
      };
    (* q14: promotion effect *)
    agg "star_q14"
      [ sum "promo_revenue" revenue ]
      (spj "star_q14_spj" [ rel "l" "lineitem"; rel "p" "part" ]
         [
           Expr.eq (c "l" "l_partkey") (c "p" "p_partkey");
           Expr.Cmp (Expr.Eq, c "p" "p_type", Expr.vstr "promo");
           Expr.Between (c "l" "l_shipdate", Value.Int 1400, Value.Int 1430);
         ]);
    (* q15: top supplier *)
    agg "star_q15"
      ~group:[ cref "s" "s_name" ]
      [ sum "total" revenue ]
      (spj "star_q15_spj" [ rel "l" "lineitem"; rel "s" "supplier" ]
         [
           Expr.eq (c "l" "l_suppkey") (c "s" "s_suppkey");
           Expr.Between (c "l" "l_shipdate", Value.Int 2000, Value.Int 2090);
         ]);
    (* q16: parts/supplier relationship — NOT EXISTS *)
    agg "star_q16"
      ~group:[ cref "q16s" "p_p_brand" ]
      [ cnt "supplier_cnt" ]
      (Logical.Anti
         {
           name = "q16s";
           left =
             spj "star_q16_ps"
               [ rel "ps" "partsupp"; rel "p" "part" ]
               [
                 Expr.eq (c "ps" "ps_partkey") (c "p" "p_partkey");
                 Expr.Cmp (Expr.Gt, c "p" "p_size", Expr.vint 40);
               ];
           right =
             spj "star_q16_s" [ rel "s" "supplier" ]
               [ Expr.Cmp (Expr.Lt, c "s" "s_acctbal", Expr.vfloat 100.0) ];
           on = [ Expr.eq (c "ps" "ps_suppkey") (c "s" "s_suppkey") ];
         });
    (* q17: small-quantity-order revenue *)
    agg "star_q17"
      [ avg "avg_yearly" (c "l" "l_extendedprice") ]
      (spj "star_q17_spj" [ rel "l" "lineitem"; rel "p" "part" ]
         [
           Expr.eq (c "l" "l_partkey") (c "p" "p_partkey");
           Expr.Cmp (Expr.Eq, c "p" "p_brand", Expr.vstr (rand_brand ()));
           Expr.Cmp (Expr.Lt, c "l" "l_quantity", Expr.vint 5);
         ]);
    (* q18: large volume customer *)
    agg "star_q18"
      ~group:[ cref "cu" "c_custkey" ]
      [ sum "total_qty" (c "l" "l_quantity") ]
      (spj "star_q18_spj"
         [ rel "cu" "customer"; rel "o" "orders"; rel "l" "lineitem" ]
         [
           Expr.eq (c "o" "o_custkey") (c "cu" "c_custkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.Cmp (Expr.Gt, c "o" "o_totalprice", Expr.vfloat 350000.0);
         ]);
    (* q19: discounted revenue, disjunctive predicate *)
    agg "star_q19"
      [ sum "revenue" revenue ]
      (spj "star_q19_spj" [ rel "l" "lineitem"; rel "p" "part" ]
         [
           Expr.eq (c "l" "l_partkey") (c "p" "p_partkey");
           Expr.Or
             [
               Expr.Cmp (Expr.Eq, c "p" "p_type", Expr.vstr "small");
               Expr.Cmp (Expr.Eq, c "p" "p_type", Expr.vstr "medium");
             ];
           Expr.Cmp (Expr.Le, c "l" "l_quantity", Expr.vint 15);
         ]);
    (* q20: potential part promotion — EXISTS over partsupp *)
    agg "star_q20"
      ~group:[ cref "q20s" "s_s_name" ]
      [ cnt "parts" ]
      (Logical.Semi
         {
           name = "q20s";
           left =
             spj "star_q20_s" [ rel "s" "supplier"; rel "n" "nation" ]
               [
                 Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
                 Expr.Cmp (Expr.Eq, c "n" "n_name", Expr.vstr "nation11");
               ];
           right =
             spj "star_q20_ps" [ rel "ps" "partsupp" ]
               [ Expr.Cmp (Expr.Gt, c "ps" "ps_availqty", Expr.vint 5000) ];
           on = [ Expr.eq (c "ps" "ps_suppkey") (c "s" "s_suppkey") ];
         });
    (* q21: suppliers who kept orders waiting *)
    agg "star_q21"
      ~group:[ cref "s" "s_name" ]
      [ cnt "numwait" ]
      (spj "star_q21_spj"
         [ rel "s" "supplier"; rel "l" "lineitem"; rel "o" "orders"; rel "n" "nation" ]
         [
           Expr.eq (c "l" "l_suppkey") (c "s" "s_suppkey");
           Expr.eq (c "l" "l_orderkey") (c "o" "o_orderkey");
           Expr.eq (c "s" "s_nationkey") (c "n" "n_nationkey");
           Expr.Cmp (Expr.Gt, c "l" "l_receiptdate", c "l" "l_commitdate");
           Expr.Cmp (Expr.Eq, c "n" "n_name", Expr.vstr "nation05");
         ]);
    (* q22: global sales opportunity *)
    agg "star_q22"
      ~group:[ cref "cu" "c_mktsegment" ]
      [ cnt "numcust"; sum "totacctbal" (c "cu" "c_acctbal") ]
      (spj "star_q22_spj" [ rel "cu" "customer" ]
         [ Expr.Cmp (Expr.Gt, c "cu" "c_acctbal", Expr.vfloat 7500.0) ]);
  ]
