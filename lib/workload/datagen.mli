(** Column generators shared by the synthetic benchmarks.

    The generators are deliberately *not* independent: foreign keys are
    Zipf-skewed and attribute values can be correlated with other columns
    of the same row. Skew plus correlation is what makes the default
    (independence-assuming) estimator err the way it does on IMDB/DSB —
    the phenomenon the whole paper is about. *)

module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Rng = Qs_util.Rng
module Zipf = Qs_util.Zipf

val serial : int -> Value.t array
(** ids 1..n. *)

val zipf_fk : Rng.t -> n:int -> domain:int -> theta:float -> Value.t array
(** [n] foreign keys into ids 1..domain, rank-skewed with [theta]. *)

val zipf_ranks : Rng.t -> n:int -> domain:int -> theta:float -> int array
(** Raw popularity ranks (0 = hottest), for generators that must share one
    popularity order across several fact tables. *)

val permutation : Rng.t -> int -> int array
(** A shuffled [1..n] id assignment: [perm.(rank)] is the id holding that
    popularity rank. *)

val rank_band_fk : Rng.t -> ranks:int array -> rank_domain:int -> domain:int ->
  bands:int -> noise:float -> Value.t array
(** Foreign keys whose target id band is determined by the *popularity
    rank* of the row's subject: hot rows reference the first band of the
    target domain. Filtering the target by band then concentrates the
    surviving fact rows on the hottest subjects — the skew-correlation
    interaction that makes independence-based estimates collapse on
    IMDB-like data. *)

val uniform_fk : Rng.t -> n:int -> domain:int -> Value.t array

val correlated_fk : Rng.t -> base:Value.t array -> domain:int -> bands:int ->
  noise:float -> Value.t array
(** Foreign keys correlated with [base]: each base value deterministically
    selects one of [bands] contiguous id bands of the target domain, and
    the key is drawn from that band (or, with probability [noise], from
    the whole domain). Joining through such a column breaks the
    independence assumption badly. *)

val tagged_strings : Rng.t -> n:int -> prefixes:string array -> pool:int -> Value.t array
(** Strings of the form ["<prefix>_w<k>"]; prefix chosen uniformly, [k]
    Zipf-skewed over [pool]. Gives LIKE predicates something to match. *)

val int_between : Rng.t -> n:int -> lo:int -> hi:int -> skew:float -> Value.t array
(** Zipf-skewed integers in [lo, hi]; rank 0 = [hi] (recent years are the
    most frequent, as in IMDB production years). *)

val with_nulls : Rng.t -> frac:float -> Value.t array -> Value.t array

val table : name:string -> (string * Value.ty * Value.t array) list -> Table.t
(** Assemble a table from named columns (all must have equal length). *)
