(** A DSB-shaped benchmark: TPC-DS-style snowflake schema with *injected
    skew* (DSB = TPC-DS + skew [11]).

    Two fact tables ([store_sales], [web_sales]) over shared dimensions
    let the SPJ queries include fact-fact joins (the inverse-star pattern
    QuerySplit targets), while most queries remain star-shaped. Sales
    columns are Zipf-skewed and item/promotion/date attributes are
    correlated, giving the default estimator DSB-like errors — milder than
    {!Cinema}, harsher than {!Starbench}. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Logical = Qs_plan.Logical

val build : ?scale:float -> seed:int -> unit -> Catalog.t

val spj_queries : Catalog.t -> seed:int -> Query.t list
(** 15 SPJ queries, named ["dsb_spj_<i>"] (the paper's Fig. 13 set). *)

val nonspj_queries : Catalog.t -> seed:int -> Logical.t list
(** 37 non-SPJ trees, named ["dsb_q<i>"] (the paper's Fig. 14 set). *)
