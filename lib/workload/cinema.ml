module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Rng = Qs_util.Rng
module Zipf = Qs_util.Zipf
module D = Datagen

let default_query_count = 91

let sz scale base = max 8 (int_of_float (float_of_int base *. scale))

let pick_zipf rng arr theta =
  let z = Zipf.create ~n:(Array.length arr) ~theta in
  fun () -> arr.(Zipf.sample z rng)

let build ?(scale = 1.0) ~seed () =
  let rng = Rng.create seed in
  let cat = Catalog.create () in
  let n_title = sz scale 20000 in
  let n_keyword = sz scale 5000 in
  let n_company = sz scale 2500 in
  let n_name = sz scale 12000 in
  let n_char = sz scale 6000 in
  let n_mk = sz scale 50000 in
  let n_mc = sz scale 40000 in
  let n_ci = sz scale 100000 in
  let n_mi = sz scale 50000 in

  (* small dimension tables *)
  let kinds = [| "movie"; "tv series"; "tv movie"; "video"; "short"; "episode"; "game" |] in
  let kt =
    D.table ~name:"kind_type"
      [
        ("id", Value.TInt, D.serial (Array.length kinds));
        ("kind", Value.TStr, Array.map (fun s -> Value.Str s) kinds);
      ]
  in
  let infos =
    Array.init 30 (fun i ->
        [| "budget"; "genres"; "countries"; "rating"; "votes"; "runtime" |].(i mod 6)
        ^ "-" ^ string_of_int (i / 6))
  in
  let it =
    D.table ~name:"info_type"
      [
        ("id", Value.TInt, D.serial 30);
        ("info", Value.TStr, Array.map (fun s -> Value.Str s) infos);
      ]
  in
  let roles =
    [| "actor"; "actress"; "producer"; "writer"; "editor"; "director";
       "cinematographer"; "composer"; "costume"; "guest"; "crew"; "stunt" |]
  in
  let rt =
    D.table ~name:"role_type"
      [
        ("id", Value.TInt, D.serial (Array.length roles));
        ("role", Value.TStr, Array.map (fun s -> Value.Str s) roles);
      ]
  in
  let ctypes = [| "production companies"; "distributors"; "special effects"; "misc" |] in
  let ct =
    D.table ~name:"company_type"
      [
        ("id", Value.TInt, D.serial (Array.length ctypes));
        ("kind", Value.TStr, Array.map (fun s -> Value.Str s) ctypes);
      ]
  in

  (* entity tables *)
  let kw_prefixes = [| "hero"; "sequel"; "war"; "love"; "blood"; "dream" |] in
  let k =
    D.table ~name:"keyword"
      [
        ("id", Value.TInt, D.serial n_keyword);
        ( "keyword",
          Value.TStr,
          (* the prefix is determined by the id band, so a LIKE 'hero_%'
             filter selects one contiguous band of keyword ids — and the
             fact side references bands by movie popularity *)
          Array.init n_keyword (fun i ->
              Value.Str
                (Printf.sprintf "%s_w%d"
                   kw_prefixes.(i * Array.length kw_prefixes / n_keyword)
                   (Rng.int rng 600))) );
      ]
  in
  let countries =
    [| "us"; "gb"; "de"; "fr"; "jp"; "in"; "it"; "ca"; "es"; "se"; "br"; "kr" |]
  in
  let pick_country = pick_zipf rng countries 1.0 in
  let cn =
    D.table ~name:"company_name"
      [
        ("id", Value.TInt, D.serial n_company);
        ( "name",
          Value.TStr,
          D.tagged_strings rng ~n:n_company
            ~prefixes:[| "studio"; "films"; "pictures"; "media" |]
            ~pool:800 );
        ( "country_code",
          Value.TStr,
          (* countries correlate with the company id band: joining through
             mc.company_id and filtering on country breaks independence *)
          Array.init n_company (fun i ->
              if Rng.bernoulli rng 0.25 then Value.Str (pick_country ())
              else Value.Str countries.(i * Array.length countries / n_company)) );
      ]
  in
  let genders =
    Array.init n_name (fun _ ->
        if Rng.bernoulli rng 0.05 then Value.Null
        else if Rng.bernoulli rng 0.62 then Value.Str "m"
        else Value.Str "f")
  in
  let n_tbl =
    D.table ~name:"name"
      [
        ("id", Value.TInt, D.serial n_name);
        ( "name",
          Value.TStr,
          (let surname = [| "smith"; "lee"; "garcia"; "chen"; "khan"; "ivanov"; "sato" |] in
           Array.init n_name (fun i ->
               Value.Str
                 (Printf.sprintf "%s_w%d"
                    surname.(i * Array.length surname / n_name)
                    (Rng.int rng 2500)))) );
        ("gender", Value.TStr, genders);
      ]
  in
  let chn =
    D.table ~name:"char_name"
      [
        ("id", Value.TInt, D.serial n_char);
        ( "name",
          Value.TStr,
          D.tagged_strings rng ~n:n_char
            ~prefixes:[| "captain"; "doctor"; "agent"; "king"; "queen" |]
            ~pool:1500 );
      ]
  in

  (* the central entity: title. One popularity order is shared by every
     fact table (a hit movie has many keywords AND a large cast AND many
     info rows), and production years skew towards it: recent movies are
     the popular ones. A year filter therefore concentrates every fact
     table on the hottest movies — which the independence assumption
     cannot see. This is the engineered analogue of IMDB's skew. *)
  let movie_perm = D.permutation rng n_title in
  let movie_rank = Array.make (n_title + 1) 0 in
  Array.iteri (fun rank id -> movie_rank.(id) <- rank) movie_perm;
  let years =
    Array.init n_title (fun i ->
        let rank = movie_rank.(i + 1) in
        let base = 2019 - (rank * 70 / n_title) in
        Value.Int (max 1950 (base - Rng.int rng 8)))
  in
  let t =
    D.table ~name:"title"
      [
        ("id", Value.TInt, D.serial n_title);
        ( "title",
          Value.TStr,
          D.tagged_strings rng ~n:n_title
            ~prefixes:[| "the"; "a"; "dark"; "last"; "great"; "return" |]
            ~pool:4000 );
        ( "kind_id",
          Value.TInt,
          (* kind correlates with the production-year band *)
          D.correlated_fk rng ~base:years ~domain:(Array.length kinds) ~bands:7
            ~noise:0.3 );
        ("production_year", Value.TInt, years);
      ]
  in

  (* fact / relationship tables around title: all share [movie_perm] *)
  let fact_ranks theta n = D.zipf_ranks rng ~n ~domain:n_title ~theta in
  let movie_ids ranks = Array.map (fun r -> Value.Int movie_perm.(r)) ranks in
  let mk_ranks = fact_ranks 1.0 n_mk in
  let mk =
    D.table ~name:"movie_keyword"
      [
        ("id", Value.TInt, D.serial n_mk);
        ("movie_id", Value.TInt, movie_ids mk_ranks);
        ( "keyword_id",
          Value.TInt,
          (* hot movies carry keywords from the first bands — whose strings
             share a prefix, so the LIKE filters hit them together *)
          D.rank_band_fk rng ~ranks:mk_ranks ~rank_domain:n_title ~domain:n_keyword
            ~bands:12 ~noise:0.25 );
      ]
  in
  let mc_ranks = fact_ranks 0.9 n_mc in
  let mc_company =
    D.rank_band_fk rng ~ranks:mc_ranks ~rank_domain:n_title ~domain:n_company ~bands:10
      ~noise:0.25
  in
  let mc =
    D.table ~name:"movie_companies"
      [
        ("id", Value.TInt, D.serial n_mc);
        ("movie_id", Value.TInt, movie_ids mc_ranks);
        ("company_id", Value.TInt, mc_company);
        ( "company_type_id",
          Value.TInt,
          D.correlated_fk rng ~base:mc_company ~domain:(Array.length ctypes) ~bands:4
            ~noise:0.2 );
      ]
  in
  let ci_ranks = fact_ranks 1.05 n_ci in
  let ci_person =
    D.rank_band_fk rng ~ranks:ci_ranks ~rank_domain:n_title ~domain:n_name ~bands:14
      ~noise:0.3
  in
  let ci =
    D.table ~name:"cast_info"
      [
        ("id", Value.TInt, D.serial n_ci);
        ("movie_id", Value.TInt, movie_ids ci_ranks);
        ("person_id", Value.TInt, ci_person);
        ( "role_id",
          Value.TInt,
          D.correlated_fk rng ~base:ci_person ~domain:(Array.length roles) ~bands:12
            ~noise:0.4 );
        ( "person_role_id",
          Value.TInt,
          D.with_nulls rng ~frac:0.4 (D.uniform_fk rng ~n:n_ci ~domain:n_char) );
      ]
  in
  let mi_ranks = fact_ranks 0.9 n_mi in
  let mi_type =
    D.rank_band_fk rng ~ranks:mi_ranks ~rank_domain:n_title ~domain:30 ~bands:10
      ~noise:0.3
  in
  let mi =
    D.table ~name:"movie_info"
      [
        ("id", Value.TInt, D.serial n_mi);
        ("movie_id", Value.TInt, movie_ids mi_ranks);
        ("info_type_id", Value.TInt, mi_type);
        ( "info",
          Value.TStr,
          (* info text embeds the info type: a LIKE on info correlates
             perfectly with info_type_id, which PostgreSQL-style
             estimation multiplies as if independent *)
          Array.map
            (fun ty ->
              Value.Str
                (Printf.sprintf "it%d_w%d" (Value.as_int ty) (Rng.int rng 200)))
            mi_type );
      ]
  in

  List.iter
    (fun (tbl, pk) -> Catalog.add_table cat ~pk tbl)
    [
      (kt, "id"); (it, "id"); (rt, "id"); (ct, "id"); (k, "id"); (cn, "id");
      (n_tbl, "id"); (chn, "id"); (t, "id"); (mk, "id"); (mc, "id"); (ci, "id");
      (mi, "id");
    ];
  List.iter
    (fun (ft, fc, tt, tc) ->
      Catalog.add_fk cat ~from_table:ft ~from_column:fc ~to_table:tt ~to_column:tc)
    [
      ("title", "kind_id", "kind_type", "id");
      ("movie_keyword", "movie_id", "title", "id");
      ("movie_keyword", "keyword_id", "keyword", "id");
      ("movie_companies", "movie_id", "title", "id");
      ("movie_companies", "company_id", "company_name", "id");
      ("movie_companies", "company_type_id", "company_type", "id");
      ("cast_info", "movie_id", "title", "id");
      ("cast_info", "person_id", "name", "id");
      ("cast_info", "role_id", "role_type", "id");
      ("cast_info", "person_role_id", "char_name", "id");
      ("movie_info", "movie_id", "title", "id");
      ("movie_info", "info_type_id", "info_type", "id");
    ];
  cat

(* ------------------------------------------------------------------ *)
(* Witness-based query generation                                      *)
(* ------------------------------------------------------------------ *)

type fact = {
  table : string;
  alias : string;
  dims : (string * string * string * string) list;
      (* (fk column, dim table, dim alias, dim pk) *)
}

let facts =
  [
    {
      table = "movie_keyword";
      alias = "mk";
      dims = [ ("keyword_id", "keyword", "k", "id") ];
    };
    {
      table = "movie_companies";
      alias = "mc";
      dims =
        [
          ("company_id", "company_name", "cn", "id");
          ("company_type_id", "company_type", "ct", "id");
        ];
    };
    {
      table = "cast_info";
      alias = "ci";
      dims =
        [
          ("person_id", "name", "n", "id");
          ("role_id", "role_type", "rt", "id");
          ("person_role_id", "char_name", "chn", "id");
        ];
    };
    {
      table = "movie_info";
      alias = "mi";
      dims = [ ("info_type_id", "info_type", "it", "id") ];
    };
  ]

let col_pos (tbl : Table.t) name =
  match Schema.find_by_name tbl.Table.schema name with
  | Some p -> p
  | None -> invalid_arg ("Cinema.col_pos: " ^ name)

(* index: movie_id -> row ids of a fact table *)
let rows_by_movie (tbl : Table.t) =
  let pos = col_pos tbl "movie_id" in
  let h = Hashtbl.create 4096 in
  Table.iteri
    (fun i row ->
      let m = row.(pos) in
      Hashtbl.replace h m (i :: Option.value (Hashtbl.find_opt h m) ~default:[]))
    tbl;
  h

let str_prefix s =
  match String.index_opt s '_' with Some i -> String.sub s 0 (i + 1) | None -> s

(* A filter on a dimension (or on title) derived from the witness row so
   the witness survives it. The shapes mirror JOB: LIKE prefixes, equality
   on low-cardinality attributes, ranges on years, IN lists. *)
let dim_filter rng cat ~alias ~table ~witness_id =
  let tbl = Catalog.table cat table in
  let row = Table.row tbl (witness_id - 1) in
  (* serial pks: id i is row i-1 *)
  let v name = row.(col_pos tbl name) in
  match table with
  | "keyword" -> (
      let kw = Value.as_string (v "keyword") in
      match Rng.int rng 3 with
      | 0 -> [ Expr.Like (Expr.col alias "keyword", str_prefix kw ^ "%") ]
      | 1 -> [ Expr.Cmp (Expr.Eq, Expr.col alias "keyword", Expr.vstr kw) ]
      | _ ->
          [
            Expr.In_list
              ( Expr.col alias "keyword",
                [ Value.Str kw; Value.Str "hero_w1"; Value.Str "war_w2" ] );
          ])
  | "company_name" -> (
      let cc = Value.as_string (v "country_code") in
      match Rng.int rng 2 with
      | 0 -> [ Expr.Cmp (Expr.Eq, Expr.col alias "country_code", Expr.vstr cc) ]
      | _ ->
          [
            Expr.Cmp (Expr.Eq, Expr.col alias "country_code", Expr.vstr cc);
            Expr.Like (Expr.col alias "name", str_prefix (Value.as_string (v "name")) ^ "%");
          ])
  | "name" -> (
      match (v "gender", Rng.int rng 2) with
      | Value.Str g, 0 -> [ Expr.Cmp (Expr.Eq, Expr.col alias "gender", Expr.vstr g) ]
      | _ ->
          [ Expr.Like (Expr.col alias "name", str_prefix (Value.as_string (v "name")) ^ "%") ])
  | "char_name" ->
      [ Expr.Like (Expr.col alias "name", str_prefix (Value.as_string (v "name")) ^ "%") ]
  | "role_type" -> [ Expr.Cmp (Expr.Eq, Expr.col alias "role", Expr.Const (v "role")) ]
  | "company_type" -> [ Expr.Cmp (Expr.Eq, Expr.col alias "kind", Expr.Const (v "kind")) ]
  | "info_type" -> [ Expr.Cmp (Expr.Eq, Expr.col alias "info", Expr.Const (v "info")) ]
  | "kind_type" -> [ Expr.Cmp (Expr.Eq, Expr.col alias "kind", Expr.Const (v "kind")) ]
  | _ -> []

let title_filter rng cat ~witness_movie =
  let tbl = Catalog.table cat "title" in
  let row = Table.row tbl (witness_movie - 1) in
  let year = Value.as_int row.(col_pos tbl "production_year") in
  match Rng.int rng 3 with
  | 0 ->
      [
        Expr.Between
          (Expr.col "t" "production_year", Value.Int (year - 8), Value.Int (year + 8));
      ]
  | 1 -> [ Expr.Cmp (Expr.Ge, Expr.col "t" "production_year", Expr.vint (year - 20)) ]
  | _ ->
      [
        Expr.Between
          ( Expr.col "t" "production_year",
            Value.Int (year - 25),
            Value.Int (year + 25) );
        Expr.Like
          ( Expr.col "t" "title",
            str_prefix (Value.as_string row.(col_pos tbl "title")) ^ "%" );
      ]

(* fact-table filters on the witness row itself (mi.info LIKE ...) *)
let fact_filter ~alias ~table (witness_row : Value.t array) (tbl : Table.t) =
  match table with
  | "movie_info" ->
      let info = Value.as_string witness_row.(col_pos tbl "info") in
      [ Expr.Like (Expr.col alias "info", str_prefix info ^ "%") ]
  | _ -> []

let generate_one cat rng ~name ~movie_index =
  (* 1. choose the fact tables (inverse-star with ≥1, usually ≥2) *)
  let fact_pool = Array.of_list facts in
  Rng.shuffle rng fact_pool;
  let n_facts = 1 + Rng.int rng 3 + if Rng.bernoulli rng 0.55 then 1 else 0 in
  let chosen_facts = Array.to_list (Array.sub fact_pool 0 (min n_facts 4)) in
  (* 2. witness movie: one that appears in every chosen fact table *)
  let indexes =
    List.map (fun f -> (f, rows_by_movie (Catalog.table cat f.table))) chosen_facts
  in
  let movie =
    let candidates = movie_index in
    let rec search tries =
      if tries > 500 then None
      else
        let m = Value.Int (1 + Rng.int rng candidates) in
        if List.for_all (fun (_, h) -> Hashtbl.mem h m) indexes then Some m
        else search (tries + 1)
    in
    search 0
  in
  match movie with
  | None -> None
  | Some movie ->
      let witness_rows =
        List.map
          (fun (f, h) ->
            let tbl = Catalog.table cat f.table in
            let rid = List.hd (Hashtbl.find h movie) in
            (f, tbl, Table.row tbl rid))
          indexes
      in
      (* 3. relations: t + facts + a random subset of each fact's dims *)
      let rels = ref [ { Query.alias = "t"; table = "title" } ] in
      let preds = ref [] in
      let add_rel alias table = rels := { Query.alias = alias; table } :: !rels in
      let filters = ref [] in
      List.iter
        (fun (f, tbl, wrow) ->
          add_rel f.alias f.table;
          preds := Expr.eq (Expr.col f.alias "movie_id") (Expr.col "t" "id") :: !preds;
          if Rng.bernoulli rng 0.35 then
            filters := fact_filter ~alias:f.alias ~table:f.table wrow tbl @ !filters;
          List.iter
            (fun (fk_col, dim_table, dim_alias, dim_pk) ->
              let wv = wrow.(col_pos tbl fk_col) in
              let include_dim =
                (not (Value.is_null wv)) && Rng.bernoulli rng 0.65
              in
              if include_dim then begin
                add_rel dim_alias dim_table;
                preds :=
                  Expr.eq (Expr.col f.alias fk_col) (Expr.col dim_alias dim_pk)
                  :: !preds;
                if Rng.bernoulli rng 0.7 then
                  filters :=
                    dim_filter rng cat ~alias:dim_alias ~table:dim_table
                      ~witness_id:(Value.as_int wv)
                    @ !filters
              end)
            f.dims)
        witness_rows;
      (* optional kind_type dimension on title *)
      if Rng.bernoulli rng 0.3 then begin
        add_rel "kt" "kind_type";
        preds := Expr.eq (Expr.col "t" "kind_id") (Expr.col "kt" "id") :: !preds;
        let tbl = Catalog.table cat "title" in
        let kid = Value.as_int (Table.row tbl (Value.as_int movie - 1)).(col_pos tbl "kind_id") in
        filters :=
          dim_filter rng cat ~alias:"kt" ~table:"kind_type" ~witness_id:kid @ !filters
      end;
      (* redundant cycle predicate between two facts (JOB-style) *)
      (match witness_rows with
      | (f1, _, _) :: (f2, _, _) :: _ when Rng.bernoulli rng 0.4 ->
          preds :=
            Expr.eq (Expr.col f1.alias "movie_id") (Expr.col f2.alias "movie_id")
            :: !preds
      | _ -> ());
      if Rng.bernoulli rng 0.8 then
        filters := title_filter rng cat ~witness_movie:(Value.as_int movie) @ !filters;
      (* 4. output projection *)
      let output =
        [ { Expr.rel = "t"; name = "title" } ]
        @ List.filter_map
            (fun (r : Query.rel) ->
              match r.Query.alias with
              | "n" -> Some { Expr.rel = "n"; Expr.name = "name" }
              | "k" -> Some { Expr.rel = "k"; Expr.name = "keyword" }
              | "cn" -> Some { Expr.rel = "cn"; Expr.name = "name" }
              | _ -> None)
            !rels
      in
      Some (Query.make ~name ~output (List.rev !rels) (!preds @ !filters))

(* A candidate query is kept only if its true result is non-empty and not
   explosively large — JOB's 91 queries are curated the same way (all
   complete under PostgreSQL; empty-result queries are excluded). The
   check uses the weighted counter, so it is cheap even for queries whose
   *bad plans* would explode. *)
let acceptable_result_size = 500_000

let queries cat ~seed ~n =
  let rng = Rng.create seed in
  let n_title = Table.n_rows (Catalog.table cat "title") in
  let registry = Qs_stats.Stats_registry.create cat in
  let wcache = Qs_exec.Naive.make_cache () in
  let out = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  while !count < n && !attempts < n * 40 do
    incr attempts;
    let name = Printf.sprintf "cinema_%d" (!count + 1) in
    match generate_one cat rng ~name ~movie_index:n_title with
    | Some q ->
        let frag = Qs_stats.Fragment.of_query registry q in
        let true_card = Qs_exec.Naive.count ~cache:wcache frag in
        if true_card > 0 && true_card <= acceptable_result_size then begin
          out := q :: !out;
          incr count
        end
    | None -> ()
  done;
  List.rev !out
