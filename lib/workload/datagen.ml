module Value = Qs_storage.Value
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Rng = Qs_util.Rng
module Zipf = Qs_util.Zipf

let serial n = Array.init n (fun i -> Value.Int (i + 1))

let zipf_ranks rng ~n ~domain ~theta =
  let z = Zipf.create ~n:domain ~theta in
  Array.init n (fun _ -> Zipf.sample z rng)

let permutation rng n =
  let perm = Array.init n (fun i -> i + 1) in
  Rng.shuffle rng perm;
  perm

let zipf_fk rng ~n ~domain ~theta =
  (* map rank -> id through a fixed permutation so the popular ids are
     scattered, not clustered at 1..k *)
  let perm = permutation rng domain in
  let ranks = zipf_ranks rng ~n ~domain ~theta in
  Array.map (fun r -> Value.Int perm.(r)) ranks

let rank_band_fk rng ~ranks ~rank_domain ~domain ~bands ~noise =
  let band_width = max 1 (domain / bands) in
  Array.map
    (fun rank ->
      if Rng.bernoulli rng noise then Value.Int (1 + Rng.int rng domain)
      else
        let band = min (bands - 1) (rank * bands / max 1 rank_domain) in
        let lo = band * band_width in
        let width = if band = bands - 1 then domain - lo else band_width in
        Value.Int (1 + lo + Rng.int rng (max 1 width)))
    ranks

let uniform_fk rng ~n ~domain =
  Array.init n (fun _ -> Value.Int (1 + Rng.int rng domain))

let correlated_fk rng ~base ~domain ~bands ~noise =
  let band_width = max 1 (domain / bands) in
  Array.map
    (fun bv ->
      if Rng.bernoulli rng noise then Value.Int (1 + Rng.int rng domain)
      else
        let h = Hashtbl.hash (Value.to_string bv) in
        let band = h mod bands in
        let lo = band * band_width in
        let width = if band = bands - 1 then domain - lo else band_width in
        Value.Int (1 + lo + Rng.int rng (max 1 width)))
    base

let tagged_strings rng ~n ~prefixes ~pool =
  let z = Zipf.create ~n:pool ~theta:0.8 in
  Array.init n (fun _ ->
      let p = Rng.choice rng prefixes in
      Value.Str (Printf.sprintf "%s_w%d" p (Zipf.sample z rng)))

let int_between rng ~n ~lo ~hi ~skew =
  let domain = hi - lo + 1 in
  let z = Zipf.create ~n:domain ~theta:skew in
  Array.init n (fun _ -> Value.Int (hi - Zipf.sample z rng))

let with_nulls rng ~frac values =
  Array.map (fun v -> if Rng.bernoulli rng frac then Value.Null else v) values

let table ~name cols =
  match cols with
  | [] -> invalid_arg "Datagen.table: no columns"
  | (_, _, first) :: _ ->
      let n = Array.length first in
      List.iter
        (fun (cname, _, vs) ->
          if Array.length vs <> n then
            invalid_arg (Printf.sprintf "Datagen.table %s: column %s length" name cname))
        cols;
      let schema =
        Array.of_list
          (List.map (fun (cname, ty, _) -> { Schema.rel = name; name = cname; ty }) cols)
      in
      let cols_arr = Array.of_list (List.map (fun (_, _, vs) -> vs) cols) in
      let rows = Array.init n (fun i -> Array.map (fun col -> col.(i)) cols_arr) in
      Table.create ~name ~schema rows
