module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Value = Qs_storage.Value
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Rng = Qs_util.Rng

(* Grow a connected relation set by walking the FK graph: start from a
   random table, repeatedly follow an FK (either direction) to a table not
   yet chosen. Every edge used contributes its equi-join predicate, so the
   query is connected by construction. *)
let pick_relations cat rng ~max_rels =
  let fks = Catalog.fks cat in
  let tables = List.map (fun (t : Table.t) -> t.Table.name) (Catalog.tables cat) in
  let start = List.nth tables (Rng.int rng (List.length tables)) in
  let chosen = ref [ start ] in
  let edges = ref [] in
  let target = 2 + Rng.int rng (max 1 (max_rels - 1)) in
  let continue = ref true in
  while List.length !chosen < target && !continue do
    let frontier =
      List.filter
        (fun (fk : Catalog.fk) ->
          (List.mem fk.Catalog.from_table !chosen
           && not (List.mem fk.Catalog.to_table !chosen))
          || (List.mem fk.Catalog.to_table !chosen
              && not (List.mem fk.Catalog.from_table !chosen)))
        fks
    in
    match frontier with
    | [] -> continue := false
    | _ ->
        let fk = List.nth frontier (Rng.int rng (List.length frontier)) in
        let fresh =
          if List.mem fk.Catalog.from_table !chosen then fk.Catalog.to_table
          else fk.Catalog.from_table
        in
        chosen := fresh :: !chosen;
        edges := fk :: !edges
  done;
  (List.rev !chosen, List.rev !edges)

(* Filter constants come from real rows, so predicates are selective but
   rarely empty-by-construction. *)
let random_filter rng (tbl : Table.t) alias =
  let n = Table.n_rows tbl in
  if n = 0 then None
  else
    let ci = Rng.int rng (Array.length tbl.Table.schema) in
    let col = tbl.Table.schema.(ci) in
    let v = (Table.row tbl (Rng.int rng n)).(ci) in
    let cref = Expr.col alias col.Schema.name in
    match v with
    | Value.Int x ->
        let op = Rng.choice rng [| Expr.Eq; Expr.Le; Expr.Ge |] in
        Some (Expr.Cmp (op, cref, Expr.vint x))
    | Value.Str s when String.length s > 0 ->
        if Rng.bool rng then Some (Expr.Cmp (Expr.Eq, cref, Expr.vstr s))
        else
          let k = 1 + Rng.int rng (min 3 (String.length s)) in
          Some (Expr.Like (cref, String.sub s 0 k ^ "%"))
    | _ -> None

let query cat ~rng ?(max_rels = 5) ~name () =
  let rel_names, edges = pick_relations cat rng ~max_rels in
  let alias_of =
    List.mapi (fun i t -> (t, Printf.sprintf "t%d" i)) rel_names
  in
  let rels =
    List.map (fun (t, a) -> { Query.alias = a; table = t }) alias_of
  in
  let joins =
    List.map
      (fun (fk : Catalog.fk) ->
        Expr.eq
          (Expr.col (List.assoc fk.Catalog.from_table alias_of) fk.Catalog.from_column)
          (Expr.col (List.assoc fk.Catalog.to_table alias_of) fk.Catalog.to_column))
      edges
  in
  let filters =
    List.concat_map
      (fun (t, a) ->
        if Rng.bool rng then
          match random_filter rng (Catalog.table cat t) a with
          | Some f -> [ f ]
          | None -> []
        else [])
      alias_of
  in
  let output =
    if Rng.bool rng then [] (* SELECT * *)
    else
      List.concat_map
        (fun (t, a) ->
          if Rng.int rng 3 = 0 then []
          else
            let schema = (Catalog.table cat t).Table.schema in
            let c = schema.(Rng.int rng (Array.length schema)) in
            [ { Expr.rel = a; name = c.Schema.name } ])
        alias_of
  in
  Query.make ~name ~output rels (joins @ filters)

let queries cat ~seed ?max_rels ~n () =
  let rng = Rng.create seed in
  List.init n (fun i -> query cat ~rng ?max_rels ~name:(Printf.sprintf "fuzz_%d" i) ())
