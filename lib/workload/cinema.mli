(** The Cinema benchmark: an IMDB-shaped substitute for the Join Order
    Benchmark.

    Thirteen tables mirror the JOB schema's shape: a central [title]
    entity, four fact ("relationship") tables around it
    ([cast_info], [movie_keyword], [movie_companies], [movie_info]) and
    their dimension entities. Foreign keys are Zipf-skewed and several
    attributes are correlated across columns (keyword ↔ movie, company ↔
    country, info ↔ info_type, …), so the default estimator underestimates
    exactly the way it does on IMDB [25].

    Queries are generated from a seeded witness-based procedure: every
    query's filter constants are taken from one concrete "witness" join
    row, so all generated queries have non-empty results (the paper uses
    the 91 non-empty JOB queries). Shapes follow JOB: 4–10 relations,
    inverse-star patterns with several fact tables, occasional redundant
    cycle predicates (mk.movie_id = ci.movie_id). *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query

val build : ?scale:float -> seed:int -> unit -> Catalog.t
(** Tables, primary keys, foreign keys; no indexes yet — call
    {!Catalog.build_indexes} with the configuration under test. Default
    scale 1.0 ≈ 290 k rows total. *)

val queries : Catalog.t -> seed:int -> n:int -> Query.t list
(** [n] distinct SPJ queries named ["cinema_<i>"]. *)

val default_query_count : int
(** 91, as in the paper's JOB evaluation. *)
