module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Value = Qs_storage.Value
module Schema = Qs_storage.Schema
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Logical = Qs_plan.Logical
module Rng = Qs_util.Rng
module D = Datagen

let sz scale base = max 8 (int_of_float (float_of_int base *. scale))

let categories =
  [| "books"; "electronics"; "home"; "jewelry"; "music"; "shoes"; "sports"; "toys"; "women"; "men" |]

let build ?(scale = 1.0) ~seed () =
  let rng = Rng.create seed in
  let cat = Catalog.create () in
  let n_date = 2000 in
  let n_item = sz scale 3000 in
  let n_cust = sz scale 5000 in
  let n_cd = 1000 in
  let n_store = 50 in
  let n_promo = 300 in
  let n_ss = sz scale 60000 in
  let n_ws = sz scale 40000 in

  let date_dim =
    D.table ~name:"date_dim"
      [
        ("d_date_sk", Value.TInt, D.serial n_date);
        ("d_year", Value.TInt, Array.init n_date (fun i -> Value.Int (2015 + (i / 365))));
        ("d_moy", Value.TInt, Array.init n_date (fun i -> Value.Int (1 + (i / 30 mod 12))));
        ("d_dow", Value.TInt, Array.init n_date (fun i -> Value.Int (i mod 7)));
      ]
  in
  let item_cat =
    Array.init n_item (fun i -> Value.Str categories.(i * Array.length categories / n_item))
  in
  let item =
    D.table ~name:"item"
      [
        ("i_item_sk", Value.TInt, D.serial n_item);
        ("i_category", Value.TStr, item_cat);
        ( "i_brand",
          Value.TStr,
          (* brand embeds the category: filters on both correlate *)
          Array.mapi
            (fun i cv ->
              Value.Str
                (Printf.sprintf "%s_b%d" (Value.as_string cv) (i mod 12)))
            item_cat );
        ( "i_current_price",
          Value.TFloat,
          Array.init n_item (fun _ -> Value.Float (1.0 +. Rng.float rng 300.0)) );
      ]
  in
  let cd =
    D.table ~name:"customer_demographics"
      [
        ("cd_demo_sk", Value.TInt, D.serial n_cd);
        ( "cd_gender",
          Value.TStr,
          Array.init n_cd (fun i -> Value.Str (if i mod 2 = 0 then "m" else "f")) );
        ( "cd_education",
          Value.TStr,
          Array.init n_cd (fun i ->
              Value.Str [| "primary"; "secondary"; "college"; "degree"; "advanced" |].(i mod 5)) );
      ]
  in
  let customer =
    D.table ~name:"customer"
      [
        ("c_customer_sk", Value.TInt, D.serial n_cust);
        ("c_cdemo_sk", Value.TInt, D.zipf_fk rng ~n:n_cust ~domain:n_cd ~theta:0.6);
        ( "c_birth_year",
          Value.TInt,
          D.int_between rng ~n:n_cust ~lo:1930 ~hi:2005 ~skew:0.4 );
      ]
  in
  let store =
    D.table ~name:"store"
      [
        ("s_store_sk", Value.TInt, D.serial n_store);
        ( "s_state",
          Value.TStr,
          Array.init n_store (fun i ->
              Value.Str [| "ca"; "tx"; "ny"; "fl"; "wa"; "il" |].(i mod 6)) );
      ]
  in
  let promotion =
    D.table ~name:"promotion"
      [
        ("p_promo_sk", Value.TInt, D.serial n_promo);
        ( "p_channel",
          Value.TStr,
          Array.init n_promo (fun i ->
              Value.Str [| "tv"; "radio"; "press"; "web"; "mail" |].(i mod 5)) );
      ]
  in
  (* store_sales: heavily skewed item & customer, item↔date correlated *)
  let ss_item = D.zipf_fk rng ~n:n_ss ~domain:n_item ~theta:1.1 in
  let store_sales =
    D.table ~name:"store_sales"
      [
        ("ss_id", Value.TInt, D.serial n_ss);
        ( "ss_sold_date_sk",
          Value.TInt,
          D.correlated_fk rng ~base:ss_item ~domain:n_date ~bands:24 ~noise:0.35 );
        ("ss_item_sk", Value.TInt, ss_item);
        ("ss_customer_sk", Value.TInt, D.zipf_fk rng ~n:n_ss ~domain:n_cust ~theta:0.9);
        ("ss_store_sk", Value.TInt, D.zipf_fk rng ~n:n_ss ~domain:n_store ~theta:0.8);
        ( "ss_promo_sk",
          Value.TInt,
          D.with_nulls rng ~frac:0.3
            (D.correlated_fk rng ~base:ss_item ~domain:n_promo ~bands:20 ~noise:0.3) );
        ("ss_quantity", Value.TInt, Array.init n_ss (fun _ -> Value.Int (1 + Rng.int rng 100)));
        ( "ss_sales_price",
          Value.TFloat,
          Array.init n_ss (fun _ -> Value.Float (Rng.float rng 200.0)) );
      ]
  in
  let ws_item = D.zipf_fk rng ~n:n_ws ~domain:n_item ~theta:1.0 in
  let web_sales =
    D.table ~name:"web_sales"
      [
        ("ws_id", Value.TInt, D.serial n_ws);
        ( "ws_sold_date_sk",
          Value.TInt,
          D.correlated_fk rng ~base:ws_item ~domain:n_date ~bands:24 ~noise:0.4 );
        ("ws_item_sk", Value.TInt, ws_item);
        ("ws_bill_customer_sk", Value.TInt, D.zipf_fk rng ~n:n_ws ~domain:n_cust ~theta:1.0);
        ( "ws_promo_sk",
          Value.TInt,
          D.with_nulls rng ~frac:0.35
            (D.correlated_fk rng ~base:ws_item ~domain:n_promo ~bands:20 ~noise:0.3) );
        ("ws_quantity", Value.TInt, Array.init n_ws (fun _ -> Value.Int (1 + Rng.int rng 100)));
        ( "ws_sales_price",
          Value.TFloat,
          Array.init n_ws (fun _ -> Value.Float (Rng.float rng 200.0)) );
      ]
  in
  List.iter
    (fun (tbl, pk) -> Catalog.add_table cat ~pk tbl)
    [
      (date_dim, "d_date_sk"); (item, "i_item_sk"); (cd, "cd_demo_sk");
      (customer, "c_customer_sk"); (store, "s_store_sk"); (promotion, "p_promo_sk");
      (store_sales, "ss_id"); (web_sales, "ws_id");
    ];
  List.iter
    (fun (ft, fc, tt, tc) ->
      Catalog.add_fk cat ~from_table:ft ~from_column:fc ~to_table:tt ~to_column:tc)
    [
      ("customer", "c_cdemo_sk", "customer_demographics", "cd_demo_sk");
      ("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk");
      ("store_sales", "ss_item_sk", "item", "i_item_sk");
      ("store_sales", "ss_customer_sk", "customer", "c_customer_sk");
      ("store_sales", "ss_store_sk", "store", "s_store_sk");
      ("store_sales", "ss_promo_sk", "promotion", "p_promo_sk");
      ("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk");
      ("web_sales", "ws_item_sk", "item", "i_item_sk");
      ("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk");
      ("web_sales", "ws_promo_sk", "promotion", "p_promo_sk");
    ];
  cat

(* ------------------------------------------------------------------ *)
(* Query templates                                                     *)
(* ------------------------------------------------------------------ *)

let c = Expr.col
let rel alias table = { Query.alias; table }
let cref r n = { Expr.rel = r; Expr.name = n }

let rand_category rng = Rng.choice rng categories
let rand_state rng = Rng.choice rng [| "ca"; "tx"; "ny"; "fl"; "wa"; "il" |]
let rand_channel rng = Rng.choice rng [| "tv"; "radio"; "press"; "web"; "mail" |]

(* Template 1: store sales star — ss with 2-4 dimensions. *)
let t_star rng ~name =
  let rels = ref [ rel "ss" "store_sales"; rel "i" "item"; rel "d" "date_dim" ] in
  let preds =
    ref
      [
        Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk");
        Expr.eq (c "ss" "ss_sold_date_sk") (c "d" "d_date_sk");
        Expr.Cmp (Expr.Eq, c "i" "i_category", Expr.vstr (rand_category rng));
        Expr.Cmp (Expr.Eq, c "d" "d_year", Expr.vint (2015 + Rng.int rng 5));
      ]
  in
  if Rng.bernoulli rng 0.6 then begin
    rels := rel "s" "store" :: !rels;
    preds :=
      Expr.eq (c "ss" "ss_store_sk") (c "s" "s_store_sk")
      :: Expr.Cmp (Expr.Eq, c "s" "s_state", Expr.vstr (rand_state rng))
      :: !preds
  end;
  if Rng.bernoulli rng 0.5 then begin
    rels := rel "p" "promotion" :: !rels;
    preds :=
      Expr.eq (c "ss" "ss_promo_sk") (c "p" "p_promo_sk")
      :: Expr.Cmp (Expr.Eq, c "p" "p_channel", Expr.vstr (rand_channel rng))
      :: !preds
  end;
  Query.make ~name
    ~output:[ cref "i" "i_brand"; cref "ss" "ss_sales_price" ]
    (List.rev !rels) !preds

(* Template 2: customer snowflake — ss → customer → demographics. *)
let t_snowflake rng ~name =
  Query.make ~name
    ~output:[ cref "cd" "cd_education"; cref "ss" "ss_quantity" ]
    [
      rel "ss" "store_sales"; rel "cu" "customer"; rel "cd" "customer_demographics";
      rel "d" "date_dim";
    ]
    [
      Expr.eq (c "ss" "ss_customer_sk") (c "cu" "c_customer_sk");
      Expr.eq (c "cu" "c_cdemo_sk") (c "cd" "cd_demo_sk");
      Expr.eq (c "ss" "ss_sold_date_sk") (c "d" "d_date_sk");
      Expr.Cmp
        (Expr.Eq, c "cd" "cd_gender", Expr.vstr (if Rng.bool rng then "m" else "f"));
      Expr.Cmp (Expr.Le, c "d" "d_moy", Expr.vint (3 + Rng.int rng 6));
      Expr.Cmp (Expr.Gt, c "cu" "c_birth_year", Expr.vint (1950 + Rng.int rng 30));
    ]

(* Template 3: cross-channel fact-fact join (the inverse-star shape). *)
let t_cross_channel rng ~name =
  let preds =
    [
      Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk");
      Expr.eq (c "ws" "ws_item_sk") (c "i" "i_item_sk");
      Expr.eq (c "ss" "ss_customer_sk") (c "cu" "c_customer_sk");
      Expr.eq (c "ws" "ws_bill_customer_sk") (c "cu" "c_customer_sk");
      Expr.Cmp (Expr.Eq, c "i" "i_category", Expr.vstr (rand_category rng));
    ]
  in
  Query.make ~name
    ~output:[ cref "i" "i_brand"; cref "cu" "c_customer_sk" ]
    [ rel "ss" "store_sales"; rel "ws" "web_sales"; rel "i" "item"; rel "cu" "customer" ]
    (if Rng.bernoulli rng 0.5 then
       Expr.Cmp (Expr.Gt, c "ss" "ss_quantity", Expr.vint (40 + Rng.int rng 40)) :: preds
     else preds)

(* Template 4: web sales star with promotion correlation. *)
let t_web rng ~name =
  Query.make ~name
    ~output:[ cref "i" "i_category"; cref "ws" "ws_sales_price" ]
    [ rel "ws" "web_sales"; rel "i" "item"; rel "p" "promotion"; rel "d" "date_dim" ]
    [
      Expr.eq (c "ws" "ws_item_sk") (c "i" "i_item_sk");
      Expr.eq (c "ws" "ws_promo_sk") (c "p" "p_promo_sk");
      Expr.eq (c "ws" "ws_sold_date_sk") (c "d" "d_date_sk");
      Expr.Cmp (Expr.Eq, c "p" "p_channel", Expr.vstr (rand_channel rng));
      Expr.Like (c "i" "i_brand", rand_category rng ^ "_b%");
      Expr.Cmp (Expr.Ge, c "d" "d_year", Expr.vint (2016 + Rng.int rng 3));
    ]

(* Template 5: big multi-dimension star over ss. *)
let t_wide rng ~name =
  Query.make ~name
    ~output:[ cref "i" "i_brand"; cref "s" "s_state" ]
    [
      rel "ss" "store_sales"; rel "i" "item"; rel "d" "date_dim"; rel "s" "store";
      rel "cu" "customer"; rel "cd" "customer_demographics";
    ]
    [
      Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk");
      Expr.eq (c "ss" "ss_sold_date_sk") (c "d" "d_date_sk");
      Expr.eq (c "ss" "ss_store_sk") (c "s" "s_store_sk");
      Expr.eq (c "ss" "ss_customer_sk") (c "cu" "c_customer_sk");
      Expr.eq (c "cu" "c_cdemo_sk") (c "cd" "cd_demo_sk");
      Expr.Cmp (Expr.Eq, c "i" "i_category", Expr.vstr (rand_category rng));
      Expr.Cmp (Expr.Eq, c "d" "d_moy", Expr.vint (1 + Rng.int rng 12));
      Expr.Cmp
        ( Expr.Eq,
          c "cd" "cd_education",
          Expr.vstr (Rng.choice rng [| "college"; "degree"; "advanced" |]) );
    ]

let templates = [| t_star; t_snowflake; t_cross_channel; t_web; t_wide |]

let spj_queries _cat ~seed =
  let rng = Rng.create seed in
  List.init 15 (fun i ->
      let t = templates.(i mod Array.length templates) in
      t rng ~name:(Printf.sprintf "dsb_spj_%d" (i + 1)))

let nonspj_queries _cat ~seed =
  let rng = Rng.create (seed + 1) in
  let sum label s = { Logical.fn = Logical.Sum; arg = Some s; label } in
  let avg label s = { Logical.fn = Logical.Avg; arg = Some s; label } in
  let cnt label = { Logical.fn = Logical.Count_star; arg = None; label } in
  let wrap i (q : Query.t) =
    (* aggregation needs the full rows, not the SPJ projection *)
    let q = Query.make ~name:q.Query.name q.Query.rels q.Query.preds in
    let name = Printf.sprintf "dsb_q%d" i in
    let price_col =
      if List.exists (fun (r : Query.rel) -> r.Query.alias = "ws") q.Query.rels
         && not (List.exists (fun (r : Query.rel) -> r.Query.alias = "ss") q.Query.rels)
      then c "ws" "ws_sales_price"
      else c "ss" "ss_sales_price"
    in
    match i mod 4 with
    | 0 ->
        Logical.Agg
          { name; group_by = []; aggs = [ sum "total" price_col; cnt "rows" ]; input = Logical.Spj q }
    | 1 ->
        Logical.Agg
          {
            name;
            group_by = [ cref "i" "i_brand" ];
            aggs = [ sum "total" price_col ];
            input = Logical.Spj q;
          }
    | 2 ->
        Logical.Agg
          {
            name;
            group_by = [ cref "i" "i_category" ];
            aggs = [ avg "avg_price" price_col; cnt "rows" ];
            input = Logical.Spj q;
          }
    | _ ->
        Logical.Agg
          { name; group_by = []; aggs = [ cnt "rows" ]; input = Logical.Spj q }
  in
  (* 33 aggregation wrappers over template instances... *)
  let agg_queries =
    List.init 33 (fun i ->
        (* t_snowflake lacks the "i" alias grouped variants need *)
        let pool = [| t_star; t_cross_channel; t_web; t_wide |] in
        let t = pool.(i mod Array.length pool) in
        let q = t rng ~name:(Printf.sprintf "dsb_q%d_spj" (i + 1)) in
        wrap (i + 1) q)
  in
  (* ...plus 2 semi-joins, 1 anti-join and 1 union *)
  let semi1 =
    Logical.Agg
      {
        name = "dsb_q34";
        group_by = [ cref "q34s" "i_i_category" ];
        aggs = [ cnt "items" ];
        input =
          Logical.Semi
            {
              name = "q34s";
              left =
                Logical.Spj
                  (Query.make ~name:"dsb_q34_i" [ rel "i" "item" ]
                     [ Expr.Cmp (Expr.Gt, c "i" "i_current_price", Expr.vfloat 100.0) ]);
              right =
                Logical.Spj
                  (Query.make ~name:"dsb_q34_ss" [ rel "ss" "store_sales" ]
                     [ Expr.Cmp (Expr.Gt, c "ss" "ss_quantity", Expr.vint 80) ]);
              on = [ Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk") ];
            };
      }
  in
  let semi2 =
    Logical.Agg
      {
        name = "dsb_q35";
        group_by = [];
        aggs = [ cnt "customers" ];
        input =
          Logical.Semi
            {
              name = "q35s";
              left =
                Logical.Spj
                  (Query.make ~name:"dsb_q35_c" [ rel "cu" "customer" ]
                     [ Expr.Cmp (Expr.Gt, c "cu" "c_birth_year", Expr.vint 1985) ]);
              right =
                Logical.Spj
                  (Query.make ~name:"dsb_q35_ws" [ rel "ws" "web_sales" ]
                     [ Expr.Cmp (Expr.Gt, c "ws" "ws_sales_price", Expr.vfloat 150.0) ]);
              on = [ Expr.eq (c "ws" "ws_bill_customer_sk") (c "cu" "c_customer_sk") ];
            };
      }
  in
  let anti =
    Logical.Agg
      {
        name = "dsb_q36";
        group_by = [];
        aggs = [ cnt "items_never_promoted" ];
        input =
          Logical.Anti
            {
              name = "q36a";
              left =
                Logical.Spj
                  (Query.make ~name:"dsb_q36_i" [ rel "i" "item" ]
                     [ Expr.Cmp (Expr.Lt, c "i" "i_current_price", Expr.vfloat 20.0) ]);
              right =
                Logical.Spj
                  (Query.make ~name:"dsb_q36_ss"
                     [ rel "ss" "store_sales" ]
                     [ Expr.Not_null (c "ss" "ss_promo_sk") ]);
              on = [ Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk") ];
            };
      }
  in
  let union =
    Logical.Union_all
      {
        name = "dsb_q37";
        inputs =
          [
            Logical.Agg
              {
                name = "q37a";
                group_by = [ cref "i" "i_category" ];
                aggs = [ sum "rev" (c "ss" "ss_sales_price") ];
                input =
                  Logical.Spj
                    (Query.make ~name:"dsb_q37_ss"
                       [ rel "ss" "store_sales"; rel "i" "item" ]
                       [ Expr.eq (c "ss" "ss_item_sk") (c "i" "i_item_sk") ]);
              };
            Logical.Agg
              {
                name = "q37b";
                group_by = [ cref "i" "i_category" ];
                aggs = [ sum "rev" (c "ws" "ws_sales_price") ];
                input =
                  Logical.Spj
                    (Query.make ~name:"dsb_q37_ws"
                       [ rel "ws" "web_sales"; rel "i" "item" ]
                       [ Expr.eq (c "ws" "ws_item_sk") (c "i" "i_item_sk") ]);
              };
          ];
      }
  in
  agg_queries @ [ semi1; semi2; anti; union ]
