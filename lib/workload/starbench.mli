(** Starbench: a TPC-H-shaped star-schema benchmark.

    TPC-H's role in the paper (§6.3.2) is the *worst case* for
    re-optimization: a strict star schema with near-uniform data whose
    PK–FK joins are non-expanding, so the default optimizer rarely errs
    badly. Data here is deliberately uniform, unlike {!Cinema}.

    The 22 queries are all non-SPJ (aggregations over joins, two
    EXISTS/NOT EXISTS, one UNION ALL), mirroring the paper's setup where
    only the non-SPJ-capable strategies run on TPC-H. *)

module Catalog = Qs_storage.Catalog
module Logical = Qs_plan.Logical

val build : ?scale:float -> seed:int -> unit -> Catalog.t

val queries : Catalog.t -> seed:int -> Logical.t list
(** Exactly 22 logical trees named ["star_q1"] … ["star_q22"]. *)
