(** Seeded random SPJ query generation over any catalog's FK graph, for
    the differential executor tests: relation sets are grown by walking
    foreign keys (so every query is connected), and filter constants are
    sampled from real rows (so predicates are selective without being
    empty by construction). Queries may still legitimately return zero
    rows — the differential suite compares result multisets, not
    emptiness. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Rng = Qs_util.Rng

val query : Catalog.t -> rng:Rng.t -> ?max_rels:int -> name:string -> unit -> Query.t
(** One random query of 2 to [max_rels] (default 5) relations. *)

val queries : Catalog.t -> seed:int -> ?max_rels:int -> n:int -> unit -> Query.t list
(** [n] queries named [fuzz_0 .. fuzz_{n-1}], deterministic in [seed]. *)
