type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let streams ~seed n =
  let root = create seed in
  Array.init n (fun _ -> split root)

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the conversion to OCaml's 63-bit int stays positive *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let in_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, as in the standard uniform-double recipe *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  (* Box–Muller; guard against log 0. *)
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (k <= n && k >= 0);
  (* Reservoir would also work; for the small k/n used here a shuffle of a
     prefix-selected index array is simplest. *)
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
