(* Monotonic time source shared by every deadline and trace in the
   repository. [Unix.gettimeofday] is not monotonic — an NTP step can
   fire spurious [Timeout]s or produce negative elapsed times — so we
   read the OS monotonic clock (via bechamel's noalloc stub) and report
   seconds since process start. *)

let epoch = Monotonic_clock.now ()

let now () = Int64.to_float (Int64.sub (Monotonic_clock.now ()) epoch) *. 1e-9

let elapsed ~since = Float.max 0.0 (now () -. since)

let time f =
  let t0 = now () in
  let r = f () in
  (r, elapsed ~since:t0)
