(** Deterministic pseudo-random number generation (SplitMix64).

    Every data generator and every noise model in this repository draws from
    this module so that experiments are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val streams : seed:int -> int -> t array
(** [streams ~seed n] derives [n] independent generators from [seed],
    e.g. one per worker domain. Stream [i] depends only on [(seed, i)],
    never on which domain consumes it, so parallel runs stay
    reproducible. *)

val int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform over [0, bound). [bound] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform over [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform over [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] picks [k] distinct ints from
    [0, n); [k <= n]. *)
