(** Time-ordered span recording for profiling and Chrome-trace export.

    A tracer collects closed spans: named intervals tagged with a
    category, a per-domain track id, and free-form string arguments.
    Spans nest — each records the id of the span that was open on the
    same domain when it started — so exporters can rebuild the tree.

    Every emitting function takes a [t option]; passing [None] costs a
    single pattern match and nothing else, so instrumented code paths
    stay free when tracing is disabled. The recorder itself is
    mutex-guarded and safe to share across domains; spans emitted from
    pool workers land on that worker's track.

    This module lives in [Qs_util] so that [Pool] and the optimizer can
    emit spans; the observability library re-exports it as
    [Qs_obs.Span] next to the exporters ([Chrome_trace], [Profile]). *)

type category =
  | Optimize  (** one whole optimizer call (DP or greedy) *)
  | Dp_level  (** one popcount level of the DP subset enumeration *)
  | Estimate  (** time spent inside cardinality estimation *)
  | Reopt_step
      (** one iteration of a re-optimizing strategy: the journal entry
          carries the selected subquery, its score, estimated
          vs. observed cardinality and whether the remaining plan
          changed *)
  | Execute  (** one query (or SPJ block) execution *)
  | Operator  (** one plan operator, bridged from {!Qs_obs.Trace} *)
  | Pool_task  (** a pool job running on a worker domain *)
  | Pool_wait  (** time a pool job spent queued before running *)
  | Analyze  (** statistics collection on materialized temps *)
  | Dp_memo
      (** one cross-step DP-memo consultation: the marker's args carry
          the subset hit / miss counts of one optimizer call *)
  | Serve
      (** serving-front-end events: queue wait, scheduling decisions,
          deadline margin — emitted by [Qs_serve] *)
  | Io
      (** disk I/O of the out-of-core storage layer: chunk-frame faults
          and asynchronous prefetch reads issued by {!Buffer_pool} *)
  | Pipeline
      (** one pipeline segment of the morsel-driven executor: the time
          rows stream from a source through fused operators into the
          segment's sink *)
  | Breaker
      (** a pipeline breaker: hash-build, partition barrier or inner
          materialization that must consume its whole input before the
          parent pipeline can start *)

val category_name : category -> string
(** Stable kebab-case name ([optimize], [dp-level], [reopt-step], ...). *)

val all_categories : category list
(** Every category, in the fixed order used by reports. *)

type span = {
  id : int;  (** creation order, unique per tracer *)
  parent : int;  (** enclosing span id on the same domain, [-1] if none *)
  name : string;
  cat : category;
  track : int;  (** domain id of the emitting (or attributed) domain *)
  start : float;  (** seconds since the tracer was created, [>= 0] *)
  dur : float;  (** seconds, [>= 0] *)
  args : (string * string) list;
}

type t

val create : unit -> t
(** A fresh tracer; [start] values are relative to this moment. *)

val origin : t -> float
(** The {!Timer.now} value at creation (for converting absolute times). *)

val span :
  ?args:(string * string) list ->
  t option ->
  category ->
  string ->
  (unit -> 'a) ->
  'a
(** [span tracer cat name f] runs [f ()] inside a new span. The span is
    recorded even if [f] raises (the exception is re-raised). With
    [None] this is exactly [f ()]. *)

val add :
  ?args:(string * string) list ->
  ?track:int ->
  t option ->
  category ->
  string ->
  start:float ->
  dur:float ->
  unit
(** Record an externally timed interval. [start] is an absolute
    {!Timer.now} value (clamped into the tracer's lifetime); [track]
    defaults to the calling domain. The parent is whatever span is open
    on the calling domain. *)

val instant : ?args:(string * string) list -> t option -> category -> string -> unit
(** A zero-duration marker at the current time. *)

val count : t -> int
(** Number of closed spans recorded so far. *)

val spans : t -> span list
(** Closed spans sorted by [(start, id)]. Spans still open (inside
    {!span}) are not included. *)
