(** Monotonic time for deadlines, execution traces and the benchmark
    harness. All values are seconds since process start, read from the
    OS monotonic clock — immune to wall-clock steps. *)

val now : unit -> float
(** Monotonic clock in seconds since process start. *)

val elapsed : since:float -> float
(** [elapsed ~since] is [now () -. since], clamped at [>= 0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns the elapsed seconds. *)
