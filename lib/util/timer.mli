(** Wall-clock measurement helpers used by the execution traces and the
    benchmark harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns the elapsed wall-clock seconds. *)

val now : unit -> float
(** Monotonic-ish wall clock in seconds. *)
