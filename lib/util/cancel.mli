(** Cooperative cancellation tokens.

    A token is a shared flag a client (or the serving front end) sets to
    ask a running query to stop. The execution layer polls it at the
    same chunk/batch boundaries where deadlines are checked; a set token
    raises {!Cancelled} on the *executing* domain, unwinding through the
    strategy loop without poisoning any shared state (caches are filled
    under [Fun.protect] / find-or-add discipline, so an unwound
    computation simply leaves them unfilled).

    Tokens are a single atomic flag: setting one is safe from any
    domain, polling is one atomic load. *)

exception Cancelled
(** Raised by {!check} (and thus by the executor / strategies) on the
    domain running a cancelled query. *)

type t

val create : unit -> t

val cancel : t -> unit
(** Set the flag. Idempotent; safe from any domain. *)

val cancelled : t -> bool

val check : t option -> unit
(** [check (Some t)] raises {!Cancelled} if [t] is set; [check None]
    is free. The execution layer calls this next to every deadline
    check. *)
