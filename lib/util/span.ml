(* Span recording. One mutex guards the whole recorder: spans are only
   emitted at operator/iteration granularity, so contention is dwarfed
   by the work being measured. Per-domain open-span stacks give parent
   links without cross-domain coordination: a span's parent is whatever
   span the *same* domain had open when it started. *)

type category =
  | Optimize
  | Dp_level
  | Estimate
  | Reopt_step
  | Execute
  | Operator
  | Pool_task
  | Pool_wait
  | Analyze
  | Dp_memo
  | Serve
  | Io
  | Pipeline
  | Breaker

let category_name = function
  | Optimize -> "optimize"
  | Dp_level -> "dp-level"
  | Estimate -> "estimate"
  | Reopt_step -> "reopt-step"
  | Execute -> "execute"
  | Operator -> "operator"
  | Pool_task -> "pool-task"
  | Pool_wait -> "pool-wait"
  | Analyze -> "analyze"
  | Dp_memo -> "dp-memo"
  | Serve -> "serve"
  | Io -> "io"
  | Pipeline -> "pipeline"
  | Breaker -> "breaker"

let all_categories =
  [
    Optimize;
    Dp_level;
    Estimate;
    Reopt_step;
    Execute;
    Operator;
    Pool_task;
    Pool_wait;
    Analyze;
    Dp_memo;
    Serve;
    Io;
    Pipeline;
    Breaker;
  ]

type span = {
  id : int;
  parent : int;
  name : string;
  cat : category;
  track : int;
  start : float;
  dur : float;
  args : (string * string) list;
}

type t = {
  mutex : Mutex.t;
  t0 : float;
  mutable next_id : int;
  mutable recorded : span list;  (* completion order, newest first *)
  stacks : (int, int list) Hashtbl.t;  (* domain id -> open span ids *)
}

let create () =
  {
    mutex = Mutex.create ();
    t0 = Timer.now ();
    next_id = 0;
    recorded = [];
    stacks = Hashtbl.create 8;
  }

let origin t = t.t0
let domain_id () = (Domain.self () :> int)

let span ?(args = []) t cat name f =
  match t with
  | None -> f ()
  | Some t ->
      let dom = domain_id () in
      let start = Float.max 0.0 (Timer.now () -. t.t0) in
      Mutex.lock t.mutex;
      let id = t.next_id in
      t.next_id <- id + 1;
      let stack =
        match Hashtbl.find_opt t.stacks dom with Some s -> s | None -> []
      in
      let parent = match stack with [] -> -1 | p :: _ -> p in
      Hashtbl.replace t.stacks dom (id :: stack);
      Mutex.unlock t.mutex;
      Fun.protect
        ~finally:(fun () ->
          let dur = Float.max 0.0 (Timer.now () -. t.t0 -. start) in
          Mutex.lock t.mutex;
          (match Hashtbl.find_opt t.stacks dom with
          | Some (top :: rest) when top = id -> Hashtbl.replace t.stacks dom rest
          | _ -> ());
          t.recorded <-
            { id; parent; name; cat; track = dom; start; dur; args }
            :: t.recorded;
          Mutex.unlock t.mutex)
        f

let add ?(args = []) ?track t cat name ~start ~dur =
  match t with
  | None -> ()
  | Some t ->
      let dom = domain_id () in
      let track = match track with Some tr -> tr | None -> dom in
      let start = Float.max 0.0 (start -. t.t0) in
      let dur = Float.max 0.0 dur in
      Mutex.lock t.mutex;
      let id = t.next_id in
      t.next_id <- id + 1;
      let parent =
        match Hashtbl.find_opt t.stacks dom with
        | Some (p :: _) -> p
        | _ -> -1
      in
      t.recorded <- { id; parent; name; cat; track; start; dur; args } :: t.recorded;
      Mutex.unlock t.mutex

let instant ?args t cat name =
  match t with
  | None -> ()
  | Some _ -> add ?args t cat name ~start:(Timer.now ()) ~dur:0.0

let count t =
  Mutex.lock t.mutex;
  let n = List.length t.recorded in
  Mutex.unlock t.mutex;
  n

let spans t =
  Mutex.lock t.mutex;
  let all = t.recorded in
  Mutex.unlock t.mutex;
  List.sort
    (fun a b ->
      match Float.compare a.start b.start with
      | 0 -> Int.compare a.id b.id
      | c -> c)
    all
