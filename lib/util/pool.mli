(** Fixed-size [Domain]-based worker pool.

    A pool of size [n] uses the calling domain plus [n - 1] spawned
    worker domains. [map] distributes items across the pool and returns
    results in item order; if any item raises, the first failure (in
    item order) is re-raised on the caller with its backtrace.

    Jobs may call [map] recursively on the same pool: the caller helps
    drain the queue while waiting, so nested batches cannot deadlock. *)

type t

val create : ?tracer:Span.t -> domains:int -> unit -> t
(** [create ~domains ()] spawns [max 1 domains - 1] worker domains.
    [domains <= 1] yields an inline pool that runs everything on the
    calling domain.

    With [tracer], every queued job records a [pool-wait] span (time
    from enqueue to start of execution) and a [pool-task] span (the run
    itself), both on the track of the domain that ran it. Inline
    fast-path batches (pool of size 1, or a single item) bypass the
    queue and record no spans. *)

val size : t -> int
(** Total parallelism, including the calling domain. Always [>= 1]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] applies [f] to every item, in parallel across the
    pool, and returns the results in item order. [f] must be safe to
    run concurrently with itself. *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Idempotent. Outstanding
    [map] calls must have returned. *)

val with_pool : ?tracer:Span.t -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts
    it down, including on exceptions. *)
