(** Fixed-size [Domain]-based worker pool.

    A pool of size [n] uses the calling domain plus [n - 1] spawned
    worker domains. [map] distributes items across the pool and returns
    results in item order; if any item raises, the first failure (in
    item order) is re-raised on the caller with its backtrace.

    Jobs may call [map] recursively on the same pool: the caller helps
    drain the queue while waiting, so nested batches cannot deadlock. *)

type t

val create : ?tracer:Span.t -> domains:int -> unit -> t
(** [create ~domains ()] spawns [max 1 domains - 1] worker domains.
    [domains <= 1] yields an inline pool that runs everything on the
    calling domain.

    With [tracer], every queued job records a [pool-wait] span (time
    from enqueue to start of execution) and a [pool-task] span (the run
    itself), both on the track of the domain that ran it. Inline
    fast-path batches (pool of size 1, or a single item) bypass the
    queue and record no spans. *)

val size : t -> int
(** Total parallelism, including the calling domain. Always [>= 1]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] applies [f] to every item, in parallel across the
    pool, and returns the results in item order. [f] must be safe to
    run concurrently with itself. *)

val submit : t -> (unit -> unit) -> unit
(** [submit t job] enqueues a fire-and-forget job. Unlike {!map} the
    caller does not wait and no result is returned: the job must record
    its own outcome and must not raise (a stray exception is contained
    and printed to stderr rather than killing a shared worker). Job
    completion wakes every {!help_until} caller so predicates over
    state the job mutated are re-checked promptly. Jobs always go
    through the queue, even on a size-1 pool — drain them with
    {!help_until}. *)

val help_until : t -> (unit -> bool) -> unit
(** [help_until t pred] runs queued jobs on the calling domain until
    [pred ()] is true, blocking (interruptibly by job completions and
    submissions) when the queue is empty. This is how a caller waits on
    state produced by {!submit} jobs without deadlocking a size-1 pool:
    the caller itself executes the work it is waiting for. [pred] must
    be safe to call while holding the pool's internal mutex — read
    atomics, don't call back into the pool. *)

val pending : t -> int
(** Number of queued (not yet started) jobs. *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Idempotent. Outstanding
    [map] calls must have returned. *)

val with_pool : ?tracer:Span.t -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts
    it down, including on exceptions. *)
