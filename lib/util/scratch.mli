(** Typed, mutex-guarded universal cache.

    Replaces the old [(string, Obj.t) Hashtbl.t] scratch spaces: values
    are stored through a ['a slot] minted with {!slot}, and can only be
    read back through that same slot, so no unsafe casts are involved.
    All operations are safe to call from multiple domains. *)

type t

type 'a slot

val slot : unit -> 'a slot
(** Mint a new slot. Typically one per cache site, created at module
    load time. *)

val create : unit -> t

val find : t -> 'a slot -> string -> 'a option
(** [find t slot key] is the value stored under [key] through [slot],
    or [None] if absent or stored through a different slot. *)

val set : t -> 'a slot -> string -> 'a -> unit

val find_or_add : t -> 'a slot -> string -> (unit -> 'a) -> 'a
(** [find_or_add t slot key f] returns the cached value, computing and
    caching [f ()] on a miss. [f] runs outside the lock; if two domains
    race, the first write wins and both observe the same value.
    Exceptions from [f] propagate and nothing is cached. *)
