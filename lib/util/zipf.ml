type t = { n : int; cdf : float array }

let create ~n ~theta =
  assert (n > 0);
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* binary search for the first cdf entry >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let frequency t rank =
  assert (rank >= 0 && rank < t.n);
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)
