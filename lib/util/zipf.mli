(** Zipfian sampling over a finite domain.

    Used by the workload generators to create the skewed value distributions
    that make cardinality estimation hard (the property JOB and DSB stress). *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [0, n).
    [theta = 0.] degenerates to uniform; typical skew is [0.5 .. 1.2]. *)

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most frequent. *)

val frequency : t -> int -> float
(** [frequency t rank] is the probability mass of [rank]. *)
