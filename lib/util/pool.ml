(* Fixed-size domain pool with a plain FIFO queue (no work stealing).

   Three properties matter to callers:
   - deterministic ordering: [map] returns results in item order no
     matter which domain ran which item;
   - exception propagation: the first failing item's exception is
     re-raised (with its backtrace) on the calling domain;
   - nesting: a job may itself call [map] on the same pool. The caller
     always helps drain the queue while its batch is outstanding, so
     inner batches make progress even when every worker is busy.

   Publication safety: each job writes its slot in [results] and then
   decrements [remaining] (an atomic RMW); the caller only reads the
   slots after observing [remaining = 0], so the atomic pair gives the
   required happens-before edge. *)

type job = unit -> unit

type t = {
  mutex : Mutex.t;
  changed : Condition.t;
  queue : job Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
  tracer : Span.t option;
  saved_minor : int; (* caller's minor heap size, restored on shutdown *)
}

let size t = t.size

(* OCaml 5 minor collections stop the world across every registered
   domain, so merely having pool domains alive taxes any allocating
   workload in proportion to its minor-GC rate. A larger minor heap (1M
   words per domain, vs the 256k default) cuts that rate, which measures
   as ~1.5x on allocation-heavy single-threaded phases run while a pool
   is up. [Gc.set] only affects the calling domain and spawned domains
   do not inherit it, so the bump is applied on the caller here and by
   each worker on startup; the caller's original size is restored at
   [shutdown]. Never lowered: users running with OCAMLRUNPARAM=s=2M keep
   their setting. *)
let pool_minor_words = 1 lsl 20

let raise_minor () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < pool_minor_words then
    Gc.set { g with Gc.minor_heap_size = pool_minor_words };
  g.Gc.minor_heap_size

let restore_minor saved =
  let g = Gc.get () in
  if g.Gc.minor_heap_size <> saved then Gc.set { g with Gc.minor_heap_size = saved }

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.changed t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    worker t
  end

let create ?tracer ~domains () =
  let size = max 1 domains in
  let saved_minor = if size > 1 then raise_minor () else (Gc.get ()).Gc.minor_heap_size in
  let t =
    {
      mutex = Mutex.create ();
      changed = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      size;
      tracer;
      saved_minor;
    }
  in
  t.workers <-
    Array.init (size - 1) (fun _ ->
        Domain.spawn (fun () ->
            ignore (raise_minor ());
            worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  if t.size > 1 then restore_minor t.saved_minor

let with_pool ?tracer ~domains f =
  let t = create ?tracer ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else if t.size <= 1 || n = 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    (* one timestamp for the whole batch: every job is enqueued before
       any wakeup, so per-job enqueue times would differ only by the
       Queue.add loop itself *)
    let enqueued = match t.tracer with Some _ -> Timer.now () | None -> 0.0 in
    let job i () =
      (match t.tracer with
      | None -> ()
      | Some _ ->
          Span.add t.tracer Span.Pool_wait
            ~args:[ ("item", string_of_int i) ]
            "queue-wait" ~start:enqueued
            ~dur:(Timer.elapsed ~since:enqueued));
      let r =
        match
          Span.span t.tracer Span.Pool_task
            ~args:[ ("item", string_of_int i) ]
            "pool-task"
            (fun () -> f items.(i))
        with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      ignore (Atomic.fetch_and_add remaining (-1));
      (* the broadcast is under the mutex so a caller that checked
         [remaining] before our decrement is guaranteed to be parked on
         [changed] by the time we signal: no lost wakeup *)
      Mutex.lock t.mutex;
      Condition.broadcast t.changed;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    Condition.broadcast t.changed;
    Mutex.unlock t.mutex;
    while Atomic.get remaining > 0 do
      Mutex.lock t.mutex;
      let next =
        if Queue.is_empty t.queue then begin
          if Atomic.get remaining > 0 then Condition.wait t.changed t.mutex;
          None
        end
        else Some (Queue.pop t.queue)
      in
      Mutex.unlock t.mutex;
      match next with Some j -> j () | None -> ()
    done;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list
      (Array.map (function Some (Ok v) -> v | _ -> assert false) results)
  end

(* Fire-and-forget jobs for the serving front end. Unlike [map] there is
   no result slot: the job owns its outcome (the server records it in a
   per-query cell) and must not raise — a stray exception would kill a
   shared worker domain, so it is contained here. Completion broadcasts
   [changed] under the mutex, which is what wakes [help_until] callers
   whose predicate reads state the job just flipped (same no-lost-wakeup
   argument as in [map]). *)
let submit t job =
  let wrapped () =
    (try job ()
     with e ->
       prerr_endline
         ("Pool.submit: job raised (contained): " ^ Printexc.to_string e));
    Mutex.lock t.mutex;
    Condition.broadcast t.changed;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  Queue.add wrapped t.queue;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex

let help_until t pred =
  while not (pred ()) do
    Mutex.lock t.mutex;
    let next =
      if Queue.is_empty t.queue then begin
        (* re-check under the mutex: any completion that made [pred]
           true broadcasts under this mutex, so either we see it now or
           we are parked before its broadcast — no lost wakeup *)
        if not (pred ()) then Condition.wait t.changed t.mutex;
        None
      end
      else Some (Queue.pop t.queue)
    in
    Mutex.unlock t.mutex;
    match next with Some j -> j () | None -> ()
  done

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
