(* A typed, mutex-guarded universal cache.

   Each [slot ()] mints a fresh constructor of the extensible [binding]
   type, so a value stored through a slot can only be read back through
   the same slot — the projection returns [None] for every other
   constructor. This gives the "heterogeneous table" shape the executor
   scratch caches need without any [Obj.magic]/[Obj.repr]. *)

type binding = ..

type 'a slot = { inj : 'a -> binding; prj : binding -> 'a option }

let slot (type a) () =
  let module M = struct
    type binding += B of a
  end in
  {
    inj = (fun v -> M.B v);
    prj = (function M.B v -> Some v | _ -> None);
  }

type t = { mutex : Mutex.t; tbl : (string, binding) Hashtbl.t }

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 4 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t slot key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some b -> slot.prj b)

let set t slot key v =
  with_lock t (fun () -> Hashtbl.replace t.tbl key (slot.inj v))

(* The computation runs outside the lock: it may be expensive (it
   materializes tables) and may raise (deadline [Timeout]s must
   propagate without poisoning the cache). First write wins, which is
   sound because every cached computation here is deterministic. *)
let find_or_add t slot key f =
  match find t slot key with
  | Some v -> v
  | None -> (
      let v = f () in
      with_lock t (fun () ->
          match Hashtbl.find_opt t.tbl key with
          | Some b -> (
              match slot.prj b with
              | Some prior -> prior
              | None ->
                  Hashtbl.replace t.tbl key (slot.inj v);
                  v)
          | None ->
              Hashtbl.add t.tbl key (slot.inj v);
              v))
