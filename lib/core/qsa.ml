module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Join_graph = Qs_query.Join_graph

type policy = RCenter | ECenter | MinSubquery

let policy_name = function
  | RCenter -> "RCenter"
  | ECenter -> "ECenter"
  | MinSubquery -> "MinSubquery"

let all_policies = [ RCenter; ECenter; MinSubquery ]

let dedup_by_aliases subqueries =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun sq ->
      let key = String.concat "," (List.sort compare (Query.aliases sq)) in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.replace seen key ();
        true))
    subqueries

(* Vertices not appearing in any subquery become singletons; predicates not
   implied by the union get a dedicated subquery over their relations. *)
let complete_cover q subqueries =
  let covered_aliases = List.concat_map Query.aliases subqueries in
  let singletons =
    Query.aliases q
    |> List.filter (fun a -> not (List.mem a covered_aliases))
    |> List.map (fun a -> Query.restrict ~name:(q.Query.name ^ "_" ^ a) q [ a ])
  in
  let with_singletons = subqueries @ singletons in
  let union_preds = List.concat_map (fun s -> s.Query.preds) with_singletons in
  let extra =
    q.Query.preds
    |> List.filter (fun p -> not (Query.implies union_preds p))
    |> List.map (fun p ->
           Query.restrict ~name:(q.Query.name ^ "_p") q (Expr.rels_of_pred p))
  in
  dedup_by_aliases (with_singletons @ extra)

let center_split cat q ~reversed =
  let graph = Join_graph.build cat q in
  let graph = if reversed then Join_graph.reverse graph else graph in
  let centers =
    List.filter_map
      (fun v ->
        match Join_graph.out_neighbors graph v with
        | [] -> None
        | outs -> Some (v, outs))
      graph.Join_graph.vertices
  in
  let subqueries =
    List.mapi
      (fun i (center, outs) ->
        Query.restrict
          ~name:(Printf.sprintf "%s_s%d@%s" q.Query.name (i + 1) center)
          q (center :: outs))
      centers
  in
  complete_cover q subqueries

let min_split q =
  let subqueries =
    Query.join_preds q
    |> List.mapi (fun i p ->
           Query.restrict
             ~name:(Printf.sprintf "%s_m%d" q.Query.name (i + 1))
             q (Expr.rels_of_pred p))
  in
  complete_cover q (dedup_by_aliases subqueries)

let split cat q policy =
  let subqueries =
    match policy with
    | RCenter -> center_split cat q ~reversed:false
    | ECenter -> center_split cat q ~reversed:true
    | MinSubquery -> min_split q
  in
  assert (Query.covers subqueries q);
  subqueries
