module Table = Qs_storage.Table
module Query = Qs_query.Query
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Executor = Qs_exec.Executor
module Timer = Qs_util.Timer

let scale_factors = [ 0.25; 1.0; 4.0 ]

(* Scale the estimator's join cardinalities by factor^(joins): single
   inputs keep their estimates, every extra input compounds the factor. *)
let scaled factor (est : Estimator.t) =
  {
    Estimator.name = Printf.sprintf "%s*%.2g" est.Estimator.name factor;
    card =
      (fun frag ->
        let n = List.length frag.Fragment.inputs in
        if n <= 1 then est.Estimator.card frag
        else est.Estimator.card frag *. Float.pow factor (float_of_int (n - 1)));
  }

let run ctx (q : Query.t) =
  let start = Timer.now () in
  Strategy.guard ctx @@ fun () ->
  let frag = Strategy.fragment_of_query ctx q in
  let cat = Strategy.catalog ctx in
  let scenarios = List.map (fun f -> scaled f ctx.Strategy.estimator) scale_factors in
  let candidates =
    List.map
      (fun est ->
        (Optimizer.optimize ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
           ?memo:ctx.Strategy.dp_memo cat est frag)
          .Optimizer.plan)
      scenarios
  in
  let worst_case plan =
    List.fold_left
      (fun acc est -> Float.max acc (Optimizer.cost_plan cat est frag plan))
      0.0 scenarios
  in
  let plan =
    List.fold_left
      (fun best cand -> if worst_case cand < worst_case best then cand else best)
      (List.hd candidates) (List.tl candidates)
  in
  let table, _ =
    Executor.run ?deadline:!(ctx.Strategy.deadline) ?cancel:ctx.Strategy.cancel ?pool:ctx.Strategy.pool ?trace:ctx.Strategy.trace
      ?spans:ctx.Strategy.spans plan
  in
  let result = Executor.project ~name:q.Query.name table q.Query.output in
  Strategy.finished ~start ~result
    ~iterations:
      [
        {
          Strategy.index = 1;
          description = "fs:" ^ q.Query.name;
          est_rows = plan.Qs_plan.Physical.est_rows;
          actual_rows = Table.n_rows table;
          elapsed = Timer.now () -. start;
          mat_bytes = 0;
          materialized = false;
          replanned = false;
        };
      ]

let strategy = { Strategy.name = "fs"; run }
