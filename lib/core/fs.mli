(** FS [44]: robust plan selection. Candidate plans are generated under
    optimistic, neutral and pessimistic join-cardinality scalings of the
    context's estimator; each candidate is re-costed under every scenario
    and the plan with the smallest *worst-case* cost is executed
    (non-adaptively). *)

val strategy : Strategy.t

val scale_factors : float list
(** The perturbation scenarios (per additional join). *)
