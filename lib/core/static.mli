(** Non-adaptive strategies: plan once with the context's estimator and
    execute.

    [default] is PostgreSQL's behaviour (and becomes the paper's "Optimal"
    when the context carries the oracle estimator; "NeuroCard" etc. when
    it carries a learned simulator). [use_robust] is the USE baseline
    [17]: sketch-style upper-bound estimation, hash joins only (it ignores
    indexes — footnote 3 of the paper). *)

val default : Strategy.t

val use_robust : Strategy.t
