module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Temp = Qs_exec.Temp
module Timer = Qs_util.Timer
module Rng = Qs_util.Rng
module Span = Qs_util.Span

type config = {
  qsa : Qsa.policy;
  ssa : Ssa.policy;
  plan_cache : bool;
  prune_columns : bool;
}

let default_config =
  { qsa = Qsa.RCenter; ssa = Ssa.Phi4; plan_cache = true; prune_columns = true }

(* One live entry of the subquery set: the fragment plus bookkeeping. *)
type entry = {
  order : int;  (** position in the global_deep schedule *)
  label : string;
  mutable frag : Fragment.t;
}

let optimize_cached ~enabled cache ctx frag =
  let key = Fragment.key frag in
  match (enabled, Hashtbl.find_opt cache key) with
  | true, Some r -> r
  | _ ->
      let r =
        Optimizer.optimize ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
          ?memo:ctx.Strategy.dp_memo (Strategy.catalog ctx) ctx.Strategy.estimator
          frag
      in
      if enabled then Hashtbl.replace cache key r;
      r

(* The global_deep baseline order: walk the global plan's joins bottom-up;
   a subquery is scheduled at the first join whose relations it contains. *)
let global_deep_order ctx (q : Query.t) (frags : Fragment.t list) =
  let rng = Rng.create ctx.Strategy.seed in
  let global = Strategy.fragment_of_query ctx q in
  let plan =
    (Optimizer.optimize ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
       ?memo:ctx.Strategy.dp_memo (Strategy.catalog ctx) ctx.Strategy.estimator
       global)
      .plan
  in
  let unordered = ref (List.mapi (fun i f -> (i, f)) frags) in
  let ordered = ref [] in
  List.iter
    (fun (join : Physical.t) ->
      let r = join.Physical.rels in
      let matching =
        List.filter
          (fun (_, f) -> List.for_all (fun a -> List.mem a (Fragment.provides f)) r)
          !unordered
      in
      match matching with
      | [] -> ()
      | _ ->
          let pick = List.nth matching (Rng.int rng (List.length matching)) in
          ordered := fst pick :: !ordered;
          unordered := List.filter (fun (i, _) -> i <> fst pick) !unordered)
    (Physical.joins_post_order plan);
  List.rev !ordered @ List.map fst !unordered

(* Columns a materialized result must keep: whatever the rest of the query
   still references — pending predicates of the other subqueries plus the
   final projection. *)
let needed_columns (q : Query.t) (others : entry list) ~provides =
  if q.Query.output = [] then [] (* SELECT *: every column may be needed *)
  else
    let from_preds =
      List.concat_map
        (fun e -> List.concat_map Expr.cols_of_pred e.frag.Fragment.preds)
        others
    in
    let wanted = q.Query.output @ from_preds in
    let mine = List.filter (fun (c : Expr.colref) -> List.mem c.Expr.rel provides) wanted in
    (* materializing zero columns would lose the row count; fall back to all *)
    if mine = [] then [] else mine

let run config ctx (q : Query.t) =
  let start = Timer.now () in
  Strategy.guard ctx @@ fun () ->
  let subqueries = Qsa.split (Strategy.catalog ctx) q config.qsa in
  let frags = List.map (Strategy.fragment_of_query ctx) subqueries in
  let schedule =
    match config.ssa with
    | Ssa.Global_deep -> global_deep_order ctx q frags
    | _ -> List.mapi (fun i _ -> i) frags
  in
  let entries =
    List.map2
      (fun (sq : Query.t) f ->
        let idx = ref 0 in
        List.iteri (fun pos i -> if List.nth frags i == f then idx := pos) schedule;
        { order = !idx; label = sq.Query.name; frag = f })
      subqueries frags
  in
  let plan_cache = Hashtbl.create 32 in
  let fresh_temp = Temp.namer () in
  let remaining = ref entries in
  let isolated : Table.t list ref = ref [] in
  let iterations = ref [] in
  let final : Table.t option ref = ref None in
  let iter_index = ref 0 in
  while !final = None do
    incr iter_index;
    let t0 = Timer.now () in
    if !remaining = [] then begin
      (* the last executed subqueries were all absorbed into temps: the
         isolated results hold the whole answer *)
      let merged = Executor.cartesian ~name:q.Query.name (List.rev !isolated) in
      final := Some (Executor.project ~name:q.Query.name merged q.Query.output)
    end
    else begin
    (* rank all remaining subqueries with fresh optimizer calls *)
    let ranked =
      List.map
        (fun e ->
          let r = optimize_cached ~enabled:config.plan_cache plan_cache ctx e.frag in
          let score =
            match config.ssa with
            | Ssa.Global_deep -> float_of_int e.order
            | phi -> Ssa.phi phi ~cost:r.Optimizer.est_cost ~size:r.Optimizer.est_rows
          in
          (e, r, score))
        !remaining
    in
    let chosen, plan_res, chosen_score =
      List.fold_left
        (fun ((_, _, best) as acc) ((_, _, s) as cand) ->
          if s < best then cand else acc)
        (List.hd ranked) (List.tl ranked)
    in
    let table, _ =
      Executor.run ?deadline:!(ctx.Strategy.deadline) ?cancel:ctx.Strategy.cancel ?pool:ctx.Strategy.pool ?trace:ctx.Strategy.trace
        ?spans:ctx.Strategy.spans plan_res.Optimizer.plan
    in
    (* the re-optimization journal: one entry (flight step + span) per
       iteration *)
    let journal ~actual ~replanned ~remaining_n =
      Strategy.journal ctx ~score:chosen_score ~subquery:chosen.label
        ~est_rows:plan_res.Optimizer.est_rows ~actual_rows:actual ~replanned
        ~remaining:remaining_n
        ~name:(q.Query.name ^ "/" ^ chosen.label)
        ~start:t0 ()
    in
    let others = List.filter (fun e -> e != chosen) !remaining in
    remaining := others;
    let actual = Table.n_rows table in
    if others = [] then begin
      (* last subquery: merge with any isolated results and project *)
      let merged = Executor.cartesian ~name:q.Query.name (table :: List.rev !isolated) in
      let projected = Executor.project ~name:q.Query.name merged q.Query.output in
      final := Some projected;
      journal ~actual ~replanned:false ~remaining_n:0;
      iterations :=
        {
          Strategy.index = !iter_index;
          description = chosen.label;
          est_rows = plan_res.Optimizer.est_rows;
          actual_rows = actual;
          elapsed = Timer.now () -. t0;
          mat_bytes = 0;
          materialized = false;
          replanned = false;
        }
        :: !iterations
    end
    else begin
      let provides = Fragment.provides chosen.frag in
      let keep =
        if config.prune_columns then needed_columns q others ~provides else []
      in
      let name = fresh_temp () in
      let temp_tbl = Temp.materialize ~name ~keep table in
      let temp_input =
        Span.span ctx.Strategy.spans Span.Analyze ("analyze:" ^ name) (fun () ->
            Temp.to_input ~name ~provenance:(Fragment.key chosen.frag) ~provides
              ~collect_stats:ctx.Strategy.collect_stats temp_tbl)
      in
      (* the temp's aliases now carry new statistics: memoized DP entries
         over them must never be replayed *)
      (match ctx.Strategy.dp_memo with
      | Some m -> Qs_plan.Dp_memo.bump m ~aliases:provides
      | None -> ());
      (* substitute into overlapping subqueries; drop the fully-covered *)
      let overlapped = ref false in
      let survivors =
        List.filter_map
          (fun e ->
            if Fragment.overlaps e.frag provides then begin
              overlapped := true;
              let substituted = Fragment.substitute e.frag ~temp:temp_input in
              let covered =
                List.for_all (fun a -> List.mem a provides) (Fragment.provides e.frag)
              in
              if covered then None
              else begin
                e.frag <- substituted;
                Some e
              end
            end
            else Some e)
          others
      in
      remaining := survivors;
      if not !overlapped then isolated := temp_tbl :: !isolated
      else if not (List.exists (fun e -> Fragment.overlaps e.frag provides) survivors)
      then
        (* every overlapping subquery was fully covered: the temp holds
           their combined answer and nothing else references it *)
        isolated := temp_tbl :: !isolated;
      journal ~actual ~replanned:!overlapped
        ~remaining_n:(List.length survivors);
      iterations :=
        {
          Strategy.index = !iter_index;
          description = chosen.label;
          est_rows = plan_res.Optimizer.est_rows;
          actual_rows = actual;
          elapsed = Timer.now () -. t0;
          mat_bytes = Table.byte_size temp_tbl;
          materialized = true;
          replanned = true;
        }
        :: !iterations;
      (* the executor may only notice the deadline (or a cancellation)
         inside long joins; make sure iteration boundaries observe both *)
      Qs_util.Cancel.check ctx.Strategy.cancel;
      match !(ctx.Strategy.deadline) with
      | Some d when Timer.now () > d -> raise Executor.Timeout
      | _ -> ()
    end
    end
  done;
  Strategy.finished ~start ~result:(Option.get !final)
    ~iterations:(List.rev !iterations)

let strategy config =
  {
    Strategy.name =
      Printf.sprintf "querysplit(%s,%s)" (Qsa.policy_name config.qsa)
        (Ssa.policy_name config.ssa);
    run = run config;
  }

let subquery_plans ctx q config =
  let subqueries = Qsa.split (Strategy.catalog ctx) q config.qsa in
  List.map
    (fun sq ->
      let frag = Strategy.fragment_of_query ctx sq in
      let r =
        Optimizer.optimize ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
          ?memo:ctx.Strategy.dp_memo (Strategy.catalog ctx) ctx.Strategy.estimator
          frag
      in
      (sq, r.Optimizer.est_cost, r.Optimizer.est_rows))
    subqueries
