(** Executing full logical trees under a strategy (§3.3).

    The tree is segmented at non-SPJ operators and evaluated bottom-up:
    each SPJ segment runs through the given strategy; each non-SPJ
    operator consumes the materialized outputs of its children; [Let]
    bindings are registered as pseudo base relations so parent segments
    can scan them. The final outcome concatenates the iteration traces of
    all segments. *)

val run : Strategy.t -> Strategy.ctx -> Qs_plan.Logical.t -> Strategy.outcome
(** A fresh pseudo-relation scope is used per call (the context's
    [pseudo] table is cleared). A timeout in any segment times out the
    whole query. *)
