type policy = Phi1 | Phi2 | Phi3 | Phi4 | Phi5 | Global_deep

let policy_name = function
  | Phi1 -> "phi1:C"
  | Phi2 -> "phi2:C*logS"
  | Phi3 -> "phi3:C*sqrtS"
  | Phi4 -> "phi4:C*S"
  | Phi5 -> "phi5:S"
  | Global_deep -> "global_deep"

let all_phi = [ Phi1; Phi2; Phi3; Phi4; Phi5 ]

let phi policy ~cost ~size =
  let s = Float.max 2.0 size in
  match policy with
  | Phi1 -> cost
  | Phi2 -> cost *. log s
  | Phi3 -> cost *. sqrt s
  | Phi4 -> cost *. s
  | Phi5 -> size
  | Global_deep -> invalid_arg "Ssa.phi: Global_deep is not a pointwise ranking"
