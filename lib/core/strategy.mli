(** The common interface of all (re-)optimization strategies, and the
    execution context they share.

    A strategy consumes an SPJ query and produces its result plus a trace
    of re-optimization iterations: what was executed, the optimizer's
    estimate vs. the actual cardinality, the time spent and the bytes
    materialized. The traces feed the paper's Table 4 (materialization
    frequency/memory), Figures 16–19 (timelines) and Table 6
    (categorization). *)

module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry

type iteration = {
  index : int;
  description : string;  (** the subquery / subplan executed *)
  est_rows : float;  (** optimizer's estimate for its output *)
  actual_rows : int;
  elapsed : float;  (** seconds spent in this iteration *)
  mat_bytes : int;  (** bytes written to a temp table (0 = pipelined) *)
  materialized : bool;  (** counted in the Table 4 frequency *)
  replanned : bool;  (** did this iteration trigger re-optimization *)
}

type outcome = {
  result : Table.t;
  elapsed : float;
  iterations : iteration list;
  timed_out : bool;
}

type ctx = {
  registry : Stats_registry.t;
  estimator : Estimator.t;
  collect_stats : bool;  (** ANALYZE materialized temps (§6.4)? *)
  deadline : float option ref;
      (** absolute wall-clock limit; mutable so callers that account
          estimation time separately (the benchmark runner) can push it
          forward as estimation time accrues *)
  seed : int;  (** for any tie-breaking randomness *)
  pseudo : (string, Table.t * Qs_stats.Table_stats.t) Hashtbl.t;
      (** outputs of already-executed non-SPJ operators, visible to SPJ
          segments as base relations (§3.3) *)
  trace : Qs_obs.Trace.t option;
      (** when set, every executor invocation records per-node execution
          figures here (EXPLAIN ANALYZE); strategies that execute several
          plans accumulate into the same trace *)
  spans : Qs_util.Span.t option;
      (** when set, optimizer calls, executed operators and each
          re-optimization iteration (the [reopt-step] journal: selected
          subquery, score, est vs. actual rows, replanned or not) are
          recorded as time-ordered spans *)
  pool : Qs_util.Pool.t option;
      (** when set (size > 1), executor hash joins run partitioned across
          the pool's domains, and the optimizer's DP levels fan out over
          the same pool; plans and results are unchanged *)
  dp_memo : Qs_plan.Dp_memo.t option;
      (** when set, every optimizer call threads this cross-step DP memo:
          after a re-optimization step, only subsets whose cardinality
          inputs changed are re-enumerated. Plans are unchanged. Intended
          lifetime is one query (the harness creates one per query). *)
  cancel : Qs_util.Cancel.t option;
      (** when set, executor batch boundaries and re-optimization
          iteration boundaries poll this token and unwind with
          [Qs_util.Cancel.Cancelled] when it fires — cooperative
          cancellation for the serving front end. Unlike a deadline, a
          cancellation is {e not} converted into a [timed_out] outcome
          by {!guard}: it propagates to the caller. *)
  flight : Qs_obs.Flight.t option;
      (** the serving telemetry collector for this query, when admitted
          through a telemetry-enabled server: {!journal} appends each
          re-optimization step to it, with or without a tracer *)
}

type t = {
  name : string;
  run : ctx -> Query.t -> outcome;
}

val make_ctx : ?collect_stats:bool -> ?deadline:float option -> ?seed:int ->
  ?trace:Qs_obs.Trace.t -> ?spans:Qs_util.Span.t -> ?pool:Qs_util.Pool.t ->
  ?dp_memo:Qs_plan.Dp_memo.t -> ?cancel:Qs_util.Cancel.t ->
  ?flight:Qs_obs.Flight.t -> Stats_registry.t -> Estimator.t -> ctx

val journal : ctx -> ?score:float -> subquery:string -> est_rows:float ->
  actual_rows:int -> replanned:bool -> remaining:int -> name:string ->
  start:float -> unit -> unit
(** Record one re-optimization step in both observability sinks: append
    a {!Qs_obs.Flight.step} to the ambient flight record (always-on
    serving telemetry; free when no flight is attached) and emit the
    [reopt-step] span (with [subquery] / [score] / [est_rows] /
    [actual_rows] / [replanned] / [remaining] args) when a tracer is.
    [name] labels the span; [dur] is stamped as [now - start]. *)

val catalog : ctx -> Catalog.t

val fragment_of_query : ctx -> Query.t -> Fragment.t
(** Like {!Fragment.of_query} but resolving relations against the pseudo
    registry first: a relation whose table names an executed non-SPJ
    node scans that node's materialized output (as a temp — no indexes). *)

val register_pseudo : ctx -> Table.t -> unit
(** Make a (flattened) non-SPJ output visible under its table name.
    Pseudo relations always get full statistics (they act as base
    relations). *)

val guard : ctx -> (unit -> outcome) -> outcome
(** Runs the thunk, converting an executor {!Qs_exec.Executor.Timeout}
    into a [timed_out] outcome with an empty result. *)

val empty_result : Query.t -> Table.t

val finished : start:float -> result:Table.t -> iterations:iteration list -> outcome
(** Assemble a normal outcome, stamping [elapsed] from [start]. *)
