(** The plan-driven re-optimization baselines (§6.3): all of them pick
    subtrees of a *global physical plan* to execute, observe actual
    cardinalities at their respective checkpoints, and re-plan the
    remainder when the deviation is large enough. This family is exactly
    what the paper contrasts QuerySplit against — the shared weakness
    being that the reference plan itself may be far from optimal (§2.2).

    - [reopt] (Kabra & DeWitt [21]): observes only at pipeline breakers
      (results feeding a hash-join build side); q-error > 2 triggers
      re-planning. Otherwise execution continues with the current plan.
    - [pop] (Markl et al. [29]): observes at *every* join output,
      including nested-loop outers, and eagerly materializes there.
    - [ief] (Neumann & Galindo-Legaria [31]): each iteration executes the
      executable join with the highest cardinality-estimation
      *uncertainty*, then always re-plans.
    - [perron] (Perron et al. [35], the practical variant of Appendix B):
      materializes every join output, ANALYZEs it, re-plans on
      q-error > 32.
    - [optrange] (Wolf et al. [45]): like Pop, but with a wide trigger
      band approximating the plan's optimality range, so fewer
      unnecessary re-optimizations fire.

    [strategy ~selector] lets Table 5 replace each algorithm's native
    next-subplan choice with the Φ rankings of §4.2. *)

type selector =
  | Deepest  (** first executable join in execution order *)
  | Max_uncertainty  (** IEF's native choice *)
  | Phi of Ssa.policy  (** QuerySplit's ranking applied to plan nodes *)

type policy = {
  name : string;
  selector : selector;
  observe_breakers_only : bool;
  threshold : float;  (** q-error above which re-planning triggers *)
  analyze_temps : bool;  (** run ANALYZE on every checkpoint temp *)
  always_replan : bool;
  count_all_mats : bool;
      (** count every checkpoint as a materialization (Table 4), not just
          the triggered ones *)
}

val reopt : policy
val pop : policy
val ief : policy
val perron : policy
val optrange : policy

val strategy : ?selector:selector -> policy -> Strategy.t
