module Table = Qs_storage.Table
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Temp = Qs_exec.Temp
module Timer = Qs_util.Timer
module Span = Qs_util.Span

type selector =
  | Deepest
  | Max_uncertainty
  | Phi of Ssa.policy

type policy = {
  name : string;
  selector : selector;
  observe_breakers_only : bool;
  threshold : float;
  analyze_temps : bool;
  always_replan : bool;
  count_all_mats : bool;
}

let reopt =
  {
    name = "reopt";
    selector = Deepest;
    observe_breakers_only = true;
    threshold = 2.0;
    analyze_temps = false;
    always_replan = false;
    count_all_mats = false;
  }

let pop =
  {
    name = "pop";
    selector = Deepest;
    observe_breakers_only = false;
    threshold = 2.0;
    analyze_temps = false;
    always_replan = false;
    count_all_mats = true;
  }

let ief =
  {
    name = "ief";
    selector = Max_uncertainty;
    observe_breakers_only = false;
    threshold = 1.0;
    analyze_temps = false;
    always_replan = true;
    count_all_mats = true;
  }

let perron =
  {
    name = "perron19";
    selector = Deepest;
    observe_breakers_only = false;
    threshold = 32.0;
    analyze_temps = true;
    always_replan = false;
    count_all_mats = true;
  }

let optrange =
  {
    name = "optrange";
    selector = Deepest;
    observe_breakers_only = false;
    threshold = 8.0;
    analyze_temps = false;
    always_replan = false;
    count_all_mats = false;
  }

(* Executable joins: both children are scans, so the subtree can run and
   materialize without recursing into other joins. *)
let executable_joins plan =
  List.filter
    (fun (n : Physical.t) ->
      match n.Physical.node with
      | Physical.Join
          {
            left = { node = Physical.Scan _; _ };
            right = { node = Physical.Scan _; _ };
            _;
          } ->
          true
      | _ -> false)
    (Physical.joins_post_order plan)

(* Does [node] feed the build side of its parent hash join (a pipeline
   breaker in Volcano terms)? The root feeds the client: not a breaker. *)
let feeds_build plan (node : Physical.t) =
  let rec parent_of (p : Physical.t) =
    match p.Physical.node with
    | Physical.Scan _ -> None
    | Physical.Join j ->
        if j.Physical.left.Physical.id = node.Physical.id
           || j.Physical.right.Physical.id = node.Physical.id
        then Some p
        else (
          match parent_of j.Physical.left with
          | Some x -> Some x
          | None -> parent_of j.Physical.right)
  in
  match parent_of plan with
  | Some { Physical.node = Physical.Join j; _ } ->
      j.Physical.method_ = Physical.Hash
      && j.Physical.left.Physical.id = node.Physical.id
  | _ -> false

(* CE-uncertainty proxy for IEF: string-pattern filters are the least
   trustworthy estimates, then other filters, then join selectivity. *)
let rec pred_uncertainty (p : Expr.pred) =
  match p with
  | Expr.Like _ -> 2.0
  | Expr.Or ps -> 1.0 +. List.fold_left (fun a q -> a +. pred_uncertainty q) 0.0 ps
  | Expr.In_list _ -> 1.5
  | _ -> 1.0

let node_uncertainty (n : Physical.t) =
  match n.Physical.node with
  | Physical.Scan _ -> 0.0
  | Physical.Join j ->
      let scans_filters (c : Physical.t) =
        match c.Physical.node with
        | Physical.Scan i -> i.Fragment.filters
        | _ -> []
      in
      List.fold_left
        (fun a p -> a +. pred_uncertainty p)
        (float_of_int (List.length j.Physical.preds))
        (scans_filters j.Physical.left @ scans_filters j.Physical.right)

let select_node selector candidates =
  match candidates with
  | [] -> None
  | first :: _ -> (
      match selector with
      | Deepest -> Some first
      | Max_uncertainty ->
          Some
            (List.fold_left
               (fun best n ->
                 if node_uncertainty n > node_uncertainty best then n else best)
               first candidates)
      | Phi p ->
          Some
            (List.fold_left
               (fun best (n : Physical.t) ->
                 let score (m : Physical.t) =
                   Ssa.phi p ~cost:m.Physical.est_cost ~size:m.Physical.est_rows
                 in
                 if score n < score best then n else best)
               first candidates))

let qerror = Qs_obs.Qerror.value

let needed_columns (q : Query.t) (frag : Fragment.t) ~provides =
  if q.Query.output = [] then [] (* SELECT *: every column may be needed *)
  else
  let pending =
    List.filter
      (fun p ->
        not (List.for_all (fun a -> List.mem a provides) (Expr.rels_of_pred p)))
      frag.Fragment.preds
  in
  let wanted = q.Query.output @ List.concat_map Expr.cols_of_pred pending in
  List.filter (fun (c : Expr.colref) -> List.mem c.Expr.rel provides) wanted

let run policy ?selector ctx (q : Query.t) =
  let selector = Option.value selector ~default:policy.selector in
  let start = Timer.now () in
  Strategy.guard ctx @@ fun () ->
  let cat = Strategy.catalog ctx in
  let optimize frag =
    (Optimizer.optimize ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
       ?memo:ctx.Strategy.dp_memo cat ctx.Strategy.estimator frag)
      .Optimizer.plan
  in
  let fresh_temp = Temp.namer () in
  let frag = ref (Strategy.fragment_of_query ctx q) in
  let plan = ref (optimize !frag) in
  let iterations = ref [] in
  let iter_index = ref 0 in
  let finished_table = ref None in
  while !finished_table = None do
    incr iter_index;
    let t0 = Timer.now () in
    match select_node selector (executable_joins !plan) with
    | None ->
        (* no executable join left: run the remaining plan to completion *)
        let table, _ =
          Executor.run ?deadline:!(ctx.Strategy.deadline) ?cancel:ctx.Strategy.cancel ?pool:ctx.Strategy.pool ?trace:ctx.Strategy.trace
            ?spans:ctx.Strategy.spans !plan
        in
        finished_table := Some table;
        Strategy.journal ctx ~subquery:"final"
          ~est_rows:!plan.Physical.est_rows
          ~actual_rows:(Table.n_rows table) ~replanned:false ~remaining:0
          ~name:(q.Query.name ^ "/final") ~start:t0 ();
        iterations :=
          {
            Strategy.index = !iter_index;
            description = "final";
            est_rows = !plan.Physical.est_rows;
            actual_rows = Table.n_rows table;
            elapsed = Timer.now () -. t0;
            mat_bytes = 0;
            materialized = false;
            replanned = false;
          }
          :: !iterations
    | Some node ->
        let table, _ =
          Executor.run ?deadline:!(ctx.Strategy.deadline) ?cancel:ctx.Strategy.cancel ?pool:ctx.Strategy.pool ?trace:ctx.Strategy.trace
            ?spans:ctx.Strategy.spans node
        in
        let actual = Table.n_rows table in
        let observed =
          (not policy.observe_breakers_only) || feeds_build !plan node
        in
        let provides = node.Physical.rels in
        let keep = needed_columns q !frag ~provides in
        let name = fresh_temp () in
        let temp_tbl = Temp.materialize ~name ~keep table in
        let subtree_frag = Fragment.restrict !frag (Physical.leaves node) in
        (* all four baselines ANALYZE their temps by default (§6.4);
           the context flag is the experiment's off switch *)
        let collect = ctx.Strategy.collect_stats in
        ignore policy.analyze_temps;
        let temp_input =
          Span.span ctx.Strategy.spans Span.Analyze ("analyze:" ^ name) (fun () ->
              Temp.to_input ~name ~provenance:(Fragment.key subtree_frag)
                ~provides ~collect_stats:collect temp_tbl)
        in
        (match ctx.Strategy.dp_memo with
        | Some m -> Qs_plan.Dp_memo.bump m ~aliases:provides
        | None -> ());
        frag := Fragment.substitute !frag ~temp:temp_input;
        let triggered =
          observed && qerror ~est:node.Physical.est_rows ~actual > policy.threshold
        in
        let replanned = policy.always_replan || triggered in
        if replanned then plan := optimize !frag
        else begin
          let scan_replacement =
            Physical.scan temp_input ~est_rows:(float_of_int actual)
              ~est_cost:
                (Qs_plan.Cost_model.scan ~rows:(float_of_int actual) ~n_filters:0)
          in
          plan := Physical.replace !plan ~id:node.Physical.id ~by:scan_replacement
        end;
        Strategy.journal ctx
          ~subquery:(String.concat "," provides)
          ~est_rows:node.Physical.est_rows ~actual_rows:actual ~replanned
          ~remaining:(List.length (executable_joins !plan))
          ~name:
            (Printf.sprintf "%s/%s(%s)" q.Query.name policy.name
               (String.concat "," provides))
          ~start:t0 ();
        iterations :=
          {
            Strategy.index = !iter_index;
            description =
              Printf.sprintf "%s(%s)" policy.name (String.concat "," provides);
            est_rows = node.Physical.est_rows;
            actual_rows = actual;
            elapsed = Timer.now () -. t0;
            mat_bytes = Table.byte_size temp_tbl;
            materialized = policy.count_all_mats || triggered;
            replanned;
          }
          :: !iterations;
        Qs_util.Cancel.check ctx.Strategy.cancel;
        (match !(ctx.Strategy.deadline) with
        | Some d when Timer.now () > d -> raise Executor.Timeout
        | _ -> ())
  done;
  let table = Option.get !finished_table in
  let result = Executor.project ~name:q.Query.name table q.Query.output in
  Strategy.finished ~start ~result ~iterations:(List.rev !iterations)

let strategy ?selector policy =
  let name =
    match selector with
    | None | Some Deepest when policy.selector = Deepest -> policy.name
    | Some (Phi p) -> policy.name ^ "+" ^ Ssa.policy_name p
    | Some Max_uncertainty -> policy.name ^ "+maxu"
    | Some Deepest -> policy.name ^ "+deepest"
    | None -> policy.name
  in
  { Strategy.name; run = run policy ?selector }
