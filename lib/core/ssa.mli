(** The Subquery Selection Algorithm's ranking functions (§4.2, Table 2).

    At each QuerySplit iteration the remaining subqueries are optimized
    and the one minimizing Φ(C, S) — C the optimizer's cost estimate, S
    its output-cardinality estimate — executes next. Φ1…Φ5 weight S
    increasingly heavily; Φ4 = C·S is the paper's default.
    [Global_deep] instead follows the deepest join of a global physical
    plan (the §6.2 baseline) and is handled by the QuerySplit loop
    itself. *)

type policy = Phi1 | Phi2 | Phi3 | Phi4 | Phi5 | Global_deep

val policy_name : policy -> string

val all_phi : policy list
(** Φ1 … Φ5, without [Global_deep]. *)

val phi : policy -> cost:float -> size:float -> float
(** Raises [Invalid_argument] for [Global_deep] (it is not a pointwise
    ranking). Sizes are clamped at 2 under the logarithm. *)
