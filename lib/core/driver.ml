module Table = Qs_storage.Table
module Logical = Qs_plan.Logical
module Relop = Qs_exec.Relop
module Executor = Qs_exec.Executor
module Timer = Qs_util.Timer

let rec eval (strategy : Strategy.t) ctx node =
  match (node : Logical.t) with
  | Logical.Spj q ->
      let o =
        Qs_util.Span.span ctx.Strategy.spans Qs_util.Span.Execute
          ("spj:" ^ q.Qs_query.Query.name)
          (fun () -> strategy.Strategy.run ctx q)
      in
      if o.Strategy.timed_out then raise Executor.Timeout;
      (o.Strategy.result, o.Strategy.iterations)
  | Logical.Agg { name; group_by; aggs; input } ->
      let tbl, iters = eval strategy ctx input in
      (Relop.aggregate ?pool:ctx.Strategy.pool ~name ~group_by ~aggs tbl, iters)
  | Logical.Union_all { name; inputs } ->
      let results = List.map (eval strategy ctx) inputs in
      let tables = List.map fst results in
      let iters = List.concat_map snd results in
      (Relop.union_all ~name tables, iters)
  | Logical.Semi { name; left; right; on } ->
      let lt, li = eval strategy ctx left in
      let rt, ri = eval strategy ctx right in
      (Relop.semi_join ~name ~anti:false ~left:lt ~right:rt ~on, li @ ri)
  | Logical.Anti { name; left; right; on } ->
      let lt, li = eval strategy ctx left in
      let rt, ri = eval strategy ctx right in
      (Relop.semi_join ~name ~anti:true ~left:lt ~right:rt ~on, li @ ri)
  | Logical.Let { bindings; body } ->
      let iters =
        List.concat_map
          (fun b ->
            let tbl, iters = eval strategy ctx b in
            let named =
              (* SPJ outputs still carry alias qualifiers; flatten them so
                 the parent can scan the result as one relation *)
              if Logical.is_spj b then Relop.flatten ~name:(Logical.name b) tbl
              else tbl
            in
            Strategy.register_pseudo ctx named;
            iters)
          bindings
      in
      let tbl, body_iters = eval strategy ctx body in
      (tbl, iters @ body_iters)

let run strategy (ctx : Strategy.ctx) tree =
  Hashtbl.reset ctx.Strategy.pseudo;
  let start = Timer.now () in
  Strategy.guard ctx @@ fun () ->
  let result, iterations = eval strategy ctx tree in
  Strategy.finished ~start ~result ~iterations
