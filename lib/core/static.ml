module Table = Qs_storage.Table
module Query = Qs_query.Query
module Estimator = Qs_stats.Estimator
module Optimizer = Qs_plan.Optimizer
module Physical = Qs_plan.Physical
module Executor = Qs_exec.Executor
module Timer = Qs_util.Timer

let run_with ~name ?allowed ~estimator_of ctx (q : Query.t) =
  let start = Timer.now () in
  Strategy.guard ctx @@ fun () ->
  let frag = Strategy.fragment_of_query ctx q in
  let est = estimator_of ctx in
  let res =
    Optimizer.optimize ?allowed ?spans:ctx.Strategy.spans ?pool:ctx.Strategy.pool
      ?memo:ctx.Strategy.dp_memo (Strategy.catalog ctx) est frag
  in
  let table, _ =
    Executor.run ?deadline:!(ctx.Strategy.deadline) ?cancel:ctx.Strategy.cancel ?pool:ctx.Strategy.pool ?trace:ctx.Strategy.trace
      ?spans:ctx.Strategy.spans res.Optimizer.plan
  in
  let result = Executor.project ~name:q.Query.name table q.Query.output in
  Strategy.finished ~start ~result
    ~iterations:
      [
        {
          Strategy.index = 1;
          description = name ^ ":" ^ q.Query.name;
          est_rows = res.Optimizer.est_rows;
          actual_rows = Table.n_rows table;
          elapsed = Timer.now () -. start;
          mat_bytes = 0;
          materialized = false;
          replanned = false;
        };
      ]

let default =
  {
    Strategy.name = "static";
    run = run_with ~name:"static" ~estimator_of:(fun ctx -> ctx.Strategy.estimator);
  }

let use_robust =
  {
    Strategy.name = "use";
    run =
      run_with ~name:"use" ~allowed:[ Physical.Hash; Physical.Nl ]
        ~estimator_of:(fun _ -> Estimator.pessimistic);
  }
