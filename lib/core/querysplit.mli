(** QuerySplit (§3): proactive re-optimization driven by subqueries
    extracted from the logical plan.

    The loop: split the query (QSA) → optimize every remaining subquery
    with current statistics → execute the one minimizing the SSA ranking →
    materialize its output as a temp table → substitute the temp for the
    shared relations of the overlapping subqueries → repeat; isolated
    results are combined by Cartesian product at the end (§3.1,
    correctness by Theorem 1). *)

type config = {
  qsa : Qsa.policy;
  ssa : Ssa.policy;
  plan_cache : bool;
      (** reuse the plan of a subquery whose inputs did not change since
          the previous iteration (on by default; the ablation benchmark
          turns it off to measure re-invocation cost) *)
  prune_columns : bool;
      (** project materialized temps down to the columns the rest of the
          query still needs (on by default; §4.1 argues small
          materializations are central) *)
}

val default_config : config
(** RCenter + Φ4, plan cache and column pruning on — the combination §6.2
    selects. *)

val strategy : config -> Strategy.t
(** Strategy name: ["querysplit(<qsa>,<ssa>)"]. *)

val subquery_plans : Strategy.ctx -> Qs_query.Query.t -> config ->
  (Qs_query.Query.t * float * float) list
(** The initial subquery set with its (cost, cardinality) estimates — the
    observability hook used by examples and tests. *)
