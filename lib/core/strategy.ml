module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Query = Qs_query.Query
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Stats_registry = Qs_stats.Stats_registry
module Analyze = Qs_stats.Analyze
module Table_stats = Qs_stats.Table_stats
module Executor = Qs_exec.Executor
module Timer = Qs_util.Timer
module Pool = Qs_util.Pool

type iteration = {
  index : int;
  description : string;
  est_rows : float;
  actual_rows : int;
  elapsed : float;
  mat_bytes : int;
  materialized : bool;
  replanned : bool;
}

type outcome = {
  result : Table.t;
  elapsed : float;
  iterations : iteration list;
  timed_out : bool;
}

type ctx = {
  registry : Stats_registry.t;
  estimator : Estimator.t;
  collect_stats : bool;
  deadline : float option ref;
  seed : int;
  pseudo : (string, Table.t * Table_stats.t) Hashtbl.t;
  trace : Qs_obs.Trace.t option;
  spans : Qs_util.Span.t option;
  pool : Pool.t option;
  dp_memo : Qs_plan.Dp_memo.t option;
  cancel : Qs_util.Cancel.t option;
  flight : Qs_obs.Flight.t option;
}

type t = {
  name : string;
  run : ctx -> Query.t -> outcome;
}

let make_ctx ?(collect_stats = true) ?(deadline = None) ?(seed = 42) ?trace ?spans
    ?pool ?dp_memo ?cancel ?flight registry estimator =
  {
    registry; estimator; collect_stats; deadline = ref deadline; seed;
    pseudo = Hashtbl.create 8; trace; spans; pool; dp_memo; cancel; flight;
  }

(* One re-optimization journal entry, fanned out to both sinks: the
   always-on flight record (telemetry) and, when a tracer is attached,
   a [reopt-step] span whose args render in profiles. Strategies call
   this instead of hand-rolling the span. *)
let journal ctx ?score ~subquery ~est_rows ~actual_rows ~replanned ~remaining
    ~name ~start () =
  Qs_obs.Flight.step ctx.flight ?score ~subquery ~est_rows ~actual_rows
    ~replanned ~remaining ();
  let args =
    ("subquery", subquery)
    :: (match score with
       | Some s -> [ ("score", Printf.sprintf "%.6g" s) ]
       | None -> [])
    @ [
        ("est_rows", Printf.sprintf "%.0f" est_rows);
        ("actual_rows", string_of_int actual_rows);
        ("replanned", (if replanned then "yes" else "no"));
        ("remaining", string_of_int remaining);
      ]
  in
  Qs_util.Span.add ctx.spans Qs_util.Span.Reopt_step ~args name ~start
    ~dur:(Timer.elapsed ~since:start)

let catalog ctx = Stats_registry.catalog ctx.registry

let register_pseudo ctx (tbl : Table.t) =
  Hashtbl.replace ctx.pseudo tbl.Table.name (tbl, Analyze.of_table tbl)

let pseudo_input ctx ~alias ~table filters =
  let tbl, stats = Hashtbl.find ctx.pseudo table in
  {
    Fragment.id = alias;
    table = Table.rename tbl alias;
    provides = [ alias ];
    filters;
    stats = Fragment.requalify_stats alias stats;
    is_temp = true;
    base_table = None;
    provenance =
      Printf.sprintf "pseudo:%s=%s[%s]" alias table
        (String.concat " & " (List.sort compare (List.map Expr.to_string filters)));
    stats_epoch = 0;
    memo = Hashtbl.create 4;
    scratch = Qs_util.Scratch.create ();
  }

let fragment_of_query ctx (q : Query.t) =
  let cat = catalog ctx in
  let inputs =
    List.map
      (fun (r : Query.rel) ->
        let filters = Query.filters q r.Query.alias in
        if Catalog.mem_table cat r.Query.table then
          Fragment.base_input ctx.registry ~alias:r.Query.alias ~table:r.Query.table
            filters
        else if Hashtbl.mem ctx.pseudo r.Query.table then
          pseudo_input ctx ~alias:r.Query.alias ~table:r.Query.table filters
        else invalid_arg ("Strategy.fragment_of_query: unknown relation " ^ r.Query.table))
      q.Query.rels
  in
  let preds =
    List.filter (fun p -> List.length (Expr.rels_of_pred p) >= 2) q.Query.preds
  in
  { Fragment.inputs; preds; output = q.Query.output }

let empty_result (q : Query.t) =
  let schema =
    Array.of_list
      (List.map
         (fun (c : Expr.colref) ->
           { Schema.rel = c.Expr.rel; name = c.Expr.name; ty = Qs_storage.Value.TInt })
         q.Query.output)
  in
  Table.create ~name:(q.Query.name ^ "_timeout") ~schema [||]

let guard _ctx thunk =
  let start = Timer.now () in
  try thunk ()
  with Executor.Timeout ->
    {
      result = Table.create ~name:"timeout" ~schema:[||] [||];
      elapsed = Timer.now () -. start;
      iterations = [];
      timed_out = true;
    }

let finished ~start ~result ~iterations =
  { result; elapsed = Timer.now () -. start; iterations; timed_out = false }
