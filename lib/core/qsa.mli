(** The Query Splitting Algorithm (§4.1): divide an SPJ query into a
    subquery set that covers it (Definition 1).

    - [RCenter] (the paper's default, a.k.a. FK-Center): one subquery per
      join-graph vertex with outgoing edges — the relation with the
      foreign keys at the center, joined to the entities it references.
      Preserves the non-expanding PK–FK joins inside subqueries.
    - [ECenter] (PK-Center): the dual, built on the reversed join graph.
    - [MinSubquery]: one two-relation subquery per join predicate — the
      smallest possible units.

    Every subquery is the induced restriction of the original query over
    its alias set, so all predicates internal to the alias set (and the
    relations' filters) are included. The returned set always covers the
    input query; [split] asserts this. *)

module Catalog = Qs_storage.Catalog
module Query = Qs_query.Query

type policy = RCenter | ECenter | MinSubquery

val policy_name : policy -> string

val all_policies : policy list

val split : Catalog.t -> Query.t -> policy -> Query.t list
(** A single-relation query (or one whose join graph yields a single
    center covering everything) returns a singleton set — QuerySplit then
    degenerates to ordinary optimization, as the paper notes for strict
    star schemas. *)
