(** Restriction-clause selectivity estimation, PostgreSQL style.

    Selectivities of the conjuncts of a filter are *multiplied* — the
    independence assumption (§2.1). On the correlated data our workload
    generators produce, this is exactly where the systematic
    underestimation the paper exploits comes from. *)

module Expr = Qs_query.Expr

module Value = Qs_storage.Value

val default_eq_sel : float
(** Used when no statistics are available (PostgreSQL's DEFAULT_EQ_SEL). *)

val default_range_sel : float
val default_like_sel : float

val default_num_distinct : int
(** Distinct-count guess for a column with no stats
    (DEFAULT_NUM_DISTINCT). *)

val eq_sel : Column_stats.t -> Value.t -> float
(** Equality selectivity: MCV frequency when the value is in the MCV list;
    otherwise the residual (non-MCV, non-null) mass spread over the
    remaining distincts. When the MCV list covers every observed distinct,
    the estimate is the residual mass capped by the rarest MCV frequency
    (exposed for regression tests). *)

val prefix_successor : string -> string option
(** Least string strictly greater than every string with the given prefix
    ([None] when all bytes are 0xff). Used to turn a left-anchored LIKE
    into the range [p, successor p) (exposed for regression tests). *)

val like_sel : Column_stats.t option -> string -> float
(** Selectivity of [LIKE pattern] given the column's stats, if any. *)

val pred :
  stats_of:(Expr.colref -> Column_stats.t option) -> Expr.pred -> float
(** Selectivity of one predicate over the relation(s) its columns live in.
    Join predicates (two-relation equalities) are *not* handled here — see
    {!Estimator}. Result is clamped to [1e-9, 1.0]. *)

val conj :
  stats_of:(Expr.colref -> Column_stats.t option) -> Expr.pred list -> float
(** Product of the conjunct selectivities (independence assumption). *)
