(** Per-column statistics, PostgreSQL pg_statistic style: null fraction,
    distinct count, most-common values, equi-depth histogram. *)

module Value = Qs_storage.Value

type t = {
  n_values : int;  (** rows the stats were computed from *)
  null_frac : float;
  n_distinct : int;  (** distinct non-null values *)
  min_v : Value.t option;
  max_v : Value.t option;
  mcvs : (Value.t * float) list;  (** top values with frequency fractions, descending *)
  hist : Histogram.t option;
}

val of_values : ?n_mcv:int -> ?n_buckets:int -> Value.t array -> t
(** Full ANALYZE of one column (defaults: 10 MCVs, 64 buckets). *)

val mcv_total : t -> float
(** Sum of MCV frequency fractions. *)

val mcv_freq : t -> Value.t -> float option
(** Frequency fraction if the value is one of the MCVs. *)

val max_freq : t -> float
(** Frequency fraction of the most common value; falls back to [1/ndv] when
    no MCV is recorded. Used by the pessimistic (upper-bound) estimator. *)

val byte_size_hint : t -> int
(** Rough footprint of the stats themselves (reporting only). *)
