module Expr = Qs_query.Expr
module Query = Qs_query.Query

module Table = Qs_storage.Table
module Schema = Qs_storage.Schema
module Catalog = Qs_storage.Catalog
module Scratch = Qs_util.Scratch

type input = {
  id : string;
  table : Table.t;
  provides : string list;
  filters : Expr.pred list;
  stats : Table_stats.t;
  is_temp : bool;
  base_table : string option;
  provenance : string;
  stats_epoch : int;
  memo : (string, float) Hashtbl.t;
  scratch : Scratch.t;
}

type t = {
  inputs : input list;
  preds : Expr.pred list;
  output : Expr.colref list;
}

let requalify_stats alias stats =
  Table_stats.make ~n_rows:(Table_stats.n_rows stats)
    (List.map
       (fun ((c : Schema.column), cs) -> ({ c with Schema.rel = alias }, cs))
       (Table_stats.columns stats))

let base_provenance ~alias ~table filters =
  let fs = List.sort compare (List.map Expr.to_string filters) in
  Printf.sprintf "%s=%s[%s]" alias table (String.concat " & " fs)

let base_input registry ~alias ~table filters =
  let tbl = Catalog.table (Stats_registry.catalog registry) table in
  {
    id = alias;
    table = Table.rename tbl alias;
    provides = [ alias ];
    filters;
    stats = requalify_stats alias (Stats_registry.stats registry table);
    is_temp = false;
    base_table = Some table;
    provenance = base_provenance ~alias ~table filters;
    stats_epoch = Stats_registry.epoch registry table;
    memo = Hashtbl.create 4;
    scratch = Scratch.create ();
  }

let temp_input ?(stats_epoch = 0) ~id ~provenance table ~provides ~stats =
  {
    id; table; provides; filters = []; stats; is_temp = true; base_table = None;
    provenance; stats_epoch; memo = Hashtbl.create 4; scratch = Scratch.create ();
  }

let of_query registry (q : Query.t) =
  let inputs =
    List.map
      (fun (r : Query.rel) ->
        base_input registry ~alias:r.alias ~table:r.table (Query.filters q r.alias))
      q.rels
  in
  let preds = List.filter (fun p -> List.length (Expr.rels_of_pred p) >= 2) q.preds in
  { inputs; preds; output = q.output }

let provides t = List.concat_map (fun i -> i.provides) t.inputs

let find_input t id =
  match List.find_opt (fun i -> i.id = id) t.inputs with
  | Some i -> i
  | None -> invalid_arg ("Fragment.find_input: no input " ^ id)

let input_of_alias t alias =
  match List.find_opt (fun i -> List.mem alias i.provides) t.inputs with
  | Some i -> i
  | None -> invalid_arg ("Fragment.input_of_alias: no input provides " ^ alias)

let restrict t subset =
  let aliases = List.concat_map (fun i -> i.provides) subset in
  let preds =
    List.filter
      (fun p -> List.for_all (fun a -> List.mem a aliases) (Expr.rels_of_pred p))
      t.preds
  in
  let output = List.filter (fun (c : Expr.colref) -> List.mem c.rel aliases) t.output in
  { inputs = subset; preds; output }

let overlaps t aliases = List.exists (fun a -> List.mem a (provides t)) aliases

let substitute t ~temp =
  let overlapping, disjoint =
    List.partition
      (fun i -> List.exists (fun a -> List.mem a temp.provides) i.provides)
      t.inputs
  in
  if overlapping = [] then t
  else begin
    List.iter
      (fun i ->
        if not (List.for_all (fun a -> List.mem a temp.provides) i.provides) then
          invalid_arg
            (Printf.sprintf
               "Fragment.substitute: input %s only partially covered by temp %s" i.id
               temp.id))
      overlapping;
    let preds =
      List.filter
        (fun p ->
          not
            (List.for_all (fun a -> List.mem a temp.provides) (Expr.rels_of_pred p)))
        t.preds
    in
    { t with inputs = temp :: disjoint; preds }
  end

let stats_of t (c : Expr.colref) =
  List.find_opt (fun i -> List.mem c.rel i.provides) t.inputs
  |> Option.map (fun i -> Table_stats.find i.stats ~rel:c.rel ~name:c.name)
  |> Option.join

let rows_of t (c : Expr.colref) =
  List.find_opt (fun i -> List.mem c.rel i.provides) t.inputs
  |> Option.map (fun i -> Table_stats.n_rows i.stats)

let key t =
  let inputs = List.sort compare (List.map (fun i -> i.provenance) t.inputs) in
  let preds = List.sort compare (List.map Expr.to_string t.preds) in
  String.concat " | " inputs ^ " || " ^ String.concat " & " preds

let connected_components t =
  let visited = Hashtbl.create 16 in
  let linked a b =
    List.exists
      (fun p ->
        let rels = Expr.rels_of_pred p in
        List.exists (fun r -> List.mem r a.provides) rels
        && List.exists (fun r -> List.mem r b.provides) rels)
      t.preds
  in
  let rec component acc frontier =
    match frontier with
    | [] -> acc
    | i :: rest ->
        if Hashtbl.mem visited i.id then component acc rest
        else begin
          Hashtbl.replace visited i.id ();
          let adjacent =
            List.filter
              (fun j -> (not (Hashtbl.mem visited j.id)) && linked i j)
              t.inputs
          in
          component (i :: acc) (adjacent @ rest)
        end
  in
  List.filter_map
    (fun i ->
      if Hashtbl.mem visited i.id then None else Some (component [] [ i ]))
    t.inputs

let to_string t =
  let input_str i =
    let base = match i.base_table with Some b -> "=" ^ b | None -> "(temp)" in
    let filters =
      match i.filters with
      | [] -> ""
      | fs -> "{" ^ String.concat " & " (List.map Expr.to_string fs) ^ "}"
    in
    Printf.sprintf "%s%s%s" i.id base filters
  in
  Printf.sprintf "[%s] on %s"
    (String.concat ", " (List.map input_str t.inputs))
    (String.concat " & " (List.map Expr.to_string t.preds))

let pp fmt t = Format.pp_print_string fmt (to_string t)
