module Value = Qs_storage.Value

type t = { bounds : Value.t array }

let build values ~n_buckets =
  let non_null = Array.of_seq (Seq.filter (fun v -> not (Value.is_null v)) (Array.to_seq values)) in
  let n = Array.length non_null in
  if n = 0 then None
  else (
    Array.sort Value.compare non_null;
    let b = max 1 (min n_buckets n) in
    let bounds =
      Array.init (b + 1) (fun i ->
          let pos = if i = b then n - 1 else i * (n - 1) / b in
          non_null.(pos))
    in
    Some { bounds })

let n_buckets t = Array.length t.bounds - 1

let bounds t = t.bounds

let numeric = function Value.Int _ | Value.Float _ -> true | _ -> false

(* Fraction of values strictly below / at-or-below [x]. We locate x's bucket
   and interpolate linearly when the boundary values are numeric, matching
   the convert_to_scalar interpolation PostgreSQL performs. *)
let fraction t x ~inclusive =
  let b = n_buckets t in
  let bd = t.bounds in
  let cmp_lo = Value.compare x bd.(0) in
  let cmp_hi = Value.compare x bd.(b) in
  if cmp_lo < 0 || (cmp_lo = 0 && not inclusive) then 0.0
  else if cmp_hi > 0 || (cmp_hi = 0 && inclusive) then 1.0
  else begin
    (* find bucket i with bd.(i) <= x < bd.(i+1) (or last bucket) *)
    let lo = ref 0 and hi = ref (b - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Value.compare bd.(mid) x <= 0 then lo := mid else hi := mid - 1
    done;
    let i = !lo in
    let left = bd.(i) and right = bd.(i + 1) in
    let within =
      if numeric left && numeric right then
        let l = Value.as_float left and r = Value.as_float right in
        if r > l then
          let v = Value.as_float x in
          min 1.0 (max 0.0 ((v -. l) /. (r -. l)))
        else 0.5
      else 0.5
    in
    (float_of_int i +. within) /. float_of_int b
  end

let fraction_le t x = fraction t x ~inclusive:true

let fraction_lt t x = fraction t x ~inclusive:false

let fraction_between t ~lo ~hi =
  if Value.compare hi lo < 0 then 0.0
  else max 0.0 (fraction_le t hi -. fraction_lt t lo)
