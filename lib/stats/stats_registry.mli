(** Lazily-computed, cached ANALYZE statistics for the base tables of a
    catalog (PostgreSQL keeps these in pg_statistic). *)

type t

val create : Qs_storage.Catalog.t -> t

val catalog : t -> Qs_storage.Catalog.t

val stats : t -> string -> Table_stats.t
(** Stats of the named base table, computed on first request. Column stats
    are keyed by the table's own name. *)

val invalidate : t -> string -> unit
(** Drop the cached entry (tests / simulated stale-statistics scenarios). *)
