(** Lazily-computed, cached ANALYZE statistics for the base tables of a
    catalog (PostgreSQL keeps these in pg_statistic). *)

type t

val create : Qs_storage.Catalog.t -> t

val catalog : t -> Qs_storage.Catalog.t

val stats : t -> string -> Table_stats.t
(** Stats of the named base table, computed on first request. Column stats
    are keyed by the table's own name. *)

val epoch : t -> string -> int
(** Statistics epoch of the named base table: 0 until the first
    {!invalidate}, bumped by one on each. Inputs built from this registry
    are stamped with it, so plan memos keyed on the stamp miss whenever
    the table has been re-ANALYZEd since. *)

val invalidate : t -> string -> unit
(** Drop the cached entry and bump the table's epoch (tests / simulated
    stale-statistics scenarios / re-ANALYZE after data change). *)
