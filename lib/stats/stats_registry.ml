module Catalog = Qs_storage.Catalog

type t = {
  catalog : Catalog.t;
  cache : (string, Table_stats.t) Hashtbl.t;
}

let create catalog = { catalog; cache = Hashtbl.create 16 }

let catalog t = t.catalog

let stats t name =
  match Hashtbl.find_opt t.cache name with
  | Some s -> s
  | None ->
      let s = Analyze.of_table (Catalog.table t.catalog name) in
      Hashtbl.replace t.cache name s;
      s

let invalidate t name = Hashtbl.remove t.cache name
