module Catalog = Qs_storage.Catalog

type t = {
  catalog : Catalog.t;
  mutex : Mutex.t;
  cache : (string, Table_stats.t) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;
}

let create catalog =
  {
    catalog;
    mutex = Mutex.create ();
    cache = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
  }

let catalog t = t.catalog

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* One registry is shared by every harness cell, so the lazy fill must
   be guarded when cells run on separate domains. ANALYZE is held under
   the lock: it is deterministic, and racing it would only duplicate
   work. *)
let stats t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.cache name with
      | Some s -> s
      | None ->
          let s = Analyze.of_table (Catalog.table t.catalog name) in
          Hashtbl.replace t.cache name s;
          s)

let epoch t name =
  with_lock t (fun () ->
      Option.value (Hashtbl.find_opt t.epochs name) ~default:0)

let invalidate t name =
  with_lock t (fun () ->
      Hashtbl.remove t.cache name;
      Hashtbl.replace t.epochs name
        (1 + Option.value (Hashtbl.find_opt t.epochs name) ~default:0))
