module Table = Qs_storage.Table

let default_sample = 8192

(* Evenly-strided row sample; deterministic so stats are reproducible.
   Sampling is per chunk with a proportional quota — the telescoping
   [stop*sample/n - start*sample/n] quotas sum exactly to [sample], and a
   single-chunk table degenerates to one global stride. *)
let sample_rows (tbl : Table.t) sample =
  let n = Table.n_rows tbl in
  if n <= sample then Table.to_rows tbl
  else
    let quota_before start = start * sample / n in
    let parts =
      Array.init (Table.n_chunks tbl) (fun ci ->
          let chunk = Table.chunk tbl ci in
          let start = Table.chunk_offset tbl ci in
          let q = quota_before (start + Array.length chunk) - quota_before start in
          if q <= 0 then [||]
          else
            let stride = float_of_int (Array.length chunk) /. float_of_int q in
            Array.init q (fun i -> chunk.(int_of_float (float_of_int i *. stride))))
    in
    Array.concat (Array.to_list parts)

(* Scale a sampled distinct count up to the full table: values seen once in
   a small sample suggest many unseen distincts (a crude stand-in for the
   Haas–Stokes estimator PostgreSQL uses). *)
let extrapolate_distinct ~sampled ~sample_n ~total_n d =
  if sampled >= total_n || sample_n = 0 then d
  else begin
    let ratio = float_of_int d /. float_of_int sample_n in
    if ratio > 0.5 then
      (* nearly-unique column: assume proportionality *)
      int_of_float (ratio *. float_of_int total_n)
    else d
  end

let of_table ?n_mcv ?n_buckets ?(sample = default_sample) (tbl : Table.t) =
  let total_n = Table.n_rows tbl in
  let rows = sample_rows tbl sample in
  let sample_n = Array.length rows in
  let cols =
    Array.to_list tbl.schema
    |> List.mapi (fun i col ->
           let values = Array.map (fun r -> r.(i)) rows in
           let cs = Column_stats.of_values ?n_mcv ?n_buckets values in
           let cs =
             {
               cs with
               Column_stats.n_values = total_n;
               n_distinct =
                 extrapolate_distinct ~sampled:sample_n ~sample_n ~total_n
                   cs.Column_stats.n_distinct;
             }
           in
           (col, cs))
  in
  Table_stats.make ~n_rows:total_n cols

let rowcount_of_table tbl = Table_stats.rowcount_only (Table.n_rows tbl)
