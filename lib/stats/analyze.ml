module Table = Qs_storage.Table
module Chunk = Qs_storage.Chunk
module Columnar = Qs_storage.Columnar

let default_sample = 8192

(* Evenly-strided sample, built one column at a time; deterministic so
   stats are reproducible. Sampling is per chunk with a proportional
   quota — the telescoping [stop*sample/n - start*sample/n] quotas sum
   exactly to [sample], and a single-chunk table degenerates to one
   global stride. Columnar chunks are read straight from their column
   arrays (the whole column when the quota is dense, point gets
   otherwise) — no row materialization on either layout. *)
let sample_columns (tbl : Table.t) sample =
  let n = Table.n_rows tbl in
  let arity = Array.length tbl.Table.schema in
  let quota_before start = start * sample / n in
  let picks ci len =
    if n <= sample then Array.init len Fun.id
    else
      let start = Table.chunk_offset tbl ci in
      let q = quota_before (start + len) - quota_before start in
      if q <= 0 then [||]
      else
        let stride = float_of_int len /. float_of_int q in
        Array.init q (fun i -> int_of_float (float_of_int i *. stride))
  in
  let parts = Array.init arity (fun _ -> ref []) in
  let sample_n = ref 0 in
  Table.iter_chunk_data
    (fun ci chunk ->
      let len = Chunk.n_rows chunk in
      let sel = picks ci len in
      if Array.length sel > 0 then begin
        sample_n := !sample_n + Array.length sel;
        match Chunk.columnar chunk with
        | Some col ->
            for j = 0 to arity - 1 do
              let vals =
                if Array.length sel = len then Columnar.column_values col j
                else Array.map (fun i -> Columnar.get col ~row:i ~col:j) sel
              in
              parts.(j) := vals :: !(parts.(j))
            done
        | None ->
            let rows = Chunk.rows chunk in
            for j = 0 to arity - 1 do
              parts.(j) := Array.map (fun i -> rows.(i).(j)) sel :: !(parts.(j))
            done
      end)
    tbl;
  (!sample_n, Array.map (fun p -> Array.concat (List.rev !p)) parts)

(* Scale a sampled distinct count up to the full table: values seen once in
   a small sample suggest many unseen distincts (a crude stand-in for the
   Haas–Stokes estimator PostgreSQL uses). *)
let extrapolate_distinct ~sampled ~sample_n ~total_n d =
  if sampled >= total_n || sample_n = 0 then d
  else begin
    let ratio = float_of_int d /. float_of_int sample_n in
    if ratio > 0.5 then
      (* nearly-unique column: assume proportionality *)
      int_of_float (ratio *. float_of_int total_n)
    else d
  end

let of_table ?n_mcv ?n_buckets ?(sample = default_sample) (tbl : Table.t) =
  let total_n = Table.n_rows tbl in
  let sample_n, columns = sample_columns tbl sample in
  let cols =
    Array.to_list tbl.schema
    |> List.mapi (fun i col ->
           let cs = Column_stats.of_values ?n_mcv ?n_buckets columns.(i) in
           let cs =
             {
               cs with
               Column_stats.n_values = total_n;
               n_distinct =
                 extrapolate_distinct ~sampled:sample_n ~sample_n ~total_n
                   cs.Column_stats.n_distinct;
             }
           in
           (col, cs))
  in
  Table_stats.make ~n_rows:total_n cols

let rowcount_of_table tbl = Table_stats.rowcount_only (Table.n_rows tbl)
