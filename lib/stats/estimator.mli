(** Cardinality estimators.

    An estimator maps a fragment (any sub-join of the current query state)
    to an estimated output row count; the optimizer's dynamic programming
    consults it for every connected subset it enumerates. All of the
    paper's estimation regimes are provided:

    - {!default}: PostgreSQL-style — histogram/MCV restriction selectivity
      multiplied under the independence assumption, equi-join selectivity
      1/max(ndv); this is the estimator whose errors re-optimization
      corrects.
    - {!oracle}: true cardinalities, obtained by actually executing the
      fragment (memoized). Feeding it to the optimizer yields the paper's
      "Optimal" baseline.
    - {!noisy}: err_card = 2^N(µ,σ²) · true_card — the controlled-error
      injection of the robustness test (Fig. 10). Deterministic per
      fragment for a given seed.
    - {!pessimistic}: upper-bound estimation in the spirit of Cai et al.
      [7] — join growth bounded by maximum key frequency.
    - {!learned}: simulators of NeuroCard / DeepDB / MSCN — near-true
      estimates on fragments they support, falling back to {!default} on
      string predicates (and, for MSCN, on joins wider than its training
      templates), reproducing the fallback behaviour the paper reports on
      JOB. *)

module Expr = Qs_query.Expr

type t = { name : string; card : Fragment.t -> float }

type exec_fn = Fragment.t -> int
(** Counts the true output cardinality of a fragment (supplied by the
    executor layer; estimators stay executor-agnostic). *)

val default : t

val oracle : exec:exec_fn -> t
(** Shares one global memo table per [exec] function instance. *)

val noisy : seed:int -> mu:float -> sigma:float -> exec:exec_fn -> t

val pessimistic : t

type learned_kind = Neurocard | Deepdb | Mscn

val learned : learned_kind -> seed:int -> exec:exec_fn -> t

val supports_learned : learned_kind -> Fragment.t -> bool
(** Whether the simulated model covers the fragment (no string predicates;
    MSCN additionally requires at most 5 relations). Exposed for tests. *)

val join_pred_selectivity : Fragment.t -> Expr.pred -> float
(** The default estimator's selectivity for one cross-input predicate
    (exposed for the cost model and tests). *)

val filtered_rows : Fragment.input -> float
(** The default estimator's post-filter row estimate for one input. *)
