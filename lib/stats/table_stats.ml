module Schema = Qs_storage.Schema

type t = {
  n_rows : int;
  cols : (Schema.column * Column_stats.t) list;
}

let make ~n_rows cols = { n_rows; cols }

let rowcount_only n_rows = { n_rows; cols = [] }

let n_rows t = t.n_rows

let has_column_stats t = t.cols <> []

let find t ~rel ~name =
  List.find_opt (fun ((c : Schema.column), _) -> c.rel = rel && c.name = name) t.cols
  |> Option.map snd

let columns t = t.cols

let byte_size_hint t =
  16 + List.fold_left (fun a (_, cs) -> a + Column_stats.byte_size_hint cs) 0 t.cols
