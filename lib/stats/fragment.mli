(** Planning fragments: the unit the optimizer, the executor and every
    cardinality estimator operate on.

    A fragment is a set of *inputs* (base-table instances or materialized
    temporaries, each carrying its own filters and known statistics) plus
    the join predicates across them. A freshly parsed SPJ query becomes a
    fragment whose inputs are all base relations; as QuerySplit (or any
    re-optimization baseline) materializes intermediate results, inputs get
    replaced by temp-table inputs and the fragment shrinks. *)

module Expr = Qs_query.Expr
module Query = Qs_query.Query

module Table = Qs_storage.Table
module Catalog = Qs_storage.Catalog

type input = {
  id : string;  (** unique within the fragment: the alias, or a temp name *)
  table : Table.t;  (** schema columns are qualified by original aliases *)
  provides : string list;  (** original query aliases this input covers *)
  filters : Expr.pred list;  (** single-input predicates, not yet applied *)
  stats : Table_stats.t;  (** what the optimizer currently knows *)
  is_temp : bool;
  base_table : string option;  (** catalog name when scanning a base table *)
  provenance : string;
      (** logical identity: for a base input, alias/table/filters; for a
          temp, the {!key} of the fragment that was materialized into it.
          Lets logically-equal fragments share one oracle memo entry. *)
  stats_epoch : int;
      (** statistics generation of the input: base inputs carry the
          registry's per-table epoch (bumped by
          {!Stats_registry.invalidate}, i.e. re-ANALYZE), temps the epoch
          given at construction. Part of DP-memo keys — same provenance
          at a newer epoch must not reuse memoized subplans. *)
  memo : (string, float) Hashtbl.t;
      (** scratch cache for estimator-derived per-input quantities
          (post-filter rows, per-column effective ndv); keyed by a label
          chosen by the estimator. Never part of the input's identity. *)
  scratch : Qs_util.Scratch.t;
      (** typed per-input cache for the execution layer (filtered rows,
          weighted groupings), keyed by the producing computation; safe
          because tables are immutable, and mutex-guarded so domains can
          share an input. Never part of the input's identity. *)
}

type t = {
  inputs : input list;
  preds : Expr.pred list;  (** predicates spanning two or more inputs *)
  output : Expr.colref list;  (** projection; empty = all columns *)
}

val base_input : Stats_registry.t -> alias:string -> table:string -> Expr.pred list -> input
(** An input scanning a base table under a query alias: the schema and the
    cached table statistics are requalified to the alias. *)

val temp_input : ?stats_epoch:int -> id:string -> provenance:string -> Table.t ->
  provides:string list -> stats:Table_stats.t -> input
(** An input scanning a materialized temporary. Its schema must already
    carry the original alias qualifiers. [stats_epoch] (default 0)
    distinguishes re-materializations sharing a provenance. *)

val requalify_stats : string -> Table_stats.t -> Table_stats.t
(** Re-key every column's stats under a new relation qualifier (used when
    a table is scanned under a query alias). *)

val of_query : Stats_registry.t -> Query.t -> t
(** The initial fragment of an SPJ query: one base input per relation, with
    the query's single-relation predicates attached as input filters. *)

val provides : t -> string list

val find_input : t -> string -> input
(** By input id; raises [Invalid_argument] when absent. *)

val input_of_alias : t -> string -> input
(** The input providing the given original alias. *)

val restrict : t -> input list -> t
(** Sub-fragment over the given inputs: keeps exactly the predicates fully
    contained in their combined aliases; output restricted likewise. *)

val substitute : t -> temp:input -> t
(** Replaces every input overlapping [temp.provides] by [temp] (each such
    input's aliases must be contained in [temp.provides]) and drops the
    predicates that became internal to [temp] — the paper's
    result-substitution step (§3.1). Returns the fragment unchanged when
    nothing overlaps. *)

val overlaps : t -> string list -> bool
(** Does the fragment share any alias with the given set? *)

val stats_of : t -> Expr.colref -> Column_stats.t option
(** Column-stats lookup across all inputs (None when the owning input has
    row-count-only statistics). *)

val rows_of : t -> Expr.colref -> int option
(** Row count of the input providing the column. *)

val key : t -> string
(** Canonical identity of the *logical* fragment — sorted input
    provenances plus sorted cross-input predicates. Projection is excluded
    (it does not change cardinality). *)

val connected_components : t -> input list list
(** Groups of inputs connected by the fragment's predicates. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
