(** Equi-depth histograms, as PostgreSQL keeps per column.

    Built over the non-null values of a column; answers cumulative-fraction
    questions for range selectivity estimation. *)

module Value = Qs_storage.Value

type t

val build : Value.t array -> n_buckets:int -> t option
(** [None] when there are no non-null values. The input need not be
    sorted. *)

val n_buckets : t -> int

val bounds : t -> Value.t array
(** [n_buckets + 1] ascending bucket boundaries. *)

val fraction_le : t -> Value.t -> float
(** Estimated fraction of (non-null) values [<= x], with linear
    interpolation inside numeric buckets. *)

val fraction_lt : t -> Value.t -> float

val fraction_between : t -> lo:Value.t -> hi:Value.t -> float
(** Inclusive range fraction; 0 when [hi < lo]. *)
