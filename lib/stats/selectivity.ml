module Expr = Qs_query.Expr

module Value = Qs_storage.Value

let default_eq_sel = 0.005
let default_range_sel = 1.0 /. 3.0
let default_like_sel = 0.005
let default_num_distinct = 200

let clamp s = Float.min 1.0 (Float.max 1e-9 s)

(* A scalar that folds to a constant (literals and arithmetic on them). *)
let const_value = function
  | Expr.Const v -> Some v
  | Expr.Col _ -> None
  | Expr.Arith _ as s -> (
      (* evaluate on an empty row: only succeeds if no columns involved *)
      match Expr.eval_scalar [||] [||] s with
      | v -> Some v
      | exception _ -> None)

let eq_sel (cs : Column_stats.t) v =
  match Column_stats.mcv_freq cs v with
  | Some f -> f
  | None ->
      let others = Float.max 0.0 (1.0 -. Column_stats.mcv_total cs -. cs.null_frac) in
      let rest_distinct = cs.n_distinct - List.length cs.mcvs in
      if rest_distinct > 0 then others /. float_of_int rest_distinct
      else
        (* The MCV list covers every observed distinct value, so a value
           outside it is at most as frequent as the residual mass — and no
           more common than the rarest MCV (falling back to default_eq_sel
           here overestimated full-coverage columns by orders of magnitude,
           e.g. 0.005 for a miss against a 10-value complete MCV list). *)
        let rarest =
          List.fold_left (fun a (_, f) -> Float.min a f) 1.0 cs.mcvs
        in
        Float.min others rarest

let range_sel (cs : Column_stats.t) op v =
  match cs.hist with
  | None -> default_range_sel
  | Some h -> (
      let nonnull = 1.0 -. cs.null_frac in
      match op with
      | Expr.Lt -> Histogram.fraction_lt h v *. nonnull
      | Expr.Le -> Histogram.fraction_le h v *. nonnull
      | Expr.Gt -> (1.0 -. Histogram.fraction_le h v) *. nonnull
      | Expr.Ge -> (1.0 -. Histogram.fraction_lt h v) *. nonnull
      | _ -> default_range_sel)

(* Least string strictly greater than every string with prefix [p]:
   increment the last byte that is not 0xff and drop what follows. [None]
   when every byte is 0xff (no finite successor exists). *)
let prefix_successor p =
  let n = ref (String.length p) in
  while !n > 0 && p.[!n - 1] = '\xff' do decr n done;
  if !n = 0 then None
  else
    let n = !n in
    Some (String.init n (fun i -> if i = n - 1 then Char.chr (Char.code p.[i] + 1) else p.[i]))

(* LIKE selectivity: a left-anchored pattern behaves like a range over the
   prefix; otherwise use a fixed default scaled by pattern restrictiveness,
   following the spirit of PostgreSQL's patternsel. *)
let like_sel (cs : Column_stats.t option) pattern =
  let prefix =
    let buf = Buffer.create 8 in
    (try
       String.iter
         (fun c -> if c = '%' || c = '_' then raise Exit else Buffer.add_char buf c)
         pattern
     with Exit -> ());
    Buffer.contents buf
  in
  match (cs, prefix) with
  | Some cs, p when String.length p > 0 -> (
      match (cs.hist, prefix_successor p) with
      | Some h, Some succ ->
          (* [p, succ): every string with the prefix, and nothing else.
             (The old bound [p ^ "\xff"] under-covered: e.g. "ab\xffz" has
             prefix "ab" but sorts above "ab\xff".) *)
          let frac =
            Float.max 0.0
              (Histogram.fraction_lt h (Value.Str succ)
              -. Histogram.fraction_lt h (Value.Str p))
          in
          let residual_wildcards =
            String.length pattern - String.length p > 1
          in
          clamp (frac *. if residual_wildcards then 0.5 else 1.0)
      | _ -> default_like_sel)
  | _ -> default_like_sel

let flip = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | op -> op

let rec pred ~(stats_of : Expr.colref -> Column_stats.t option) p =
  clamp
    (match p with
    | Expr.Cmp (op, Expr.Col c, rhs) -> (
        match const_value rhs with
        | Some v -> cmp_col_const ~stats_of c op v
        | None -> non_const_cmp ~stats_of p)
    | Expr.Cmp (op, lhs, Expr.Col c) -> (
        match const_value lhs with
        | Some v -> cmp_col_const ~stats_of c (flip op) v
        | None -> non_const_cmp ~stats_of p)
    | Expr.Cmp _ -> default_eq_sel
    | Expr.Between (Expr.Col c, lo, hi) -> (
        match stats_of c with
        | Some cs -> (
            match cs.hist with
            | Some h -> Histogram.fraction_between h ~lo ~hi *. (1.0 -. cs.null_frac)
            | None -> default_range_sel)
        | None -> default_range_sel)
    | Expr.Between _ -> default_range_sel
    | Expr.In_list (Expr.Col c, vs) -> (
        match stats_of c with
        | Some cs -> List.fold_left (fun a v -> a +. eq_sel cs v) 0.0 vs
        | None -> default_eq_sel *. float_of_int (List.length vs))
    | Expr.In_list _ -> default_eq_sel
    | Expr.Like (Expr.Col c, pat) -> like_sel (stats_of c) pat
    | Expr.Like _ -> default_like_sel
    | Expr.Is_null (Expr.Col c) -> (
        match stats_of c with Some cs -> cs.null_frac | None -> 0.01)
    | Expr.Is_null _ -> 0.01
    | Expr.Not_null (Expr.Col c) -> (
        match stats_of c with Some cs -> 1.0 -. cs.null_frac | None -> 0.99)
    | Expr.Not_null _ -> 0.99
    | Expr.Or ps ->
        (* P(or) = 1 - prod(1 - s_i), still assuming independence *)
        1.0 -. List.fold_left (fun a q -> a *. (1.0 -. pred ~stats_of q)) 1.0 ps)

and cmp_col_const ~stats_of c op v =
  match stats_of c with
  | None -> (
      match op with
      | Expr.Eq -> default_eq_sel
      | Expr.Ne -> 1.0 -. default_eq_sel
      | _ -> default_range_sel)
  | Some cs -> (
      match op with
      | Expr.Eq -> eq_sel cs v
      | Expr.Ne -> 1.0 -. eq_sel cs v -. cs.null_frac
      | _ -> range_sel cs op v)

and non_const_cmp ~stats_of p =
  (* column-vs-column within one relation, or other shapes with no constant *)
  ignore stats_of;
  match p with
  | Expr.Cmp (Expr.Eq, _, _) -> default_eq_sel
  | _ -> default_range_sel

let conj ~stats_of ps = clamp (List.fold_left (fun a p -> a *. pred ~stats_of p) 1.0 ps)
