(** Statistics for a whole relation: the row count plus (optionally)
    per-column statistics.

    The "row count only" form models the paper's §6.4 setting where the
    statistics collector is disabled for materialized intermediate results
    and the optimizer learns nothing but the cardinality. *)

type t

val make : n_rows:int -> (Qs_storage.Schema.column * Column_stats.t) list -> t

val rowcount_only : int -> t

val n_rows : t -> int

val has_column_stats : t -> bool

val find : t -> rel:string -> name:string -> Column_stats.t option
(** Column stats looked up by the qualified column identity used in the
    relation's schema. *)

val columns : t -> (Qs_storage.Schema.column * Column_stats.t) list

val byte_size_hint : t -> int
