(** ANALYZE: compute table statistics by scanning a table, as PostgreSQL's
    statistics collector does for the materialized temporaries (§5). *)

val default_sample : int
(** Rows sampled per ANALYZE (PostgreSQL samples too; 300×statistics
    target there). *)

val of_table : ?n_mcv:int -> ?n_buckets:int -> ?sample:int -> Qs_storage.Table.t ->
  Table_stats.t
(** Statistics for every column, computed over an evenly-strided sample of
    at most [sample] rows (default {!default_sample}); the distinct count
    is extrapolated when the sample saturates. *)

val rowcount_of_table : Qs_storage.Table.t -> Table_stats.t
(** The §6.4 "statistics collector disabled" variant. *)
