module Expr = Qs_query.Expr

module Value = Qs_storage.Value
module Rng = Qs_util.Rng

type t = { name : string; card : Fragment.t -> float }

type exec_fn = Fragment.t -> int

(* ------------------------------------------------------------------ *)
(* Default: PostgreSQL-style                                           *)
(* ------------------------------------------------------------------ *)

let input_stats_of (i : Fragment.input) (c : Expr.colref) =
  Table_stats.find i.stats ~rel:c.rel ~name:c.name

let filtered_rows (i : Fragment.input) =
  match Hashtbl.find_opt i.Fragment.memo "frows" with
  | Some v -> v
  | None ->
      let n = float_of_int (Table_stats.n_rows i.stats) in
      let v =
        if n = 0.0 then 0.0
        else
          let sel = Selectivity.conj ~stats_of:(input_stats_of i) i.filters in
          Float.max 1.0 (n *. sel)
      in
      Hashtbl.replace i.Fragment.memo "frows" v;
      v

(* Effective distinct count of a join column: the analyzed ndv, clamped by
   the post-filter row estimate; DEFAULT_NUM_DISTINCT when unknown. *)
let effective_ndv frag (c : Expr.colref) =
  let input = Fragment.input_of_alias frag c.rel in
  let key = "ndv:" ^ c.rel ^ "." ^ c.name in
  match Hashtbl.find_opt input.Fragment.memo key with
  | Some v -> v
  | None ->
      let rows =
        match Fragment.rows_of frag c with Some r -> float_of_int r | None -> 1.0
      in
      let frows = filtered_rows input in
      let v =
        match Fragment.stats_of frag c with
        | Some cs when cs.Column_stats.n_distinct > 0 ->
            Float.max 1.0
              (Float.min (float_of_int cs.Column_stats.n_distinct) (Float.max frows 1.0))
        | _ -> Float.max 1.0 (Float.min (float_of_int Selectivity.default_num_distinct) rows)
      in
      Hashtbl.replace input.Fragment.memo key v;
      v

let null_free_frac frag (c : Expr.colref) =
  match Fragment.stats_of frag c with
  | Some cs -> 1.0 -. cs.Column_stats.null_frac
  | None -> 1.0

let join_pred_selectivity frag p =
  match Expr.join_sides p with
  | Some (a, b) ->
      let ndv = Float.max (effective_ndv frag a) (effective_ndv frag b) in
      null_free_frac frag a *. null_free_frac frag b /. ndv
  | None -> (
      (* non-equality cross-input predicate *)
      match p with
      | Expr.Cmp (Expr.Eq, _, _) -> Selectivity.default_eq_sel
      | _ -> Selectivity.default_range_sel)

let default_card (frag : Fragment.t) =
  let base =
    List.fold_left (fun acc i -> acc *. filtered_rows i) 1.0 frag.inputs
  in
  let sel =
    List.fold_left (fun acc p -> acc *. join_pred_selectivity frag p) 1.0 frag.preds
  in
  let any_empty = List.exists (fun i -> Table_stats.n_rows i.Fragment.stats = 0) frag.inputs in
  if any_empty then 0.0 else Float.max 1.0 (base *. sel)

let default = { name = "default"; card = default_card }

(* ------------------------------------------------------------------ *)
(* Oracle: true cardinalities by (memoized) execution                  *)
(* ------------------------------------------------------------------ *)

(* Each estimator instance memoizes on the fragment's logical key. Callers
   that want sharing across instances (the benchmark runner does) pass an
   [exec] that is itself memoized — see Runner.make_env. *)
let memoized_card ~exec =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  fun frag ->
    let k = Fragment.key frag in
    match Hashtbl.find_opt memo k with
    | Some c -> c
    | None ->
        let c = exec frag in
        Hashtbl.replace memo k c;
        c

let oracle ~exec =
  let true_card = memoized_card ~exec in
  { name = "oracle"; card = (fun frag -> float_of_int (true_card frag)) }

(* ------------------------------------------------------------------ *)
(* Noise injection (Fig. 10): err = 2^N(mu, sigma^2) * true            *)
(* ------------------------------------------------------------------ *)

let deterministic_gauss ~seed ~key ~mu ~sigma =
  let rng = Rng.create (seed lxor Hashtbl.hash key) in
  Rng.gaussian rng ~mu ~sigma

let noisy ~seed ~mu ~sigma ~exec =
  let true_card = memoized_card ~exec in
  let card frag =
    let true_c = float_of_int (true_card frag) in
    let n = deterministic_gauss ~seed ~key:(Fragment.key frag) ~mu ~sigma in
    Float.max 1.0 (Float.pow 2.0 n *. Float.max 1.0 true_c)
  in
  { name = Printf.sprintf "noisy(mu=%g,sigma=%g)" mu sigma; card }

(* ------------------------------------------------------------------ *)
(* Pessimistic upper bounds (Cai et al. [7], simulated)                *)
(* ------------------------------------------------------------------ *)

(* Maximum number of rows of [input] sharing one value of column [c]. The
   raw (unfiltered) row count keeps this a true upper bound: a filter can
   only shrink the largest group. *)
let max_matches frag (c : Expr.colref) =
  let input = Fragment.input_of_alias frag c.rel in
  let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
  match Fragment.stats_of frag c with
  | Some cs -> Float.max 1.0 (Column_stats.max_freq cs *. raw)
  | None -> Float.max 1.0 (sqrt raw)

let pessimistic_card (frag : Fragment.t) =
  (* Greedy bound per connected component: grow from the smallest input;
     each extension multiplies by the joined column's max frequency. *)
  let bound_component (inputs : Fragment.input list) =
    match inputs with
    | [] -> 1.0
    | _ ->
        let sub = Fragment.restrict frag inputs in
        let remaining = ref (List.sort (fun a b -> compare (filtered_rows a) (filtered_rows b)) inputs) in
        let first = List.hd !remaining in
        remaining := List.tl !remaining;
        let in_set = ref [ first ] in
        let bound = ref (filtered_rows first) in
        let connecting i =
          List.filter
            (fun p ->
              let rels = Expr.rels_of_pred p in
              List.exists (fun a -> List.mem a i.Fragment.provides) rels
              && List.exists
                   (fun a ->
                     List.exists (fun j -> List.mem a j.Fragment.provides) !in_set)
                   rels)
            sub.preds
        in
        while !remaining <> [] do
          (* prefer a connected input; otherwise a cartesian extension *)
          let next =
            match List.find_opt (fun i -> connecting i <> []) !remaining with
            | Some i -> i
            | None -> List.hd !remaining
          in
          remaining := List.filter (fun i -> i.Fragment.id <> next.Fragment.id) !remaining;
          let growth =
            match connecting next with
            | [] -> filtered_rows next
            | preds ->
                List.fold_left
                  (fun acc p ->
                    match Expr.join_sides p with
                    | Some (a, b) ->
                        let c =
                          if List.mem a.Expr.rel next.Fragment.provides then a else b
                        in
                        Float.min acc (max_matches frag c)
                    | None -> acc)
                  (filtered_rows next) preds
          in
          in_set := next :: !in_set;
          bound := !bound *. growth
        done;
        !bound
  in
  List.fold_left
    (fun acc comp -> acc *. bound_component comp)
    1.0
    (Fragment.connected_components frag)

let pessimistic = { name = "pessimistic"; card = pessimistic_card }

(* ------------------------------------------------------------------ *)
(* Learned estimator simulators                                        *)
(* ------------------------------------------------------------------ *)

type learned_kind = Neurocard | Deepdb | Mscn

let kind_name = function
  | Neurocard -> "neurocard"
  | Deepdb -> "deepdb"
  | Mscn -> "mscn"

let kind_sigma = function Neurocard -> 0.3 | Deepdb -> 0.4 | Mscn -> 0.8

let rec pred_has_string = function
  | Expr.Like _ -> true
  | Expr.Cmp (_, a, b) -> scalar_has_string a || scalar_has_string b
  | Expr.Between (s, lo, hi) ->
      scalar_has_string s || is_str lo || is_str hi
  | Expr.In_list (s, vs) -> scalar_has_string s || List.exists is_str vs
  | Expr.Is_null s | Expr.Not_null s -> scalar_has_string s
  | Expr.Or ps -> List.exists pred_has_string ps

and scalar_has_string = function
  | Expr.Const v -> is_str v
  | Expr.Col _ -> false
  | Expr.Arith (_, a, b) -> scalar_has_string a || scalar_has_string b

and is_str = function Value.Str _ -> true | _ -> false

let supports_learned kind (frag : Fragment.t) =
  let filter_preds = List.concat_map (fun i -> i.Fragment.filters) frag.inputs in
  let no_strings = not (List.exists pred_has_string (filter_preds @ frag.preds)) in
  match kind with
  | Neurocard | Deepdb -> no_strings
  | Mscn -> no_strings && List.length frag.inputs <= 5

let learned kind ~seed ~exec =
  let sigma = kind_sigma kind in
  let true_card = memoized_card ~exec in
  let card frag =
    if supports_learned kind frag then
      let true_c = float_of_int (true_card frag) in
      let n =
        deterministic_gauss ~seed:(seed + Hashtbl.hash (kind_name kind))
          ~key:(Fragment.key frag) ~mu:0.0 ~sigma
      in
      Float.max 1.0 (Float.pow 2.0 n *. Float.max 1.0 true_c)
    else default_card frag
  in
  { name = kind_name kind; card }
