module Value = Qs_storage.Value

type t = {
  n_values : int;
  null_frac : float;
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  mcvs : (Value.t * float) list;
  hist : Histogram.t option;
}

let of_values ?(n_mcv = 10) ?(n_buckets = 64) values =
  let n = Array.length values in
  let non_null = Array.of_seq (Seq.filter (fun v -> not (Value.is_null v)) (Array.to_seq values)) in
  let nn = Array.length non_null in
  let null_frac = if n = 0 then 0.0 else float_of_int (n - nn) /. float_of_int n in
  if nn = 0 then
    {
      n_values = n;
      null_frac;
      n_distinct = 0;
      min_v = None;
      max_v = None;
      mcvs = [];
      hist = None;
    }
  else begin
    let counts = Hashtbl.create (min nn 1024) in
    Array.iter
      (fun v ->
        Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
      non_null;
    let n_distinct = Hashtbl.length counts in
    let sorted = Array.copy non_null in
    Array.sort Value.compare sorted;
    let by_freq =
      Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    (* Only record MCVs that are genuinely more common than average; a
       uniform column keeps an empty MCV list, as in PostgreSQL. *)
    let avg = float_of_int nn /. float_of_int n_distinct in
    let mcvs =
      by_freq
      |> List.filteri (fun i _ -> i < n_mcv)
      |> List.filter (fun (_, c) -> float_of_int c > avg *. 1.25 || n_distinct <= n_mcv)
      |> List.map (fun (v, c) -> (v, float_of_int c /. float_of_int nn))
    in
    {
      n_values = n;
      null_frac;
      n_distinct;
      min_v = Some sorted.(0);
      max_v = Some sorted.(nn - 1);
      mcvs;
      hist = Histogram.build non_null ~n_buckets;
    }
  end

let mcv_total t = List.fold_left (fun a (_, f) -> a +. f) 0.0 t.mcvs

let mcv_freq t v = List.assoc_opt v (List.map (fun (k, f) -> (k, f)) t.mcvs)

let max_freq t =
  match t.mcvs with
  | (_, f) :: _ -> f
  | [] -> if t.n_distinct = 0 then 1.0 else 1.0 /. float_of_int t.n_distinct

let byte_size_hint t =
  64
  + List.fold_left (fun a (v, _) -> a + Value.byte_size v + 8) 0 t.mcvs
  + match t.hist with
    | None -> 0
    | Some h -> Array.fold_left (fun a v -> a + Value.byte_size v) 0 (Histogram.bounds h)
