(** A named registry of counters and streaming histograms — the aggregate
    side of the observability layer. The harness keeps one registry per
    strategy and renders them as one machine-readable report that future
    performance work can diff against. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero on first use. *)

val counter : t -> string -> int
(** Current counter value; 0 if never bumped. *)

val observe : t -> string -> float -> unit
(** Record a measurement into a histogram, creating it on first use. *)

val histogram : t -> string -> Histogram.t option

val add_histogram : t -> string -> Histogram.t -> unit
(** Merge an externally built histogram into the named one, creating it
    on first use. The source is left untouched — this is how the
    telemetry layer exports its streaming latency histograms without
    handing out mutable references. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters add, histograms
    merge observation-by-summary. Used to combine per-domain registries
    after a parallel harness run; [src] is left untouched. *)

val counter_names : t -> string list
(** Sorted. *)

val histogram_names : t -> string list
(** Sorted. *)

val to_json : t -> string
(** One JSON object: [{"counters": {...}, "histograms": {...}}] with keys
    sorted, each histogram summarised as count / sum / mean / min / max /
    p50 / p90 / p95 / p99. Deterministic for a deterministic run. *)

val json_of_many : (string * t) list -> string
(** [{"<label>": <to_json>, ...}] — the per-strategy report emitted by
    the harness and consumed by [bench/main.exe]. *)

val escape : string -> string
(** JSON string-body escaping (shared by the other obs exporters). *)
