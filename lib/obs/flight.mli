(** Per-query flight records for the always-on serving telemetry.

    A {e flight} is one admitted query's life: statement, chosen
    strategy, plan-cache hit flag, the re-optimization journal (one
    {!step} per strategy iteration — selected subquery, est vs. actual
    rows, replan decision), per-phase span rollups, and executor /
    buffer-pool counters. The live collector ({!t}) is written by the
    one domain executing the query and read concurrently by telemetry
    snapshots — journal and counters are atomics, so a reader always
    sees a consistent prefix and never a torn record. On completion
    {!finish} freezes it into an immutable {!record} for the
    {!Telemetry} ring buffer.

    Unlike {!Qs_util.Span} tracing, flights are recorded {e without} an
    explicitly attached tracer: the journal flows through
    [Qs_core.Strategy.journal], and the executor's counters through the
    domain-local ambient slot ({!with_current} /
    {!on_intermediate_table}), so the serving path is observable by
    default. *)

type status = Completed | Deadline_exceeded | Cancelled | Failed of string

val status_name : status -> string
(** ["completed"] / ["deadline"] / ["cancelled"] / ["failed"]. *)

type step = {
  subquery : string;  (** the subquery / subplan the iteration executed *)
  score : float option;  (** selection score, when the strategy ranks *)
  est_rows : float;
  actual_rows : int;
  replanned : bool;
  remaining : int;  (** subqueries / joins left after this step *)
}

type counters = {
  intermediate_tables : int;  (** temps the executor materialized *)
  partition_reuses : int;  (** partition layouts consumed without re-hash *)
  faults : int;  (** buffer-pool misses attributed to this flight *)
  bypasses : int;  (** uncached buffer-pool reads *)
}

type t
(** Live collector for one in-flight query. *)

type record = {
  r_id : int;
  r_session : string;
  r_statement : string;
  r_strategy : string;
  r_cache_hit : bool;
  r_status : status;
  r_row_count : int;
  r_est_cost : float;
  r_queue_wait : float;  (** seconds from admission to dispatch *)
  r_exec_time : float;  (** seconds from dispatch to completion *)
  r_journal : step list;  (** oldest first *)
  r_phases : (string * int * float) list;
      (** per-category span rollup ([category, spans, seconds]) from the
          flight's own tracer, in {!Qs_util.Span.all_categories} order;
          kept even when the full tree is dropped *)
  r_counters : counters;
  r_sampled : bool;  (** tail-sampled: the full span tree was retained *)
  r_spans : Qs_util.Span.span list;  (** non-empty iff [r_sampled] *)
  r_seq : int;  (** completion order, assigned by the telemetry ring *)
}

val create :
  ?tracer:bool ->
  id:int ->
  session:string ->
  statement:string ->
  strategy:string ->
  cache_hit:bool ->
  est_cost:float ->
  submitted:float ->
  unit ->
  t
(** A fresh collector. With [tracer] (default false) the flight carries
    its own {!Qs_util.Span} recorder — the always-on source of phase
    rollups and tail-sampled span trees when no explicit tracer is
    attached to the server. *)

val spans : t -> Qs_util.Span.t option
(** The flight's own tracer, to thread into executor / strategy calls. *)

val id : t -> int

val session : t -> string

val statement : t -> string

val strategy_name : t -> string

val submitted : t -> float
(** Absolute {!Qs_util.Timer.now} admission time. *)

val mark_dispatched : t -> unit

val dispatched : t -> bool
(** False while the flight is still waiting in the admission queue. *)

val journal : t -> step list
(** The journal so far, oldest first. Safe to call concurrently with
    the writer — the reader sees a consistent prefix. *)

val n_steps : t -> int

val step :
  t option ->
  ?score:float ->
  subquery:string ->
  est_rows:float ->
  actual_rows:int ->
  replanned:bool ->
  remaining:int ->
  unit ->
  unit
(** Append one journal entry. [None] is free — strategy loops call this
    unconditionally. Must only be called from the domain executing the
    flight (single writer). *)

val with_current : t option -> (unit -> 'a) -> 'a
(** Run a thunk with the flight installed as the calling domain's
    ambient collector, so {!on_intermediate_table} /
    {!on_partition_reuse} from anywhere below attribute to it. Restores
    the previous ambient flight on return and on exception. Work the
    thunk fans out to {e other} pool domains is not attributed. *)

val on_intermediate_table : unit -> unit
(** Called by the executor whenever an intermediate table is built; a
    no-op (one domain-local read) when no flight is ambient. *)

val on_partition_reuse : unit -> unit

val finish :
  t ->
  status:status ->
  row_count:int ->
  queue_wait:float ->
  exec_time:float ->
  faults:int ->
  bypasses:int ->
  sampled:bool ->
  seq:int ->
  record
(** Freeze the collector into an immutable record: reverses the
    journal, rolls spans up per category, and retains the full span
    tree iff [sampled]. *)
