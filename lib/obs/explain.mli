(** EXPLAIN ANALYZE-style rendering: a physical plan tree annotated per
    node with the optimizer's estimate, the executed actual cardinality
    and the resulting Q-error, plus (optionally) wall-clock and volume
    figures from the trace.

    Without a trace this degrades to plain EXPLAIN (estimates only).
    [timings:false] suppresses the non-deterministic columns (time,
    bytes) so output can be compared verbatim in golden tests. *)

val render : ?trace:Trace.t -> ?timings:bool -> Qs_plan.Physical.t -> string
(** [timings] defaults to [true]. *)

val summary : trace:Trace.t -> Qs_plan.Physical.t -> string
(** One line: node count, max and mean Q-error over the plan's nodes,
    and the fraction of nodes whose cardinality was {e under}estimated
    (the dangerous direction, per {!Qerror.underestimated}) — the
    headline a workload report aggregates. *)
