(** Structured per-operator execution traces.

    The executor fills one {!node} per physical plan node it evaluates:
    the optimizer's estimate, the observed cardinality and their Q-error,
    wall-clock time (inclusive of children — subtract child times for
    self time), output bytes, and the operator's input volumes (rows
    scanned at leaves, rows on the build/probe sides of joins).

    A trace is opt-in: the executor takes [?trace] and the uninstrumented
    path pays only an option match per node. *)

type node = {
  id : int;  (** the {!Qs_plan.Physical.t} node id *)
  mutable est_rows : float;
  mutable actual_rows : int;
  mutable elapsed : float;  (** seconds, inclusive of children *)
  mutable output_bytes : int;
  mutable rows_scanned : int;  (** leaf: rows read before filtering *)
  mutable rows_built : int;  (** hash join: build-side input rows *)
  mutable rows_probed : int;  (** join: probe/outer-side input rows *)
  mutable children : int list;
      (** trace-node ids of this operator's plan children, recorded by
          the executor so self time can be computed without the plan *)
}

type t

val create : unit -> t

val node : t -> int -> node
(** Find-or-create the record for a plan node id. *)

val find : t -> int -> node option

val size : t -> int
(** Number of nodes recorded so far. *)

val qerror : node -> float
(** {!Qerror.value} of the node's estimate vs. its observation. *)

val iter : t -> (node -> unit) -> unit

val self_time : t -> node -> float
(** [elapsed] minus the [elapsed] of every recorded child, clamped at 0
    — the time the operator itself spent, excluding its inputs. *)

val total_output_bytes : t -> int
