(* Always-on serving telemetry: every admitted query's flight record
   accumulates into a bounded lock-striped ring buffer (fixed memory,
   overwrite-oldest), latency histograms per final status, and a small
   set of cumulative counters. Completion sequence numbers are assigned
   round-robin across stripes, so each stripe only ever holds seqs
   congruent to its index — stripe-local overwrite-oldest therefore
   retains exactly the globally most recent [capacity] flights, and a
   snapshot (which locks one stripe at a time, never all at once) can
   merge by seq without a global lock.

   Tail sampling: full span trees are retained only for flights that
   are errors / timeouts / cancellations, or successes whose turnaround
   lands at or above the configured latency quantile of the streaming
   success histogram — everything else keeps just the per-phase rollup,
   so memory stays bounded no matter the traffic. *)

module Span = Qs_util.Span
module Timer = Qs_util.Timer

type config = {
  enabled : bool;
  capacity : int;
  stripes : int;
  slow_quantile : float;
  min_samples : int;
}

let default_config =
  {
    enabled = true;
    capacity = 256;
    stripes = 8;
    slow_quantile = 0.95;
    min_samples = 32;
  }

let disabled = { default_config with enabled = false }

type stripe = { lock : Mutex.t; slots : Flight.record option array }

type t = {
  config : config;
  ring : stripe array;
  per_stripe : int;
  seq : int Atomic.t; (* completions so far; next record's seq *)
  admitted : int Atomic.t;
  active_lock : Mutex.t;
  active : (int, Flight.t) Hashtbl.t;
  stats_lock : Mutex.t; (* guards histograms + counters *)
  latency : (string, Histogram.t) Hashtbl.t; (* by status name *)
  slow : Histogram.t; (* success *execution* times, the tail-sampling bar *)
  counters : (string, int ref) Hashtbl.t;
}

let create ?(config = default_config) () =
  let capacity = max 1 config.capacity in
  let stripes = max 1 (min config.stripes capacity) in
  let per_stripe = max 1 (capacity / stripes) in
  {
    config;
    ring =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); slots = Array.make per_stripe None });
    per_stripe;
    seq = Atomic.make 0;
    admitted = Atomic.make 0;
    active_lock = Mutex.create ();
    active = Hashtbl.create 32;
    stats_lock = Mutex.create ();
    latency = Hashtbl.create 4;
    slow = Histogram.create ();
    counters = Hashtbl.create 16;
  }

let enabled t = t.config.enabled
let capacity t = Array.length t.ring * t.per_stripe

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* callers hold [stats_lock] *)
let bump t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let hist t name =
  match Hashtbl.find_opt t.latency name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace t.latency name h;
      h

(* --- flight lifecycle -------------------------------------------------- *)

let admit t ?(external_tracer = false) ~id ~session ~statement ~strategy
    ~cache_hit ~est_cost () =
  if not t.config.enabled then None
  else begin
    Atomic.incr t.admitted;
    let fl =
      Flight.create ~tracer:(not external_tracer) ~id ~session ~statement
        ~strategy ~cache_hit ~est_cost ~submitted:(Timer.now ()) ()
    in
    with_lock t.active_lock (fun () -> Hashtbl.replace t.active id fl);
    Some fl
  end

let dispatch _t fl = Flight.mark_dispatched fl

(* the single mutation point of the ring; tools/lint_unsafe.sh bans the
   ring_push / ring_snapshot identifiers outside lib/obs *)
let ring_push t (record : Flight.record) =
  let n = Array.length t.ring in
  let stripe = t.ring.(record.Flight.r_seq mod n) in
  let slot = record.Flight.r_seq / n mod t.per_stripe in
  with_lock stripe.lock (fun () -> stripe.slots.(slot) <- Some record)

let ring_snapshot t =
  Array.to_list t.ring
  |> List.concat_map (fun stripe ->
         with_lock stripe.lock (fun () ->
             Array.to_list stripe.slots |> List.filter_map Fun.id))
  |> List.sort (fun (a : Flight.record) b ->
         Int.compare a.Flight.r_seq b.Flight.r_seq)

let complete t fl ~status ~row_count ~queue_wait ~exec_time ~faults ~bypasses
    =
  with_lock t.active_lock (fun () -> Hashtbl.remove t.active (Flight.id fl));
  let turnaround = queue_wait +. exec_time in
  let status_n = Flight.status_name status in
  let sampled =
    with_lock t.stats_lock (fun () ->
        (* decide retention against the histogram *before* this flight's
           own observation, then record it. The bar is *execution* time,
           not turnaround: queue wait grows with backlog, so under load
           every flight's turnaround would beat its predecessors' and the
           sampler would degenerate to keep-everything *)
        let sampled =
          match status with
          | Flight.Completed ->
              let decided =
                Histogram.count t.slow >= t.config.min_samples
                && exec_time
                   >= Histogram.percentile t.slow t.config.slow_quantile
              in
              Histogram.observe t.slow exec_time;
              decided
          | _ -> true
        in
        Histogram.observe (hist t status_n) turnaround;
        bump t "flights";
        bump t status_n;
        if sampled then bump t "sampled";
        (match status with
        | Flight.Completed -> ()
        | _ -> bump t "errors");
        bump t ~by:(Flight.n_steps fl) "journal_steps";
        sampled)
  in
  let seq = Atomic.fetch_and_add t.seq 1 in
  let record =
    Flight.finish fl ~status ~row_count ~queue_wait ~exec_time ~faults
      ~bypasses ~sampled ~seq
  in
  with_lock t.stats_lock (fun () ->
      let c = record.Flight.r_counters in
      bump t ~by:c.Flight.intermediate_tables "intermediate_tables";
      bump t ~by:c.Flight.partition_reuses "partition_reuses";
      bump t ~by:c.Flight.faults "faults";
      bump t ~by:c.Flight.bypasses "bypasses");
  ring_push t record;
  record

(* --- snapshot ---------------------------------------------------------- *)

type latency_summary = {
  l_count : int;
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
}

type active_flight = {
  a_id : int;
  a_session : string;
  a_statement : string;
  a_strategy : string;
  a_running : bool;
  a_age : float;
  a_steps : int;
}

type snapshot = {
  s_admitted : int;
  s_completed : int;
  s_counters : (string * int) list; (* sorted by name *)
  s_active : active_flight list; (* by admission id *)
  s_recent : Flight.record list; (* by completion seq, oldest first *)
  s_latency : (string * latency_summary) list; (* by status name *)
}

let snapshot t =
  let now = Timer.now () in
  let s_active =
    with_lock t.active_lock (fun () ->
        Hashtbl.fold (fun _ fl acc -> fl :: acc) t.active [])
    |> List.map (fun fl ->
           {
             a_id = Flight.id fl;
             a_session = Flight.session fl;
             a_statement = Flight.statement fl;
             a_strategy = Flight.strategy_name fl;
             a_running = Flight.dispatched fl;
             a_age = Float.max 0.0 (now -. Flight.submitted fl);
             a_steps = Flight.n_steps fl;
           })
    |> List.sort (fun a b -> Int.compare a.a_id b.a_id)
  in
  let s_counters, s_latency =
    with_lock t.stats_lock (fun () ->
        ( Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
          |> List.sort compare,
          Hashtbl.fold
            (fun k h acc ->
              ( k,
                {
                  l_count = Histogram.count h;
                  l_p50 = Histogram.percentile h 0.5;
                  l_p95 = Histogram.percentile h 0.95;
                  l_p99 = Histogram.percentile h 0.99;
                  l_max =
                    (if Histogram.count h = 0 then 0.0
                     else Histogram.max_value h);
                } )
              :: acc)
            t.latency []
          |> List.sort compare ))
  in
  {
    s_admitted = Atomic.get t.admitted;
    s_completed = Atomic.get t.seq;
    s_counters;
    s_active;
    s_recent = ring_snapshot t;
    s_latency;
  }

(* --- text dashboard ---------------------------------------------------- *)

let ms v = Printf.sprintf "%.2fms" (v *. 1000.0)

let counter snap name =
  match List.assoc_opt name snap.s_counters with Some n -> n | None -> 0

let render_record ?(timings = true) buf (r : Flight.record) =
  let open Flight in
  Buffer.add_string buf
    (Printf.sprintf "  #%-4d %-4s %-20s %-12s %-9s rows=%-7d%s" r.r_id
       r.r_session r.r_statement r.r_strategy
       (Flight.status_name r.r_status)
       r.r_row_count
       (if r.r_cache_hit then " cached-plan" else ""));
  if timings then
    Buffer.add_string buf
      (Printf.sprintf "  %s (wait %s)%s" (ms r.r_exec_time) (ms r.r_queue_wait)
         (if r.r_sampled then
            Printf.sprintf "  [sampled %d spans]" (List.length r.r_spans)
          else ""));
  Buffer.add_char buf '\n';
  List.iteri
    (fun i (s : step) ->
      Buffer.add_string buf
        (Printf.sprintf
           "        %2d. %-24s est=%.0f actual=%d replanned=%s remaining=%d%s\n"
           (i + 1) s.subquery s.est_rows s.actual_rows
           (if s.replanned then "yes" else "no")
           s.remaining
           (match s.score with
           | Some sc -> Printf.sprintf " score=%.6g" sc
           | None -> "")))
    r.r_journal;
  if timings && r.r_phases <> [] then begin
    Buffer.add_string buf "        phases:";
    List.iter
      (fun (cat, n, total) ->
        Buffer.add_string buf (Printf.sprintf " %s=%d/%s" cat n (ms total)))
      r.r_phases;
    Buffer.add_char buf '\n'
  end;
  let c = r.r_counters in
  if
    c.intermediate_tables > 0 || c.partition_reuses > 0 || c.faults > 0
    || c.bypasses > 0
  then
    Buffer.add_string buf
      (Printf.sprintf
         "        counters: intermediates=%d reuses=%d faults=%d bypasses=%d\n"
         c.intermediate_tables c.partition_reuses c.faults c.bypasses)

let render ?(timings = true) ?(slowest = 8) snap =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "== serving telemetry ==\n";
  Buffer.add_string buf
    (Printf.sprintf
       "admitted=%d completed=%d (ok=%d deadline=%d cancelled=%d failed=%d)\n"
       snap.s_admitted snap.s_completed (counter snap "completed")
       (counter snap "deadline")
       (counter snap "cancelled")
       (counter snap "failed"));
  Buffer.add_string buf
    (Printf.sprintf
       "journal steps=%d intermediates=%d partition-reuses=%d bufpool \
        faults=%d bypasses=%d sampled=%d\n"
       (counter snap "journal_steps")
       (counter snap "intermediate_tables")
       (counter snap "partition_reuses")
       (counter snap "faults") (counter snap "bypasses")
       (counter snap "sampled"));
  let running, queued =
    List.partition (fun a -> a.a_running) snap.s_active
  in
  Buffer.add_string buf
    (Printf.sprintf "in-flight: %d running, %d queued\n" (List.length running)
       (List.length queued));
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "  #%-4d %-4s %-20s %-12s %s  %d steps%s\n" a.a_id
           a.a_session a.a_statement a.a_strategy
           (if a.a_running then "running" else "queued ")
           a.a_steps
           (if timings then Printf.sprintf "  age %s" (ms a.a_age) else "")))
    snap.s_active;
  if timings && snap.s_latency <> [] then begin
    Buffer.add_string buf "latency by status:\n";
    List.iter
      (fun (status, l) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-9s n=%-6d p50=%s p95=%s p99=%s max=%s\n" status
             l.l_count (ms l.l_p50) (ms l.l_p95) (ms l.l_p99) (ms l.l_max)))
      snap.s_latency
  end;
  if snap.s_recent <> [] then
    if timings then begin
      (* slowest first: the flights worth reading the journal of *)
      let by_latency =
        List.sort
          (fun (a : Flight.record) b ->
            match
              Float.compare
                (b.Flight.r_queue_wait +. b.Flight.r_exec_time)
                (a.Flight.r_queue_wait +. a.Flight.r_exec_time)
            with
            | 0 -> Int.compare a.Flight.r_seq b.Flight.r_seq
            | c -> c)
          snap.s_recent
      in
      Buffer.add_string buf
        (Printf.sprintf "slowest recent flights (of %d retained):\n"
           (List.length snap.s_recent));
      List.iteri
        (fun i r -> if i < slowest then render_record ~timings buf r)
        by_latency
    end
    else begin
      (* deterministic form: completion order, no wall-clock *)
      Buffer.add_string buf "recent flights:\n";
      List.iter (render_record ~timings buf) snap.s_recent
    end;
  Buffer.contents buf

(* --- Prometheus-style exposition --------------------------------------- *)

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let snap = snapshot t in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# TYPE qs_flights_admitted_total counter";
  line "qs_flights_admitted_total %d" snap.s_admitted;
  line "# TYPE qs_flights_total counter";
  List.iter
    (fun status ->
      line "qs_flights_total{status=\"%s\"} %d" status (counter snap status))
    [ "completed"; "deadline"; "cancelled"; "failed" ];
  line "# TYPE qs_flights_sampled_total counter";
  line "qs_flights_sampled_total %d" (counter snap "sampled");
  line "# TYPE qs_journal_steps_total counter";
  line "qs_journal_steps_total %d" (counter snap "journal_steps");
  line "# TYPE qs_intermediate_tables_total counter";
  line "qs_intermediate_tables_total %d" (counter snap "intermediate_tables");
  line "# TYPE qs_partition_reuses_total counter";
  line "qs_partition_reuses_total %d" (counter snap "partition_reuses");
  line "# TYPE qs_bufpool_faults_total counter";
  line "qs_bufpool_faults_total %d" (counter snap "faults");
  line "# TYPE qs_bufpool_bypasses_total counter";
  line "qs_bufpool_bypasses_total %d" (counter snap "bypasses");
  let running, queued =
    List.partition (fun a -> a.a_running) snap.s_active
  in
  line "# TYPE qs_in_flight gauge";
  line "qs_in_flight %d" (List.length running);
  line "# TYPE qs_queue_depth gauge";
  line "qs_queue_depth %d" (List.length queued);
  line "# TYPE qs_latency_seconds summary";
  List.iter
    (fun (status, l) ->
      List.iter
        (fun (q, v) ->
          line "qs_latency_seconds{status=\"%s\",quantile=\"%s\"} %s" status q
            (prom_float v))
        [ ("0.5", l.l_p50); ("0.95", l.l_p95); ("0.99", l.l_p99) ];
      line "qs_latency_seconds_count{status=\"%s\"} %d" status l.l_count)
    snap.s_latency;
  Buffer.contents buf

(* --- metrics export ---------------------------------------------------- *)

let metrics t =
  let m = Metrics.create () in
  let snap = snapshot t in
  Metrics.incr ~by:snap.s_admitted m "admitted";
  List.iter
    (fun (name, n) ->
      (* [flights] duplicates [admitted] for a drained server; keep the
         per-status and derived counters *)
      if name <> "flights" then Metrics.incr ~by:n m name)
    snap.s_counters;
  with_lock t.stats_lock (fun () ->
      Hashtbl.iter
        (fun status h -> Metrics.add_histogram m ("turnaround_s:" ^ status) h)
        t.latency);
  m
