(** Text profile of a span tracer: per-category span counts and time,
    per-domain utilization (busy interval-union / wall), pool queue-wait
    percentiles, DP throughput (per [dp-level] name: subsets, emitted /
    pruned candidates, memo hits, and plans/s when timings are on — only
    for spans carrying those counters), the DP-memo hit rate (from
    [dp-memo] markers), the re-optimization journal (one line per
    [reopt-step] span: selected subquery, score, est vs. actual rows,
    whether the remaining plan was replanned), and — when an executor
    {!Trace} is supplied — the top operator self-times via
    {!Trace.self_time}.

    [timings:false] suppresses every wall-clock figure (durations,
    utilization, percentiles, self-times), leaving output that is a pure
    function of the recorded span sequence — golden-testable. *)

val summary : ?timings:bool -> ?trace:Trace.t -> Qs_util.Span.t -> string
(** [timings] defaults to [true]. *)
