(** Chrome [trace_event] export of a span tracer — the JSON-array format
    Perfetto and chrome://tracing load directly. Each closed span
    becomes a complete ("X") event with microsecond [ts]/[dur]; each
    domain gets its own track via thread_name metadata events. *)

val to_json : Qs_util.Span.t -> string

val write : string -> Qs_util.Span.t -> unit
(** [write path t] writes {!to_json} to [path]. *)
