(** Q-error: the symmetric ratio between an estimated and an actual
    cardinality, the robustness metric the re-optimization literature
    standardises on (Perron et al., Datta et al.). A perfect estimate has
    Q-error 1; over- and under-estimation by the same factor score the
    same. *)

val value : est:float -> actual:int -> float
(** [max (est/actual, actual/est)] with both sides clamped to at least
    one row. The clamp encodes the zero conventions: an estimate of 0.3
    rows against an empty actual result is a perfect prediction (1.0),
    not an infinite error, and an estimate of 0 against [n] actual rows
    scores [n] — exactly as if the optimizer had said "one row". *)

val underestimated : est:float -> actual:int -> bool
(** Direction of the error after the same clamping; ties (q = 1) are not
    underestimates. Underestimates are the dangerous direction — they are
    what makes the optimizer pick explosive join orders (§2.2). *)

val of_floats : est:float -> actual:float -> float
(** [value] for an already-float actual (aggregated observations). *)
