(* Deterministic text rendering of a span tracer: category breakdown,
   per-domain utilization, pool queue-wait percentiles and the
   re-optimization journal. With [timings:false] every wall-clock figure
   is suppressed so the output depends only on the sequence of recorded
   spans — that form is locked by a golden test. *)

module Span = Qs_util.Span

let ms v = Printf.sprintf "%.2fms" (v *. 1000.0)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* busy time on one track = measure of the union of its span intervals
   (spans nest, so summing durations would double-count) *)
let busy_time spans =
  let intervals =
    List.sort compare
      (List.map (fun (s : Span.span) -> (s.Span.start, s.Span.start +. s.Span.dur)) spans)
  in
  let total, last_end =
    List.fold_left
      (fun (acc, last_end) (lo, hi) ->
        let lo = Float.max lo last_end in
        if hi > lo then (acc +. (hi -. lo), hi) else (acc, last_end))
      (0.0, 0.0) intervals
  in
  ignore last_end;
  total

let summary ?(timings = true) ?trace t =
  let spans = Span.spans t in
  let buf = Buffer.create 1024 in
  (* per-category breakdown *)
  Buffer.add_string buf "spans by category:\n";
  List.iter
    (fun cat ->
      let these = List.filter (fun (s : Span.span) -> s.Span.cat = cat) spans in
      if these <> [] then
        if timings then
          let total =
            List.fold_left (fun acc (s : Span.span) -> acc +. s.Span.dur) 0.0 these
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-12s %5d  total=%s\n" (Span.category_name cat)
               (List.length these) (ms total))
        else
          Buffer.add_string buf
            (Printf.sprintf "  %-12s %5d\n" (Span.category_name cat)
               (List.length these)))
    Span.all_categories;
  if spans = [] then Buffer.add_string buf "  (none)\n";
  (* per-domain utilization *)
  if timings && spans <> [] then begin
    let wall =
      List.fold_left
        (fun acc (s : Span.span) -> Float.max acc (s.Span.start +. s.Span.dur))
        0.0 spans
    in
    let tracks =
      List.sort_uniq Int.compare (List.map (fun s -> s.Span.track) spans)
    in
    Buffer.add_string buf
      (Printf.sprintf "domain utilization (wall=%s):\n" (ms wall));
    List.iter
      (fun track ->
        let mine = List.filter (fun s -> s.Span.track = track) spans in
        let busy = busy_time mine in
        Buffer.add_string buf
          (Printf.sprintf "  domain-%-3d busy=%s util=%.0f%%\n" track (ms busy)
             (if wall > 0.0 then 100.0 *. busy /. wall else 0.0)))
      tracks
  end;
  (* pool queue-wait percentiles *)
  let waits =
    List.filter (fun (s : Span.span) -> s.Span.cat = Span.Pool_wait) spans
  in
  if waits <> [] then
    if timings then begin
      let durs =
        Array.of_list (List.sort compare (List.map (fun s -> s.Span.dur) waits))
      in
      Buffer.add_string buf
        (Printf.sprintf "pool queue-wait (%d tasks): p50=%s p90=%s p99=%s\n"
           (Array.length durs)
           (ms (percentile durs 0.5))
           (ms (percentile durs 0.9))
           (ms (percentile durs 0.99)))
    end
    else
      Buffer.add_string buf
        (Printf.sprintf "pool queue-wait: %d tasks\n" (List.length waits));
  (* DP throughput: [dp-level] spans carrying per-level candidate
     counters (spans without them — e.g. hand-built traces — render
     nothing). Counts are deterministic; rates only appear with
     timings. *)
  let dp_levels =
    List.filter
      (fun (s : Span.span) ->
        s.Span.cat = Span.Dp_level && List.mem_assoc "emitted" s.Span.args)
      spans
  in
  if dp_levels <> [] then begin
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (s : Span.span) ->
        let arg k =
          match List.assoc_opt k s.Span.args with
          | Some v -> ( try int_of_string v with _ -> 0)
          | None -> 0
        in
        let subsets, emitted, pruned, hits, dur =
          Option.value (Hashtbl.find_opt tbl s.Span.name) ~default:(0, 0, 0, 0, 0.0)
        in
        Hashtbl.replace tbl s.Span.name
          ( subsets + arg "subsets",
            emitted + arg "emitted",
            pruned + arg "pruned",
            hits + arg "memo-hits",
            dur +. s.Span.dur ))
      dp_levels;
    let level_of name =
      match String.rindex_opt name '-' with
      | Some i -> (
          try int_of_string (String.sub name (i + 1) (String.length name - i - 1))
          with _ -> 0)
      | None -> 0
    in
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) ->
             compare (level_of a, a) (level_of b, b))
    in
    Buffer.add_string buf "dp levels:\n";
    List.iter
      (fun (name, (subsets, emitted, pruned, hits, dur)) ->
        let counts =
          Printf.sprintf "  %-12s subsets=%d emitted=%d pruned=%d memo-hits=%d"
            name subsets emitted pruned hits
        in
        if timings then
          let cands = emitted + pruned in
          Buffer.add_string buf
            (Printf.sprintf "%s plans/s=%.3g\n" counts
               (if dur > 0.0 then float_of_int cands /. dur else 0.0))
        else Buffer.add_string buf (counts ^ "\n"))
      rows
  end;
  (* DP-memo hit rate from the per-optimize [dp-memo] markers *)
  let memo_marks =
    List.filter (fun (s : Span.span) -> s.Span.cat = Span.Dp_memo) spans
  in
  if memo_marks <> [] then begin
    let hits, misses =
      List.fold_left
        (fun (h, m) (s : Span.span) ->
          let arg k =
            match List.assoc_opt k s.Span.args with
            | Some v -> ( try int_of_string v with _ -> 0)
            | None -> 0
          in
          (h + arg "hits", m + arg "misses"))
        (0, 0) memo_marks
    in
    let total = hits + misses in
    Buffer.add_string buf
      (Printf.sprintf "dp memo: %d calls, hits=%d misses=%d hit-rate=%.0f%%\n"
         (List.length memo_marks) hits misses
         (if total > 0 then 100.0 *. float_of_int hits /. float_of_int total
          else 0.0))
  end;
  (* re-optimization journal *)
  let steps =
    List.filter (fun (s : Span.span) -> s.Span.cat = Span.Reopt_step) spans
    |> List.sort (fun (a : Span.span) b -> Int.compare a.Span.id b.Span.id)
  in
  if steps <> [] then begin
    Buffer.add_string buf "reopt journal:\n";
    List.iteri
      (fun i (s : Span.span) ->
        let arg k = Option.value (List.assoc_opt k s.Span.args) ~default:"?" in
        Buffer.add_string buf
          (Printf.sprintf
             "  %2d. %-28s est=%s actual=%s score=%s replanned=%s remaining=%s%s\n"
             (i + 1) s.Span.name (arg "est_rows") (arg "actual_rows")
             (arg "score") (arg "replanned") (arg "remaining")
             (if timings then " (" ^ ms s.Span.dur ^ ")" else "")))
      steps
  end;
  (* operator self-times from the executor trace *)
  (match trace with
  | Some tr when timings && Trace.size tr > 0 ->
      let nodes = ref [] in
      Trace.iter tr (fun n -> nodes := n :: !nodes);
      let by_self =
        List.sort
          (fun (a : Trace.node) b ->
            match Float.compare (Trace.self_time tr b) (Trace.self_time tr a) with
            | 0 -> Int.compare a.Trace.id b.Trace.id
            | c -> c)
          !nodes
      in
      let top = List.filteri (fun i _ -> i < 8) by_self in
      Buffer.add_string buf "operator self-times (top 8):\n";
      List.iter
        (fun (n : Trace.node) ->
          Buffer.add_string buf
            (Printf.sprintf "  node %-4d self=%s total=%s actual=%d\n" n.Trace.id
               (ms (Trace.self_time tr n))
               (ms n.Trace.elapsed) n.Trace.actual_rows))
        top
  | _ -> ());
  Buffer.contents buf
