(* Geometric buckets: bucket [i] covers [lo_bound * gamma^i,
   lo_bound * gamma^(i+1)). Everything below lo_bound (including 0) lands
   in bucket 0; everything at or above the top bound saturates into the
   last bucket. The reconstruction below clamps into the exact [min, max]
   envelope, so the saturation only matters past 10^15. *)

let gamma = 1.0905077326652577 (* 2^(1/8): 8 buckets per doubling *)

let lo_bound = 1e-9

let log_gamma = log gamma

let n_buckets =
  (* covers [1e-9, 1e15): log_gamma (1e24) buckets, rounded up *)
  2 + int_of_float (ceil (log (1e15 /. lo_bound) /. log_gamma))

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0.0; min = infinity; max = neg_infinity;
    buckets = Array.make n_buckets 0 }

let bucket_of v =
  if v < lo_bound then 0
  else
    let i = 1 + int_of_float (floor (log (v /. lo_bound) /. log_gamma)) in
    if i >= n_buckets then n_buckets - 1 else i

let observe t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then Float.nan else t.sum /. float_of_int t.count

let min_value t = if t.count = 0 then Float.nan else t.min

let max_value t = if t.count = 0 then Float.nan else t.max

(* Geometric midpoint of bucket [i]'s bounds. Bucket 0 has no lower
   bound; its representative is the bottom of the envelope. *)
let representative i =
  if i = 0 then 0.0
  else lo_bound *. (gamma ** (float_of_int (i - 1) +. 0.5))

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.round (p *. float_of_int (t.count - 1))) in
    let rank = if rank < 0 then 0 else if rank >= t.count then t.count - 1 else rank in
    (* the extreme ranks are tracked exactly — answering them from bucket
       representatives would return an artifact (e.g. p100 of {1, 1000}
       as the ~970 midpoint of 1000's bucket), and a single-sample
       histogram would never report the sample itself *)
    if rank = 0 then t.min
    else if rank = t.count - 1 then t.max
    else begin
      let acc = ref 0 in
      let found = ref (n_buckets - 1) in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc > rank then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      let r = representative !found in
      Float.min t.max (Float.max t.min r)
    end
  end

let merge ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min < into.min then into.min <- src.min;
  if src.max > into.max then into.max <- src.max;
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets

let max_relative_error = sqrt gamma -. 1.0
