include Qs_util.Span
