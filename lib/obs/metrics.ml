type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.replace t.histograms name h;
        h
  in
  Histogram.observe h v

let histogram t name = Hashtbl.find_opt t.histograms name

let add_histogram t name h =
  let dst =
    match Hashtbl.find_opt t.histograms name with
    | Some dst -> dst
    | None ->
        let dst = Histogram.create () in
        Hashtbl.replace t.histograms name dst;
        dst
  in
  Histogram.merge ~into:dst h

(* Merging is how per-domain registries become one report: each worker
   records into its own [t] (no cross-domain mutation), and the harness
   folds them together once the parallel region is over. *)
let merge ~into src =
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src.counters;
  Hashtbl.iter
    (fun name h ->
      let dst =
        match Hashtbl.find_opt into.histograms name with
        | Some dst -> dst
        | None ->
            let dst = Histogram.create () in
            Hashtbl.replace into.histograms name dst;
            dst
      in
      Histogram.merge ~into:dst h)
    src.histograms

let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counter_names t = sorted_keys t.counters

let histogram_names t = sorted_keys t.histograms

(* --- JSON rendering (no external dependency) ------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let obj fields = "{" ^ String.concat ", " fields ^ "}"

let field k v = Printf.sprintf "\"%s\": %s" (escape k) v

let hist_json h =
  obj
    [
      field "count" (string_of_int (Histogram.count h));
      field "sum" (json_float (Histogram.sum h));
      field "mean" (json_float (Histogram.mean h));
      field "min" (json_float (Histogram.min_value h));
      field "max" (json_float (Histogram.max_value h));
      field "p50" (json_float (Histogram.percentile h 0.5));
      field "p90" (json_float (Histogram.percentile h 0.9));
      field "p95" (json_float (Histogram.percentile h 0.95));
      field "p99" (json_float (Histogram.percentile h 0.99));
    ]

let to_json t =
  let counters =
    counter_names t |> List.map (fun k -> field k (string_of_int (counter t k)))
  in
  let histograms =
    histogram_names t
    |> List.map (fun k -> field k (hist_json (Option.get (histogram t k))))
  in
  obj [ field "counters" (obj counters); field "histograms" (obj histograms) ]

let json_of_many labelled =
  obj (List.map (fun (label, t) -> field label (to_json t)) labelled)
