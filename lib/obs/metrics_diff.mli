(** Comparing two metrics-JSON dumps (the {!Metrics.json_of_many} shape,
    as written by [bench --metrics-out]) with relative thresholds — the
    logic behind [tools/bench_diff], which turns committed [BENCH_*.json]
    files into a perf-regression gate.

    All dumped metrics are higher-is-worse (times, bytes, Q-error,
    timeout/materialization counts), so a relative increase beyond the
    threshold is a regression and a decrease an improvement. The
    [queries] counter is workload size and is instead checked for
    equality. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Full-grammar JSON parser (no external dependency, mirroring the
    hand-rolled rendering in {!Metrics}). *)

type change = {
  strategy : string;
  metric : string;  (** ["counter:<name>"] or ["histogram:<name> mean"] *)
  old_value : float;
  new_value : float;
}

type report = {
  threshold : float;
  regressions : change list;  (** relative increase beyond the threshold *)
  improvements : change list;  (** relative decrease beyond the threshold *)
  missing : string list;
      (** strategies/metrics present in the old dump but absent (or, for
          [queries], unequal) in the new one *)
}

val diff : ?threshold:float -> old_:json -> new_:json -> unit -> report
(** [threshold] is relative (default [0.2] = 20%). Strategies and
    metrics are driven from the old dump; extra entries in the new dump
    are ignored (adding metrics is not a regression). *)

val render : report -> string
