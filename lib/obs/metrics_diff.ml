(* Comparing two metrics-JSON dumps (the [Metrics.json_of_many] shape)
   with relative thresholds, so bench runs can gate regressions.

   The repo renders its JSON by hand to stay dependency-free; the same
   discipline applies to parsing it back, so this module carries a small
   recursive-descent parser for the general JSON grammar (we only feed
   it our own dumps, but parsing the full language keeps it honest). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* --- parser ---------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if st.pos >= String.length st.src then error st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
           if st.pos + 4 > String.length st.src then error st "bad \\u escape";
           let hex = String.sub st.src st.pos 4 in
           st.pos <- st.pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> error st "bad \\u escape"
           in
           (* our own dumps only escape control chars; anything in the
              BMP is re-encoded as UTF-8 *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
       | _ -> error st "bad escape");
      go ()
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> error st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error st "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> error st "expected ',' or ']'"
        in
        elements []
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st
  | None -> error st "unexpected end of input"

let parse text =
  let st = { src = text; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length text then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- diffing --------------------------------------------------------- *)

type change = {
  strategy : string;
  metric : string;
  old_value : float;
  new_value : float;
}

type report = {
  threshold : float;
  regressions : change list;
  improvements : change list;
  missing : string list;
}

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let num = function Some (Num v) -> Some v | _ -> None

(* Higher-is-worse for everything we dump: counters count work/failures
   (timeouts, materializations, iterations) and histogram means measure
   time, bytes and Q-error. [queries] is workload size, not a cost —
   compared for equality so mismatched runs are flagged, not scored. *)
let neutral_counter name = name = "queries"

let relative_increase ~old_v ~new_v =
  if old_v <= 0.0 then if new_v > 0.0 then infinity else 0.0
  else (new_v -. old_v) /. old_v

let classify ~threshold ~strategy ~metric ~old_v ~new_v acc =
  let regressions, improvements = acc in
  let change = { strategy; metric; old_value = old_v; new_value = new_v } in
  let delta = relative_increase ~old_v ~new_v in
  if delta > threshold then (change :: regressions, improvements)
  else if delta < -.threshold then (regressions, change :: improvements)
  else acc

let diff ?(threshold = 0.2) ~old_ ~new_ () =
  let strategies = match old_ with Obj fields -> fields | _ -> [] in
  let missing = ref [] in
  let acc = ref ([], []) in
  List.iter
    (fun (strategy, old_entry) ->
      match member strategy new_ with
      | None -> missing := strategy :: !missing
      | Some new_entry ->
          (match (member "counters" old_entry, member "counters" new_entry) with
          | Some (Obj old_cs), Some new_cs ->
              List.iter
                (fun (name, v) ->
                  match (num (Some v), num (member name new_cs)) with
                  | Some old_v, Some new_v ->
                      if neutral_counter name then begin
                        if old_v <> new_v then
                          missing :=
                            Printf.sprintf "%s/counter:%s (workload size %g -> %g)"
                              strategy name old_v new_v
                            :: !missing
                      end
                      else
                        acc :=
                          classify ~threshold ~strategy
                            ~metric:("counter:" ^ name) ~old_v ~new_v !acc
                  | Some _, None ->
                      missing := Printf.sprintf "%s/counter:%s" strategy name :: !missing
                  | _ -> ())
                old_cs
          | _ -> ());
          (match (member "histograms" old_entry, member "histograms" new_entry) with
          | Some (Obj old_hs), Some new_hs ->
              List.iter
                (fun (name, summary) ->
                  match member name new_hs with
                  | None ->
                      missing := Printf.sprintf "%s/histogram:%s" strategy name :: !missing
                  | Some new_summary -> (
                      match
                        (num (member "mean" summary), num (member "mean" new_summary))
                      with
                      | Some old_v, Some new_v ->
                          acc :=
                            classify ~threshold ~strategy
                              ~metric:("histogram:" ^ name ^ " mean") ~old_v
                              ~new_v !acc
                      | _ -> ()))
                old_hs
          | _ -> ()))
    strategies;
  let regressions, improvements = !acc in
  {
    threshold;
    regressions = List.rev regressions;
    improvements = List.rev improvements;
    missing = List.rev !missing;
  }

let render_change c =
  let delta = relative_increase ~old_v:c.old_value ~new_v:c.new_value in
  Printf.sprintf "  %s %s: %g -> %g (%+.1f%%)" c.strategy c.metric c.old_value
    c.new_value (100.0 *. delta)

let render r =
  let buf = Buffer.create 256 in
  if r.regressions = [] && r.improvements = [] && r.missing = [] then
    Buffer.add_string buf
      (Printf.sprintf "no changes beyond %.0f%% threshold\n" (100.0 *. r.threshold))
  else begin
    if r.regressions <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "regressions (> %.0f%% worse):\n" (100.0 *. r.threshold));
      List.iter (fun c -> Buffer.add_string buf (render_change c ^ "\n")) r.regressions
    end;
    if r.improvements <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "improvements (> %.0f%% better):\n" (100.0 *. r.threshold));
      List.iter (fun c -> Buffer.add_string buf (render_change c ^ "\n")) r.improvements
    end;
    if r.missing <> [] then begin
      Buffer.add_string buf "missing or mismatched in new dump:\n";
      List.iter (fun m -> Buffer.add_string buf ("  " ^ m ^ "\n")) r.missing
    end
  end;
  Buffer.contents buf
