let of_floats ~est ~actual =
  let e = Float.max 1.0 est in
  let a = Float.max 1.0 actual in
  Float.max (e /. a) (a /. e)

let value ~est ~actual = of_floats ~est ~actual:(float_of_int actual)

let underestimated ~est ~actual =
  Float.max 1.0 est < Float.max 1.0 (float_of_int actual)
