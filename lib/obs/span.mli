(** Re-export of {!Qs_util.Span}, so the observability library offers
    the tracer next to its exporters ({!Chrome_trace}, {!Profile}). The
    recorder itself lives in [Qs_util] because [Pool] and the optimizer
    — below this library in the dependency order — emit spans too. *)

include module type of struct
  include Qs_util.Span
end
