(** Streaming histogram over non-negative measurements (Q-errors, seconds,
    bytes, row counts) with bounded relative error on quantiles.

    Values are counted into geometric buckets (ratio [gamma] between
    consecutive bucket bounds), so a histogram is a fixed few-KB array no
    matter how many observations it absorbs, and any quantile is answered
    from cumulative counts with relative error at most [sqrt gamma - 1]
    (under 5%). Min, max, count and sum are tracked exactly. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one measurement. Negative or NaN values are clamped to 0. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** NaN on an empty histogram, like {!min_value} and {!max_value}. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for p ∈ \[0,1\]: the nearest-rank quantile,
    reconstructed as the geometric midpoint of the bucket holding that
    rank and clamped into \[min, max\], so p = 0 and p = 1 are exact.
    NaN on an empty histogram. *)

val merge : into:t -> t -> unit
(** Accumulate a second histogram's observations. *)

val max_relative_error : float
(** The quantile accuracy guarantee: [sqrt gamma - 1]. *)
