(** Streaming histogram over non-negative measurements (Q-errors, seconds,
    bytes, row counts) with bounded relative error on quantiles.

    Values are counted into geometric buckets (ratio [gamma] between
    consecutive bucket bounds), so a histogram is a fixed few-KB array no
    matter how many observations it absorbs, and any quantile is answered
    from cumulative counts with relative error at most [sqrt gamma - 1]
    (under 5%). Min, max, count and sum are tracked exactly. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one measurement. Negative or NaN values are clamped to 0. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** NaN on an empty histogram, like {!min_value} and {!max_value}. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for p ∈ \[0,1\]: the nearest-rank quantile.
    The extreme ranks answer from the exactly-tracked envelope — p = 0
    is the exact minimum, p = 1 the exact maximum, and a single-sample
    histogram returns that sample for every p; interior ranks are
    reconstructed as the geometric midpoint of the bucket holding the
    rank, clamped into \[min, max\]. 0.0 on an empty histogram (never
    NaN — callers threshold against it). *)

val merge : into:t -> t -> unit
(** Accumulate a second histogram's observations. *)

val max_relative_error : float
(** The quantile accuracy guarantee: [sqrt gamma - 1]. *)
