module Physical = Qs_plan.Physical
module Fragment = Qs_stats.Fragment
module Expr = Qs_query.Expr
module Index = Qs_storage.Index

let ms t = Printf.sprintf "%.2fms" (t *. 1000.0)

let bytes b =
  if b < 1024 then Printf.sprintf "%dB" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1fKB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%.2fMB" (float_of_int b /. 1024.0 /. 1024.0)

let children (p : Physical.t) =
  match p.Physical.node with
  | Physical.Scan _ -> []
  | Physical.Join j -> [ j.Physical.left; j.Physical.right ]

let annotation ?trace ?(timings = true) (p : Physical.t) =
  match trace with
  | None -> Printf.sprintf "(est=%.0f)" p.Physical.est_rows
  | Some tr -> (
      match Trace.find tr p.Physical.id with
      | None -> Printf.sprintf "(est=%.0f never executed)" p.Physical.est_rows
      | Some n ->
          let base =
            Printf.sprintf "(est=%.0f actual=%d q=%.2f)" p.Physical.est_rows
              n.Trace.actual_rows (Trace.qerror n)
          in
          if not timings then base
          else
            Printf.sprintf "%s time=%s self=%s bytes=%s" base (ms n.Trace.elapsed)
              (ms (Trace.self_time tr n))
              (bytes n.Trace.output_bytes))

let volumes ?trace (p : Physical.t) =
  match trace with
  | None -> ""
  | Some tr -> (
      match (Trace.find tr p.Physical.id, p.Physical.node) with
      | Some n, Physical.Scan _ ->
          Printf.sprintf " scanned=%d" n.Trace.rows_scanned
      | Some n, Physical.Join { method_ = Physical.Hash; _ } ->
          Printf.sprintf " built=%d probed=%d" n.Trace.rows_built n.Trace.rows_probed
      | Some n, Physical.Join _ -> Printf.sprintf " outer=%d" n.Trace.rows_probed
      | None, _ -> "")

let render ?trace ?(timings = true) plan =
  let buf = Buffer.create 512 in
  let rec go (p : Physical.t) indent =
    let pad = String.make (indent * 2) ' ' in
    (match p.Physical.node with
    | Physical.Scan i ->
        Buffer.add_string buf
          (Printf.sprintf "%sScan %s%s%s  %s%s\n" pad i.Fragment.id
             (if i.Fragment.is_temp then " [temp]" else "")
             (match List.length i.Fragment.filters with
             | 0 -> ""
             | k -> Printf.sprintf " [%d filters]" k)
             (annotation ?trace ~timings p)
             (if timings then volumes ?trace p else ""))
    | Physical.Join j ->
        let idx =
          match j.Physical.index with
          | Some (ix, _, _) -> " index=" ^ Index.name ix
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s on %s%s  %s%s\n" pad
             (Physical.method_name j.Physical.method_)
             (String.concat " AND " (List.map Expr.to_string j.Physical.preds))
             idx
             (annotation ?trace ~timings p)
             (if timings then volumes ?trace p else ""));
        go j.Physical.left (indent + 1);
        go j.Physical.right (indent + 1))
  in
  go plan 0;
  Buffer.contents buf

let summary ~trace plan =
  let nodes = ref 0 and max_q = ref 1.0 and sum_q = ref 0.0 in
  let under = ref 0 in
  let rec go (p : Physical.t) =
    (match Trace.find trace p.Physical.id with
    | Some n ->
        incr nodes;
        let q = Trace.qerror n in
        if q > !max_q then max_q := q;
        sum_q := !sum_q +. q;
        if Qerror.underestimated ~est:n.Trace.est_rows ~actual:n.Trace.actual_rows
        then incr under
    | None -> ());
    List.iter go (children p)
  in
  go plan;
  if !nodes = 0 then "0 nodes traced"
  else
    Printf.sprintf "%d nodes, q-error max=%.2f mean=%.2f, underest=%.0f%%" !nodes
      !max_q
      (!sum_q /. float_of_int !nodes)
      (100.0 *. float_of_int !under /. float_of_int !nodes)
