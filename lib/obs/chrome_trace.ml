(* Chrome trace_event exporter (the JSON-array flavour): one complete
   ("ph":"X") event per closed span plus one thread_name metadata event
   per track, so Perfetto / chrome://tracing lays spans out on one row
   per domain. Timestamps and durations are microseconds relative to
   tracer creation — non-negative by construction in [Span]. *)

module Span = Qs_util.Span

let str s = "\"" ^ Metrics.escape s ^ "\""
let us seconds = Printf.sprintf "%.3f" (seconds *. 1e6)

let args_json args =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "%s: %s" (str k) (str v)) args
  in
  "{" ^ String.concat ", " fields ^ "}"

let event (s : Span.span) =
  Printf.sprintf
    "{\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \
     \"ts\": %s, \"dur\": %s, \"args\": %s}"
    (str s.Span.name)
    (str (Span.category_name s.Span.cat))
    s.Span.track (us s.Span.start) (us s.Span.dur)
    (args_json (("id", string_of_int s.Span.id) :: s.Span.args))

let thread_meta track =
  Printf.sprintf
    "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
     \"args\": {\"name\": \"domain-%d\"}}"
    track track

let to_json t =
  let spans = Span.spans t in
  let tracks =
    List.sort_uniq Int.compare (List.map (fun s -> s.Span.track) spans)
  in
  let lines = List.map thread_meta tracks @ List.map event spans in
  "[\n" ^ String.concat ",\n" lines ^ "\n]\n"

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
