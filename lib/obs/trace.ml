type node = {
  id : int;
  mutable est_rows : float;
  mutable actual_rows : int;
  mutable elapsed : float;
  mutable output_bytes : int;
  mutable rows_scanned : int;
  mutable rows_built : int;
  mutable rows_probed : int;
  mutable children : int list;
}

type t = { nodes : (int, node) Hashtbl.t }

let create () = { nodes = Hashtbl.create 32 }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
      let n =
        {
          id; est_rows = 0.0; actual_rows = 0; elapsed = 0.0; output_bytes = 0;
          rows_scanned = 0; rows_built = 0; rows_probed = 0; children = [];
        }
      in
      Hashtbl.replace t.nodes id n;
      n

let find t id = Hashtbl.find_opt t.nodes id

let size t = Hashtbl.length t.nodes

let qerror n = Qerror.value ~est:n.est_rows ~actual:n.actual_rows

let iter t f = Hashtbl.iter (fun _ n -> f n) t.nodes

(* [elapsed] is inclusive of children, so self time is what remains after
   subtracting every recorded child; clock granularity can make the
   subtraction go (slightly) negative, hence the clamp. *)
let self_time t n =
  let s =
    List.fold_left
      (fun acc cid ->
        match find t cid with Some c -> acc -. c.elapsed | None -> acc)
      n.elapsed n.children
  in
  Float.max 0.0 s

let total_output_bytes t =
  Hashtbl.fold (fun _ n acc -> acc + n.output_bytes) t.nodes 0
