(* One flight record per admitted query. The live collector is written
   by exactly one domain at a time (the worker executing the query), so
   the journal is a single-writer atomic list and the counters are
   plain atomics — a concurrent snapshot reader always sees a
   consistent prefix, never a torn record. Executor- and storage-level
   instrumentation reaches the collector through a domain-local
   ambient slot ([with_current]): the hooks cost one DLS read when no
   flight is active, so non-serving paths stay free. *)

module Span = Qs_util.Span
module Timer = Qs_util.Timer

type status = Completed | Deadline_exceeded | Cancelled | Failed of string

let status_name = function
  | Completed -> "completed"
  | Deadline_exceeded -> "deadline"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

type step = {
  subquery : string;
  score : float option;
  est_rows : float;
  actual_rows : int;
  replanned : bool;
  remaining : int;
}

type counters = {
  intermediate_tables : int;
  partition_reuses : int;
  faults : int;
  bypasses : int;
}

type t = {
  id : int;
  session : string;
  statement : string;
  strategy : string;
  cache_hit : bool;
  est_cost : float;
  submitted : float;
  mutable dispatched : float; (* 0.0 until dispatch *)
  steps_rev : step list Atomic.t; (* newest first; single writer *)
  intermediates : int Atomic.t;
  reuses : int Atomic.t;
  tracer : Span.t option;
}

type record = {
  r_id : int;
  r_session : string;
  r_statement : string;
  r_strategy : string;
  r_cache_hit : bool;
  r_status : status;
  r_row_count : int;
  r_est_cost : float;
  r_queue_wait : float;
  r_exec_time : float;
  r_journal : step list; (* oldest first *)
  r_phases : (string * int * float) list; (* category, spans, seconds *)
  r_counters : counters;
  r_sampled : bool;
  r_spans : Span.span list; (* full span tree iff [r_sampled] *)
  r_seq : int; (* completion order, assigned by the telemetry ring *)
}

let create ?(tracer = false) ~id ~session ~statement ~strategy ~cache_hit
    ~est_cost ~submitted () =
  {
    id; session; statement; strategy; cache_hit; est_cost; submitted;
    dispatched = 0.0;
    steps_rev = Atomic.make [];
    intermediates = Atomic.make 0;
    reuses = Atomic.make 0;
    tracer = (if tracer then Some (Span.create ()) else None);
  }

let spans t = t.tracer
let id t = t.id
let session t = t.session
let statement t = t.statement
let strategy_name t = t.strategy
let submitted t = t.submitted
let mark_dispatched t = t.dispatched <- Timer.now ()
let dispatched t = t.dispatched > 0.0
let journal t = List.rev (Atomic.get t.steps_rev)
let n_steps t = List.length (Atomic.get t.steps_rev)

let step t ?score ~subquery ~est_rows ~actual_rows ~replanned ~remaining () =
  match t with
  | None -> ()
  | Some t ->
      let s = { subquery; score; est_rows; actual_rows; replanned; remaining } in
      (* single writer: a plain read-modify-write set is never lost *)
      Atomic.set t.steps_rev (s :: Atomic.get t.steps_rev)

(* --- ambient collector ------------------------------------------------- *)

(* The flight the current domain is executing for, if any. Set around
   one query's execution; instrumented code (the executor's
   intermediate-table and partition-reuse accounting) bumps the active
   flight without any parameter threading. Work fanned out to *other*
   pool domains inside a query is not attributed — acceptable for
   telemetry, exact for single-domain execution (the serving default). *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_current fl f =
  let old = Domain.DLS.get current in
  Domain.DLS.set current fl;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current old) f

let on_intermediate_table () =
  match Domain.DLS.get current with
  | Some fl -> Atomic.incr fl.intermediates
  | None -> ()

let on_partition_reuse () =
  match Domain.DLS.get current with
  | Some fl -> Atomic.incr fl.reuses
  | None -> ()

(* --- completion -------------------------------------------------------- *)

(* Per-phase rollup of the flight's own span tree: total recorded time
   and span count per category, in the fixed category order. Kept even
   when the full tree is dropped by tail sampling. *)
let rollup = function
  | None -> []
  | Some tracer ->
      let spans = Span.spans tracer in
      List.filter_map
        (fun cat ->
          let mine =
            List.filter (fun (s : Span.span) -> s.Span.cat = cat) spans
          in
          if mine = [] then None
          else
            let total =
              List.fold_left
                (fun acc (s : Span.span) -> acc +. s.Span.dur)
                0.0 mine
            in
            Some (Span.category_name cat, List.length mine, total))
        Span.all_categories

let finish t ~status ~row_count ~queue_wait ~exec_time ~faults ~bypasses
    ~sampled ~seq =
  {
    r_id = t.id;
    r_session = t.session;
    r_statement = t.statement;
    r_strategy = t.strategy;
    r_cache_hit = t.cache_hit;
    r_status = status;
    r_row_count = row_count;
    r_est_cost = t.est_cost;
    r_queue_wait = queue_wait;
    r_exec_time = exec_time;
    r_journal = journal t;
    r_phases = rollup t.tracer;
    r_counters =
      {
        intermediate_tables = Atomic.get t.intermediates;
        partition_reuses = Atomic.get t.reuses;
        faults;
        bypasses;
      };
    r_sampled = sampled;
    r_spans = (if sampled then match t.tracer with
               | Some tr -> Span.spans tr
               | None -> []
               else []);
    r_seq = seq;
  }
