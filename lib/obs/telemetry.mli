(** Always-on serving telemetry: a bounded, domain-safe flight recorder
    for the query-serving path.

    Every admitted query gets a {!Flight.t} collector ({!admit});
    completion ({!complete}) freezes it into a {!Flight.record} and
    pushes it onto a lock-striped ring buffer — fixed memory,
    overwrite-oldest, safe to write from many worker domains while a
    reader snapshots. Latency histograms (per final status) and a small
    set of cumulative counters accumulate alongside.

    {b Tail sampling}: full span trees are retained only for flights
    that end in error / deadline / cancellation, or for successes whose
    {e execution} time lands at or above [slow_quantile] of the
    streaming success-exec-time histogram (once [min_samples]
    observations exist). The bar is execution time rather than
    turnaround on purpose: queue wait grows with backlog, so under load
    every flight's turnaround would beat its predecessors' and the
    sampler would keep everything. Every other record keeps just the
    per-phase rollup, so memory stays bounded regardless of traffic.
    The sampling decision is made against the histogram {e before} the
    flight's own observation is added, so a flight never qualifies
    merely by raising the bar for itself.

    Three read surfaces: {!snapshot} (structured, in-process),
    {!render} (text dashboard; byte-stable with [~timings:false]), and
    {!to_prometheus} (scrapable text exposition). {!metrics} bridges
    into the existing {!Metrics} JSON report for CI gating. *)

type config = {
  enabled : bool;
  capacity : int;  (** total retained flight records across all stripes *)
  stripes : int;  (** ring lock stripes; clamped into [1, capacity] *)
  slow_quantile : float;
      (** successes at or above this execution-time quantile keep full
          span trees (e.g. 0.95) *)
  min_samples : int;
      (** successes are never tail-sampled until this many success
          observations exist — the quantile is meaningless before *)
}

val default_config : config
(** Enabled; 256 records over 8 stripes; slow quantile 0.95 after 32
    samples. *)

val disabled : config
(** [default_config] with [enabled = false]: {!admit} returns [None]
    and the serving path records nothing. *)

type t

val create : ?config:config -> unit -> t

val enabled : t -> bool

val capacity : t -> int
(** Actual retained-record capacity after stripe rounding. *)

(** {1 Flight lifecycle — called by the server} *)

val admit :
  t ->
  ?external_tracer:bool ->
  id:int ->
  session:string ->
  statement:string ->
  strategy:string ->
  cache_hit:bool ->
  est_cost:float ->
  unit ->
  Flight.t option
(** Register an admitted query; [None] when telemetry is disabled. The
    flight carries its own span tracer unless [external_tracer] is set
    (the server already attached an explicit {!Qs_util.Span} recorder —
    that one wins, and phase rollups come from it being threaded
    through execution instead). *)

val dispatch : t -> Flight.t -> unit
(** Mark the flight as leaving the admission queue for a worker. *)

val complete :
  t ->
  Flight.t ->
  status:Flight.status ->
  row_count:int ->
  queue_wait:float ->
  exec_time:float ->
  faults:int ->
  bypasses:int ->
  Flight.record
(** Finalize: decide tail sampling, observe [queue_wait + exec_time]
    into the status's latency histogram, bump cumulative counters,
    assign the completion sequence number, and push the frozen record
    onto the ring (overwriting the oldest once full). *)

(** {1 Read surfaces} *)

type latency_summary = {
  l_count : int;
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_max : float;
}

type active_flight = {
  a_id : int;
  a_session : string;
  a_statement : string;
  a_strategy : string;
  a_running : bool;  (** dispatched to a worker vs. still queued *)
  a_age : float;  (** seconds since admission *)
  a_steps : int;  (** re-optimization journal entries so far *)
}

type snapshot = {
  s_admitted : int;
  s_completed : int;
  s_counters : (string * int) list;  (** sorted by name *)
  s_active : active_flight list;  (** sorted by admission id *)
  s_recent : Flight.record list;
      (** ring contents by completion seq, oldest first — the globally
          most recent [capacity] flights *)
  s_latency : (string * latency_summary) list;  (** by status name *)
}

val snapshot : t -> snapshot
(** Consistent-enough live view: each ring stripe is locked briefly in
    turn (never all at once), active flights are read through their
    atomics, so serving is never paused. After the server drains, the
    view is exact. *)

val render : ?timings:bool -> ?slowest:int -> snapshot -> string
(** Text dashboard: admission/completion counters, in-flight queries,
    latency quantiles by status, and the slowest [slowest] (default 8)
    recent flights with their re-optimization journals. With
    [~timings:false] every wall-clock-dependent line (latencies, ages,
    phases, sampling flags) is omitted and recent flights print in
    completion order — byte-stable for a deterministic workload. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [qs_flights_total{status=...}],
    [qs_latency_seconds{status,quantile}] summaries, in-flight / queue
    gauges, and the cumulative executor / buffer-pool counters. *)

val metrics : t -> Metrics.t
(** The telemetry state as a fresh metrics registry (counters plus
    per-status turnaround histograms) for the harness's JSON report. *)
