(* Bounded cache of resident chunk frames with CLOCK eviction and
   asynchronous prefetch.

   One mutex guards the whole pool: lookups, victim search and counter
   updates are short critical sections; the actual disk reads happen
   outside the lock. A frame moves through three states:

     Queued   — reserved by a prefetch request, read not started. A
                foreground miss *steals* the frame (becomes the loader
                itself) and the prefetch job later finds the state
                changed and does nothing, so a queued-but-never-run
                prefetch job (size-1 pool, nobody helping) can never
                wedge a reader.
     Loading  — some domain is actively reading the frame from disk.
                Waiters block on the condition variable; the loader is
                running, so it will complete and broadcast.
     Loaded   — rows resident; hits set the CLOCK reference bit.

   Eviction only considers unpinned Loaded (or cancellable Queued)
   frames; when every frame is pinned or in flight the read bypasses
   the pool entirely (correct, just uncached), so the pool can be
   arbitrarily small — capacity 1 still executes every query. *)

module Pool = Qs_util.Pool
module Span = Qs_util.Span

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  bypasses : int;
  evictions : int;
  prefetch_issued : int;
  prefetch_used : int;
  prefetch_wasted : int;
}

type state = Queued | Loading | Loaded of Chunk.t

type frame = {
  file : Chunk_file.t;
  idx : int;
  mutable state : state;
  mutable pins : int;
  mutable refbit : bool;
  mutable prefetched : bool;  (* installed by a prefetch request *)
  mutable referenced : bool;  (* hit by a consumer since install *)
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  capacity : int;
  prefetch_depth : int;
  slots : frame option array;
  index : (int * int, int) Hashtbl.t;  (* (file id, chunk idx) -> slot *)
  mutable hand : int;
  mutable io_pool : Pool.t option;
  mutable tracer : Span.t option;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable bypasses : int;
  mutable evictions : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_wasted : int;
}

let create ?(prefetch = 2) ~capacity () =
  let capacity = max 1 capacity in
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    capacity;
    prefetch_depth = max 0 prefetch;
    slots = Array.make capacity None;
    index = Hashtbl.create (4 * capacity);
    hand = 0;
    io_pool = None;
    tracer = None;
    hits = 0;
    misses = 0;
    coalesced = 0;
    bypasses = 0;
    evictions = 0;
    prefetch_issued = 0;
    prefetch_used = 0;
    prefetch_wasted = 0;
  }

let capacity t = t.capacity
let prefetch_depth t = t.prefetch_depth
let set_io_pool t p = t.io_pool <- p
let set_tracer t tr = t.tracer <- tr

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      coalesced = t.coalesced;
      bypasses = t.bypasses;
      evictions = t.evictions;
      prefetch_issued = t.prefetch_issued;
      prefetch_used = t.prefetch_used;
      prefetch_wasted = t.prefetch_wasted;
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.hits <- 0;
  t.misses <- 0;
  t.coalesced <- 0;
  t.bypasses <- 0;
  t.evictions <- 0;
  t.prefetch_issued <- 0;
  t.prefetch_used <- 0;
  t.prefetch_wasted <- 0;
  Mutex.unlock t.mutex

let pinned t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left
      (fun acc -> function Some fr -> acc + fr.pins | None -> acc)
      0 t.slots
  in
  Mutex.unlock t.mutex;
  n

let resident t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left
      (fun acc -> function
        | Some { state = Loaded _; _ } -> acc + 1
        | _ -> acc)
      0 t.slots
  in
  Mutex.unlock t.mutex;
  n

let read_frame t ~what file idx =
  Span.span
    ~args:
      [
        ("file", Filename.basename (Chunk_file.path file));
        ("chunk", string_of_int idx);
      ]
    t.tracer Span.Io what
    (fun () -> Chunk_file.read file idx)

(* Victim slot under the mutex: a free slot if any, else CLOCK
   second-chance over unpinned Loaded frames; an unpinned Queued frame
   is a cancellable reservation and is taken in preference to evicting
   data. Returns [None] when everything is pinned or in flight. *)
let find_slot t =
  let free = ref None in
  Array.iteri
    (fun i s -> if s = None && !free = None then free := Some i)
    t.slots;
  match !free with
  | Some _ as s -> s
  | None ->
      let victim = ref None in
      let steps = ref 0 in
      while !victim = None && !steps < 2 * t.capacity do
        incr steps;
        let i = t.hand in
        t.hand <- (t.hand + 1) mod t.capacity;
        match t.slots.(i) with
        | Some fr when fr.pins = 0 -> (
            match fr.state with
            | Queued ->
                (* cancel the reservation; the prefetch job will find the
                   frame gone and no-op *)
                Hashtbl.remove t.index (Chunk_file.id fr.file, fr.idx);
                t.slots.(i) <- None;
                victim := Some i
            | Loaded _ when not fr.refbit ->
                if fr.prefetched && not fr.referenced then
                  t.prefetch_wasted <- t.prefetch_wasted + 1;
                t.evictions <- t.evictions + 1;
                Hashtbl.remove t.index (Chunk_file.id fr.file, fr.idx);
                t.slots.(i) <- None;
                victim := Some i
            | Loaded _ -> fr.refbit <- false
            | Loading -> ())
        | _ -> ()
      done;
      !victim

(* Load a frame this caller owns (state already set to Loading, mutex
   NOT held). On failure the frame is torn down so waiters retry and
   observe the exception on their own read. *)
let load_owned t fr ~what ~pin =
  let chunk =
    try read_frame t ~what fr.file fr.idx
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock t.mutex;
      let key = (Chunk_file.id fr.file, fr.idx) in
      (match Hashtbl.find_opt t.index key with
      | Some si -> (
          match t.slots.(si) with
          | Some fr' when fr' == fr ->
              Hashtbl.remove t.index key;
              t.slots.(si) <- None
          | _ -> ())
      | None -> ());
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      Printexc.raise_with_backtrace e bt
  in
  Mutex.lock t.mutex;
  fr.state <- Loaded chunk;
  fr.refbit <- true;
  if pin then fr.pins <- fr.pins + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  chunk

let unpin t file idx =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.index (Chunk_file.id file, idx) with
  | Some si -> (
      match t.slots.(si) with
      | Some fr when fr.pins > 0 -> fr.pins <- fr.pins - 1
      | _ -> ())
  | None -> ());
  Mutex.unlock t.mutex

(* The faulting read path. Returns the chunk plus whether a pin was
   actually taken (a bypass read has no frame to pin). *)
let rec acquire t file idx ~pin =
  let key = (Chunk_file.id file, idx) in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.index key with
  | Some si -> (
      let fr =
        match t.slots.(si) with
        | Some fr -> fr
        | None -> assert false (* index and slots move together *)
      in
      match fr.state with
      | Loaded chunk ->
          t.hits <- t.hits + 1;
          if fr.prefetched && not fr.referenced then
            t.prefetch_used <- t.prefetch_used + 1;
          fr.referenced <- true;
          fr.refbit <- true;
          if pin then fr.pins <- fr.pins + 1;
          Mutex.unlock t.mutex;
          (chunk, pin)
      | Loading ->
          (* the loader is actively running on some domain: wait for its
             broadcast, then re-resolve (the frame may have been torn
             down if the load failed, or even evicted and re-entered) *)
          t.coalesced <- t.coalesced + 1;
          Condition.wait t.cond t.mutex;
          Mutex.unlock t.mutex;
          acquire t file idx ~pin
      | Queued ->
          (* steal the reservation: do the read ourselves rather than
             wait on a prefetch job that may never be scheduled *)
          fr.state <- Loading;
          fr.prefetched <- false;
          fr.referenced <- true;
          t.misses <- t.misses + 1;
          Mutex.unlock t.mutex;
          (load_owned t fr ~what:"fault" ~pin, pin))
  | None -> (
      match find_slot t with
      | Some si ->
          let fr =
            {
              file;
              idx;
              state = Loading;
              pins = 0;
              refbit = false;
              prefetched = false;
              referenced = true;
            }
          in
          t.slots.(si) <- Some fr;
          Hashtbl.replace t.index key si;
          t.misses <- t.misses + 1;
          Mutex.unlock t.mutex;
          (load_owned t fr ~what:"fault" ~pin, pin)
      | None ->
          (* every frame pinned or in flight: read around the pool *)
          t.bypasses <- t.bypasses + 1;
          Mutex.unlock t.mutex;
          (read_frame t ~what:"fault" file idx, false))

let get t file idx = fst (acquire t file idx ~pin:false)

let with_pin t file idx f =
  let chunk, pinned = acquire t file idx ~pin:true in
  if pinned then
    Fun.protect ~finally:(fun () -> unpin t file idx) (fun () -> f chunk)
  else f chunk

(* Asynchronous prefetch: reserve Queued frames under the mutex, then
   hand the reads to the I/O pool. Without an attached pool this is a
   no-op — the foreground fault path is always sufficient. Reservation
   stops at the first chunk for which no evictable slot exists: refusing
   to prefetch beats thrashing the frames a scan is about to revisit. *)
let prefetch t file idxs =
  match t.io_pool with
  | None -> ()
  | Some pool ->
      let jobs = ref [] in
      Mutex.lock t.mutex;
      (try
         List.iter
           (fun idx ->
             if idx >= 0 && idx < Chunk_file.n_frames file then begin
               let key = (Chunk_file.id file, idx) in
               if not (Hashtbl.mem t.index key) then
                 match find_slot t with
                 | None -> raise Exit
                 | Some si ->
                     let fr =
                       {
                         file;
                         idx;
                         state = Queued;
                         pins = 0;
                         refbit = false;
                         prefetched = true;
                         referenced = false;
                       }
                     in
                     t.slots.(si) <- Some fr;
                     Hashtbl.replace t.index key si;
                     t.prefetch_issued <- t.prefetch_issued + 1;
                     jobs := fr :: !jobs
             end)
           idxs
       with Exit -> ());
      Mutex.unlock t.mutex;
      List.iter
        (fun fr ->
          Pool.submit pool (fun () ->
              Mutex.lock t.mutex;
              let mine =
                match
                  Hashtbl.find_opt t.index (Chunk_file.id fr.file, fr.idx)
                with
                | Some si -> (
                    match t.slots.(si) with
                    | Some fr' when fr' == fr && fr.state = Queued ->
                        fr.state <- Loading;
                        true
                    | _ -> false (* stolen by a fault *))
                | None -> false (* reservation evicted *)
              in
              Mutex.unlock t.mutex;
              if mine then ignore (load_owned t fr ~what:"prefetch" ~pin:false)))
        (List.rev !jobs)
