(** Bounded buffer pool of resident chunk frames.

    The faulting read path of spilled tables: {!get} returns a chunk
    (in whichever layout it was spilled with), reading it from the
    {!Chunk_file} on a miss and caching it in one of [capacity] frames
    under CLOCK (second-chance) eviction. Pinned frames ({!with_pin}) are never evicted; when every
    frame is pinned or mid-read, a miss bypasses the pool and reads
    uncached, so correctness never depends on capacity — a pool of 1
    still executes every query, just with more I/O.

    All state is guarded by one mutex and safe to share across domains;
    disk reads happen outside the lock. Concurrent faults of the same
    chunk coalesce: one domain reads, the rest wait on its broadcast.

    {!prefetch} reserves frames for upcoming chunks and hands the reads
    to an attached {!Qs_util.Pool} via [Pool.submit], so sequential
    scans overlap I/O with CPU work. A reservation not yet started is
    *stolen* by the first foreground miss (the reader does the I/O
    itself) — a prefetch job stuck in the queue of a busy or size-1
    pool can never block a reader. *)

type t

type stats = {
  hits : int;  (** chunk already resident *)
  misses : int;  (** chunk read on the calling domain *)
  coalesced : int;  (** waited for another domain's in-flight read *)
  bypasses : int;  (** read uncached: every frame pinned or in flight *)
  evictions : int;  (** loaded frames evicted *)
  prefetch_issued : int;  (** frames reserved for asynchronous reads *)
  prefetch_used : int;  (** prefetched frames later hit by a consumer *)
  prefetch_wasted : int;  (** prefetched frames evicted without a hit *)
}

val create : ?prefetch:int -> capacity:int -> unit -> t
(** [create ~capacity ()] makes a pool of [max 1 capacity] frames.
    [prefetch] (default 2) is the lookahead depth {!Table} uses when
    scanning a spilled table through this pool. *)

val capacity : t -> int

val prefetch_depth : t -> int

val set_io_pool : t -> Qs_util.Pool.t option -> unit
(** Attach the worker pool that runs prefetch reads. With [None]
    (the default) {!prefetch} is a no-op and every read is a
    synchronous foreground fault. *)

val set_tracer : t -> Qs_util.Span.t option -> unit
(** With a tracer attached, every disk read records an [io] span
    (names [fault] / [prefetch]) on the reading domain's track. *)

val get : t -> Chunk_file.t -> int -> Chunk.t
(** [get t file i] returns chunk [i], faulting it in on a miss. The
    returned chunk is shared — do not mutate. It stays valid after
    eviction (the GC keeps it alive while referenced). *)

val with_pin : t -> Chunk_file.t -> int -> (Chunk.t -> 'a) -> 'a
(** [with_pin t file i f] runs [f chunk] with the frame pinned, so a
    scan's current chunk cannot be evicted under it. The pin is
    released on return and on exception (cancellation-safe); a bypass
    read has no frame and pins nothing. *)

val prefetch : t -> Chunk_file.t -> int list -> unit
(** Reserve frames for the given chunks and enqueue their reads on the
    attached I/O pool. Out-of-range and already-resident chunks are
    skipped; reservation stops early when no evictable frame is left
    (never thrashes pinned or recently-used frames). No-op without an
    attached pool. *)

val stats : t -> stats

val reset_stats : t -> unit

val pinned : t -> int
(** Total outstanding pins (0 when no scan is mid-chunk) — the
    leak-check hook for cancellation tests. *)

val resident : t -> int
(** Number of frames currently holding loaded rows. *)
