type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

let constructor_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numeric values share a rank so Int/Float compare numerically *)
  | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 1 else 2
  | Int i -> Hashtbl.hash i
  | Float f ->
      (* hash an Int-valued float like the equal Int, to match [equal] *)
      if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let is_null = function Null -> true | _ -> false

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let byte_size = function
  | Null | Bool _ | Int _ | Float _ -> 8
  | Str s -> 24 + String.length s

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp fmt v =
  match v with
  | Str s -> Format.fprintf fmt "%S" s
  | _ -> Format.pp_print_string fmt (to_string v)

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"

let pp_ty fmt ty = Format.pp_print_string fmt (ty_to_string ty)

let as_int = function
  | Int i -> i
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let as_string = function
  | Str s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let as_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Value.as_bool: " ^ to_string v)
