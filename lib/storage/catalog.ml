type fk = {
  from_table : string;
  from_column : string;
  to_table : string;
  to_column : string;
}

type index_config = Pk_only | Pk_fk

type t = {
  tables : (string, Table.t) Hashtbl.t;
  pks : (string, string) Hashtbl.t;
  mutable fk_list : fk list;
  indexes : (string * string, Index.t) Hashtbl.t;
  mutable config : index_config option;
}

let create () =
  {
    tables = Hashtbl.create 16;
    pks = Hashtbl.create 16;
    fk_list = [];
    indexes = Hashtbl.create 32;
    config = None;
  }

let add_table t ?pk (tbl : Table.t) =
  if Hashtbl.mem t.tables tbl.name then
    invalid_arg ("Catalog.add_table: duplicate table " ^ tbl.name);
  Hashtbl.replace t.tables tbl.name tbl;
  Option.iter
    (fun col ->
      if Schema.find_by_name tbl.schema col = None then
        invalid_arg (Printf.sprintf "Catalog.add_table: pk %s not in %s" col tbl.name);
      Hashtbl.replace t.pks tbl.name col)
    pk

let table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Catalog.table: unknown table " ^ name)

let mem_table t name = Hashtbl.mem t.tables name

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let add_fk t ~from_table ~from_column ~to_table ~to_column =
  ignore (table t from_table);
  ignore (table t to_table);
  t.fk_list <- { from_table; from_column; to_table; to_column } :: t.fk_list

let pk t name = Hashtbl.find_opt t.pks name

let fks t = t.fk_list

let fk_between t ~from_table ~to_table =
  List.find_opt (fun fk -> fk.from_table = from_table && fk.to_table = to_table) t.fk_list

let references t name = List.filter (fun fk -> fk.from_table = name) t.fk_list

let referenced_by t name = List.filter (fun fk -> fk.to_table = name) t.fk_list

let build_indexes t config =
  Hashtbl.reset t.indexes;
  t.config <- Some config;
  let add tbl column ~unique =
    let key = (tbl, column) in
    if not (Hashtbl.mem t.indexes key) then
      Hashtbl.replace t.indexes key (Index.build (table t tbl) ~column ~unique)
  in
  Hashtbl.iter (fun tbl col -> add tbl col ~unique:true) t.pks;
  match config with
  | Pk_only -> ()
  | Pk_fk ->
      List.iter (fun fk -> add fk.from_table fk.from_column ~unique:false) t.fk_list

let index_config t = t.config

let find_index t ~table ~column = Hashtbl.find_opt t.indexes (table, column)

let register_temp_index t idx =
  Hashtbl.replace t.indexes (idx.Index.table, idx.Index.column) idx

let total_bytes t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.byte_size tbl) t.tables 0
