(** A named B+Tree index over one column of a base table. *)

type t = private {
  table : string;
  column : string;
  unique : bool; (* true for primary-key indexes *)
  tree : Btree.t;
}

val build : Table.t -> column:string -> unique:bool -> t
(** Builds the tree over the named column; raises [Invalid_argument] if the
    column does not exist, or if [unique] is set and a duplicate non-null
    key is found. *)

val lookup : t -> Value.t -> int list
(** Row ids matching the key. *)

val name : t -> string
(** ["table.column"], the catalog key. *)
