(* On-disk chunk-file format for spilled tables. One write-once file per
   table: a fixed header followed by fixed-size frames, one frame per
   chunk, so a frame's offset is a multiplication away and faulting a
   chunk is a single seek + read.

     header  : magic "QSCF0001" | n_frames | frame_size | arity   (32 B)
     frame i : n_rows | used_bytes | serialized rows, zero-padded
               to frame_size                                      (16 B hdr)

   All integers are 8-byte big-endian. Values are serialized with a tag
   byte; floats round-trip through their IEEE bits so a reloaded chunk
   is value-for-value identical to the spilled one (digest parity).

   Reads open/seek/read/close per fault: no persistent file descriptors
   means no fd-per-table exhaustion and nothing to guard across domains
   — concurrent faults of the same file are independent reads. *)

type t = {
  id : int;  (* process-unique, the buffer pool's cache key *)
  path : string;
  n_frames : int;
  frame_size : int;  (* bytes per frame, header included *)
  arity : int;
}

let magic = "QSCF0001"
let header_size = 32
let frame_header_size = 16
let next_id = Atomic.make 0

let id t = t.id
let path t = t.path
let n_frames t = t.n_frames

(* --- value serialization ----------------------------------------------- *)

let ser_size = function
  | Value.Null -> 1
  | Value.Bool _ -> 2
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 5 + String.length s

let put_value buf v =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int i ->
      Buffer.add_char buf '\002';
      Buffer.add_int64_be buf (Int64.of_int i)
  | Value.Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_be buf (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_char buf '\004';
      Buffer.add_int32_be buf (Int32.of_int (String.length s));
      Buffer.add_string buf s

let corrupt path what =
  failwith (Printf.sprintf "Chunk_file %s: corrupt frame (%s)" path what)

let get_value path b pos =
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | '\000' -> Value.Null
  | '\001' ->
      let c = Bytes.get b !pos in
      incr pos;
      Value.Bool (c <> '\000')
  | '\002' ->
      let v = Bytes.get_int64_be b !pos in
      pos := !pos + 8;
      Value.Int (Int64.to_int v)
  | '\003' ->
      let v = Bytes.get_int64_be b !pos in
      pos := !pos + 8;
      Value.Float (Int64.float_of_bits v)
  | '\004' ->
      let len = Int32.to_int (Bytes.get_int32_be b !pos) in
      pos := !pos + 4;
      if len < 0 || !pos + len > Bytes.length b then corrupt path "string length";
      let s = Bytes.sub_string b !pos len in
      pos := !pos + len;
      Value.Str s
  | _ -> corrupt path "value tag"

(* --- writing ------------------------------------------------------------ *)

let sanitize name =
  let name = if String.length name > 40 then String.sub name 0 40 else name in
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    name

let put_i64 oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Out_channel.output_bytes oc b

let write ~dir ~name ~arity chunks =
  let n = Array.length chunks in
  if n = 0 then invalid_arg "Chunk_file.write: no chunks";
  (* pass 1: serialized + logical sizes; a zero-row frame would make the
     offset table ambiguous under faulting, so the writer rejects what
     Table.of_chunk_array should already have normalized away *)
  let logical = Array.make n 0 in
  let max_ser = ref 0 in
  Array.iteri
    (fun i chunk ->
      if Array.length chunk = 0 then
        invalid_arg
          (Printf.sprintf "Chunk_file.write %s: empty chunk %d" name i);
      let ser = ref 0 and log = ref 0 in
      Array.iter
        (fun row ->
          Array.iter
            (fun v ->
              ser := !ser + ser_size v;
              log := !log + Value.byte_size v)
            row)
        chunk;
      logical.(i) <- !log;
      if !ser > !max_ser then max_ser := !ser)
    chunks;
  let frame_size = frame_header_size + !max_ser in
  let id = Atomic.fetch_and_add next_id 1 in
  let path = Filename.concat dir (Printf.sprintf "t%06d-%s.qsc" id (sanitize name)) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc magic;
      put_i64 oc n;
      put_i64 oc frame_size;
      put_i64 oc arity;
      (* pass 2: serialize each chunk into its frame; seeking to the next
         frame start zero-extends, so short frames need no explicit pad *)
      let buf = Buffer.create (min !max_ser 65536) in
      Array.iteri
        (fun i chunk ->
          Out_channel.seek oc (Int64.of_int (header_size + (i * frame_size)));
          Buffer.clear buf;
          Array.iter (fun row -> Array.iter (put_value buf) row) chunk;
          put_i64 oc (Array.length chunk);
          put_i64 oc (Buffer.length buf);
          Out_channel.output_string oc (Buffer.contents buf))
        chunks);
  ({ id; path; n_frames = n; frame_size; arity }, logical)

(* --- reading ------------------------------------------------------------ *)

let get_i64 b off = Int64.to_int (Bytes.get_int64_be b off)

let read t i =
  if i < 0 || i >= t.n_frames then
    invalid_arg (Printf.sprintf "Chunk_file.read %s: frame %d of %d" t.path i t.n_frames);
  In_channel.with_open_bin t.path (fun ic ->
      In_channel.seek ic (Int64.of_int (header_size + (i * t.frame_size)));
      let hdr = Bytes.create frame_header_size in
      (match In_channel.really_input ic hdr 0 frame_header_size with
      | Some () -> ()
      | None -> corrupt t.path "truncated frame header");
      let n_rows = get_i64 hdr 0 in
      let used = get_i64 hdr 8 in
      if n_rows <= 0 then corrupt t.path "zero-row frame";
      if used < 0 || used > t.frame_size - frame_header_size then
        corrupt t.path "frame payload size";
      let payload = Bytes.create used in
      (match In_channel.really_input ic payload 0 used with
      | Some () -> ()
      | None -> corrupt t.path "truncated frame payload");
      let pos = ref 0 in
      let rows =
        Array.init n_rows (fun _ ->
            Array.init t.arity (fun _ -> get_value t.path payload pos))
      in
      if !pos <> used then corrupt t.path "frame payload trailer";
      rows)

let remove t = try Sys.remove t.path with Sys_error _ -> ()
