(* On-disk chunk-file format for spilled tables. One write-once file per
   table: a fixed header followed by fixed-size frames, one frame per
   chunk, so a frame's offset is a multiplication away and faulting a
   chunk is a single seek + read.

     header  : magic "QSCF0002" | n_frames | frame_size | arity   (32 B)
     frame i : n_rows | used_bytes | layout byte | payload,
               zero-padded to frame_size                          (16 B hdr)

   All integers are 8-byte big-endian unless noted. A frame's payload
   starts with a layout byte — 0 for a row-major chunk (tagged values,
   row-major order), 1 for a column-major chunk (per-column blocks, see
   below) — so either layout round-trips exactly through the same file
   and a spilled columnar table faults back in columnar. Floats ship as
   their IEEE bits, so a reloaded chunk is value-for-value identical to
   the spilled one (digest parity).

   The frame size is computed from the largest *serialized* chunk under
   its own layout ([ser_chunk_size], exact by construction): a
   dictionary-heavy string column can serialize larger than its row
   form (dict entries + 4-byte codes vs inline strings), so sizing from
   the row form would overflow frames.

   Reads open/seek/read/close per fault: no persistent file descriptors
   means no fd-per-table exhaustion and nothing to guard across domains
   — concurrent faults of the same file are independent reads. *)

type t = {
  id : int;  (* process-unique, the buffer pool's cache key *)
  path : string;
  n_frames : int;
  frame_size : int;  (* bytes per frame, header included *)
  arity : int;
}

let magic = "QSCF0002"
let header_size = 32
let frame_header_size = 16
let next_id = Atomic.make 0

let id t = t.id
let path t = t.path
let n_frames t = t.n_frames

(* --- value serialization ----------------------------------------------- *)

let ser_size = function
  | Value.Null -> 1
  | Value.Bool _ -> 2
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 5 + String.length s

let put_value buf v =
  match v with
  | Value.Null -> Buffer.add_char buf '\000'
  | Value.Bool b ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int i ->
      Buffer.add_char buf '\002';
      Buffer.add_int64_be buf (Int64.of_int i)
  | Value.Float f ->
      Buffer.add_char buf '\003';
      Buffer.add_int64_be buf (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_char buf '\004';
      Buffer.add_int32_be buf (Int32.of_int (String.length s));
      Buffer.add_string buf s

let corrupt path what =
  failwith (Printf.sprintf "Chunk_file %s: corrupt frame (%s)" path what)

let get_value path b pos =
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | '\000' -> Value.Null
  | '\001' ->
      let c = Bytes.get b !pos in
      incr pos;
      Value.Bool (c <> '\000')
  | '\002' ->
      let v = Bytes.get_int64_be b !pos in
      pos := !pos + 8;
      Value.Int (Int64.to_int v)
  | '\003' ->
      let v = Bytes.get_int64_be b !pos in
      pos := !pos + 8;
      Value.Float (Int64.float_of_bits v)
  | '\004' ->
      let len = Int32.to_int (Bytes.get_int32_be b !pos) in
      pos := !pos + 4;
      if len < 0 || !pos + len > Bytes.length b then corrupt path "string length";
      let s = Bytes.sub_string b !pos len in
      pos := !pos + len;
      Value.Str s
  | _ -> corrupt path "value tag"

(* --- columnar serialization --------------------------------------------- *)

(* Per-column block:
     tag byte ('I' int | 'F' float | 'B' bool | 'S' string dict | 'G' generic)
     nulls    : flag byte (0 = none), then ceil(n/8) bitset bytes if 1
                (generic columns carry no bitset — NULLs are inline)
     data     : I/F  8n bytes (i64 BE / IEEE bits)
                B    n bytes
                S    i32 dict count | per entry: i32 len + bytes | 4n i32 codes
                G    n tagged values *)

let nulls_ser_size n = function
  | None -> 1
  | Some _ -> 1 + ((n + 7) / 8)

let ser_col_size n (c : Columnar.column) =
  match c with
  | Columnar.CInt (_, nl) | Columnar.CFloat (_, nl) ->
      1 + nulls_ser_size n nl + (8 * n)
  | Columnar.CBool (_, nl) -> 1 + nulls_ser_size n nl + n
  | Columnar.CStr { dict; nulls; _ } ->
      1 + nulls_ser_size n nulls + 4
      + Array.fold_left (fun acc s -> acc + 4 + String.length s) 0 dict
      + (4 * n)
  | Columnar.CGen vs ->
      1 + 1 + Array.fold_left (fun acc v -> acc + ser_size v) 0 vs

(* Exact serialized payload size of a chunk under its own layout,
   layout byte included. This — not the row-form size — drives the
   frame size: a dictionary-heavy string column (many distinct values,
   so dict entries + 4-byte codes exceed the inline strings) serializes
   larger columnar than row-major. *)
let ser_chunk_size (chunk : Chunk.t) =
  match chunk with
  | Chunk.Rows rows ->
      1
      + Array.fold_left
          (fun acc row ->
            Array.fold_left (fun acc v -> acc + ser_size v) acc row)
          0 rows
  | Chunk.Cols c ->
      let n = Columnar.n_rows c in
      Array.fold_left
        (fun acc col -> acc + ser_col_size n col)
        1 (Columnar.columns c)

let put_nulls buf n nl =
  match nl with
  | None -> Buffer.add_char buf '\000'
  | Some b ->
      Buffer.add_char buf '\001';
      Buffer.add_subbytes buf b 0 ((n + 7) / 8)

let put_column buf n (c : Columnar.column) =
  match c with
  | Columnar.CInt (a, nl) ->
      Buffer.add_char buf 'I';
      put_nulls buf n nl;
      Array.iter (fun v -> Buffer.add_int64_be buf (Int64.of_int v)) a
  | Columnar.CFloat (a, nl) ->
      Buffer.add_char buf 'F';
      put_nulls buf n nl;
      Array.iter (fun v -> Buffer.add_int64_be buf (Int64.bits_of_float v)) a
  | Columnar.CBool (a, nl) ->
      Buffer.add_char buf 'B';
      put_nulls buf n nl;
      Array.iter (fun v -> Buffer.add_char buf (if v then '\001' else '\000')) a
  | Columnar.CStr { dict; codes; nulls } ->
      Buffer.add_char buf 'S';
      put_nulls buf n nulls;
      Buffer.add_int32_be buf (Int32.of_int (Array.length dict));
      Array.iter
        (fun s ->
          Buffer.add_int32_be buf (Int32.of_int (String.length s));
          Buffer.add_string buf s)
        dict;
      Array.iter (fun c -> Buffer.add_int32_be buf (Int32.of_int c)) codes
  | Columnar.CGen vs ->
      Buffer.add_char buf 'G';
      Buffer.add_char buf '\000';
      Array.iter (put_value buf) vs

let put_chunk buf (chunk : Chunk.t) =
  match chunk with
  | Chunk.Rows rows ->
      Buffer.add_char buf '\000';
      Array.iter (fun row -> Array.iter (put_value buf) row) rows
  | Chunk.Cols c ->
      Buffer.add_char buf '\001';
      let n = Columnar.n_rows c in
      Array.iter (put_column buf n) (Columnar.columns c)

let get_nulls path b pos n =
  let flag = Bytes.get b !pos in
  incr pos;
  match flag with
  | '\000' -> None
  | '\001' ->
      let len = (n + 7) / 8 in
      if !pos + len > Bytes.length b then corrupt path "null bitset";
      let bits = Bytes.sub b !pos len in
      pos := !pos + len;
      Some bits
  | _ -> corrupt path "null flag"

let get_column path b pos n : Columnar.column =
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | 'I' ->
      let nl = get_nulls path b pos n in
      let a =
        Array.init n (fun i -> Int64.to_int (Bytes.get_int64_be b (!pos + (8 * i))))
      in
      pos := !pos + (8 * n);
      Columnar.CInt (a, nl)
  | 'F' ->
      let nl = get_nulls path b pos n in
      let a =
        Array.init n (fun i ->
            Int64.float_of_bits (Bytes.get_int64_be b (!pos + (8 * i))))
      in
      pos := !pos + (8 * n);
      Columnar.CFloat (a, nl)
  | 'B' ->
      let nl = get_nulls path b pos n in
      let a = Array.init n (fun i -> Bytes.get b (!pos + i) <> '\000') in
      pos := !pos + n;
      Columnar.CBool (a, nl)
  | 'S' ->
      let nulls = get_nulls path b pos n in
      let count = Int32.to_int (Bytes.get_int32_be b !pos) in
      pos := !pos + 4;
      if count < 0 then corrupt path "dict size";
      let dict =
        Array.init count (fun _ ->
            let len = Int32.to_int (Bytes.get_int32_be b !pos) in
            pos := !pos + 4;
            if len < 0 || !pos + len > Bytes.length b then
              corrupt path "dict entry length";
            let s = Bytes.sub_string b !pos len in
            pos := !pos + len;
            s)
      in
      let codes =
        Array.init n (fun i -> Int32.to_int (Bytes.get_int32_be b (!pos + (4 * i))))
      in
      pos := !pos + (4 * n);
      Array.iter
        (fun c ->
          if (c < 0 || c >= count) && not (count = 0 && c = 0) then
            corrupt path "dict code")
        codes;
      Columnar.CStr { dict; codes; nulls }
  | 'G' ->
      incr pos (* unused nulls flag byte *);
      Columnar.CGen (Array.init n (fun _ -> get_value path b pos))
  | _ -> corrupt path "column tag"

(* --- writing ------------------------------------------------------------ *)

let sanitize name =
  let name = if String.length name > 40 then String.sub name 0 40 else name in
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    name

let put_i64 oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Out_channel.output_bytes oc b

let write ~dir ~name ~arity chunks =
  let n = Array.length chunks in
  if n = 0 then invalid_arg "Chunk_file.write: no chunks";
  (* pass 1: serialized + logical sizes; a zero-row frame would make the
     offset table ambiguous under faulting, so the writer rejects what
     Table.of_chunk_array should already have normalized away *)
  let logical = Array.make n 0 in
  let max_ser = ref 0 in
  Array.iteri
    (fun i chunk ->
      if Chunk.n_rows chunk = 0 then
        invalid_arg
          (Printf.sprintf "Chunk_file.write %s: empty chunk %d" name i);
      logical.(i) <- Chunk.byte_size chunk;
      let ser = ser_chunk_size chunk in
      if ser > !max_ser then max_ser := ser)
    chunks;
  let frame_size = frame_header_size + !max_ser in
  let id = Atomic.fetch_and_add next_id 1 in
  let path = Filename.concat dir (Printf.sprintf "t%06d-%s.qsc" id (sanitize name)) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc magic;
      put_i64 oc n;
      put_i64 oc frame_size;
      put_i64 oc arity;
      (* pass 2: serialize each chunk into its frame; seeking to the next
         frame start zero-extends, so short frames need no explicit pad *)
      let buf = Buffer.create (min !max_ser 65536) in
      Array.iteri
        (fun i chunk ->
          Out_channel.seek oc (Int64.of_int (header_size + (i * frame_size)));
          Buffer.clear buf;
          put_chunk buf chunk;
          put_i64 oc (Chunk.n_rows chunk);
          put_i64 oc (Buffer.length buf);
          Out_channel.output_string oc (Buffer.contents buf))
        chunks);
  ({ id; path; n_frames = n; frame_size; arity }, logical)

(* --- reading ------------------------------------------------------------ *)

let get_i64 b off = Int64.to_int (Bytes.get_int64_be b off)

let read t i =
  if i < 0 || i >= t.n_frames then
    invalid_arg (Printf.sprintf "Chunk_file.read %s: frame %d of %d" t.path i t.n_frames);
  In_channel.with_open_bin t.path (fun ic ->
      In_channel.seek ic (Int64.of_int (header_size + (i * t.frame_size)));
      let hdr = Bytes.create frame_header_size in
      (match In_channel.really_input ic hdr 0 frame_header_size with
      | Some () -> ()
      | None -> corrupt t.path "truncated frame header");
      let n_rows = get_i64 hdr 0 in
      let used = get_i64 hdr 8 in
      if n_rows <= 0 then corrupt t.path "zero-row frame";
      if used < 1 || used > t.frame_size - frame_header_size then
        corrupt t.path "frame payload size";
      let payload = Bytes.create used in
      (match In_channel.really_input ic payload 0 used with
      | Some () -> ()
      | None -> corrupt t.path "truncated frame payload");
      let pos = ref 1 in
      let chunk =
        match Bytes.get payload 0 with
        | '\000' ->
            Chunk.of_rows
              (Array.init n_rows (fun _ ->
                   Array.init t.arity (fun _ -> get_value t.path payload pos)))
        | '\001' ->
            let cols =
              Array.init t.arity (fun _ -> get_column t.path payload pos n_rows)
            in
            Chunk.of_columnar (Columnar.of_parts ~len:n_rows cols)
        | _ -> corrupt t.path "layout byte"
      in
      if !pos <> used then corrupt t.path "frame payload trailer";
      chunk)

let remove t = try Sys.remove t.path with Sys_error _ -> ()
