(** Column-major chunk representation with batch kernels.

    One chunk's worth of rows stored one array per column: unboxed
    [int array]/[float array]/[bool array] for homogeneous scalar
    columns, a first-appearance dictionary + code array for strings,
    and an exact boxed fallback for mixed-type or all-NULL columns.
    NULLs live in a per-column validity bitset (bit set = NULL;
    [None] = column has no NULLs).

    The variant constructors are exported so that [Chunk_file] can
    serialize columns, but they are {e private to lib/storage}:
    [tools/lint_unsafe.sh] bans [CInt]/[CFloat]/[CBool]/[CStr]/[CGen]
    outside it, mirroring the [.rows] rule. Everyone else uses the
    function API below. *)

type nulls = Bytes.t option
(** Validity bitset: bit [i] set = row [i] is NULL. [None] = no NULLs.
    Value slots of null rows hold a dummy (0 / 0.0 / code 0). *)

type column =
  | CInt of int array * nulls
  | CFloat of float array * nulls
  | CBool of bool array * nulls
  | CStr of { dict : string array; codes : int array; nulls : nulls }
      (** Dictionary-encoded strings: [dict] holds distinct values in
          first-appearance order, [codes.(i)] indexes it. The dict may
          retain entries unreferenced after a gather ([take]); codes
          are never re-compacted. *)
  | CGen of Value.t array
      (** Exact fallback for mixed-type or all-NULL columns. *)

type t = { len : int; cols : column array }

val n_rows : t -> int
val n_cols : t -> int

val of_rows : Value.t array array -> t
(** Columnarize a rectangular row chunk, choosing each column's
    representation from the values present. Exact: [to_rows (of_rows r)]
    reproduces [r] value-for-value (floats through their IEEE bits,
    strings byte-for-byte). An empty chunk yields [{len = 0; cols = [||]}]
    (the arity is not preserved). *)

val of_parts : len:int -> column array -> t
(** Assemble from pre-built columns (used by [Chunk_file] reads).
    @raise Invalid_argument if any column's length differs from [len]. *)

val columns : t -> column array
(** The raw columns, for serialization. Treat as immutable. *)

val to_rows : t -> Value.t array array
(** Decode back to a row chunk. Dictionary entries are boxed once and
    shared across the rows referencing them. *)

val row : t -> int -> Value.t array
val get : t -> row:int -> col:int -> Value.t

val column_values : t -> int -> Value.t array
(** Batch-decode column [j] to boxed values (a fresh array). *)

val byte_size : t -> int
(** Logical size: the sum of [Value.byte_size] over all cells, identical
    to the row form's so memory accounting is layout-invariant. *)

val is_null_at : nulls -> int -> bool
val make_nulls : int -> Bytes.t
val bit_get : Bytes.t -> int -> bool
val bit_set : Bytes.t -> int -> unit

(** {2 Selection-vector kernels}

    A selection vector is a strictly increasing [int array] of surviving
    row ordinals. [~sel:None] means dense (all rows live). Kernels
    preserve ordinal order and return subsets of their input vector. *)

type op = Lt | Le | Gt | Ge | Eq | Ne

val eval_cmp :
  t -> col:int -> op -> Value.t -> sel:int array option -> int array option
(** Vectorized [col <op> const] with semantics identical to
    [Expr.cmp_holds] / [Value.compare]: NULLs never match, int/float
    compare numerically, NaN sorts below every number and equals itself,
    [-0.0 = 0.0]. Returns [Some survivors], or [None] when the
    column/constant pairing has no batch kernel (generic columns,
    cross-type comparisons other than int/float) — the caller then falls
    back to row-at-a-time evaluation. A NULL constant short-circuits to
    [Some [||]]. *)

val eval_null :
  t -> col:int -> want_null:bool -> sel:int array option -> int array option
(** Vectorized [IS NULL] ([want_null:true]) / [IS NOT NULL]. Always
    succeeds. *)

val take : t -> int array -> t
(** Gather the selected ordinals into a dense chunk. String dictionaries
    are shared, not re-compacted. *)

val project : t -> int list -> t
(** Keep only the columns at the given positions (in order). Columns are
    shared, so this is O(width). *)
