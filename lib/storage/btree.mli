(** B+Tree secondary index: maps a key value to the row ids holding it.

    The paper's evaluation builds a B+Tree on every primary-key and (in the
    Pk+Fk configuration) foreign-key column; the optimizer's index
    nested-loop join probes these trees. The engine's tables are immutable,
    so it only ever inserts — but the tree is a complete implementation
    with deletion and rebalancing, usable as a standalone index. *)

type t

val create : unit -> t

val insert : t -> Value.t -> int -> unit
(** [insert t key row] records that [row] carries [key]. Duplicate keys
    accumulate; NULL keys are ignored (SQL index semantics). *)

val delete : t -> Value.t -> int -> bool
(** [delete t key row] removes one posting of [row] under [key]; when the
    posting list empties the key is removed and nodes are rebalanced
    (borrow from a sibling, else merge). Returns whether anything was
    removed. NULL keys return [false]. *)

val find : t -> Value.t -> int list
(** Row ids carrying exactly this key (empty if absent or NULL). *)

val mem : t -> Value.t -> bool

val range : t -> lo:(Value.t * bool) option -> hi:(Value.t * bool) option ->
  (Value.t -> int list -> unit) -> unit
(** [range t ~lo ~hi f] applies [f] to every (key, rows) with
    lo < key < hi; the booleans make each bound inclusive. [None] means
    unbounded. Keys are visited in ascending order. *)

val n_keys : t -> int
(** Number of distinct (non-null) keys. *)

val n_entries : t -> int
(** Total number of (key, row) pairs inserted. *)

val height : t -> int

val keys : t -> Value.t list
(** All keys in ascending order (testing helper). *)

val check_invariants : t -> (unit, string) result
(** Structural validation used by the property tests: sorted keys, balanced
    depth, node occupancy, leaf chaining. *)

val of_column : Table.t -> col:int -> t
(** Build an index over one column of a table. *)
