(** Runtime values and column types.

    A single dynamically-typed value representation is shared by the storage
    layer, the expression evaluator and the statistics machinery. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

val compare : t -> t -> int
(** Total order. [Null] sorts first; values of distinct types are ordered by
    constructor so heterogeneous keys still index deterministically. [Int]
    and [Float] compare numerically against each other. *)

val equal : t -> t -> bool

val hash : t -> int

val is_null : t -> bool

val type_of : t -> ty option
(** [None] for [Null]. *)

val byte_size : t -> int
(** Approximate in-memory footprint, used for the paper's materialization
    memory accounting (Table 4). *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_ty : Format.formatter -> ty -> unit

val ty_to_string : ty -> string

(* Convenience accessors; raise [Invalid_argument] on type mismatch. *)

val as_int : t -> int
val as_float : t -> float
(** [as_float] also widens [Int]. *)

val as_string : t -> string
val as_bool : t -> bool
