(* Column-major chunk representation: one unboxed (or dictionary-encoded)
   array per column plus a validity bitset for NULLs, built from a row
   chunk and round-tripping back to it value-for-value (floats through
   their IEEE bits, strings byte-for-byte).

   The representation is chosen per column per chunk from the values
   actually present: all-Int columns land in an [int array], all-Float
   in a [float array], strings in a first-appearance dictionary plus a
   code array, and anything mixed (or all-NULL) falls back to a boxed
   generic column — so every chunk of every table columnarizes, and the
   exactness of the fallback keeps digest parity trivial.

   The constructors below are private to lib/storage (the lint bans them
   elsewhere, like [.rows] and [Chunk_file.]); consumers go through the
   function API — batch kernels ([eval_cmp], [take], [column_values])
   for the vectorized paths, [get]/[row]/[to_rows] for row compat. *)

(* Null bitsets: bit [i] set = row [i] is NULL; [None] = no NULLs in the
   column. Value slots of null rows hold a dummy (0 / 0.0 / code 0). *)
type nulls = Bytes.t option

type column =
  | CInt of int array * nulls
  | CFloat of float array * nulls
  | CBool of bool array * nulls
  | CStr of { dict : string array; codes : int array; nulls : nulls }
  | CGen of Value.t array  (* mixed-type or all-NULL fallback, exact *)

type t = { len : int; cols : column array }

let n_rows t = t.len
let n_cols t = Array.length t.cols

(* --- bitset helpers ----------------------------------------------------- *)

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let is_null_at nulls i =
  match nulls with None -> false | Some b -> bit_get b i

let make_nulls n = Bytes.make ((n + 7) / 8) '\000'

(* gather a bitset through a selection vector; collapses to [None] when
   no selected row is null *)
let take_nulls nulls sel =
  match nulls with
  | None -> None
  | Some b ->
      let m = Array.length sel in
      let out = make_nulls m in
      let any = ref false in
      Array.iteri
        (fun j i ->
          if bit_get b i then begin
            bit_set out j;
            any := true
          end)
        sel;
      if !any then Some out else None

(* --- construction ------------------------------------------------------- *)

(* Column kind from a first classification pass: homogeneous non-null
   types get the unboxed forms, anything else the generic fallback. *)
type kind = KEmpty | KInt | KFloat | KBool | KStr | KGen

let kind_of rows j =
  let n = Array.length rows in
  let k = ref KEmpty in
  let i = ref 0 in
  while !i < n && !k <> KGen do
    (match rows.(!i).(j) with
    | Value.Null -> ()
    | Value.Int _ -> k := (match !k with KEmpty | KInt -> KInt | _ -> KGen)
    | Value.Float _ -> k := (match !k with KEmpty | KFloat -> KFloat | _ -> KGen)
    | Value.Bool _ -> k := (match !k with KEmpty | KBool -> KBool | _ -> KGen)
    | Value.Str _ -> k := (match !k with KEmpty | KStr -> KStr | _ -> KGen));
    incr i
  done;
  !k

let column_of_rows rows j =
  let n = Array.length rows in
  let nulls = ref None in
  let null_at i =
    let b =
      match !nulls with
      | Some b -> b
      | None ->
          let b = make_nulls n in
          nulls := Some b;
          b
    in
    bit_set b i
  in
  match kind_of rows j with
  | KEmpty | KGen -> CGen (Array.init n (fun i -> rows.(i).(j)))
  | KInt ->
      let a = Array.make n 0 in
      for i = 0 to n - 1 do
        match rows.(i).(j) with
        | Value.Int v -> a.(i) <- v
        | _ -> null_at i
      done;
      CInt (a, !nulls)
  | KFloat ->
      let a = Array.make n 0.0 in
      for i = 0 to n - 1 do
        match rows.(i).(j) with
        | Value.Float v -> a.(i) <- v
        | _ -> null_at i
      done;
      CFloat (a, !nulls)
  | KBool ->
      let a = Array.make n false in
      for i = 0 to n - 1 do
        match rows.(i).(j) with
        | Value.Bool v -> a.(i) <- v
        | _ -> null_at i
      done;
      CBool (a, !nulls)
  | KStr ->
      let codes = Array.make n 0 in
      let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
      let rev = ref [] in
      let next = ref 0 in
      for i = 0 to n - 1 do
        match rows.(i).(j) with
        | Value.Str s ->
            let code =
              match Hashtbl.find_opt index s with
              | Some c -> c
              | None ->
                  let c = !next in
                  Hashtbl.replace index s c;
                  rev := s :: !rev;
                  incr next;
                  c
            in
            codes.(i) <- code
        | _ -> null_at i
      done;
      let dict = Array.of_list (List.rev !rev) in
      (* an all-null KStr cannot happen (kind_of saw a Str), so the dict
         is non-empty and code 0 is a valid dummy for null slots *)
      CStr { dict; codes; nulls = !nulls }

let of_rows rows =
  let n = Array.length rows in
  if n = 0 then { len = 0; cols = [||] }
  else
    { len = n; cols = Array.init (Array.length rows.(0)) (column_of_rows rows) }

let of_parts ~len cols =
  Array.iter
    (fun c ->
      let cl =
        match c with
        | CInt (a, _) -> Array.length a
        | CFloat (a, _) -> Array.length a
        | CBool (a, _) -> Array.length a
        | CStr { codes; _ } -> Array.length codes
        | CGen a -> Array.length a
      in
      if cl <> len then invalid_arg "Columnar.of_parts: column length mismatch")
    cols;
  { len; cols }

let columns t = t.cols

(* --- decoding ----------------------------------------------------------- *)

let get t ~row:i ~col:j =
  match t.cols.(j) with
  | CInt (a, nl) -> if is_null_at nl i then Value.Null else Value.Int a.(i)
  | CFloat (a, nl) -> if is_null_at nl i then Value.Null else Value.Float a.(i)
  | CBool (a, nl) -> if is_null_at nl i then Value.Null else Value.Bool a.(i)
  | CStr { dict; codes; nulls } ->
      if is_null_at nulls i then Value.Null else Value.Str dict.(codes.(i))
  | CGen a -> a.(i)

(* Batch-decode one column. Dictionary strings are decoded once per dict
   entry and shared across rows, so a low-cardinality column costs
   O(dict + n) boxes rather than n strings. *)
let column_values t j =
  match t.cols.(j) with
  | CInt (a, nl) ->
      Array.init t.len (fun i ->
          if is_null_at nl i then Value.Null else Value.Int a.(i))
  | CFloat (a, nl) ->
      Array.init t.len (fun i ->
          if is_null_at nl i then Value.Null else Value.Float a.(i))
  | CBool (a, nl) ->
      Array.init t.len (fun i ->
          if is_null_at nl i then Value.Null else Value.Bool a.(i))
  | CStr { dict; codes; nulls } ->
      let boxed = Array.map (fun s -> Value.Str s) dict in
      Array.init t.len (fun i ->
          if is_null_at nulls i then Value.Null else boxed.(codes.(i)))
  | CGen a -> Array.copy a

let row t i = Array.init (n_cols t) (fun j -> get t ~row:i ~col:j)

let to_rows t =
  let nc = n_cols t in
  let cols = Array.init nc (column_values t) in
  Array.init t.len (fun i -> Array.init nc (fun j -> cols.(j).(i)))

(* Logical byte size, identical to the row form's [Value.byte_size] sum
   so Table 4 accounting is layout-invariant. *)
let byte_size t =
  let total = ref 0 in
  Array.iter
    (fun c ->
      match c with
      | CInt _ | CFloat _ | CBool _ -> total := !total + (8 * t.len)
      | CStr { dict; codes; nulls } ->
          for i = 0 to t.len - 1 do
            total :=
              !total
              + if is_null_at nulls i then 8 else 24 + String.length dict.(codes.(i))
          done
      | CGen a -> Array.iter (fun v -> total := !total + Value.byte_size v) a)
    t.cols;
  !total

(* --- selection-vector kernels ------------------------------------------- *)

(* A selection vector is a strictly increasing array of surviving row
   ordinals; [None] on input means "all rows" (dense). Kernels preserve
   ordinal order, so composing them never reorders rows. *)

let filter_ordinals len sel keep =
  match sel with
  | None ->
      let out = Array.make len 0 in
      let k = ref 0 in
      for i = 0 to len - 1 do
        if keep i then begin
          Array.unsafe_set out !k i;
          incr k
        end
      done;
      Array.sub out 0 !k
  | Some sel ->
      let out = Array.make (Array.length sel) 0 in
      let k = ref 0 in
      Array.iter
        (fun i ->
          if keep i then begin
            Array.unsafe_set out !k i;
            incr k
          end)
        sel;
      Array.sub out 0 !k

type op = Lt | Le | Gt | Ge | Eq | Ne

(* [holds op c] = does comparison result [c] (à la [Value.compare])
   satisfy [op]; mirrors Expr.cmp_holds exactly. *)
let holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* Float tests replicating [Float.compare x k] sign semantics (NaN below
   every number, NaN = NaN, -0.0 = 0.0) with primitive comparisons. *)
let float_test op k =
  if Float.is_nan k then
    match op with
    | Eq -> fun x -> Float.is_nan x
    | Ne -> fun x -> not (Float.is_nan x)
    | Lt -> fun _ -> false
    | Le -> Float.is_nan
    | Gt -> fun x -> not (Float.is_nan x)
    | Ge -> fun _ -> true
  else
    match op with
    | Eq -> fun x -> x = k
    | Ne -> fun x -> x <> k
    | Lt -> fun x -> x < k || Float.is_nan x
    | Le -> fun x -> x <= k || Float.is_nan x
    | Gt -> fun x -> x > k
    | Ge -> fun x -> x >= k

let int_test op k =
  match op with
  | Eq -> fun (x : int) -> x = k
  | Ne -> fun x -> x <> k
  | Lt -> fun x -> x < k
  | Le -> fun x -> x <= k
  | Gt -> fun x -> x > k
  | Ge -> fun x -> x >= k

(* Vectorized [col <op> const]: [Some selvec] of the surviving ordinals
   (a subset of [sel], in order), or [None] when this column/constant
   combination has no batch kernel and the caller must fall back to
   row-at-a-time evaluation. NULLs never satisfy a comparison, matching
   Expr.cmp_holds. *)
let eval_cmp t ~col:j op const ~sel =
  if Value.is_null const then Some [||]
  else
    match (t.cols.(j), const) with
    | CInt (a, nl), Value.Int k ->
        let test = int_test op k in
        Some
          (filter_ordinals t.len sel (fun i ->
               (not (is_null_at nl i)) && test (Array.unsafe_get a i)))
    | CInt (a, nl), Value.Float k ->
        let test = float_test op k in
        Some
          (filter_ordinals t.len sel (fun i ->
               (not (is_null_at nl i))
               && test (float_of_int (Array.unsafe_get a i))))
    | CFloat (a, nl), (Value.Float _ | Value.Int _) ->
        let test = float_test op (Value.as_float const) in
        Some
          (filter_ordinals t.len sel (fun i ->
               (not (is_null_at nl i)) && test (Array.unsafe_get a i)))
    | CBool (a, nl), Value.Bool k ->
        Some
          (filter_ordinals t.len sel (fun i ->
               (not (is_null_at nl i))
               && holds op (Bool.compare (Array.unsafe_get a i) k)))
    | CStr { dict; codes; nulls }, Value.Str s ->
        (* per-dictionary-entry verdicts, then a code-array sweep: the
           string comparisons run once per distinct value, not per row *)
        let verdict = Array.map (fun d -> holds op (String.compare d s)) dict in
        Some
          (filter_ordinals t.len sel (fun i ->
               (not (is_null_at nulls i))
               && Array.unsafe_get verdict (Array.unsafe_get codes i)))
    | _ -> None

(* Vectorized IS [NOT] NULL on a plain column reference. *)
let eval_null t ~col:j ~want_null ~sel =
  match t.cols.(j) with
  | CGen a ->
      Some
        (filter_ordinals t.len sel (fun i -> Value.is_null a.(i) = want_null))
  | CInt (_, nl) | CFloat (_, nl) | CBool (_, nl) | CStr { nulls = nl; _ } ->
      Some (filter_ordinals t.len sel (fun i -> is_null_at nl i = want_null))

(* --- gather / projection ------------------------------------------------ *)

let take_column c sel =
  match c with
  | CInt (a, nl) ->
      CInt (Array.map (fun i -> a.(i)) sel, take_nulls nl sel)
  | CFloat (a, nl) ->
      CFloat (Array.map (fun i -> a.(i)) sel, take_nulls nl sel)
  | CBool (a, nl) ->
      CBool (Array.map (fun i -> a.(i)) sel, take_nulls nl sel)
  | CStr { dict; codes; nulls } ->
      (* the dictionary is shared, not re-compacted: codes stay valid
         and the gather is O(|sel|) regardless of dict size *)
      CStr
        { dict; codes = Array.map (fun i -> codes.(i)) sel;
          nulls = take_nulls nulls sel }
  | CGen a -> CGen (Array.map (fun i -> a.(i)) sel)

let take t sel =
  { len = Array.length sel; cols = Array.map (fun c -> take_column c sel) t.cols }

let project t positions =
  (* columns are immutable and shared — projection copies nothing *)
  { len = t.len; cols = Array.of_list (List.map (fun p -> t.cols.(p)) positions) }
