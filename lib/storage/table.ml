(* Rows are sharded into fixed-size chunks so very large tables are not
   one allocation and scans can fan out per-chunk on a domain pool. The
   chunk layout is invisible to readers that go through the iteration
   API: row order is always chunk order. *)

type t = {
  name : string;
  schema : Schema.t;
  chunks : Value.t array array array;
  offsets : int array; (* offsets.(i) = global row id of chunks.(i).(0);
                          offsets.(n_chunks) = total rows *)
  chunk_bytes : int array; (* memoized per-chunk byte sizes; -1 = unknown *)
}

(* Default rows per chunk. Set once at startup (--chunk-rows); ints are
   immediate, so a racy read at worst sees the old default. *)
let default_chunk = ref 65_536

let default_chunk_rows () = !default_chunk
let set_default_chunk_rows n = default_chunk := max 1 n

let check_arity ~name ~schema rows =
  let arity = Schema.arity schema in
  Array.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Table.create %s: row arity %d, schema arity %d" name
             (Array.length r) arity))
    rows

let offsets_of_chunks chunks =
  let nc = Array.length chunks in
  let offsets = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length chunks.(i)
  done;
  offsets

let of_chunk_array ~name ~schema chunks =
  {
    name;
    schema;
    chunks;
    offsets = offsets_of_chunks chunks;
    chunk_bytes = Array.make (Array.length chunks) (-1);
  }

let create ?chunk_rows ~name ~schema rows =
  check_arity ~name ~schema rows;
  let cr = max 1 (Option.value chunk_rows ~default:!default_chunk) in
  let n = Array.length rows in
  let chunks =
    if n = 0 then [||]
    else if n <= cr then [| rows |]
    else
      Array.init
        ((n + cr - 1) / cr)
        (fun ci ->
          let start = ci * cr in
          Array.sub rows start (min cr (n - start)))
  in
  of_chunk_array ~name ~schema chunks

let of_rows ?chunk_rows ~name ~schema rows =
  create ?chunk_rows ~name ~schema (Array.of_list rows)

let of_chunks ~name ~schema chunks =
  (* pre-chunked construction (per-chunk filter outputs, union of tables):
     batches may be ragged; empty ones are dropped so chunk counts stay
     proportional to data, not to operator fan-out *)
  let chunks =
    chunks |> List.filter (fun c -> Array.length c > 0) |> Array.of_list
  in
  Array.iter (fun c -> check_arity ~name ~schema c) chunks;
  of_chunk_array ~name ~schema chunks

let n_chunks t = Array.length t.chunks
let n_rows t = t.offsets.(Array.length t.chunks)
let chunk t i = t.chunks.(i)
let chunk_offset t i = t.offsets.(i)
let chunk_list t = Array.to_list t.chunks

let iter f t = Array.iter (fun c -> Array.iter f c) t.chunks

let iteri f t =
  Array.iteri
    (fun ci c ->
      let base = t.offsets.(ci) in
      Array.iteri (fun i row -> f (base + i) row) c)
    t.chunks

let fold f init t =
  Array.fold_left (fun acc c -> Array.fold_left f acc c) init t.chunks

let to_seq t =
  Seq.concat_map Array.to_seq (Array.to_seq t.chunks)

let to_rows t =
  match t.chunks with
  | [||] -> [||]
  | [| c |] -> c
  | chunks -> Array.concat (Array.to_list chunks)

(* chunk holding global row [i]: binary search over the offset table *)
let chunk_of_row t i =
  if i < 0 || i >= n_rows t then
    invalid_arg (Printf.sprintf "Table.row %s: index %d out of %d" t.name i (n_rows t));
  let lo = ref 0 and hi = ref (Array.length t.chunks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.offsets.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let row t i =
  let ci = chunk_of_row t i in
  t.chunks.(ci).(i - t.offsets.(ci))

let get t ~row:r ~col = (row t r).(col)

let column_values t col =
  let out = Array.make (n_rows t) Value.Null in
  iteri (fun i r -> out.(i) <- r.(col)) t;
  out

let chunk_byte_size t i =
  let b = t.chunk_bytes.(i) in
  if b >= 0 then b
  else begin
    let b =
      Array.fold_left
        (fun acc row -> Array.fold_left (fun a v -> a + Value.byte_size v) acc row)
        0 t.chunks.(i)
    in
    (* memo write is racy across domains but idempotent: both sides
       compute the same immediate int *)
    t.chunk_bytes.(i) <- b;
    b
  end

let byte_size t =
  let total = ref 0 in
  for i = 0 to Array.length t.chunks - 1 do
    total := !total + chunk_byte_size t i
  done;
  !total

let rename t name = { t with name; schema = Schema.requalify name t.schema }

let with_name t name = { t with name }

let reschema ~name ~schema t =
  if Schema.arity schema <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.reschema %s: arity %d, had %d" name
         (Schema.arity schema) (Schema.arity t.schema));
  { t with name; schema }

(* Canonical multiset digest: rows rendered with columns in sorted-id
   order, then sorted — invariant under row and column order, so
   sequential, pooled and served runs of the same query compare
   byte-for-byte. *)
let digest t =
  let order =
    Array.to_list t.schema
    |> List.mapi (fun i c -> (Schema.column_id c, i))
    |> List.sort compare
  in
  let rows =
    fold
      (fun acc row ->
        String.concat "\x00"
          (List.map (fun (_, i) -> Value.to_string row.(i)) order)
        :: acc)
      [] t
    |> List.sort compare
  in
  let header = String.concat "\x00" (List.map fst order) in
  Digest.to_hex (Digest.string (String.concat "\x01" (header :: rows)))

let pp_sample ?(limit = 10) fmt t =
  Format.fprintf fmt "table %s (%d rows): %a@." t.name (n_rows t) Schema.pp t.schema;
  let shown = min limit (n_rows t) in
  for i = 0 to shown - 1 do
    let cells = Array.to_list (Array.map Value.to_string (row t i)) in
    Format.fprintf fmt "  | %s@." (String.concat " | " cells)
  done;
  if n_rows t > shown then Format.fprintf fmt "  ... (%d more)@." (n_rows t - shown)
